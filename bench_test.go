package repro

// Benchmark harness: one benchmark per table/figure of the paper's
// evaluation, on scaled-down MCNC twins so `go test -bench=.` finishes
// in minutes. Each benchmark reports the experiment's headline number
// as a custom metric (ratio, mcw, ...); cmd/experiments regenerates
// the full tables, including at full Table II sizes with -scale 1.

import (
	"strconv"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/bitstream"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/mcnc"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/rrg"
)

// benchScale shrinks benchmarks for the harness (LB counts /36).
const benchScale = 6

// benchState caches one compiled benchmark across benchmark functions.
type benchState struct {
	design *netlist.Design
	pl     *place.Placement
	res    *route.Result // at the normalized W=20
	raw    *bitstream.Raw
}

var (
	benchCache   = map[string]*benchState{}
	benchCacheMu sync.Mutex
)

func compiled(b *testing.B, name string) *benchState {
	b.Helper()
	benchCacheMu.Lock()
	defer benchCacheMu.Unlock()
	if st, ok := benchCache[name]; ok {
		return st
	}
	prof, err := mcnc.ByName(name)
	if err != nil {
		b.Fatal(err)
	}
	scaled := prof.Scale(benchScale)
	d, err := gen.Generate(scaled.GenParams(6))
	if err != nil {
		b.Fatal(err)
	}
	pl, err := place.Place(d, scaled.Grid(), place.Options{Seed: 1, InnerNum: 1})
	if err != nil {
		b.Fatal(err)
	}
	gr, err := rrg.Build(arch.Params{W: 20, K: 6}, pl.Grid)
	if err != nil {
		b.Fatal(err)
	}
	res, err := route.Route(d, pl, gr, route.Options{})
	if err != nil {
		b.Fatal(err)
	}
	raw, err := bitstream.Generate(d, pl, res)
	if err != nil {
		b.Fatal(err)
	}
	st := &benchState{design: d, pl: pl, res: res, raw: raw}
	benchCache[name] = st
	return st
}

// BenchmarkEq1 regenerates the worked example of Section II-B: the
// per-macro switch inventory and VBS field widths (E4 in DESIGN.md).
func BenchmarkEq1(b *testing.B) {
	for i := 0; i < b.N; i++ {
		p := arch.PaperExample()
		if p.NRaw() != 284 || p.MBits() != 5 || p.BreakEven() != 28 {
			b.Fatal("Eq. (1) values drifted")
		}
		p20 := arch.Default()
		if p20.NRaw() != 1004 || p20.MBits() != 7 {
			b.Fatal("normalized architecture drifted")
		}
	}
}

// BenchmarkTable2 regenerates Table II rows: the minimum-channel-width
// search on (scaled) benchmarks. The mcw metric is the measured MCW.
func BenchmarkTable2(b *testing.B) {
	for _, name := range []string{"alu4", "ex5p", "s298"} {
		b.Run(name, func(b *testing.B) {
			st := compiled(b, name)
			var mcw int
			for i := 0; i < b.N; i++ {
				w, _, err := route.FindMCW(st.design, st.pl, 6, route.Options{})
				if err != nil {
					b.Fatal(err)
				}
				mcw = w
			}
			b.ReportMetric(float64(mcw), "mcw")
		})
	}
}

// BenchmarkFig4 regenerates Figure 4 points: VBS encoding at the
// finest grain against the raw bitstream. The ratio metric is
// VBS/raw, the paper's ~0.41 average.
func BenchmarkFig4(b *testing.B) {
	for _, name := range []string{"alu4", "apex4", "des", "tseng"} {
		b.Run(name, func(b *testing.B) {
			st := compiled(b, name)
			var ratio float64
			for i := 0; i < b.N; i++ {
				v, _, err := core.Encode(st.design, st.pl, st.res, core.EncodeOptions{Cluster: 1})
				if err != nil {
					b.Fatal(err)
				}
				ratio = v.CompressionRatio()
			}
			b.ReportMetric(ratio, "ratio")
		})
	}
}

// BenchmarkFig5 regenerates Figure 5 points: the cluster-size sweep.
func BenchmarkFig5(b *testing.B) {
	for _, cluster := range []int{1, 2, 3, 4, 6} {
		b.Run(clusterName(cluster), func(b *testing.B) {
			st := compiled(b, "apex4")
			var ratio float64
			for i := 0; i < b.N; i++ {
				v, _, err := core.Encode(st.design, st.pl, st.res, core.EncodeOptions{Cluster: cluster})
				if err != nil {
					b.Fatal(err)
				}
				ratio = v.CompressionRatio()
			}
			b.ReportMetric(ratio, "ratio")
		})
	}
}

// BenchmarkDecode measures the runtime controller's de-virtualization
// cost per cluster size (Section IV-B's "increased computing needs").
func BenchmarkDecode(b *testing.B) {
	for _, cluster := range []int{1, 2, 4} {
		b.Run(clusterName(cluster), func(b *testing.B) {
			st := compiled(b, "apex4")
			v, _, err := core.Encode(st.design, st.pl, st.res, core.EncodeOptions{Cluster: cluster})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(v.RawSizeBits() / 8)) // configuration produced per decode
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := v.Decode(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkParallelDecode measures the concurrent entry-level decode
// (the controller's fan-out, one pooled router per in-flight region)
// against the same per-cluster-size workload as BenchmarkDecode.
func BenchmarkParallelDecode(b *testing.B) {
	for _, cluster := range []int{1, 2, 4} {
		b.Run(clusterName(cluster), func(b *testing.B) {
			st := compiled(b, "apex4")
			v, _, err := core.Encode(st.design, st.pl, st.res, core.EncodeOptions{Cluster: cluster})
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(v.RawSizeBits() / 8))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := v.DecodeParallel(0); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkLZSS regenerates the related-work baseline: LZSS over the
// raw bitstream (refs [1,2] of the paper). The ratio metric compares
// with Fig. 4's VBS ratios.
func BenchmarkLZSS(b *testing.B) {
	st := compiled(b, "apex4")
	data := st.raw.Encode()
	b.SetBytes(int64(len(data)))
	var ratio float64
	for i := 0; i < b.N; i++ {
		ratio = compress.Ratio(data)
	}
	b.ReportMetric(ratio, "ratio")
}

// BenchmarkAblation quantifies the encoder's design choices: the
// connection re-ordering step and empty-region skipping.
func BenchmarkAblation(b *testing.B) {
	variants := []struct {
		name string
		opt  core.EncodeOptions
	}{
		{"default", core.EncodeOptions{Cluster: 2}},
		{"no-reorder", core.EncodeOptions{Cluster: 2, DisableReorder: true}},
		{"no-skip", core.EncodeOptions{Cluster: 2, KeepEmptyRegions: true}},
	}
	for _, va := range variants {
		b.Run(va.name, func(b *testing.B) {
			st := compiled(b, "apex4")
			var ratio float64
			var raws int
			for i := 0; i < b.N; i++ {
				v, stats, err := core.Encode(st.design, st.pl, st.res, va.opt)
				if err != nil {
					b.Fatal(err)
				}
				ratio = v.CompressionRatio()
				raws = stats.RawRegions
			}
			b.ReportMetric(ratio, "ratio")
			b.ReportMetric(float64(raws), "fallbacks")
		})
	}
}

// BenchmarkFullFlow measures the complete offline pipeline (place,
// route, encode) on a small task: the cost a user of Flow pays.
func BenchmarkFullFlow(b *testing.B) {
	prof, err := mcnc.ByName("ex5p")
	if err != nil {
		b.Fatal(err)
	}
	scaled := prof.Scale(8)
	d, err := gen.Generate(scaled.GenParams(6))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		flow := NewFlow()
		flow.W = 12
		flow.PlaceEffort = 1
		flow.Seed = int64(i)
		if _, err := flow.Compile(d); err != nil {
			b.Fatal(err)
		}
	}
}

func clusterName(c int) string {
	return "c=" + strconv.Itoa(c)
}
