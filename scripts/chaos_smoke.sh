#!/usr/bin/env bash
# Chaos smoke test: run the CI-sized chaos recipes against real vbsd
# subprocesses behind an in-process gateway.
#
#   1. build vbsd and vbschaos
#   2. vbschaos -recipe nodekill   -short -vbsd: SIGKILL one node under
#      a live load/get/unload mix; failover must hold and read-repair
#      must bring every blob back to R replicas after restart
#   3. vbschaos -recipe corruptblob -short -vbsd: flip bytes in an
#      on-disk blob, kill -9, restart; the boot recovery scan must
#      quarantine the rot and no read may ever serve corrupt bytes
#   4. vbschaos -recipe nodeadd -short -vbsd: SIGKILL + forget one
#      node, join a fresh empty subprocess under traffic; replicas
#      must rebalance back to R and a blob deleted mid-rebalance must
#      stay dead (tombstones honored)
#
# Each run emits a JSON report and exits non-zero on any invariant
# violation. Full-length soaks: drop -short, or -recipe all.
#
# Run from the repository root: ./scripts/chaos_smoke.sh
set -euo pipefail

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT

echo "== build"
go build -o "$work/bin/" ./cmd/vbsd ./cmd/vbschaos

for recipe in nodekill corruptblob nodeadd; do
  echo "== recipe $recipe (3 vbsd subprocesses, replicas=2, short)"
  "$work/bin/vbschaos" -recipe "$recipe" -short \
    -vbsd "$work/bin/vbsd" -work-dir "$work/$recipe" \
    >"$work/$recipe.report.json"
  cat "$work/$recipe.report.json"
done

echo "PASS: chaos smoke"
