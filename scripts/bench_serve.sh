#!/usr/bin/env bash
# Serve-path benchmark: run the vbsload load/get/unload mix against a
# real vbsd daemon and refresh the committed BENCH_serve.json
# baseline (the serving-side counterpart of BENCH_decode.json).
#
# Two runs, same daemon, same 8-worker 20:60:20 mix: one request per
# round trip ("unbatched") and 16 tasks per POST /tasks:batch
# ("batched"). The baseline records both side by side so the batching
# win — and any regression of the unbatched path — shows up in review.
#
# Usage: ./scripts/bench_serve.sh [duration]   (default 5s)
set -euo pipefail

duration=${1:-5s}
addr=127.0.0.1:8968
work=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

echo "== build" >&2
go build -o "$work/bin/" ./cmd/vbsd ./cmd/vbsload

echo "== start vbsd" >&2
"$work/bin/vbsd" -addr "$addr" -fabrics 2 -size 64x64 -w 12 >"$work/vbsd.log" 2>&1 &
pid=$!
for _ in $(seq 1 100); do
  if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done

# Staged in $work (not a pipeline into the baseline) so a failing run
# cannot overwrite BENCH_serve.json with a partial document. -scrape
# adds the daemon's own /metrics histogram percentiles (server_side
# block) to each run, so client- and server-observed latency diverge
# visibly in review.
echo "== drive $duration of mixed load, unbatched" >&2
"$work/bin/vbsload" -url "http://$addr" -scrape "http://$addr" \
  -duration "$duration" -workers 8 \
  -tasks 8 -mix 20:60:20 -json >"$work/unbatched.json"

echo "== drive $duration of mixed load, batch 16" >&2
"$work/bin/vbsload" -url "http://$addr" -scrape "http://$addr" \
  -duration "$duration" -workers 8 -batch 16 \
  -tasks 8 -mix 20:60:20 -json >"$work/batched.json"

# host_cpus pins the machine class: absolute req/s only compares
# across refreshes taken on the same core count (the batched:unbatched
# ratio is the machine-independent number).
printf '{\n"host_cpus": %s,\n"unbatched": %s,\n"batched": %s\n}\n' \
  "$(nproc)" "$(cat "$work/unbatched.json")" "$(cat "$work/batched.json")" >BENCH_serve.json
echo "== wrote BENCH_serve.json" >&2
cat BENCH_serve.json
