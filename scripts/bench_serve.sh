#!/usr/bin/env bash
# Serve-path benchmark: run the vbsload load/get/unload mix against a
# real vbsd daemon and refresh the committed BENCH_serve.json
# baseline (the serving-side counterpart of BENCH_decode.json).
#
# Usage: ./scripts/bench_serve.sh [duration]   (default 5s)
set -euo pipefail

duration=${1:-5s}
addr=127.0.0.1:8968
work=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

echo "== build" >&2
go build -o "$work/bin/" ./cmd/vbsd ./cmd/vbsload

echo "== start vbsd" >&2
"$work/bin/vbsd" -addr "$addr" -fabrics 2 -size 64x64 -w 12 >"$work/vbsd.log" 2>&1 &
pid=$!
for _ in $(seq 1 100); do
  if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done

echo "== drive $duration of mixed load" >&2
# Two steps (not a pipeline) so a failing run cannot overwrite the
# baseline with a partial document. -scrape adds the daemon's own
# /metrics histogram percentiles (server_side block) to the baseline,
# so client- and server-observed latency diverge visibly in review.
"$work/bin/vbsload" -url "http://$addr" -scrape "http://$addr" \
  -duration "$duration" -workers 8 \
  -tasks 8 -mix 20:60:20 -json >"$work/bench_serve.json"
mv "$work/bench_serve.json" BENCH_serve.json
echo "== wrote BENCH_serve.json" >&2
cat BENCH_serve.json
