#!/usr/bin/env bash
# Persistence smoke test: prove the vbsd -data-dir durability loop
# end-to-end against a real daemon and a hard kill.
#
#   1. generate a VBS with the offline flow
#   2. start vbsd with a fresh -data-dir and load the task
#   3. SIGKILL the daemon (no shutdown hook runs)
#   4. restart it over the same directory
#   5. assert the blob is recovered, listed, and served byte-identical
#      from disk without re-upload
#   6. run vbsrepo verify over the data dir
#
# Run from the repository root: ./scripts/persistence_smoke.sh
set -euo pipefail

addr=127.0.0.1:8971
work=$(mktemp -d)
pid=""
cleanup() {
  [ -n "$pid" ] && kill -9 "$pid" 2>/dev/null || true
  rm -rf "$work"
}
trap cleanup EXIT

echo "== build"
go build -o "$work/bin/" ./cmd/vbsd ./cmd/vbsgen ./cmd/vbsrepo

echo "== generate task"
"$work/bin/vbsgen" -bench tseng -scale 8 -effort 1 -w 12 -o "$work/task.vbs"

data="$work/data"
start_vbsd() {
  "$work/bin/vbsd" -addr "$addr" -fabrics 1 -size 32x32 -w 12 -data-dir "$data" -warm -1 &
  pid=$!
  for _ in $(seq 1 100); do
    if curl -fsS "http://$addr/healthz" >/dev/null 2>&1; then
      return 0
    fi
    sleep 0.1
  done
  echo "FAIL: vbsd did not become healthy" >&2
  exit 1
}

echo "== first boot: load task"
start_vbsd
digest=$(curl -fsS -XPOST --data-binary "{\"vbs\":\"$(base64 -w0 "$work/task.vbs")\"}" \
  "http://$addr/tasks" | sed -n 's/.*"digest":"\([0-9a-f]\{64\}\)".*/\1/p')
if [ -z "$digest" ]; then
  echo "FAIL: load did not return a digest" >&2
  exit 1
fi
echo "   loaded digest $digest"

echo "== SIGKILL daemon"
kill -9 "$pid"
wait "$pid" 2>/dev/null || true
pid=""

echo "== second boot: recover from disk"
start_vbsd
stats=$(curl -fsS "http://$addr/stats")
case "$stats" in
  *'"recovered":1'*) ;;
  *) echo "FAIL: /stats does not report one recovered blob: $stats" >&2; exit 1 ;;
esac

curl -fsS "http://$addr/vbs" | grep -q "$digest" || {
  echo "FAIL: /vbs listing lost the blob" >&2
  exit 1
}

echo "== download blob, compare bytes and digest"
curl -fsS "http://$addr/vbs/$digest" -o "$work/roundtrip.vbs"
cmp "$work/task.vbs" "$work/roundtrip.vbs"
sum=$(sha256sum "$work/roundtrip.vbs" | cut -d' ' -f1)
if [ "$sum" != "$digest" ]; then
  echo "FAIL: served bytes hash to $sum, expected $digest" >&2
  exit 1
fi

echo "== load again: deduplicates against the recovered blob"
digest2=$(curl -fsS -XPOST --data-binary "{\"vbs\":\"$(base64 -w0 "$work/task.vbs")\"}" \
  "http://$addr/tasks" | sed -n 's/.*"digest":"\([0-9a-f]\{64\}\)".*/\1/p')
if [ "$digest2" != "$digest" ]; then
  echo "FAIL: re-load produced digest $digest2, expected $digest" >&2
  exit 1
fi
# Still exactly one stored blob, and the daemon persisted nothing new:
# the load was served from what the recovery scan indexed.
nblobs=$(curl -fsS "http://$addr/vbs" | grep -o '"digest"' | wc -l)
if [ "$nblobs" -ne 1 ]; then
  echo "FAIL: expected 1 stored blob after re-load, found $nblobs" >&2
  exit 1
fi
case "$(curl -fsS "http://$addr/stats")" in
  *'"writes":0'*) ;;
  *) echo "FAIL: re-load wrote to disk instead of reusing the recovered blob" >&2; exit 1 ;;
esac

kill "$pid" 2>/dev/null || true
wait "$pid" 2>/dev/null || true
pid=""

echo "== vbsrepo verify + ls"
"$work/bin/vbsrepo" verify -dir "$data"
"$work/bin/vbsrepo" ls -dir "$data"

echo "PASS: persistence smoke"
