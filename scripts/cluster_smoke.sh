#!/usr/bin/env bash
# Cluster smoke test: prove the vbsgw sharded-serving loop end-to-end
# against three real vbsd nodes.
#
#   1. generate distinct VBS tasks with the offline flow
#   2. import one of them into a node's data dir with vbsrepo
#      (out-of-band arrival: the gateway must still find it)
#   3. start 3 vbsd nodes + vbsgw -replicas 2
#   4. load the other tasks through the gateway; every blob must land
#      on exactly its replica set
#   5. download every digest through the gateway, byte-compare
#      (this read-repairs the imported blob onto its ring owners)
#   6. scrape /metrics on the gateway and a node (required families
#      present) and run a reconcile job end-to-end via POST /jobs
#   7. drive a concurrent load/get/unload mix at the gateway with
#      vbsload under a strict error budget, then the same mix batched
#      over POST /tasks:batch at a zero error budget
#   8. join a fresh fourth node via `vbsgw node add` while a second
#      vbsload mix runs with -max-error-rate 0: elastic membership
#      must be invisible to clients
#
# Kill/failover coverage lives in scripts/chaos_smoke.sh (the chaos
# harness nodekill, corruptblob, and nodeadd recipes), not here.
#
# Run from the repository root: ./scripts/cluster_smoke.sh
set -euo pipefail

gwaddr=127.0.0.1:8960
node_addrs=(127.0.0.1:8961 127.0.0.1:8962 127.0.0.1:8963)
work=$(mktemp -d)
pids=()
cleanup() {
  for p in "${pids[@]:-}"; do kill -9 "$p" 2>/dev/null || true; done
  rm -rf "$work"
}
trap cleanup EXIT

echo "== build"
go build -o "$work/bin/" ./cmd/vbsd ./cmd/vbsgw ./cmd/vbsgen ./cmd/vbsrepo ./cmd/vbsload

echo "== generate tasks"
for i in 1 2 3 4; do
  "$work/bin/vbsgen" -bench tseng -scale 8 -effort 1 -w 12 -seed "$i" -o "$work/task$i.vbs" >/dev/null
done

echo "== import task4 into node 3's repository (out-of-band)"
"$work/bin/vbsrepo" import -dir "$work/data3" "$work/task4.vbs"
digest4=$(sha256sum "$work/task4.vbs" | cut -d' ' -f1)

wait_healthy() {
  for _ in $(seq 1 100); do
    if curl -fsS "http://$1/healthz" >/dev/null 2>&1; then return 0; fi
    sleep 0.1
  done
  echo "FAIL: $1 did not become healthy" >&2
  exit 1
}

echo "== start 3 nodes + gateway"
i=0
for addr in "${node_addrs[@]}"; do
  i=$((i + 1))
  "$work/bin/vbsd" -addr "$addr" -fabrics 1 -size 32x32 -w 12 \
    -data-dir "$work/data$i" >"$work/node$i.log" 2>&1 &
  pids+=($!)
done
for addr in "${node_addrs[@]}"; do wait_healthy "$addr"; done
nodes_flag=$(printf 'http://%s,' "${node_addrs[@]}")
"$work/bin/vbsgw" -addr "$gwaddr" -nodes "${nodes_flag%,}" -replicas 2 \
  -probe-interval 500ms -rebalance-interval 1s >"$work/gw.log" 2>&1 &
pids+=($!)
gwpid=$!
wait_healthy "$gwaddr"

echo "== load tasks 1-3 through the gateway"
digests=()
for i in 1 2 3; do
  d=$(curl -fsS -XPOST --data-binary "{\"vbs\":\"$(base64 -w0 "$work/task$i.vbs")\"}" \
    "http://$gwaddr/tasks" | sed -n 's/.*"digest":"\([0-9a-f]\{64\}\)".*/\1/p')
  if [ -z "$d" ]; then
    echo "FAIL: load of task$i returned no digest" >&2
    exit 1
  fi
  digests+=("$d")
done
digests+=("$digest4")

echo "== every loaded blob sits on exactly 2 nodes (write-through replication)"
for d in "${digests[@]:0:3}"; do
  copies=0
  for addr in "${node_addrs[@]}"; do
    if curl -fsS "http://$addr/vbs" | grep -q "$d"; then copies=$((copies + 1)); fi
  done
  if [ "$copies" -ne 2 ]; then
    echo "FAIL: digest $d on $copies node(s), want 2" >&2
    exit 1
  fi
done

echo "== merged /vbs listing covers all 4 digests (incl. the import)"
listing=$(curl -fsS "http://$gwaddr/vbs")
for d in "${digests[@]}"; do
  case "$listing" in
    *"$d"*) ;;
    *) echo "FAIL: merged listing misses $d" >&2; exit 1 ;;
  esac
done

echo "== byte-identical serving through the gateway (read-repairs the import)"
for i in 1 2 3 4; do
  d=${digests[$((i - 1))]}
  curl -fsS "http://$gwaddr/vbs/$d" -o "$work/rt$i.vbs"
  cmp "$work/task$i.vbs" "$work/rt$i.vbs"
done

echo "== cluster stats block"
stats=$(curl -fsS "http://$gwaddr/stats")
case "$stats" in
  *'"replicas":2'*) ;;
  *) echo "FAIL: /stats cluster block missing replicas: $stats" >&2; exit 1 ;;
esac
case "$stats" in
  *'"ring_version":"'*) ;;
  *) echo "FAIL: /stats cluster block missing ring_version" >&2; exit 1 ;;
esac

echo "== /metrics exposition on the gateway and a node"
gw_metrics=$(curl -fsS "http://$gwaddr/metrics")
for fam in vbs_gateway_op_duration_seconds_bucket vbs_cluster_nodes \
           vbs_cluster_alive_nodes vbs_rebalance_passes_total vbs_jobs_running \
           vbs_transport_streams_open vbs_transport_frames_sent_total; do
  case "$gw_metrics" in
    *"$fam"*) ;;
    *) echo "FAIL: gateway /metrics missing family $fam" >&2; exit 1 ;;
  esac
done
node_metrics=$(curl -fsS "http://${node_addrs[0]}/metrics")
for fam in vbs_server_op_duration_seconds_bucket vbs_cache_hits_total vbs_jobs_running \
           vbs_transport_streams_open vbs_transport_frames_received_total; do
  case "$node_metrics" in
    *"$fam"*) ;;
    *) echo "FAIL: node /metrics missing family $fam" >&2; exit 1 ;;
  esac
done

echo "== reconcile job via POST /jobs runs to done"
job=$(curl -fsS -XPOST --data '{"kind":"reconcile"}' "http://$gwaddr/jobs")
job_id=$(printf '%s' "$job" | sed -n 's/.*"id":\([0-9]\+\).*/\1/p')
if [ -z "$job_id" ]; then
  echo "FAIL: POST /jobs returned no job id: $job" >&2
  exit 1
fi
job_done=""
for _ in $(seq 1 100); do
  snap=$(curl -fsS "http://$gwaddr/jobs/$job_id")
  case "$snap" in
    *'"status":"done"'*) job_done=1; break ;;
    *'"status":"failed"'* | *'"status":"aborted"'*)
      echo "FAIL: reconcile job did not finish cleanly: $snap" >&2
      exit 1 ;;
  esac
  sleep 0.1
done
if [ -z "$job_done" ]; then
  echo "FAIL: reconcile job still running after 10s" >&2
  exit 1
fi

echo "== vbsload mix against the cluster, strict error budget"
"$work/bin/vbsload" -url "http://$gwaddr" -ops 60 -workers 4 -tasks 2 \
  -mix 30:50:20 -max-error-rate 0.05

echo "== batched vbsload mix over POST /tasks:batch (zero error budget)"
"$work/bin/vbsload" -url "http://$gwaddr" -ops 120 -workers 4 -batch 8 \
  -tasks 2 -mix 30:50:20 -max-error-rate 0

echo "== join a fresh node under live vbsload (zero error budget)"
join_addr=127.0.0.1:8964
"$work/bin/vbsd" -addr "$join_addr" -fabrics 1 -size 32x32 -w 12 \
  -data-dir "$work/data4" >"$work/node4.log" 2>&1 &
pids+=($!)
wait_healthy "$join_addr"
"$work/bin/vbsload" -url "http://$gwaddr" -ops 600 -workers 4 -tasks 2 \
  -mix 30:50:20 -max-error-rate 0 &
loadpid=$!
sleep 0.1
"$work/bin/vbsgw" node add -gw "http://$gwaddr" "http://$join_addr"
if ! wait "$loadpid"; then
  echo "FAIL: vbsload saw client errors while the node joined" >&2
  exit 1
fi

echo "== membership lists the joined node, rebalance is running"
members=$("$work/bin/vbsgw" node ls -gw "http://$gwaddr")
echo "$members"
case "$members" in
  *"http://$join_addr"*) ;;
  *) echo "FAIL: membership does not list http://$join_addr" >&2; exit 1 ;;
esac
"$work/bin/vbsgw" rebalance -gw "http://$gwaddr"
stats=$(curl -fsS "http://$gwaddr/stats")
case "$stats" in
  *'"membership_version":1'*) ;;
  *) echo "FAIL: /stats cluster block missing membership_version 1: $stats" >&2; exit 1 ;;
esac
case "$stats" in
  *'"rebalance":{'*) ;;
  *) echo "FAIL: /stats cluster block missing rebalance progress" >&2; exit 1 ;;
esac

echo "== graceful gateway shutdown"
kill "$gwpid"
for _ in $(seq 1 50); do
  if ! kill -0 "$gwpid" 2>/dev/null; then break; fi
  sleep 0.1
done
if kill -0 "$gwpid" 2>/dev/null; then
  echo "FAIL: vbsgw did not shut down on SIGTERM" >&2
  exit 1
fi

echo "PASS: cluster smoke"
