package repro

import (
	"strings"
	"testing"

	"repro/internal/netlist"
)

// counterBLIF is a small sequential circuit exercising the whole front
// end: LUT covers, latches, multi-bit state.
const counterBLIF = `
.model ctr
.inputs en
.outputs q0 q1 q2
.names en q0 d0
01 1
10 1
.latch d0 q0 re clk 0
.names en q0 q1 d1
0-1 1
101 1
110 1
.latch d1 q1 re clk 0
.names en q0 q1 q2 c2
1110 1
1111 1
.names q2 c2 d2
01 1
10 1
.latch d2 q2 re clk 0
.end
`

func quickFlow() *Flow {
	f := NewFlow()
	f.W = 8
	f.PlaceEffort = 1
	return f
}

func TestCompileBLIFEndToEnd(t *testing.T) {
	c, err := quickFlow().CompileBLIF(strings.NewReader(counterBLIF))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
	if c.VBS.Size() <= 0 || c.Raw.SizeBits() <= 0 {
		t.Error("sizes not computed")
	}
	if c.VBS.CompressionRatio() >= 1 {
		t.Errorf("ratio %.2f, expected compression", c.VBS.CompressionRatio())
	}
	if c.ChannelWidth != 8 {
		t.Errorf("channel width %d", c.ChannelWidth)
	}
}

func TestCompileAutoWidth(t *testing.T) {
	f := quickFlow()
	f.AutoWidth = true
	c, err := f.CompileBLIF(strings.NewReader(counterBLIF))
	if err != nil {
		t.Fatal(err)
	}
	if c.ChannelWidth < 1 || c.ChannelWidth > 16 {
		t.Errorf("auto width %d implausible", c.ChannelWidth)
	}
	if err := c.Verify(); err != nil {
		t.Fatal(err)
	}
}

func TestCompileRejectsKMismatch(t *testing.T) {
	d := &netlist.Design{Name: "x", K: 4}
	if _, err := quickFlow().Compile(d); err == nil {
		t.Error("K mismatch accepted")
	}
}

func TestCompiledFunctionalSimulation(t *testing.T) {
	// The packed design must still behave as a 3-bit counter.
	c, err := quickFlow().CompileBLIF(strings.NewReader(counterBLIF))
	if err != nil {
		t.Fatal(err)
	}
	sim, err := netlist.NewDesignSimulator(c.Design)
	if err != nil {
		t.Fatal(err)
	}
	// Outputs are sampled before the clock edge, so cycle 0 shows the
	// initial state.
	for cycle := 0; cycle < 10; cycle++ {
		out := sim.Step(map[string]bool{"en": true})
		want := cycle % 8
		got := 0
		if out["q0"] {
			got |= 1
		}
		if out["q1"] {
			got |= 2
		}
		if out["q2"] {
			got |= 4
		}
		if got != want {
			t.Fatalf("cycle %d: count %d, want %d", cycle, got, want)
		}
	}
}

func TestControllerIntegration(t *testing.T) {
	c, err := quickFlow().CompileBLIF(strings.NewReader(counterBLIF))
	if err != nil {
		t.Fatal(err)
	}
	fab, err := c.NewFabric(2)
	if err != nil {
		t.Fatal(err)
	}
	ctrl := NewController(fab, 2)
	task, err := ctrl.LoadAt(c.VBS, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Relocate(task.ID, c.Grid.Width, 0); err != nil {
		t.Fatal(err)
	}
	if err := ctrl.Unload(task.ID); err != nil {
		t.Fatal(err)
	}
	if fab.FreeMacros() != fab.Grid().NumMacros() {
		t.Error("fabric not clean after unload")
	}
}

func TestGridSizing(t *testing.T) {
	// Pad-heavy design: grid must grow to fit the ring.
	d := &netlist.Design{Name: "pads", K: 6}
	var last netlist.NetID
	for i := 0; i < 40; i++ {
		_, last = d.AddInputPad("pi")
	}
	d.AddOutputPad("po", last)
	f := quickFlow()
	c, err := f.Compile(d)
	if err != nil {
		t.Fatal(err)
	}
	if c.Grid.NumPerimeter() < 41 {
		t.Errorf("perimeter %d cannot hold 41 pads", c.Grid.NumPerimeter())
	}
}
