// Package repro reproduces "Design Flow and Run-Time Management for
// Compressed FPGA Configurations" (Huriaux, Courtay, Sentieys, DATE
// 2015): the Virtual Bit-Stream (VBS) compressed configuration format,
// the offline CAD flow that generates it, and the runtime controller
// that de-virtualizes and relocates tasks on a simulated island-style
// FPGA fabric.
//
// This package is the high-level facade: Flow runs the complete
// offline pipeline (synthesis front end, placement, routing, raw
// bitstream generation, VBS encoding) with sensible defaults. The
// building blocks live in internal/ packages: arch (architecture
// model), synth/place/route (the CAD substrate), bitstream (raw
// configurations), core (the VBS format and encoder), devirt (the
// de-virtualization router), and controller/fabric (the runtime side).
package repro

import (
	"fmt"
	"io"

	"repro/internal/arch"
	"repro/internal/bitstream"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/rrg"
	"repro/internal/synth"
)

// Flow configures the offline VBS generation pipeline (the paper's
// Figure 3: synthesis, pack, place, route, vbsgen).
type Flow struct {
	// K is the LUT size (default 6).
	K int
	// W is the channel width (default 20, the paper's normalized
	// width). Set to 0 with AutoWidth to search for the minimum.
	W int
	// AutoWidth routes at the minimum feasible channel width instead
	// of W.
	AutoWidth bool
	// Cluster is the VBS coding granularity (default 1).
	Cluster int
	// GridSize overrides the logic grid side (default: smallest square
	// holding the logic blocks).
	GridSize int
	// Seed drives placement and annealing (default 1).
	Seed int64
	// PlaceEffort scales annealing moves (default 10, VPR-like; use 1
	// for quick runs).
	PlaceEffort float64
}

// NewFlow returns a Flow with the paper's defaults.
func NewFlow() *Flow {
	return &Flow{K: 6, W: 20, Cluster: 1, Seed: 1, PlaceEffort: 10}
}

// Compiled bundles every artifact of one pipeline run.
type Compiled struct {
	Design    *netlist.Design
	Grid      arch.Grid
	Placement *place.Placement
	Graph     *rrg.Graph
	Routing   *route.Result
	Raw       *bitstream.Raw
	VBS       *core.VBS
	Stats     core.EncodeStats
	// ChannelWidth is the width actually routed at.
	ChannelWidth int
}

// CompileBLIF synthesizes a BLIF netlist and runs the full pipeline.
func (f *Flow) CompileBLIF(r io.Reader) (*Compiled, error) {
	c, err := netlist.ParseBLIF(r)
	if err != nil {
		return nil, err
	}
	d, err := synth.Synthesize(c, f.kOrDefault())
	if err != nil {
		return nil, err
	}
	return f.Compile(d)
}

func (f *Flow) kOrDefault() int {
	if f.K == 0 {
		return 6
	}
	return f.K
}

// Compile places, routes and encodes a packed design.
func (f *Flow) Compile(d *netlist.Design) (*Compiled, error) {
	k := f.kOrDefault()
	if d.K != k {
		return nil, fmt.Errorf("repro: design is K=%d, flow is K=%d", d.K, k)
	}
	size := f.GridSize
	if size == 0 {
		size = 1
		for size*size < d.NumLogicBlocks() {
			size++
		}
		// Ensure pads fit the ring too.
		pads := d.CountKind(netlist.InputPad) + d.CountKind(netlist.OutputPad)
		for arch.GridForSize(size).NumPerimeter() < pads {
			size++
		}
	}
	grid := arch.GridForSize(size)

	effort := f.PlaceEffort
	if effort == 0 {
		effort = 10
	}
	pl, err := place.Place(d, grid, place.Options{Seed: f.Seed, InnerNum: effort})
	if err != nil {
		return nil, err
	}

	var (
		res *route.Result
		w   int
	)
	if f.AutoWidth {
		w, res, err = route.FindMCW(d, pl, k, route.Options{})
		if err != nil {
			return nil, err
		}
	} else {
		w = f.W
		if w == 0 {
			w = 20
		}
		gr, err := rrg.Build(arch.Params{W: w, K: k}, grid)
		if err != nil {
			return nil, err
		}
		res, err = route.Route(d, pl, gr, route.Options{})
		if err != nil {
			return nil, err
		}
	}

	raw, err := bitstream.Generate(d, pl, res)
	if err != nil {
		return nil, err
	}
	cluster := f.Cluster
	if cluster == 0 {
		cluster = 1
	}
	v, stats, err := core.Encode(d, pl, res, core.EncodeOptions{Cluster: cluster})
	if err != nil {
		return nil, err
	}
	return &Compiled{
		Design:       d,
		Grid:         grid,
		Placement:    pl,
		Graph:        res.Graph,
		Routing:      res,
		Raw:          raw,
		VBS:          v,
		Stats:        *stats,
		ChannelWidth: w,
	}, nil
}

// Verify checks that the compiled VBS decodes into a configuration
// electrically equivalent to the design's netlist (the encoder already
// guarantees this; Verify re-proves it from the artifacts).
func (c *Compiled) Verify() error {
	decoded, err := c.VBS.Decode()
	if err != nil {
		return err
	}
	return bitstream.Verify(decoded, c.Design, c.Placement, c.Graph)
}

// NewFabric builds a blank fabric compatible with a compiled task,
// scaled by the given factor in each dimension (1 = exactly the task's
// grid).
func (c *Compiled) NewFabric(scale int) (*fabric.Fabric, error) {
	if scale < 1 {
		scale = 1
	}
	g := arch.Grid{Width: c.Grid.Width * scale, Height: c.Grid.Height * scale}
	return fabric.New(c.VBS.P, g)
}

// NewController wraps a fabric in a runtime reconfiguration manager.
func NewController(f *fabric.Fabric, workers int) *controller.Controller {
	return controller.New(f, workers)
}
