// Quickstart: compile a small sequential circuit from BLIF to a
// Virtual Bit-Stream, inspect the compression, and prove the decoded
// configuration is electrically equivalent to the netlist.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
	"repro/internal/report"
)

// A 4-bit Johnson counter with an enable: a small but real sequential
// design (LUTs + flip-flops) for the flow to chew on.
const johnson = `
.model johnson
.inputs en
.outputs q0 q1 q2 q3
.names en q0 q3 d0
01- 1
1-0 1
.latch d0 q0 re clk 0
.names en q1 q0 d1
01- 1
1-1 1
.latch d1 q1 re clk 0
.names en q2 q1 d2
01- 1
1-1 1
.latch d2 q2 re clk 0
.names en q3 q2 d3
01- 1
1-1 1
.latch d3 q3 re clk 0
.end
`

func main() {
	flow := repro.NewFlow()
	flow.W = 8       // narrow fabric is plenty for this design
	flow.Cluster = 1 // finest-grain coding (one macro per entry)
	flow.PlaceEffort = 2

	c, err := flow.CompileBLIF(strings.NewReader(johnson))
	if err != nil {
		log.Fatalf("compile: %v", err)
	}

	fmt.Println("=== Virtual Bit-Stream quickstart ===")
	s := c.Design.Stats()
	fmt.Printf("packed design : %d logic blocks (%d registered), %d pads, %d nets\n",
		s.LogicBlocks, s.Registered, s.InputPads+s.OutputPads, s.Nets)
	fmt.Printf("fabric        : %dx%d macros, %d tracks/channel, %d-LUTs\n",
		c.Grid.Width, c.Grid.Height, c.ChannelWidth, 6)
	fmt.Printf("raw bitstream : %s (%d bits/macro)\n",
		report.Bits(c.Raw.SizeBits()), c.VBS.P.NRaw())
	fmt.Printf("VBS           : %s -> %s of raw (%.2fx compression)\n",
		report.Bits(c.VBS.Size()),
		report.Percent(c.VBS.CompressionRatio()),
		c.VBS.CompressionFactor())
	fmt.Printf("feedback loop : %d regions coded, %d raw fallbacks, %d reordered\n",
		c.Stats.CodedRegions, c.Stats.RawRegions, c.Stats.ReorderedRegions)

	// The encoder already ran its feedback verification; re-prove it.
	if err := c.Verify(); err != nil {
		log.Fatalf("verification: %v", err)
	}
	fmt.Println("verification  : decoded VBS is electrically equivalent to the netlist")

	// Serialize and parse back, as a controller would receive it.
	blob, err := c.VBS.Encode()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("container     : %d bytes on the wire\n", len(blob))
}
