// Multitask: the run-time management scenario of the paper's
// introduction — several independently compiled hardware tasks share
// one reconfigurable fabric through the reconfiguration controller,
// which loads, relocates and unloads them from their Virtual
// Bit-Streams at run time.
package main

import (
	"fmt"
	"log"
	"strings"

	"repro"
	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/gen"
	"repro/internal/mcnc"
)

func compileTask(name string, scale, w int, cluster int) (*core.VBS, error) {
	prof, err := mcnc.ByName(name)
	if err != nil {
		return nil, err
	}
	d, err := gen.Generate(prof.Scale(scale).GenParams(6))
	if err != nil {
		return nil, err
	}
	flow := repro.NewFlow()
	flow.W = w
	flow.Cluster = cluster
	flow.PlaceEffort = 1
	c, err := flow.Compile(d)
	if err != nil {
		return nil, err
	}
	return c.VBS, nil
}

func occupancyMap(f *fabric.Fabric) string {
	g := f.Grid()
	var sb strings.Builder
	for y := g.Height - 1; y >= 0; y-- {
		for x := 0; x < g.Width; x++ {
			if id := f.OwnerAt(x, y); id == fabric.NoTask {
				sb.WriteByte('.')
			} else {
				sb.WriteByte(byte('A' + int(id)%26))
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

func main() {
	const w = 12
	fab, err := fabric.New(arch.Params{W: w, K: 6}, arch.Grid{Width: 26, Height: 26})
	if err != nil {
		log.Fatal(err)
	}
	ctrl := repro.NewController(fab, 4)

	names := []string{"ex5p", "s298", "misex3"}
	fmt.Println("compiling tasks offline (vbsgen)...")
	var tasks []*core.VBS
	for _, n := range names {
		v, err := compileTask(n, 8, w, 1)
		if err != nil {
			log.Fatalf("%s: %v", n, err)
		}
		fmt.Printf("  %-8s %2dx%-2d macros  VBS %6d bits (%.1f%% of raw)\n",
			n, v.TaskW, v.TaskH, v.Size(), 100*v.CompressionRatio())
		tasks = append(tasks, v)
	}

	fmt.Println("\nloading all tasks through the runtime controller...")
	var loaded []fabric.TaskID
	for i, v := range tasks {
		t, err := ctrl.Load(v)
		if err != nil {
			log.Fatalf("load %s: %v", names[i], err)
		}
		fmt.Printf("  %-8s -> task %d at (%d,%d)\n", names[i], t.ID, t.X, t.Y)
		loaded = append(loaded, t.ID)
	}
	fmt.Printf("\noccupancy (%d free macros):\n%s", fab.FreeMacros(), occupancyMap(fab))

	fmt.Println("unloading the first task, then compacting the fabric...")
	if err := ctrl.Unload(loaded[0]); err != nil {
		log.Fatal(err)
	}
	moved, err := ctrl.Compact()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compaction relocated %d task(s)\n", moved)
	fmt.Printf("\noccupancy (%d free macros):\n%s", fab.FreeMacros(), occupancyMap(fab))

	fmt.Println("defragmentation done: the VBS made the migration a pure runtime operation")
}
