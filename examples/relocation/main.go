// Relocation: the Virtual Bit-Stream is abstracted from its final
// position (Section V of the paper). This example compiles one task,
// decodes it at several positions of a larger fabric, and shows the
// resulting configurations are exact translations of each other —
// something a conventional raw bitstream cannot do without offline
// regeneration.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/bitstream"
	"repro/internal/gen"
	"repro/internal/mcnc"
)

func main() {
	// A scaled-down synthetic twin of the MCNC "tseng" benchmark.
	prof, err := mcnc.ByName("tseng")
	if err != nil {
		log.Fatal(err)
	}
	d, err := gen.Generate(prof.Scale(6).GenParams(6))
	if err != nil {
		log.Fatal(err)
	}

	flow := repro.NewFlow()
	flow.W = 12
	flow.Cluster = 2
	flow.PlaceEffort = 2
	c, err := flow.Compile(d)
	if err != nil {
		log.Fatal(err)
	}
	v := c.VBS
	fmt.Printf("task: %dx%d macros, VBS %d bits (%.1f%% of raw), cluster %d\n",
		v.TaskW, v.TaskH, v.Size(), 100*v.CompressionRatio(), v.Cluster)

	// One fabric big enough for several placements.
	fab, err := c.NewFabric(3)
	if err != nil {
		log.Fatal(err)
	}
	g := fab.Grid()
	fmt.Printf("fabric: %dx%d macros\n\n", g.Width, g.Height)

	positions := []struct{ x, y int }{
		{0, 0},
		{v.TaskW + 1, 0},
		{3, v.TaskH + 2},
		{g.Width - v.TaskW, g.Height - v.TaskH},
	}

	var reference *bitstream.Raw
	for _, pos := range positions {
		target := bitstream.New(v.P, g)
		if err := v.DecodeInto(target, pos.x, pos.y); err != nil {
			log.Fatalf("decode at (%d,%d): %v", pos.x, pos.y, err)
		}
		if reference == nil {
			reference = target
			fmt.Printf("decoded at (%2d,%2d): reference\n", pos.x, pos.y)
			continue
		}
		identical := true
		for x := 0; x < v.TaskW && identical; x++ {
			for y := 0; y < v.TaskH; y++ {
				if !reference.At(x, y).Vec().Equal(target.At(pos.x+x, pos.y+y).Vec()) {
					identical = false
					break
				}
			}
		}
		fmt.Printf("decoded at (%2d,%2d): translation of reference = %v\n",
			pos.x, pos.y, identical)
		if !identical {
			log.Fatal("relocation invariance violated")
		}
	}

	fmt.Println("\nevery placement produced bit-identical macro configurations;")
	fmt.Println("the runtime controller can migrate this task without any offline step")
}
