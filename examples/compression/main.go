// Compression: a single-benchmark walk through the paper's evaluation
// — raw bitstream vs Virtual Bit-Stream at every cluster size
// (Figures 4 and 5 in miniature), against the LZSS dictionary-coding
// baseline of the related work.
package main

import (
	"fmt"
	"log"
	"os"
	"time"

	"repro"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/mcnc"
	"repro/internal/report"
)

func main() {
	benchName := "apex4"
	if len(os.Args) > 1 {
		benchName = os.Args[1]
	}
	prof, err := mcnc.ByName(benchName)
	if err != nil {
		log.Fatal(err)
	}
	scaled := prof.Scale(4)
	d, err := gen.Generate(scaled.GenParams(6))
	if err != nil {
		log.Fatal(err)
	}

	flow := repro.NewFlow()
	flow.W = 20 // the paper's normalized channel width
	flow.PlaceEffort = 2
	c, err := flow.Compile(d)
	if err != nil {
		log.Fatal(err)
	}

	rawBits := c.Raw.SizeBits()
	lzssBits := 8 * len(compress.CompressLZSS(c.Raw.Encode()))
	fmt.Printf("benchmark %s (scaled): %d LBs on a %dx%d fabric, W=20\n\n",
		benchName, d.NumLogicBlocks(), c.Grid.Width, c.Grid.Height)

	tab := &report.Table{
		Title:   "Coding comparison",
		Headers: []string{"Coding", "Size", "% of raw", "Decode"},
	}
	tab.AddRow("raw bitstream", report.Bits(rawBits), "100.0%", "-")
	tab.AddRow("LZSS(raw)", report.Bits(lzssBits), report.Percent(float64(lzssBits)/float64(rawBits)), "-")

	for _, cluster := range []int{1, 2, 3, 4, 6} {
		v, stats, err := core.Encode(c.Design, c.Placement, c.Routing,
			core.EncodeOptions{Cluster: cluster})
		if err != nil {
			log.Fatalf("cluster %d: %v", cluster, err)
		}
		start := time.Now()
		if _, err := v.Decode(); err != nil {
			log.Fatal(err)
		}
		decode := time.Since(start)
		label := fmt.Sprintf("VBS cluster %d", cluster)
		if stats.RawRegions > 0 {
			label += fmt.Sprintf(" (%d raw)", stats.RawRegions)
		}
		tab.AddRow(label, report.Bits(v.Size()),
			report.Percent(v.CompressionRatio()),
			decode.Round(time.Microsecond).String())
	}
	tab.Render(os.Stdout)

	fmt.Println("\nnote the paper's trade-off: coarser clusters compress harder but")
	fmt.Println("cost more decode time, and past the sweet spot fallbacks erode the gain")
}
