// Command vbschaos runs named chaos recipes against a vbsd fleet
// while a continuous mixed workload drives traffic, then checks
// fleet-wide invariants: every acked blob retrievable byte-identical,
// replica counts back at R, no orphaned fabric occupancy, no task
// resurrection, /metrics still scrapeable on the gateway and a node
// with the required families present, client error budget held.
//
//	vbschaos -recipe nodekill -short          # in-process fleet, CI-sized
//	vbschaos -recipe all -vbsd ./bin/vbsd     # real vbsd subprocesses, full soak
//	vbschaos -list                            # show recipes
//
// By default the fleet runs in-process (fast, hermetic). With -vbsd
// pointing at a built daemon binary, nodes are real subprocesses and
// the kill primitive is a real SIGKILL. The gateway always runs
// in-process. Each recipe emits a JSON report; exit is non-zero if
// any recipe fails an invariant.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"repro/internal/chaos"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vbschaos", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		recipe   = fs.String("recipe", "", "recipe to run, or \"all\" (see -list)")
		list     = fs.Bool("list", false, "list recipes and exit")
		short    = fs.Bool("short", false, "CI-sized run: short phases, tight deadlines")
		nodes    = fs.Int("nodes", 3, "vbsd node count")
		replicas = fs.Int("replicas", 2, "blob replica count at the gateway")
		vbsd     = fs.String("vbsd", "", "path to a vbsd binary (empty = in-process nodes)")
		workDir  = fs.String("work-dir", "", "fleet scratch directory (empty = temp dir, removed on exit)")
		seed     = fs.Int64("seed", 1, "workload and generation seed")
		workers  = fs.Int("workers", 0, "workload workers (0 = default)")
		quiet    = fs.Bool("quiet", false, "suppress progress logging on stderr")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, name := range chaos.Names() {
			r, _ := chaos.Lookup(name)
			fmt.Fprintf(stdout, "%-12s %s\n", r.Name, r.Description)
		}
		return 0
	}
	if *recipe == "" {
		fmt.Fprintln(stderr, "vbschaos: -recipe is required (or -list)")
		return 2
	}
	names := []string{*recipe}
	if *recipe == "all" {
		names = chaos.Names()
	} else if _, ok := chaos.Lookup(*recipe); !ok {
		fmt.Fprintf(stderr, "vbschaos: unknown recipe %q (have %v)\n", *recipe, chaos.Names())
		return 2
	}

	logf := func(format string, a ...any) { fmt.Fprintf(stderr, format+"\n", a...) }
	if *quiet {
		logf = func(string, ...any) {}
	}

	ctx := context.Background()
	failed := 0
	for _, name := range names {
		rep, err := runOne(ctx, name, *nodes, *replicas, *vbsd, *workDir, *seed, *workers, *short, logf)
		if rep != nil {
			enc := json.NewEncoder(stdout)
			enc.SetIndent("", "  ")
			_ = enc.Encode(rep)
		}
		switch {
		case err != nil:
			fmt.Fprintf(stderr, "vbschaos: %v\n", err)
			failed++
		case !rep.Passed:
			fmt.Fprintf(stderr, "vbschaos: recipe %s FAILED invariants\n", name)
			failed++
		default:
			logf("vbschaos: recipe %s passed (%.1fs, %d ops, %d fault(s))",
				name, rep.WallS, rep.Workload.Ops, len(rep.FaultsInjected))
		}
	}
	if failed > 0 {
		return 1
	}
	return 0
}

// runOne builds a fresh fleet, runs one recipe, and tears down.
func runOne(ctx context.Context, name string, nodes, replicas int, vbsd, workDir string,
	seed int64, workers int, short bool, logf func(string, ...any)) (*chaos.Report, error) {
	dir := workDir
	if dir == "" {
		var err error
		if dir, err = os.MkdirTemp("", "vbschaos-"); err != nil {
			return nil, err
		}
		defer os.RemoveAll(dir)
	} else if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}

	probe := 500 * time.Millisecond
	if short {
		probe = 150 * time.Millisecond
	}
	var fleet *chaos.Fleet
	var err error
	if vbsd == "" {
		logf("vbschaos: %s: starting %d in-process node(s) + gateway (replicas=%d)", name, nodes, replicas)
		fleet, err = chaos.NewLocalFleet(ctx, dir, nodes, replicas, probe)
	} else {
		logf("vbschaos: %s: starting %d vbsd subprocess(es) + gateway (replicas=%d)", name, nodes, replicas)
		fleet, err = chaos.NewProcFleet(ctx, vbsd, dir, nodes, replicas, probe)
	}
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	defer fleet.Close()

	return chaos.Run(ctx, fleet, name, chaos.Config{
		Short:   short,
		Seed:    seed,
		Workers: workers,
		Log:     logf,
	})
}
