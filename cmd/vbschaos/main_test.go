package main

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"repro/internal/chaos"
)

func TestListRecipes(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run([]string{"-list"}, &out, &errb); code != 0 {
		t.Fatalf("-list exit = %d, stderr: %s", code, errb.String())
	}
	for _, name := range chaos.Names() {
		if !strings.Contains(out.String(), name) {
			t.Fatalf("-list output missing %q:\n%s", name, out.String())
		}
	}
}

func TestBadArgs(t *testing.T) {
	var out, errb bytes.Buffer
	if code := run(nil, &out, &errb); code != 2 {
		t.Fatalf("no -recipe: exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "-recipe is required") {
		t.Fatalf("no usage hint on stderr: %s", errb.String())
	}
	errb.Reset()
	if code := run([]string{"-recipe", "nope"}, &out, &errb); code != 2 {
		t.Fatalf("unknown recipe: exit = %d, want 2", code)
	}
	if !strings.Contains(errb.String(), "unknown recipe") {
		t.Fatalf("no unknown-recipe error on stderr: %s", errb.String())
	}
}

// TestRunNodeKillShort drives the real engine end to end through the
// CLI: in-process fleet, short profile, JSON report on stdout.
func TestRunNodeKillShort(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos run in -short mode")
	}
	var out, errb bytes.Buffer
	code := run([]string{
		"-recipe", "nodekill",
		"-short",
		"-nodes", "3",
		"-workers", "3",
		"-work-dir", t.TempDir(),
	}, &out, &errb)
	if code != 0 {
		t.Fatalf("exit = %d\nstdout:\n%s\nstderr:\n%s", code, out.String(), errb.String())
	}
	var rep chaos.Report
	if err := json.Unmarshal(out.Bytes(), &rep); err != nil {
		t.Fatalf("stdout is not one JSON report: %v\n%s", err, out.String())
	}
	if rep.Recipe != "nodekill" || !rep.Passed || !rep.Short {
		t.Fatalf("unexpected report: %+v", rep)
	}
	if len(rep.FaultsInjected) == 0 || rep.Workload.Ops == 0 {
		t.Fatalf("report shows no activity: %+v", rep)
	}
	if !strings.Contains(errb.String(), "recipe nodekill passed") {
		t.Fatalf("no pass line on stderr:\n%s", errb.String())
	}
}
