// Command experiments regenerates the paper's evaluation: Table II
// (benchmark set and minimum channel widths), Figure 4 (raw vs VBS
// sizes), Figure 5 (cluster-size study), plus the decode-cost,
// fallback and ablation tables.
//
// Quick run (scaled-down benchmarks, no MCW search):
//
//	experiments -fig4 -fig5
//
// Full Table II reproduction (slow: full-size placement, routing and
// binary channel-width search for 20 benchmarks):
//
//	experiments -all -scale 1
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro/internal/exp"
)

func main() {
	var (
		table2   = flag.Bool("table2", false, "measure minimum channel widths (Table II)")
		fig4     = flag.Bool("fig4", false, "raw vs VBS size comparison (Figure 4)")
		fig5     = flag.Bool("fig5", false, "cluster size study (Figure 5)")
		decode   = flag.Bool("decode", false, "decode cost table")
		ablation = flag.Bool("ablation", false, "encoder ablations")
		all      = flag.Bool("all", false, "run everything")
		scale    = flag.Int("scale", 4, "benchmark downscale factor (1 = full Table II sizes)")
		w        = flag.Int("w", 20, "normalized channel width")
		clusters = flag.String("clusters", "1,2,3,4,5,6", "cluster sizes for the Figure 5 sweep")
		benches  = flag.String("benchmarks", "", "comma-separated benchmark subset (default all 20)")
		effort   = flag.Float64("effort", 1, "placement annealing effort (VPR default is 10)")
		seed     = flag.Int64("seed", 0, "seed offset for synthetic circuit generation")
		quiet    = flag.Bool("q", false, "suppress progress output")
	)
	flag.Parse()

	if *all {
		*table2, *fig4, *fig5, *decode, *ablation = true, true, true, true, true
	}
	if !*table2 && !*fig4 && !*fig5 && !*decode && !*ablation {
		fmt.Fprintln(os.Stderr, "nothing selected; use -table2 -fig4 -fig5 -decode -ablation or -all")
		flag.Usage()
		os.Exit(2)
	}

	cfg := exp.Config{
		Scale:      *scale,
		NormW:      *w,
		MeasureMCW: *table2,
		Ablations:  *ablation,
		PlaceInner: *effort,
		Seed:       *seed,
	}
	if !*quiet {
		cfg.Progress = os.Stderr
	}
	for _, c := range strings.Split(*clusters, ",") {
		var v int
		if _, err := fmt.Sscanf(strings.TrimSpace(c), "%d", &v); err != nil || v < 1 {
			fmt.Fprintf(os.Stderr, "bad cluster size %q\n", c)
			os.Exit(2)
		}
		cfg.Clusters = append(cfg.Clusters, v)
	}
	if *benches != "" {
		for _, b := range strings.Split(*benches, ",") {
			cfg.Benchmarks = append(cfg.Benchmarks, strings.TrimSpace(b))
		}
	}

	results, err := exp.Run(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "experiments: %v\n", err)
		os.Exit(1)
	}

	out := os.Stdout
	if *table2 {
		results.Table2().Render(out)
		fmt.Fprintln(out)
	}
	if *fig4 {
		results.Fig4().Render(out)
		fmt.Fprintln(out)
	}
	if *fig5 {
		results.Fig5().Render(out)
		fmt.Fprintln(out)
	}
	if *decode {
		results.DecodeTable().Render(out)
		fmt.Fprintln(out)
		results.FallbackTable().Render(out)
		fmt.Fprintln(out)
	}
	if *ablation {
		results.AblationTable().Render(out)
	}
}
