// Command vbsd is the run-time configuration management daemon: it
// owns a pool of simulated fabrics and serves Virtual Bit-Stream
// operations over an HTTP/JSON API — load (with content-addressed
// storage, one-time parallel de-virtualization and an LRU cache of
// decoded bitstreams), unload, on-the-fly relocation, and occupancy /
// latency / compression statistics.
//
//	vbsd -addr :8931 -fabrics 2 -size 32x32 -w 20 -k 6 -cache-mbits 64 -policy emptiest -data-dir /var/lib/vbsd
//
// Placement runs through the internal/sched policy engine (first-fit,
// best-fit, emptiest) with dry-run admission; when no fabric admits a
// task the daemon compacts the most promising fabric and retries once.
//
// With -data-dir the daemon persists every admitted VBS to a
// crash-safe content-addressed repository: RAM eviction demotes to
// disk instead of deleting, misses fall back to disk, a boot recovery
// scan re-indexes surviving blobs (quarantining corrupt ones), and
// -warm N pre-decodes stored blobs into the cache at startup.
//
// Background maintenance (tombstone sweeps, repository scrubs, cache
// warming) runs through the jobs engine: POST /jobs starts one,
// GET /jobs lists them, DELETE /jobs/{id} aborts; GET /metrics
// exposes Prometheus text-format counters, gauges and latency
// histograms, job progress included.
//
// Endpoints: POST /tasks, GET /tasks, DELETE /tasks/{id},
// POST /tasks/{id}/relocate, POST /fabrics/{i}/compact, GET /fabrics,
// GET /vbs, GET /vbs/{digest}, DELETE /vbs/{digest}, GET /stats,
// GET /healthz, POST /jobs, GET /jobs, GET /jobs/{id},
// DELETE /jobs/{id}, GET /metrics.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/arch"
	"repro/internal/controller"
	"repro/internal/fabric"
	"repro/internal/jobs"
	"repro/internal/sched"
	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8931", "listen address")
		nFabrics  = flag.Int("fabrics", 2, "number of fabrics in the pool")
		size      = flag.String("size", "32x32", "fabric dimensions in macros, WxH")
		w         = flag.Int("w", 20, "channel width of every fabric")
		k         = flag.Int("k", 6, "LUT size of every fabric")
		workers   = flag.Int("workers", 0, "de-virtualization workers per decode (0 = GOMAXPROCS)")
		cacheMbit = flag.Int64("cache-mbits", 64, "decoded-bitstream cache size in megabits (0 = unbounded)")
		storeMB   = flag.Int("store-mbytes", 256, "content-addressed VBS store size in megabytes (0 = unbounded)")
		policy    = flag.String("policy", "", "placement policy: "+strings.Join(sched.Names(), ", ")+" (default emptiest)")
		dataDir   = flag.String("data-dir", "", "persistent VBS repository directory (empty = RAM-only store)")
		warm      = flag.Int("warm", 0, "with -data-dir, pre-decode up to N stored blobs into the cache at boot (-1 = all, 0 = off)")
		chaos     = flag.Bool("chaos", false, "expose /chaos/faults fault-injection endpoints (testing only)")
		tombTTL   = flag.Duration("tombstone-ttl", 0, "with -data-dir, how long DELETE /vbs tombstones block re-replication (0 = 24h default)")
		streams   = flag.Bool("streams", true, "serve the persistent frame-stream endpoint (GET /stream) for gateway replication and batches")
	)
	flag.Parse()

	var gw, gh int
	if _, err := fmt.Sscanf(*size, "%dx%d", &gw, &gh); err != nil {
		log.Fatalf("vbsd: bad -size %q: %v", *size, err)
	}
	if *nFabrics < 1 {
		log.Fatalf("vbsd: -fabrics must be >= 1")
	}
	p := arch.Params{W: *w, K: *k}
	ctrls := make([]*controller.Controller, *nFabrics)
	for i := range ctrls {
		f, err := fabric.New(p, arch.Grid{Width: gw, Height: gh})
		if err != nil {
			log.Fatalf("vbsd: fabric %d: %v", i, err)
		}
		ctrls[i] = controller.New(f, *workers)
	}

	srv, err := server.New(ctrls, server.Options{
		CacheBits:      *cacheMbit * 1_000_000,
		StoreBytes:     *storeMB * 1_000_000,
		DecodeWorkers:  *workers,
		Policy:         *policy,
		DataDir:        *dataDir,
		EnableChaos:    *chaos,
		TombstoneTTL:   *tombTTL,
		DisableStreams: !*streams,
	})
	if err != nil {
		log.Fatalf("vbsd: %v", err)
	}
	if *chaos {
		log.Printf("vbsd: WARNING: /chaos/faults fault injection enabled")
	}
	if *dataDir != "" {
		rep := srv.RecoveryReport()
		log.Printf("vbsd: repo %s: recovered %d blob(s) (%d bytes), quarantined %d, removed %d temp file(s)",
			*dataDir, rep.Recovered, rep.Bytes, rep.Quarantined, rep.TempRemoved)
		if *warm != 0 {
			// Warm-up runs as a background job: the daemon serves its
			// first requests immediately, the job is visible in GET /jobs
			// and abortable with DELETE /jobs/{id}.
			args := map[string]string{}
			if *warm > 0 {
				args["max"] = strconv.Itoa(*warm)
			}
			if j, err := srv.Jobs().Start("warm", args); err != nil {
				log.Printf("vbsd: cache warm-up: %v", err)
			} else {
				go func() {
					s, _ := j.Wait(context.Background())
					if s.Status == jobs.StatusDone {
						log.Printf("vbsd: pre-decoded %d blob(s) into the cache", s.Progress["warmed"])
					} else {
						log.Printf("vbsd: cache warm-up %s after %d blob(s): %s",
							s.Status, s.Progress["warmed"], s.Error)
					}
				}()
			}
		}
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(shutdownCtx)
	}()
	// Housekeeping: hourly, reclaim expired delete tombstones (as an
	// observable job — expiry is enforced at read time either way; the
	// sweep only keeps the tombstone directory from accumulating
	// debris) and drop day-old terminal job records from the table.
	go func() {
		tick := time.NewTicker(time.Hour)
		defer tick.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
				if j, err := srv.Jobs().Start("tombstone-sweep", nil); err == nil {
					if s, werr := j.Wait(ctx); werr == nil && s.Progress["swept"] > 0 {
						log.Printf("vbsd: swept %d expired tombstone(s)", s.Progress["swept"])
					}
				}
				srv.Jobs().Sweep(24 * time.Hour)
			}
		}
	}()

	log.Printf("vbsd: serving %d %dx%d fabric(s) (W=%d, K=%d) on %s", *nFabrics, gw, gh, *w, *k, *addr)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("vbsd: %v", err)
	}
	// Graceful shutdown: abort running jobs (bounded wait), then make
	// sure every RAM-resident blob reached the disk tier (normally a
	// no-op — admissions write through).
	jctx, jcancel := context.WithTimeout(context.Background(), 5*time.Second)
	if err := srv.Jobs().Shutdown(jctx); err != nil {
		log.Printf("vbsd: job shutdown: %v", err)
	}
	jcancel()
	if err := srv.Flush(); err != nil {
		log.Printf("vbsd: shutdown flush: %v", err)
	}
	log.Printf("vbsd: shut down")
}
