// Command vbsd is the run-time configuration management daemon: it
// owns a pool of simulated fabrics and serves Virtual Bit-Stream
// operations over an HTTP/JSON API — load (with content-addressed
// storage, one-time parallel de-virtualization and an LRU cache of
// decoded bitstreams), unload, on-the-fly relocation, and occupancy /
// latency / compression statistics.
//
//	vbsd -addr :8931 -fabrics 2 -size 32x32 -w 20 -k 6 -cache-mbits 64 -policy emptiest
//
// Placement runs through the internal/sched policy engine (first-fit,
// best-fit, emptiest) with dry-run admission; when no fabric admits a
// task the daemon compacts the most promising fabric and retries once.
//
// Endpoints: POST /tasks, GET /tasks, DELETE /tasks/{id},
// POST /tasks/{id}/relocate, POST /fabrics/{i}/compact, GET /fabrics,
// GET /stats, GET /healthz.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/arch"
	"repro/internal/controller"
	"repro/internal/fabric"
	"repro/internal/sched"
	"repro/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":8931", "listen address")
		nFabrics  = flag.Int("fabrics", 2, "number of fabrics in the pool")
		size      = flag.String("size", "32x32", "fabric dimensions in macros, WxH")
		w         = flag.Int("w", 20, "channel width of every fabric")
		k         = flag.Int("k", 6, "LUT size of every fabric")
		workers   = flag.Int("workers", 0, "de-virtualization workers per decode (0 = GOMAXPROCS)")
		cacheMbit = flag.Int64("cache-mbits", 64, "decoded-bitstream cache size in megabits (0 = unbounded)")
		storeMB   = flag.Int("store-mbytes", 256, "content-addressed VBS store size in megabytes (0 = unbounded)")
		policy    = flag.String("policy", "", "placement policy: "+strings.Join(sched.Names(), ", ")+" (default emptiest)")
	)
	flag.Parse()

	var gw, gh int
	if _, err := fmt.Sscanf(*size, "%dx%d", &gw, &gh); err != nil {
		log.Fatalf("vbsd: bad -size %q: %v", *size, err)
	}
	if *nFabrics < 1 {
		log.Fatalf("vbsd: -fabrics must be >= 1")
	}
	p := arch.Params{W: *w, K: *k}
	ctrls := make([]*controller.Controller, *nFabrics)
	for i := range ctrls {
		f, err := fabric.New(p, arch.Grid{Width: gw, Height: gh})
		if err != nil {
			log.Fatalf("vbsd: fabric %d: %v", i, err)
		}
		ctrls[i] = controller.New(f, *workers)
	}

	srv, err := server.New(ctrls, server.Options{
		CacheBits:     *cacheMbit * 1_000_000,
		StoreBytes:    *storeMB * 1_000_000,
		DecodeWorkers: *workers,
		Policy:        *policy,
	})
	if err != nil {
		log.Fatalf("vbsd: %v", err)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(shutdownCtx)
	}()

	log.Printf("vbsd: serving %d %dx%d fabric(s) (W=%d, K=%d) on %s", *nFabrics, gw, gh, *w, *k, *addr)
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("vbsd: %v", err)
	}
	log.Printf("vbsd: shut down")
}
