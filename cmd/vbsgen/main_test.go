package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestLoadDesignFromBench(t *testing.T) {
	d, err := loadDesign("", "ex5p", 8, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	if d.NumLogicBlocks() == 0 {
		t.Error("empty benchmark design")
	}
}

func TestLoadDesignFromBLIF(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "t.blif")
	blif := ".model t\n.inputs a b\n.outputs z\n.names a b z\n11 1\n.end\n"
	if err := os.WriteFile(path, []byte(blif), 0o644); err != nil {
		t.Fatal(err)
	}
	d, err := loadDesign(path, "", 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumLogicBlocks() != 1 {
		t.Errorf("LBs = %d, want 1", d.NumLogicBlocks())
	}
}

func TestLoadDesignErrors(t *testing.T) {
	if _, err := loadDesign("", "", 1, 6); err == nil {
		t.Error("no input accepted")
	}
	if _, err := loadDesign("x.blif", "ex5p", 1, 6); err == nil {
		t.Error("both inputs accepted")
	}
	if _, err := loadDesign("/nonexistent.blif", "", 1, 6); err == nil {
		t.Error("missing file accepted")
	}
	if _, err := loadDesign("", "unknown-bench", 1, 6); err == nil {
		t.Error("unknown benchmark accepted")
	}
}
