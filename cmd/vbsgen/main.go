// Command vbsgen is the offline VBS generation backend of the paper's
// Section III-B: it takes a hardware description (a BLIF netlist, or a
// named synthetic MCNC twin), runs synthesis, placement and routing,
// and emits both the raw configuration bit-stream and the compressed
// Virtual Bit-Stream.
//
//	vbsgen -blif design.blif -o design.vbs -raw design.rbs
//	vbsgen -bench alu4 -scale 4 -cluster 2 -o alu4.vbs
package main

import (
	"flag"
	"fmt"
	"os"

	"repro"
	"repro/internal/gen"
	"repro/internal/mcnc"
	"repro/internal/netlist"
	"repro/internal/report"
	"repro/internal/synth"
)

func main() {
	var (
		blifPath = flag.String("blif", "", "input BLIF netlist")
		bench    = flag.String("bench", "", "synthetic MCNC benchmark name (alternative to -blif)")
		scale    = flag.Int("scale", 4, "benchmark downscale factor with -bench")
		w        = flag.Int("w", 20, "channel width (0 with -autow searches the minimum)")
		autoW    = flag.Bool("autow", false, "binary-search the minimum channel width")
		k        = flag.Int("k", 6, "LUT size")
		cluster  = flag.Int("cluster", 1, "VBS cluster size")
		seed     = flag.Int64("seed", 1, "placement seed")
		effort   = flag.Float64("effort", 10, "placement annealing effort")
		outPath  = flag.String("o", "", "output VBS file")
		rawPath  = flag.String("raw", "", "output raw bitstream file")
	)
	flag.Parse()

	design, err := loadDesign(*blifPath, *bench, *scale, *k)
	if err != nil {
		fail(err)
	}

	flow := repro.NewFlow()
	flow.K = *k
	flow.W = *w
	flow.AutoWidth = *autoW
	flow.Cluster = *cluster
	flow.Seed = *seed
	flow.PlaceEffort = *effort

	c, err := flow.Compile(design)
	if err != nil {
		fail(err)
	}
	if err := c.Verify(); err != nil {
		fail(fmt.Errorf("post-compile verification: %w", err))
	}

	s := design.Stats()
	fmt.Printf("design   : %s (%d LBs, %d pads, %d nets)\n",
		design.Name, s.LogicBlocks, s.InputPads+s.OutputPads, s.Nets)
	fmt.Printf("fabric   : %dx%d macros, W=%d, K=%d\n",
		c.Grid.Width, c.Grid.Height, c.ChannelWidth, *k)
	fmt.Printf("raw BS   : %s\n", report.Bits(c.Raw.SizeBits()))
	fmt.Printf("VBS      : %s (cluster %d) = %s of raw, factor %.2fx\n",
		report.Bits(c.VBS.Size()), *cluster,
		report.Percent(c.VBS.CompressionRatio()), c.VBS.CompressionFactor())
	fmt.Printf("feedback : %d regions used, %d coded, %d raw fallbacks, %d reordered\n",
		c.Stats.UsedRegions, c.Stats.CodedRegions, c.Stats.RawRegions, c.Stats.ReorderedRegions)

	if *outPath != "" {
		data, err := c.VBS.Encode()
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*outPath, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote    : %s (%d bytes)\n", *outPath, len(data))
	}
	if *rawPath != "" {
		data := c.Raw.Encode()
		if err := os.WriteFile(*rawPath, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote    : %s (%d bytes)\n", *rawPath, len(data))
	}
}

func loadDesign(blifPath, bench string, scale, k int) (*netlist.Design, error) {
	switch {
	case blifPath != "" && bench != "":
		return nil, fmt.Errorf("use -blif or -bench, not both")
	case blifPath != "":
		f, err := os.Open(blifPath)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		c, err := netlist.ParseBLIF(f)
		if err != nil {
			return nil, err
		}
		return synth.Synthesize(c, k)
	case bench != "":
		p, err := mcnc.ByName(bench)
		if err != nil {
			return nil, err
		}
		return gen.Generate(p.Scale(scale).GenParams(k))
	default:
		return nil, fmt.Errorf("no input: use -blif FILE or -bench NAME")
	}
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "vbsgen: %v\n", err)
	os.Exit(1)
}
