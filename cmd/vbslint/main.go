// Command vbslint runs this repository's invariant analyzers — the
// suite under internal/analysis — over the module, together with
// go vet, and exits non-zero on any finding. It is the single lint
// entry point: `make lint` and the CI lint job both run it, so the
// invariant set is versioned in-repo and changes with the code it
// checks.
//
// Usage:
//
//	vbslint [flags] [packages]
//
// With no package patterns, ./... is linted. Findings print one per
// line, compiler-style:
//
//	internal/controller/controller.go:431:52: error argument formatted with %v in fmt.Errorf; ... (errwrap)
//
// Suppress a deliberate violation at its line (or the line above)
// with a directive naming the analyzers and a reason:
//
//	//vbslint:ignore errwrap rendered for humans, never matched
//
// Exit status: 0 clean, 1 findings (or vet failures), 2 internal
// error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strings"

	"repro/internal/analysis/driver"
	"repro/internal/analysis/suite"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

// run is main, factored for the smoke tests: args are the command
// line minus the program name, and the exit status is returned
// instead of passed to os.Exit.
func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vbslint", flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("C", ".", "change to `dir` before loading packages")
	tests := fs.Bool("tests", true, "also analyze test packages")
	vet := fs.Bool("vet", true, "also run go vet over the same patterns")
	list := fs.Bool("list", false, "list the analyzers and exit")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: vbslint [flags] [packages]\n\nRuns the repro invariant analyzers (and go vet) over the module.\n\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range suite.All() {
			fmt.Fprintf(stdout, "%-13s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := driver.Load(*dir, *tests, patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "vbslint: %v\n", err)
		return 2
	}
	findings, err := driver.Run(pkgs, suite.All())
	if err != nil {
		fmt.Fprintf(stderr, "vbslint: %v\n", err)
		return 2
	}
	base, _ := filepath.Abs(*dir)
	for _, f := range findings {
		if rel, err := filepath.Rel(base, f.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			f.Pos.Filename = rel
		}
		fmt.Fprintln(stdout, f)
	}

	bad := len(findings) > 0
	if *vet {
		cmd := exec.Command("go", append([]string{"vet"}, patterns...)...)
		cmd.Dir = *dir
		cmd.Stdout = stdout
		cmd.Stderr = stderr
		if err := cmd.Run(); err != nil {
			bad = true
		}
	}
	if bad {
		return 1
	}
	return 0
}
