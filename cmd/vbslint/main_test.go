package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestSeededViolations lints a throwaway module seeded with one
// violation per analyzer class vbslint can reach without this
// repository's types, plus a malformed suppression directive, and
// checks each one is reported.
func TestSeededViolations(t *testing.T) {
	dir := t.TempDir()
	write := func(name, src string) {
		t.Helper()
		if err := os.WriteFile(filepath.Join(dir, name), []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write("go.mod", "module seeded\n\ngo 1.24\n")
	write("seeded.go", `package seeded

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
)

type state struct {
	mu   sync.Mutex
	hits atomic.Uint64
}

func wrap(err error) error {
	return fmt.Errorf("load: %v", err)
}

func fetch(s *state) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, err := http.Get("http://example.invalid/")
	return err
}

func snapshot(s *state) atomic.Uint64 {
	//vbslint:ignore
	return s.hits
}
`)

	var stdout, stderr bytes.Buffer
	code := run([]string{"-vet=false", "-C", dir, "."}, &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit = %d, want 1\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
	out := stdout.String()
	for _, needle := range []string{"(errwrap)", "(lockio)", "(atomicfaults)", "malformed //vbslint:ignore"} {
		if !strings.Contains(out, needle) {
			t.Errorf("output does not mention %q:\n%s", needle, out)
		}
	}
}

// TestSuppressedViolation checks a well-formed directive silences the
// finding and flips the exit status to 0.
func TestSuppressedViolation(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "go.mod"), []byte("module seeded\n\ngo 1.24\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	src := `package seeded

import "fmt"

func wrap(err error) error {
	//vbslint:ignore errwrap flattening is deliberate: logged, never matched
	return fmt.Errorf("load: %v", err)
}
`
	if err := os.WriteFile(filepath.Join(dir, "seeded.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-vet=false", "-C", dir, "."}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}

// TestCleanTree lints this repository, tests included, and demands
// zero findings: the tree must stay clean against its own invariants.
// (go vet is exercised by the CI lint job via make lint; skipping it
// here keeps the test hermetic to the analyzer suite.)
func TestCleanTree(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	root := filepath.Dir(filepath.Dir(wd)) // cmd/vbslint -> module root
	if _, err := os.Stat(filepath.Join(root, "go.mod")); err != nil {
		t.Fatalf("module root not at %s: %v", root, err)
	}
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-vet=false", "-C", root, "./..."}, &stdout, &stderr); code != 0 {
		t.Fatalf("vbslint on the tree: exit %d, want 0\nstdout:\n%s\nstderr:\n%s", code, stdout.String(), stderr.String())
	}
}

// TestListFlag checks -list names every analyzer in the suite.
func TestListFlag(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-list"}, &stdout, &stderr); code != 0 {
		t.Fatalf("exit = %d, want 0", code)
	}
	for _, name := range []string{"errwrap", "ctxclient", "poolescape", "lockio", "atomicfaults"} {
		if !strings.Contains(stdout.String(), name) {
			t.Errorf("-list output missing %s:\n%s", name, stdout.String())
		}
	}
}
