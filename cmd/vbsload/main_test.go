package main

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/controller"
	"repro/internal/fabric"
	"repro/internal/server"
)

func startDaemon(t *testing.T) string {
	t.Helper()
	f, err := fabric.New(arch.Params{W: 8, K: 6}, arch.Grid{Width: 64, Height: 64})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New([]*controller.Controller{controller.New(f, 2)}, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return hs.URL
}

func TestRunJSONSummary(t *testing.T) {
	url := startDaemon(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-url", url, "-ops", "40", "-workers", "4",
		"-tasks", "2", "-mix", "40:40:20", "-json",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}

	var s summary
	if err := json.Unmarshal(stdout.Bytes(), &s); err != nil {
		t.Fatalf("bad JSON summary: %v\n%s", err, stdout.String())
	}
	if s.Ops != 40 {
		t.Errorf("ops = %d, want 40", s.Ops)
	}
	if s.Errors != 0 {
		t.Errorf("errors = %d (%v)", s.Errors, s.LastErrors)
	}
	if s.ReqPerSec <= 0 || s.WallS <= 0 {
		t.Errorf("throughput fields = %+v", s)
	}
	if s.PerOp["load"].Count == 0 {
		t.Error("no load op ran")
	}
	for name, st := range s.PerOp {
		if st.Count > 0 && (st.P50MS <= 0 || st.MaxMS < st.P99MS || st.P99MS < st.P50MS) {
			t.Errorf("%s percentiles inconsistent: %+v", name, st)
		}
	}

	// Cleanup drained every loaded task.
	cl := server.NewClient(url, nil)
	tasks, err := cl.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 0 {
		t.Errorf("%d task(s) left after cleanup", len(tasks))
	}
}

// TestRunScrape: -scrape folds the daemon's own histogram percentiles
// into the report, with counts matching the successful server-side ops.
func TestRunScrape(t *testing.T) {
	url := startDaemon(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-url", url, "-scrape", url, "-ops", "30", "-workers", "4",
		"-tasks", "2", "-mix", "40:40:20", "-json", "-cleanup=false",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	var s summary
	if err := json.Unmarshal(stdout.Bytes(), &s); err != nil {
		t.Fatalf("bad JSON summary: %v\n%s", err, stdout.String())
	}
	if s.ScrapeURL != url {
		t.Errorf("scrape_url = %q, want %q", s.ScrapeURL, url)
	}
	if len(s.ServerSide) == 0 {
		t.Fatalf("no server_side block in %s", stdout.String())
	}
	// Every op the client ran successfully must show up server-side
	// with the same count (the daemon observes each handler once).
	for _, op := range []string{"load", "vbs_get", "unload"} {
		st, ok := s.ServerSide[op]
		if !ok {
			t.Errorf("server_side missing op %q (have %v)", op, s.ServerSide)
			continue
		}
		if st.Count <= 0 || st.P50MS < 0 || st.P99MS < st.P50MS {
			t.Errorf("server_side[%s] = %+v inconsistent", op, st)
		}
	}
	if s.Errors != 0 {
		t.Fatalf("errors = %d (%v)", s.Errors, s.LastErrors)
	}
	if got, want := s.ServerSide["load"].Count, s.PerOp["load"].Count; got != want {
		t.Errorf("server-side load count = %d, client-side = %d", got, want)
	}
}

func TestRunHumanSummary(t *testing.T) {
	url := startDaemon(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-url", url, "-ops", "10", "-workers", "2", "-tasks", "1"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstderr: %s", code, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "req/s") || !strings.Contains(out, "p99") {
		t.Errorf("summary output: %s", out)
	}
}

func TestBadFlags(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-mix", "1:2"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad mix exit = %d, want 2", code)
	}
	if code := run([]string{"-workers", "0"}, &stdout, &stderr); code != 2 {
		t.Errorf("bad workers exit = %d, want 2", code)
	}
	if code := run([]string{"-url", "http://127.0.0.1:1", "-ops", "1"}, &stdout, &stderr); code != 1 {
		t.Errorf("unreachable target exit = %d, want 1", code)
	}
}

func TestParseMix(t *testing.T) {
	w, err := parseMix("20:60:20")
	if err != nil || w != [nOps]int{20, 60, 20} {
		t.Fatalf("parseMix = %v, %v", w, err)
	}
	for _, bad := range []string{"", "1:2", "a:b:c", "0:0:0", "-1:2:3"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) accepted", bad)
		}
	}
}

// brokenDaemon serves /fabrics (so task generation proceeds) but
// fails every mutating endpoint — the shape of a dead backend behind
// a live proxy.
func brokenDaemon(t *testing.T) string {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /fabrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`[{"index":0,"width":16,"height":16,"channel_width":8,"lut_size":6}]`))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"injected backend failure"}`, http.StatusInternalServerError)
	})
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)
	return hs.URL
}

// TestMaxErrorRate: a run where every op fails must exit non-zero
// once a budget is set — and keep exiting 0 under the default budget
// of 1.0, preserving prior behavior for existing scripts.
func TestMaxErrorRate(t *testing.T) {
	url := brokenDaemon(t)
	common := []string{"-url", url, "-ops", "10", "-workers", "2", "-tasks", "1", "-mix", "100:0:0", "-cleanup=false"}

	var stdout, stderr bytes.Buffer
	code := run(append(common, "-max-error-rate", "0.5"), &stdout, &stderr)
	if code != 1 {
		t.Fatalf("exit %d with 100%% errors and budget 0.5, want 1\nstderr: %s", code, stderr.String())
	}
	if !strings.Contains(stderr.String(), "exceeds -max-error-rate") {
		t.Fatalf("stderr does not explain the budget failure: %s", stderr.String())
	}

	stdout.Reset()
	stderr.Reset()
	code = run(common, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d with default budget, want 0 (back-compat)\nstderr: %s", code, stderr.String())
	}
}

// TestRunBatch: -batch N drives POST /tasks:batch; the summary gains
// the batch block, per-op counts still add up to -ops, and a clean
// batched run passes a zero error budget.
func TestRunBatch(t *testing.T) {
	url := startDaemon(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-url", url, "-ops", "40", "-workers", "4", "-batch", "8",
		"-tasks", "2", "-mix", "40:40:20", "-json", "-max-error-rate", "0",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d\nstdout: %s\nstderr: %s", code, stdout.String(), stderr.String())
	}
	var s summary
	if err := json.Unmarshal(stdout.Bytes(), &s); err != nil {
		t.Fatalf("bad JSON summary: %v\n%s", err, stdout.String())
	}
	if s.Ops != 40 {
		t.Errorf("ops = %d, want 40", s.Ops)
	}
	if s.Errors != 0 {
		t.Errorf("errors = %d (%v)", s.Errors, s.LastErrors)
	}
	if s.Batch == nil {
		t.Fatalf("no batch block in %s", stdout.String())
	}
	if s.Batch.Size != 8 || s.Batch.Count == 0 || s.Batch.Errors != 0 {
		t.Errorf("batch block = %+v", s.Batch)
	}
	if s.Batch.P99MS < s.Batch.P50MS || s.Batch.MaxMS < s.Batch.P99MS {
		t.Errorf("batch percentiles inconsistent: %+v", s.Batch)
	}
	// Cleanup drained every loaded task.
	tasks, err := server.NewClient(url, nil).Tasks()
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 0 {
		t.Errorf("%d task(s) left after cleanup", len(tasks))
	}
}

// rejectingDaemon serves /fabrics but answers every load with 409 —
// the shape of a fabric pool at capacity.
func rejectingDaemon(t *testing.T) string {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET /fabrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`[{"index":0,"width":16,"height":16,"channel_width":8,"lut_size":6}]`))
	})
	mux.HandleFunc("/", func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, `{"error":"no fabric can admit task"}`, http.StatusConflict)
	})
	hs := httptest.NewServer(mux)
	t.Cleanup(hs.Close)
	return hs.URL
}

// TestRejectsAreNotErrors: 409 capacity rejections land in the rejects
// bucket and do NOT trip -max-error-rate — the committed baseline's
// "load errors" were all such 409s, and gating on them would turn a
// full-but-healthy fleet into a red build.
func TestRejectsAreNotErrors(t *testing.T) {
	url := rejectingDaemon(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-url", url, "-ops", "10", "-workers", "2", "-tasks", "1",
		"-mix", "100:0:0", "-cleanup=false", "-json", "-max-error-rate", "0",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d: capacity rejections tripped the error budget\nstderr: %s", code, stderr.String())
	}
	var s summary
	if err := json.Unmarshal(stdout.Bytes(), &s); err != nil {
		t.Fatalf("bad JSON summary: %v\n%s", err, stdout.String())
	}
	if s.Errors != 0 {
		t.Errorf("errors = %d, want 0 (all 409s)", s.Errors)
	}
	if s.Rejects != 10 || s.PerOp["load"].Rejects != 10 {
		t.Errorf("rejects = %d (per-op %d), want 10", s.Rejects, s.PerOp["load"].Rejects)
	}
}

// TestMaxErrorRatePassesCleanRun: a healthy run under a zero budget
// stays exit 0.
func TestMaxErrorRatePassesCleanRun(t *testing.T) {
	url := startDaemon(t)
	var stdout, stderr bytes.Buffer
	code := run([]string{
		"-url", url, "-ops", "20", "-workers", "2", "-tasks", "1",
		"-mix", "50:40:10", "-max-error-rate", "0",
	}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d on a clean run with budget 0\nstderr: %s", code, stderr.String())
	}
}
