// Command vbsload drives load at a vbsd daemon or vbsgw gateway
// (both speak the same API) and reports serve-path throughput and
// latency percentiles — the serving-side counterpart of the decode
// benchmarks (committed baseline: BENCH_serve.json).
//
//	vbsload -url http://localhost:8930 -workers 8 -ops 500 -mix 20:60:20
//	vbsload -url http://localhost:8931 -duration 10s -json > BENCH_serve.json
//
// The op mix is load:get:unload percentages. Before the run, vbsload
// asks GET /fabrics for the target's channel width and LUT size and
// compiles -tasks distinct small designs to matching VBS containers,
// so the measured loads pay the real store/decode/place path. A get
// fetches a previously loaded blob; an unload removes a previously
// loaded task; both degrade to a load while nothing is loaded yet.
// Remaining tasks are unloaded at the end unless -cleanup=false.
//
// With -batch N, workers compose N ops from the mix into one
// POST /tasks:batch round trip instead of N separate requests; the
// report gains a `batch` block with per-batch round-trip percentiles
// (per-op latencies are then the amortized batch cost). Capacity
// rejections (409 from a full fabric pool) are reported as rejects,
// separate from errors, and do not count against -max-error-rate.
//
// With -scrape, vbsload snapshots the target's GET /metrics before
// and after the run and folds the *server-side* latency percentiles
// of the window (p50/p90/p99 per op, estimated from the histogram
// bucket deltas) into the report — client-observed and server-
// observed latency side by side from one tool.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/loadgen"
	"repro/internal/metrics"
	"repro/internal/server"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

// opKind indexes the per-op scoreboards.
type opKind int

const (
	opLoad opKind = iota
	opGet
	opUnload
	nOps
)

var opNames = [nOps]string{"load", "get", "unload"}

// opStats is one op type's summary. Errors are transport failures and
// 5xx replies; capacity rejections (409) count separately as rejects —
// a full fabric refusing a load is the service working, not failing.
type opStats struct {
	Count   int     `json:"count"`
	Errors  int     `json:"errors"`
	Rejects int     `json:"rejects,omitempty"`
	P50MS   float64 `json:"p50_ms"`
	P90MS   float64 `json:"p90_ms"`
	P99MS   float64 `json:"p99_ms"`
	MaxMS   float64 `json:"max_ms"`
}

// batchStats summarizes the batched round trips of a -batch run:
// counts and percentiles are per *batch call*, not per op.
type batchStats struct {
	Size   int     `json:"size"`
	Count  int     `json:"count"`
	Errors int     `json:"errors"`
	P50MS  float64 `json:"p50_ms"`
	P90MS  float64 `json:"p90_ms"`
	P99MS  float64 `json:"p99_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// serverOpStats is one op's server-side latency summary, estimated
// from the /metrics histogram bucket deltas of the run window.
type serverOpStats struct {
	Count int     `json:"count"`
	P50MS float64 `json:"p50_ms"`
	P90MS float64 `json:"p90_ms"`
	P99MS float64 `json:"p99_ms"`
}

// summary is the -json document.
type summary struct {
	URL        string             `json:"url"`
	Workers    int                `json:"workers"`
	Mix        string             `json:"mix"`
	Tasks      int                `json:"distinct_tasks"`
	WallS      float64            `json:"wall_s"`
	Ops        int                `json:"ops"`
	Errors     int                `json:"errors"`
	Rejects    int                `json:"rejects,omitempty"`
	ReqPerSec  float64            `json:"req_per_sec"`
	PerOp      map[string]opStats `json:"per_op"`
	Batch      *batchStats        `json:"batch,omitempty"`
	LastErrors map[string]string  `json:"last_errors,omitempty"`
	// ScrapeURL / ServerSide are filled by -scrape: the target's own
	// op-latency histograms diffed across the run.
	ScrapeURL  string                   `json:"scrape_url,omitempty"`
	ServerSide map[string]serverOpStats `json:"server_side,omitempty"`
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vbsload", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		url      = fs.String("url", "http://localhost:8931", "vbsd or vbsgw base URL")
		workers  = fs.Int("workers", 8, "concurrent workers")
		ops      = fs.Int("ops", 0, "total operation count (0 = run for -duration)")
		duration = fs.Duration("duration", 10*time.Second, "run length when -ops is 0")
		mix      = fs.String("mix", "20:60:20", "load:get:unload percentages")
		tasks    = fs.Int("tasks", 8, "distinct task containers to generate")
		seed     = fs.Int64("seed", 1, "generation and mix seed")
		jsonOut  = fs.Bool("json", false, "emit a JSON summary on stdout")
		cleanup  = fs.Bool("cleanup", true, "unload remaining tasks at the end")
		batch    = fs.Int("batch", 1, "ops per POST /tasks:batch round trip (1 = unbatched endpoints)")
		maxErr   = fs.Float64("max-error-rate", 1.0, "fail (exit 1) when errors/ops exceeds this fraction (409 capacity rejections are not errors)")
		scrape   = fs.String("scrape", "", "scrape this base URL's /metrics before and after the run and report server-side percentile deltas (usually the -url target)")
	)
	if err := fs.Parse(args); err != nil {
		return 2
	}
	weights, err := parseMix(*mix)
	if err != nil {
		fmt.Fprintf(stderr, "vbsload: %v\n", err)
		return 2
	}
	if *workers < 1 || *tasks < 1 || (*ops == 0 && *duration <= 0) {
		fmt.Fprintln(stderr, "vbsload: need -workers >= 1, -tasks >= 1 and a positive -ops or -duration")
		return 2
	}
	if *batch < 1 {
		fmt.Fprintln(stderr, "vbsload: -batch must be >= 1")
		return 2
	}

	cl := server.NewClient(*url, nil)
	fabrics, err := cl.Fabrics()
	if err != nil || len(fabrics) == 0 {
		fmt.Fprintf(stderr, "vbsload: cannot read %s/fabrics: %v\n", *url, err)
		return 1
	}
	w, k := fabrics[0].W, fabrics[0].K

	fmt.Fprintf(stderr, "vbsload: generating %d task(s) for W=%d K=%d fabrics\n", *tasks, w, k)
	containers := make([][]byte, *tasks)
	for i := range containers {
		if containers[i], err = loadgen.GenTask(*seed+int64(i), w, k); err != nil {
			fmt.Fprintf(stderr, "vbsload: task generation: %v\n", err)
			return 1
		}
	}

	var before []metrics.Sample
	if *scrape != "" {
		if before, err = server.NewClient(*scrape, nil).MetricsCtx(context.Background()); err != nil {
			fmt.Fprintf(stderr, "vbsload: cannot scrape %s/metrics: %v\n", *scrape, err)
			return 1
		}
	}

	bench := newBench(cl, containers, weights, *seed)
	bench.batch = *batch
	wall := bench.run(*workers, *ops, *duration)

	var after []metrics.Sample
	if *scrape != "" {
		// Scrape before the cleanup drain so the window covers exactly
		// the measured ops.
		if after, err = server.NewClient(*scrape, nil).MetricsCtx(context.Background()); err != nil {
			fmt.Fprintf(stderr, "vbsload: cannot scrape %s/metrics: %v\n", *scrape, err)
			return 1
		}
	}
	if *cleanup {
		bench.drain()
	}

	s := bench.summarize(*url, *workers, *mix, wall)
	if *scrape != "" {
		s.ScrapeURL = *scrape
		s.ServerSide = scrapeDeltas(before, after)
	}
	if *jsonOut {
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(s); err != nil {
			fmt.Fprintf(stderr, "vbsload: %v\n", err)
			return 1
		}
	} else {
		printSummary(stdout, s)
	}
	if s.Ops == 0 {
		fmt.Fprintln(stderr, "vbsload: no operation completed")
		return 1
	}
	// The default 1.0 budget never trips (a rate cannot exceed 1), so
	// existing invocations keep exiting 0 no matter what; chaos and
	// smoke scripts pass a real budget to make failures fail.
	if rate := float64(s.Errors) / float64(s.Ops); rate > *maxErr {
		fmt.Fprintf(stderr, "vbsload: error rate %.3f (%d/%d) exceeds -max-error-rate %.3f\n",
			rate, s.Errors, s.Ops, *maxErr)
		return 1
	}
	return 0
}

// scrapeDeltas diffs two /metrics snapshots and summarizes the
// server-side latency distribution of every *_op_duration_seconds
// histogram series that saw observations inside the window (vbsd
// exports vbs_server_op_duration_seconds, vbsgw
// vbs_gateway_op_duration_seconds — both match).
func scrapeDeltas(before, after []metrics.Sample) map[string]serverOpStats {
	out := map[string]serverOpStats{}
	seen := map[string]bool{}
	for _, smp := range after {
		name, isBucket := strings.CutSuffix(smp.Name, "_bucket")
		if !isBucket || !strings.HasSuffix(name, "_op_duration_seconds") {
			continue
		}
		op := smp.Label("op")
		if op == "" || seen[op] {
			continue
		}
		seen[op] = true
		labels := map[string]string{"op": op}
		delta := metrics.Buckets(after, name, labels)
		// A series born mid-run is absent from the before snapshot; its
		// delta is then the after snapshot itself.
		if bb := metrics.Buckets(before, name, labels); len(bb) > 0 {
			delta = metrics.SubtractBuckets(bb, delta)
		}
		if len(delta) == 0 || delta[len(delta)-1].Count == 0 {
			continue
		}
		out[op] = serverOpStats{
			Count: int(delta[len(delta)-1].Count),
			P50MS: metrics.Quantile(0.50, delta) * 1000,
			P90MS: metrics.Quantile(0.90, delta) * 1000,
			P99MS: metrics.Quantile(0.99, delta) * 1000,
		}
	}
	return out
}

// parseMix reads "load:get:unload" percentages.
func parseMix(s string) ([nOps]int, error) {
	var out [nOps]int
	parts := strings.Split(s, ":")
	if len(parts) != int(nOps) {
		return out, fmt.Errorf("bad -mix %q: want load:get:unload", s)
	}
	total := 0
	for i, p := range parts {
		if _, err := fmt.Sscanf(p, "%d", &out[i]); err != nil || out[i] < 0 {
			return out, fmt.Errorf("bad -mix %q", s)
		}
		total += out[i]
	}
	if total == 0 {
		return out, fmt.Errorf("bad -mix %q: all zero", s)
	}
	return out, nil
}

// bench is the shared run state.
type bench struct {
	cl         *server.Client
	containers [][]byte
	weights    [nOps]int
	wsum       int
	seed       int64

	batch int // ops per batched round trip (1 = unbatched)

	mu        sync.Mutex
	loaded    []int64  // task ids available for unload
	digests   []string // digests available for get
	lastErr   [nOps]string
	lats      [nOps][]float64 // milliseconds
	errs      [nOps]int
	rejects   [nOps]int
	batchLats []float64 // per-batch round-trip milliseconds
	batchErrs int
}

// classify buckets an op outcome (b.mu held): a 409 is the fabric
// pool rejecting for capacity — a reject, not an error, so
// -max-error-rate gates on actual breakage (transport failures and
// 5xx). The committed serve baseline's "load errors" were all such
// 409s.
func (b *bench) classify(op opKind, err error) {
	if err == nil {
		return
	}
	if server.StatusCode(err) == http.StatusConflict {
		b.rejects[op]++
		return
	}
	b.errs[op]++
	b.lastErr[op] = err.Error()
}

func newBench(cl *server.Client, containers [][]byte, weights [nOps]int, seed int64) *bench {
	b := &bench{cl: cl, containers: containers, weights: weights, seed: seed}
	for _, w := range weights {
		b.wsum += w
	}
	return b
}

// pick draws an op kind from the mix, degrading get/unload to load
// while their prerequisites don't exist yet.
func (b *bench) pick(rng *rand.Rand) opKind {
	n := rng.Intn(b.wsum)
	var op opKind
	for i := opLoad; i < nOps; i++ {
		if n < b.weights[i] {
			op = i
			break
		}
		n -= b.weights[i]
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if op == opGet && len(b.digests) == 0 {
		return opLoad
	}
	if op == opUnload && len(b.loaded) == 0 {
		return opLoad
	}
	return op
}

func (b *bench) record(op opKind, start time.Time, err error) {
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	b.mu.Lock()
	defer b.mu.Unlock()
	b.lats[op] = append(b.lats[op], ms)
	b.classify(op, err)
}

func (b *bench) doOne(rng *rand.Rand) {
	switch op := b.pick(rng); op {
	case opLoad:
		data := b.containers[rng.Intn(len(b.containers))]
		start := time.Now()
		res, err := b.cl.Load(data, nil, nil, nil)
		b.record(op, start, err)
		if err == nil {
			b.mu.Lock()
			b.loaded = append(b.loaded, res.ID)
			b.digests = appendUnique(b.digests, res.Digest)
			b.mu.Unlock()
		}
	case opGet:
		b.mu.Lock()
		d := b.digests[rng.Intn(len(b.digests))]
		b.mu.Unlock()
		start := time.Now()
		_, err := b.cl.GetVBS(d)
		b.record(op, start, err)
	case opUnload:
		b.mu.Lock()
		if len(b.loaded) == 0 {
			b.mu.Unlock()
			return
		}
		i := rng.Intn(len(b.loaded))
		id := b.loaded[i]
		b.loaded[i] = b.loaded[len(b.loaded)-1]
		b.loaded = b.loaded[:len(b.loaded)-1]
		b.mu.Unlock()
		start := time.Now()
		err := b.cl.Unload(id)
		b.record(op, start, err)
	}
}

// doBatch composes n ops from the mix into one POST /tasks:batch
// round trip. The batch latency is recorded once in the batch
// scoreboard and amortized (batch wall / n) into the per-op series so
// the per-op percentiles reflect effective per-op cost.
func (b *bench) doBatch(rng *rand.Rand, n int) {
	kinds := make([]opKind, 0, n)
	ops := make([]server.BatchOp, 0, n)
	for i := 0; i < n; i++ {
		switch op := b.pick(rng); op {
		case opLoad:
			kinds = append(kinds, opLoad)
			ops = append(ops, server.BatchLoadOp(b.containers[rng.Intn(len(b.containers))]))
		case opGet:
			b.mu.Lock()
			d := b.digests[rng.Intn(len(b.digests))]
			b.mu.Unlock()
			kinds = append(kinds, opGet)
			ops = append(ops, server.BatchOp{Op: "get", Digest: d})
		case opUnload:
			b.mu.Lock()
			if len(b.loaded) == 0 {
				b.mu.Unlock()
				kinds = append(kinds, opLoad)
				ops = append(ops, server.BatchLoadOp(b.containers[rng.Intn(len(b.containers))]))
				continue
			}
			j := rng.Intn(len(b.loaded))
			id := b.loaded[j]
			b.loaded[j] = b.loaded[len(b.loaded)-1]
			b.loaded = b.loaded[:len(b.loaded)-1]
			b.mu.Unlock()
			kinds = append(kinds, opUnload)
			ops = append(ops, server.BatchOp{Op: "unload", ID: id})
		}
	}

	start := time.Now()
	resp, err := b.cl.BatchCtx(context.Background(), server.BatchRequest{Ops: ops})
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	perOp := ms / float64(len(ops))

	b.mu.Lock()
	defer b.mu.Unlock()
	b.batchLats = append(b.batchLats, ms)
	if err != nil || len(resp.Results) != len(ops) {
		if err == nil {
			err = fmt.Errorf("short batch reply: %d results for %d ops", len(resp.Results), len(ops))
		}
		b.batchErrs++
		for _, k := range kinds {
			b.lats[k] = append(b.lats[k], perOp)
			b.classify(k, err)
		}
		return
	}
	for i, r := range resp.Results {
		k := kinds[i]
		b.lats[k] = append(b.lats[k], perOp)
		if r.Status >= 200 && r.Status < 300 {
			if k == opLoad && r.Load != nil {
				b.loaded = append(b.loaded, r.Load.ID)
				b.digests = appendUnique(b.digests, r.Load.Digest)
			}
			continue
		}
		b.classify(k, server.BatchError(r))
	}
}

func appendUnique(s []string, v string) []string {
	for _, x := range s {
		if x == v {
			return s
		}
	}
	return append(s, v)
}

// run fans workers out until the op budget or the clock runs dry and
// returns the wall time.
func (b *bench) run(workers, ops int, duration time.Duration) time.Duration {
	var counter atomic.Int64
	deadline := time.Now().Add(duration)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < workers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(b.seed + int64(i)*7919))
			for {
				n := 1
				if b.batch > 1 {
					n = b.batch
				}
				if ops > 0 {
					// Claim n ops off the shared budget; trim the final
					// batch to what is left.
					claimed := counter.Add(int64(n))
					if over := claimed - int64(ops); over > 0 {
						n -= int(over)
						if n <= 0 {
							return
						}
					}
				} else if time.Now().After(deadline) {
					return
				}
				if b.batch > 1 {
					b.doBatch(rng, n)
				} else {
					b.doOne(rng)
				}
			}
		}(i)
	}
	wg.Wait()
	return time.Since(start)
}

// drain unloads everything the run left behind (not measured).
func (b *bench) drain() {
	b.mu.Lock()
	ids := append([]int64(nil), b.loaded...)
	b.loaded = nil
	b.mu.Unlock()
	for _, id := range ids {
		_ = b.cl.Unload(id)
	}
}

func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}

func (b *bench) summarize(url string, workers int, mix string, wall time.Duration) summary {
	s := summary{
		URL:     url,
		Workers: workers,
		Mix:     mix,
		Tasks:   len(b.containers),
		WallS:   wall.Seconds(),
		PerOp:   map[string]opStats{},
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for op := opLoad; op < nOps; op++ {
		lat := append([]float64(nil), b.lats[op]...)
		sort.Float64s(lat)
		st := opStats{
			Count:   len(lat),
			Errors:  b.errs[op],
			Rejects: b.rejects[op],
			P50MS:   percentile(lat, 0.50),
			P90MS:   percentile(lat, 0.90),
			P99MS:   percentile(lat, 0.99),
		}
		if len(lat) > 0 {
			st.MaxMS = lat[len(lat)-1]
		}
		s.PerOp[opNames[op]] = st
		s.Ops += st.Count
		s.Errors += st.Errors
		s.Rejects += st.Rejects
		if b.lastErr[op] != "" {
			if s.LastErrors == nil {
				s.LastErrors = map[string]string{}
			}
			s.LastErrors[opNames[op]] = b.lastErr[op]
		}
	}
	if b.batch > 1 {
		lat := append([]float64(nil), b.batchLats...)
		sort.Float64s(lat)
		bs := &batchStats{
			Size:   b.batch,
			Count:  len(lat),
			Errors: b.batchErrs,
			P50MS:  percentile(lat, 0.50),
			P90MS:  percentile(lat, 0.90),
			P99MS:  percentile(lat, 0.99),
		}
		if len(lat) > 0 {
			bs.MaxMS = lat[len(lat)-1]
		}
		s.Batch = bs
	}
	if s.WallS > 0 {
		s.ReqPerSec = float64(s.Ops) / s.WallS
	}
	return s
}

func printSummary(w io.Writer, s summary) {
	fmt.Fprintf(w, "target   : %s (%d workers, mix %s, %d distinct tasks)\n",
		s.URL, s.Workers, s.Mix, s.Tasks)
	fmt.Fprintf(w, "total    : %d ops in %.2fs = %.1f req/s, %d error(s), %d reject(s)\n",
		s.Ops, s.WallS, s.ReqPerSec, s.Errors, s.Rejects)
	for _, name := range opNames {
		st := s.PerOp[name]
		if st.Count == 0 {
			continue
		}
		fmt.Fprintf(w, "%-9s: %6d ops  p50 %7.2fms  p90 %7.2fms  p99 %7.2fms  max %7.2fms  (%d err, %d rej)\n",
			name, st.Count, st.P50MS, st.P90MS, st.P99MS, st.MaxMS, st.Errors, st.Rejects)
	}
	if s.Batch != nil {
		fmt.Fprintf(w, "batch(%d) : %6d rtt  p50 %7.2fms  p90 %7.2fms  p99 %7.2fms  max %7.2fms  (%d err)\n",
			s.Batch.Size, s.Batch.Count, s.Batch.P50MS, s.Batch.P90MS, s.Batch.P99MS, s.Batch.MaxMS, s.Batch.Errors)
	}
	for name, msg := range s.LastErrors {
		fmt.Fprintf(w, "last %s error: %s\n", name, msg)
	}
	if len(s.ServerSide) > 0 {
		names := make([]string, 0, len(s.ServerSide))
		for name := range s.ServerSide {
			names = append(names, name)
		}
		sort.Strings(names)
		fmt.Fprintf(w, "server-side (%s/metrics):\n", s.ScrapeURL)
		for _, name := range names {
			st := s.ServerSide[name]
			fmt.Fprintf(w, "%-9s: %6d ops  p50 %7.2fms  p90 %7.2fms  p99 %7.2fms  (histogram estimate)\n",
				name, st.Count, st.P50MS, st.P90MS, st.P99MS)
		}
	}
}
