package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/repo"
)

func encodeVBS(t *testing.T, taskW int) []byte {
	t.Helper()
	v := &core.VBS{P: arch.Default(), Cluster: 1, TaskW: taskW, TaskH: 2}
	data, err := v.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestFileMode(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "task.vbs")
	if err := os.WriteFile(path, encodeVBS(t, 2), 0o644); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-in", path}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	for _, want := range []string{"Size breakdown", "raw equivalent"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestDirMode(t *testing.T) {
	dataDir := t.TempDir()
	r, err := repo.Open(dataDir, repo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 3, 4} {
		if _, _, err := r.Put(encodeVBS(t, w)); err != nil {
			t.Fatal(err)
		}
	}
	// One opaque non-VBS blob: counted as skipped, not fatal.
	if _, _, err := r.Put([]byte("foreign payload")); err != nil {
		t.Fatal(err)
	}
	var out, errOut bytes.Buffer
	if code := run([]string{"-dir", dataDir}, &out, &errOut); code != 0 {
		t.Fatalf("exit %d: %s", code, errOut.String())
	}
	s := out.String()
	for _, want := range []string{"3 blob(s)", "3 parsable (1 skipped)", "ratio", "mean", "aggregate"} {
		if !strings.Contains(s, want) {
			t.Errorf("output missing %q:\n%s", want, s)
		}
	}
}

func TestFlagValidation(t *testing.T) {
	var out, errOut bytes.Buffer
	if code := run(nil, &out, &errOut); code != 2 {
		t.Fatalf("no flags: exit %d", code)
	}
	if code := run([]string{"-in", "a", "-dir", "b"}, &out, &errOut); code != 2 {
		t.Fatalf("both flags: exit %d", code)
	}
}
