// Command vbsstat dissects a Virtual Bit-Stream container: size
// breakdown by field class (header, positions, logic, connections,
// raw-fallback payloads), the per-region connection histogram, and the
// worst regions — the numbers one needs when tuning cluster size for a
// task.
//
//	vbsstat -in task.vbs
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	inPath := flag.String("in", "", "input VBS file")
	top := flag.Int("top", 5, "how many largest entries to list")
	flag.Parse()
	if *inPath == "" {
		fmt.Fprintln(os.Stderr, "vbsstat: -in required")
		os.Exit(2)
	}
	data, err := os.ReadFile(*inPath)
	if err != nil {
		fail(err)
	}
	v, err := core.Parse(data)
	if err != nil {
		fail(err)
	}

	fmt.Printf("task        : %dx%d macros, W=%d K=%d, cluster %d\n",
		v.TaskW, v.TaskH, v.P.W, v.P.K, v.Cluster)
	fmt.Printf("region grid : %dx%d (%d regions, %d coded entries)\n",
		v.RegionsW(), v.RegionsH(), v.RegionsW()*v.RegionsH(), len(v.Entries))
	fmt.Printf("field widths: M=%d bits/endpoint, route count %d bits, coords %d bits\n",
		v.MBits(), v.RouteCountBits(), v.RegionCoordBits())

	// Size breakdown.
	var posBits, bitmapBits, logicBits, countBits, connBits, rawBits int
	var conns, raws, logics int
	histogram := map[int]int{}
	type sized struct {
		idx, bits int
	}
	var order []sized
	for i := range v.Entries {
		e := &v.Entries[i]
		posBits += 2 * v.RegionCoordBits()
		bitmapBits += v.Cluster*v.Cluster + 1 // bitmap + mode bit
		logicBits += len(e.Logic) * v.P.NLB()
		logics += len(e.Logic)
		if e.Raw {
			raws++
			rawBits += len(e.RawBits) * (v.P.NRaw() - v.P.NLB())
		} else {
			countBits += v.RouteCountBits()
			connBits += len(e.Conns) * 2 * v.MBits()
			conns += len(e.Conns)
			histogram[bucket(len(e.Conns))]++
		}
		order = append(order, sized{i, v.EntrySizeBits(e)})
	}

	total := v.Size()
	tab := &report.Table{
		Title:   "Size breakdown",
		Headers: []string{"Component", "Bits", "Share"},
	}
	tab.AddRow("header", v.HeaderSizeBits(), share(v.HeaderSizeBits(), total))
	tab.AddRow("entry positions", posBits, share(posBits, total))
	tab.AddRow("bitmaps+mode", bitmapBits, share(bitmapBits, total))
	tab.AddRow(fmt.Sprintf("logic data (%d blocks)", logics), logicBits, share(logicBits, total))
	tab.AddRow(fmt.Sprintf("connections (%d)", conns), countBits+connBits, share(countBits+connBits, total))
	tab.AddRow(fmt.Sprintf("raw fallbacks (%d regions)", raws), rawBits, share(rawBits, total))
	tab.AddRow("TOTAL", total, share(total, total))
	tab.Render(os.Stdout)

	fmt.Printf("\nraw equivalent %s, VBS %s -> %s (%.2fx)\n",
		report.Bits(v.RawSizeBits()), report.Bits(total),
		report.Percent(v.CompressionRatio()), v.CompressionFactor())

	// Connection histogram.
	fmt.Println("\nconnections per coded region:")
	var buckets []int
	for b := range histogram {
		buckets = append(buckets, b)
	}
	sort.Ints(buckets)
	for _, b := range buckets {
		fmt.Printf("  %3d..%-3d : %d regions\n", b, b+bucketWidth-1, histogram[b])
	}

	// Largest entries.
	sort.Slice(order, func(a, b int) bool { return order[a].bits > order[b].bits })
	fmt.Printf("\nlargest %d entries:\n", *top)
	for i := 0; i < *top && i < len(order); i++ {
		e := &v.Entries[order[i].idx]
		kind := fmt.Sprintf("coded, %d conns", len(e.Conns))
		if e.Raw {
			kind = "RAW FALLBACK"
		}
		fmt.Printf("  region (%2d,%2d): %6d bits (%s)\n", e.X, e.Y, order[i].bits, kind)
	}
}

const bucketWidth = 8

func bucket(n int) int { return n / bucketWidth * bucketWidth }

func share(part, total int) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(total))
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "vbsstat: %v\n", err)
	os.Exit(1)
}
