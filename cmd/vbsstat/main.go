// Command vbsstat dissects Virtual Bit-Stream containers. Pointed at
// a single file (-in) it prints the size breakdown by field class
// (header, positions, logic, connections, raw-fallback payloads), the
// per-region connection histogram, and the worst regions — the
// numbers one needs when tuning cluster size for a task. Pointed at a
// persistent VBS repository (-dir, the -data-dir of vbsd) it prints
// aggregate compression-ratio statistics across every stored blob.
//
//	vbsstat -in task.vbs
//	vbsstat -dir /var/lib/vbsd
package main

import (
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"

	"repro/internal/core"
	"repro/internal/repo"
	"repro/internal/report"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("vbsstat", flag.ContinueOnError)
	fs.SetOutput(stderr)
	inPath := fs.String("in", "", "input VBS file")
	dirPath := fs.String("dir", "", "VBS repository directory (aggregate stats over all blobs)")
	top := fs.Int("top", 5, "how many largest entries to list")
	if err := fs.Parse(args); err != nil {
		return 2
	}
	switch {
	case (*inPath == "") == (*dirPath == ""):
		fmt.Fprintln(stderr, "vbsstat: exactly one of -in or -dir required")
		return 2
	case *inPath != "":
		data, err := os.ReadFile(*inPath)
		if err != nil {
			return fail(stderr, err)
		}
		v, err := core.Parse(data)
		if err != nil {
			return fail(stderr, err)
		}
		statFile(v, *top, stdout)
	default:
		if err := statDir(*dirPath, stdout); err != nil {
			return fail(stderr, err)
		}
	}
	return 0
}

// statDir aggregates compression figures across every blob of a
// repository (opened read-only: safe against a live daemon).
func statDir(dir string, w io.Writer) error {
	r, err := repo.Open(dir, repo.Options{ReadOnly: true})
	if err != nil {
		return err
	}
	type row struct {
		digest string
		ratio  float64
		vbs    int
		raw    int
	}
	var rows []row
	var vbsBits, rawBits int64
	var diskBytes int64
	minR, maxR, sumR := math.Inf(1), math.Inf(-1), 0.0
	skipped := 0
	for _, b := range r.List() {
		data, err := r.Get(b.Digest)
		if err != nil {
			skipped++
			continue
		}
		v, err := core.Parse(data)
		if err != nil {
			// The repo stores opaque blobs; a non-VBS payload (foreign
			// import) is counted but excluded from the ratio stats.
			skipped++
			continue
		}
		rt := v.CompressionRatio()
		rows = append(rows, row{b.Digest.Short(), rt, v.Size(), v.RawSizeBits()})
		vbsBits += int64(v.Size())
		rawBits += int64(v.RawSizeBits())
		diskBytes += b.Bytes
		sumR += rt
		minR = math.Min(minR, rt)
		maxR = math.Max(maxR, rt)
	}
	if len(rows) == 0 {
		fmt.Fprintf(w, "repository %s holds no parsable VBS blobs (%d skipped)\n", dir, skipped)
		return nil
	}
	tab := &report.Table{
		Title:   fmt.Sprintf("Repository %s — %d blob(s)", dir, len(rows)),
		Headers: []string{"Digest", "VBS bits", "Raw bits", "Ratio"},
	}
	sort.Slice(rows, func(a, b int) bool { return rows[a].ratio < rows[b].ratio })
	for _, rw := range rows {
		tab.AddRow(rw.digest, rw.vbs, rw.raw, report.Percent(rw.ratio))
	}
	tab.Render(w)
	fmt.Fprintf(w, "\nblobs        : %d parsable (%d skipped), %d bytes on disk\n",
		len(rows), skipped, diskBytes)
	fmt.Fprintf(w, "ratio        : mean %s, best %s, worst %s\n",
		report.Percent(sumR/float64(len(rows))), report.Percent(minR), report.Percent(maxR))
	fmt.Fprintf(w, "aggregate    : raw %s -> VBS %s (%.2fx overall)\n",
		report.Bits(int(rawBits)), report.Bits(int(vbsBits)),
		float64(rawBits)/float64(vbsBits))
	return nil
}

func statFile(v *core.VBS, top int, out io.Writer) {
	fmt.Fprintf(out, "task        : %dx%d macros, W=%d K=%d, cluster %d\n",
		v.TaskW, v.TaskH, v.P.W, v.P.K, v.Cluster)
	fmt.Fprintf(out, "region grid : %dx%d (%d regions, %d coded entries)\n",
		v.RegionsW(), v.RegionsH(), v.RegionsW()*v.RegionsH(), len(v.Entries))
	fmt.Fprintf(out, "field widths: M=%d bits/endpoint, route count %d bits, coords %d bits\n",
		v.MBits(), v.RouteCountBits(), v.RegionCoordBits())

	// Size breakdown.
	var posBits, bitmapBits, logicBits, countBits, connBits, rawBits int
	var conns, raws, logics int
	histogram := map[int]int{}
	type sized struct {
		idx, bits int
	}
	var order []sized
	for i := range v.Entries {
		e := &v.Entries[i]
		posBits += 2 * v.RegionCoordBits()
		bitmapBits += v.Cluster*v.Cluster + 1 // bitmap + mode bit
		logicBits += len(e.Logic) * v.P.NLB()
		logics += len(e.Logic)
		if e.Raw {
			raws++
			rawBits += len(e.RawBits) * (v.P.NRaw() - v.P.NLB())
		} else {
			countBits += v.RouteCountBits()
			connBits += len(e.Conns) * 2 * v.MBits()
			conns += len(e.Conns)
			histogram[bucket(len(e.Conns))]++
		}
		order = append(order, sized{i, v.EntrySizeBits(e)})
	}

	total := v.Size()
	tab := &report.Table{
		Title:   "Size breakdown",
		Headers: []string{"Component", "Bits", "Share"},
	}
	tab.AddRow("header", v.HeaderSizeBits(), share(v.HeaderSizeBits(), total))
	tab.AddRow("entry positions", posBits, share(posBits, total))
	tab.AddRow("bitmaps+mode", bitmapBits, share(bitmapBits, total))
	tab.AddRow(fmt.Sprintf("logic data (%d blocks)", logics), logicBits, share(logicBits, total))
	tab.AddRow(fmt.Sprintf("connections (%d)", conns), countBits+connBits, share(countBits+connBits, total))
	tab.AddRow(fmt.Sprintf("raw fallbacks (%d regions)", raws), rawBits, share(rawBits, total))
	tab.AddRow("TOTAL", total, share(total, total))
	tab.Render(out)

	fmt.Fprintf(out, "\nraw equivalent %s, VBS %s -> %s (%.2fx)\n",
		report.Bits(v.RawSizeBits()), report.Bits(total),
		report.Percent(v.CompressionRatio()), v.CompressionFactor())

	// Connection histogram.
	fmt.Fprintln(out, "\nconnections per coded region:")
	var buckets []int
	for b := range histogram {
		buckets = append(buckets, b)
	}
	sort.Ints(buckets)
	for _, b := range buckets {
		fmt.Fprintf(out, "  %3d..%-3d : %d regions\n", b, b+bucketWidth-1, histogram[b])
	}

	// Largest entries.
	sort.Slice(order, func(a, b int) bool { return order[a].bits > order[b].bits })
	fmt.Fprintf(out, "\nlargest %d entries:\n", top)
	for i := 0; i < top && i < len(order); i++ {
		e := &v.Entries[order[i].idx]
		kind := fmt.Sprintf("coded, %d conns", len(e.Conns))
		if e.Raw {
			kind = "RAW FALLBACK"
		}
		fmt.Fprintf(out, "  region (%2d,%2d): %6d bits (%s)\n", e.X, e.Y, order[i].bits, kind)
	}
}

const bucketWidth = 8

func bucket(n int) int { return n / bucketWidth * bucketWidth }

func share(part, total int) string {
	if total == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(total))
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintf(stderr, "vbsstat: %v\n", err)
	return 1
}
