// Command vbsgw is the cluster gateway: it fronts a fleet of vbsd
// nodes with the exact single-daemon HTTP/JSON API, so any vbsd
// client (including the unchanged server.Client) scales from one
// process to N without modification.
//
//	vbsgw -addr :8930 -nodes http://n1:8931,http://n2:8931,http://n3:8931 -replicas 2
//
// Blob operations route by content address over a deterministic
// consistent-hash ring (virtual nodes): each digest has a primary
// node plus -replicas−1 replicas, loads write the container through
// to every replica before replying, reads fail over across the
// replica set (falling back to a full scatter for blobs imported
// out-of-band) and heal missing replicas on the way (read-repair).
// Fleet-wide endpoints (GET /vbs, /tasks, /fabrics, /stats)
// scatter-gather and merge; /stats gains a `cluster` block (node
// health, per-node occupancy, ring version, traffic counters).
//
// Node health is probed every -probe-interval; a node is suspect
// after one failure and down after two, and revives on the next
// successful probe or request.
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	var (
		addr     = flag.String("addr", ":8930", "listen address")
		nodes    = flag.String("nodes", "", "comma-separated vbsd base URLs (required)")
		replicas = flag.Int("replicas", 2, "nodes holding each blob (primary + R-1 replicas)")
		vnodes   = flag.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per physical node on the hash ring")
		probe    = flag.Duration("probe-interval", 2*time.Second, "health probe interval")
		probeTmo = flag.Duration("probe-timeout", time.Second, "per-probe timeout")
		hopTmo   = flag.Duration("hop-timeout", 15*time.Second, "per-hop timeout for proxied calls")
	)
	flag.Parse()

	var urls []string
	for _, n := range strings.Split(*nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			urls = append(urls, n)
		}
	}
	if len(urls) == 0 {
		log.Fatalf("vbsgw: -nodes is required (comma-separated vbsd base URLs)")
	}

	gw, err := cluster.New(urls, cluster.Options{
		Replicas:      *replicas,
		VNodes:        *vnodes,
		ProbeInterval: *probe,
		ProbeTimeout:  *probeTmo,
		HopTimeout:    *hopTmo,
	})
	if err != nil {
		log.Fatalf("vbsgw: %v", err)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	gw.Start(ctx)
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(shutdownCtx)
	}()

	log.Printf("vbsgw: serving %d node(s) on %s (replicas=%d, ring %s)",
		len(urls), *addr, *replicas, strings.Join(urls, ","))
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("vbsgw: %v", err)
	}
	gw.Stop()
	log.Printf("vbsgw: shut down")
}
