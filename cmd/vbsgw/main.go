// Command vbsgw is the cluster gateway: it fronts a fleet of vbsd
// nodes with the exact single-daemon HTTP/JSON API, so any vbsd
// client (including the unchanged server.Client) scales from one
// process to N without modification.
//
//	vbsgw -addr :8930 -nodes http://n1:8931,http://n2:8931,http://n3:8931 -replicas 2
//
// Blob operations route by content address over a deterministic
// consistent-hash ring (virtual nodes): each digest has a primary
// node plus -replicas−1 replicas, loads write the container through
// to every replica before replying, reads fail over across the
// replica set (falling back to a full scatter for blobs imported
// out-of-band) and heal missing replicas on the way (read-repair).
// Fleet-wide endpoints (GET /vbs, /tasks, /fabrics, /stats)
// scatter-gather and merge; /stats gains a `cluster` block (node
// health, per-node occupancy, ring version, traffic counters, and
// rebalance progress).
//
// Membership is elastic at runtime; a background rebalancer converges
// blob placement after every change — every pass is a Job (POST /jobs
// {"kind":"rebalance"} starts one by hand, DELETE /jobs/{id} aborts a
// pass mid-flight). Fleet-wide maintenance kinds (scrub,
// tombstone-sweep, warm) fan out to every node and scatter-gather
// their progress; "reconcile" re-syncs the gateway task table against
// the nodes' own listings. GET /metrics exposes Prometheus text —
// gateway op latency histograms, cluster gauges, rebalance counters,
// job progress. Idempotent hops retry transport failures with capped
// backoff (-retry-attempts / -retry-backoff). Admin verbs drive a
// running gateway:
//
//	vbsgw node ls      -gw http://localhost:8930
//	vbsgw node add     -gw http://localhost:8930 http://n4:8931
//	vbsgw node drain   -gw http://localhost:8930 http://n2:8931
//	vbsgw node remove  -gw http://localhost:8930 http://n2:8931
//	vbsgw rebalance    -gw http://localhost:8930
//
// Node health is probed every -probe-interval; a node is suspect
// after one failure and down after two, and revives on the next
// successful probe or request.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/cluster"
)

func main() {
	if len(os.Args) > 1 && !strings.HasPrefix(os.Args[1], "-") {
		switch os.Args[1] {
		case "serve":
			serve(os.Args[2:])
		case "node":
			os.Exit(runNode(os.Args[2:], os.Stdout, os.Stderr))
		case "rebalance":
			os.Exit(runRebalance(os.Args[2:], os.Stdout, os.Stderr))
		default:
			fmt.Fprintf(os.Stderr, "vbsgw: unknown command %q (want serve, node, or rebalance)\n", os.Args[1])
			os.Exit(2)
		}
		return
	}
	serve(os.Args[1:])
}

func serve(args []string) {
	fs := flag.NewFlagSet("vbsgw", flag.ExitOnError)
	var (
		addr      = fs.String("addr", ":8930", "listen address")
		nodes     = fs.String("nodes", "", "comma-separated vbsd base URLs (required)")
		replicas  = fs.Int("replicas", 2, "nodes holding each blob (primary + R-1 replicas)")
		vnodes    = fs.Int("vnodes", cluster.DefaultVNodes, "virtual nodes per physical node on the hash ring")
		probe     = fs.Duration("probe-interval", 2*time.Second, "health probe interval")
		probeTmo  = fs.Duration("probe-timeout", time.Second, "per-probe timeout")
		hopTmo    = fs.Duration("hop-timeout", 15*time.Second, "per-hop timeout for proxied calls")
		retries   = fs.Int("retry-attempts", 0, "tries per idempotent hop before failover (0 = 3, 1 = no retries)")
		retryBase = fs.Duration("retry-backoff", 0, "first retry delay, doubled per attempt with jitter (0 = 25ms)")
		rebalance = fs.Duration("rebalance-interval", 0, "background rebalance pass interval (0 = 60s, negative = disabled)")
		streams   = fs.Bool("streams", true, "use persistent per-node frame streams for replication, repair copies and batch fan-out")
	)
	_ = fs.Parse(args)

	var urls []string
	for _, n := range strings.Split(*nodes, ",") {
		if n = strings.TrimSpace(n); n != "" {
			urls = append(urls, n)
		}
	}
	if len(urls) == 0 {
		log.Fatalf("vbsgw: -nodes is required (comma-separated vbsd base URLs)")
	}

	gw, err := cluster.New(urls, cluster.Options{
		Replicas:          *replicas,
		VNodes:            *vnodes,
		ProbeInterval:     *probe,
		ProbeTimeout:      *probeTmo,
		HopTimeout:        *hopTmo,
		RetryAttempts:     *retries,
		RetryBackoff:      *retryBase,
		RebalanceInterval: *rebalance,
		DisableStreams:    !*streams,
	})
	if err != nil {
		log.Fatalf("vbsgw: %v", err)
	}

	hs := &http.Server{
		Addr:              *addr,
		Handler:           gw.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	gw.Start(ctx)
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(shutdownCtx)
	}()

	log.Printf("vbsgw: serving %d node(s) on %s (replicas=%d, ring %s)",
		len(urls), *addr, *replicas, strings.Join(urls, ","))
	if err := hs.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatalf("vbsgw: %v", err)
	}
	gw.Stop()
	log.Printf("vbsgw: shut down")
}

// runNode drives the membership admin verbs against a running
// gateway: ls (default), add <url>, drain <node>, remove <node>.
func runNode(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("vbsgw node", flag.ExitOnError)
	gwURL := fs.String("gw", "http://localhost:8930", "gateway base URL")
	timeout := fs.Duration("timeout", 10*time.Second, "request timeout")
	verb, rest := "ls", args
	if len(args) > 0 && !strings.HasPrefix(args[0], "-") {
		verb, rest = args[0], args[1:]
	}
	_ = fs.Parse(rest)

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	admin := cluster.NewAdmin(*gwURL, nil)

	var (
		ms  cluster.MembershipResponse
		err error
	)
	switch verb {
	case "ls":
		ms, err = admin.Nodes(ctx)
	case "add", "drain", "remove":
		if fs.NArg() != 1 {
			fmt.Fprintf(errOut, "vbsgw: node %s needs exactly one node URL\n", verb)
			return 2
		}
		target := fs.Arg(0)
		switch verb {
		case "add":
			ms, err = admin.AddNode(ctx, target)
		case "drain":
			ms, err = admin.DrainNode(ctx, target)
		case "remove":
			ms, err = admin.RemoveNode(ctx, target)
		}
	default:
		fmt.Fprintf(errOut, "vbsgw: unknown node verb %q (want ls, add, drain, or remove)\n", verb)
		return 2
	}
	if err != nil {
		fmt.Fprintf(errOut, "vbsgw: %v\n", err)
		return 1
	}
	fmt.Fprintf(out, "membership v%d, ring %s\n", ms.Version, ms.RingVersion)
	for _, n := range ms.Nodes {
		fmt.Fprintf(out, "  %-10s %-8s %s\n", n.Mode, n.State, n.Name)
	}
	return 0
}

// runRebalance kicks a rebalance pass and prints the progress block.
func runRebalance(args []string, out, errOut io.Writer) int {
	fs := flag.NewFlagSet("vbsgw rebalance", flag.ExitOnError)
	gwURL := fs.String("gw", "http://localhost:8930", "gateway base URL")
	timeout := fs.Duration("timeout", 10*time.Second, "request timeout")
	_ = fs.Parse(args)

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	st, err := cluster.NewAdmin(*gwURL, nil).Rebalance(ctx)
	if err != nil {
		fmt.Fprintf(errOut, "vbsgw: %v\n", err)
		return 1
	}
	fmt.Fprintf(out, "rebalance %s (ring %s): %d pass(es), %d examined, %d copied, %d trimmed, %d tombstones, %d skipped, %d errors\n",
		st.State, st.RingVersion, st.Passes, st.BlobsExamined, st.Copies, st.Trims,
		st.TombstonesPropagated, st.Skipped, st.Errors)
	if st.LastError != "" {
		fmt.Fprintf(out, "last error: %s\n", st.LastError)
	}
	return 0
}
