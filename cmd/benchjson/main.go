// Command benchjson converts `go test -bench` output on stdin into a
// small JSON file mapping benchmark name to its metrics (ns/op, MB/s,
// B/op, allocs/op). `make bench` pipes the decode benchmarks through it
// to produce BENCH_decode.json, the committed perf baseline that gives
// future changes a trajectory to compare against.
package main

import (
	"flag"
	"fmt"
	"io"
	"log"
	"os"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchjson: ")
	out := flag.String("out", "", "output file (default stdout)")
	flag.Parse()

	input, err := io.ReadAll(os.Stdin)
	if err != nil {
		log.Fatal(err)
	}
	results := Parse(string(input))
	if len(results) == 0 {
		log.Fatal("no benchmark lines found on stdin")
	}
	data, err := Marshal(results)
	if err != nil {
		log.Fatal(err)
	}
	if *out == "" {
		fmt.Print(string(data))
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d benchmarks to %s\n", len(results), *out)
}
