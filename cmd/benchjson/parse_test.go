package main

import (
	"encoding/json"
	"strings"
	"testing"
)

const sample = `goos: linux
goarch: amd64
pkg: repro
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkDecode/c=1-8         	    1999	    577099 ns/op	  13.92 MB/s	   12352 B/op	     194 allocs/op
BenchmarkDecode/c=2-8         	     482	   2644525 ns/op	   3.04 MB/s	   12352 B/op	     194 allocs/op
BenchmarkEq1-8                	 1000000	      1042 ns/op
not a benchmark line
PASS
ok  	repro	4.816s
`

func TestParse(t *testing.T) {
	got := Parse(sample)
	if len(got) != 3 {
		t.Fatalf("parsed %d results, want 3", len(got))
	}
	c2, ok := got["BenchmarkDecode/c=2"]
	if !ok {
		t.Fatalf("missing BenchmarkDecode/c=2 (GOMAXPROCS suffix not stripped?): %v", got)
	}
	if c2.Iterations != 482 || c2.NsPerOp != 2644525 || c2.MBPerSec != 3.04 ||
		c2.BytesPerOp != 12352 || c2.AllocsPerOp != 194 {
		t.Errorf("c=2 parsed as %+v", c2)
	}
	eq1 := got["BenchmarkEq1"]
	if eq1.NsPerOp != 1042 || eq1.AllocsPerOp != 0 {
		t.Errorf("metric-less benchmark parsed as %+v", eq1)
	}
}

func TestMarshalDeterministicAndValid(t *testing.T) {
	results := Parse(sample)
	a, err := Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Marshal(results)
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("Marshal is not deterministic")
	}
	var back map[string]Result
	if err := json.Unmarshal(a, &back); err != nil {
		t.Fatalf("output is not valid JSON: %v\n%s", err, a)
	}
	if len(back) != len(results) {
		t.Errorf("round trip lost entries: %d vs %d", len(back), len(results))
	}
	names := []string{"BenchmarkDecode/c=1", "BenchmarkDecode/c=2", "BenchmarkEq1"}
	prev := -1
	for _, n := range names {
		i := strings.Index(string(a), n)
		if i < prev {
			t.Errorf("names not sorted in output:\n%s", a)
		}
		prev = i
	}
}
