package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's measurements. Unreported metrics stay
// zero and are omitted from the JSON.
type Result struct {
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_s,omitempty"`
	BytesPerOp  int64   `json:"bytes_per_op,omitempty"`
	AllocsPerOp int64   `json:"allocs_per_op,omitempty"`
}

// Parse extracts benchmark results from `go test -bench` output. Lines
// look like:
//
//	BenchmarkDecode/c=2-8   138   8770593 ns/op   0.92 MB/s   837057 B/op   81832 allocs/op
//
// The trailing -N GOMAXPROCS suffix is stripped from the name so
// baselines compare across machines.
func Parse(out string) map[string]Result {
	results := make(map[string]Result)
	sc := bufio.NewScanner(strings.NewReader(out))
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 3 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		iters, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			continue
		}
		r := Result{Iterations: iters}
		ok := false
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				break
			}
			switch fields[i+1] {
			case "ns/op":
				r.NsPerOp, ok = v, true
			case "MB/s":
				r.MBPerSec = v
			case "B/op":
				r.BytesPerOp = int64(v)
			case "allocs/op":
				r.AllocsPerOp = int64(v)
			}
		}
		if !ok {
			continue
		}
		name := fields[0]
		if i := strings.LastIndex(name, "-"); i > 0 {
			if _, err := strconv.Atoi(name[i+1:]); err == nil {
				name = name[:i]
			}
		}
		results[name] = r
	}
	return results
}

// Marshal renders the results deterministically (sorted names, stable
// indentation) so the committed baseline diffs cleanly.
func Marshal(results map[string]Result) ([]byte, error) {
	names := make([]string, 0, len(results))
	for name := range results {
		names = append(names, name)
	}
	sort.Strings(names)
	var buf bytes.Buffer
	buf.WriteString("{\n")
	for i, name := range names {
		entry, err := json.Marshal(results[name])
		if err != nil {
			return nil, err
		}
		buf.WriteString("  ")
		key, _ := json.Marshal(name)
		buf.Write(key)
		buf.WriteString(": ")
		buf.Write(entry)
		if i < len(names)-1 {
			buf.WriteByte(',')
		}
		buf.WriteByte('\n')
	}
	buf.WriteString("}\n")
	return buf.Bytes(), nil
}
