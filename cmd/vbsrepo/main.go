// Command vbsrepo administers a persistent VBS repository (the
// -data-dir of vbsd) offline: list blobs, verify integrity, collect
// quarantine/temp garbage, and bulk-import design-flow output.
//
//	vbsrepo ls     -dir /var/lib/vbsd
//	vbsrepo verify -dir /var/lib/vbsd
//	vbsrepo gc     -dir /var/lib/vbsd
//	vbsrepo import -dir /var/lib/vbsd task1.vbs task2.vbs ...
//
// ls and verify open the repository read-only (verify reports
// corruption without moving files, so it is safe against a live
// daemon's data dir); gc and import take the writable path. import
// strict-parses every file as a VBS container before admitting it, so
// the repository only ever holds blobs the runtime can load.
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/core"
	"repro/internal/repo"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func usage(stderr io.Writer) int {
	fmt.Fprintln(stderr, "usage: vbsrepo <ls|verify|gc|import> -dir <repo> [args]")
	return 2
}

func run(args []string, stdout, stderr io.Writer) int {
	if len(args) < 1 {
		return usage(stderr)
	}
	cmd, rest := args[0], args[1:]
	fs := flag.NewFlagSet("vbsrepo "+cmd, flag.ContinueOnError)
	fs.SetOutput(stderr)
	dir := fs.String("dir", "", "repository directory")
	if err := fs.Parse(rest); err != nil {
		return 2
	}
	if *dir == "" {
		fmt.Fprintf(stderr, "vbsrepo %s: -dir required\n", cmd)
		return 2
	}
	var err error
	switch cmd {
	case "ls":
		err = runLs(*dir, stdout)
	case "verify":
		err = runVerify(*dir, stdout)
	case "gc":
		err = runGC(*dir, stdout)
	case "import":
		err = runImport(*dir, fs.Args(), stdout)
	default:
		return usage(stderr)
	}
	if err != nil {
		fmt.Fprintf(stderr, "vbsrepo %s: %v\n", cmd, err)
		return 1
	}
	return 0
}

func runLs(dir string, w io.Writer) error {
	r, err := repo.Open(dir, repo.Options{ReadOnly: true})
	if err != nil {
		return err
	}
	for _, b := range r.List() {
		fmt.Fprintf(w, "%s  %10d\n", b.Digest, b.Bytes)
	}
	rep := r.ScanReport()
	fmt.Fprintf(w, "%d blob(s), %d bytes", r.Len(), r.Bytes())
	if rep.Quarantined > 0 {
		fmt.Fprintf(w, " (%d corrupt, run verify/gc)", rep.Quarantined)
	}
	fmt.Fprintln(w)
	return nil
}

// errCorruptFound makes verify exit nonzero when any blob fails, the
// contract the CI persistence smoke relies on.
var errCorruptFound = errors.New("corrupt blob(s) found")

func runVerify(dir string, w io.Writer) error {
	r, err := repo.Open(dir, repo.Options{ReadOnly: true})
	if err != nil {
		return err
	}
	scan := r.ScanReport()
	rep := r.Verify()
	fmt.Fprintf(w, "scanned %d, verified %d blob(s), %d bytes OK\n",
		scan.Scanned, rep.Checked, rep.Bytes)
	bad := scan.Quarantined + len(rep.Corrupt)
	for _, d := range rep.Corrupt {
		fmt.Fprintf(w, "CORRUPT %s\n", d)
	}
	if bad > 0 {
		return fmt.Errorf("%w: %d", errCorruptFound, bad)
	}
	return nil
}

func runGC(dir string, w io.Writer) error {
	r, err := repo.Open(dir, repo.Options{})
	if err != nil {
		return err
	}
	rep, err := r.GC()
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "removed %d quarantined blob(s), %d temp file(s), reclaimed %d bytes\n",
		rep.QuarantineRemoved, rep.TempRemoved, rep.BytesReclaimed)
	return nil
}

func runImport(dir string, files []string, w io.Writer) error {
	if len(files) == 0 {
		return fmt.Errorf("no input files")
	}
	r, err := repo.Open(dir, repo.Options{})
	if err != nil {
		return err
	}
	imported, existed := 0, 0
	for _, path := range files {
		data, err := os.ReadFile(path)
		if err != nil {
			return err
		}
		// Admit only what the runtime could actually load.
		if _, err := core.Parse(data); err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		d, dup, err := r.Put(data)
		if err != nil {
			return fmt.Errorf("%s: %w", path, err)
		}
		state := "imported"
		if dup {
			state = "exists"
			existed++
		} else {
			imported++
		}
		fmt.Fprintf(w, "%s  %s  %s\n", d, state, path)
	}
	fmt.Fprintf(w, "imported %d, already present %d\n", imported, existed)
	return nil
}
