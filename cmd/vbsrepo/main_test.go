package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/repo"
)

func writeVBSFile(t *testing.T, dir, name string, taskW int) string {
	t.Helper()
	v := &core.VBS{P: arch.Default(), Cluster: 1, TaskW: taskW, TaskH: 2}
	data, err := v.Encode()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestImportLsVerify(t *testing.T) {
	work := t.TempDir()
	dataDir := filepath.Join(work, "repo")
	a := writeVBSFile(t, work, "a.vbs", 2)
	b := writeVBSFile(t, work, "b.vbs", 3)

	var out bytes.Buffer
	if code := run([]string{"import", "-dir", dataDir, a, b, a}, &out, &out); code != 0 {
		t.Fatalf("import exit %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "imported 2, already present 1") {
		t.Fatalf("import output: %s", out.String())
	}

	out.Reset()
	if code := run([]string{"ls", "-dir", dataDir}, &out, &out); code != 0 {
		t.Fatalf("ls exit %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "2 blob(s)") {
		t.Fatalf("ls output: %s", out.String())
	}

	out.Reset()
	if code := run([]string{"verify", "-dir", dataDir}, &out, &out); code != 0 {
		t.Fatalf("verify exit %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "verified 2 blob(s)") {
		t.Fatalf("verify output: %s", out.String())
	}
}

func TestImportRejectsNonVBS(t *testing.T) {
	work := t.TempDir()
	junk := filepath.Join(work, "junk.vbs")
	if err := os.WriteFile(junk, []byte("not a container"), 0o644); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	if code := run([]string{"import", "-dir", filepath.Join(work, "repo"), junk}, &out, &out); code != 1 {
		t.Fatalf("import of junk exited %d: %s", code, out.String())
	}
}

func TestVerifyFlagsCorruption(t *testing.T) {
	work := t.TempDir()
	dataDir := filepath.Join(work, "repo")
	a := writeVBSFile(t, work, "a.vbs", 2)
	var out bytes.Buffer
	if code := run([]string{"import", "-dir", dataDir, a}, &out, &out); code != 0 {
		t.Fatalf("import: %s", out.String())
	}
	// Corrupt the stored blob on disk.
	var blobPath string
	filepath.WalkDir(dataDir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".vbs") &&
			!strings.Contains(path, "quarantine") {
			blobPath = path
		}
		return nil
	})
	if blobPath == "" {
		t.Fatal("stored blob not found")
	}
	raw, _ := os.ReadFile(blobPath)
	raw[len(raw)-1] ^= 0x55
	os.WriteFile(blobPath, raw, 0o644)

	out.Reset()
	if code := run([]string{"verify", "-dir", dataDir}, &out, &out); code != 1 {
		t.Fatalf("verify of corrupt repo exited %d: %s", code, out.String())
	}
	// Read-only verify must leave the file in place for gc/forensics.
	if _, err := os.Stat(blobPath); err != nil {
		t.Fatalf("verify moved the corrupt blob: %v", err)
	}
}

func TestGCReclaims(t *testing.T) {
	work := t.TempDir()
	dataDir := filepath.Join(work, "repo")
	r, err := repo.Open(dataDir, repo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	d, _, err := r.Put([]byte("doomed"))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt and trigger read-time quarantine.
	hx := d.String()
	blobPath := filepath.Join(dataDir, hx[:2], hx[2:4], hx+".vbs")
	raw, _ := os.ReadFile(blobPath)
	raw[len(raw)-1] ^= 0x55
	os.WriteFile(blobPath, raw, 0o644)
	if _, err := r.Get(d); err == nil {
		t.Fatal("corrupt blob served")
	}

	var out bytes.Buffer
	if code := run([]string{"gc", "-dir", dataDir}, &out, &out); code != 0 {
		t.Fatalf("gc exit %d: %s", code, out.String())
	}
	if !strings.Contains(out.String(), "removed 1 quarantined blob(s)") {
		t.Fatalf("gc output: %s", out.String())
	}
}

func TestUsageErrors(t *testing.T) {
	var out bytes.Buffer
	if code := run(nil, &out, &out); code != 2 {
		t.Fatalf("no args: exit %d", code)
	}
	if code := run([]string{"frobnicate", "-dir", "x"}, &out, &out); code != 2 {
		t.Fatalf("unknown command: exit %d", code)
	}
	if code := run([]string{"ls"}, &out, &out); code != 2 {
		t.Fatalf("missing -dir: exit %d", code)
	}
}
