// Command vbsdecode is the runtime side of the flow as a CLI: it
// de-virtualizes a Virtual Bit-Stream into a raw configuration at a
// chosen position on a chosen fabric, which is exactly what the
// reconfiguration controller does at task load time.
//
//	vbsdecode -in task.vbs -fabric 64x64 -x 10 -y 4 -o region.rbs
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"repro/internal/arch"
	"repro/internal/bitstream"
	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintf(os.Stderr, "vbsdecode: %v\n", err)
		os.Exit(1)
	}
}

// run is the testable body of the command.
func run(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("vbsdecode", flag.ContinueOnError)
	var (
		inPath  = fs.String("in", "", "input VBS file")
		outPath = fs.String("o", "", "output raw bitstream file (optional)")
		x       = fs.Int("x", 0, "task west column on the fabric")
		y       = fs.Int("y", 0, "task south row on the fabric")
		size    = fs.String("fabric", "", "fabric WxH in macros (default: the task's own size)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *inPath == "" {
		return fmt.Errorf("-in required")
	}

	data, err := os.ReadFile(*inPath)
	if err != nil {
		return err
	}
	v, err := core.Parse(data)
	if err != nil {
		return err
	}

	grid := arch.Grid{Width: v.TaskW, Height: v.TaskH}
	if *size != "" {
		if _, err := fmt.Sscanf(*size, "%dx%d", &grid.Width, &grid.Height); err != nil {
			return fmt.Errorf("bad -fabric %q: %w", *size, err)
		}
	}

	target := bitstream.New(v.P, grid)
	if err := v.DecodeInto(target, *x, *y); err != nil {
		return err
	}

	fmt.Fprintf(stdout, "task    : %dx%d macros, W=%d, K=%d, cluster %d\n",
		v.TaskW, v.TaskH, v.P.W, v.P.K, v.Cluster)
	fmt.Fprintf(stdout, "entries : %d regions (%d raw fallback)\n", len(v.Entries), countRaw(v))
	fmt.Fprintf(stdout, "VBS     : %s; raw equivalent %s (%s)\n",
		report.Bits(v.Size()), report.Bits(v.RawSizeBits()),
		report.Percent(v.CompressionRatio()))
	fmt.Fprintf(stdout, "decoded : at (%d,%d) on %dx%d fabric\n", *x, *y, grid.Width, grid.Height)

	if *outPath != "" {
		out := target.Encode()
		if err := os.WriteFile(*outPath, out, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(stdout, "wrote   : %s (%d bytes)\n", *outPath, len(out))
	}
	return nil
}

func countRaw(v *core.VBS) int {
	n := 0
	for i := range v.Entries {
		if v.Entries[i].Raw {
			n++
		}
	}
	return n
}
