// Command vbsdecode is the runtime side of the flow as a CLI: it
// de-virtualizes a Virtual Bit-Stream into a raw configuration at a
// chosen position on a chosen fabric, which is exactly what the
// reconfiguration controller does at task load time.
//
//	vbsdecode -in task.vbs -fabric 64x64 -x 10 -y 4 -o region.rbs
package main

import (
	"flag"
	"fmt"
	"os"

	"repro/internal/arch"
	"repro/internal/bitstream"
	"repro/internal/core"
	"repro/internal/report"
)

func main() {
	var (
		inPath  = flag.String("in", "", "input VBS file")
		outPath = flag.String("o", "", "output raw bitstream file (optional)")
		x       = flag.Int("x", 0, "task west column on the fabric")
		y       = flag.Int("y", 0, "task south row on the fabric")
		size    = flag.String("fabric", "", "fabric WxH in macros (default: the task's own size)")
	)
	flag.Parse()
	if *inPath == "" {
		fmt.Fprintln(os.Stderr, "vbsdecode: -in required")
		os.Exit(2)
	}

	data, err := os.ReadFile(*inPath)
	if err != nil {
		fail(err)
	}
	v, err := core.Parse(data)
	if err != nil {
		fail(err)
	}

	grid := arch.Grid{Width: v.TaskW, Height: v.TaskH}
	if *size != "" {
		if _, err := fmt.Sscanf(*size, "%dx%d", &grid.Width, &grid.Height); err != nil {
			fail(fmt.Errorf("bad -fabric %q: %w", *size, err))
		}
	}

	target := bitstream.New(v.P, grid)
	if err := v.DecodeInto(target, *x, *y); err != nil {
		fail(err)
	}

	fmt.Printf("task    : %dx%d macros, W=%d, K=%d, cluster %d\n",
		v.TaskW, v.TaskH, v.P.W, v.P.K, v.Cluster)
	fmt.Printf("entries : %d regions (%d raw fallback)\n", len(v.Entries), countRaw(v))
	fmt.Printf("VBS     : %s; raw equivalent %s (%s)\n",
		report.Bits(v.Size()), report.Bits(v.RawSizeBits()),
		report.Percent(v.CompressionRatio()))
	fmt.Printf("decoded : at (%d,%d) on %dx%d fabric\n", *x, *y, grid.Width, grid.Height)

	if *outPath != "" {
		out := target.Encode()
		if err := os.WriteFile(*outPath, out, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("wrote   : %s (%d bytes)\n", *outPath, len(out))
	}
}

func countRaw(v *core.VBS) int {
	n := 0
	for i := range v.Entries {
		if v.Entries[i].Raw {
			n++
		}
	}
	return n
}

func fail(err error) {
	fmt.Fprintf(os.Stderr, "vbsdecode: %v\n", err)
	os.Exit(1)
}
