package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"repro"
	"repro/internal/bitstream"
)

// compile runs the offline flow on a tiny BLIF design and returns the
// compiled artifacts.
func compile(t *testing.T) *repro.Compiled {
	t.Helper()
	const blif = `.model t
.inputs a b c
.outputs z y
.names a b n1
11 1
.names n1 c z
10 1
.latch z y re clk 0
.end
`
	f := repro.NewFlow()
	f.W = 10
	f.PlaceEffort = 1
	c, err := f.CompileBLIF(strings.NewReader(blif))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestRoundTrip generates a VBS, decodes it through the CLI, and
// checks the emitted raw bitstream is electrically equivalent to the
// design (decode may choose different interior wires than the offline
// router, so equivalence — not bit equality — is the contract).
func TestRoundTrip(t *testing.T) {
	c := compile(t)
	dir := t.TempDir()
	vbsPath := filepath.Join(dir, "t.vbs")
	rawPath := filepath.Join(dir, "t.rbs")
	container, err := c.VBS.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(vbsPath, container, 0o644); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	if err := run([]string{"-in", vbsPath, "-o", rawPath}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"task    :", "VBS     :", "decoded :", "wrote   :"} {
		if !strings.Contains(out.String(), want) {
			t.Errorf("output missing %q:\n%s", want, out.String())
		}
	}

	data, err := os.ReadFile(rawPath)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := bitstream.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if decoded.G != c.Grid {
		t.Errorf("decoded grid %v, want %v", decoded.G, c.Grid)
	}
	// The CLI-decoded configuration must implement the design.
	if err := bitstream.Verify(decoded, c.Design, c.Placement, c.Graph); err != nil {
		t.Errorf("decoded bitstream not equivalent to design: %v", err)
	}
	// And it must match the reference decoder bit for bit.
	ref, err := c.VBS.Decode()
	if err != nil {
		t.Fatal(err)
	}
	if !decoded.Equal(ref) {
		t.Error("CLI decode differs from reference decoder")
	}
}

// TestDecodeAtOffset places the task away from the origin on a larger
// fabric and checks the configuration is a pure translation.
func TestDecodeAtOffset(t *testing.T) {
	c := compile(t)
	dir := t.TempDir()
	vbsPath := filepath.Join(dir, "t.vbs")
	rawPath := filepath.Join(dir, "t.rbs")
	container, err := c.VBS.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(vbsPath, container, 0o644); err != nil {
		t.Fatal(err)
	}
	w, h := c.Grid.Width+5, c.Grid.Height+4
	fabArg := []string{"-in", vbsPath, "-o", rawPath,
		"-fabric", strconv.Itoa(w) + "x" + strconv.Itoa(h), "-x", "3", "-y", "2"}
	var out bytes.Buffer
	if err := run(fabArg, &out); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(rawPath)
	if err != nil {
		t.Fatal(err)
	}
	decoded, err := bitstream.Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := c.VBS.Decode()
	if err != nil {
		t.Fatal(err)
	}
	for x := 0; x < c.VBS.TaskW; x++ {
		for y := 0; y < c.VBS.TaskH; y++ {
			if !decoded.At(3+x, 2+y).Vec().Equal(ref.At(x, y).Vec()) {
				t.Fatalf("macro (%d,%d) is not a translation", x, y)
			}
		}
	}
}

func TestRunErrors(t *testing.T) {
	var out bytes.Buffer
	if err := run(nil, &out); err == nil {
		t.Error("missing -in accepted")
	}
	if err := run([]string{"-in", "/nonexistent.vbs"}, &out); err == nil {
		t.Error("missing file accepted")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.vbs")
	if err := os.WriteFile(bad, []byte("junk"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", bad}, &out); err == nil {
		t.Error("malformed container accepted")
	}
	c := compile(t)
	container, err := c.VBS.Encode()
	if err != nil {
		t.Fatal(err)
	}
	good := filepath.Join(dir, "good.vbs")
	if err := os.WriteFile(good, container, 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-in", good, "-fabric", "nonsense"}, &out); err == nil {
		t.Error("bad -fabric accepted")
	}
	if err := run([]string{"-in", good, "-x", "1000"}, &out); err == nil {
		t.Error("out-of-range position accepted")
	}
}
