// Package jobs is the xaction-style background-activity engine: every
// long-running operation — rebalance, tombstone sweep, repo scrub,
// cache warming, reconciliation — is a Job with an ID, a kind, a
// start time, named progress counters, an abort channel and a
// terminal status, registered in a per-process Table.
//
// The HTTP surface (POST /jobs, GET /jobs, DELETE /jobs/{id} on both
// vbsd and vbsgw) is a thin veneer over the Table; the gateway fans
// fleet-wide kinds out to every node and scatter-gathers their
// progress into one gateway job.
//
// Lifecycle:
//
//	POST /jobs ── Start ──▶ running ──┬─ runner returns nil ──▶ done
//	                                  ├─ runner returns err ──▶ failed
//	      DELETE /jobs/{id} ── Abort ─┴──── ctx cancelled ────▶ aborted
//
// Terminal snapshots stay in the table (for GET /jobs) until Sweep
// drops the old ones.
package jobs

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"
)

// Status is a job's lifecycle state.
type Status string

const (
	StatusRunning Status = "running"
	StatusDone    Status = "done"
	StatusFailed  Status = "failed"
	StatusAborted Status = "aborted"
)

// Terminal reports whether the status is final.
func (s Status) Terminal() bool { return s != StatusRunning }

// Snapshot is the wire view of a job — what GET /jobs returns.
type Snapshot struct {
	ID   int64  `json:"id"`
	Kind string `json:"kind"`
	// Node names the owning process in fleet-merged listings (the
	// gateway fills it in; a node's own listing leaves it empty).
	Node     string            `json:"node,omitempty"`
	Args     map[string]string `json:"args,omitempty"`
	Status   Status            `json:"status"`
	Error    string            `json:"error,omitempty"`
	Started  time.Time         `json:"started"`
	Finished time.Time         `json:"finished,omitzero"`
	// Progress holds the job's named cumulative counters.
	Progress map[string]int64 `json:"progress,omitempty"`
}

// Runner executes a job. It must honor ctx (the abort channel): a
// cancelled ctx means DELETE /jobs/{id} or process shutdown, and the
// runner should return promptly (returning ctx.Err() marks the job
// aborted rather than failed).
type Runner func(ctx context.Context, j *Job) error

// Spec declares a job kind.
type Spec struct {
	Kind string
	// Exclusive kinds refuse to start while an instance is running —
	// two concurrent rebalances would duplicate every copy.
	Exclusive bool
	Run       Runner
}

// Job is one running or finished activity.
type Job struct {
	id    int64
	kind  string
	args  map[string]string
	start time.Time

	ctx    context.Context
	cancel context.CancelFunc
	done   chan struct{}

	mu       sync.Mutex
	progress map[string]int64
	status   Status
	errMsg   string
	finished time.Time
	aborted  bool
}

// ID returns the job's table-assigned id.
func (j *Job) ID() int64 { return j.id }

// Kind returns the job's kind.
func (j *Job) Kind() string { return j.kind }

// Arg returns a start argument ("" when absent).
func (j *Job) Arg(name string) string { return j.args[name] }

// Context is cancelled when the job is aborted (or its table shut
// down); runners thread it through every blocking call.
func (j *Job) Context() context.Context { return j.ctx }

// Done is closed when the job reaches a terminal status.
func (j *Job) Done() <-chan struct{} { return j.done }

// Aborted reports whether Abort was called.
func (j *Job) Aborted() bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.aborted
}

// Add increments a named progress counter.
func (j *Job) Add(counter string, delta int64) {
	j.mu.Lock()
	j.progress[counter] += delta
	j.mu.Unlock()
}

// Set stores a named progress counter.
func (j *Job) Set(counter string, v int64) {
	j.mu.Lock()
	j.progress[counter] = v
	j.mu.Unlock()
}

// Progress returns one counter's current value.
func (j *Job) Progress(counter string) int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.progress[counter]
}

// Snapshot returns the job's current wire view.
func (j *Job) Snapshot() Snapshot {
	j.mu.Lock()
	defer j.mu.Unlock()
	out := Snapshot{
		ID:       j.id,
		Kind:     j.kind,
		Status:   j.status,
		Error:    j.errMsg,
		Started:  j.start,
		Finished: j.finished,
	}
	if len(j.args) > 0 {
		out.Args = make(map[string]string, len(j.args))
		for k, v := range j.args {
			out.Args[k] = v
		}
	}
	if len(j.progress) > 0 {
		out.Progress = make(map[string]int64, len(j.progress))
		for k, v := range j.progress {
			out.Progress[k] = v
		}
	}
	return out
}

// Wait blocks until the job finishes or ctx expires, returning the
// terminal snapshot.
func (j *Job) Wait(ctx context.Context) (Snapshot, error) {
	select {
	case <-j.done:
		return j.Snapshot(), nil
	case <-ctx.Done():
		return j.Snapshot(), ctx.Err()
	}
}

// finish records the terminal status exactly once.
func (j *Job) finish(err error) {
	j.mu.Lock()
	switch {
	case err == nil:
		j.status = StatusDone
	case j.aborted || errors.Is(err, context.Canceled):
		j.status = StatusAborted
		if !errors.Is(err, context.Canceled) {
			j.errMsg = err.Error()
		}
	default:
		j.status = StatusFailed
		j.errMsg = err.Error()
	}
	j.finished = time.Now()
	j.mu.Unlock()
	j.cancel() // release the context's resources
	close(j.done)
}

// ErrUnknownKind is wrapped by Table.Start for an unregistered kind.
var ErrUnknownKind = errors.New("jobs: unknown job kind")

// ErrExclusive is wrapped by Table.Start when an exclusive kind is
// already running.
var ErrExclusive = errors.New("jobs: exclusive kind already running")

// Table is the per-process job registry: defined kinds plus every
// running and recently finished job.
type Table struct {
	base context.Context
	stop context.CancelFunc

	mu     sync.Mutex
	specs  map[string]Spec
	jobs   map[int64]*Job
	nextID int64
	wg     sync.WaitGroup
}

// NewTable returns an empty table. Call Shutdown to abort everything
// it is running.
func NewTable() *Table {
	ctx, cancel := context.WithCancel(context.Background())
	return &Table{
		base:   ctx,
		stop:   cancel,
		specs:  make(map[string]Spec),
		jobs:   make(map[int64]*Job),
		nextID: 1,
	}
}

// Define registers a job kind. Call it from the owning subsystem's
// constructor; defining a kind twice panics (two subsystems fighting
// over one name is a wiring bug, like a duplicate metric).
func (t *Table) Define(spec Spec) {
	if spec.Kind == "" || spec.Run == nil {
		panic("jobs: Define needs a kind and a runner")
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dup := t.specs[spec.Kind]; dup {
		panic(fmt.Sprintf("jobs: duplicate definition of kind %q", spec.Kind))
	}
	t.specs[spec.Kind] = spec
}

// Kinds lists the defined kinds, sorted.
func (t *Table) Kinds() []string {
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]string, 0, len(t.specs))
	for k := range t.specs {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Start launches a job of the given kind. The error wraps
// ErrUnknownKind or ErrExclusive when refused.
func (t *Table) Start(kind string, args map[string]string) (*Job, error) {
	t.mu.Lock()
	spec, ok := t.specs[kind]
	if !ok {
		t.mu.Unlock()
		return nil, fmt.Errorf("%w: %q", ErrUnknownKind, kind)
	}
	if spec.Exclusive {
		for _, j := range t.jobs {
			if j.kind == kind && !j.Snapshot().Status.Terminal() {
				t.mu.Unlock()
				return nil, fmt.Errorf("%w: %q (job %d)", ErrExclusive, kind, j.id)
			}
		}
	}
	ctx, cancel := context.WithCancel(t.base)
	j := &Job{
		id:       t.nextID,
		kind:     kind,
		args:     args,
		start:    time.Now(),
		ctx:      ctx,
		cancel:   cancel,
		done:     make(chan struct{}),
		progress: make(map[string]int64),
		status:   StatusRunning,
	}
	t.nextID++
	t.jobs[j.id] = j
	t.wg.Add(1)
	t.mu.Unlock()
	go func() {
		defer t.wg.Done()
		j.finish(spec.Run(ctx, j))
	}()
	return j, nil
}

// Get returns a job by id.
func (t *Table) Get(id int64) (*Job, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	j, ok := t.jobs[id]
	return j, ok
}

// Abort cancels a running job's context. It reports whether the id
// existed; aborting a finished job is a no-op (still true).
func (t *Table) Abort(id int64) bool {
	t.mu.Lock()
	j, ok := t.jobs[id]
	t.mu.Unlock()
	if !ok {
		return false
	}
	j.mu.Lock()
	if j.status == StatusRunning {
		j.aborted = true
	}
	j.mu.Unlock()
	j.cancel()
	return true
}

// List snapshots every job, oldest first.
func (t *Table) List() []Snapshot {
	t.mu.Lock()
	jobs := make([]*Job, 0, len(t.jobs))
	for _, j := range t.jobs {
		jobs = append(jobs, j)
	}
	t.mu.Unlock()
	sort.Slice(jobs, func(a, b int) bool { return jobs[a].id < jobs[b].id })
	out := make([]Snapshot, len(jobs))
	for i, j := range jobs {
		out[i] = j.Snapshot()
	}
	return out
}

// Running counts non-terminal jobs, per kind.
func (t *Table) Running() map[string]int {
	out := map[string]int{}
	for _, s := range t.List() {
		if !s.Status.Terminal() {
			out[s.Kind]++
		}
	}
	return out
}

// Sweep drops terminal jobs that finished more than keep ago,
// returning how many were dropped. Running jobs are never swept.
func (t *Table) Sweep(keep time.Duration) int {
	cutoff := time.Now().Add(-keep)
	t.mu.Lock()
	defer t.mu.Unlock()
	dropped := 0
	for id, j := range t.jobs {
		s := j.Snapshot()
		if s.Status.Terminal() && s.Finished.Before(cutoff) {
			delete(t.jobs, id)
			dropped++
		}
	}
	return dropped
}

// Shutdown aborts every running job and waits (bounded by ctx) for
// the runners to return.
func (t *Table) Shutdown(ctx context.Context) error {
	t.mu.Lock()
	for _, j := range t.jobs {
		j.mu.Lock()
		if j.status == StatusRunning {
			j.aborted = true
		}
		j.mu.Unlock()
	}
	t.mu.Unlock()
	t.stop()
	done := make(chan struct{})
	go func() {
		t.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}
