package jobs

import "repro/internal/metrics"

// RegisterMetrics exposes a table's state on a metrics registry:
//
//	vbs_jobs_running{kind}            currently running jobs per kind
//	vbs_jobs_finished{kind,status}    terminal jobs still in the table
//	vbs_job_progress{kind,counter}    progress counters of each kind's
//	                                  most recent job (running preferred)
//
// The gauges are rebuilt from the table on every scrape, so job kinds
// and counters appear as soon as a job uses them. Call it once from
// the constructor that owns both the registry and the table.
func RegisterMetrics(reg *metrics.Registry, t *Table) {
	running := reg.GaugeVec("vbs_jobs_running",
		"Background jobs currently running, by kind.", "kind")
	finished := reg.GaugeVec("vbs_jobs_finished",
		"Terminal background jobs still listed, by kind and status.", "kind", "status")
	progress := reg.GaugeVec("vbs_job_progress",
		"Named progress counters of the most recent job of each kind.", "kind", "counter")
	reg.OnCollect(func() {
		running.Reset()
		finished.Reset()
		progress.Reset()
		latest := map[string]Snapshot{}
		for _, s := range t.List() {
			if s.Status.Terminal() {
				g := finished.With(s.Kind, string(s.Status))
				g.Set(g.Value() + 1)
			} else {
				g := running.With(s.Kind)
				g.Set(g.Value() + 1)
			}
			// List is id-ordered, so a later snapshot is newer — but a
			// running job beats any finished one of the same kind.
			cur, ok := latest[s.Kind]
			if !ok || !s.Status.Terminal() || cur.Status.Terminal() {
				latest[s.Kind] = s
			}
		}
		for kind, s := range latest {
			for name, v := range s.Progress {
				progress.With(kind, name).Set(float64(v))
			}
		}
		// Defined-but-idle kinds still export a zero series, so a scrape
		// distinguishes "kind exists, nothing running" from "no such kind".
		for _, k := range t.Kinds() {
			running.With(k)
		}
	})
}
