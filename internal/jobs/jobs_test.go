package jobs

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func waitStatus(t *testing.T, j *Job, want Status) Snapshot {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(5 * time.Second):
		t.Fatalf("job %d did not finish", j.ID())
	}
	s := j.Snapshot()
	if s.Status != want {
		t.Fatalf("job %d status = %s (%q), want %s", j.ID(), s.Status, s.Error, want)
	}
	return s
}

func TestJobLifecycle(t *testing.T) {
	tbl := NewTable()
	tbl.Define(Spec{Kind: "count", Run: func(ctx context.Context, j *Job) error {
		for i := 0; i < 5; i++ {
			j.Add("items", 1)
		}
		j.Set("total", 5)
		return nil
	}})
	j, err := tbl.Start("count", map[string]string{"who": "test"})
	if err != nil {
		t.Fatal(err)
	}
	s := waitStatus(t, j, StatusDone)
	if s.Progress["items"] != 5 || s.Progress["total"] != 5 {
		t.Errorf("progress = %v, want items=5 total=5", s.Progress)
	}
	if s.Args["who"] != "test" || s.Kind != "count" || s.ID != j.ID() {
		t.Errorf("snapshot identity = %+v", s)
	}
	if s.Finished.IsZero() || s.Finished.Before(s.Started) {
		t.Errorf("finished %v not after started %v", s.Finished, s.Started)
	}
}

func TestJobFailure(t *testing.T) {
	tbl := NewTable()
	boom := errors.New("boom")
	tbl.Define(Spec{Kind: "fail", Run: func(ctx context.Context, j *Job) error { return boom }})
	j, err := tbl.Start("fail", nil)
	if err != nil {
		t.Fatal(err)
	}
	s := waitStatus(t, j, StatusFailed)
	if s.Error != "boom" {
		t.Errorf("error = %q, want boom", s.Error)
	}
}

func TestJobAbort(t *testing.T) {
	tbl := NewTable()
	started := make(chan struct{})
	tbl.Define(Spec{Kind: "wait", Run: func(ctx context.Context, j *Job) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	}})
	j, err := tbl.Start("wait", nil)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	if !tbl.Abort(j.ID()) {
		t.Fatal("abort reported unknown id")
	}
	waitStatus(t, j, StatusAborted)
	if !j.Aborted() {
		t.Error("Aborted() = false after abort")
	}
	if tbl.Abort(99999) {
		t.Error("abort of unknown id reported true")
	}
}

func TestExclusiveKind(t *testing.T) {
	tbl := NewTable()
	release := make(chan struct{})
	tbl.Define(Spec{Kind: "solo", Exclusive: true, Run: func(ctx context.Context, j *Job) error {
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	}})
	j1, err := tbl.Start("solo", nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tbl.Start("solo", nil); !errors.Is(err, ErrExclusive) {
		t.Fatalf("second start err = %v, want ErrExclusive", err)
	}
	close(release)
	waitStatus(t, j1, StatusDone)
	// Terminal instance no longer blocks a restart.
	j2, err := tbl.Start("solo", nil)
	if err != nil {
		t.Fatalf("restart after done: %v", err)
	}
	waitStatus(t, j2, StatusDone)
}

func TestUnknownKind(t *testing.T) {
	tbl := NewTable()
	if _, err := tbl.Start("nope", nil); !errors.Is(err, ErrUnknownKind) {
		t.Fatalf("err = %v, want ErrUnknownKind", err)
	}
}

func TestListAndSweep(t *testing.T) {
	tbl := NewTable()
	tbl.Define(Spec{Kind: "quick", Run: func(ctx context.Context, j *Job) error { return nil }})
	hold := make(chan struct{})
	tbl.Define(Spec{Kind: "slow", Run: func(ctx context.Context, j *Job) error {
		select {
		case <-hold:
		case <-ctx.Done():
		}
		return nil
	}})
	for i := 0; i < 3; i++ {
		j, err := tbl.Start("quick", nil)
		if err != nil {
			t.Fatal(err)
		}
		waitStatus(t, j, StatusDone)
	}
	if _, err := tbl.Start("slow", nil); err != nil {
		t.Fatal(err)
	}
	ls := tbl.List()
	if len(ls) != 4 {
		t.Fatalf("List() = %d jobs, want 4", len(ls))
	}
	for i := 1; i < len(ls); i++ {
		if ls[i].ID <= ls[i-1].ID {
			t.Errorf("List() not id-ordered: %d after %d", ls[i].ID, ls[i-1].ID)
		}
	}
	if n := tbl.Running()["slow"]; n != 1 {
		t.Errorf("Running()[slow] = %d, want 1", n)
	}
	// keep=0 sweeps every terminal job, never the running one.
	if n := tbl.Sweep(0); n != 3 {
		t.Errorf("Sweep dropped %d, want 3", n)
	}
	if len(tbl.List()) != 1 {
		t.Errorf("after sweep: %d jobs, want 1 (running)", len(tbl.List()))
	}
	close(hold)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := tbl.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
}

func TestShutdownAbortsRunning(t *testing.T) {
	tbl := NewTable()
	started := make(chan struct{})
	tbl.Define(Spec{Kind: "wait", Run: func(ctx context.Context, j *Job) error {
		close(started)
		<-ctx.Done()
		return ctx.Err()
	}})
	j, err := tbl.Start("wait", nil)
	if err != nil {
		t.Fatal(err)
	}
	<-started
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := tbl.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	if s := j.Snapshot(); s.Status != StatusAborted {
		t.Errorf("status after shutdown = %s, want aborted", s.Status)
	}
}

func TestConcurrentStartAndList(t *testing.T) {
	tbl := NewTable()
	tbl.Define(Spec{Kind: "w", Run: func(ctx context.Context, j *Job) error {
		j.Add("n", 1)
		return nil
	}})
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = tbl.List()
			_ = tbl.Running()
		}
	}()
	var jobs []*Job
	for i := 0; i < 50; i++ {
		j, err := tbl.Start("w", map[string]string{"i": fmt.Sprint(i)})
		if err != nil {
			t.Fatal(err)
		}
		jobs = append(jobs, j)
	}
	<-done
	for _, j := range jobs {
		waitStatus(t, j, StatusDone)
	}
}
