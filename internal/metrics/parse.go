package metrics

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
)

// Sample is one parsed series line from a text-format exposition:
// name, label set, value. Histogram series appear under their
// expanded names (_bucket with an le label, _sum, _count).
type Sample struct {
	Name   string
	Labels map[string]string
	Value  float64
}

// Label returns a label value ("" when absent).
func (s Sample) Label(name string) string { return s.Labels[name] }

// Parse reads a Prometheus text exposition, returning every sample.
// Comment and blank lines are skipped; a malformed sample line is an
// error — the scrape assertions in CI rely on Parse rejecting garbage.
func Parse(r io.Reader) ([]Sample, error) {
	var out []Sample
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	lineNo := 0
	for sc.Scan() {
		lineNo++
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		s, err := parseSample(line)
		if err != nil {
			return nil, fmt.Errorf("metrics: line %d: %w", lineNo, err)
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("metrics: %w", err)
	}
	return out, nil
}

func parseSample(line string) (Sample, error) {
	s := Sample{Labels: map[string]string{}}
	rest := line
	// Name runs up to '{' or whitespace.
	end := strings.IndexAny(rest, "{ \t")
	if end < 0 {
		return s, fmt.Errorf("no value in %q", line)
	}
	s.Name = rest[:end]
	if !validName(s.Name) {
		return s, fmt.Errorf("bad metric name %q", s.Name)
	}
	rest = rest[end:]
	if rest[0] == '{' {
		close := -1
		// Scan for the closing brace outside quoted values.
		inQ, esc := false, false
		for i := 1; i < len(rest); i++ {
			c := rest[i]
			switch {
			case esc:
				esc = false
			case c == '\\':
				esc = true
			case c == '"':
				inQ = !inQ
			case c == '}' && !inQ:
				close = i
			}
			if close >= 0 {
				break
			}
		}
		if close < 0 {
			return s, fmt.Errorf("unterminated label set in %q", line)
		}
		if err := parseLabels(rest[1:close], s.Labels); err != nil {
			return s, err
		}
		rest = rest[close+1:]
	}
	valStr := strings.TrimSpace(rest)
	// A timestamp may trail the value; take the first field.
	if i := strings.IndexAny(valStr, " \t"); i >= 0 {
		valStr = valStr[:i]
	}
	v, err := parseValue(valStr)
	if err != nil {
		return s, fmt.Errorf("bad value %q: %w", valStr, err)
	}
	s.Value = v
	return s, nil
}

func parseLabels(body string, into map[string]string) error {
	rest := body
	for strings.TrimSpace(rest) != "" {
		rest = strings.TrimLeft(rest, ", \t")
		eq := strings.IndexByte(rest, '=')
		if eq < 0 {
			return fmt.Errorf("bad label pair in %q", body)
		}
		name := strings.TrimSpace(rest[:eq])
		if !validName(name) {
			return fmt.Errorf("bad label name %q", name)
		}
		rest = strings.TrimSpace(rest[eq+1:])
		if len(rest) == 0 || rest[0] != '"' {
			return fmt.Errorf("unquoted label value in %q", body)
		}
		var b strings.Builder
		i, closed := 1, false
		for ; i < len(rest); i++ {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				i++
				switch rest[i] {
				case 'n':
					b.WriteByte('\n')
				case '\\', '"':
					b.WriteByte(rest[i])
				default:
					b.WriteByte('\\')
					b.WriteByte(rest[i])
				}
				continue
			}
			if c == '"' {
				closed = true
				break
			}
			b.WriteByte(c)
		}
		if !closed {
			return fmt.Errorf("unterminated label value in %q", body)
		}
		into[name] = b.String()
		rest = rest[i+1:]
	}
	return nil
}

func parseValue(s string) (float64, error) {
	switch s {
	case "+Inf":
		return math.Inf(1), nil
	case "-Inf":
		return math.Inf(-1), nil
	case "NaN":
		return math.NaN(), nil
	}
	return strconv.ParseFloat(s, 64)
}

// Find returns the value of the sample matching name and the given
// label subset (every listed label must match; extra labels on the
// sample are ignored).
func Find(samples []Sample, name string, labels map[string]string) (float64, bool) {
	for _, s := range samples {
		if s.Name != name {
			continue
		}
		ok := true
		for k, v := range labels {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if ok {
			return s.Value, true
		}
	}
	return 0, false
}

// Buckets extracts a histogram's cumulative buckets from parsed
// samples: the <name>_bucket series matching the label subset, sorted
// by le. Returns nil when the family is absent.
func Buckets(samples []Sample, name string, labels map[string]string) []Bucket {
	var out []Bucket
	for _, s := range samples {
		if s.Name != name+"_bucket" {
			continue
		}
		ok := true
		for k, v := range labels {
			if s.Labels[k] != v {
				ok = false
				break
			}
		}
		if !ok {
			continue
		}
		le, err := parseValue(s.Labels["le"])
		if err != nil {
			continue
		}
		out = append(out, Bucket{Upper: le, Count: uint64(s.Value)})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Upper < out[j].Upper })
	return out
}

// SubtractBuckets returns after-before per bucket — the observation
// deltas of a scrape window. The two slices must describe the same
// bucket layout (same le bounds in order); mismatches return nil.
func SubtractBuckets(before, after []Bucket) []Bucket {
	if len(before) != len(after) {
		return nil
	}
	out := make([]Bucket, len(after))
	for i := range after {
		if before[i].Upper != after[i].Upper || after[i].Count < before[i].Count {
			return nil
		}
		out[i] = Bucket{Upper: after[i].Upper, Count: after[i].Count - before[i].Count}
	}
	return out
}

// Quantile estimates the q-quantile (0..1) from cumulative histogram
// buckets, Prometheus histogram_quantile semantics: linear
// interpolation inside the target bucket, the +Inf bucket clamping to
// the highest finite bound. Returns NaN on empty input.
func Quantile(q float64, buckets []Bucket) float64 {
	if len(buckets) == 0 {
		return math.NaN()
	}
	total := buckets[len(buckets)-1].Count
	if total == 0 {
		return math.NaN()
	}
	rank := q * float64(total)
	for i, b := range buckets {
		if float64(b.Count) < rank {
			continue
		}
		if math.IsInf(b.Upper, +1) {
			// Observations above every finite bound: the best honest
			// answer is the highest finite bound.
			if i == 0 {
				return math.NaN()
			}
			return buckets[i-1].Upper
		}
		lower, below := 0.0, uint64(0)
		if i > 0 {
			lower, below = buckets[i-1].Upper, buckets[i-1].Count
		}
		in := b.Count - below
		if in == 0 {
			return b.Upper
		}
		return lower + (b.Upper-lower)*((rank-float64(below))/float64(in))
	}
	return buckets[len(buckets)-1].Upper
}
