// Package metrics is a small, dependency-free Prometheus registry:
// counters, gauges and fixed-bucket histograms rendered in the
// Prometheus text exposition format, exposed as GET /metrics on vbsd
// and vbsgw.
//
// Metric names follow the repository convention
// vbs_<subsystem>_<name>_<unit> (unit suffixes: _seconds, _bytes,
// _bits, _total for monotonic counters). Every value the endpoint
// exports is either cumulative-monotonic (counters: rate() works) or
// an instantaneous level (gauges); nothing is reset on read.
//
// Registration is construction: Registry.Counter / Gauge / Histogram
// (and their *Vec and *Func forms) panic on a duplicate name, so all
// registration must happen exactly once — in package init or in a
// constructor (the vbslint `metricreg` analyzer enforces this).
// Observation paths (Add, Set, Observe) are lock-free atomics and safe
// for any concurrency.
package metrics

import (
	"fmt"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's Prometheus type.
type Kind string

const (
	KindCounter   Kind = "counter"
	KindGauge     Kind = "gauge"
	KindHistogram Kind = "histogram"
)

// DefLatencyBuckets are the default latency histogram bounds, in
// seconds: 500µs to 10s, roughly logarithmic. Loads pay a decode
// (milliseconds) while cache-hit gets are microseconds, so the range
// must span both.
var DefLatencyBuckets = []float64{
	.0005, .001, .0025, .005, .01, .025, .05, .1, .25, .5, 1, 2.5, 5, 10,
}

// Registry holds metric families and renders them in the text
// exposition format. The zero value is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // registration order
	collects []func()
}

// family is one named metric with its help text, type, and children
// (one child per label-value combination; unlabeled metrics have a
// single child under the empty key).
type family struct {
	name   string
	help   string
	kind   Kind
	labels []string

	mu   sync.Mutex
	kids map[string]child
	keys []string // registration order of children
}

// child is one rendered series (or histogram series group).
type child interface {
	// write appends the child's sample lines. labelStr is the
	// pre-rendered {k="v",...} fragment (empty for unlabeled).
	write(b *strings.Builder, name, labelStr string)
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// OnCollect registers a hook run at the start of every render — the
// place to refresh gauges from live state (job tables, ring views,
// cache stats) without instrumenting every mutation site.
func (r *Registry) OnCollect(fn func()) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.collects = append(r.collects, fn)
}

// register adds a family or panics on a duplicate or invalid name —
// a duplicate registration is a programming error (two subsystems
// claiming one name), not a runtime condition.
func (r *Registry) register(f *family) {
	if !validName(f.name) {
		panic(fmt.Sprintf("metrics: invalid metric name %q", f.name))
	}
	for _, l := range f.labels {
		if !validName(l) {
			panic(fmt.Sprintf("metrics: invalid label name %q on %s", l, f.name))
		}
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.families[f.name]; dup {
		panic(fmt.Sprintf("metrics: duplicate registration of %q", f.name))
	}
	r.families[f.name] = f
	r.names = append(r.names, f.name)
}

func validName(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// ── counters ───────────────────────────────────────────────────────

// Counter is a monotonically increasing integer metric.
type Counter struct{ v atomic.Uint64 }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Inc increments the counter by one.
func (c *Counter) Inc() { c.v.Add(1) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

func (c *Counter) write(b *strings.Builder, name, labelStr string) {
	b.WriteString(name)
	b.WriteString(labelStr)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(c.v.Load(), 10))
	b.WriteByte('\n')
}

// Counter registers an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := newFamily(name, help, KindCounter, nil)
	r.register(f)
	c := &Counter{}
	f.kids[""] = c
	f.keys = append(f.keys, "")
	return c
}

// CounterVec registers a counter family with the given label names.
type CounterVec struct{ f *family }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labels ...string) *CounterVec {
	f := newFamily(name, help, KindCounter, labels)
	r.register(f)
	return &CounterVec{f: f}
}

// With returns the counter for the given label values, creating it on
// first use. It panics when the value count does not match the label
// names.
func (v *CounterVec) With(values ...string) *Counter {
	return v.f.childFor(values, func() child { return &Counter{} }).(*Counter)
}

// funcMetric renders a value read from a callback at collect time —
// the bridge for pre-existing atomic counters and computed levels.
type funcMetric struct{ fn func() float64 }

func (m funcMetric) write(b *strings.Builder, name, labelStr string) {
	b.WriteString(name)
	b.WriteString(labelStr)
	b.WriteByte(' ')
	b.WriteString(formatFloat(m.fn()))
	b.WriteByte('\n')
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time. fn must be monotonic (it typically loads an existing
// atomic counter).
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := newFamily(name, help, KindCounter, nil)
	r.register(f)
	f.kids[""] = funcMetric{fn: fn}
	f.keys = append(f.keys, "")
}

// ── gauges ─────────────────────────────────────────────────────────

// Gauge is an instantaneous level that can go up and down.
type Gauge struct{ bits atomic.Uint64 }

// Set stores the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

func (g *Gauge) write(b *strings.Builder, name, labelStr string) {
	b.WriteString(name)
	b.WriteString(labelStr)
	b.WriteByte(' ')
	b.WriteString(formatFloat(g.Value()))
	b.WriteByte('\n')
}

// Gauge registers an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := newFamily(name, help, KindGauge, nil)
	r.register(f)
	g := &Gauge{}
	f.kids[""] = g
	f.keys = append(f.keys, "")
	return g
}

// GaugeFunc registers a gauge whose value is read from fn at scrape
// time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := newFamily(name, help, KindGauge, nil)
	r.register(f)
	f.kids[""] = funcMetric{fn: fn}
	f.keys = append(f.keys, "")
}

// GaugeVec is a gauge family with label names.
type GaugeVec struct{ f *family }

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labels ...string) *GaugeVec {
	f := newFamily(name, help, KindGauge, labels)
	r.register(f)
	return &GaugeVec{f: f}
}

// With returns the gauge for the given label values, creating it on
// first use.
func (v *GaugeVec) With(values ...string) *Gauge {
	return v.f.childFor(values, func() child { return &Gauge{} }).(*Gauge)
}

// Reset drops every child series — for OnCollect hooks that rebuild a
// family from live state whose members come and go (per-kind job
// gauges, per-node levels).
func (v *GaugeVec) Reset() {
	v.f.mu.Lock()
	defer v.f.mu.Unlock()
	v.f.kids = make(map[string]child)
	v.f.keys = nil
}

// ── histograms ─────────────────────────────────────────────────────

// Histogram counts observations into fixed buckets, Prometheus
// histogram semantics: le-labeled cumulative bucket counts plus _sum
// and _count. Observe is lock-free.
type Histogram struct {
	upper  []float64 // sorted upper bounds, +Inf excluded
	counts []atomic.Uint64
	inf    atomic.Uint64
	sum    atomic.Uint64 // float64 bits, CAS-accumulated
	count  atomic.Uint64
}

func newHistogram(buckets []float64) *Histogram {
	if len(buckets) == 0 {
		buckets = DefLatencyBuckets
	}
	upper := make([]float64, len(buckets))
	copy(upper, buckets)
	sort.Float64s(upper)
	for i := 1; i < len(upper); i++ {
		if upper[i] == upper[i-1] {
			panic(fmt.Sprintf("metrics: duplicate histogram bucket %v", upper[i]))
		}
	}
	if math.IsInf(upper[len(upper)-1], +1) {
		upper = upper[:len(upper)-1] // +Inf is implicit
	}
	return &Histogram{upper: upper, counts: make([]atomic.Uint64, len(upper))}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound admits v (le semantics).
	i := sort.SearchFloat64s(h.upper, v)
	if i < len(h.upper) {
		h.counts[i].Add(1)
	} else {
		h.inf.Add(1)
	}
	h.count.Add(1)
	for {
		old := h.sum.Load()
		if h.sum.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// Bucket is one cumulative histogram bucket in a snapshot.
type Bucket struct {
	// Upper is the bucket's inclusive upper bound; math.Inf(1) for the
	// +Inf bucket.
	Upper float64
	// Count is the cumulative observation count at this bound.
	Count uint64
}

// HistogramSnapshot is a point-in-time view of a histogram.
type HistogramSnapshot struct {
	Buckets []Bucket // cumulative, ending with the +Inf bucket
	Sum     float64
	Count   uint64
}

// Snapshot returns the histogram's cumulative buckets, sum and count.
func (h *Histogram) Snapshot() HistogramSnapshot {
	out := HistogramSnapshot{Buckets: make([]Bucket, 0, len(h.upper)+1)}
	var cum uint64
	for i, ub := range h.upper {
		cum += h.counts[i].Load()
		out.Buckets = append(out.Buckets, Bucket{Upper: ub, Count: cum})
	}
	cum += h.inf.Load()
	out.Buckets = append(out.Buckets, Bucket{Upper: math.Inf(1), Count: cum})
	out.Sum = math.Float64frombits(h.sum.Load())
	out.Count = h.count.Load()
	return out
}

func (h *Histogram) write(b *strings.Builder, name, labelStr string) {
	snap := h.Snapshot()
	for _, bk := range snap.Buckets {
		le := "+Inf"
		if !math.IsInf(bk.Upper, +1) {
			le = formatFloat(bk.Upper)
		}
		b.WriteString(name)
		b.WriteString("_bucket")
		b.WriteString(mergeLabel(labelStr, "le", le))
		b.WriteByte(' ')
		b.WriteString(strconv.FormatUint(bk.Count, 10))
		b.WriteByte('\n')
	}
	b.WriteString(name)
	b.WriteString("_sum")
	b.WriteString(labelStr)
	b.WriteByte(' ')
	b.WriteString(formatFloat(snap.Sum))
	b.WriteByte('\n')
	b.WriteString(name)
	b.WriteString("_count")
	b.WriteString(labelStr)
	b.WriteByte(' ')
	b.WriteString(strconv.FormatUint(snap.Count, 10))
	b.WriteByte('\n')
}

// Histogram registers an unlabeled histogram with the given bucket
// upper bounds (nil selects DefLatencyBuckets; +Inf is implicit).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	f := newFamily(name, help, KindHistogram, nil)
	r.register(f)
	h := newHistogram(buckets)
	f.kids[""] = h
	f.keys = append(f.keys, "")
	return h
}

// HistogramVec is a histogram family with label names; every child
// shares the same buckets.
type HistogramVec struct {
	f       *family
	buckets []float64
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, buckets []float64, labels ...string) *HistogramVec {
	f := newFamily(name, help, KindHistogram, labels)
	r.register(f)
	return &HistogramVec{f: f, buckets: buckets}
}

// With returns the histogram for the given label values, creating it
// on first use.
func (v *HistogramVec) With(values ...string) *Histogram {
	return v.f.childFor(values, func() child { return newHistogram(v.buckets) }).(*Histogram)
}

// ── family internals ───────────────────────────────────────────────

func newFamily(name, help string, kind Kind, labels []string) *family {
	return &family{
		name:   name,
		help:   help,
		kind:   kind,
		labels: append([]string(nil), labels...),
		kids:   make(map[string]child),
	}
}

// childFor returns (creating if needed) the child for a label-value
// tuple. The key joins escaped values, so values containing the
// separator cannot collide.
func (f *family) childFor(values []string, mk func() child) child {
	if len(values) != len(f.labels) {
		panic(fmt.Sprintf("metrics: %s wants %d label value(s), got %d",
			f.name, len(f.labels), len(values)))
	}
	key := labelString(f.labels, values)
	f.mu.Lock()
	defer f.mu.Unlock()
	c, ok := f.kids[key]
	if !ok {
		c = mk()
		f.kids[key] = c
		f.keys = append(f.keys, key)
	}
	return c
}

// labelString renders {k="v",...}; empty for no labels.
func labelString(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// mergeLabel appends one extra label pair to a pre-rendered label
// fragment — how the histogram `le` label joins the family's labels.
func mergeLabel(labelStr, name, value string) string {
	pair := name + `="` + escapeLabelValue(value) + `"`
	if labelStr == "" {
		return "{" + pair + "}"
	}
	return labelStr[:len(labelStr)-1] + "," + pair + "}"
}

func escapeLabelValue(s string) string {
	if !strings.ContainsAny(s, "\\\"\n") {
		return s
	}
	var b strings.Builder
	for _, c := range s {
		switch c {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(c)
		}
	}
	return b.String()
}

func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	return strings.ReplaceAll(s, "\n", `\n`)
}

// formatFloat renders a float the way Prometheus expects: shortest
// representation, integers without an exponent.
func formatFloat(v float64) string {
	switch {
	case math.IsInf(v, +1):
		return "+Inf"
	case math.IsInf(v, -1):
		return "-Inf"
	case math.IsNaN(v):
		return "NaN"
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// ── rendering ──────────────────────────────────────────────────────

// Render returns the registry in the Prometheus text exposition
// format, families in registration order, children in first-use
// order.
func (r *Registry) Render() string {
	r.mu.Lock()
	collects := append([]func(){}, r.collects...)
	names := append([]string{}, r.names...)
	fams := make([]*family, 0, len(names))
	for _, n := range names {
		fams = append(fams, r.families[n])
	}
	r.mu.Unlock()
	for _, fn := range collects {
		fn()
	}
	var b strings.Builder
	for _, f := range fams {
		f.mu.Lock()
		keys := append([]string{}, f.keys...)
		kids := make([]child, 0, len(keys))
		for _, k := range keys {
			kids = append(kids, f.kids[k])
		}
		f.mu.Unlock()
		if len(kids) == 0 {
			continue
		}
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteByte('\n')
		b.WriteString("# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(string(f.kind))
		b.WriteByte('\n')
		for i, c := range kids {
			c.write(&b, f.name, keys[i])
		}
	}
	return b.String()
}

// ServeHTTP renders the registry — mount it at GET /metrics.
func (r *Registry) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write([]byte(r.Render()))
}
