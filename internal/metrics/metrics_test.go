package metrics

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("vbs_test_seconds", "t", []float64{1, 2, 5})

	// A value equal to an upper bound lands in that bucket (le
	// semantics), one epsilon above lands in the next.
	h.Observe(1)               // le=1
	h.Observe(1.0000001)       // le=2
	h.Observe(2)               // le=2
	h.Observe(4.999)           // le=5
	h.Observe(5)               // le=5
	h.Observe(5.001)           // +Inf
	h.Observe(math.MaxFloat64) // +Inf

	snap := h.Snapshot()
	wantUpper := []float64{1, 2, 5, math.Inf(1)}
	wantCum := []uint64{1, 3, 5, 7}
	if len(snap.Buckets) != len(wantUpper) {
		t.Fatalf("got %d buckets, want %d", len(snap.Buckets), len(wantUpper))
	}
	for i, b := range snap.Buckets {
		if b.Upper != wantUpper[i] || b.Count != wantCum[i] {
			t.Errorf("bucket %d: got (%v, %d), want (%v, %d)",
				i, b.Upper, b.Count, wantUpper[i], wantCum[i])
		}
	}
	if snap.Count != 7 {
		t.Errorf("count = %d, want 7", snap.Count)
	}
}

func TestHistogramExplicitInfBucket(t *testing.T) {
	r := NewRegistry()
	// A +Inf bound passed explicitly must collapse into the implicit
	// +Inf bucket, not produce two.
	h := r.Histogram("vbs_test_seconds", "t", []float64{1, math.Inf(1)})
	h.Observe(0.5)
	h.Observe(3)
	snap := h.Snapshot()
	if len(snap.Buckets) != 2 {
		t.Fatalf("got %d buckets, want 2 (le=1, +Inf)", len(snap.Buckets))
	}
	if snap.Buckets[1].Count != 2 || !math.IsInf(snap.Buckets[1].Upper, +1) {
		t.Errorf("+Inf bucket = %+v, want count 2", snap.Buckets[1])
	}
}

func TestHistogramSum(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("vbs_test_seconds", "t", []float64{1})
	h.Observe(0.25)
	h.Observe(0.5)
	h.Observe(2)
	if got := h.Snapshot().Sum; math.Abs(got-2.75) > 1e-9 {
		t.Errorf("sum = %v, want 2.75", got)
	}
}

func TestHistogramConcurrentObserve(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("vbs_test_seconds", "t", []float64{0.5})
	const workers, per = 8, 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				if i%2 == 0 {
					h.Observe(0.25)
				} else {
					h.Observe(0.75)
				}
				if i%100 == 0 {
					_ = h.Snapshot() // concurrent reads must be safe too
				}
			}
		}(w)
	}
	wg.Wait()
	snap := h.Snapshot()
	if snap.Count != workers*per {
		t.Errorf("count = %d, want %d", snap.Count, workers*per)
	}
	if got := snap.Buckets[0].Count; got != workers*per/2 {
		t.Errorf("le=0.5 bucket = %d, want %d", got, workers*per/2)
	}
	if got := snap.Buckets[1].Count; got != workers*per {
		t.Errorf("+Inf bucket = %d, want %d", got, workers*per)
	}
	wantSum := float64(workers*per/2)*0.25 + float64(workers*per/2)*0.75
	if math.Abs(snap.Sum-wantSum) > 1e-6 {
		t.Errorf("sum = %v, want %v", snap.Sum, wantSum)
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("vbs_test_total", "t")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("vbs_test_total", "t")
}

func TestRenderFormat(t *testing.T) {
	r := NewRegistry()
	c := r.CounterVec("vbs_test_ops_total", "ops by kind", "op")
	c.With("load").Add(3)
	c.With("get").Add(1)
	g := r.Gauge("vbs_test_tasks", "live tasks")
	g.Set(7)
	h := r.HistogramVec("vbs_test_op_duration_seconds", "latency", []float64{0.1, 1}, "op")
	h.With("load").Observe(0.05)
	h.With("load").Observe(0.5)

	out := r.Render()
	for _, want := range []string{
		"# HELP vbs_test_ops_total ops by kind",
		"# TYPE vbs_test_ops_total counter",
		`vbs_test_ops_total{op="load"} 3`,
		`vbs_test_ops_total{op="get"} 1`,
		"# TYPE vbs_test_tasks gauge",
		"vbs_test_tasks 7",
		"# TYPE vbs_test_op_duration_seconds histogram",
		`vbs_test_op_duration_seconds_bucket{op="load",le="0.1"} 1`,
		`vbs_test_op_duration_seconds_bucket{op="load",le="1"} 2`,
		`vbs_test_op_duration_seconds_bucket{op="load",le="+Inf"} 2`,
		`vbs_test_op_duration_seconds_count{op="load"} 2`,
	} {
		if !strings.Contains(out, want+"\n") {
			t.Errorf("render missing %q\n--- got ---\n%s", want, out)
		}
	}
}

func TestOnCollectRefreshesGauges(t *testing.T) {
	r := NewRegistry()
	level := 1.0
	g := r.Gauge("vbs_test_level", "t")
	r.OnCollect(func() { g.Set(level) })
	if !strings.Contains(r.Render(), "vbs_test_level 1\n") {
		t.Fatal("collect hook did not run")
	}
	level = 42
	if !strings.Contains(r.Render(), "vbs_test_level 42\n") {
		t.Fatal("collect hook result not re-rendered")
	}
}

func TestLabelEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.GaugeVec("vbs_test_info", "t", "name")
	v.With(`a"b\c`).Set(1)
	out := r.Render()
	want := `vbs_test_info{name="a\"b\\c"} 1`
	if !strings.Contains(out, want+"\n") {
		t.Errorf("render missing %q in:\n%s", want, out)
	}
	// And the parser must invert the escaping.
	samples, err := Parse(strings.NewReader(out))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if _, ok := Find(samples, "vbs_test_info", map[string]string{"name": `a"b\c`}); !ok {
		t.Error("escaped label value did not round-trip")
	}
}

func TestVecArityPanics(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("vbs_test_total", "t", "a", "b")
	defer func() {
		if recover() == nil {
			t.Fatal("label arity mismatch did not panic")
		}
	}()
	v.With("only-one")
}
