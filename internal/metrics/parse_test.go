package metrics

import (
	"math"
	"strings"
	"testing"
)

func TestParseRoundTrip(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("vbs_test_total", "a counter")
	c.Add(5)
	h := r.HistogramVec("vbs_test_seconds", "a histogram", []float64{0.1, 1}, "op")
	h.With("load").Observe(0.05)
	h.With("load").Observe(0.5)
	h.With("load").Observe(3)

	samples, err := Parse(strings.NewReader(r.Render()))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if v, ok := Find(samples, "vbs_test_total", nil); !ok || v != 5 {
		t.Errorf("counter = %v/%v, want 5", v, ok)
	}
	bk := Buckets(samples, "vbs_test_seconds", map[string]string{"op": "load"})
	if len(bk) != 3 {
		t.Fatalf("got %d buckets, want 3", len(bk))
	}
	if bk[0].Count != 1 || bk[1].Count != 2 || bk[2].Count != 3 {
		t.Errorf("cumulative counts = %d,%d,%d, want 1,2,3", bk[0].Count, bk[1].Count, bk[2].Count)
	}
	if !math.IsInf(bk[2].Upper, +1) {
		t.Errorf("last bucket bound = %v, want +Inf", bk[2].Upper)
	}
	if v, ok := Find(samples, "vbs_test_seconds_count", map[string]string{"op": "load"}); !ok || v != 3 {
		t.Errorf("_count = %v/%v, want 3", v, ok)
	}
}

func TestParseRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"vbs_ok 1\nnot a metric line at all !!!",
		`vbs_bad{le="0.1" 3`,
		"vbs_bad{x=unquoted} 1",
		"vbs_bad notanumber",
	} {
		if _, err := Parse(strings.NewReader(bad)); err == nil {
			t.Errorf("Parse(%q) accepted garbage", bad)
		}
	}
}

func TestParseSkipsCommentsAndTimestamps(t *testing.T) {
	in := "# HELP x y\n# TYPE x counter\n\nx 3 1700000000000\n"
	samples, err := Parse(strings.NewReader(in))
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if len(samples) != 1 || samples[0].Value != 3 {
		t.Fatalf("samples = %+v, want one x=3", samples)
	}
}

func TestSubtractBuckets(t *testing.T) {
	before := []Bucket{{0.1, 2}, {1, 5}, {math.Inf(1), 6}}
	after := []Bucket{{0.1, 4}, {1, 10}, {math.Inf(1), 12}}
	d := SubtractBuckets(before, after)
	if d == nil || d[0].Count != 2 || d[1].Count != 5 || d[2].Count != 6 {
		t.Fatalf("delta = %+v", d)
	}
	// Mismatched layouts refuse rather than mislead.
	if SubtractBuckets(before[:2], after) != nil {
		t.Error("layout mismatch not rejected")
	}
	if SubtractBuckets(after, before) != nil {
		t.Error("negative delta not rejected")
	}
}

func TestQuantile(t *testing.T) {
	// 100 observations: 50 in (0, 0.1], 40 in (0.1, 1], 10 above 1.
	buckets := []Bucket{{0.1, 50}, {1, 90}, {math.Inf(1), 100}}
	if got := Quantile(0.5, buckets); math.Abs(got-0.1) > 1e-9 {
		t.Errorf("p50 = %v, want 0.1", got)
	}
	// p90 sits exactly at the le=1 bucket's cumulative count.
	if got := Quantile(0.9, buckets); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("p90 = %v, want 1.0", got)
	}
	// p99 lands in +Inf: clamp to the highest finite bound.
	if got := Quantile(0.99, buckets); got != 1 {
		t.Errorf("p99 = %v, want 1 (clamped)", got)
	}
	// Interpolation inside a bucket: p25 is halfway through the first.
	if got := Quantile(0.25, buckets); math.Abs(got-0.05) > 1e-9 {
		t.Errorf("p25 = %v, want 0.05", got)
	}
	if got := Quantile(0.5, nil); !math.IsNaN(got) {
		t.Errorf("empty quantile = %v, want NaN", got)
	}
}
