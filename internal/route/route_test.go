package route

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/bits"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/rrg"
)

func testDesign(seed int64, nLB, nIn, nOut, k int) *netlist.Design {
	rng := rand.New(rand.NewSource(seed))
	d := &netlist.Design{Name: "t", K: k}
	truth := bits.NewVec(1 << uint(k))
	truth.Set(1, true)
	var nets []netlist.NetID
	for i := 0; i < nIn; i++ {
		_, n := d.AddInputPad("pi")
		nets = append(nets, n)
	}
	for i := 0; i < nLB; i++ {
		nin := rng.Intn(k-1) + 1
		ins := make([]netlist.NetID, nin)
		for j := range ins {
			ins[j] = nets[rng.Intn(len(nets))]
		}
		_, n := d.AddLogicBlock("lb", ins, truth, false)
		nets = append(nets, n)
	}
	for i := 0; i < nOut; i++ {
		d.AddOutputPad("po", nets[len(nets)-1-i])
	}
	return d
}

func placed(t *testing.T, d *netlist.Design, size int, seed int64) *place.Placement {
	t.Helper()
	pl, err := place.Place(d, arch.GridForSize(size), place.Options{
		Seed: seed, InnerNum: 1, FastExit: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return pl
}

func TestRouteSmallDesign(t *testing.T) {
	d := testDesign(1, 25, 5, 5, 6)
	pl := placed(t, d, 6, 1)
	gr, err := rrg.Build(arch.Params{W: 8, K: 6}, pl.Grid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(d, pl, gr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(d); err != nil {
		t.Fatal(err)
	}
	if res.Iterations < 1 {
		t.Error("iterations should be >= 1")
	}
	if res.WirelengthNodes <= 0 {
		t.Error("wirelength should be positive")
	}
}

func TestRouteEveryNetReachesItsSinks(t *testing.T) {
	d := testDesign(2, 30, 6, 6, 6)
	pl := placed(t, d, 7, 2)
	gr, err := rrg.Build(arch.Params{W: 10, K: 6}, pl.Grid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(d, pl, gr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for ni, nr := range res.Routes {
		// Source pin must be physical pin 0 of the driver block.
		loc := pl.Loc[d.Nets[ni].Driver]
		if nr.Source != gr.NodePin(loc.X, loc.Y, 0) {
			t.Fatalf("net %d source mismatch", ni)
		}
		if len(nr.Sinks) != len(d.Nets[ni].Sinks) {
			t.Fatalf("net %d: %d sinks routed, want %d", ni, len(nr.Sinks), len(d.Nets[ni].Sinks))
		}
	}
}

func TestRouteExclusiveOccupancy(t *testing.T) {
	d := testDesign(3, 30, 5, 5, 6)
	pl := placed(t, d, 7, 3)
	gr, err := rrg.Build(arch.Params{W: 8, K: 6}, pl.Grid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(d, pl, gr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[rrg.NodeID]int)
	for ni := range res.Routes {
		for _, n := range res.Routes[ni].Nodes {
			if prev, ok := seen[n]; ok && prev != ni {
				t.Fatalf("conductor %s shared by nets %d and %d", gr.NodeName(n), prev, ni)
			}
			seen[n] = ni
		}
	}
}

func TestRouteDeterministic(t *testing.T) {
	d := testDesign(4, 20, 4, 4, 6)
	pl := placed(t, d, 6, 4)
	gr, err := rrg.Build(arch.Params{W: 8, K: 6}, pl.Grid)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Route(d, pl, gr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Route(d, pl, gr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for ni := range a.Routes {
		if len(a.Routes[ni].Nodes) != len(b.Routes[ni].Nodes) {
			t.Fatalf("net %d differs between identical runs", ni)
		}
		for i := range a.Routes[ni].Nodes {
			if a.Routes[ni].Nodes[i] != b.Routes[ni].Nodes[i] {
				t.Fatalf("net %d node %d differs", ni, i)
			}
		}
	}
}

func TestRouteNoOutputPinRouteThrough(t *testing.T) {
	d := testDesign(5, 30, 5, 5, 6)
	pl := placed(t, d, 7, 5)
	gr, err := rrg.Build(arch.Params{W: 8, K: 6}, pl.Grid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(d, pl, gr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for ni := range res.Routes {
		nr := &res.Routes[ni]
		for _, n := range nr.Nodes {
			_, _, kind, idx := gr.NodeInfo(n)
			if kind == rrg.NodePinWire && idx == 0 && n != nr.Source {
				t.Fatalf("net %d uses output pin %s as route-through", ni, gr.NodeName(n))
			}
		}
	}
}

func TestRouteUnroutableTinyWidth(t *testing.T) {
	// Dense design on W=1: the single track per channel cannot carry
	// the required crossings.
	d := testDesign(6, 30, 6, 6, 6)
	pl := placed(t, d, 6, 6)
	gr, err := rrg.Build(arch.Params{W: 1, K: 6}, pl.Grid)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Route(d, pl, gr, Options{MaxIters: 8}); err == nil {
		t.Error("expected failure at W=1")
	}
}

func TestFindMCW(t *testing.T) {
	d := testDesign(7, 35, 6, 6, 6)
	pl := placed(t, d, 7, 7)
	mcw, res, err := FindMCW(d, pl, 6, Options{MaxIters: 20})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("nil result at MCW")
	}
	if err := res.Validate(d); err != nil {
		t.Fatal(err)
	}
	if mcw < 2 || mcw > 32 {
		t.Errorf("MCW = %d, implausible for this design", mcw)
	}
	// One width below MCW must fail (minimality).
	below, err := TryWidth(d, pl, mcw-1, 6, Options{MaxIters: 20})
	if err != nil {
		t.Fatal(err)
	}
	if below != nil {
		t.Errorf("W=%d routed, so MCW=%d is not minimal", mcw-1, mcw)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	d := testDesign(8, 15, 4, 4, 6)
	pl := placed(t, d, 5, 8)
	gr, err := rrg.Build(arch.Params{W: 8, K: 6}, pl.Grid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(d, pl, gr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Find a net with at least one edge and corrupt it.
	for ni := range res.Routes {
		if len(res.Routes[ni].Edges) == 0 {
			continue
		}
		saved := res.Routes[ni].Edges[0].From
		res.Routes[ni].Edges[0].From = res.Routes[ni].Edges[len(res.Routes[ni].Edges)-1].To + 1
		if err := res.Validate(d); err == nil {
			t.Error("corrupted edge not detected")
		}
		res.Routes[ni].Edges[0].From = saved
		break
	}
	// Duplicate another net's node into this one.
	var a, b int = -1, -1
	for ni := range res.Routes {
		if len(res.Routes[ni].Nodes) > 1 {
			if a < 0 {
				a = ni
			} else {
				b = ni
				break
			}
		}
	}
	if a >= 0 && b >= 0 {
		stolen := res.Routes[a].Nodes[len(res.Routes[a].Nodes)-1]
		res.Routes[b].Nodes = append(res.Routes[b].Nodes, stolen)
		if err := res.Validate(d); err == nil {
			t.Error("conductor sharing not detected")
		}
	}
}

func TestZeroFanoutNet(t *testing.T) {
	d := &netlist.Design{Name: "z", K: 4}
	truth := bits.NewVec(16)
	_, n := d.AddInputPad("a")
	d.AddLogicBlock("dead", []netlist.NetID{n}, truth, false) // output unused
	d.AddOutputPad("po", n)
	pl := placed(t, d, 3, 9)
	gr, err := rrg.Build(arch.Params{W: 4, K: 4}, pl.Grid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(d, pl, gr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Validate(d); err != nil {
		t.Fatal(err)
	}
	// The dead block's net should be just its source pin.
	for ni := range res.Routes {
		if len(d.Nets[ni].Sinks) == 0 && len(res.Routes[ni].Edges) != 0 {
			t.Error("zero-fanout net has routing edges")
		}
	}
}

func TestHeapOrdering(t *testing.T) {
	var h nodeHeap
	h.push(heapItem{prio: 3, node: 1})
	h.push(heapItem{prio: 1, node: 9})
	h.push(heapItem{prio: 1, node: 2})
	h.push(heapItem{prio: 2, node: 5})
	order := []rrg.NodeID{2, 9, 5, 1} // prio asc, ties by node id
	for i, want := range order {
		got := h.pop()
		if got.node != want {
			t.Fatalf("pop %d = node %d, want %d", i, got.node, want)
		}
	}
	if h.len() != 0 {
		t.Error("heap not empty")
	}
}

func BenchmarkRouteSmall(b *testing.B) {
	d := testDesign(10, 40, 6, 6, 6)
	pl, err := place.Place(d, arch.GridForSize(7), place.Options{Seed: 1, InnerNum: 1, FastExit: true})
	if err != nil {
		b.Fatal(err)
	}
	gr, err := rrg.Build(arch.Params{W: 10, K: 6}, pl.Grid)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Route(d, pl, gr, Options{}); err != nil {
			b.Fatal(err)
		}
	}
}
