package route

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/rrg"
)

// TestRouteWirelengthLowerBound: a routed connection can never use
// fewer conductors than the Manhattan distance between its endpoints'
// macros — the mesh has only single-length wires (Section II-A), so
// each hop crosses at most one macro boundary.
func TestRouteWirelengthLowerBound(t *testing.T) {
	d := testDesign(20, 30, 5, 5, 6)
	pl := placed(t, d, 7, 20)
	gr, err := rrg.Build(arch.Params{W: 10, K: 6}, pl.Grid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(d, pl, gr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for ni := range res.Routes {
		nr := &res.Routes[ni]
		if len(nr.Sinks) == 0 {
			continue
		}
		sx, sy, _, _ := gr.NodeInfo(nr.Source)
		maxDist := 0
		for _, s := range nr.Sinks {
			x, y, _, _ := gr.NodeInfo(s)
			if d := absInt(x-sx) + absInt(y-sy); d > maxDist {
				maxDist = d
			}
		}
		// Tree nodes >= farthest sink distance (each node advances at
		// most one macro).
		if len(nr.Nodes) < maxDist {
			t.Fatalf("net %d: %d nodes for Manhattan distance %d", ni, len(nr.Nodes), maxDist)
		}
	}
}

// TestRouteTreeAcyclic: the edge list of every net forms a tree:
// exactly len(Nodes)-1 edges, each introducing one new node.
func TestRouteTreeAcyclic(t *testing.T) {
	d := testDesign(21, 25, 5, 5, 6)
	pl := placed(t, d, 6, 21)
	gr, err := rrg.Build(arch.Params{W: 9, K: 6}, pl.Grid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(d, pl, gr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for ni := range res.Routes {
		nr := &res.Routes[ni]
		if len(nr.Edges) != len(nr.Nodes)-1 {
			t.Fatalf("net %d: %d edges for %d nodes (not a tree)", ni, len(nr.Edges), len(nr.Nodes))
		}
		seen := map[rrg.NodeID]bool{nr.Source: true}
		for _, e := range nr.Edges {
			if seen[e.To] {
				t.Fatalf("net %d: node %s added twice (cycle)", ni, gr.NodeName(e.To))
			}
			seen[e.To] = true
		}
	}
}

// TestEveryTreeEdgeIsARealSwitch: each routed edge must reference a
// switch whose two conductors resolve to the edge's endpoints —
// otherwise bitstream generation would drive the wrong transistors.
func TestEveryTreeEdgeIsARealSwitch(t *testing.T) {
	d := testDesign(22, 20, 4, 4, 6)
	pl := placed(t, d, 6, 22)
	p := arch.Params{W: 8, K: 6}
	gr, err := rrg.Build(p, pl.Grid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Route(d, pl, gr, Options{})
	if err != nil {
		t.Fatal(err)
	}
	sws := p.Switches()
	for ni := range res.Routes {
		for _, e := range res.Routes[ni].Edges {
			x, y := pl.Grid.Coords(int(e.Macro))
			sw := sws[e.Switch]
			a := gr.GlobalNode(x, y, sw.A)
			b := gr.GlobalNode(x, y, sw.B)
			if !(a == e.From && b == e.To) && !(a == e.To && b == e.From) {
				t.Fatalf("net %d: edge %s->%s does not match switch %d of macro (%d,%d)",
					ni, gr.NodeName(e.From), gr.NodeName(e.To), e.Switch, x, y)
			}
		}
	}
}
