package route

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/rrg"
)

// TryWidth attempts to route the placed design at channel width w and
// reports whether it succeeded. The returned Result is nil on failure.
func TryWidth(d *netlist.Design, pl *place.Placement, w, k int, opt Options) (*Result, error) {
	p := arch.Params{W: w, K: k}
	gr, err := rrg.Build(p, pl.Grid)
	if err != nil {
		return nil, err
	}
	res, err := Route(d, pl, gr, opt)
	if err == nil {
		return res, nil
	}
	if err == ErrUnroutable {
		return nil, nil
	}
	// Structural no-path failures at very small widths are width
	// limitations too, not hard errors.
	if w <= 2 {
		return nil, nil
	}
	return nil, err
}

// FindMCW performs the minimum-channel-width search of the paper's
// Table II: double the width until routing succeeds, then binary-search
// downward. It returns the MCW and the routing at that width.
func FindMCW(d *netlist.Design, pl *place.Placement, k int, opt Options) (int, *Result, error) {
	const maxW = 128
	// Phase 1: find any routable width.
	w := 4
	var best *Result
	bestW := 0
	for ; w <= maxW; w *= 2 {
		res, err := TryWidth(d, pl, w, k, opt)
		if err != nil {
			return 0, nil, err
		}
		if res != nil {
			best, bestW = res, w
			break
		}
	}
	if best == nil {
		return 0, nil, fmt.Errorf("route: unroutable even at W=%d", maxW)
	}
	// Phase 2: binary search in (lastFail, bestW].
	lo, hi := bestW/2, bestW // lo failed (or untested lower bound), hi succeeded
	for hi-lo > 1 {
		mid := (lo + hi) / 2
		res, err := TryWidth(d, pl, mid, k, opt)
		if err != nil {
			return 0, nil, err
		}
		if res != nil {
			best, bestW = res, mid
			hi = mid
		} else {
			lo = mid
		}
	}
	return bestW, best, nil
}

// Validate checks that a routing result is structurally sound and
// legal: every net's tree is connected, starts at the net's source,
// reaches every sink, and no conductor is used by two nets.
func (res *Result) Validate(d *netlist.Design) error {
	owner := make(map[rrg.NodeID]netlist.NetID)
	for ni := range res.Routes {
		nr := &res.Routes[ni]
		if nr.Net != netlist.NetID(ni) {
			return fmt.Errorf("route: result order corrupt at net %d", ni)
		}
		inTree := make(map[rrg.NodeID]bool, len(nr.Nodes))
		if len(nr.Nodes) == 0 || nr.Nodes[0] != nr.Source {
			return fmt.Errorf("route: net %q tree does not start at source", d.Nets[ni].Name)
		}
		inTree[nr.Source] = true
		// Edges must connect a known node to a new one, in order.
		for _, e := range nr.Edges {
			if !inTree[e.From] {
				return fmt.Errorf("route: net %q edge from unconnected node %s",
					d.Nets[ni].Name, res.Graph.NodeName(e.From))
			}
			inTree[e.To] = true
		}
		if len(inTree) != len(nr.Nodes) {
			return fmt.Errorf("route: net %q node list and edges disagree (%d vs %d)",
				d.Nets[ni].Name, len(inTree), len(nr.Nodes))
		}
		for _, n := range nr.Nodes {
			if !inTree[n] {
				return fmt.Errorf("route: net %q node %s not reached by edges",
					d.Nets[ni].Name, res.Graph.NodeName(n))
			}
			if prev, taken := owner[n]; taken && prev != netlist.NetID(ni) {
				return fmt.Errorf("route: conductor %s used by nets %q and %q",
					res.Graph.NodeName(n), d.Nets[prev].Name, d.Nets[ni].Name)
			}
			owner[n] = netlist.NetID(ni)
		}
		for _, s := range nr.Sinks {
			if !inTree[s] {
				return fmt.Errorf("route: net %q sink %s unreached",
					d.Nets[ni].Name, res.Graph.NodeName(s))
			}
		}
		if len(nr.Sinks) != len(d.Nets[ni].Sinks) {
			return fmt.Errorf("route: net %q reached %d of %d sinks",
				d.Nets[ni].Name, len(nr.Sinks), len(d.Nets[ni].Sinks))
		}
	}
	return nil
}
