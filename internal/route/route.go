// Package route implements PathFinder negotiated-congestion routing
// (McMurchie & Ebeling) over the fabric's routing-resource graph, the
// routing stage VPR performs in the paper's CAD flow. Nets are routed
// as trees (multi-sink expansion from the growing tree), resources are
// shared-then-negotiated through present and historical congestion
// costs, and a binary search over channel width recovers the minimum
// channel width (MCW) reported in Table II.
package route

import (
	"fmt"
	"sort"

	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/rrg"
)

// Options tunes the router.
type Options struct {
	// MaxIters bounds PathFinder iterations (default 40).
	MaxIters int
	// FirstPresFac is the initial present-congestion factor (default 0.5).
	FirstPresFac float64
	// PresFacMult grows the present factor each iteration (default 1.8).
	PresFacMult float64
	// HistFac accumulates historical congestion (default 1.0).
	HistFac float64
	// AStarFac scales the distance heuristic; 0 selects 1.0 (admissible).
	// Larger values route faster but less optimally.
	AStarFac float64
	// NoEarlyAbort disables the stagnation predictor that declares a
	// width unroutable when overuse stops shrinking, which mainly
	// accelerates the failing probes of the MCW binary search.
	NoEarlyAbort bool
}

func (o Options) withDefaults() Options {
	if o.MaxIters == 0 {
		o.MaxIters = 40
	}
	if o.FirstPresFac == 0 {
		o.FirstPresFac = 0.5
	}
	if o.PresFacMult == 0 {
		o.PresFacMult = 1.8
	}
	if o.HistFac == 0 {
		o.HistFac = 1.0
	}
	if o.AStarFac == 0 {
		o.AStarFac = 1.0
	}
	return o
}

// TreeEdge is one switch turned on by a routed net: the parent->child
// step of the net's routing tree.
type TreeEdge struct {
	From, To rrg.NodeID
	// Macro is the grid index of the macro owning the switch.
	Macro int32
	// Switch indexes that macro's canonical switch enumeration.
	Switch int32
}

// NetRoute is the routed tree of one net.
type NetRoute struct {
	Net    netlist.NetID
	Source rrg.NodeID
	// Nodes lists every conductor of the tree (source first).
	Nodes []rrg.NodeID
	// Edges lists the switches of the tree; Edges[i].To is reached
	// from the already-connected Edges[i].From.
	Edges []TreeEdge
	// Sinks lists the sink pin nodes in routing order.
	Sinks []rrg.NodeID
}

// Result is a complete legal routing of a design.
type Result struct {
	Graph      *rrg.Graph
	Routes     []NetRoute // indexed by NetID
	Iterations int
	// WirelengthNodes is the total number of conductor nodes used.
	WirelengthNodes int
}

// ErrUnroutable reports PathFinder failing to converge.
var ErrUnroutable = fmt.Errorf("route: congestion did not resolve")

// pinNode returns the global pin node of a block pin. Block input pin
// i sits on physical pin i+1; block outputs (and input-pad outputs)
// drive physical pin 0.
func pinNode(gr *rrg.Graph, pl *place.Placement, b netlist.BlockID, physPin int) rrg.NodeID {
	loc := pl.Loc[b]
	return gr.NodePin(loc.X, loc.Y, physPin)
}

type conn struct {
	sink rrg.NodeID
	dist int // Manhattan distance from source, for ordering
}

type router struct {
	gr  *rrg.Graph
	d   *netlist.Design
	opt Options

	occ  []int32
	hist []float32

	// Search state, epoch-stamped to avoid clearing between searches.
	epoch   int32
	visEp   []int32
	gCost   []float32
	parent  []rrg.NodeID
	parEdge []rrg.Edge
	heap    nodeHeap

	presFac float64
}

// Route routes every net of the placed design. The result is legal
// (every conductor used by at most one net) or ErrUnroutable.
func Route(d *netlist.Design, pl *place.Placement, gr *rrg.Graph, opt Options) (*Result, error) {
	if err := pl.Validate(d); err != nil {
		return nil, fmt.Errorf("route: %w", err)
	}
	opt = opt.withDefaults()
	r := &router{
		gr: gr, d: d, opt: opt,
		occ:     make([]int32, gr.NumNodes()),
		hist:    make([]float32, gr.NumNodes()),
		visEp:   make([]int32, gr.NumNodes()),
		gCost:   make([]float32, gr.NumNodes()),
		parent:  make([]rrg.NodeID, gr.NumNodes()),
		parEdge: make([]rrg.Edge, gr.NumNodes()),
	}

	// Precompute each net's source and ordered sinks.
	sources := make([]rrg.NodeID, len(d.Nets))
	sinks := make([][]conn, len(d.Nets))
	for ni := range d.Nets {
		net := &d.Nets[ni]
		src := pinNode(gr, pl, net.Driver, 0)
		sources[ni] = src
		sx, sy, _, _ := gr.NodeInfo(src)
		cs := make([]conn, 0, len(net.Sinks))
		for _, s := range net.Sinks {
			phys := s.Input + 1
			if d.Blocks[s.Block].Kind == netlist.OutputPad {
				phys = 1 // pads sink on physical pin 1
			}
			sn := pinNode(gr, pl, s.Block, phys)
			x, y, _, _ := gr.NodeInfo(sn)
			cs = append(cs, conn{sink: sn, dist: absInt(x-sx) + absInt(y-sy)})
		}
		// Route near sinks first: the tree grows outward, which keeps
		// later searches short.
		sort.Slice(cs, func(a, b int) bool {
			if cs[a].dist != cs[b].dist {
				return cs[a].dist < cs[b].dist
			}
			return cs[a].sink < cs[b].sink
		})
		sinks[ni] = cs
	}

	routes := make([]NetRoute, len(d.Nets))
	r.presFac = opt.FirstPresFac
	iterations := 0
	bestOveruse := -1
	stagnant := 0
	for iter := 0; iter < opt.MaxIters; iter++ {
		iterations = iter + 1
		for ni := range d.Nets {
			if iter > 0 {
				r.ripUp(&routes[ni])
			}
			nr, err := r.routeNet(netlist.NetID(ni), sources[ni], sinks[ni])
			if err != nil {
				return nil, fmt.Errorf("route: net %q: %w", d.Nets[ni].Name, err)
			}
			routes[ni] = nr
		}
		overuse := r.totalOveruse()
		if overuse == 0 {
			res := &Result{Graph: gr, Routes: routes, Iterations: iterations}
			for i := range routes {
				res.WirelengthNodes += len(routes[i].Nodes)
			}
			return res, nil
		}
		// Stagnation predictor: when congestion stops shrinking the
		// width is hopeless; give up early rather than burn MaxIters.
		if bestOveruse < 0 || overuse < bestOveruse-bestOveruse/50 {
			bestOveruse = min2(overuse, bestOveruse)
			if bestOveruse < 0 {
				bestOveruse = overuse
			}
			stagnant = 0
		} else {
			stagnant++
			if !opt.NoEarlyAbort && iter >= 5 && stagnant >= 4 {
				return nil, ErrUnroutable
			}
		}
		// Accumulate history on overused nodes, raise pressure.
		for n, o := range r.occ {
			if o > 1 {
				r.hist[n] += float32(r.opt.HistFac) * float32(o-1)
			}
		}
		r.presFac *= opt.PresFacMult
		if r.presFac > 1e7 {
			r.presFac = 1e7
		}
	}
	return nil, ErrUnroutable
}

func min2(a, b int) int {
	if b >= 0 && b < a {
		return b
	}
	return a
}

func (r *router) ripUp(nr *NetRoute) {
	for _, n := range nr.Nodes {
		r.occ[n]--
	}
}

func (r *router) totalOveruse() int {
	total := 0
	for _, o := range r.occ {
		if o > 1 {
			total += int(o - 1)
		}
	}
	return total
}

// nodeCost is the PathFinder congestion cost of adding node n.
func (r *router) nodeCost(n rrg.NodeID) float32 {
	over := float64(r.occ[n]) // capacity 1: occupancy equals current use
	pres := 1.0
	if over >= 1 {
		pres = 1.0 + r.presFac*over
	}
	return float32((1.0 + float64(r.hist[n])) * pres)
}

// routeNet builds the routing tree for one net, expanding sink by sink
// from the growing tree.
func (r *router) routeNet(net netlist.NetID, src rrg.NodeID, conns []conn) (NetRoute, error) {
	nr := NetRoute{Net: net, Source: src, Nodes: []rrg.NodeID{src}}
	r.occ[src]++
	if len(conns) == 0 {
		return nr, nil
	}
	inTree := make(map[rrg.NodeID]bool, 4*len(conns))
	inTree[src] = true
	for _, c := range conns {
		if inTree[c.sink] {
			nr.Sinks = append(nr.Sinks, c.sink)
			continue // another pin of the same block already reached
		}
		if err := r.expand(&nr, inTree, c.sink); err != nil {
			return nr, err
		}
		nr.Sinks = append(nr.Sinks, c.sink)
	}
	return nr, nil
}

// expand runs A* from the current tree to one sink and grafts the path.
func (r *router) expand(nr *NetRoute, inTree map[rrg.NodeID]bool, sink rrg.NodeID) error {
	r.epoch++
	r.heap.reset()
	tx, ty, _, _ := r.gr.NodeInfo(sink)
	h := func(n rrg.NodeID) float32 {
		x, y, _, _ := r.gr.NodeInfo(n)
		return float32(r.opt.AStarFac) * float32(absInt(x-tx)+absInt(y-ty))
	}
	for _, n := range nr.Nodes {
		r.visEp[n] = r.epoch
		r.gCost[n] = 0
		r.parent[n] = rrg.NoNode
		r.heap.push(heapItem{prio: h(n), node: n})
	}
	const maxExpansions = 4 << 20
	expansions := 0
	for r.heap.len() > 0 {
		it := r.heap.pop()
		n := it.node
		if n == sink {
			r.graft(nr, inTree, sink)
			return nil
		}
		// Stale heap entries: skip if a better cost was recorded.
		if it.prio > r.gCost[n]+h(n)+1e-4 {
			continue
		}
		expansions++
		if expansions > maxExpansions {
			break
		}
		for _, e := range r.gr.Adj(n) {
			// Pin 0 wires are driven by their logic block; they are
			// never legal route-throughs, only sources or sinks.
			if e.To != sink && !inTree[e.To] && r.isOutputPin(e.To) {
				continue
			}
			g := r.gCost[n] + r.nodeCost(e.To)
			if r.visEp[e.To] == r.epoch && g >= r.gCost[e.To] {
				continue
			}
			r.visEp[e.To] = r.epoch
			r.gCost[e.To] = g
			r.parent[e.To] = n
			r.parEdge[e.To] = e
			r.heap.push(heapItem{prio: g + h(e.To), node: e.To})
		}
	}
	return fmt.Errorf("no path to sink %s", r.gr.NodeName(sink))
}

func (r *router) isOutputPin(n rrg.NodeID) bool {
	_, _, kind, idx := r.gr.NodeInfo(n)
	return kind == rrg.NodePinWire && idx == 0
}

// graft walks parent pointers from sink back to the tree and records
// the new nodes and switches.
func (r *router) graft(nr *NetRoute, inTree map[rrg.NodeID]bool, sink rrg.NodeID) {
	var path []rrg.NodeID
	n := sink
	for n != rrg.NoNode && !inTree[n] {
		path = append(path, n)
		n = r.parent[n]
	}
	// path is sink..first-new-node; reverse so edges go tree -> sink.
	for i := len(path) - 1; i >= 0; i-- {
		node := path[i]
		e := r.parEdge[node]
		nr.Edges = append(nr.Edges, TreeEdge{
			From: r.parent[node], To: node, Macro: e.Macro, Switch: e.Switch,
		})
		nr.Nodes = append(nr.Nodes, node)
		inTree[node] = true
		r.occ[node]++
	}
}

func absInt(v int) int {
	if v < 0 {
		return -v
	}
	return v
}

// heapItem orders the A* frontier by priority, then node id for
// determinism.
type heapItem struct {
	prio float32
	node rrg.NodeID
}

type nodeHeap struct{ a []heapItem }

func (h *nodeHeap) reset()   { h.a = h.a[:0] }
func (h *nodeHeap) len() int { return len(h.a) }

func (h *nodeHeap) less(i, j int) bool {
	if h.a[i].prio != h.a[j].prio {
		return h.a[i].prio < h.a[j].prio
	}
	return h.a[i].node < h.a[j].node
}

func (h *nodeHeap) push(it heapItem) {
	h.a = append(h.a, it)
	i := len(h.a) - 1
	for i > 0 {
		p := (i - 1) / 2
		if h.less(p, i) {
			break
		}
		h.a[p], h.a[i] = h.a[i], h.a[p]
		i = p
	}
}

func (h *nodeHeap) pop() heapItem {
	top := h.a[0]
	last := len(h.a) - 1
	h.a[0] = h.a[last]
	h.a = h.a[:last]
	i := 0
	for {
		l, rr := 2*i+1, 2*i+2
		m := i
		if l < len(h.a) && h.less(l, m) {
			m = l
		}
		if rr < len(h.a) && h.less(rr, m) {
			m = rr
		}
		if m == i {
			break
		}
		h.a[i], h.a[m] = h.a[m], h.a[i]
		i = m
	}
	return top
}
