package devirt

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
)

// TestClusterAgreesWithMacroOnStraightRoutes: a straight track-to-track
// route through a 2x2 cluster must produce, in each traversed member,
// the same switch the single-macro router would choose — the cluster
// abstraction changes the coding granularity, not the physics.
func TestClusterAgreesWithMacroOnStraightRoutes(t *testing.T) {
	p := arch.PaperExample()
	r1 := Region{P: p, Nominal: 1, CW: 1, CH: 1}
	r2 := Region{P: p, Nominal: 2, CW: 2, CH: 2}
	for tr := 0; tr < p.W; tr++ {
		// Macro route W->E on track tr.
		m, err := NewRouter(r1, false, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.RouteConnection(r1.CodeWest(0, tr), r1.CodeEast(0, tr)); err != nil {
			t.Fatal(err)
		}
		macroBits := m.Configs()[0].Vec()

		// Cluster route W->E on row 0, same track.
		c, err := NewRouter(r2, false, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.RouteConnection(r2.CodeWest(0, tr), r2.CodeEast(0, tr)); err != nil {
			t.Fatal(err)
		}
		for member := 0; member < 2; member++ { // members (0,0) and (1,0)
			if !c.Configs()[member].Vec().Equal(macroBits) {
				t.Fatalf("track %d member %d: cluster route differs from macro route", tr, member)
			}
		}
	}
}

// TestRandomPairSequencesNeverCorrupt: random (possibly unroutable)
// connection sequences must never panic and must leave the router in a
// consistent state: every on switch joins two conductors owned by the
// same net.
func TestRandomPairSequencesNeverCorrupt(t *testing.T) {
	p := arch.Params{W: 6, K: 4}
	r := Region{P: p, Nominal: 2, CW: 2, CH: 2}
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rt, err := NewRouter(r, rng.Intn(2) == 0, rng.Intn(2) == 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 25; i++ {
			in := IOCode(rng.Intn(r.NumIOCodes()-1) + 1)
			out := IOCode(rng.Intn(r.NumIOCodes()-1) + 1)
			_ = rt.RouteConnection(in, out) // failures are fine
		}
		// Consistency: each member's on switches connect conductors of
		// one net.
		for mi, cfg := range rt.Configs() {
			j, i := mi/r.CW, mi%r.CW
			for _, si := range cfg.OnSwitches() {
				sw := p.Switches()[si]
				a := r.resolveLocal(i, j, sw.A)
				b := r.resolveLocal(i, j, sw.B)
				oa, ob := rt.owner[a], rt.owner[b]
				if oa < 0 || ob < 0 || oa != ob {
					t.Fatalf("seed %d member %d: switch %d joins owners %d and %d",
						seed, mi, si, oa, ob)
				}
			}
		}
	}
}

// TestReserveSteersAroundEndpoints: with an alternative available, the
// router must avoid a reserved conductor; the reserved conductor must
// then still be claimable by its own connection.
func TestReserveSteersAroundEndpoints(t *testing.T) {
	p := arch.PaperExample()
	r := Region{P: p, Nominal: 1, CW: 1, CH: 1}
	rt, err := NewRouter(r, false, false)
	if err != nil {
		t.Fatal(err)
	}
	// Reserve East track 2 (= HW(2)), then route West 1 -> East 3
	// (a track change that could pass through any HW via a pin wire).
	if err := rt.Reserve(r.CodeEast(0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := rt.RouteConnection(r.CodeWest(0, 1), r.CodeEast(0, 3)); err != nil {
		t.Fatal(err)
	}
	if o, _ := rt.Owner(r.CodeEast(0, 2)); o != -1 {
		t.Fatal("router consumed the reserved conductor despite alternatives")
	}
	// The reserved endpoint still routes for its own connection.
	if err := rt.RouteConnection(r.CodeWest(0, 2), r.CodeEast(0, 2)); err != nil {
		t.Fatalf("reserved endpoint unusable by its own connection: %v", err)
	}
}
