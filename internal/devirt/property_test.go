package devirt

import (
	"container/heap"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/arch"
)

// TestClusterAgreesWithMacroOnStraightRoutes: a straight track-to-track
// route through a 2x2 cluster must produce, in each traversed member,
// the same switch the single-macro router would choose — the cluster
// abstraction changes the coding granularity, not the physics.
func TestClusterAgreesWithMacroOnStraightRoutes(t *testing.T) {
	p := arch.PaperExample()
	r1 := Region{P: p, Nominal: 1, CW: 1, CH: 1}
	r2 := Region{P: p, Nominal: 2, CW: 2, CH: 2}
	for tr := 0; tr < p.W; tr++ {
		// Macro route W->E on track tr.
		m, err := NewRouter(r1, false, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := m.RouteConnection(r1.CodeWest(0, tr), r1.CodeEast(0, tr)); err != nil {
			t.Fatal(err)
		}
		macroBits := m.Configs()[0].Vec()

		// Cluster route W->E on row 0, same track.
		c, err := NewRouter(r2, false, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := c.RouteConnection(r2.CodeWest(0, tr), r2.CodeEast(0, tr)); err != nil {
			t.Fatal(err)
		}
		for member := 0; member < 2; member++ { // members (0,0) and (1,0)
			if !c.Configs()[member].Vec().Equal(macroBits) {
				t.Fatalf("track %d member %d: cluster route differs from macro route", tr, member)
			}
		}
	}
}

// TestRandomPairSequencesNeverCorrupt: random (possibly unroutable)
// connection sequences must never panic and must leave the router in a
// consistent state: every on switch joins two conductors owned by the
// same net.
func TestRandomPairSequencesNeverCorrupt(t *testing.T) {
	p := arch.Params{W: 6, K: 4}
	r := Region{P: p, Nominal: 2, CW: 2, CH: 2}
	for seed := int64(0); seed < 30; seed++ {
		rng := rand.New(rand.NewSource(seed))
		rt, err := NewRouter(r, rng.Intn(2) == 0, rng.Intn(2) == 0)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < 25; i++ {
			in := IOCode(rng.Intn(r.NumIOCodes()-1) + 1)
			out := IOCode(rng.Intn(r.NumIOCodes()-1) + 1)
			_ = rt.RouteConnection(in, out) // failures are fine
		}
		// Consistency: each member's on switches connect conductors of
		// one net.
		for mi, cfg := range rt.Configs() {
			j, i := mi/r.CW, mi%r.CW
			for _, si := range cfg.OnSwitches() {
				sw := p.Switches()[si]
				a := r.resolveLocal(i, j, sw.A)
				b := r.resolveLocal(i, j, sw.B)
				oa, ob := rt.owner[a], rt.owner[b]
				if oa < 0 || ob < 0 || oa != ob {
					t.Fatalf("seed %d member %d: switch %d joins owners %d and %d",
						seed, mi, si, oa, ob)
				}
			}
		}
	}
}

// TestReserveSteersAroundEndpoints: with an alternative available, the
// router must avoid a reserved conductor; the reserved conductor must
// then still be claimable by its own connection.
func TestReserveSteersAroundEndpoints(t *testing.T) {
	p := arch.PaperExample()
	r := Region{P: p, Nominal: 1, CW: 1, CH: 1}
	rt, err := NewRouter(r, false, false)
	if err != nil {
		t.Fatal(err)
	}
	// Reserve East track 2 (= HW(2)), then route West 1 -> East 3
	// (a track change that could pass through any HW via a pin wire).
	if err := rt.Reserve(r.CodeEast(0, 2)); err != nil {
		t.Fatal(err)
	}
	if err := rt.RouteConnection(r.CodeWest(0, 1), r.CodeEast(0, 3)); err != nil {
		t.Fatal(err)
	}
	if o, _ := rt.Owner(r.CodeEast(0, 2)); o != -1 {
		t.Fatal("router consumed the reserved conductor despite alternatives")
	}
	// The reserved endpoint still routes for its own connection.
	if err := rt.RouteConnection(r.CodeWest(0, 2), r.CodeEast(0, 2)); err != nil {
		t.Fatalf("reserved endpoint unusable by its own connection: %v", err)
	}
}

// --- Reference decoder -------------------------------------------------
//
// refRouter reconstructs the pre-optimization router: freshly allocated
// state, container/heap Dijkstra with (dist, cond) ordering, per-pop
// class-switch costs, full owner scans for seeds — the implementation
// the CSR/bucket-queue/pooled router replaced. The property tests below
// assert the optimized router is bit-identical to it on every input.

type refCondDist struct {
	dist int32
	cond int32
}

type refHeap struct{ a []refCondDist }

func (h *refHeap) Len() int { return len(h.a) }
func (h *refHeap) Less(i, j int) bool {
	if h.a[i].dist != h.a[j].dist {
		return h.a[i].dist < h.a[j].dist
	}
	return h.a[i].cond < h.a[j].cond
}
func (h *refHeap) Swap(i, j int)      { h.a[i], h.a[j] = h.a[j], h.a[i] }
func (h *refHeap) Push(x interface{}) { h.a = append(h.a, x.(refCondDist)) }
func (h *refHeap) Pop() interface{} {
	last := len(h.a) - 1
	v := h.a[last]
	h.a = h.a[:last]
	return v
}

type refRouter struct {
	g                *regionGraph
	closedW, closedS bool
	owner            []int32
	reserved         []bool
	nets             int32
	configs          []*arch.MacroConfig
}

func newRefRouter(t *testing.T, r Region, closedW, closedS bool) *refRouter {
	t.Helper()
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	n := r.NumConds()
	rt := &refRouter{g: graphFor(r), closedW: closedW, closedS: closedS,
		owner: make([]int32, n), reserved: make([]bool, n),
		configs: make([]*arch.MacroConfig, r.Members())}
	for i := range rt.owner {
		rt.owner[i] = -1
	}
	for i := range rt.configs {
		rt.configs[i] = arch.NewMacroConfig(r.P)
	}
	return rt
}

func (rt *refRouter) usable(c int) bool {
	r := rt.g.r
	pm := r.perMember()
	if c < r.Members()*pm {
		return true
	}
	rest := c - r.Members()*pm
	if rest < r.CH*r.P.W {
		return !rt.closedW
	}
	return !rt.closedS
}

func (rt *refRouter) condCost(c int) int32 {
	var base int32
	switch rt.g.class[c] {
	case classBoundaryWire:
		base = costBoundary
	case classInputPin, classOutputPin:
		base = costInputPin
	default:
		base = costInternal
	}
	if rt.reserved[c] {
		base += costReserved
	}
	return base
}

func (rt *refRouter) reserve(code IOCode) error {
	c, err := rt.g.r.CondForCode(code)
	if err != nil {
		return err
	}
	rt.reserved[c] = true
	return nil
}

func (rt *refRouter) routeConnection(in, out IOCode) error {
	r := rt.g.r
	a, err := r.CondForCode(in)
	if err != nil {
		return err
	}
	b, err := r.CondForCode(out)
	if err != nil {
		return err
	}
	if !rt.usable(a) || !rt.usable(b) {
		return errors.New("endpoint on closed fabric edge")
	}
	var net int32
	switch {
	case rt.owner[a] >= 0:
		net = rt.owner[a]
	default:
		net = rt.nets
		rt.nets++
		rt.owner[a] = net
	}
	switch {
	case rt.owner[b] == net:
		return nil
	case rt.owner[b] >= 0:
		return errors.New("endpoints belong to different nets")
	}
	return rt.route(net, b)
}

func (rt *refRouter) route(net int32, target int) error {
	n := len(rt.owner)
	seen := make([]bool, n)
	dist := make([]int32, n)
	par := make([]int32, n)
	parEdg := make([]edge, n)
	var pq refHeap
	for c, o := range rt.owner {
		if o != net {
			continue
		}
		seen[c] = true
		dist[c] = 0
		par[c] = -1
		heap.Push(&pq, refCondDist{0, int32(c)})
	}
	for pq.Len() > 0 {
		cd := heap.Pop(&pq).(refCondDist)
		c := int(cd.cond)
		if c == target {
			// Commit.
			for c := int32(target); c != -1 && rt.owner[c] != net; c = par[c] {
				rt.owner[c] = net
				e := parEdg[c]
				vec := rt.configs[e.member].Vec()
				for b := 0; b < int(e.nbits); b++ {
					vec.Set(int(e.first)+b, true)
				}
			}
			return nil
		}
		if cd.dist > dist[c] {
			continue
		}
		for k, end := rt.g.adjOff[c], rt.g.adjOff[c+1]; k < end; k++ {
			e := rt.g.edges[k]
			to := int(e.to)
			if to != target {
				if rt.owner[to] != -1 {
					continue
				}
				if rt.g.class[to] == classOutputPin {
					continue
				}
				if !rt.usable(to) {
					continue
				}
			}
			d := dist[c] + rt.condCost(to)
			if seen[to] && d >= dist[to] {
				continue
			}
			seen[to] = true
			dist[to] = d
			par[to] = int32(c)
			parEdg[to] = e
			heap.Push(&pq, refCondDist{d, int32(to)})
		}
	}
	return errors.New("no path")
}

// applyList reserves every endpoint and routes the pairs in order,
// returning the index of the first reservation or routing failure (-1
// when the whole list succeeds) — the exact decode protocol.
func applyList(reserve func(IOCode) error, route func(in, out IOCode) error, list [][2]IOCode) int {
	for i, p := range list {
		if reserve(p[0]) != nil || reserve(p[1]) != nil {
			return i
		}
	}
	for i, p := range list {
		if route(p[0], p[1]) != nil {
			return i
		}
	}
	return -1
}

// TestPooledDecoderMatchesReference is the equivalence property of the
// zero-allocation hot path: across region shapes (all cluster sizes 1
// to 4, truncated edge shapes included), random — valid, invalid and
// unroutable — connection lists, closed fabric edges, and repeated
// reuse of one pooled router, the CSR/bucket-queue/pooled router must
// fail at exactly the same connection and produce exactly the same
// switch bits as the freshly-allocated reference decoder.
func TestPooledDecoderMatchesReference(t *testing.T) {
	shapes := []Region{
		{P: arch.PaperExample(), Nominal: 1, CW: 1, CH: 1},
		{P: arch.Params{W: 6, K: 4}, Nominal: 2, CW: 2, CH: 2},
		{P: arch.Params{W: 6, K: 4}, Nominal: 2, CW: 1, CH: 2},
		{P: arch.Params{W: 5, K: 4}, Nominal: 3, CW: 3, CH: 3},
		{P: arch.Params{W: 5, K: 4}, Nominal: 3, CW: 2, CH: 3},
		{P: arch.Params{W: 4, K: 3}, Nominal: 4, CW: 4, CH: 4},
		{P: arch.Params{W: 4, K: 3}, Nominal: 4, CW: 4, CH: 1},
	}
	for _, r := range shapes {
		rt, err := AcquireRouter(r, false, false)
		if err != nil {
			t.Fatal(err)
		}
		for seed := int64(0); seed < 25; seed++ {
			rng := rand.New(rand.NewSource(seed*1000 + int64(r.NumConds())))
			closedW, closedS := rng.Intn(4) == 0, rng.Intn(4) == 0
			list := make([][2]IOCode, rng.Intn(18)+1)
			for i := range list {
				// Mostly in-range codes (occasionally null/out of range);
				// truncated shapes reject some in-range codes too.
				list[i][0] = IOCode(rng.Intn(r.NumIOCodes() + 2))
				list[i][1] = IOCode(rng.Intn(r.NumIOCodes() + 2))
			}

			ref := newRefRouter(t, r, closedW, closedS)
			refFail := applyList(ref.reserve, ref.routeConnection, list)

			// The same pooled router instance, Reset between lists, with
			// per-acquisition edge flags.
			rt.Reset()
			rt.setEdges(closedW, closedS)
			optFail := applyList(rt.Reserve, rt.RouteConnection, list)

			if refFail != optFail {
				t.Fatalf("shape %+v seed %d: reference fails at %d, optimized at %d",
					r, seed, refFail, optFail)
			}
			for m := range ref.configs {
				if !ref.configs[m].Vec().Equal(rt.Configs()[m].Vec()) {
					t.Fatalf("shape %+v seed %d member %d: decoded bits differ from reference",
						r, seed, m)
				}
			}
			for c := range ref.owner {
				if ref.owner[c] != rt.owner[c] {
					t.Fatalf("shape %+v seed %d cond %d: owner %d vs reference %d",
						r, seed, c, rt.owner[c], ref.owner[c])
				}
			}
		}
		rt.Release()
	}
}

// TestCodeTableMatchesCondForCode pins the precomputed code→cond table
// to the arithmetic CondForCode it replaces on the hot path.
func TestCodeTableMatchesCondForCode(t *testing.T) {
	shapes := []Region{
		{P: arch.PaperExample(), Nominal: 1, CW: 1, CH: 1},
		{P: arch.Default(), Nominal: 2, CW: 2, CH: 2},
		{P: arch.Params{W: 5, K: 4}, Nominal: 3, CW: 2, CH: 1},
		{P: arch.Params{W: 4, K: 3}, Nominal: 4, CW: 3, CH: 4},
	}
	for _, r := range shapes {
		g := graphFor(r)
		for code := -1; code <= r.NumIOCodes(); code++ {
			want, err := r.CondForCode(IOCode(code))
			got := g.condFor(IOCode(code))
			switch {
			case err != nil && got != -1:
				t.Errorf("%+v code %d: table %d, arithmetic rejects (%v)", r, code, got, err)
			case err == nil && got != int32(want):
				t.Errorf("%+v code %d: table %d, arithmetic %d", r, code, got, want)
			}
		}
	}
}

// TestRouterResetIsComplete: after decoding an arbitrary list, Reset
// must leave no observable state behind — the next decode on the same
// router equals a decode on a fresh one.
func TestRouterResetIsComplete(t *testing.T) {
	r := Region{P: arch.Params{W: 6, K: 4}, Nominal: 2, CW: 2, CH: 2}
	rt, err := NewRouter(r, false, false)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(42))
	for round := 0; round < 50; round++ {
		list := make([][2]IOCode, rng.Intn(15)+1)
		for i := range list {
			list[i][0] = IOCode(rng.Intn(r.NumIOCodes()-1) + 1)
			list[i][1] = IOCode(rng.Intn(r.NumIOCodes()-1) + 1)
		}
		fresh, err := NewRouter(r, false, false)
		if err != nil {
			t.Fatal(err)
		}
		freshFail := applyList(fresh.Reserve, fresh.RouteConnection, list)
		rt.Reset()
		reusedFail := applyList(rt.Reserve, rt.RouteConnection, list)
		if freshFail != reusedFail {
			t.Fatalf("round %d: fresh fails at %d, reused at %d", round, freshFail, reusedFail)
		}
		for m := range fresh.configs {
			if !fresh.configs[m].Vec().Equal(rt.configs[m].Vec()) {
				t.Fatalf("round %d member %d: reused router bits differ", round, m)
			}
		}
	}
}
