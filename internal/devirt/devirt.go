// Package devirt implements the de-virtualization router of the paper
// (Section II-C): the small deterministic router that expands a Virtual
// Bit-Stream connection list into concrete switch states for one macro
// or one cluster of macros. The same algorithm runs in two places, by
// construction: offline inside the encoder's feedback loop (to prove a
// connection list decodable and re-order or fall back when it is not)
// and online inside the reconfiguration controller.
//
// A region is a rectangle of CW×CH macros decoded as one routing
// domain. Its conductors are the members' own horizontal/vertical
// wires and pin wires plus the incoming west/south boundary wires; its
// switches are exactly the members' switch inventories. Conductors on
// the region boundary are externally visible (they extend into
// neighbouring regions); interior conductors may be chosen freely by
// the router, which is where the Virtual Bit-Stream wins its
// compression: interior routing detail is never stored.
package devirt

import (
	"fmt"
	"sync"

	"repro/internal/arch"
)

// Region describes the shape of a de-virtualization domain.
type Region struct {
	// P is the macro architecture.
	P arch.Params
	// Nominal is the cluster size c used for the I/O code layout
	// (Section IV-B); the code space has 4*W*c + c²*L + 1 values.
	Nominal int
	// CW, CH are the actual member columns and rows (≤ Nominal;
	// smaller only for truncated regions at the task edge).
	CW, CH int
}

// Validate reports whether the region shape is usable.
func (r Region) Validate() error {
	if err := r.P.Validate(); err != nil {
		return err
	}
	if r.Nominal < 1 {
		return fmt.Errorf("devirt: nominal cluster size %d", r.Nominal)
	}
	if r.CW < 1 || r.CH < 1 || r.CW > r.Nominal || r.CH > r.Nominal {
		return fmt.Errorf("devirt: region %dx%d invalid for cluster size %d", r.CW, r.CH, r.Nominal)
	}
	return nil
}

// NumIOCodes returns the cluster I/O code space size, 4Wc + c²L + 1.
func (r Region) NumIOCodes() int {
	c := r.Nominal
	return 4*r.P.W*c + c*c*r.P.L() + 1
}

// MBits returns the connection endpoint width for this cluster size.
func (r Region) MBits() int {
	n := r.NumIOCodes()
	bitsN := 0
	for 1<<uint(bitsN) < n {
		bitsN++
	}
	return bitsN
}

// Members returns CW*CH.
func (r Region) Members() int { return r.CW * r.CH }

// memberIndex flattens member coordinates (column i, row j).
func (r Region) memberIndex(i, j int) int { return j*r.CW + i }

// Conductor indexing: members first, each contributing 2W+L conductors
// (own HW, own VW, pins), then C H rows of incoming west wires, then CW
// columns of incoming south wires.
func (r Region) perMember() int { return 2*r.P.W + r.P.L() }

// NumConds returns the conductor count of the region.
func (r Region) NumConds() int {
	return r.Members()*r.perMember() + (r.CH+r.CW)*r.P.W
}

func (r Region) condHW(i, j, t int) int { return r.memberIndex(i, j)*r.perMember() + t }
func (r Region) condVW(i, j, t int) int { return r.memberIndex(i, j)*r.perMember() + r.P.W + t }
func (r Region) condPin(i, j, p int) int {
	return r.memberIndex(i, j)*r.perMember() + 2*r.P.W + p
}
func (r Region) condInW(j, t int) int {
	return r.Members()*r.perMember() + j*r.P.W + t
}
func (r Region) condInS(i, t int) int {
	return r.Members()*r.perMember() + r.CH*r.P.W + i*r.P.W + t
}

// resolveLocal maps member (i,j)'s local conductor to the region index.
func (r Region) resolveLocal(i, j int, c arch.Cond) int {
	kind, idx := r.P.CondInfo(c)
	switch kind {
	case arch.KindHW:
		return r.condHW(i, j, idx)
	case arch.KindVW:
		return r.condVW(i, j, idx)
	case arch.KindInW:
		if i == 0 {
			return r.condInW(j, idx)
		}
		return r.condHW(i-1, j, idx)
	case arch.KindInS:
		if j == 0 {
			return r.condInS(i, idx)
		}
		return r.condVW(i, j-1, idx)
	default:
		return r.condPin(i, j, idx)
	}
}

// IOCode is a cluster-level I/O index as stored in the VBS: 0 is null;
// then W tracks per side row/column in the order West, South, East,
// North (Nominal rows/columns each); then the members' pins row-major.
type IOCode int

// CodeWest returns the I/O code of incoming west wire t of region row j.
func (r Region) CodeWest(j, t int) IOCode { return IOCode(1 + j*r.P.W + t) }

// CodeSouth returns the I/O code of incoming south wire t of column i.
func (r Region) CodeSouth(i, t int) IOCode {
	return IOCode(1 + r.Nominal*r.P.W + i*r.P.W + t)
}

// CodeEast returns the I/O code of the outgoing east wire t of row j
// (the east-column member's own horizontal wire).
func (r Region) CodeEast(j, t int) IOCode {
	return IOCode(1 + 2*r.Nominal*r.P.W + j*r.P.W + t)
}

// CodeNorth returns the I/O code of the outgoing north wire t of
// column i.
func (r Region) CodeNorth(i, t int) IOCode {
	return IOCode(1 + 3*r.Nominal*r.P.W + i*r.P.W + t)
}

// CodePin returns the I/O code of pin p of member (i, j).
func (r Region) CodePin(i, j, p int) IOCode {
	return IOCode(1 + 4*r.Nominal*r.P.W + (j*r.Nominal+i)*r.P.L() + p)
}

// CondForCode resolves an I/O code to a region conductor index, or an
// error for null, out-of-range, or codes outside the actual CW×CH
// shape.
func (r Region) CondForCode(code IOCode) (int, error) {
	c := int(code)
	if c <= 0 || c >= r.NumIOCodes() {
		return 0, fmt.Errorf("devirt: I/O code %d out of range (0,%d)", c, r.NumIOCodes())
	}
	c--
	w, nom, l := r.P.W, r.Nominal, r.P.L()
	side := 0
	for side < 4 && c >= nom*w {
		c -= nom * w
		side++
	}
	if side < 4 {
		major, t := c/w, c%w
		switch side {
		case 0: // West, rows
			if major >= r.CH {
				return 0, fmt.Errorf("devirt: west row %d outside region height %d", major, r.CH)
			}
			return r.condInW(major, t), nil
		case 1: // South, columns
			if major >= r.CW {
				return 0, fmt.Errorf("devirt: south column %d outside region width %d", major, r.CW)
			}
			return r.condInS(major, t), nil
		case 2: // East: own HW of last column
			if major >= r.CH {
				return 0, fmt.Errorf("devirt: east row %d outside region height %d", major, r.CH)
			}
			return r.condHW(r.CW-1, major, t), nil
		default: // North: own VW of last row
			if major >= r.CW {
				return 0, fmt.Errorf("devirt: north column %d outside region width %d", major, r.CW)
			}
			return r.condVW(major, r.CH-1, t), nil
		}
	}
	// Pins.
	member, p := c/l, c%l
	j, i := member/nom, member%nom
	if i >= r.CW || j >= r.CH {
		return 0, fmt.Errorf("devirt: pin member (%d,%d) outside %dx%d region", i, j, r.CW, r.CH)
	}
	return r.condPin(i, j, p), nil
}

// CodeForCond is the inverse of CondForCode for conductors that have
// I/O codes (boundary wires and pins); interior wires return 0 (null).
func (r Region) CodeForCond(cond int) IOCode {
	pm := r.perMember()
	members := r.Members()
	if cond >= members*pm {
		rest := cond - members*pm
		if rest < r.CH*r.P.W {
			return r.CodeWest(rest/r.P.W, rest%r.P.W)
		}
		rest -= r.CH * r.P.W
		return r.CodeSouth(rest/r.P.W, rest%r.P.W)
	}
	member, local := cond/pm, cond%pm
	j, i := member/r.CW, member%r.CW
	switch {
	case local < r.P.W: // own HW
		if i == r.CW-1 {
			return r.CodeEast(j, local)
		}
	case local < 2*r.P.W: // own VW
		if j == r.CH-1 {
			return r.CodeNorth(i, local-r.P.W)
		}
	default:
		return r.CodePin(i, j, local-2*r.P.W)
	}
	return 0
}

// CondPlace decomposes a region conductor into member space: the
// conductor kind, the member column i and row j it belongs to, and the
// track or pin index. Incoming boundary wires report the member whose
// switch box they enter (column 0 for KindInW, row 0 for KindInS).
func (r Region) CondPlace(cond int) (kind arch.CondKind, i, j, idx int) {
	pm := r.perMember()
	members := r.Members()
	if cond >= members*pm {
		rest := cond - members*pm
		if rest < r.CH*r.P.W {
			return arch.KindInW, 0, rest / r.P.W, rest % r.P.W
		}
		rest -= r.CH * r.P.W
		return arch.KindInS, rest / r.P.W, 0, rest % r.P.W
	}
	member, local := cond/pm, cond%pm
	j, i = member/r.CW, member%r.CW
	switch {
	case local < r.P.W:
		return arch.KindHW, i, j, local
	case local < 2*r.P.W:
		return arch.KindVW, i, j, local - r.P.W
	default:
		return arch.KindPin, i, j, local - 2*r.P.W
	}
}

// CodeInfo describes an I/O code for ordering heuristics: whether it
// names a pin, and for wires the track index (-1 for pins).
func (r Region) CodeInfo(code IOCode) (isPin bool, track int, err error) {
	cond, err := r.CondForCode(code)
	if err != nil {
		return false, -1, err
	}
	kind, _, _, idx := r.CondPlace(cond)
	if kind == arch.KindPin {
		return true, -1, nil
	}
	return false, idx, nil
}

// condClass classifies conductors for routing costs.
type condClass uint8

const (
	classInternalWire condClass = iota
	classBoundaryWire           // visible outside the region
	classInputPin               // usable as route-through
	classOutputPin              // never a route-through
)

// edge is one switch adjacency within the region graph. The switch's
// raw bit range is baked in so the commit path drives configuration
// bits without consulting arch.Params.Switches().
type edge struct {
	to     int32
	first  int32 // first raw bit of the switch in the member's config
	member int16 // member index owning the switch
	nbits  uint8 // raw bits driven by the switch (1, 3 or 6)
}

// regionGraph is the immutable routing graph of a region shape, stored
// in compressed sparse row (CSR) form: edges[adjOff[c]:adjOff[c+1]]
// are conductor c's switch edges, one flat allocation instead of a
// slice per conductor. Edge order within a conductor is the member
// then switch enumeration order, which fixes the router's
// deterministic tie-breaking.
type regionGraph struct {
	r      Region
	class  []condClass
	adjOff []int32
	edges  []edge
	// codeCond is CondForCode precomputed over the whole I/O code
	// space: codeCond[code] is the conductor index, or -1 for the null
	// code and codes outside the actual CW×CH shape. It removes the
	// branchy side arithmetic from Reserve and RouteConnection.
	codeCond []int32
	// baseCost is the class traversal cost per conductor (the
	// reservation penalty is added dynamically by the router).
	baseCost []int32
}

// condFor is the hot-path CondForCode: table lookup, -1 for any
// invalid code.
func (g *regionGraph) condFor(code IOCode) int32 {
	if code <= 0 || int(code) >= len(g.codeCond) {
		return -1
	}
	return g.codeCond[code]
}

var graphCache sync.Map // Region -> *regionGraph

// Warm pre-builds and caches the routing graph for a region shape, so
// the first decode touching that shape does not pay graph
// construction. Long-running managers call this when a VBS is stored,
// off the load critical path. Warming is idempotent and safe for
// concurrent use.
func Warm(r Region) error {
	if err := r.Validate(); err != nil {
		return err
	}
	graphFor(r)
	return nil
}

func graphFor(r Region) *regionGraph {
	if g, ok := graphCache.Load(r); ok {
		return g.(*regionGraph)
	}
	g := buildRegionGraph(r)
	actual, _ := graphCache.LoadOrStore(r, g)
	return actual.(*regionGraph)
}

func buildRegionGraph(r Region) *regionGraph {
	n := r.NumConds()
	g := &regionGraph{r: r, class: make([]condClass, n)}
	// Classify conductors.
	for i := 0; i < r.CW; i++ {
		for j := 0; j < r.CH; j++ {
			for t := 0; t < r.P.W; t++ {
				if i == r.CW-1 {
					g.class[r.condHW(i, j, t)] = classBoundaryWire
				}
				if j == r.CH-1 {
					g.class[r.condVW(i, j, t)] = classBoundaryWire
				}
			}
			for p := 0; p < r.P.L(); p++ {
				if p == r.P.OutputPin() {
					g.class[r.condPin(i, j, p)] = classOutputPin
				} else {
					g.class[r.condPin(i, j, p)] = classInputPin
				}
			}
		}
	}
	for j := 0; j < r.CH; j++ {
		for t := 0; t < r.P.W; t++ {
			g.class[r.condInW(j, t)] = classBoundaryWire
		}
	}
	for i := 0; i < r.CW; i++ {
		for t := 0; t < r.P.W; t++ {
			g.class[r.condInS(i, t)] = classBoundaryWire
		}
	}
	// Edges from every member's switch inventory, CSR-packed in two
	// passes. The fill pass visits switches in the same order the old
	// per-conductor append did, so per-conductor edge order (and with
	// it every routing tie-break) is unchanged.
	sws := r.P.Switches()
	deg := make([]int32, n+1)
	for i := 0; i < r.CW; i++ {
		for j := 0; j < r.CH; j++ {
			for _, sw := range sws {
				deg[r.resolveLocal(i, j, sw.A)+1]++
				deg[r.resolveLocal(i, j, sw.B)+1]++
			}
		}
	}
	g.adjOff = deg
	for c := 0; c < n; c++ {
		g.adjOff[c+1] += g.adjOff[c]
	}
	g.edges = make([]edge, g.adjOff[n])
	next := make([]int32, n)
	copy(next, g.adjOff[:n])
	for i := 0; i < r.CW; i++ {
		for j := 0; j < r.CH; j++ {
			m := int16(r.memberIndex(i, j))
			for _, sw := range sws {
				a := int32(r.resolveLocal(i, j, sw.A))
				b := int32(r.resolveLocal(i, j, sw.B))
				e := edge{first: int32(sw.FirstBit), member: m, nbits: uint8(sw.NumBits)}
				e.to = b
				g.edges[next[a]] = e
				next[a]++
				e.to = a
				g.edges[next[b]] = e
				next[b]++
			}
		}
	}
	// Precomputed per-conductor lookups for the router's hot loops.
	g.baseCost = make([]int32, n)
	for c := 0; c < n; c++ {
		switch g.class[c] {
		case classBoundaryWire:
			g.baseCost[c] = costBoundary
		case classInputPin, classOutputPin:
			g.baseCost[c] = costInputPin
		default:
			g.baseCost[c] = costInternal
		}
	}
	g.codeCond = make([]int32, r.NumIOCodes())
	for code := range g.codeCond {
		g.codeCond[code] = -1
		if c, err := r.CondForCode(IOCode(code)); err == nil {
			g.codeCond[code] = int32(c)
		}
	}
	return g
}
