package devirt

import (
	"testing"

	"repro/internal/arch"
)

func region1(t *testing.T) Region {
	t.Helper()
	r := Region{P: arch.PaperExample(), Nominal: 1, CW: 1, CH: 1}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	return r
}

func region2(t *testing.T) Region {
	t.Helper()
	r := Region{P: arch.PaperExample(), Nominal: 2, CW: 2, CH: 2}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRegionValidate(t *testing.T) {
	bad := []Region{
		{P: arch.PaperExample(), Nominal: 0, CW: 1, CH: 1},
		{P: arch.PaperExample(), Nominal: 2, CW: 3, CH: 2},
		{P: arch.PaperExample(), Nominal: 2, CW: 0, CH: 2},
		{P: arch.Params{}, Nominal: 1, CW: 1, CH: 1},
	}
	for i, r := range bad {
		if r.Validate() == nil {
			t.Errorf("case %d should fail", i)
		}
	}
}

// TestMacroCodeSpaceMatchesArch pins the c=1 I/O code layout to the
// macro-level layout of the arch package: the VBS format's code space
// must be identical at the finest granularity.
func TestMacroCodeSpaceMatchesArch(t *testing.T) {
	r := region1(t)
	p := r.P
	if r.NumIOCodes() != p.NumIOCodes() {
		t.Fatalf("code space %d != arch %d", r.NumIOCodes(), p.NumIOCodes())
	}
	if r.MBits() != p.MBits() {
		t.Fatalf("M %d != arch %d", r.MBits(), p.MBits())
	}
	for tr := 0; tr < p.W; tr++ {
		if IOCode(p.CodeForSide(arch.West, tr)) != r.CodeWest(0, tr) {
			t.Errorf("west code %d mismatch", tr)
		}
		if IOCode(p.CodeForSide(arch.South, tr)) != r.CodeSouth(0, tr) {
			t.Errorf("south code %d mismatch", tr)
		}
		if IOCode(p.CodeForSide(arch.East, tr)) != r.CodeEast(0, tr) {
			t.Errorf("east code %d mismatch", tr)
		}
		if IOCode(p.CodeForSide(arch.North, tr)) != r.CodeNorth(0, tr) {
			t.Errorf("north code %d mismatch", tr)
		}
	}
	for pin := 0; pin < p.L(); pin++ {
		if IOCode(p.CodeForPin(pin)) != r.CodePin(0, 0, pin) {
			t.Errorf("pin code %d mismatch", pin)
		}
	}
}

// TestClusterCodeSpaceSize checks the paper's cluster code space
// formula 4Wc + c²L + 1.
func TestClusterCodeSpaceSize(t *testing.T) {
	p := arch.Default() // W=20, L=7
	for _, c := range []int{1, 2, 3, 4, 6} {
		r := Region{P: p, Nominal: c, CW: c, CH: c}
		want := 4*20*c + c*c*7 + 1
		if r.NumIOCodes() != want {
			t.Errorf("c=%d: code space %d, want %d", c, r.NumIOCodes(), want)
		}
	}
}

func TestCodeRoundTripMacro(t *testing.T) {
	r := region1(t)
	for code := 1; code < r.NumIOCodes(); code++ {
		cond, err := r.CondForCode(IOCode(code))
		if err != nil {
			t.Fatalf("code %d: %v", code, err)
		}
		back := r.CodeForCond(cond)
		if back != IOCode(code) {
			t.Errorf("code %d -> cond %d -> code %d", code, cond, back)
		}
	}
}

func TestCodeRoundTripCluster(t *testing.T) {
	r := region2(t)
	for code := 1; code < r.NumIOCodes(); code++ {
		cond, err := r.CondForCode(IOCode(code))
		if err != nil {
			t.Fatalf("code %d: %v", code, err)
		}
		back := r.CodeForCond(cond)
		if back != IOCode(code) {
			t.Errorf("code %d -> cond %d -> code %d", code, cond, back)
		}
	}
}

// TestInteriorWiresHaveNoCode: in a 2x2 cluster the horizontal wires of
// column 0 and vertical wires of row 0 are interior and must map to
// the null code.
func TestInteriorWiresHaveNoCode(t *testing.T) {
	r := region2(t)
	for tr := 0; tr < r.P.W; tr++ {
		if got := r.CodeForCond(r.condHW(0, 0, tr)); got != 0 {
			t.Errorf("interior HW(0,0,%d) has code %d", tr, got)
		}
		if got := r.CodeForCond(r.condVW(0, 0, tr)); got != 0 {
			t.Errorf("interior VW(0,0,%d) has code %d", tr, got)
		}
		if got := r.CodeForCond(r.condHW(1, 0, tr)); got == 0 {
			t.Errorf("east HW(1,0,%d) should have a code", tr)
		}
	}
}

// TestTruncatedRegionRejectsOutsideCodes: a 1x2 region (task edge) must
// reject codes that name the missing column.
func TestTruncatedRegionRejectsOutsideCodes(t *testing.T) {
	r := Region{P: arch.PaperExample(), Nominal: 2, CW: 1, CH: 2}
	if err := r.Validate(); err != nil {
		t.Fatal(err)
	}
	// South of column 1 does not exist.
	if _, err := r.CondForCode(r.CodeSouth(1, 0)); err == nil {
		t.Error("south column 1 should be rejected")
	}
	// South of column 0 exists.
	if _, err := r.CondForCode(r.CodeSouth(0, 0)); err != nil {
		t.Errorf("south column 0: %v", err)
	}
	// Pin of member (1,0) does not exist.
	if _, err := r.CondForCode(r.CodePin(1, 0, 0)); err == nil {
		t.Error("pin of missing member should be rejected")
	}
	// Pin of member (0,1) exists.
	if _, err := r.CondForCode(r.CodePin(0, 1, 0)); err != nil {
		t.Errorf("pin of member (0,1): %v", err)
	}
}

func TestCondForCodeRange(t *testing.T) {
	r := region1(t)
	if _, err := r.CondForCode(0); err == nil {
		t.Error("null code should error in CondForCode")
	}
	if _, err := r.CondForCode(IOCode(r.NumIOCodes())); err == nil {
		t.Error("out-of-range code should error")
	}
}

// connected checks electrical connectivity of two local conductors in
// a decoded single-macro config.
func macroConnected(t *testing.T, cfg *arch.MacroConfig, a, b arch.Cond) bool {
	t.Helper()
	comp := cfg.Components()
	return comp[a] == comp[b]
}

func TestRouteStraightThrough(t *testing.T) {
	r := region1(t)
	rt, err := NewRouter(r, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.RouteConnection(r.CodeWest(0, 3), r.CodeEast(0, 3)); err != nil {
		t.Fatal(err)
	}
	cfg := rt.Configs()[0]
	if !macroConnected(t, cfg, r.P.CondInW(3), r.P.CondHW(3)) {
		t.Error("west 3 not connected to east 3")
	}
	// Exactly one switch should be on: the (InW,HW) pair of track 3.
	on := cfg.OnSwitches()
	if len(on) != 1 {
		t.Fatalf("%d switches on, want 1", len(on))
	}
	sw := r.P.Switches()[on[0]]
	if !(sw.A == r.P.CondHW(3) && sw.B == r.P.CondInW(3)) &&
		!(sw.B == r.P.CondHW(3) && sw.A == r.P.CondInW(3)) {
		t.Errorf("wrong switch on: %s-%s", r.P.CondName(sw.A), r.P.CondName(sw.B))
	}
}

func TestRouteToPin(t *testing.T) {
	r := region1(t)
	rt, err := NewRouter(r, false, false)
	if err != nil {
		t.Fatal(err)
	}
	// Pin 1 is a ChanX input pin: route from the west side.
	if err := rt.RouteConnection(r.CodeWest(0, 2), r.CodePin(0, 0, 1)); err != nil {
		t.Fatal(err)
	}
	cfg := rt.Configs()[0]
	if !macroConnected(t, cfg, r.P.CondInW(2), r.P.CondPin(1)) {
		t.Error("west 2 not connected to pin 1")
	}
	// Pin 5 is a ChanY pin: route from the south side.
	if err := rt.RouteConnection(r.CodeSouth(0, 4), r.CodePin(0, 0, 5)); err != nil {
		t.Fatal(err)
	}
	if !macroConnected(t, cfg, r.P.CondInS(4), r.P.CondPin(5)) {
		t.Error("south 4 not connected to pin 5")
	}
}

func TestRouteCrossingTracksShareSwitchPoint(t *testing.T) {
	// A horizontal route and a vertical route on the same track index
	// use different pairwise switches of one switch point and must both
	// succeed without shorting.
	r := region1(t)
	rt, err := NewRouter(r, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.RouteConnection(r.CodeWest(0, 3), r.CodeEast(0, 3)); err != nil {
		t.Fatal(err)
	}
	if err := rt.RouteConnection(r.CodeSouth(0, 3), r.CodeNorth(0, 3)); err != nil {
		t.Fatal(err)
	}
	cfg := rt.Configs()[0]
	if !macroConnected(t, cfg, r.P.CondInW(3), r.P.CondHW(3)) ||
		!macroConnected(t, cfg, r.P.CondInS(3), r.P.CondVW(3)) {
		t.Error("routes broken")
	}
	if macroConnected(t, cfg, r.P.CondInW(3), r.P.CondInS(3)) {
		t.Error("horizontal and vertical routes are shorted")
	}
}

func TestRouteConflictDetected(t *testing.T) {
	r := region1(t)
	rt, err := NewRouter(r, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.RouteConnection(r.CodeWest(0, 3), r.CodeEast(0, 3)); err != nil {
		t.Fatal(err)
	}
	// A different net claiming east 3 must fail.
	if err := rt.RouteConnection(r.CodeSouth(0, 1), r.CodeEast(0, 3)); err == nil {
		t.Error("claiming an owned endpoint should fail")
	}
}

func TestRouteNetExtension(t *testing.T) {
	r := region1(t)
	rt, err := NewRouter(r, false, false)
	if err != nil {
		t.Fatal(err)
	}
	// (W3 -> E3) then (E3 -> N3): the second pair extends net 0.
	if err := rt.RouteConnection(r.CodeWest(0, 3), r.CodeEast(0, 3)); err != nil {
		t.Fatal(err)
	}
	if err := rt.RouteConnection(r.CodeEast(0, 3), r.CodeNorth(0, 3)); err != nil {
		t.Fatal(err)
	}
	cfg := rt.Configs()[0]
	if !macroConnected(t, cfg, r.P.CondInW(3), r.P.CondVW(3)) {
		t.Error("extended net not fully connected")
	}
	oin, err := rt.Owner(r.CodeWest(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	oN, err := rt.Owner(r.CodeNorth(0, 3))
	if err != nil {
		t.Fatal(err)
	}
	if oin != oN || oin < 0 {
		t.Errorf("owners differ: %d vs %d", oin, oN)
	}
}

func TestRouteIdempotentPair(t *testing.T) {
	r := region1(t)
	rt, _ := NewRouter(r, false, false)
	if err := rt.RouteConnection(r.CodeWest(0, 3), r.CodeEast(0, 3)); err != nil {
		t.Fatal(err)
	}
	before := rt.Configs()[0].Vec().Clone()
	// Same pair again: endpoints already share a net, no-op.
	if err := rt.RouteConnection(r.CodeWest(0, 3), r.CodeEast(0, 3)); err != nil {
		t.Fatal(err)
	}
	if !rt.Configs()[0].Vec().Equal(before) {
		t.Error("idempotent pair changed the configuration")
	}
}

func TestRouteTrackChangeViaPin(t *testing.T) {
	// West track 1 to east track 2 requires a route-through input pin.
	r := region1(t)
	rt, _ := NewRouter(r, false, false)
	if err := rt.RouteConnection(r.CodeWest(0, 1), r.CodeEast(0, 2)); err != nil {
		t.Fatal(err)
	}
	cfg := rt.Configs()[0]
	if !macroConnected(t, cfg, r.P.CondInW(1), r.P.CondHW(2)) {
		t.Error("track change failed")
	}
	// The output pin must not be used as the route-through.
	comp := cfg.Components()
	if comp[r.P.CondPin(0)] == comp[r.P.CondInW(1)] {
		t.Error("output pin used as route-through")
	}
}

func TestClosedEdges(t *testing.T) {
	r := region1(t)
	rt, err := NewRouter(r, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if err := rt.RouteConnection(r.CodeWest(0, 0), r.CodeEast(0, 0)); err == nil {
		t.Error("west endpoint on closed edge should fail")
	}
	if err := rt.RouteConnection(r.CodeSouth(0, 0), r.CodeNorth(0, 0)); err == nil {
		t.Error("south endpoint on closed edge should fail")
	}
	// East/north still fine.
	if err := rt.RouteConnection(r.CodeEast(0, 0), r.CodeNorth(0, 0)); err != nil {
		t.Errorf("east-north route should work: %v", err)
	}
}

func TestClusterRouteAcrossMembers(t *testing.T) {
	r := region2(t)
	rt, err := NewRouter(r, false, false)
	if err != nil {
		t.Fatal(err)
	}
	// West row 0 track 2 to east row 0 track 2: crosses both members
	// of row 0 through the interior wire.
	if err := rt.RouteConnection(r.CodeWest(0, 2), r.CodeEast(0, 2)); err != nil {
		t.Fatal(err)
	}
	c00 := rt.Configs()[0] // member (0,0)
	c10 := rt.Configs()[1] // member (1,0)
	if c00.Vec().OnesCount() == 0 || c10.Vec().OnesCount() == 0 {
		t.Error("route should use switches in both members")
	}
	// Members (0,1) and (1,1) stay untouched.
	if rt.Configs()[2].Vec().OnesCount() != 0 || rt.Configs()[3].Vec().OnesCount() != 0 {
		t.Error("unrelated members configured")
	}
}

func TestClusterPinToPin(t *testing.T) {
	r := region2(t)
	rt, _ := NewRouter(r, false, false)
	// Output pin of member (0,0) to an input pin of member (1,1):
	// a fully internal net, the clustering win of Section IV-B.
	if err := rt.RouteConnection(r.CodePin(0, 0, 0), r.CodePin(1, 1, 2)); err != nil {
		t.Fatal(err)
	}
	// No boundary wire may be claimed for this internal net unless
	// required; check at least that the route exists and the members'
	// switches are on.
	total := 0
	for _, c := range rt.Configs() {
		total += len(c.OnSwitches())
	}
	if total == 0 {
		t.Error("no switches turned on")
	}
}

func TestRouterDeterministic(t *testing.T) {
	r := region2(t)
	run := func() []*arch.MacroConfig {
		rt, _ := NewRouter(r, false, false)
		pairs := [][2]IOCode{
			{r.CodeWest(0, 2), r.CodeEast(0, 2)},
			{r.CodePin(0, 0, 0), r.CodePin(1, 1, 2)},
			{r.CodeSouth(1, 4), r.CodeNorth(1, 4)},
			{r.CodeWest(1, 0), r.CodePin(0, 1, 3)},
		}
		for _, p := range pairs {
			if err := rt.RouteConnection(p[0], p[1]); err != nil {
				t.Fatal(err)
			}
		}
		return rt.Configs()
	}
	a, b := run(), run()
	for i := range a {
		if !a[i].Vec().Equal(b[i].Vec()) {
			t.Fatalf("member %d differs between identical runs", i)
		}
	}
}

func TestRouterReset(t *testing.T) {
	r := region1(t)
	rt, _ := NewRouter(r, false, false)
	if err := rt.RouteConnection(r.CodeWest(0, 0), r.CodeEast(0, 0)); err != nil {
		t.Fatal(err)
	}
	rt.Reset()
	if rt.Configs()[0].Vec().OnesCount() != 0 {
		t.Error("Reset left switches on")
	}
	if o, _ := rt.Owner(r.CodeWest(0, 0)); o != -1 {
		t.Error("Reset left owners")
	}
	// Router is reusable after reset.
	if err := rt.RouteConnection(r.CodeWest(0, 0), r.CodeEast(0, 0)); err != nil {
		t.Error(err)
	}
}

func TestRouterRejectsBadRegion(t *testing.T) {
	if _, err := NewRouter(Region{}, false, false); err == nil {
		t.Error("invalid region accepted")
	}
}

func BenchmarkRouteMacro(b *testing.B) {
	r := Region{P: arch.Default(), Nominal: 1, CW: 1, CH: 1}
	rt, err := NewRouter(r, false, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt.Reset()
		for tr := 0; tr < 8; tr++ {
			if err := rt.RouteConnection(r.CodeWest(0, tr), r.CodeEast(0, tr)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkRouteCluster4(b *testing.B) {
	r := Region{P: arch.Default(), Nominal: 4, CW: 4, CH: 4}
	rt, err := NewRouter(r, false, false)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		rt.Reset()
		for tr := 0; tr < 8; tr++ {
			if err := rt.RouteConnection(r.CodeWest(tr%4, tr), r.CodeEast(tr%4, tr)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func TestWarm(t *testing.T) {
	r := Region{P: arch.Default(), Nominal: 2, CW: 2, CH: 1}
	if err := Warm(r); err != nil {
		t.Fatal(err)
	}
	// Idempotent, and the warmed graph must be the one routers use.
	if err := Warm(r); err != nil {
		t.Fatal(err)
	}
	if _, err := NewRouter(r, false, false); err != nil {
		t.Fatal(err)
	}
	if err := Warm(Region{Nominal: 0}); err == nil {
		t.Error("invalid region warmed")
	}
}
