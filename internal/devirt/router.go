package devirt

import (
	"fmt"
	"math"

	"repro/internal/arch"
	"repro/internal/bits"
)

// Conductor traversal costs. Interior resources are cheap; boundary
// wires are expensive as intermediates because a neighbouring region
// may use the same physical wire (the encoder's feedback loop catches
// the rare collisions and falls back to raw coding); input pin wires
// sit in between (route-throughs are legal but consume a possible
// later terminal).
const (
	costInternal = 2
	costInputPin = 3
	costBoundary = 9
	// costReserved is added when routing through a conductor that a
	// later connection names as an endpoint: legal, but it risks a
	// collision the feedback loop would then have to repair, so the
	// router only does it when no clean path exists.
	costReserved = 64
)

// Router decodes one region's connection list into switch states. It
// is the stateful router of Section II-C: connections are processed in
// list order, earlier connections claim conductors, and later
// connections must route around them. The same net may be extended by
// reusing an endpoint that is already claimed.
//
// A Router is reusable: Reset returns it to the blank state in time
// proportional to what the previous decode touched, which is what
// makes the shape-keyed router pool (AcquireRouter/Release) cheap.
type Router struct {
	g *regionGraph
	// closedW/closedS mark regions on the fabric's west/south edge,
	// where the incoming boundary wires physically do not exist. open
	// caches !closedW && !closedS so the search skips the edge check
	// entirely in the common interior case.
	closedW, closedS bool
	open             bool

	owner    []int32 // conductor -> net id, -1 free
	reserved []bool  // endpoint conductors of the connection list
	nets     int32
	configs  []*arch.MacroConfig // per member, switch bits only

	// Undo lists: every conductor claimed or reserved and every member
	// whose config was touched since the last Reset, so Reset is
	// O(touched) instead of O(NumConds).
	claimed   []int32
	resList   []int32
	dirty     []bool
	dirtyList []int32

	// Search scratch, epoch stamped.
	epoch  int32
	seenEp []int32
	dist   []int32
	par    []int32 // parent conductor
	parEdg []edge
	bq     bucketQueue

	// pool is the home pool when acquired via AcquireRouter; Release
	// returns the router there.
	pool *routerPool
}

// NewRouter returns a fresh router for the region. closedW and closedS
// mark fabric edges with no incoming west/south wires. Decode paths
// should prefer AcquireRouter, which reuses pooled routers of the same
// shape.
func NewRouter(r Region, closedW, closedS bool) (*Router, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	g := graphFor(r)
	n := r.NumConds()
	rt := &Router{
		g:        g,
		owner:    make([]int32, n),
		reserved: make([]bool, n),
		configs:  make([]*arch.MacroConfig, r.Members()),
		dirty:    make([]bool, r.Members()),
		seenEp:   make([]int32, n),
		dist:     make([]int32, n),
		par:      make([]int32, n),
		parEdg:   make([]edge, n),
	}
	rt.setEdges(closedW, closedS)
	for i := range rt.owner {
		rt.owner[i] = -1
	}
	for i := range rt.configs {
		rt.configs[i] = arch.NewMacroConfig(r.P)
	}
	return rt, nil
}

// setEdges installs the fabric-edge flags (they vary per acquisition,
// not per pooled router).
func (rt *Router) setEdges(closedW, closedS bool) {
	rt.closedW, rt.closedS = closedW, closedS
	rt.open = !closedW && !closedS
}

// Region returns the router's region shape.
func (rt *Router) Region() Region { return rt.g.r }

// Reset returns the router to the blank state for reuse. It undoes
// only what the previous decode touched: claimed and reserved
// conductors via the undo lists, and the configs of members whose
// switches were driven.
func (rt *Router) Reset() {
	for _, c := range rt.claimed {
		rt.owner[c] = -1
	}
	rt.claimed = rt.claimed[:0]
	for _, c := range rt.resList {
		rt.reserved[c] = false
	}
	rt.resList = rt.resList[:0]
	for _, m := range rt.dirtyList {
		rt.configs[m].Vec().Clear()
		rt.dirty[m] = false
	}
	rt.dirtyList = rt.dirtyList[:0]
	rt.nets = 0
}

// Reserve marks an endpoint conductor of the connection list. Routing
// through a reserved conductor is strongly penalized (it risks
// swallowing a later connection's terminal), so the router only does
// it when no cleaner path exists. The decoder reserves every endpoint
// of the list before routing; since the full list is available before
// decoding starts, this needs no extra information in the format.
func (rt *Router) Reserve(code IOCode) error {
	c := rt.g.condFor(code)
	if c < 0 {
		_, err := rt.g.r.CondForCode(code)
		return err
	}
	if !rt.reserved[c] {
		rt.reserved[c] = true
		rt.resList = append(rt.resList, c)
	}
	return nil
}

// usable reports whether a conductor may carry signal at all.
func (rt *Router) usable(c int) bool {
	r := rt.g.r
	pm := r.perMember()
	if c < r.Members()*pm {
		return true
	}
	rest := c - r.Members()*pm
	if rest < r.CH*r.P.W {
		return !rt.closedW
	}
	return !rt.closedS
}

// claim assigns a free conductor to net and records the undo entry.
func (rt *Router) claim(c int32, net int32) {
	rt.owner[c] = net
	rt.claimed = append(rt.claimed, c)
}

// RouteConnection realizes one (in, out) pair of the connection list.
// If in already belongs to a routed net, the net is extended from its
// whole tree; otherwise a new net starts at in. The chosen path claims
// its conductors and turns on the corresponding switches.
func (rt *Router) RouteConnection(in, out IOCode) error {
	a := rt.g.condFor(in)
	if a < 0 {
		_, err := rt.g.r.CondForCode(in)
		return err
	}
	b := rt.g.condFor(out)
	if b < 0 {
		_, err := rt.g.r.CondForCode(out)
		return err
	}
	if !rt.usable(int(a)) || !rt.usable(int(b)) {
		return fmt.Errorf("devirt: endpoint on closed fabric edge (%d->%d)", in, out)
	}
	var net int32
	switch {
	case rt.owner[a] >= 0:
		net = rt.owner[a]
	default:
		net = rt.nets
		rt.nets++
		rt.claim(a, net)
	}
	switch {
	case rt.owner[b] == net:
		return nil // already electrically connected
	case rt.owner[b] >= 0:
		return fmt.Errorf("devirt: endpoints %d and %d belong to different nets", in, out)
	}
	return rt.route(net, int(b))
}

// route runs deterministic Dijkstra from every conductor of net to the
// target, through free conductors only. The frontier is a monotone
// bucket queue (Dial's algorithm): conductor step costs are the small
// constants 2/3/9(+64), so a circular window of numBuckets distances
// covers every live entry, and the queue pops in exactly the
// (distance, conductor) order the previous container/heap
// implementation produced — without boxing an interface value per
// frontier entry.
func (rt *Router) route(net int32, target int) error {
	if rt.epoch == math.MaxInt32 {
		// Epoch wrap: invalidate every stamp once, then restart.
		for i := range rt.seenEp {
			rt.seenEp[i] = 0
		}
		rt.epoch = 0
	}
	rt.epoch++
	rt.bq.reset()
	// Seeds: the net's claimed tree, found on the undo list (each
	// conductor is claimed at most once, so no duplicates).
	for _, c := range rt.claimed {
		if rt.owner[c] != net {
			continue
		}
		rt.seenEp[c] = rt.epoch
		rt.dist[c] = 0
		rt.par[c] = -1
		rt.bq.push(0, c)
	}
	g := rt.g
	for {
		c32, d, ok := rt.bq.pop()
		if !ok {
			break
		}
		c := int(c32)
		if c == target {
			rt.commit(net, target)
			return nil
		}
		if d > rt.dist[c] {
			continue // stale entry
		}
		for k, end := g.adjOff[c], g.adjOff[c+1]; k < end; k++ {
			e := &g.edges[k]
			to := int(e.to)
			if to != target {
				if rt.owner[to] != -1 {
					continue // claimed by some net (even ours: tree conductors are seeds)
				}
				if g.class[to] == classOutputPin {
					continue // output pins are driven by their LB
				}
				if !rt.open && !rt.usable(to) {
					continue
				}
			}
			nd := d + g.baseCost[to]
			if rt.reserved[to] {
				nd += costReserved
			}
			if rt.seenEp[to] == rt.epoch && nd >= rt.dist[to] {
				continue
			}
			rt.seenEp[to] = rt.epoch
			rt.dist[to] = nd
			rt.par[to] = int32(c)
			rt.parEdg[to] = *e
			rt.bq.push(nd, e.to)
		}
	}
	return fmt.Errorf("devirt: no path to conductor %d for net %d", target, net)
}

// commit claims the found path and drives its switches.
func (rt *Router) commit(net int32, target int) {
	c := int32(target)
	for c != -1 && rt.owner[c] != net {
		rt.claim(c, net)
		e := &rt.parEdg[c]
		m := int(e.member)
		if !rt.dirty[m] {
			rt.dirty[m] = true
			rt.dirtyList = append(rt.dirtyList, int32(m))
		}
		vec := rt.configs[m].Vec()
		for b := 0; b < int(e.nbits); b++ {
			vec.Set(int(e.first)+b, true)
		}
		c = rt.par[c]
	}
}

// Owner returns the net id claiming an I/O code's conductor, or -1.
func (rt *Router) Owner(code IOCode) (int, error) {
	c := rt.g.condFor(code)
	if c < 0 {
		_, err := rt.g.r.CondForCode(code)
		return 0, err
	}
	return int(rt.owner[c]), nil
}

// Configs returns the decoded per-member configurations (switch bits
// only; logic data is merged separately). Member (i, j) is at index
// j*CW+i.
//
// Ownership: the returned configurations are the router's own state.
// They are valid until the next Reset or Release; a caller that needs
// them to outlive the router (the controller's Decoded cache, for
// example) must copy them out — Clone, or MergeMember into its own
// storage — before the router goes back to the pool.
func (rt *Router) Configs() []*arch.MacroConfig { return rt.configs }

// MemberDirty reports whether the decode drove any switch of member m.
func (rt *Router) MemberDirty(m int) bool { return rt.dirty[m] }

// MergeMember ORs member m's routed switch bits into dst, word at a
// time, skipping members the decode never touched. This is the
// decode-into-place primitive: the caller points dst at the target
// fabric configuration and no intermediate MacroConfig is
// materialized.
func (rt *Router) MergeMember(m int, dst *bits.Vec) {
	if rt.dirty[m] {
		dst.OrAt(rt.configs[m].Vec(), 0)
	}
}

// ClaimedConds returns the conductor indices currently owned by any
// net, with their owner ids, in conductor order. Used by the encoder's
// feedback loop for cross-region conflict detection.
func (rt *Router) ClaimedConds() (conds []int, owners []int32) {
	for c, o := range rt.owner {
		if o >= 0 {
			conds = append(conds, c)
			owners = append(owners, o)
		}
	}
	return conds, owners
}
