package devirt

import (
	"container/heap"
	"fmt"

	"repro/internal/arch"
)

// Conductor traversal costs. Interior resources are cheap; boundary
// wires are expensive as intermediates because a neighbouring region
// may use the same physical wire (the encoder's feedback loop catches
// the rare collisions and falls back to raw coding); input pin wires
// sit in between (route-throughs are legal but consume a possible
// later terminal).
const (
	costInternal = 2
	costInputPin = 3
	costBoundary = 9
	// costReserved is added when routing through a conductor that a
	// later connection names as an endpoint: legal, but it risks a
	// collision the feedback loop would then have to repair, so the
	// router only does it when no clean path exists.
	costReserved = 64
)

// Router decodes one region's connection list into switch states. It
// is the stateful router of Section II-C: connections are processed in
// list order, earlier connections claim conductors, and later
// connections must route around them. The same net may be extended by
// reusing an endpoint that is already claimed.
type Router struct {
	g *regionGraph
	// closedW/closedS mark regions on the fabric's west/south edge,
	// where the incoming boundary wires physically do not exist.
	closedW, closedS bool

	owner    []int32 // conductor -> net id, -1 free
	reserved []bool  // endpoint conductors of the connection list
	nets     int32
	configs  []*arch.MacroConfig // per member, switch bits only

	// Dijkstra scratch, epoch stamped.
	epoch  int32
	seenEp []int32
	dist   []int32
	par    []int32 // parent conductor
	parEdg []edge
	pq     condHeap
}

// NewRouter returns a fresh router for the region. closedW and closedS
// mark fabric edges with no incoming west/south wires.
func NewRouter(r Region, closedW, closedS bool) (*Router, error) {
	if err := r.Validate(); err != nil {
		return nil, err
	}
	g := graphFor(r)
	n := r.NumConds()
	rt := &Router{
		g:        g,
		closedW:  closedW,
		closedS:  closedS,
		owner:    make([]int32, n),
		reserved: make([]bool, n),
		configs:  make([]*arch.MacroConfig, r.Members()),
		seenEp:   make([]int32, n),
		dist:     make([]int32, n),
		par:      make([]int32, n),
		parEdg:   make([]edge, n),
	}
	for i := range rt.owner {
		rt.owner[i] = -1
	}
	for i := range rt.configs {
		rt.configs[i] = arch.NewMacroConfig(r.P)
	}
	return rt, nil
}

// Region returns the router's region shape.
func (rt *Router) Region() Region { return rt.g.r }

// Reset returns the router to the blank state for reuse.
func (rt *Router) Reset() {
	for i := range rt.owner {
		rt.owner[i] = -1
		rt.reserved[i] = false
	}
	rt.nets = 0
	for _, c := range rt.configs {
		c.Vec().Clear()
	}
}

// Reserve marks an endpoint conductor of the connection list. Routing
// through a reserved conductor is strongly penalized (it risks
// swallowing a later connection's terminal), so the router only does
// it when no cleaner path exists. The decoder reserves every endpoint
// of the list before routing; since the full list is available before
// decoding starts, this needs no extra information in the format.
func (rt *Router) Reserve(code IOCode) error {
	c, err := rt.g.r.CondForCode(code)
	if err != nil {
		return err
	}
	rt.reserved[c] = true
	return nil
}

// usable reports whether a conductor may carry signal at all.
func (rt *Router) usable(c int) bool {
	r := rt.g.r
	pm := r.perMember()
	if c < r.Members()*pm {
		return true
	}
	rest := c - r.Members()*pm
	if rest < r.CH*r.P.W {
		return !rt.closedW
	}
	return !rt.closedS
}

// RouteConnection realizes one (in, out) pair of the connection list.
// If in already belongs to a routed net, the net is extended from its
// whole tree; otherwise a new net starts at in. The chosen path claims
// its conductors and turns on the corresponding switches.
func (rt *Router) RouteConnection(in, out IOCode) error {
	r := rt.g.r
	a, err := r.CondForCode(in)
	if err != nil {
		return err
	}
	b, err := r.CondForCode(out)
	if err != nil {
		return err
	}
	if !rt.usable(a) || !rt.usable(b) {
		return fmt.Errorf("devirt: endpoint on closed fabric edge (%d->%d)", in, out)
	}
	var net int32
	switch {
	case rt.owner[a] >= 0:
		net = rt.owner[a]
	default:
		net = rt.nets
		rt.nets++
		rt.owner[a] = net
	}
	switch {
	case rt.owner[b] == net:
		return nil // already electrically connected
	case rt.owner[b] >= 0:
		return fmt.Errorf("devirt: endpoints %d and %d belong to different nets", in, out)
	}
	return rt.route(net, b)
}

// route runs deterministic Dijkstra from every conductor of net to the
// target, through free conductors only.
func (rt *Router) route(net int32, target int) error {
	rt.epoch++
	rt.pq.a = rt.pq.a[:0]
	for c, o := range rt.owner {
		if o != net {
			continue
		}
		rt.seenEp[c] = rt.epoch
		rt.dist[c] = 0
		rt.par[c] = -1
		heap.Push(&rt.pq, condDist{0, int32(c)})
	}
	for rt.pq.Len() > 0 {
		cd := heap.Pop(&rt.pq).(condDist)
		c := int(cd.cond)
		if c == target {
			rt.commit(net, target)
			return nil
		}
		if cd.dist > rt.dist[c] {
			continue // stale entry
		}
		for _, e := range rt.g.adj[c] {
			to := int(e.to)
			if to != target {
				if rt.owner[to] != -1 {
					continue // claimed by some net (even ours: tree conductors are seeds)
				}
				if rt.g.class[to] == classOutputPin {
					continue // output pins are driven by their LB
				}
				if !rt.usable(to) {
					continue
				}
			}
			d := rt.dist[c] + rt.condCost(to)
			if rt.seenEp[to] == rt.epoch && d >= rt.dist[to] {
				continue
			}
			rt.seenEp[to] = rt.epoch
			rt.dist[to] = d
			rt.par[to] = int32(c)
			rt.parEdg[to] = e
			heap.Push(&rt.pq, condDist{d, int32(to)})
		}
	}
	return fmt.Errorf("devirt: no path to conductor %d for net %d", target, net)
}

func (rt *Router) condCost(c int) int32 {
	var base int32
	switch rt.g.class[c] {
	case classBoundaryWire:
		base = costBoundary
	case classInputPin, classOutputPin:
		base = costInputPin
	default:
		base = costInternal
	}
	if rt.reserved[c] {
		base += costReserved
	}
	return base
}

// commit claims the found path and drives its switches.
func (rt *Router) commit(net int32, target int) {
	c := target
	for c != -1 && rt.owner[c] != net {
		rt.owner[c] = net
		e := rt.parEdg[c]
		rt.configs[e.member].SetSwitch(int(e.sw), true)
		c = int(rt.par[c])
	}
}

// Owner returns the net id claiming an I/O code's conductor, or -1.
func (rt *Router) Owner(code IOCode) (int, error) {
	c, err := rt.g.r.CondForCode(code)
	if err != nil {
		return 0, err
	}
	return int(rt.owner[c]), nil
}

// Configs returns the decoded per-member configurations (switch bits
// only; logic data is merged separately). Member (i, j) is at index
// j*CW+i. The returned configurations are the router's own state.
func (rt *Router) Configs() []*arch.MacroConfig { return rt.configs }

// condDist orders the Dijkstra frontier by distance, then conductor
// index, which makes the search fully deterministic.
type condDist struct {
	dist int32
	cond int32
}

type condHeap struct{ a []condDist }

func (h *condHeap) Len() int { return len(h.a) }
func (h *condHeap) Less(i, j int) bool {
	if h.a[i].dist != h.a[j].dist {
		return h.a[i].dist < h.a[j].dist
	}
	return h.a[i].cond < h.a[j].cond
}
func (h *condHeap) Swap(i, j int)      { h.a[i], h.a[j] = h.a[j], h.a[i] }
func (h *condHeap) Push(x interface{}) { h.a = append(h.a, x.(condDist)) }
func (h *condHeap) Pop() interface{} {
	last := len(h.a) - 1
	v := h.a[last]
	h.a = h.a[:last]
	return v
}
