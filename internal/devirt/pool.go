package devirt

import "sync"

// routerPool pools blank routers of one region shape. Routers are
// Reset before they are put back, so Get always returns a blank
// router.
type routerPool struct {
	p sync.Pool
}

var pools sync.Map // Region -> *routerPool

func poolFor(r Region) *routerPool {
	if p, ok := pools.Load(r); ok {
		return p.(*routerPool)
	}
	p, _ := pools.LoadOrStore(r, new(routerPool))
	return p.(*routerPool)
}

// AcquireRouter returns a blank router for the region, reusing a
// pooled one of the same shape when available — the steady-state
// decode path allocates nothing. closedW and closedS are set per
// acquisition; they do not partition the pool.
//
// The caller must Release the router when done. Everything reachable
// from the router — in particular the Configs() slice — is invalidated
// by Release; see the Configs ownership contract.
func AcquireRouter(r Region, closedW, closedS bool) (*Router, error) {
	pool := poolFor(r)
	if v := pool.p.Get(); v != nil {
		rt := v.(*Router)
		rt.setEdges(closedW, closedS)
		return rt, nil
	}
	rt, err := NewRouter(r, closedW, closedS)
	if err != nil {
		return nil, err
	}
	rt.pool = pool
	return rt, nil
}

// Release resets the router and returns it to its shape's pool. After
// Release the caller must not touch the router or anything obtained
// from it. Routers built directly with NewRouter are simply reset.
func (rt *Router) Release() {
	rt.Reset()
	if rt.pool != nil {
		rt.pool.p.Put(rt)
	}
}
