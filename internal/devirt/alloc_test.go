package devirt

import (
	"testing"

	"repro/internal/arch"
)

// TestRouteSteadyStateAllocFree pins the zero-allocation property of
// the decode hot path: once a pooled router's scratch has grown to its
// working size, Reset + reserve + route must not allocate at all. A
// regression here fails `go test ./...`, not just the benchmarks.
func TestRouteSteadyStateAllocFree(t *testing.T) {
	if raceEnabled {
		t.Skip("allocation counts are not meaningful under -race")
	}
	r := Region{P: arch.PaperExample(), Nominal: 2, CW: 2, CH: 2}
	rt, err := AcquireRouter(r, false, false)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Release()
	list := [][2]IOCode{
		{r.CodeWest(0, 2), r.CodeEast(0, 2)},
		{r.CodeSouth(1, 4), r.CodeNorth(1, 4)},
		{r.CodePin(0, 0, 0), r.CodePin(1, 1, 2)},
		{r.CodeWest(1, 0), r.CodePin(0, 1, 3)},
		{r.CodeWest(0, 1), r.CodeEast(0, 3)}, // track change via a pin
	}
	decode := func() {
		rt.Reset()
		for _, p := range list {
			if err := rt.Reserve(p[0]); err != nil {
				t.Fatal(err)
			}
			if err := rt.Reserve(p[1]); err != nil {
				t.Fatal(err)
			}
		}
		for _, p := range list {
			if err := rt.RouteConnection(p[0], p[1]); err != nil {
				t.Fatal(err)
			}
		}
	}
	decode() // grow undo lists and bucket capacity once
	if avg := testing.AllocsPerRun(200, decode); avg != 0 {
		t.Errorf("steady-state decode allocates %.2f times per run, want 0", avg)
	}
}

// TestAcquireReleaseSteadyStateAllocs: the pooled acquire/decode/release
// cycle — what every region decode on the runtime load path pays — must
// stay allocation-free at steady state, modulo the rare pool eviction
// under GC pressure (hence the small tolerance rather than zero).
func TestAcquireReleaseSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool deliberately drops items under -race")
	}
	r := Region{P: arch.PaperExample(), Nominal: 2, CW: 2, CH: 2}
	cycle := func() {
		rt, err := AcquireRouter(r, false, false)
		if err != nil {
			t.Fatal(err)
		}
		if err := rt.RouteConnection(r.CodeWest(0, 2), r.CodeEast(0, 2)); err != nil {
			t.Fatal(err)
		}
		rt.Release()
	}
	cycle()
	if avg := testing.AllocsPerRun(200, cycle); avg > 1 {
		t.Errorf("pooled decode cycle allocates %.2f times per run, want ~0", avg)
	}
}
