//go:build !race

package devirt

// raceEnabled mirrors race_on_test.go for normal builds.
const raceEnabled = false
