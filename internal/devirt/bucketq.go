package devirt

import "slices"

// The bucket queue's circular window must exceed the largest single
// conductor step cost, costBoundary + costReserved = 73; 128 keeps the
// index computation a mask.
const (
	numBuckets = 128
	bucketMask = numBuckets - 1
)

// bucketQueue is the monotone priority queue of the region router
// (Dial's algorithm). Distances only grow, and every live entry lies
// within [cur, cur+costBoundary+costReserved], so a circular array of
// numBuckets conductor lists replaces container/heap — no interface
// boxing per frontier entry, O(1) push, and pop amortizes to a scan of
// the tiny distance window.
//
// Determinism: entries of one distance pop in ascending conductor
// order. The bucket is sorted once, when the drain reaches its
// distance; no entry can join a draining bucket because every step
// cost is at least costInternal (> 0). Together with monotone
// distances this reproduces exactly the (dist, cond) ordering of a
// binary heap over condDist pairs, so the bucket queue is a drop-in
// replacement that cannot change decoded bits.
type bucketQueue struct {
	buckets [numBuckets][]int32
	cur     int32 // distance currently draining
	idx     int   // next entry within buckets[cur&bucketMask]
	n       int   // entries across all buckets (including stale ones)
}

// reset empties the queue, retaining bucket capacity.
func (q *bucketQueue) reset() {
	for i := range q.buckets {
		q.buckets[i] = q.buckets[i][:0]
	}
	q.cur, q.idx, q.n = 0, 0, 0
}

// push enqueues conductor c at distance d. d must be >= the distance
// of the last pop (monotonicity), which Dijkstra guarantees.
func (q *bucketQueue) push(d, c int32) {
	b := d & bucketMask
	q.buckets[b] = append(q.buckets[b], c)
	q.n++
}

// pop removes the frontier entry with the smallest (distance,
// conductor) pair, returning ok=false when the queue is empty.
func (q *bucketQueue) pop() (c, d int32, ok bool) {
	for q.n > 0 {
		b := q.buckets[q.cur&bucketMask]
		if q.idx >= len(b) {
			q.buckets[q.cur&bucketMask] = b[:0]
			q.cur++
			q.idx = 0
			continue
		}
		if q.idx == 0 {
			slices.Sort(b)
		}
		c = b[q.idx]
		q.idx++
		q.n--
		return c, q.cur, true
	}
	return 0, 0, false
}
