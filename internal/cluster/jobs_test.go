package cluster_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/server"
)

// waitJob polls GET /jobs/{id} until the job leaves running.
func waitJob(t *testing.T, c *server.Client, id int64) server.JobInfo {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		j, err := c.JobCtx(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if j.Status.Terminal() {
			return j
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("job %d did not reach a terminal status", id)
	return server.JobInfo{}
}

// TestFleetJobScatterGather is the fleet fan-out acceptance: one
// gateway job runs the kind on every node and its progress counters
// are the sum of the per-node ones.
func TestFleetJobScatterGather(t *testing.T) {
	cl, _, _ := newCluster(t, 2, 1, cluster.Options{Replicas: 2})
	ctx := context.Background()

	// A blob on both nodes (replicas=2) gives every node one container
	// to warm.
	data := makeVBS(t, 1, 6)
	if _, err := cl.PutVBS(ctx, data); err != nil {
		t.Fatal(err)
	}

	j, err := cl.StartJobCtx(ctx, "warm", nil)
	if err != nil {
		t.Fatal(err)
	}
	done := waitJob(t, cl, j.ID)
	if done.Status != jobs.StatusDone {
		t.Fatalf("fleet warm = %+v, want done", done)
	}
	for counter, want := range map[string]int64{
		"nodes": 2, "started": 2, "nodes_done": 2, "warmed": 2,
	} {
		if got := done.Progress[counter]; got != want {
			t.Errorf("progress[%s] = %d, want %d (full: %v)", counter, got, want, done.Progress)
		}
	}

	// The merged listing shows the gateway job plus both node halves.
	ls, err := cl.JobsCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	var gwJobs, nodeJobs int
	for _, s := range ls {
		if s.Kind != "warm" {
			continue
		}
		if s.Node == "gateway" {
			gwJobs++
		} else {
			nodeJobs++
		}
	}
	if gwJobs != 1 || nodeJobs != 2 {
		t.Fatalf("merged listing: %d gateway + %d node warm jobs, want 1 + 2 (%+v)", gwJobs, nodeJobs, ls)
	}
}

// TestReconcileAdoptsOrphan loads a task directly on a node (behind
// the gateway's back) and checks reconcile adopts it into the gateway
// task table.
func TestReconcileAdoptsOrphan(t *testing.T) {
	cl, _, nodes := newCluster(t, 2, 1, cluster.Options{Replicas: 2})
	ctx := context.Background()

	data := makeVBS(t, 2, 6)
	orphan, err := nodes[0].client.LoadCtx(ctx, data, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	// The gateway does not know the task yet.
	before, err := cl.TasksCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(before) != 0 {
		t.Fatalf("gateway lists %d task(s) before reconcile, want 0", len(before))
	}

	j, err := cl.StartJobCtx(ctx, "reconcile", nil)
	if err != nil {
		t.Fatal(err)
	}
	done := waitJob(t, cl, j.ID)
	if done.Status != jobs.StatusDone || done.Progress["adopted"] != 1 {
		t.Fatalf("reconcile = %+v, want done with adopted=1", done)
	}

	after, err := cl.TasksCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(after) != 1 || after[0].Digest != orphan.Digest || after[0].Node != nodes[0].url {
		t.Fatalf("gateway tasks after reconcile = %+v, want the adopted orphan %s on %s",
			after, orphan.Digest, nodes[0].url)
	}

	// Idempotent: a second reconcile finds nothing to adopt.
	j2, err := cl.StartJobCtx(ctx, "reconcile", nil)
	if err != nil {
		t.Fatal(err)
	}
	if done2 := waitJob(t, cl, j2.ID); done2.Progress["adopted"] != 0 || done2.Progress["dropped"] != 0 {
		t.Fatalf("second reconcile = %+v, want adopted=0 dropped=0", done2)
	}

	// The adopted task is a real gateway task: unload works through it.
	if err := cl.UnloadCtx(ctx, after[0].ID); err != nil {
		t.Fatalf("unload adopted task: %v", err)
	}
}

// TestReconcileCancelMode checks mode=cancel unloads orphans off the
// node instead of adopting them.
func TestReconcileCancelMode(t *testing.T) {
	cl, _, nodes := newCluster(t, 2, 1, cluster.Options{Replicas: 2})
	ctx := context.Background()

	data := makeVBS(t, 3, 6)
	if _, err := nodes[1].client.LoadCtx(ctx, data, nil, nil, nil); err != nil {
		t.Fatal(err)
	}

	j, err := cl.StartJobCtx(ctx, "reconcile", map[string]string{"mode": "cancel"})
	if err != nil {
		t.Fatal(err)
	}
	done := waitJob(t, cl, j.ID)
	if done.Status != jobs.StatusDone || done.Progress["cancelled"] != 1 {
		t.Fatalf("reconcile cancel = %+v, want done with cancelled=1", done)
	}
	remote, err := nodes[1].client.TasksCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(remote) != 0 {
		t.Fatalf("node still lists %d task(s) after cancel reconcile", len(remote))
	}
}

// TestRebalancerStatsCumulative pins the satellite requirement: the
// rebalancer's counters are process-lifetime cumulative — reading
// Stats never resets them, and restarting the rebalance job never
// resets them — so a Prometheus rate() over the scraped series works.
func TestRebalancerStatsCumulative(t *testing.T) {
	cl, gw, _ := newCluster(t, 2, 1, cluster.Options{Replicas: 2})
	ctx := context.Background()

	data := makeVBS(t, 4, 6)
	if _, err := cl.PutVBS(ctx, data); err != nil {
		t.Fatal(err)
	}

	runPass := func() {
		t.Helper()
		j, err := cl.StartJobCtx(ctx, "rebalance", nil)
		if err != nil {
			t.Fatal(err)
		}
		if done := waitJob(t, cl, j.ID); done.Status != jobs.StatusDone {
			t.Fatalf("rebalance job = %+v, want done", done)
		}
	}

	runPass()
	first := gw.Rebalancer().Stats()
	if first.Passes < 1 || first.BlobsExamined < 1 {
		t.Fatalf("first pass stats = %+v, want passes>=1 examined>=1", first)
	}
	// Reading stats must not reset them.
	if again := gw.Rebalancer().Stats(); again != first {
		t.Fatalf("Stats() is not side-effect-free: %+v then %+v", first, again)
	}

	runPass()
	second := gw.Rebalancer().Stats()
	if second.Passes <= first.Passes {
		t.Fatalf("passes not cumulative across job restarts: %d then %d", first.Passes, second.Passes)
	}
	if second.BlobsExamined < first.BlobsExamined+1 {
		t.Fatalf("blobs examined reset across jobs: %d then %d", first.BlobsExamined, second.BlobsExamined)
	}
	for name, pair := range map[string][2]uint64{
		"copies":  {first.Copies, second.Copies},
		"trims":   {first.Trims, second.Trims},
		"tombs":   {first.TombstonesPropagated, second.TombstonesPropagated},
		"skipped": {first.Skipped, second.Skipped},
		"errors":  {first.Errors, second.Errors},
		"aborted": {first.Aborted, second.Aborted},
	} {
		if pair[1] < pair[0] {
			t.Errorf("%s went backwards: %d then %d", name, pair[0], pair[1])
		}
	}
}

// TestGatewayMetricsEndpoint scrapes the gateway's /metrics and checks
// the families the fleet dashboards (and the smoke/chaos scripts)
// depend on.
func TestGatewayMetricsEndpoint(t *testing.T) {
	cl, _, _ := newCluster(t, 2, 1, cluster.Options{Replicas: 2})
	ctx := context.Background()

	data := makeVBS(t, 5, 6)
	res, err := cl.LoadCtx(ctx, data, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.GetVBSCtx(ctx, res.Digest); err != nil {
		t.Fatal(err)
	}

	samples, err := cl.MetricsCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	find := func(name string, labels map[string]string) float64 {
		t.Helper()
		v, ok := metrics.Find(samples, name, labels)
		if !ok {
			t.Fatalf("metric %s%v not exported", name, labels)
		}
		return v
	}
	if got := find("vbs_gateway_op_duration_seconds_count", map[string]string{"op": "load"}); got != 1 {
		t.Errorf("gateway load op count = %v, want 1", got)
	}
	if got := find("vbs_gateway_op_duration_seconds_count", map[string]string{"op": "vbs_get"}); got != 1 {
		t.Errorf("gateway vbs_get op count = %v, want 1", got)
	}
	if got := find("vbs_cluster_nodes", nil); got != 2 {
		t.Errorf("cluster nodes = %v, want 2", got)
	}
	if got := find("vbs_cluster_alive_nodes", nil); got != 2 {
		t.Errorf("alive nodes = %v, want 2", got)
	}
	if got := find("vbs_gateway_tasks", nil); got != 1 {
		t.Errorf("gateway tasks = %v, want 1", got)
	}
	// Rebalance counters export even before any pass ran.
	if got := find("vbs_rebalance_passes_total", nil); got != 0 {
		t.Errorf("rebalance passes = %v, want 0 (no pass yet)", got)
	}
	// Every defined job kind exports a running gauge, idle included.
	for _, kind := range []string{"rebalance", "reconcile", "scrub", "tombstone-sweep", "warm"} {
		if got := find("vbs_jobs_running", map[string]string{"kind": kind}); got != 0 {
			t.Errorf("jobs running{kind=%s} = %v, want 0", kind, got)
		}
	}
}
