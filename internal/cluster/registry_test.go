package cluster_test

import (
	"errors"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
)

// TestRegistryStateMachine drives a node through
// alive → suspect → down → alive using synchronous probe sweeps
// against a real daemon that we kill and replace.
func TestRegistryStateMachine(t *testing.T) {
	n := newNode(t, 1, server.Options{})
	reg := cluster.NewRegistry([]string{n.url}, nil, time.Hour, time.Second)

	ctx := t.Context()
	reg.ProbeAll(ctx)
	if got := reg.State(n.url); got != cluster.Alive {
		t.Fatalf("state after healthy probe = %v", got)
	}

	n.kill()
	reg.ProbeAll(ctx)
	if got := reg.State(n.url); got != cluster.Suspect {
		t.Fatalf("state after one failed probe = %v, want suspect", got)
	}
	if !reg.Alive(n.url) {
		t.Fatal("suspect node reported not alive: one failure must not eject")
	}
	reg.ProbeAll(ctx)
	if got := reg.State(n.url); got != cluster.Down {
		t.Fatalf("state after two failed probes = %v, want down", got)
	}
	if reg.Alive(n.url) {
		t.Fatal("down node reported alive")
	}

	snap := reg.Snapshot()
	if len(snap) != 1 || snap[0].State != "down" || snap[0].LastError == "" {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// TestRegistryRequestPathDemotion: failures observed on the request
// path demote without waiting for a probe tick, and any successful
// exchange revives.
func TestRegistryRequestPathDemotion(t *testing.T) {
	n := newNode(t, 1, server.Options{})
	reg := cluster.NewRegistry([]string{n.url}, nil, time.Hour, time.Second)
	reg.ProbeAll(t.Context())

	err := errors.New("connection refused")
	reg.ReportFailure(n.url, err)
	if got := reg.State(n.url); got != cluster.Suspect {
		t.Fatalf("state after reported failure = %v", got)
	}
	reg.ReportFailure(n.url, err)
	if got := reg.State(n.url); got != cluster.Down {
		t.Fatalf("state after second reported failure = %v", got)
	}
	reg.ReportSuccess(n.url)
	if got := reg.State(n.url); got != cluster.Alive {
		t.Fatalf("state after reported success = %v", got)
	}

	if got := reg.State("http://unknown:1"); got != cluster.Down {
		t.Fatalf("unknown node state = %v, want down", got)
	}
}

// TestRegistryProbeLoop: the background loop flips a killed node to
// down without any request traffic.
func TestRegistryProbeLoop(t *testing.T) {
	n := newNode(t, 1, server.Options{})
	reg := cluster.NewRegistry([]string{n.url}, nil, 20*time.Millisecond, time.Second)
	reg.ProbeAll(t.Context())
	reg.Start()
	defer reg.Stop()

	n.kill()
	deadline := time.Now().Add(5 * time.Second)
	for reg.State(n.url) != cluster.Down {
		if time.Now().After(deadline) {
			t.Fatal("probe loop never demoted the killed node")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
