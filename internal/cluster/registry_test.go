package cluster_test

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
)

// TestRegistryStateMachine drives a node through
// alive → suspect → down → alive using synchronous probe sweeps
// against a real daemon that we kill and replace.
func TestRegistryStateMachine(t *testing.T) {
	n := newNode(t, 1, server.Options{})
	reg := cluster.NewRegistry([]string{n.url}, nil, time.Hour, time.Second)

	ctx := t.Context()
	reg.ProbeAll(ctx)
	if got := reg.State(n.url); got != cluster.Alive {
		t.Fatalf("state after healthy probe = %v", got)
	}

	n.kill()
	reg.ProbeAll(ctx)
	if got := reg.State(n.url); got != cluster.Suspect {
		t.Fatalf("state after one failed probe = %v, want suspect", got)
	}
	if !reg.Alive(n.url) {
		t.Fatal("suspect node reported not alive: one failure must not eject")
	}
	reg.ProbeAll(ctx)
	if got := reg.State(n.url); got != cluster.Down {
		t.Fatalf("state after two failed probes = %v, want down", got)
	}
	if reg.Alive(n.url) {
		t.Fatal("down node reported alive")
	}

	snap := reg.Snapshot()
	if len(snap) != 1 || snap[0].State != "down" || snap[0].LastError == "" {
		t.Fatalf("snapshot = %+v", snap)
	}
}

// TestRegistryRequestPathDemotion: failures observed on the request
// path demote without waiting for a probe tick, and any successful
// exchange revives.
func TestRegistryRequestPathDemotion(t *testing.T) {
	n := newNode(t, 1, server.Options{})
	reg := cluster.NewRegistry([]string{n.url}, nil, time.Hour, time.Second)
	reg.ProbeAll(t.Context())

	err := errors.New("connection refused")
	reg.ReportFailure(n.url, err)
	if got := reg.State(n.url); got != cluster.Suspect {
		t.Fatalf("state after reported failure = %v", got)
	}
	reg.ReportFailure(n.url, err)
	if got := reg.State(n.url); got != cluster.Down {
		t.Fatalf("state after second reported failure = %v", got)
	}
	reg.ReportSuccess(n.url)
	if got := reg.State(n.url); got != cluster.Alive {
		t.Fatalf("state after reported success = %v", got)
	}

	if got := reg.State("http://unknown:1"); got != cluster.Down {
		t.Fatalf("unknown node state = %v, want down", got)
	}
}

// TestRegistryConcurrentAddRemove hammers runtime membership changes
// against concurrent probe rounds and lookups — the probe loop must
// work off a snapshot of the node set, so this is clean under -race
// (the CI race matrix runs it).
func TestRegistryConcurrentAddRemove(t *testing.T) {
	n := newNode(t, 1, server.Options{})
	reg := cluster.NewRegistry([]string{n.url}, nil, time.Hour, 50*time.Millisecond)

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			name := fmt.Sprintf("http://127.0.0.1:%d", 40000+w)
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if i%2 == 0 {
					reg.Add(name)
				} else {
					reg.Remove(name)
				}
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			reg.ProbeAll(context.Background())
			reg.Names()
			reg.Client(n.url)
			reg.Snapshot()
			reg.ReportSuccess(n.url)
		}
	}()
	time.Sleep(200 * time.Millisecond)
	close(stop)
	wg.Wait()

	if reg.Client(n.url) == nil {
		t.Fatal("original node lost during concurrent churn")
	}
	if !reg.Add("http://127.0.0.1:49999") {
		t.Fatal("add after churn failed")
	}
	if !reg.Remove("http://127.0.0.1:49999") {
		t.Fatal("remove after churn failed")
	}
}

// TestRegistryProbeLoop: the background loop flips a killed node to
// down without any request traffic.
func TestRegistryProbeLoop(t *testing.T) {
	n := newNode(t, 1, server.Options{})
	reg := cluster.NewRegistry([]string{n.url}, nil, 20*time.Millisecond, time.Second)
	reg.ProbeAll(t.Context())
	reg.Start()
	defer reg.Stop()

	n.kill()
	deadline := time.Now().Add(5 * time.Second)
	for reg.State(n.url) != cluster.Down {
		if time.Now().After(deadline) {
			t.Fatal("probe loop never demoted the killed node")
		}
		time.Sleep(10 * time.Millisecond)
	}
}
