package cluster

import (
	"encoding/base64"
	"fmt"
	"net/http"
	"sync"
	"time"

	"repro/internal/repo"
	"repro/internal/server"
)

// handleBatch is the gateway's POST /tasks:batch: ops are partitioned
// by owning node, sub-batches fan out concurrently (one stream RPC or
// one HTTP POST per node instead of one per op), and per-op results
// come back in request order. Loaded blobs are then replicated over
// the streams exactly like single loads.
func (g *Gateway) handleBatch(w http.ResponseWriter, r *http.Request) {
	defer g.observeOp("batch", time.Now())
	var req server.BatchRequest
	if !g.decodeBody(w, r, &req) {
		return
	}
	if len(req.Ops) == 0 {
		writeError(w, http.StatusBadRequest, "empty batch")
		return
	}
	// Enforce the node-side cap here, before partitioning: a sub-batch
	// can only be as large as the whole request, so no fan-out can trip
	// a node's wholesale 400 that would fail sibling ops too.
	if len(req.Ops) > server.MaxBatchOps {
		writeError(w, http.StatusBadRequest, "batch of %d ops exceeds limit %d", len(req.Ops), server.MaxBatchOps)
		return
	}
	g.transport.ObserveBatch(len(req.Ops))
	g.proxied.Add(1)

	results := make([]server.BatchResult, len(req.Ops))
	type sub struct {
		idx []int
		ops []server.BatchOp
	}
	subs := map[string]*sub{}
	assign := func(node string, i int, op server.BatchOp) {
		sb := subs[node]
		if sb == nil {
			sb = &sub{}
			subs[node] = sb
		}
		sb.idx = append(sb.idx, i)
		sb.ops = append(sb.ops, op)
	}
	// blobs keeps each load's decoded container for post-placement
	// replication; nodeOf records where an op was routed; unloads maps
	// result index to the gateway task whose mapping must go.
	blobs := map[int][]byte{}
	nodeOf := map[int]string{}
	unloads := map[int]*gwTask{}
	var topo []nodeFabrics

	for i, op := range req.Ops {
		kind := op.Op
		if kind == "" && op.VBS != "" {
			kind = "load"
		}
		switch kind {
		case "load":
			data, err := base64.StdEncoding.DecodeString(op.VBS)
			if err != nil {
				results[i] = server.BatchResult{Status: http.StatusBadRequest, Error: fmt.Sprintf("bad vbs base64: %v", err)}
				continue
			}
			var target string
			if op.Fabric != nil {
				// A pinned fleet-global fabric names its node outright.
				if topo == nil {
					if topo, err = g.topology(r.Context()); err != nil {
						results[i] = server.BatchResult{Status: http.StatusServiceUnavailable, Error: err.Error()}
						continue
					}
				}
				node, local, ok := localFabric(topo, *op.Fabric)
				if !ok {
					results[i] = server.BatchResult{Status: http.StatusBadRequest, Error: fmt.Sprintf("fabric %d out of range", *op.Fabric)}
					continue
				}
				lf := local
				op.Fabric = &lf
				target = node
			} else {
				own := g.owners(repo.DigestOf(data))
				if len(own) == 0 {
					results[i] = server.BatchResult{Status: http.StatusServiceUnavailable, Error: "cluster: no node available for load"}
					continue
				}
				target = own[0]
			}
			blobs[i] = data
			nodeOf[i] = target
			assign(target, i, op)
		case "get":
			d, err := repo.ParseDigest(op.Digest)
			if err != nil {
				results[i] = server.BatchResult{Status: http.StatusBadRequest, Error: err.Error()}
				continue
			}
			own := g.owners(d)
			if len(own) == 0 {
				results[i] = server.BatchResult{Status: http.StatusServiceUnavailable, Error: "cluster: no node available for get"}
				continue
			}
			nodeOf[i] = own[0]
			assign(own[0], i, op)
		case "unload":
			g.mu.Lock()
			t, ok := g.tasks[op.ID]
			g.mu.Unlock()
			if !ok {
				results[i] = server.BatchResult{Status: http.StatusNotFound, Error: fmt.Sprintf("task %d not loaded", op.ID)}
				continue
			}
			unloads[i] = t
			op.ID = t.remote
			assign(t.node, i, op)
		default:
			results[i] = server.BatchResult{Status: http.StatusBadRequest, Error: fmt.Sprintf("unknown batch op %q", op.Op)}
		}
	}

	var wg sync.WaitGroup
	for node, sb := range subs {
		wg.Add(1)
		go func(node string, sb *sub) {
			defer wg.Done()
			resp, err := g.nodeBatch(r.Context(), node, server.BatchRequest{Ops: sb.ops})
			if err != nil {
				status := server.StatusCode(err)
				if status == 0 {
					// Transport failure (node down, stream cut mid-call):
					// the whole sub-batch outcome is unknown.
					status = http.StatusServiceUnavailable
				}
				for _, i := range sb.idx {
					results[i] = server.BatchResult{Status: status, Error: server.ErrorMessage(err)}
				}
				return
			}
			for k, i := range sb.idx {
				if k < len(resp.Results) {
					results[i] = resp.Results[k]
				} else {
					results[i] = server.BatchResult{Status: http.StatusBadGateway, Error: "cluster: node returned a short batch"}
				}
			}
		}(node, sb)
	}
	wg.Wait()

	if topo == nil {
		topo, _ = g.topology(r.Context())
	}
	// Post-pass per op: register placements (and translate fabric
	// indices to fleet-global), verify relayed get payloads against
	// their content address, drop unloaded task mappings, and collect
	// each distinct admitted blob for replication.
	type replJob struct {
		data   []byte
		holder string
	}
	repl := map[string]replJob{}
	for i := range results {
		if t, ok := unloads[i]; ok {
			if results[i].Status == http.StatusNoContent || results[i].Status == http.StatusNotFound {
				// 404 means the node forgot the task (restart): the
				// region is free either way, so the mapping goes too.
				g.mu.Lock()
				delete(g.tasks, t.id)
				g.mu.Unlock()
			}
			continue
		}
		if results[i].Status == http.StatusOK && results[i].VBS != "" {
			data, err := base64.StdEncoding.DecodeString(results[i].VBS)
			d, perr := repo.ParseDigest(req.Ops[i].Digest)
			if err != nil || perr != nil || repo.DigestOf(data) != d {
				results[i] = server.BatchResult{Status: http.StatusBadGateway,
					Error: fmt.Sprintf("cluster: node %s served corrupt bytes", nodeOf[i])}
				continue
			}
			g.scheduleRepair(d, data, nodeOf[i])
			continue
		}
		data, isLoad := blobs[i]
		if !isLoad || results[i].Status != http.StatusCreated || results[i].Load == nil {
			continue
		}
		lr := results[i].Load
		node := nodeOf[i]
		g.mu.Lock()
		id := g.nextID
		g.nextID++
		g.tasks[id] = &gwTask{id: id, node: node, remote: lr.ID, digest: lr.Digest}
		g.mu.Unlock()
		lr.ID = id
		if gi := globalFabric(topo, node, lr.Fabric); gi >= 0 {
			lr.Fabric = gi
		}
		if _, seen := repl[lr.Digest]; !seen {
			repl[lr.Digest] = replJob{data: data, holder: node}
		}
	}
	for _, job := range repl {
		d := repo.DigestOf(job.data)
		g.replicate(r.Context(), job.data, g.curRing().Lookup(d, g.replicas), job.holder)
	}
	writeJSON(w, http.StatusOK, server.BatchResponse{Results: results})
}
