package cluster

import (
	"fmt"
	"net/http"
	"net/url"
	"strings"
)

// Runtime membership. The registry is the authoritative member set —
// active nodes plus draining ones — while the ring carries only the
// active members (lookups must not route new writes onto a node being
// emptied). Every change swaps the ring copy-on-write, bumps the
// membership version, and kicks the rebalancer; requests in flight
// keep routing on the ring snapshot they loaded.
//
// Lifecycle: POST /cluster/nodes joins a node (the rebalancer then
// copies its share of the key space onto it); POST
// .../{name}/drain takes it off the ring so the rebalancer can empty
// it under zero new writes; DELETE /cluster/nodes/{name} forgets it.
// Drain → remove is the graceful decommission path; removing an
// active node directly is the "it is already gone" path (the
// rebalancer re-replicates from the surviving copies).

// MemberInfo is one node in the membership listing.
type MemberInfo struct {
	Name string `json:"name"`
	// Mode is "active" (on the ring) or "draining" (registry-only,
	// being emptied).
	Mode string `json:"mode"`
	// State is the probe-loop health: alive, suspect, down.
	State string `json:"state"`
}

// MembershipResponse is the GET /cluster/nodes body.
type MembershipResponse struct {
	// Version counts membership changes on this gateway since boot.
	Version uint64 `json:"version"`
	// RingVersion identifies the active-member ring (see
	// ClusterStats.RingVersion).
	RingVersion string       `json:"ring_version"`
	Nodes       []MemberInfo `json:"nodes"`
}

// AddNodeRequest is the POST /cluster/nodes body.
type AddNodeRequest struct {
	Node string `json:"node"`
}

// memberErr is an admin-verb failure carrying the HTTP status the
// handler should answer with.
type memberErr struct {
	code int
	msg  string
}

func (e *memberErr) Error() string { return e.msg }

func memberErrf(code int, format string, args ...any) error {
	return &memberErr{code: code, msg: fmt.Sprintf(format, args...)}
}

// writeMemberErr maps an admin-verb error onto the reply.
func writeMemberErr(w http.ResponseWriter, err error) {
	if me, ok := err.(*memberErr); ok {
		writeError(w, me.code, "%s", me.msg)
		return
	}
	writeError(w, http.StatusInternalServerError, "%v", err)
}

// normalizeNodeURL validates and canonicalizes a node base URL.
func normalizeNodeURL(raw string) (string, error) {
	raw = strings.TrimRight(strings.TrimSpace(raw), "/")
	u, err := url.Parse(raw)
	if err != nil || (u.Scheme != "http" && u.Scheme != "https") || u.Host == "" || u.Path != "" {
		return "", memberErrf(http.StatusBadRequest, "node must be an http(s) base URL, got %q", raw)
	}
	return raw, nil
}

// bumpMembership records a change: new ring (may be the current one
// when only the mode changed), version bump, rebalance kick. Caller
// holds mshipMu.
func (g *Gateway) bumpMembership(nr *Ring) {
	g.ring.Store(nr)
	g.mshipVer.Add(1)
	g.reb.Kick()
}

// MembershipVersion returns the change count (see
// ClusterStats.MembershipVersion).
func (g *Gateway) MembershipVersion() uint64 { return g.mshipVer.Load() }

// drainingSet snapshots the draining marks.
func (g *Gateway) drainingSet() map[string]bool {
	g.mshipMu.Lock()
	defer g.mshipMu.Unlock()
	out := make(map[string]bool, len(g.draining))
	for n := range g.draining {
		out[n] = true
	}
	return out
}

// AddNode joins a node (base URL) to the cluster at runtime: it enters
// the registry (probed from the next round, optimistically alive until
// then) and the ring, and the rebalancer starts copying its share of
// the key space onto it. Re-adding a draining member cancels the
// drain. Adding a current active member is a conflict.
func (g *Gateway) AddNode(rawURL string) error {
	name, err := normalizeNodeURL(rawURL)
	if err != nil {
		return err
	}
	g.mshipMu.Lock()
	defer g.mshipMu.Unlock()
	if g.draining[name] {
		delete(g.draining, name)
		g.bumpMembership(g.curRing().WithNode(name))
		return nil
	}
	if !g.reg.Add(name) {
		return memberErrf(http.StatusConflict, "node %s already a member", name)
	}
	g.bumpMembership(g.curRing().WithNode(name))
	return nil
}

// DrainNode starts a graceful decommission: the node leaves the ring
// (no new writes route to it) but stays in the registry so the
// rebalancer can copy its blobs to their new owners and trim it empty.
// Draining the last active node is refused; draining an already-
// draining node is a no-op.
func (g *Gateway) DrainNode(name string) error {
	g.mshipMu.Lock()
	defer g.mshipMu.Unlock()
	if g.draining[name] {
		return nil
	}
	ring := g.curRing()
	if !ring.Has(name) {
		return memberErrf(http.StatusNotFound, "node %s not a member", name)
	}
	if ring.Len() == 1 {
		return memberErrf(http.StatusConflict, "cannot drain the last active node")
	}
	g.draining[name] = true
	g.bumpMembership(ring.WithoutNode(name))
	return nil
}

// RemoveNode forgets a member entirely: off the ring (if still
// active), out of the registry, its gateway task mappings and fabric
// slice dropped. Removing the last active node is refused.
func (g *Gateway) RemoveNode(name string) error {
	g.mshipMu.Lock()
	defer g.mshipMu.Unlock()
	ring := g.curRing()
	active := ring.Has(name)
	if !active && !g.draining[name] {
		return memberErrf(http.StatusNotFound, "node %s not a member", name)
	}
	if active && ring.Len() == 1 {
		return memberErrf(http.StatusConflict, "cannot remove the last active node")
	}
	g.reg.Remove(name)
	g.streams.drop(name)
	delete(g.draining, name)
	g.mu.Lock()
	delete(g.fabCounts, name)
	for id, t := range g.tasks {
		if t.node == name {
			delete(g.tasks, id)
		}
	}
	g.mu.Unlock()
	if active {
		ring = ring.WithoutNode(name)
	}
	g.bumpMembership(ring)
	return nil
}

// Members lists the membership table.
func (g *Gateway) Members() MembershipResponse {
	draining := g.drainingSet()
	out := MembershipResponse{
		Version:     g.mshipVer.Load(),
		RingVersion: ringVersionString(g.curRing()),
	}
	for _, info := range g.reg.Snapshot() {
		mode := "active"
		if draining[info.Name] {
			mode = "draining"
		}
		out.Nodes = append(out.Nodes, MemberInfo{Name: info.Name, Mode: mode, State: info.State})
	}
	return out
}

// resolveNode maps an admin-supplied {name} onto a member name: exact
// match first, then by URL host so operators can say "127.0.0.1:9000"
// instead of path-escaping "http://127.0.0.1:9000".
func (g *Gateway) resolveNode(raw string) string {
	names := g.reg.Names()
	for _, n := range names {
		if n == raw {
			return raw
		}
	}
	for _, n := range names {
		if u, err := url.Parse(n); err == nil && u.Host == raw {
			return n
		}
	}
	return raw
}

func (g *Gateway) handleMembers(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, g.Members())
}

func (g *Gateway) handleAddNode(w http.ResponseWriter, r *http.Request) {
	var req AddNodeRequest
	if !g.decodeBody(w, r, &req) {
		return
	}
	if err := g.AddNode(req.Node); err != nil {
		writeMemberErr(w, err)
		return
	}
	writeJSON(w, http.StatusCreated, g.Members())
}

func (g *Gateway) handleDrainNode(w http.ResponseWriter, r *http.Request) {
	name := g.resolveNode(r.PathValue("name"))
	if err := g.DrainNode(name); err != nil {
		writeMemberErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, g.Members())
}

func (g *Gateway) handleRemoveNode(w http.ResponseWriter, r *http.Request) {
	name := g.resolveNode(r.PathValue("name"))
	if err := g.RemoveNode(name); err != nil {
		writeMemberErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, g.Members())
}

func (g *Gateway) handleRebalance(w http.ResponseWriter, r *http.Request) {
	g.reb.Kick()
	writeJSON(w, http.StatusAccepted, g.reb.Stats())
}
