package cluster_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/server"
)

// TestGatewayAllReplicasDown503: when every backend is gone, blob
// reads and loads must fail fast with a clear 503 — not a generic 502
// and never a hang. Regression for the chaos nodekill worst case.
func TestGatewayAllReplicasDown503(t *testing.T) {
	cl, _, nodes := newCluster(t, 3, 1, cluster.Options{Replicas: 2})
	data := makeVBS(t, 71, 10)
	put, err := cl.PutVBS(context.Background(), data)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		n.kill()
	}

	_, err = cl.GetVBSCtx(t.Context(), put.Digest)
	if code := server.StatusCode(err); code != 503 {
		t.Fatalf("GetVBS with all nodes down: %v (code %d), want 503", err, code)
	}
	if msg := server.ErrorMessage(err); !strings.Contains(msg, "no replica") {
		t.Fatalf("GetVBS 503 message not diagnostic: %q", msg)
	}

	_, err = cl.LoadCtx(t.Context(), data, nil, nil, nil)
	if code := server.StatusCode(err); code != 503 {
		t.Fatalf("Load with all nodes down: %v (code %d), want 503", err, code)
	}
}

// TestGatewayReadRepairConvergence pins the invariant the nodekill
// chaos recipe checks, property-style: whichever single replica loses
// a blob — primary or any secondary — gateway reads bring the replica
// count back to R.
func TestGatewayReadRepairConvergence(t *testing.T) {
	const replicas = 2
	cl, gw, nodes := newCluster(t, 3, 1, cluster.Options{Replicas: replicas})
	byURL := make(map[string]*testNode, len(nodes))
	for _, n := range nodes {
		byURL[n.url] = n
	}

	for victim := 0; victim < replicas; victim++ {
		data := makeVBS(t, int64(100+victim), 10)
		put, err := cl.PutVBS(context.Background(), data)
		if err != nil {
			t.Fatal(err)
		}
		holders := nodesHolding(t, nodes, put.Digest)
		if len(holders) != replicas {
			t.Fatalf("victim %d: blob on %d node(s) after put, want %d", victim, len(holders), replicas)
		}

		// Delete the blob from one replica directly (the node's own
		// API, behind the gateway's back) — replica loss in miniature.
		if err := byURL[holders[victim]].client.DeleteVBSCtx(t.Context(), put.Digest); err != nil {
			t.Fatalf("victim %d: node-local delete: %v", victim, err)
		}
		if h := nodesHolding(t, nodes, put.Digest); len(h) != replicas-1 {
			t.Fatalf("victim %d: blob on %d node(s) after delete, want %d", victim, len(h), replicas-1)
		}

		// N gateway reads must serve byte-identical data and converge
		// the replica set back to R. The repair is asynchronous, so
		// poll with a deadline.
		deadline := time.Now().Add(10 * time.Second)
		for {
			got, err := cl.GetVBSCtx(t.Context(), put.Digest)
			if err != nil {
				t.Fatalf("victim %d: GetVBS during repair: %v", victim, err)
			}
			if string(got) != string(data) {
				t.Fatalf("victim %d: gateway served %d bytes, want %d byte-identical", victim, len(got), len(data))
			}
			if len(nodesHolding(t, nodes, put.Digest)) == replicas {
				break
			}
			if time.Now().After(deadline) {
				t.Fatalf("victim %d: replica count did not converge to %d; holders=%v",
					victim, replicas, nodesHolding(t, nodes, put.Digest))
			}
			time.Sleep(20 * time.Millisecond)
		}
	}

	// The sweeps that found nothing missing must not count as repairs.
	var st cluster.StatsResponse
	if _, err := getJSON(cl, "/stats", &st); err != nil {
		t.Fatal(err)
	}
	if st.Cluster.ReadRepairs < replicas {
		t.Fatalf("read_repairs = %d, want >= %d", st.Cluster.ReadRepairs, replicas)
	}
	if st.Cluster.RepairChecks < st.Cluster.ReadRepairs {
		t.Fatalf("repair_checks (%d) < read_repairs (%d)", st.Cluster.RepairChecks, st.Cluster.ReadRepairs)
	}
	_ = gw
}

// TestGatewayRepairDoesNotResurrectDeleted: a gateway DELETE followed
// by reads of other blobs must not re-replicate the deleted digest
// (the repair sweep anchor-checks the serving node).
func TestGatewayRepairDoesNotResurrectDeleted(t *testing.T) {
	cl, gw, nodes := newCluster(t, 3, 1, cluster.Options{Replicas: 2})
	data := makeVBS(t, 131, 10)
	put, err := cl.PutVBS(context.Background(), data)
	if err != nil {
		t.Fatal(err)
	}
	// Reads before the delete may schedule sweeps; let them drain via
	// Stop at cleanup. Delete through the gateway: every node drops it.
	if _, err := cl.GetVBSCtx(t.Context(), put.Digest); err != nil {
		t.Fatal(err)
	}
	if err := cl.DeleteVBSCtx(t.Context(), put.Digest); err != nil {
		t.Fatalf("gateway delete: %v", err)
	}
	gw.Stop() // drain any in-flight sweep before checking
	if h := nodesHolding(t, nodes, put.Digest); len(h) != 0 {
		t.Fatalf("deleted blob resurrected on %v", h)
	}
}
