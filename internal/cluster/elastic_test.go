package cluster_test

import (
	"bytes"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/repo"
	"repro/internal/server"
)

// newElasticCluster is newCluster with disk-backed nodes (tombstones
// need a repository) and a fast rebalance cadence, returning the admin
// client alongside.
func newElasticCluster(t *testing.T, n int, opts cluster.Options) (*server.Client, *cluster.Admin, *cluster.Gateway, []*testNode) {
	t.Helper()
	nodes := make([]*testNode, n)
	urls := make([]string, n)
	for i := range nodes {
		nodes[i] = newNode(t, 1, server.Options{DataDir: t.TempDir()})
		urls[i] = nodes[i].url
	}
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = 100 * time.Millisecond
	}
	if opts.ProbeTimeout == 0 {
		opts.ProbeTimeout = time.Second
	}
	if opts.RebalanceInterval == 0 {
		opts.RebalanceInterval = 50 * time.Millisecond
	}
	gw, err := cluster.New(urls, opts)
	if err != nil {
		t.Fatal(err)
	}
	gw.Start(t.Context())
	t.Cleanup(gw.Stop)
	hs := httptest.NewServer(gw.Handler())
	t.Cleanup(hs.Close)
	return server.NewClient(hs.URL, nil), cluster.NewAdmin(hs.URL, nil), gw, nodes
}

// waitConverged polls until every digest's holder set equals its ring
// owner set — the rebalancer's fixpoint.
func waitConverged(t *testing.T, gw *cluster.Gateway, nodes []*testNode, digests []string, replicas int) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		converged := true
		for _, hex := range digests {
			d, err := repo.ParseDigest(hex)
			if err != nil {
				t.Fatal(err)
			}
			want := map[string]bool{}
			for _, o := range gw.Ring().Lookup(d, replicas) {
				want[o] = true
			}
			holders := nodesHolding(t, nodes, hex)
			if len(holders) != len(want) {
				converged = false
				break
			}
			for _, h := range holders {
				if !want[h] {
					converged = false
				}
			}
			if !converged {
				break
			}
		}
		if converged {
			return
		}
		if time.Now().After(deadline) {
			for _, hex := range digests {
				d, _ := repo.ParseDigest(hex)
				t.Logf("digest %s: holders %v, owners %v",
					hex[:12], nodesHolding(t, nodes, hex), gw.Ring().Lookup(d, replicas))
			}
			t.Fatal("cluster never converged to ring ownership")
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestClusterJoinNodeRebalances is the elastic-membership acceptance
// path: a node joins an active cluster at runtime and the rebalancer
// copies its share of the key space onto it (and trims the replicas
// that moved off the old owners) with zero client-visible errors.
func TestClusterJoinNodeRebalances(t *testing.T) {
	cl, admin, gw, nodes := newElasticCluster(t, 2, cluster.Options{Replicas: 2})
	ctx := t.Context()

	var digests []string
	blobs := map[string][]byte{}
	for seed := int64(1); seed <= 8; seed++ {
		data := makeVBS(t, seed, 5)
		res, err := cl.PutVBS(ctx, data)
		if err != nil {
			t.Fatalf("put seed %d: %v", seed, err)
		}
		digests = append(digests, res.Digest)
		blobs[res.Digest] = data
	}

	oldRing := gw.Ring().Version()
	joined := newNode(t, 1, server.Options{DataDir: t.TempDir()})
	nodes = append(nodes, joined)
	ms, err := admin.AddNode(ctx, joined.url)
	if err != nil {
		t.Fatalf("AddNode: %v", err)
	}
	if len(ms.Nodes) != 3 || ms.Version == 0 {
		t.Fatalf("membership after join = %+v", ms)
	}
	if !gw.Ring().Has(joined.url) || gw.Ring().Version() == oldRing {
		t.Fatal("join did not change the ring")
	}

	// Reads must keep working while the rebalancer is mid-copy.
	for hex, want := range blobs {
		got, err := cl.GetVBSCtx(ctx, hex)
		if err != nil {
			t.Fatalf("get %s during rebalance: %v", hex[:12], err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("digest %s served differently during rebalance", hex[:12])
		}
	}

	waitConverged(t, gw, nodes, digests, 2)

	var st cluster.StatsResponse
	if _, err := getJSON(cl, "/stats", &st); err != nil {
		t.Fatal(err)
	}
	rb := st.Cluster.Rebalance
	if rb.Passes == 0 || rb.BlobsExamined == 0 {
		t.Errorf("rebalance stats not advancing: %+v", rb)
	}
	if st.Cluster.MembershipVersion == 0 {
		t.Error("membership_version not advancing")
	}
	for _, ns := range st.Cluster.Nodes {
		if ns.Mode != "active" {
			t.Errorf("node %s mode %q after plain join", ns.Name, ns.Mode)
		}
	}

	// Duplicate join is a conflict, not a silent reset.
	if _, err := admin.AddNode(ctx, joined.url); err == nil || !strings.Contains(err.Error(), "409") {
		t.Errorf("duplicate AddNode = %v, want 409", err)
	}
	if _, err := admin.AddNode(ctx, "not a url"); err == nil || !strings.Contains(err.Error(), "400") {
		t.Errorf("malformed AddNode = %v, want 400", err)
	}
}

// TestClusterDrainAndRemoveNode decommissions a member gracefully:
// drain takes it off the ring, the rebalancer empties it, reads keep
// succeeding throughout, and remove forgets it.
func TestClusterDrainAndRemoveNode(t *testing.T) {
	cl, admin, gw, nodes := newElasticCluster(t, 3, cluster.Options{Replicas: 2})
	ctx := t.Context()

	var digests []string
	blobs := map[string][]byte{}
	for seed := int64(20); seed < 26; seed++ {
		data := makeVBS(t, seed, 5)
		res, err := cl.PutVBS(ctx, data)
		if err != nil {
			t.Fatal(err)
		}
		digests = append(digests, res.Digest)
		blobs[res.Digest] = data
	}

	// Drain by bare host:port — the admin surface resolves it.
	victim := nodes[0]
	host := strings.TrimPrefix(victim.url, "http://")
	ms, err := admin.DrainNode(ctx, host)
	if err != nil {
		t.Fatalf("DrainNode(%q): %v", host, err)
	}
	var mode string
	for _, n := range ms.Nodes {
		if n.Name == victim.url {
			mode = n.Mode
		}
	}
	if mode != "draining" {
		t.Fatalf("victim mode %q after drain, membership %+v", mode, ms)
	}
	if gw.Ring().Has(victim.url) {
		t.Fatal("draining node still on the ring")
	}

	// Reads keep succeeding while the victim still holds sole copies
	// of nothing (R=2) — and even its copies are reachable via the
	// scatter fallback until trimmed.
	for hex, want := range blobs {
		got, err := cl.GetVBSCtx(ctx, hex)
		if err != nil {
			t.Fatalf("get %s during drain: %v", hex[:12], err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("digest %s served differently during drain", hex[:12])
		}
	}

	// The rebalancer must empty the draining node completely.
	deadline := time.Now().Add(20 * time.Second)
	for {
		left, err := victim.client.ListVBSCtx(ctx)
		if err != nil {
			t.Fatal(err)
		}
		if len(left) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("draining node still holds %d blob(s)", len(left))
		}
		time.Sleep(20 * time.Millisecond)
	}
	waitConverged(t, gw, nodes, digests, 2)

	if _, err := admin.RemoveNode(ctx, victim.url); err != nil {
		t.Fatalf("RemoveNode: %v", err)
	}
	ms, err = admin.Nodes(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ms.Nodes) != 2 {
		t.Fatalf("membership after remove = %+v", ms)
	}
	for hex, want := range blobs {
		got, err := cl.GetVBSCtx(ctx, hex)
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("get %s after remove: %v", hex[:12], err)
		}
	}
	if _, err := admin.RemoveNode(ctx, victim.url); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("double remove = %v, want 404", err)
	}
}

// TestClusterDeleteTombstone pins the gateway-level delete contract:
// DELETE tombstones fleet-wide, reads answer 410 (not a resurrecting
// scatter hit), and an explicit re-put through the gateway lifts it.
func TestClusterDeleteTombstone(t *testing.T) {
	cl, _, _, nodes := newElasticCluster(t, 2, cluster.Options{Replicas: 2})
	ctx := t.Context()

	data := makeVBS(t, 31, 5)
	res, err := cl.PutVBS(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := cl.DeleteVBSCtx(ctx, res.Digest); err != nil {
		t.Fatalf("delete: %v", err)
	}
	if _, err := cl.GetVBSCtx(ctx, res.Digest); err == nil || !strings.Contains(err.Error(), "410") {
		t.Fatalf("get after delete = %v, want 410", err)
	}
	for _, n := range nodes {
		ts, err := n.client.Tombstones(ctx)
		if err != nil || len(ts) != 1 {
			t.Fatalf("node %s tombstones = %+v, %v", n.url, ts, err)
		}
	}

	// An explicit write through the gateway is user intent: it lifts
	// the tombstone everywhere it lands.
	if _, err := cl.PutVBS(ctx, data); err != nil {
		t.Fatalf("re-put after delete: %v", err)
	}
	got, err := cl.GetVBSCtx(ctx, res.Digest)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("get after re-put: %v", err)
	}
}

// TestRebalancerHonorsTombstones is the resurrection acceptance test:
// a tombstone on ANY node — even one that never held the blob — makes
// the rebalancer propagate the delete instead of re-replicating, so a
// blob deleted mid-rebalance never resurfaces.
func TestRebalancerHonorsTombstones(t *testing.T) {
	cl, admin, _, nodes := newElasticCluster(t, 3, cluster.Options{Replicas: 2})
	ctx := t.Context()

	data := makeVBS(t, 41, 5)
	res, err := cl.PutVBS(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	holders := nodesHolding(t, nodes, res.Digest)
	if len(holders) != 2 {
		t.Fatalf("blob on %d node(s), want 2", len(holders))
	}
	isHolder := map[string]bool{}
	for _, h := range holders {
		isHolder[h] = true
	}

	// Tombstone the digest on the one node that does NOT hold it (an
	// absent-delete records the tombstone and answers 404) — the shape
	// a delete fan-out leaves when a copy was in flight.
	for _, n := range nodes {
		if isHolder[n.url] {
			continue
		}
		if err := n.client.DeleteVBSCtx(ctx, res.Digest); server.StatusCode(err) != 404 {
			t.Fatalf("absent delete on %s = %v, want 404", n.url, err)
		}
	}

	if _, err := admin.Rebalance(ctx); err != nil {
		t.Fatalf("rebalance kick: %v", err)
	}
	deadline := time.Now().Add(20 * time.Second)
	for {
		if len(nodesHolding(t, nodes, res.Digest)) == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("tombstoned blob still held by %v", nodesHolding(t, nodes, res.Digest))
		}
		time.Sleep(20 * time.Millisecond)
	}
	if _, err := cl.GetVBSCtx(ctx, res.Digest); err == nil {
		t.Fatal("tombstoned blob resurfaced through the gateway")
	}
	var st cluster.StatsResponse
	if _, err := getJSON(cl, "/stats", &st); err != nil {
		t.Fatal(err)
	}
	if st.Cluster.Rebalance.TombstonesPropagated == 0 {
		t.Errorf("tombstones_propagated = 0: %+v", st.Cluster.Rebalance)
	}
}

// TestClusterRetriesCounter pins the per-hop retry satellite: with
// RetryAttempts > 1 a dead node's transport failures are retried with
// backoff (probes and idempotent hops alike) and surface in the
// `retries` stats counter, while reads keep succeeding via failover.
func TestClusterRetriesCounter(t *testing.T) {
	cl, _, _, nodes := newElasticCluster(t, 2, cluster.Options{
		Replicas:      2,
		RetryAttempts: 2,
		RetryBackoff:  time.Millisecond,
	})
	ctx := t.Context()

	data := makeVBS(t, 51, 5)
	res, err := cl.PutVBS(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	nodes[0].kill()

	got, err := cl.GetVBSCtx(ctx, res.Digest)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("get after kill: %v", err)
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		var st cluster.StatsResponse
		if _, err := getJSON(cl, "/stats", &st); err != nil {
			t.Fatal(err)
		}
		if st.Cluster.Retries > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("retries counter never advanced against a dead node")
		}
		time.Sleep(20 * time.Millisecond)
	}
}
