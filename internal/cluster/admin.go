package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
)

// Admin is a thin client for the gateway's cluster-admin endpoints
// (membership and rebalance control) — the surface behind the vbsgw
// `node` and `rebalance` verbs.
type Admin struct {
	base string
	hc   *http.Client
}

// NewAdmin targets a gateway at base (e.g. "http://localhost:8930").
// httpClient may be nil for http.DefaultClient.
func NewAdmin(base string, httpClient *http.Client) *Admin {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Admin{base: base, hc: httpClient}
}

func (a *Admin) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, a.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := a.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var er struct {
			Error string `json:"error"`
		}
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error != "" {
			msg = er.Error
		}
		return fmt.Errorf("gateway: %d: %s", resp.StatusCode, msg)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// Nodes lists the membership table.
func (a *Admin) Nodes(ctx context.Context) (MembershipResponse, error) {
	var out MembershipResponse
	err := a.do(ctx, http.MethodGet, "/cluster/nodes", nil, &out)
	return out, err
}

// AddNode joins a node (base URL) to the cluster.
func (a *Admin) AddNode(ctx context.Context, node string) (MembershipResponse, error) {
	var out MembershipResponse
	err := a.do(ctx, http.MethodPost, "/cluster/nodes", AddNodeRequest{Node: node}, &out)
	return out, err
}

// DrainNode starts a graceful decommission of a member.
func (a *Admin) DrainNode(ctx context.Context, node string) (MembershipResponse, error) {
	var out MembershipResponse
	err := a.do(ctx, http.MethodPost, "/cluster/nodes/"+url.PathEscape(node)+"/drain", nil, &out)
	return out, err
}

// RemoveNode forgets a member.
func (a *Admin) RemoveNode(ctx context.Context, node string) (MembershipResponse, error) {
	var out MembershipResponse
	err := a.do(ctx, http.MethodDelete, "/cluster/nodes/"+url.PathEscape(node), nil, &out)
	return out, err
}

// Rebalance kicks a rebalance pass and returns the current progress.
func (a *Admin) Rebalance(ctx context.Context) (RebalanceStats, error) {
	var out RebalanceStats
	err := a.do(ctx, http.MethodPost, "/cluster/rebalance", nil, &out)
	return out, err
}
