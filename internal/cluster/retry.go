package cluster

import (
	"context"
	"math/rand"
	"time"

	"repro/internal/server"
)

// Retry policy for idempotent hops: a transport failure (connection
// refused, reset, timeout — server.StatusCode(err) == 0) on a GET,
// HEAD, probe, or replication copy is retried in place with capped
// exponential backoff plus jitter before the caller falls over to the
// next replica. Server replies — any HTTP status — are never retried:
// the node answered, retrying the same node cannot change a 404 or a
// 409, and non-idempotent ops (task loads) never come through here at
// all (failover across owners is their retry).

const (
	// defaultRetryAttempts is the total tries per hop (1 initial +
	// 2 retries) when Options.RetryAttempts is zero.
	defaultRetryAttempts = 3
	// defaultRetryBase is the first backoff delay; it doubles per
	// attempt up to retryBackoffCap.
	defaultRetryBase = 25 * time.Millisecond
	// retryBackoffCap bounds a single backoff sleep so a misconfigured
	// base cannot stall a hop longer than the hop timeout itself.
	retryBackoffCap = time.Second
)

// backoffSleep sleeps base·2^attempt (capped, ±50% jitter), returning
// early when ctx is done. attempt counts from 0 for the delay after
// the first failure.
func backoffSleep(ctx context.Context, base time.Duration, attempt int) {
	if base <= 0 {
		base = defaultRetryBase
	}
	d := base << uint(attempt)
	if d > retryBackoffCap || d <= 0 {
		d = retryBackoffCap
	}
	// Full jitter on the upper half: [d/2, d). Desynchronizes the
	// retry storms of many gateways hammering one recovering node.
	d = d/2 + time.Duration(rand.Int63n(int64(d/2)+1))
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-ctx.Done():
	case <-t.C:
	}
}

// retryable reports whether an error is a transport failure worth
// retrying against the same node. Context cancellation means the
// caller gave up, not that the node misbehaved.
func retryable(ctx context.Context, err error) bool {
	return err != nil && server.StatusCode(err) == 0 && ctx.Err() == nil
}

// retryTransport runs op against one node, retrying transport-level
// failures up to the gateway's configured attempts with backoff. Each
// attempt gets its own hop-bounded context and is observed for health
// accounting, so a node that flaps mid-retry still transitions
// suspect→down. op must be idempotent.
func (g *Gateway) retryTransport(ctx context.Context, nodeName string, op func(ctx context.Context) error) error {
	var err error
	for a := 0; ; a++ {
		hctx, cancel := context.WithTimeout(ctx, g.hop)
		err = op(hctx)
		cancel()
		g.observe(nodeName, err)
		if !retryable(ctx, err) || a+1 >= g.retryAttempts {
			return err
		}
		g.retries.Add(1)
		backoffSleep(ctx, g.retryBase, a)
	}
}
