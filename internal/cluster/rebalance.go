package cluster

import (
	"context"
	"errors"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jobs"
	"repro/internal/repo"
	"repro/internal/server"
)

// Rebalancer is the background process that makes membership changes
// converge: it walks the fleet's blob listings against the current
// ring, copies under-replicated blobs to their (possibly new) owners,
// trims misplaced surplus replicas — but only after every alive owner
// verifiably holds the blob — and spreads delete tombstones it runs
// into. A membership change mid-pass aborts the pass (the ring it was
// working against is history) and immediately starts a fresh one.
//
// Trimming is what empties a draining node: off the ring it owns
// nothing, so once the real owners hold its blobs every copy it still
// has is surplus.
type Rebalancer struct {
	g        *Gateway
	interval time.Duration

	kick   chan struct{}
	cancel context.CancelFunc

	startOnce sync.Once
	stopOnce  sync.Once
	started   bool
	done      chan struct{}

	mu         sync.Mutex
	running    bool
	lastPassMS int64
	lastErr    string

	passes   atomic.Uint64
	examined atomic.Uint64
	copies   atomic.Uint64
	trims    atomic.Uint64
	tombs    atomic.Uint64
	skipped  atomic.Uint64
	errs     atomic.Uint64
	aborted  atomic.Uint64
}

// RebalanceStats is the `rebalance` block inside the cluster stats.
type RebalanceStats struct {
	// State is "disabled", "idle", or "running".
	State string `json:"state"`
	// RingVersion is the ring the next/current pass works against.
	RingVersion string `json:"ring_version"`
	// Passes counts completed passes; Aborted counts passes cut short
	// by a membership change (each immediately rerun).
	Passes  uint64 `json:"passes"`
	Aborted uint64 `json:"aborted"`
	// BlobsExamined / Copies / Trims / TombstonesPropagated / Skipped /
	// Errors are cumulative work counters.
	BlobsExamined        uint64 `json:"blobs_examined"`
	Copies               uint64 `json:"copies"`
	Trims                uint64 `json:"trims"`
	TombstonesPropagated uint64 `json:"tombstones_propagated"`
	Skipped              uint64 `json:"skipped"`
	Errors               uint64 `json:"errors"`
	// LastPassMS is the duration of the last completed pass.
	LastPassMS int64  `json:"last_pass_ms"`
	LastError  string `json:"last_error,omitempty"`
}

// errPassStale aborts a pass whose ring snapshot a membership change
// has outdated.
var errPassStale = errors.New("cluster: membership changed mid-pass")

func newRebalancer(g *Gateway, interval time.Duration) *Rebalancer {
	return &Rebalancer{
		g:        g,
		interval: interval,
		kick:     make(chan struct{}, 1),
		done:     make(chan struct{}),
	}
}

// Kick requests a pass as soon as possible (coalescing with one
// already requested). Safe before Start and on a disabled rebalancer
// — the request then just never fires.
func (rb *Rebalancer) Kick() {
	select {
	case rb.kick <- struct{}{}:
	default:
	}
}

// Start launches the pass loop (idempotent; no-op when disabled).
func (rb *Rebalancer) Start() {
	if rb.interval <= 0 {
		return
	}
	rb.startOnce.Do(func() {
		rb.started = true
		ctx, cancel := context.WithCancel(context.Background())
		rb.cancel = cancel
		go rb.loop(ctx)
	})
}

// Stop ends the loop and waits for an in-flight pass to exit. Safe
// without a prior Start and more than once.
func (rb *Rebalancer) Stop() {
	rb.stopOnce.Do(func() {
		if rb.cancel != nil {
			rb.cancel()
		}
	})
	if rb.started {
		<-rb.done
	}
}

// loop turns ticks and kicks into "rebalance" jobs on the gateway's
// job table — every pass is a first-class Job: visible in GET /jobs,
// abortable with DELETE /jobs/{id}, its progress counters scraped as
// metrics. An exclusive collision (a pass already running, however it
// was started) just coalesces with it.
func (rb *Rebalancer) loop(ctx context.Context) {
	defer close(rb.done)
	t := time.NewTicker(rb.interval)
	defer t.Stop()
	for {
		select {
		case <-ctx.Done():
			return
		case <-rb.kick:
		case <-t.C:
		}
		j, err := rb.g.jobs.Start("rebalance", map[string]string{"trigger": "auto"})
		if err != nil {
			continue
		}
		select {
		case <-j.Done():
			// One terminal snapshot lands per tick; keep an hour of
			// history so GET /jobs stays bounded on a long-lived gateway.
			rb.g.jobs.Sweep(time.Hour)
		case <-ctx.Done():
			rb.g.jobs.Abort(j.ID())
			<-j.Done()
			return
		}
	}
}

// runRebalance is the "rebalance" job runner: one full pass, rerun
// immediately while membership changes keep outdating the ring it
// works against. The Rebalancer's counters are process-lifetime
// cumulative — a restarted job never resets them, so scraped rates
// stay meaningful — while the job's own progress counters cover just
// this run.
func (rb *Rebalancer) runRebalance(ctx context.Context, j *jobs.Job) error {
	for {
		err := rb.pass(ctx, j)
		if err == errPassStale {
			rb.aborted.Add(1)
			j.Add("stale_reruns", 1)
			continue
		}
		rb.mu.Lock()
		if err != nil && ctx.Err() == nil {
			rb.lastErr = err.Error()
		} else if err == nil {
			rb.lastErr = ""
		}
		rb.mu.Unlock()
		return err
	}
}

// Stats snapshots the rebalancer counters.
func (rb *Rebalancer) Stats() RebalanceStats {
	rb.mu.Lock()
	state := "idle"
	if rb.running {
		state = "running"
	}
	if rb.interval <= 0 {
		state = "disabled"
	}
	out := RebalanceStats{
		State:      state,
		LastPassMS: rb.lastPassMS,
		LastError:  rb.lastErr,
	}
	rb.mu.Unlock()
	out.RingVersion = ringVersionString(rb.g.curRing())
	out.Passes = rb.passes.Load()
	out.Aborted = rb.aborted.Load()
	out.BlobsExamined = rb.examined.Load()
	out.Copies = rb.copies.Load()
	out.Trims = rb.trims.Load()
	out.TombstonesPropagated = rb.tombs.Load()
	out.Skipped = rb.skipped.Load()
	out.Errors = rb.errs.Load()
	return out
}

// nodeInventory is one node's answer to the gather scatter.
type nodeInventory struct {
	blobs []server.VBSInfo
	tombs []server.TombstoneInfo
}

// pass runs one full rebalance sweep against the current ring,
// returning errPassStale when a membership change outdates it mid-way.
// Work is mirrored into j's progress counters as it happens.
func (rb *Rebalancer) pass(ctx context.Context, j *jobs.Job) error {
	g := rb.g
	startVer := g.MembershipVersion()
	ring := g.curRing()
	stale := func() bool { return g.MembershipVersion() != startVer }

	rb.mu.Lock()
	rb.running = true
	rb.mu.Unlock()
	t0 := time.Now()
	defer func() {
		rb.mu.Lock()
		rb.running = false
		rb.lastPassMS = time.Since(t0).Milliseconds()
		rb.mu.Unlock()
	}()
	rb.passes.Add(1)

	// Gather every reachable member's holdings and live tombstones —
	// draining members included: their blobs are exactly the ones that
	// must move.
	var alive []string
	for _, n := range g.reg.Names() {
		if g.reg.Alive(n) {
			alive = append(alive, n)
		}
	}
	if len(alive) == 0 {
		return errors.New("cluster: rebalance: no node reachable")
	}
	inv := scatter(ctx, g, alive, func(ctx context.Context, c *server.Client) (nodeInventory, error) {
		blobs, err := c.ListVBSCtx(ctx)
		if err != nil {
			return nodeInventory{}, err
		}
		tombs, err := c.Tombstones(ctx)
		if err != nil {
			return nodeInventory{}, err
		}
		return nodeInventory{blobs: blobs, tombs: tombs}, nil
	})

	holders := map[string][]string{} // digest -> nodes holding it
	tombed := map[string]bool{}      // digest -> some live tombstone exists
	for _, nr := range inv {
		if nr.err != nil {
			// An unreachable member does not block rebalancing the
			// rest; its blobs are handled once it answers again.
			rb.errs.Add(1)
			j.Add("errors", 1)
			continue
		}
		for _, b := range nr.val.blobs {
			holders[b.Digest] = append(holders[b.Digest], nr.node)
		}
		for _, ts := range nr.val.tombs {
			tombed[ts.Digest] = true
		}
	}

	digests := make([]string, 0, len(holders))
	for d := range holders {
		digests = append(digests, d)
	}
	sort.Strings(digests)

	for _, hex := range digests {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		if stale() {
			return errPassStale
		}
		d, err := repo.ParseDigest(hex)
		if err != nil {
			rb.errs.Add(1)
			j.Add("errors", 1)
			continue
		}
		rb.examined.Add(1)
		j.Add("examined", 1)

		if tombed[hex] {
			// Deleted somewhere: spread the tombstone to every holder
			// instead of re-balancing a dead blob.
			rb.propagate(ctx, d, holders[hex], j)
			continue
		}

		holding := map[string]bool{}
		for _, n := range holders[hex] {
			holding[n] = true
		}
		owners := ring.Lookup(d, g.replicas)
		ownerSet := map[string]bool{}
		for _, o := range owners {
			ownerSet[o] = true
		}

		// Copy to alive owners that miss the blob.
		complete := true // every alive owner verified holding
		goneMid := false
		for _, o := range owners {
			if !g.reg.Alive(o) {
				continue
			}
			if holding[o] {
				continue
			}
			if rb.copyTo(ctx, d, o, holders[hex], &goneMid, j) {
				holding[o] = true
			} else {
				complete = false
			}
			if goneMid {
				break
			}
		}
		if goneMid {
			rb.propagate(ctx, d, holders[hex], j)
			continue
		}

		// Trim surplus replicas — only once the owner set verifiably
		// holds the blob, so a trim can never drop the last copy.
		if !complete {
			continue
		}
		for _, h := range holders[hex] {
			if ownerSet[h] || !g.reg.Alive(h) {
				continue
			}
			c := g.reg.Client(h)
			if c == nil {
				continue
			}
			err := g.retryTransport(ctx, h, func(ctx context.Context) error {
				return c.TrimVBS(ctx, d.String())
			})
			switch {
			case err == nil || server.StatusCode(err) == http.StatusNotFound:
				rb.trims.Add(1)
				j.Add("trims", 1)
			case server.StatusCode(err) == http.StatusConflict:
				// A live task still references the copy: it stays until
				// the task unloads.
				rb.skipped.Add(1)
				j.Add("skipped", 1)
			default:
				rb.errs.Add(1)
				j.Add("errors", 1)
			}
		}
	}
	return nil
}

// copyTo replicates d onto owner `to` from one of the holders,
// preferring holders that are themselves owners (their copy is the
// authoritative one). Reports success; sets *gone when a tombstone
// surfaced (410) — the caller then propagates the delete instead.
func (rb *Rebalancer) copyTo(ctx context.Context, d repo.Digest, to string, holders []string, gone *bool, j *jobs.Job) bool {
	g := rb.g
	ring := g.curRing()
	srcs := make([]string, 0, len(holders))
	for _, h := range holders {
		if ring.Has(h) {
			srcs = append(srcs, h)
		}
	}
	for _, h := range holders {
		if !ring.Has(h) {
			srcs = append(srcs, h)
		}
	}
	for _, src := range srcs {
		if !g.reg.Alive(src) {
			continue
		}
		data, err := g.fetchVerified(ctx, src, d)
		if server.StatusCode(err) == http.StatusGone {
			*gone = true
			return false
		}
		if err != nil {
			continue
		}
		if g.reg.Client(to) == nil {
			return false
		}
		// Deliberately NOT force: a delete that lands mid-copy wins —
		// the 410 turns this copy into tombstone propagation. The copy
		// rides the destination's stream when live (HTTP otherwise).
		resp, err := g.putBlobNode(ctx, to, data, false)
		switch {
		case server.StatusCode(err) == http.StatusGone:
			*gone = true
			return false
		case err != nil:
			rb.errs.Add(1)
			j.Add("errors", 1)
			return false
		case resp.Digest != d.String():
			rb.errs.Add(1)
			j.Add("errors", 1)
			return false
		}
		rb.copies.Add(1)
		j.Add("copies", 1)
		return true
	}
	rb.skipped.Add(1) // no alive source: handled when one returns
	j.Add("skipped", 1)
	return false
}

// propagate spreads a delete tombstone to every holder of d.
func (rb *Rebalancer) propagate(ctx context.Context, d repo.Digest, holders []string, j *jobs.Job) {
	g := rb.g
	rb.tombs.Add(1)
	j.Add("tombstones", 1)
	for _, h := range holders {
		if !g.reg.Alive(h) {
			continue
		}
		c := g.reg.Client(h)
		if c == nil {
			continue
		}
		err := g.retryTransport(ctx, h, func(ctx context.Context) error {
			return c.DeleteVBSCtx(ctx, d.String())
		})
		if err != nil && server.StatusCode(err) == http.StatusConflict {
			// A task re-referenced the digest: the delete loses there.
			rb.skipped.Add(1)
			j.Add("skipped", 1)
		}
	}
}
