package cluster_test

import (
	"bytes"
	"context"
	"encoding/base64"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/repo"
	"repro/internal/server"
)

// TestGatewayBatch drives POST /tasks:batch through the gateway: the
// batch is partitioned across owner nodes, per-op results come back
// in order with fleet-global fabric indices, and every loaded blob
// reaches its full replica set.
func TestGatewayBatch(t *testing.T) {
	c, _, nodes := newCluster(t, 3, 1, cluster.Options{Replicas: 2})

	var datas [][]byte
	var ops []server.BatchOp
	for i := 0; i < 4; i++ {
		data := makeVBS(t, int64(100+i), 6)
		datas = append(datas, data)
		ops = append(ops, server.BatchLoadOp(data))
	}
	resp, err := c.BatchCtx(t.Context(), server.BatchRequest{Ops: ops})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != len(ops) {
		t.Fatalf("got %d results, want %d", len(resp.Results), len(ops))
	}
	for i, r := range resp.Results {
		if r.Status != http.StatusCreated || r.Load == nil {
			t.Fatalf("load %d: status %d error %q", i, r.Status, r.Error)
		}
		if r.Load.Fabric < 0 || r.Load.Fabric >= 3 {
			t.Fatalf("load %d: fabric %d not fleet-global", i, r.Load.Fabric)
		}
	}

	// Replication is pipelined (asynchronous) now: poll until every
	// digest reaches its replica factor.
	for i, r := range resp.Results {
		waitReplicas(t, nodes, r.Load.Digest, 2)
		if want := repo.DigestOf(datas[i]).String(); r.Load.Digest != want {
			t.Fatalf("load %d: digest %s, want %s", i, r.Load.Digest, want)
		}
	}

	// Mixed follow-up batch: a get, a real unload, a bogus unload.
	id := resp.Results[0].Load.ID
	digest := resp.Results[0].Load.Digest
	resp, err = c.BatchCtx(t.Context(), server.BatchRequest{Ops: []server.BatchOp{
		{Op: "get", Digest: digest},
		{Op: "unload", ID: id},
		{Op: "unload", ID: 424242},
	}})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{http.StatusOK, http.StatusNoContent, http.StatusNotFound}
	for i, r := range resp.Results {
		if r.Status != want[i] {
			t.Fatalf("op %d: status %d (error %q), want %d", i, r.Status, r.Error, want[i])
		}
	}
	got, err := base64.StdEncoding.DecodeString(resp.Results[0].VBS)
	if err != nil || !bytes.Equal(got, datas[0]) {
		t.Fatalf("batched get returned wrong bytes (err %v)", err)
	}

	// The unloaded task's gateway mapping is gone.
	tasks, err := c.TasksCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	for _, ti := range tasks {
		if ti.ID == id {
			t.Fatalf("task %d still listed after batched unload", id)
		}
	}

	// An empty batch is refused as a whole.
	if _, err := c.BatchCtx(t.Context(), server.BatchRequest{}); server.StatusCode(err) != http.StatusBadRequest {
		t.Fatalf("empty batch: got %v, want 400", err)
	}
}

// TestGatewayStreamsEngage proves the data plane actually runs over
// the persistent streams: after a few loads the gateway's transport
// metrics show open streams and sent frames, and replication still
// converges with zero failures recorded.
func TestGatewayStreamsEngage(t *testing.T) {
	c, _, nodes := newCluster(t, 3, 1, cluster.Options{Replicas: 2})

	for i := 0; i < 6; i++ {
		data := makeVBS(t, int64(500+i), 6)
		resp, err := c.LoadCtx(context.Background(), data, nil, nil, nil)
		if err != nil {
			t.Fatalf("load %d: %v", i, err)
		}
		waitReplicas(t, nodes, resp.Digest, 2)
	}

	deadline := time.Now().Add(5 * time.Second)
	for {
		open := metricValue(t, c.Base(), "vbs_transport_streams_open")
		sent := metricValue(t, c.Base(), "vbs_transport_frames_sent_total")
		if open >= 1 && sent >= 1 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("streams never engaged: open=%v sent=%v", open, sent)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestGatewayBatchStreamsDisabled pins the HTTP fallback: with
// DisableStreams the whole batched path still works end to end.
func TestGatewayBatchStreamsDisabled(t *testing.T) {
	c, _, nodes := newCluster(t, 2, 1, cluster.Options{Replicas: 2, DisableStreams: true})
	data := makeVBS(t, 900, 6)
	resp, err := c.BatchCtx(t.Context(), server.BatchRequest{Ops: []server.BatchOp{server.BatchLoadOp(data)}})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Results[0].Status != http.StatusCreated {
		t.Fatalf("load: %+v", resp.Results[0])
	}
	waitReplicas(t, nodes, resp.Results[0].Load.Digest, 2)
	if open := metricValue(t, c.Base(), "vbs_transport_streams_open"); open != 0 {
		t.Fatalf("streams open with DisableStreams: %v", open)
	}
}

// waitReplicas polls until the digest is held by at least want nodes.
func waitReplicas(t *testing.T, nodes []*testNode, digest string, want int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if len(nodesHolding(t, nodes, digest)) >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("digest %s never reached %d replicas (on %v)",
				digest, want, nodesHolding(t, nodes, digest))
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// metricValue scrapes one untyped metric value off GET /metrics.
func metricValue(t *testing.T, base, name string) float64 {
	t.Helper()
	resp, err := http.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range strings.Split(string(body), "\n") {
		if strings.HasPrefix(line, name+" ") {
			var v float64
			if _, err := fmt.Sscanf(line[len(name)+1:], "%g", &v); err != nil {
				t.Fatalf("parse %s: %v", line, err)
			}
			return v
		}
	}
	return 0
}
