package cluster_test

import (
	"math/rand"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/bits"
	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/rrg"
	"repro/internal/server"
)

// makeVBS compiles a small random task to a VBS container (same
// recipe as the server package's test helper).
func makeVBS(t *testing.T, seed int64, nLB int) []byte {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := &netlist.Design{Name: "task", K: 6}
	var nets []netlist.NetID
	for i := 0; i < 4; i++ {
		_, n := d.AddInputPad("pi")
		nets = append(nets, n)
	}
	for i := 0; i < nLB; i++ {
		nin := rng.Intn(4) + 1
		ins := make([]netlist.NetID, nin)
		for j := range ins {
			ins[j] = nets[rng.Intn(len(nets))]
		}
		truth := bits.NewVec(64)
		for b := 0; b < 64; b++ {
			truth.Set(b, rng.Intn(2) == 0)
		}
		_, n := d.AddLogicBlock("lb", ins, truth, false)
		nets = append(nets, n)
	}
	for i := 0; i < 4; i++ {
		d.AddOutputPad("po", nets[len(nets)-1-i])
	}
	pl, err := place.Place(d, arch.GridForSize(4), place.Options{Seed: seed, InnerNum: 1, FastExit: true})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := rrg.Build(arch.Params{W: 8, K: 6}, pl.Grid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := route.Route(d, pl, gr, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := core.Encode(d, pl, res, core.EncodeOptions{Cluster: 1})
	if err != nil {
		t.Fatal(err)
	}
	data, err := v.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

// node is one in-process vbsd daemon under the gateway.
type testNode struct {
	url    string
	srv    *server.Server
	hs     *httptest.Server
	client *server.Client
}

// newNode starts an httptest vbsd over fresh 16x16 W=8 fabrics.
func newNode(t *testing.T, fabrics int, opts server.Options) *testNode {
	t.Helper()
	ctrls := make([]*controller.Controller, fabrics)
	for i := range ctrls {
		f, err := fabric.New(arch.Params{W: 8, K: 6}, arch.Grid{Width: 16, Height: 16})
		if err != nil {
			t.Fatal(err)
		}
		ctrls[i] = controller.New(f, 2)
	}
	srv, err := server.New(ctrls, opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return &testNode{url: hs.URL, srv: srv, hs: hs, client: server.NewClient(hs.URL, nil)}
}

// newCluster starts n nodes plus a gateway over them, and returns an
// unchanged server.Client speaking to the gateway — the acceptance
// condition of the whole subsystem.
func newCluster(t *testing.T, n, fabricsPerNode int, opts cluster.Options) (*server.Client, *cluster.Gateway, []*testNode) {
	t.Helper()
	nodes := make([]*testNode, n)
	urls := make([]string, n)
	for i := range nodes {
		nodes[i] = newNode(t, fabricsPerNode, server.Options{})
		urls[i] = nodes[i].url
	}
	if opts.ProbeInterval == 0 {
		opts.ProbeInterval = 200 * time.Millisecond
	}
	if opts.ProbeTimeout == 0 {
		opts.ProbeTimeout = time.Second
	}
	gw, err := cluster.New(urls, opts)
	if err != nil {
		t.Fatal(err)
	}
	gw.Start(t.Context())
	t.Cleanup(gw.Stop)
	hs := httptest.NewServer(gw.Handler())
	t.Cleanup(hs.Close)
	return server.NewClient(hs.URL, nil), gw, nodes
}

// nodesHolding lists which of the nodes hold the digest.
func nodesHolding(t *testing.T, nodes []*testNode, digest string) []string {
	t.Helper()
	var out []string
	for _, n := range nodes {
		if n.hs == nil {
			continue
		}
		blobs, err := n.client.ListVBSCtx(t.Context())
		if err != nil {
			continue
		}
		for _, b := range blobs {
			if b.Digest == digest {
				out = append(out, n.url)
				break
			}
		}
	}
	return out
}

// kill closes a node's HTTP server so every future call to it fails
// at the transport level (the cluster's view of a crashed daemon).
func (n *testNode) kill() {
	n.hs.CloseClientConnections()
	n.hs.Close()
	n.hs = nil
}
