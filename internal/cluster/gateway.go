package cluster

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/repo"
	"repro/internal/server"
	"repro/internal/transport"
)

// Options tunes a Gateway.
type Options struct {
	// Replicas is the number of nodes holding each blob (primary +
	// R-1 replicas); 0 selects 2. Values above the node count are
	// clamped per lookup.
	Replicas int
	// VNodes is the virtual-node count per physical node on the hash
	// ring; 0 selects DefaultVNodes.
	VNodes int
	// ProbeInterval / ProbeTimeout drive the registry health loop;
	// 0 selects 2s / 1s.
	ProbeInterval time.Duration
	ProbeTimeout  time.Duration
	// HopTimeout bounds every proxied call to a node; 0 selects 15s.
	// Loads pay a decode on the node, so this is deliberately looser
	// than the probe timeout.
	HopTimeout time.Duration
	// MaxBodyBytes bounds JSON request bodies at the gateway exactly
	// like server.Options.MaxBodyBytes (0 = server default bound,
	// negative = unbounded).
	MaxBodyBytes int64
	// HTTPClient is used for every node call (nil =
	// http.DefaultClient).
	HTTPClient *http.Client
	// RetryAttempts is the total tries per idempotent hop (GET, HEAD,
	// probe, replication copy) before the caller fails over; 0 selects
	// 3, 1 disables retries. Non-idempotent ops (loads) never retry a
	// hop — failover across owners is their retry.
	RetryAttempts int
	// RetryBackoff is the first retry delay (doubled per attempt,
	// capped, jittered); 0 selects 25ms.
	RetryBackoff time.Duration
	// RebalanceInterval is the background rebalancer's pass interval;
	// 0 selects 60s, negative disables the rebalancer (membership
	// changes still kick a pass when enabled).
	RebalanceInterval time.Duration
	// DisableStreams turns the persistent per-node frame streams off:
	// replication, repair/rebalance copies and batch fan-out all fall
	// back to per-request HTTP.
	DisableStreams bool
}

// gwTask maps a gateway task id to the node-local task it proxies.
// Node task-id spaces are independent, so the gateway keeps its own.
type gwTask struct {
	id     int64
	node   string
	remote int64
	digest string
}

// Gateway fronts a fleet of vbsd nodes with the single-daemon
// HTTP/JSON API: blob operations route by content address over the
// consistent-hash ring with write-through replication and read
// failover; fleet-wide endpoints scatter-gather and merge.
type Gateway struct {
	// ring is swapped copy-on-write on membership changes: requests
	// load the pointer once and route on an immutable snapshot.
	ring      atomic.Pointer[Ring]
	reg       *Registry
	reb       *Rebalancer
	jobs      *jobs.Table
	metrics   *metrics.Registry
	opLat     *metrics.HistogramVec
	streams   *streamPool
	transport *transport.Metrics
	replicas  int
	hop       time.Duration
	maxBody   int64
	start     time.Time

	retryAttempts int
	retryBase     time.Duration

	// mshipMu serializes membership changes (ring swaps stay atomic for
	// readers either way); mshipVer counts them — the rebalancer aborts
	// a pass when it moves. draining marks members kept in the registry
	// but taken off the ring while the rebalancer empties them.
	mshipMu  sync.Mutex
	mshipVer atomic.Uint64
	draining map[string]bool

	mu        sync.Mutex
	tasks     map[int64]*gwTask
	nextID    int64
	fabCounts map[string]int // node -> fabric pool size (static per node boot)

	// repairs tracks in-flight asynchronous read-repairs so Stop can
	// drain them (and tests can observe completion); repairing dedups
	// concurrent owner-verification sweeps per digest.
	repairs   sync.WaitGroup
	repairing sync.Map

	proxied          atomic.Uint64
	replicated       atomic.Uint64
	replicationFails atomic.Uint64
	failovers        atomic.Uint64
	readRepairs      atomic.Uint64
	repairChecks     atomic.Uint64
	scatterFallbacks atomic.Uint64
	scatters         atomic.Uint64
	retries          atomic.Uint64
	tombstoneSweeps  atomic.Uint64
}

// New builds a gateway over the given node base URLs. At least one
// node is required. Call Start to launch health probing and Stop on
// shutdown.
func New(nodes []string, opts Options) (*Gateway, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: empty node set")
	}
	if opts.Replicas == 0 {
		opts.Replicas = 2
	}
	if opts.Replicas < 1 {
		return nil, fmt.Errorf("cluster: replicas must be >= 1")
	}
	if opts.HopTimeout <= 0 {
		opts.HopTimeout = 15 * time.Second
	}
	maxBody := opts.MaxBodyBytes
	if maxBody == 0 {
		maxBody = server.DefaultMaxBodyBytes
	}
	if opts.RetryAttempts == 0 {
		opts.RetryAttempts = defaultRetryAttempts
	}
	if opts.RetryAttempts < 1 {
		opts.RetryAttempts = 1
	}
	if opts.RetryBackoff <= 0 {
		opts.RetryBackoff = defaultRetryBase
	}
	if opts.RebalanceInterval == 0 {
		opts.RebalanceInterval = time.Minute
	}
	g := &Gateway{
		reg:           NewRegistry(nodes, opts.HTTPClient, opts.ProbeInterval, opts.ProbeTimeout),
		replicas:      opts.Replicas,
		hop:           opts.HopTimeout,
		maxBody:       maxBody,
		start:         time.Now(),
		retryAttempts: opts.RetryAttempts,
		retryBase:     opts.RetryBackoff,
		draining:      make(map[string]bool),
		tasks:         make(map[int64]*gwTask),
		fabCounts:     make(map[string]int),
	}
	g.ring.Store(NewRing(nodes, opts.VNodes))
	g.reg.SetRetry(opts.RetryAttempts, opts.RetryBackoff)
	g.reb = newRebalancer(g, opts.RebalanceInterval)
	g.jobs = jobs.NewTable()
	g.defineJobs()
	g.metrics = newGatewayMetrics(g)
	g.streams = newStreamPool(!opts.DisableStreams, g.transport)
	return g, nil
}

// curRing loads the current routing ring — an immutable snapshot; a
// membership change mid-request cannot tear a lookup.
func (g *Gateway) curRing() *Ring { return g.ring.Load() }

// Ring exposes the current routing ring (read-only).
func (g *Gateway) Ring() *Ring { return g.curRing() }

// Registry exposes the node health registry.
func (g *Gateway) Registry() *Registry { return g.reg }

// Rebalancer exposes the background rebalancer.
func (g *Gateway) Rebalancer() *Rebalancer { return g.reb }

// Jobs exposes the gateway's background job table.
func (g *Gateway) Jobs() *jobs.Table { return g.jobs }

// Start probes every node once (so the first request sees real
// states) and launches the background probe and rebalance loops.
func (g *Gateway) Start(ctx context.Context) {
	g.reg.ProbeAll(ctx)
	g.reg.Start()
	g.reb.Start()
}

// Stop terminates the rebalance and probe loops, aborts running jobs,
// and drains in-flight read-repairs (each bounded by the hop timeout).
func (g *Gateway) Stop() {
	g.reb.Stop()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	_ = g.jobs.Shutdown(ctx)
	cancel()
	g.reg.Stop()
	g.repairs.Wait()
	g.streams.closeAll()
}

// Handler returns the gateway's HTTP routes — the same surface as a
// single vbsd daemon.
func (g *Gateway) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /tasks", g.handleLoad)
	mux.HandleFunc("POST /tasks:batch", g.handleBatch)
	mux.HandleFunc("GET /tasks", g.handleListTasks)
	mux.HandleFunc("DELETE /tasks/{id}", g.handleUnload)
	mux.HandleFunc("POST /tasks/{id}/relocate", g.handleRelocate)
	mux.HandleFunc("POST /fabrics/{i}/compact", g.handleCompact)
	mux.HandleFunc("GET /fabrics", g.handleFabrics)
	mux.HandleFunc("POST /vbs", g.handlePutVBS)
	mux.HandleFunc("GET /vbs", g.handleListVBS)
	mux.HandleFunc("GET /vbs/{digest}", g.handleGetVBS)
	mux.HandleFunc("DELETE /vbs/{digest}", g.handleDeleteVBS)
	mux.HandleFunc("GET /stats", g.handleStats)
	mux.HandleFunc("GET /healthz", g.handleHealthz)
	mux.HandleFunc("POST /jobs", g.handleStartJob)
	mux.HandleFunc("GET /jobs", g.handleListJobs)
	mux.HandleFunc("GET /jobs/{id}", g.handleGetJob)
	mux.HandleFunc("DELETE /jobs/{id}", g.handleAbortJob)
	mux.Handle("GET /metrics", g.metrics)
	// Cluster admin: runtime membership and rebalance control. {name}
	// is a path-escaped node base URL (Go's ServeMux matches wildcards
	// against the escaped path, so the embedded "//" survives).
	mux.HandleFunc("GET /cluster/nodes", g.handleMembers)
	mux.HandleFunc("POST /cluster/nodes", g.handleAddNode)
	mux.HandleFunc("DELETE /cluster/nodes/{name}", g.handleRemoveNode)
	mux.HandleFunc("POST /cluster/nodes/{name}/drain", g.handleDrainNode)
	mux.HandleFunc("POST /cluster/rebalance", g.handleRebalance)
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, map[string]string{"error": fmt.Sprintf(format, args...)})
}

// writeUpstream maps a node-call error onto the gateway reply: server
// replies keep their status and message, transport failures become
// 502.
func writeUpstream(w http.ResponseWriter, err error) {
	if code := server.StatusCode(err); code != 0 {
		writeError(w, code, "%s", server.ErrorMessage(err))
		return
	}
	writeError(w, http.StatusBadGateway, "cluster: %v", err)
}

func (g *Gateway) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	return server.DecodeJSONBody(w, r, g.maxBody, v)
}

func (g *Gateway) hopCtx(r *http.Request) (context.Context, context.CancelFunc) {
	return context.WithTimeout(r.Context(), g.hop)
}

// owners returns the digest's replica set reordered by health: alive
// nodes first, then suspect, then down — all in ring order within a
// class, so two gateways still agree whenever their health views do.
func (g *Gateway) owners(d repo.Digest) []string {
	own := g.curRing().Lookup(d, g.replicas)
	out := make([]string, 0, len(own))
	for _, class := range []State{Alive, Suspect, Down} {
		for _, n := range own {
			if g.reg.State(n) == class {
				out = append(out, n)
			}
		}
	}
	return out
}

// othersByHealth returns every non-down node not in the given set, in
// registry order — the scatter-fallback read path for blobs imported
// out-of-band on a non-owner node.
func (g *Gateway) othersByHealth(except []string) []string {
	in := make(map[string]bool, len(except))
	for _, n := range except {
		in[n] = true
	}
	var out []string
	for _, n := range g.reg.Names() {
		if !in[n] && g.reg.Alive(n) {
			out = append(out, n)
		}
	}
	return out
}

// nodeResult is one node's answer in a scatter.
type nodeResult[T any] struct {
	node string
	val  T
	err  error
}

// errNotMember marks a call against a node that left the registry
// between name capture and client lookup.
var errNotMember = errors.New("cluster: node no longer in registry")

// scatter fans f out to the given nodes concurrently and collects
// every answer in node order. Transport failures are retried per the
// gateway retry policy (every scatter use is idempotent) and demote
// the node in the registry.
func scatter[T any](ctx context.Context, g *Gateway, nodes []string,
	f func(ctx context.Context, c *server.Client) (T, error)) []nodeResult[T] {
	out := make([]nodeResult[T], len(nodes))
	var wg sync.WaitGroup
	for i, n := range nodes {
		wg.Add(1)
		go func(i int, n string) {
			defer wg.Done()
			c := g.reg.Client(n)
			if c == nil {
				out[i] = nodeResult[T]{node: n, err: errNotMember}
				return
			}
			var val T
			err := g.retryTransport(ctx, n, func(ctx context.Context) error {
				var ferr error
				val, ferr = f(ctx, c)
				return ferr
			})
			out[i] = nodeResult[T]{node: n, val: val, err: err}
		}(i, n)
	}
	wg.Wait()
	return out
}

// observeOp records one gateway operation's end-to-end latency into
// the op histogram.
func (g *Gateway) observeOp(op string, begin time.Time) {
	g.opLat.With(op).Observe(time.Since(begin).Seconds())
}

// observe feeds a node-call outcome into the registry: any HTTP reply
// (even 4xx) proves liveness, a transport failure demotes.
func (g *Gateway) observe(node string, err error) {
	switch {
	case err == nil, server.StatusCode(err) != 0:
		g.reg.ReportSuccess(node)
	case errors.Is(err, context.Canceled):
		// The caller went away; says nothing about the node.
	default:
		g.reg.ReportFailure(node, err)
	}
}

// aliveNodes returns the non-down nodes in registry order.
func (g *Gateway) aliveNodes() []string {
	var out []string
	for _, n := range g.reg.Names() {
		if g.reg.Alive(n) {
			out = append(out, n)
		}
	}
	return out
}

// ── fabric topology ────────────────────────────────────────────────

// nodeFabrics is one node's slice of the fleet-global fabric index
// space: global index = Offset + local index.
type nodeFabrics struct {
	Node   string
	Count  int
	Offset int
}

// topology returns the global fabric index layout in registry order.
// Pool sizes are fixed at node boot (vbsd -fabrics), so counts are
// cached forever after the first fetch; a node that is down before it
// was ever counted makes the layout unknowable and errors.
func (g *Gateway) topology(ctx context.Context) ([]nodeFabrics, error) {
	names := g.reg.Names()
	var missing []string
	g.mu.Lock()
	for _, n := range names {
		if _, ok := g.fabCounts[n]; !ok {
			missing = append(missing, n)
		}
	}
	g.mu.Unlock()
	if len(missing) > 0 {
		res := scatter(ctx, g, missing, func(ctx context.Context, c *server.Client) ([]server.FabricInfo, error) {
			return c.FabricsCtx(ctx)
		})
		g.mu.Lock()
		for _, r := range res {
			if r.err == nil {
				g.fabCounts[r.node] = len(r.val)
			}
		}
		g.mu.Unlock()
	}
	out := make([]nodeFabrics, 0, len(names))
	offset := 0
	g.mu.Lock()
	defer g.mu.Unlock()
	for _, n := range names {
		count, ok := g.fabCounts[n]
		if !ok {
			return nil, fmt.Errorf("cluster: fabric pool of node %s unknown (node unreachable before first contact)", n)
		}
		out = append(out, nodeFabrics{Node: n, Count: count, Offset: offset})
		offset += count
	}
	return out, nil
}

// globalFabric maps a node-local fabric index to the fleet-global one
// (-1 when the topology does not know the node).
func globalFabric(topo []nodeFabrics, node string, local int) int {
	for _, t := range topo {
		if t.Node == node {
			return t.Offset + local
		}
	}
	return -1
}

// localFabric resolves a fleet-global fabric index to (node, local).
func localFabric(topo []nodeFabrics, global int) (string, int, bool) {
	for _, t := range topo {
		if global >= t.Offset && global < t.Offset+t.Count {
			return t.Node, global - t.Offset, true
		}
	}
	return "", 0, false
}

// ── blob + task routing ────────────────────────────────────────────

// replicate copies a container to every owner except the one that
// already holds it. With streams up the copies are *pipelined*: each
// target's blob is enqueued on its persistent stream and the caller
// returns without waiting — the receiver's ack fires the counters,
// and a reconnect retransmits anything unacked, so the copy converges
// even across a node crash. Targets without a live stream fall back
// to the old write-through HTTP scatter. Failures are counted, not
// fatal: a missed replica is healed by read-repair later.
//
// Force: replication carries the same user intent as the write it
// fans out — it must land even on a node still holding a tombstone
// from an earlier delete of the same bytes.
func (g *Gateway) replicate(ctx context.Context, data []byte, owners []string, holder string) {
	var httpTargets []string
	var msg []byte
	for _, n := range owners {
		if n == holder || !g.reg.Alive(n) {
			continue
		}
		st := g.streams.ready(n)
		if st == nil {
			httpTargets = append(httpTargets, n)
			continue
		}
		if msg == nil {
			msg = objPutMsg(data, true)
		}
		err := st.Send(ctx, msg, true, func(err error) {
			if err != nil {
				g.replicationFails.Add(1)
			} else {
				g.replicated.Add(1)
			}
		})
		if err != nil {
			httpTargets = append(httpTargets, n)
		}
	}
	if len(httpTargets) == 0 {
		return
	}
	res := scatter(ctx, g, httpTargets, func(ctx context.Context, c *server.Client) (server.PutVBSResponse, error) {
		return c.PutVBSForce(ctx, data)
	})
	for _, r := range res {
		if r.err != nil {
			g.replicationFails.Add(1)
		} else {
			g.replicated.Add(1)
		}
	}
}

func (g *Gateway) handleLoad(w http.ResponseWriter, r *http.Request) {
	defer g.observeOp("load", time.Now())
	var req server.LoadRequest
	if !g.decodeBody(w, r, &req) {
		return
	}
	data, err := base64.StdEncoding.DecodeString(req.VBS)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad vbs base64: %v", err)
		return
	}
	digest := repo.DigestOf(data)
	owners := g.curRing().Lookup(digest, g.replicas)

	// The load request targets the digest's owners in health order —
	// unless the caller pinned a fleet-global fabric index, which
	// names its node outright.
	targets := g.owners(digest)
	var topo []nodeFabrics
	if req.Fabric != nil {
		topo, err = g.topology(r.Context())
		if err != nil {
			writeError(w, http.StatusServiceUnavailable, "%v", err)
			return
		}
		node, local, ok := localFabric(topo, *req.Fabric)
		if !ok {
			writeError(w, http.StatusBadRequest, "fabric %d out of range", *req.Fabric)
			return
		}
		req.Fabric = &local
		targets = []string{node}
	}

	var placed server.LoadResponse
	var onNode string
	var lastErr error
	for i, n := range targets {
		c := g.reg.Client(n)
		if c == nil {
			lastErr = errNotMember
			continue
		}
		ctx, cancel := g.hopCtx(r)
		resp, err := c.LoadWithCtx(ctx, data, req)
		cancel()
		g.observe(n, err)
		g.proxied.Add(1)
		if err == nil {
			placed, onNode = resp, n
			if i > 0 {
				g.failovers.Add(1)
			}
			break
		}
		lastErr = err
		switch code := server.StatusCode(err); {
		case code == http.StatusConflict, code >= 500:
			// Capacity or internal failure on this node: another
			// owner may still admit the task.
			continue
		case code != 0:
			// A deliberate 4xx (bad body, bad policy, pinned slot
			// conflict) would repeat identically everywhere. Node-side
			// disk failures arrive as 5xx (store.ErrDisk) and fail
			// over above.
			writeUpstream(w, err)
			return
		default:
			// Transport failure: fail over. A *timeout* here is
			// ambiguous — the node may still complete the load after
			// we give up, leaving an orphan task outside the gateway
			// table (see ROADMAP "load reconciliation"); the node's
			// own API can list and unload it.
			continue
		}
	}
	if onNode == "" {
		if lastErr == nil {
			writeError(w, http.StatusServiceUnavailable, "cluster: no node reachable for load")
			return
		}
		// Transport-only failures mean every candidate node is down:
		// 503 (retryable outage), not a generic 502.
		if server.StatusCode(lastErr) == 0 {
			writeError(w, http.StatusServiceUnavailable,
				"cluster: no node reachable for load: %v", lastErr)
			return
		}
		writeUpstream(w, lastErr)
		return
	}

	// Write-through replication: the blob must survive the loss of
	// any replicas-1 nodes before the client hears "created".
	g.replicate(r.Context(), data, owners, onNode)

	g.mu.Lock()
	id := g.nextID
	g.nextID++
	g.tasks[id] = &gwTask{id: id, node: onNode, remote: placed.ID, digest: placed.Digest}
	g.mu.Unlock()

	placed.ID = id
	if topo == nil {
		topo, _ = g.topology(r.Context())
	}
	if gi := globalFabric(topo, onNode, placed.Fabric); gi >= 0 {
		placed.Fabric = gi
	}
	writeJSON(w, http.StatusCreated, placed)
}

// taskFromPath resolves {id} against the gateway task table.
func (g *Gateway) taskFromPath(w http.ResponseWriter, r *http.Request) (*gwTask, bool) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad task id %q", r.PathValue("id"))
		return nil, false
	}
	g.mu.Lock()
	t, ok := g.tasks[id]
	g.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "task %d not loaded", id)
		return nil, false
	}
	return t, true
}

func (g *Gateway) handleUnload(w http.ResponseWriter, r *http.Request) {
	t, ok := g.taskFromPath(w, r)
	if !ok {
		return
	}
	c := g.reg.Client(t.node)
	if c == nil {
		writeError(w, http.StatusServiceUnavailable, "node %s no longer a cluster member", t.node)
		return
	}
	ctx, cancel := g.hopCtx(r)
	defer cancel()
	err := c.UnloadCtx(ctx, t.remote)
	g.observe(t.node, err)
	g.proxied.Add(1)
	if err != nil && server.StatusCode(err) != http.StatusNotFound {
		// Transport failure or node-side error: keep the mapping, the
		// task may still occupy its region.
		writeUpstream(w, err)
		return
	}
	g.mu.Lock()
	delete(g.tasks, t.id)
	g.mu.Unlock()
	if err != nil {
		// The node no longer knew the task (restart): the region is
		// free either way, so the mapping had to go, but tell the
		// caller the truth.
		writeUpstream(w, err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (g *Gateway) handleRelocate(w http.ResponseWriter, r *http.Request) {
	t, ok := g.taskFromPath(w, r)
	if !ok {
		return
	}
	var req server.RelocateRequest
	if !g.decodeBody(w, r, &req) {
		return
	}
	if req.X == nil || req.Y == nil {
		writeError(w, http.StatusBadRequest, "x and y are required")
		return
	}
	c := g.reg.Client(t.node)
	if c == nil {
		writeError(w, http.StatusServiceUnavailable, "node %s no longer a cluster member", t.node)
		return
	}
	ctx, cancel := g.hopCtx(r)
	defer cancel()
	info, err := c.RelocateCtx(ctx, t.remote, *req.X, *req.Y)
	g.observe(t.node, err)
	g.proxied.Add(1)
	if err != nil {
		writeUpstream(w, err)
		return
	}
	info.ID = t.id
	info.Node = t.node
	if topo, terr := g.topology(r.Context()); terr == nil {
		if gi := globalFabric(topo, t.node, info.Fabric); gi >= 0 {
			info.Fabric = gi
		}
	}
	writeJSON(w, http.StatusOK, info)
}

// handleListTasks merges the gateway's task table with
// scatter-gathered per-node listings: position and dimensions come
// from the owning node when reachable. Tasks loaded directly on a
// node (out of band) belong to that node's own API and are not
// listed.
func (g *Gateway) handleListTasks(w http.ResponseWriter, r *http.Request) {
	g.mu.Lock()
	mine := make([]*gwTask, 0, len(g.tasks))
	nodes := map[string]bool{}
	for _, t := range g.tasks {
		mine = append(mine, t)
		nodes[t.node] = true
	}
	g.mu.Unlock()
	sort.Slice(mine, func(a, b int) bool { return mine[a].id < mine[b].id })

	var names []string
	for _, n := range g.reg.Names() {
		if nodes[n] && g.reg.Alive(n) {
			names = append(names, n)
		}
	}
	g.scatters.Add(1)
	res := scatter(r.Context(), g, names, func(ctx context.Context, c *server.Client) ([]server.TaskInfo, error) {
		return c.TasksCtx(ctx)
	})
	remote := make(map[string]map[int64]server.TaskInfo, len(res))
	for _, nr := range res {
		if nr.err != nil {
			continue
		}
		m := make(map[int64]server.TaskInfo, len(nr.val))
		for _, ti := range nr.val {
			m[ti.ID] = ti
		}
		remote[nr.node] = m
	}
	topo, _ := g.topology(r.Context())

	out := make([]server.TaskInfo, 0, len(mine))
	for _, t := range mine {
		info := server.TaskInfo{ID: t.id, Digest: t.digest, Node: t.node, Fabric: -1}
		if ti, ok := remote[t.node][t.remote]; ok {
			info.X, info.Y = ti.X, ti.Y
			info.TaskW, info.TaskH = ti.TaskW, ti.TaskH
			info.Fabric = ti.Fabric
			if gi := globalFabric(topo, t.node, ti.Fabric); gi >= 0 {
				info.Fabric = gi
			}
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (g *Gateway) handleCompact(w http.ResponseWriter, r *http.Request) {
	i, err := strconv.Atoi(r.PathValue("i"))
	if err != nil {
		writeError(w, http.StatusNotFound, "fabric %q not in pool", r.PathValue("i"))
		return
	}
	topo, terr := g.topology(r.Context())
	if terr != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", terr)
		return
	}
	node, local, ok := localFabric(topo, i)
	if !ok {
		writeError(w, http.StatusNotFound, "fabric %d not in pool", i)
		return
	}
	c := g.reg.Client(node)
	if c == nil {
		writeError(w, http.StatusServiceUnavailable, "node %s no longer a cluster member", node)
		return
	}
	ctx, cancel := g.hopCtx(r)
	defer cancel()
	res, err := c.CompactCtx(ctx, local)
	g.observe(node, err)
	g.proxied.Add(1)
	if err != nil {
		writeUpstream(w, err)
		return
	}
	res.Fabric = i
	writeJSON(w, http.StatusOK, res)
}

func (g *Gateway) handleFabrics(w http.ResponseWriter, r *http.Request) {
	topo, err := g.topology(r.Context())
	if err != nil {
		writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	}
	g.scatters.Add(1)
	res := scatter(r.Context(), g, g.aliveNodes(), func(ctx context.Context, c *server.Client) ([]server.FabricInfo, error) {
		return c.FabricsCtx(ctx)
	})
	byNode := map[string][]server.FabricInfo{}
	for _, nr := range res {
		if nr.err == nil {
			byNode[nr.node] = nr.val
		}
	}
	out := make([]server.FabricInfo, 0)
	for _, t := range topo {
		for _, fi := range byNode[t.Node] {
			fi.Index += t.Offset
			fi.Node = t.Node
			out = append(out, fi)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// handlePutVBS admits a blob through the gateway: it is written to
// every owner of its digest, so a subsequent load finds it already
// replicated.
func (g *Gateway) handlePutVBS(w http.ResponseWriter, r *http.Request) {
	var req server.PutVBSRequest
	if !g.decodeBody(w, r, &req) {
		return
	}
	data, err := base64.StdEncoding.DecodeString(req.VBS)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad vbs base64: %v", err)
		return
	}
	owners := g.owners(repo.DigestOf(data))
	g.proxied.Add(1)
	// Force: an explicit client write overrides any delete tombstone,
	// exactly like the single-daemon PUT-after-force semantics.
	res := scatter(r.Context(), g, owners, func(ctx context.Context, c *server.Client) (server.PutVBSResponse, error) {
		return c.PutVBSForce(ctx, data)
	})
	var firstOK *server.PutVBSResponse
	var lastErr error
	for i := range res {
		if res[i].err != nil {
			lastErr = res[i].err
			continue
		}
		if firstOK == nil {
			firstOK = &res[i].val
		}
	}
	if firstOK == nil {
		writeUpstream(w, lastErr)
		return
	}
	writeJSON(w, http.StatusCreated, *firstOK)
}

// handleListVBS merges every node's blob listing: one row per digest,
// task references summed, Replicas counting the nodes holding it.
func (g *Gateway) handleListVBS(w http.ResponseWriter, r *http.Request) {
	g.scatters.Add(1)
	res := scatter(r.Context(), g, g.aliveNodes(), func(ctx context.Context, c *server.Client) ([]server.VBSInfo, error) {
		return c.ListVBSCtx(ctx)
	})
	merged := map[string]*server.VBSInfo{}
	for _, nr := range res {
		if nr.err != nil {
			continue
		}
		for _, b := range nr.val {
			m, ok := merged[b.Digest]
			if !ok {
				info := b
				info.Replicas = 1
				merged[b.Digest] = &info
				continue
			}
			m.Tasks += b.Tasks
			m.RAM = m.RAM || b.RAM
			m.Disk = m.Disk || b.Disk
			m.Replicas++
		}
	}
	out := make([]server.VBSInfo, 0, len(merged))
	for _, b := range merged {
		out = append(out, *b)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Digest < out[b].Digest })
	writeJSON(w, http.StatusOK, out)
}

// fetchVerified downloads a blob from one node (with transport
// retries) and re-checks its content address — a gateway must never
// relay bytes that do not hash to the digest it serves them under.
func (g *Gateway) fetchVerified(ctx context.Context, node string, d repo.Digest) ([]byte, error) {
	c := g.reg.Client(node)
	if c == nil {
		return nil, errNotMember
	}
	var data []byte
	err := g.retryTransport(ctx, node, func(ctx context.Context) error {
		var ferr error
		data, ferr = c.GetVBSCtx(ctx, d.String())
		return ferr
	})
	if err != nil {
		return nil, err
	}
	if repo.DigestOf(data) != d {
		return nil, fmt.Errorf("cluster: node %s served corrupt bytes for %s", node, d.Short())
	}
	return data, nil
}

func (g *Gateway) handleGetVBS(w http.ResponseWriter, r *http.Request) {
	defer g.observeOp("vbs_get", time.Now())
	d, err := repo.ParseDigest(r.PathValue("digest"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	owners := g.owners(d)
	primary := g.curRing().Owner(d)
	g.proxied.Add(1)

	serve := func(data []byte, from string) {
		// Read-repair: every successful read schedules an asynchronous
		// owner-verification sweep off the reply path — a degraded read
		// must not pay a HEAD fan-out or full-blob replication in
		// latency. Verifying all owners (not just "served from
		// non-primary") is what heals a *secondary* replica loss: the
		// primary keeps answering, so only an explicit check notices
		// the set is degraded.
		g.scheduleRepair(d, data, from)
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("Content-Length", strconv.Itoa(len(data)))
		_, _ = w.Write(data)
	}

	var lastErr, goneErr error
	for i, n := range owners {
		data, err := g.fetchVerified(r.Context(), n, d)
		if err == nil {
			if i > 0 || n != primary {
				g.failovers.Add(1)
			}
			serve(data, n)
			return
		}
		switch server.StatusCode(err) {
		case http.StatusNotFound:
		case http.StatusGone:
			goneErr = err
		default:
			lastErr = err
		}
	}
	if goneErr != nil {
		// An owner answered 410: the blob was deleted and its tombstone
		// still lives. Do NOT fall back to a scatter — serving a
		// straggler replica would resurrect a deleted blob.
		writeUpstream(w, goneErr)
		return
	}
	// Every owner missed: the blob may live on a non-owner (imported
	// directly into a node's repository). Scatter before giving up.
	others := g.othersByHealth(owners)
	if len(others) > 0 {
		g.scatterFallbacks.Add(1)
		res := scatter(r.Context(), g, others, func(ctx context.Context, c *server.Client) ([]byte, error) {
			data, err := c.GetVBSCtx(ctx, d.String())
			if err == nil && repo.DigestOf(data) != d {
				return nil, fmt.Errorf("cluster: corrupt bytes for %s", d.Short())
			}
			return data, err
		})
		for _, nr := range res {
			if nr.err == nil {
				serve(nr.val, nr.node)
				return
			}
		}
	}
	if lastErr != nil {
		// A transport-only failure tail means every replica is down:
		// say so with 503 (retryable outage), not a generic 502.
		if server.StatusCode(lastErr) == 0 {
			writeError(w, http.StatusServiceUnavailable,
				"cluster: no replica of %s reachable: %v", d.Short(), lastErr)
			return
		}
		writeUpstream(w, lastErr)
		return
	}
	writeError(w, http.StatusNotFound, "vbs %s not stored", d.Short())
}

// scheduleRepair launches one asynchronous owner-verification sweep
// for a digest just served from `from`, deduplicating concurrent
// sweeps per digest.
func (g *Gateway) scheduleRepair(d repo.Digest, data []byte, from string) {
	key := d.String()
	if _, busy := g.repairing.LoadOrStore(key, struct{}{}); busy {
		return
	}
	g.repairs.Add(1)
	go func() {
		defer g.repairs.Done()
		defer g.repairing.Delete(key)
		g.repairOwners(d, data, from)
	}()
}

// headVBS HEADs one node for a digest with transport retries.
func (g *Gateway) headVBS(ctx context.Context, node string, d repo.Digest) (bool, error) {
	c := g.reg.Client(node)
	if c == nil {
		return false, errNotMember
	}
	var ok bool
	err := g.retryTransport(ctx, node, func(ctx context.Context) error {
		var herr error
		ok, herr = c.HasVBS(ctx, d.String())
		return herr
	})
	return ok, err
}

// propagateDelete spreads a delete observed on one node across the
// fleet so every holder records a tombstone — a blob deleted mid-
// repair or mid-rebalance must not resurface from a straggler
// replica. 404s are fine (the delete still tombstones); 409 means a
// task re-referenced the digest and the delete loses.
func (g *Gateway) propagateDelete(ctx context.Context, d repo.Digest) {
	g.tombstoneSweeps.Add(1)
	scatter(ctx, g, g.aliveNodes(), func(ctx context.Context, c *server.Client) (struct{}, error) {
		return struct{}{}, c.DeleteVBSCtx(ctx, d.String())
	})
}

// repairOwners checks every alive owner of d holds a copy (a HEAD per
// owner) and re-replicates to the ones that do not. Before healing it
// anchor-checks that the node the blob was just served from still
// holds it: if a concurrent DELETE raced the sweep, re-putting would
// resurrect a deleted blob. A 410 anywhere flips the sweep's job from
// healing to spreading the delete. Runs off the request path with its
// own hop-bounded contexts.
func (g *Gateway) repairOwners(d repo.Digest, data []byte, from string) {
	g.repairChecks.Add(1)
	var missing []string
	gone := false
	for _, n := range g.curRing().Lookup(d, g.replicas) {
		if n == from || !g.reg.Alive(n) {
			continue
		}
		ok, err := g.headVBS(context.Background(), n, d)
		switch {
		case server.StatusCode(err) == http.StatusGone:
			gone = true
		case err == nil && !ok:
			missing = append(missing, n)
		}
	}
	if gone {
		g.propagateDelete(context.Background(), d)
		return
	}
	if len(missing) == 0 {
		return
	}
	ok, err := g.headVBS(context.Background(), from, d)
	if server.StatusCode(err) == http.StatusGone {
		g.propagateDelete(context.Background(), d)
		return
	}
	if err != nil || !ok {
		return
	}
	// Deliberately NOT force: a tombstone written between the HEADs and
	// this put must win (the 410 reply then finishes the delete's
	// propagation instead). Copies ride the stream when live — one
	// synchronous RPC per node so the 410 is still observable.
	var healed, goneOnPut bool
	var wg sync.WaitGroup
	var resMu sync.Mutex
	for _, n := range missing {
		wg.Add(1)
		go func(n string) {
			defer wg.Done()
			_, err := g.putBlobNode(context.Background(), n, data, false)
			resMu.Lock()
			defer resMu.Unlock()
			switch {
			case err == nil:
				g.replicated.Add(1)
				healed = true
			case server.StatusCode(err) == http.StatusGone:
				goneOnPut = true
			default:
				g.replicationFails.Add(1)
			}
		}(n)
	}
	wg.Wait()
	if goneOnPut {
		g.propagateDelete(context.Background(), d)
	}
	if healed {
		g.readRepairs.Add(1)
	}
}

// handleDeleteVBS drops a blob from every reachable node. The
// destructive fan-out is guarded by a fleet-wide reference check
// first: a parallel delete must not strip unreferenced replicas off
// nodes while the owner is about to veto with 409, or a "failed"
// delete would silently lower the blob's replication factor. The
// check-then-delete window is racy across nodes (unlike the
// single-daemon delete, which holds one lock); each node still
// re-checks its own references under its lock, so the race only
// re-opens the partial-delete case, never an unsafe one.
func (g *Gateway) handleDeleteVBS(w http.ResponseWriter, r *http.Request) {
	d, err := repo.ParseDigest(r.PathValue("digest"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	g.proxied.Add(1)
	digest := d.String()
	g.mu.Lock()
	refs := 0
	for _, t := range g.tasks {
		if t.digest == digest {
			refs++
		}
	}
	g.mu.Unlock()
	if refs == 0 {
		// Tasks loaded out of band reference blobs too: ask the fleet.
		res := scatter(r.Context(), g, g.aliveNodes(), func(ctx context.Context, c *server.Client) ([]server.VBSInfo, error) {
			return c.ListVBSCtx(ctx)
		})
		for _, nr := range res {
			if nr.err != nil {
				continue
			}
			for _, b := range nr.val {
				if b.Digest == digest {
					refs += b.Tasks
				}
			}
		}
	}
	if refs > 0 {
		writeError(w, http.StatusConflict, "vbs %s referenced by %d live task(s)", d.Short(), refs)
		return
	}
	res := scatter(r.Context(), g, g.aliveNodes(), func(ctx context.Context, c *server.Client) (struct{}, error) {
		return struct{}{}, c.DeleteVBSCtx(ctx, d.String())
	})
	deleted := 0
	var lastErr error
	for _, nr := range res {
		switch code := server.StatusCode(nr.err); {
		case nr.err == nil:
			deleted++
		case code == http.StatusConflict:
			writeUpstream(w, nr.err)
			return
		case code == http.StatusNotFound:
			// Nothing to delete on this node.
		default:
			lastErr = nr.err
		}
	}
	switch {
	case deleted > 0:
		w.WriteHeader(http.StatusNoContent)
	case lastErr != nil:
		writeUpstream(w, lastErr)
	default:
		writeError(w, http.StatusNotFound, "vbs %s not stored", d.Short())
	}
}

func (g *Gateway) handleHealthz(w http.ResponseWriter, r *http.Request) {
	alive := len(g.aliveNodes())
	writeJSON(w, http.StatusOK, map[string]any{
		"status": "ok",
		"nodes":  g.curRing().Len(),
		"alive":  alive,
	})
}

// ── stats ──────────────────────────────────────────────────────────

// NodeStats is one node's occupancy inside the cluster stats block.
type NodeStats struct {
	NodeInfo
	// Mode is the node's membership mode: "active" (on the ring) or
	// "draining" (being emptied by the rebalancer before removal).
	Mode string `json:"mode"`
	// Reachable reports whether the stats scatter got an answer.
	Reachable bool `json:"reachable"`
	// Tasks / FreeMacros / StoreEntries / RepoBlobs summarize the
	// node's occupancy (zero when unreachable).
	Tasks        int    `json:"tasks"`
	FreeMacros   int    `json:"free_macros"`
	StoreEntries int    `json:"store_entries"`
	RepoBlobs    int    `json:"repo_blobs"`
	Loads        uint64 `json:"loads"`
}

// ClusterStats is the `cluster` block the gateway adds to /stats.
type ClusterStats struct {
	Nodes []NodeStats `json:"nodes"`
	// RingVersion identifies the membership: gateways with equal
	// versions route identically.
	RingVersion string `json:"ring_version"`
	// MembershipVersion counts runtime membership changes on this
	// gateway (add, drain, remove) since boot.
	MembershipVersion uint64 `json:"membership_version"`
	Replicas          int    `json:"replicas"`
	// GatewayTasks counts tasks loaded through this gateway.
	GatewayTasks int `json:"gateway_tasks"`
	// Traffic counters.
	Proxied           uint64 `json:"proxied"`
	Replicated        uint64 `json:"replicated"`
	ReplicationFailed uint64 `json:"replication_failed"`
	Failovers         uint64 `json:"failovers"`
	ReadRepairs       uint64 `json:"read_repairs"`
	RepairChecks      uint64 `json:"repair_checks"`
	ScatterFallbacks  uint64 `json:"scatter_fallbacks"`
	Scatters          uint64 `json:"scatters"`
	// Retries counts extra per-hop attempts spent on transport-failure
	// retries (gateway hops + registry probes).
	Retries uint64 `json:"retries"`
	// TombstoneSweeps counts deletes spread fleet-wide after a 410 was
	// observed mid-repair or mid-rebalance.
	TombstoneSweeps uint64 `json:"tombstone_sweeps"`
	// Rebalance reports the background rebalancer's progress.
	Rebalance RebalanceStats `json:"rebalance"`
}

// StatsResponse is the gateway's GET /stats body: the single-daemon
// fields summed over the fleet, plus the cluster block. A plain
// server.Client decodes the embedded part untouched.
type StatsResponse struct {
	server.StatsResponse
	Cluster ClusterStats `json:"cluster"`
}

func (g *Gateway) handleStats(w http.ResponseWriter, r *http.Request) {
	g.scatters.Add(1)
	res := scatter(r.Context(), g, g.aliveNodes(), func(ctx context.Context, c *server.Client) (server.StatsResponse, error) {
		return c.StatsCtx(ctx)
	})
	byNode := map[string]*server.StatsResponse{}
	for i := range res {
		if res[i].err == nil {
			byNode[res[i].node] = &res[i].val
		}
	}
	topo, _ := g.topology(r.Context())

	var out StatsResponse
	out.UptimeSeconds = time.Since(g.start).Seconds()
	var meanNumer float64
	draining := g.drainingSet()
	for _, info := range g.reg.Snapshot() {
		ns := NodeStats{NodeInfo: info, Mode: "active"}
		if draining[info.Name] {
			ns.Mode = "draining"
		}
		if st, ok := byNode[info.Name]; ok {
			ns.Reachable = true
			ns.Tasks = st.Tasks
			ns.StoreEntries = st.Store.Entries
			ns.RepoBlobs = st.Repo.Blobs
			ns.Loads = st.Loads
			for _, f := range st.Fabrics {
				ns.FreeMacros += f.FreeMacros
				f.Node = info.Name
				if gi := globalFabric(topo, info.Name, f.Index); gi >= 0 {
					f.Index = gi
				}
				out.Fabrics = append(out.Fabrics, f)
			}
			out.Tasks += st.Tasks
			out.Loads += st.Loads
			out.Unloads += st.Unloads
			out.Relocations += st.Relocations
			out.Decodes += st.Decodes
			out.LoadLatency.Count += st.LoadLatency.Count
			meanNumer += st.LoadLatency.MeanMS * float64(st.LoadLatency.Count)
			if st.LoadLatency.MaxMS > out.LoadLatency.MaxMS {
				out.LoadLatency.MaxMS = st.LoadLatency.MaxMS
			}
			if out.Placement.Policy == "" {
				out.Placement.Policy = st.Placement.Policy
			}
			out.Placement.Compactions += st.Placement.Compactions
			out.Placement.TasksMoved += st.Placement.TasksMoved
			out.Placement.RetrySuccesses += st.Placement.RetrySuccesses
			out.Cache.Hits += st.Cache.Hits
			out.Cache.Misses += st.Cache.Misses
			out.Cache.Evictions += st.Cache.Evictions
			out.Cache.Entries += st.Cache.Entries
			out.Cache.UsedBits += st.Cache.UsedBits
			out.Cache.CapBits += st.Cache.CapBits
			out.Store.Entries += st.Store.Entries
			out.Store.Bytes += st.Store.Bytes
			out.Repo.Enabled = out.Repo.Enabled || st.Repo.Enabled
			out.Repo.Blobs += st.Repo.Blobs
			out.Repo.Bytes += st.Repo.Bytes
			out.Repo.Demotions += st.Repo.Demotions
			out.Repo.Promotions += st.Repo.Promotions
			out.Repo.Recovered += st.Repo.Recovered
			out.Repo.Quarantined += st.Repo.Quarantined
			out.Repo.Reads += st.Repo.Reads
			out.Repo.Writes += st.Repo.Writes
		}
		out.Cluster.Nodes = append(out.Cluster.Nodes, ns)
	}
	if out.LoadLatency.Count > 0 {
		out.LoadLatency.MeanMS = meanNumer / float64(out.LoadLatency.Count)
	}
	g.mu.Lock()
	out.Cluster.GatewayTasks = len(g.tasks)
	g.mu.Unlock()
	out.Cluster.RingVersion = ringVersionString(g.curRing())
	out.Cluster.MembershipVersion = g.mshipVer.Load()
	out.Cluster.Replicas = g.replicas
	out.Cluster.Proxied = g.proxied.Load()
	out.Cluster.Replicated = g.replicated.Load()
	out.Cluster.ReplicationFailed = g.replicationFails.Load()
	out.Cluster.Failovers = g.failovers.Load()
	out.Cluster.ReadRepairs = g.readRepairs.Load()
	out.Cluster.RepairChecks = g.repairChecks.Load()
	out.Cluster.ScatterFallbacks = g.scatterFallbacks.Load()
	out.Cluster.Scatters = g.scatters.Load()
	out.Cluster.Retries = g.retries.Load() + g.reg.Retries()
	out.Cluster.TombstoneSweeps = g.tombstoneSweeps.Load()
	out.Cluster.Rebalance = g.reb.Stats()
	writeJSON(w, http.StatusOK, out)
}

// ringVersionString renders the ring version as fixed-width hex.
func ringVersionString(r *Ring) string {
	return fmt.Sprintf("%016x", r.Version())
}
