package cluster

import (
	"context"
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
)

// State is a node's health as seen by the registry probe loop.
type State int

const (
	// Alive: the last probe (or request) succeeded.
	Alive State = iota
	// Suspect: one probe failed; the node still receives traffic last
	// (reads prefer alive replicas) but is not yet written off.
	Suspect
	// Down: probeDownAfter consecutive probes failed; the node is
	// skipped until a probe succeeds again.
	Down
)

// String returns the lowercase state name served in /stats.
func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Suspect:
		return "suspect"
	case Down:
		return "down"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// probeDownAfter is the consecutive-failure count that demotes a node
// to Down (the first failure makes it Suspect).
const probeDownAfter = 2

// node is one registry entry.
type node struct {
	name   string
	client *server.Client

	mu        sync.Mutex
	state     State
	fails     int
	lastProbe time.Time
	lastErr   string
}

// NodeInfo is a point-in-time snapshot of one node for the cluster
// stats block.
type NodeInfo struct {
	Name  string `json:"name"`
	State string `json:"state"`
	// LastProbeMS is milliseconds since the node was last probed
	// (-1 before the first probe).
	LastProbeMS int64 `json:"last_probe_ms"`
	// LastError is the most recent probe/request failure ("" when the
	// node has never failed or has recovered).
	LastError string `json:"last_error,omitempty"`
}

// Registry tracks the health of a runtime-mutable node set by probing
// /healthz and by demotions reported from the request path
// (ReportFailure). It owns one server.Client per node; the gateway
// routes through those. Add and Remove mutate the set under the
// registry lock; the probe loop works off a snapshot, so a membership
// change mid-round cannot race the node map.
type Registry struct {
	mu     sync.RWMutex
	nodes  []*node          // in configured order
	byName map[string]*node // name -> entry

	hc    *http.Client  // client constructor input for Add
	probe time.Duration // probe interval
	tmo   time.Duration // per-probe timeout

	// retryAttempts/retryBase configure per-probe transport retries
	// (capped exponential backoff + jitter); retries counts the extra
	// attempts for the gateway's `retries` stat.
	retryAttempts int
	retryBase     time.Duration
	retries       atomic.Uint64

	stop      chan struct{}
	done      chan struct{}
	startOnce sync.Once
	stopOnce  sync.Once
	started   bool // set under startOnce, read by Stop after stopOnce
}

// NewRegistry builds a registry over node base URLs in the given
// order (the order defines fleet-global fabric indexing). hc may be
// nil for http.DefaultClient. interval/timeout <= 0 select 2s/1s.
func NewRegistry(names []string, hc *http.Client, interval, timeout time.Duration) *Registry {
	if interval <= 0 {
		interval = 2 * time.Second
	}
	if timeout <= 0 {
		timeout = time.Second
	}
	r := &Registry{
		byName:        make(map[string]*node, len(names)),
		hc:            hc,
		probe:         interval,
		tmo:           timeout,
		retryAttempts: 1,
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
	}
	for _, n := range names {
		if _, dup := r.byName[n]; dup {
			continue
		}
		e := &node{name: n, client: server.NewClient(n, hc)}
		r.nodes = append(r.nodes, e)
		r.byName[n] = e
	}
	return r
}

// SetRetry configures per-probe transport retries: up to attempts
// tries with capped exponential backoff starting at base. attempts
// <= 1 means single-shot (the default).
func (r *Registry) SetRetry(attempts int, base time.Duration) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if attempts < 1 {
		attempts = 1
	}
	if base <= 0 {
		base = defaultRetryBase
	}
	r.retryAttempts = attempts
	r.retryBase = base
}

// Retries returns how many extra probe attempts retries have used.
func (r *Registry) Retries() uint64 { return r.retries.Load() }

// Add registers a new node, reporting whether the set grew. The node
// starts Alive (optimistically: the next probe round corrects it
// within one interval, and a gateway probes new members immediately).
func (r *Registry) Add(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[name]; dup {
		return false
	}
	e := &node{name: name, client: server.NewClient(name, r.hc)}
	r.nodes = append(r.nodes, e)
	r.byName[name] = e
	return true
}

// Remove drops a node from the set, reporting whether it was present.
// An in-flight probe round may still touch the removed entry (it works
// off a snapshot); that is harmless — the entry is unreachable from
// the map afterwards.
func (r *Registry) Remove(name string) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.byName[name]; !ok {
		return false
	}
	delete(r.byName, name)
	for i, n := range r.nodes {
		if n.name == name {
			r.nodes = append(r.nodes[:i], r.nodes[i+1:]...)
			break
		}
	}
	return true
}

// lookup resolves a name under the read lock.
func (r *Registry) lookup(name string) (*node, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	n, ok := r.byName[name]
	return n, ok
}

// snapshot returns the current node entries — the probe loop and every
// iteration work off this copy so concurrent Add/Remove cannot race.
func (r *Registry) snapshot() []*node {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]*node, len(r.nodes))
	copy(out, r.nodes)
	return out
}

// Names returns the node names in configured order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.nodes))
	for i, n := range r.nodes {
		out[i] = n.name
	}
	return out
}

// Client returns the client for a node (nil for unknown names — a
// caller holding a name across a Remove must tolerate that).
func (r *Registry) Client(name string) *server.Client {
	if n, ok := r.lookup(name); ok {
		return n.client
	}
	return nil
}

// State returns a node's current health (Down for unknown names).
func (r *Registry) State(name string) State {
	n, ok := r.lookup(name)
	if !ok {
		return Down
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.state
}

// Alive reports whether the node is not Down. Suspect nodes count as
// alive: one failed probe must not eject a node that is merely slow,
// it only deprioritizes it (see Gateway ordering).
func (r *Registry) Alive(name string) bool { return r.State(name) != Down }

// ReportFailure records a transport-level request failure observed by
// the gateway, demoting the node exactly like a failed probe so
// failover does not wait for the next probe tick.
func (r *Registry) ReportFailure(name string, err error) {
	if n, ok := r.lookup(name); ok {
		n.fail(err)
	}
}

// ReportSuccess marks a node alive from the request path (any
// successful HTTP exchange proves liveness, including 4xx replies).
func (r *Registry) ReportSuccess(name string) {
	if n, ok := r.lookup(name); ok {
		n.ok(false)
	}
}

func (n *node) ok(probed bool) {
	n.mu.Lock()
	n.state = Alive
	n.fails = 0
	n.lastErr = ""
	if probed {
		n.lastProbe = time.Now()
	}
	n.mu.Unlock()
}

func (n *node) fail(err error) {
	n.mu.Lock()
	n.fails++
	if n.fails >= probeDownAfter {
		n.state = Down
	} else {
		n.state = Suspect
	}
	if err != nil {
		n.lastErr = err.Error()
	}
	n.mu.Unlock()
}

// ProbeAll probes every node once, synchronously (all nodes in
// parallel, bounded by the probe timeout). The gateway calls it at
// startup so the first request already sees real states; the probe
// loop calls it every interval. The round works off a snapshot of the
// node set, so a concurrent Add/Remove cannot race the map — a node
// added mid-round is probed next round, a removed one is probed once
// more into the void, harmlessly.
func (r *Registry) ProbeAll(ctx context.Context) {
	r.mu.RLock()
	attempts, base := r.retryAttempts, r.retryBase
	r.mu.RUnlock()
	var wg sync.WaitGroup
	for _, n := range r.snapshot() {
		wg.Add(1)
		go func(n *node) {
			defer wg.Done()
			var err error
			for a := 0; ; a++ {
				pctx, cancel := context.WithTimeout(ctx, r.tmo)
				err = n.client.Health(pctx)
				cancel()
				if err == nil || a+1 >= attempts || ctx.Err() != nil {
					break
				}
				// A transient transport blip should not start the
				// suspect→down clock: retry within the round.
				r.retries.Add(1)
				backoffSleep(ctx, base, a)
			}
			n.mu.Lock()
			n.lastProbe = time.Now()
			n.mu.Unlock()
			if err != nil {
				n.fail(err)
				return
			}
			n.ok(true)
		}(n)
	}
	wg.Wait()
}

// Start launches the background probe loop (idempotent). Stop ends
// it.
func (r *Registry) Start() {
	r.startOnce.Do(func() {
		r.started = true
		go func() {
			defer close(r.done)
			t := time.NewTicker(r.probe)
			defer t.Stop()
			for {
				select {
				case <-r.stop:
					return
				case <-t.C:
					r.ProbeAll(context.Background())
				}
			}
		}()
	})
}

// Stop terminates the probe loop and waits for it to exit. Safe to
// call more than once, and without a prior Start.
func (r *Registry) Stop() {
	r.stopOnce.Do(func() { close(r.stop) })
	if r.started {
		<-r.done
	}
}

// Snapshot returns per-node health for the cluster stats block, in
// configured order.
func (r *Registry) Snapshot() []NodeInfo {
	nodes := r.snapshot()
	out := make([]NodeInfo, len(nodes))
	for i, n := range nodes {
		n.mu.Lock()
		info := NodeInfo{Name: n.name, State: n.state.String(), LastProbeMS: -1, LastError: n.lastErr}
		if !n.lastProbe.IsZero() {
			info.LastProbeMS = time.Since(n.lastProbe).Milliseconds()
		}
		n.mu.Unlock()
		out[i] = info
	}
	return out
}
