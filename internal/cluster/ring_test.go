package cluster_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/repo"
)

// sampleDigests returns n pseudo-random content addresses from a
// fixed seed.
func sampleDigests(n int) []repo.Digest {
	rng := rand.New(rand.NewSource(42))
	out := make([]repo.Digest, n)
	for i := range out {
		rng.Read(out[i][:])
	}
	return out
}

func nodeNames(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("http://node-%d:8931", i)
	}
	return out
}

// TestRingDeterminism: routing must be a pure function of the
// membership — independent of input order, and reproducible across
// ring rebuilds (i.e. process restarts).
func TestRingDeterminism(t *testing.T) {
	names := nodeNames(7)
	shuffled := append([]string(nil), names...)
	rand.New(rand.NewSource(3)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})

	a := cluster.NewRing(names, 0)
	b := cluster.NewRing(shuffled, 0)
	if a.Version() != b.Version() {
		t.Fatalf("versions differ across input order: %x vs %x", a.Version(), b.Version())
	}
	for _, d := range sampleDigests(500) {
		ra, rb := a.Lookup(d, 3), b.Lookup(d, 3)
		if len(ra) != len(rb) {
			t.Fatalf("replica set sizes differ for %s", d.Short())
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("replica %d differs for %s: %s vs %s", i, d.Short(), ra[i], rb[i])
			}
		}
	}

	// Duplicated names must not skew ownership.
	c := cluster.NewRing(append(append([]string(nil), names...), names[0], names[3]), 0)
	if c.Version() != a.Version() {
		t.Error("duplicate node names changed the ring version")
	}
}

// TestRingReplicaSets: replica sets never contain duplicates and are
// clamped to the node count.
func TestRingReplicaSets(t *testing.T) {
	r := cluster.NewRing(nodeNames(5), 0)
	for _, d := range sampleDigests(1000) {
		set := r.Lookup(d, 3)
		if len(set) != 3 {
			t.Fatalf("replica set size %d, want 3", len(set))
		}
		seen := map[string]bool{}
		for _, n := range set {
			if seen[n] {
				t.Fatalf("duplicate node %s in replica set of %s", n, d.Short())
			}
			seen[n] = true
		}
		if set[0] != r.Owner(d) {
			t.Fatalf("Lookup[0] != Owner for %s", d.Short())
		}
	}
	// More replicas than nodes: everyone, once.
	if set := r.Lookup(sampleDigests(1)[0], 99); len(set) != 5 {
		t.Errorf("clamped replica set size %d, want 5", len(set))
	}
	if empty := cluster.NewRing(nil, 0); empty.Lookup(sampleDigests(1)[0], 2) != nil {
		t.Error("empty ring returned owners")
	}
}

// TestRingMinimalReshuffle: adding or removing one node must remap
// only ~1/N of a large digest sample — the property that makes
// membership changes cheap. We allow 1.5x the ideal fraction.
func TestRingMinimalReshuffle(t *testing.T) {
	const nNodes, nKeys = 8, 4000
	names := nodeNames(nNodes)
	digests := sampleDigests(nKeys)
	base := cluster.NewRing(names, 0)

	t.Run("add", func(t *testing.T) {
		grown := cluster.NewRing(append(append([]string(nil), names...), "http://node-new:8931"), 0)
		moved := 0
		for _, d := range digests {
			if base.Owner(d) != grown.Owner(d) {
				moved++
			}
		}
		ideal := float64(nKeys) / float64(nNodes+1)
		if f := float64(moved); f > 1.5*ideal {
			t.Errorf("add remapped %d/%d keys (%.1f%%), ideal %.1f%%",
				moved, nKeys, 100*f/nKeys, 100*ideal/nKeys)
		}
		if moved == 0 {
			t.Error("add remapped nothing: new node owns no keys")
		}
	})

	t.Run("remove", func(t *testing.T) {
		shrunk := cluster.NewRing(names[1:], 0)
		moved, lost := 0, 0
		for _, d := range digests {
			oldOwner := base.Owner(d)
			if oldOwner != shrunk.Owner(d) {
				moved++
			}
			if oldOwner == names[0] {
				lost++
			}
		}
		// Only keys owned by the removed node may move.
		if moved != lost {
			t.Errorf("remove remapped %d keys but only %d were owned by the removed node", moved, lost)
		}
		ideal := float64(nKeys) / float64(nNodes)
		if f := float64(moved); f > 1.5*ideal {
			t.Errorf("remove remapped %d/%d keys (%.1f%%), ideal %.1f%%",
				moved, nKeys, 100*f/nKeys, 100*ideal/nKeys)
		}
	})
}

// TestRingCopyOnWrite: WithNode/WithoutNode must be bit-identical to
// rebuilding the ring over the changed membership (same Version, same
// routing) and must leave the receiver untouched — requests in flight
// keep routing on the old snapshot.
func TestRingCopyOnWrite(t *testing.T) {
	names := nodeNames(6)
	extra := "http://node-new:8931"
	base := cluster.NewRing(names, 0)
	baseVer := base.Version()

	grown := base.WithNode(extra)
	want := cluster.NewRing(append(append([]string(nil), names...), extra), 0)
	if grown.Version() != want.Version() {
		t.Fatalf("WithNode version %x, NewRing version %x", grown.Version(), want.Version())
	}
	if base.Version() != baseVer || base.Has(extra) {
		t.Fatal("WithNode mutated the receiver")
	}
	for _, d := range sampleDigests(1000) {
		a, b := grown.Lookup(d, 3), want.Lookup(d, 3)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("WithNode routes %s differently: %v vs %v", d.Short(), a, b)
			}
		}
	}

	// Idempotence and no-op removal return the receiver's routing.
	if grown.WithNode(extra).Version() != grown.Version() {
		t.Error("re-adding a member changed the version")
	}
	if base.WithoutNode(extra).Version() != baseVer {
		t.Error("removing a non-member changed the version")
	}

	shrunk := grown.WithoutNode(extra)
	if shrunk.Version() != baseVer {
		t.Fatalf("add-then-remove version %x, want round-trip to %x", shrunk.Version(), baseVer)
	}
	for _, d := range sampleDigests(1000) {
		a, b := shrunk.Lookup(d, 3), base.Lookup(d, 3)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("add-then-remove routes %s differently", d.Short())
			}
		}
	}

	// Shrinking to empty must not panic and must return no owners.
	empty := cluster.NewRing([]string{names[0]}, 0).WithoutNode(names[0])
	if empty.Len() != 0 || empty.Lookup(sampleDigests(1)[0], 2) != nil {
		t.Error("empty ring after WithoutNode still returns owners")
	}
}

// TestRingCopyOnWriteMinimalReshuffle: the COW add must keep the
// consistent-hash guarantee — only ~1/N of keys remap (we allow 1.5x
// the ideal fraction, like the rebuild test above).
func TestRingCopyOnWriteMinimalReshuffle(t *testing.T) {
	const nNodes, nKeys = 8, 4000
	base := cluster.NewRing(nodeNames(nNodes), 0)
	grown := base.WithNode("http://node-new:8931")
	moved := 0
	for _, d := range sampleDigests(nKeys) {
		if base.Owner(d) != grown.Owner(d) {
			moved++
		}
	}
	ideal := float64(nKeys) / float64(nNodes+1)
	if f := float64(moved); f > 1.5*ideal {
		t.Errorf("WithNode remapped %d/%d keys (%.1f%%), ideal %.1f%%",
			moved, nKeys, 100*f/nKeys, 100*ideal/nKeys)
	}
	if moved == 0 {
		t.Error("WithNode remapped nothing: new node owns no keys")
	}
}

// TestRingReplicaFloorMidTransition: across a single-node membership
// change, every digest's replica set keeps its full min(R, alive)
// size on both rings, and at most one member of the set changes — so
// a blob replicated to R nodes never has fewer than min(R, alive)-1
// copies reachable while gateways disagree about the membership, and
// never fewer than min(R, alive) once they converge.
func TestRingReplicaFloorMidTransition(t *testing.T) {
	const replicas = 3
	names := nodeNames(5)
	base := cluster.NewRing(names, 0)
	for _, tc := range []struct {
		name string
		next *cluster.Ring
	}{
		{"add", base.WithNode("http://node-new:8931")},
		{"remove", base.WithoutNode(names[2])},
	} {
		t.Run(tc.name, func(t *testing.T) {
			wantOld := min(replicas, base.Len())
			wantNew := min(replicas, tc.next.Len())
			for _, d := range sampleDigests(2000) {
				old := base.Lookup(d, replicas)
				now := tc.next.Lookup(d, replicas)
				if len(old) != wantOld || len(now) != wantNew {
					t.Fatalf("digest %s: set sizes %d/%d, want %d/%d",
						d.Short(), len(old), len(now), wantOld, wantNew)
				}
				common := map[string]bool{}
				for _, n := range old {
					common[n] = true
				}
				kept := 0
				for _, n := range now {
					if common[n] {
						kept++
					}
				}
				if kept < min(wantOld, wantNew)-1 {
					t.Fatalf("digest %s: only %d replicas survive the transition (%v -> %v)",
						d.Short(), kept, old, now)
				}
			}
		})
	}
}

// TestRingReplicaSurvivesMembershipChange: when a node is removed,
// every digest that replicated onto a surviving node keeps that
// survivor in its new replica set — the property that lets failover
// plus read-repair heal the set without a full re-replication pass.
func TestRingReplicaSurvivesMembershipChange(t *testing.T) {
	const replicas = 2
	names := nodeNames(6)
	base := cluster.NewRing(names, 0)
	shrunk := cluster.NewRing(names[1:], 0)
	removed := names[0]

	for _, d := range sampleDigests(2000) {
		old := base.Lookup(d, replicas)
		now := map[string]bool{}
		for _, n := range shrunk.Lookup(d, replicas) {
			now[n] = true
		}
		for _, n := range old {
			if n == removed {
				continue
			}
			if !now[n] {
				t.Fatalf("digest %s: surviving replica %s evicted from new set", d.Short(), n)
			}
		}
	}
}
