package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/jobs"
	"repro/internal/server"
)

// defineJobs registers the gateway's background job kinds. Called once
// from New, before the metrics registry snapshots the kind list.
//
// "rebalance" and "reconcile" run on the gateway itself; the fleet
// kinds fan the same-named node job out to every alive node and
// scatter-gather their progress into the one gateway job.
func (g *Gateway) defineJobs() {
	g.jobs.Define(jobs.Spec{Kind: "rebalance", Exclusive: true, Run: g.reb.runRebalance})
	g.jobs.Define(jobs.Spec{Kind: "reconcile", Exclusive: true, Run: g.runReconcile})
	for _, kind := range []string{"scrub", "tombstone-sweep", "warm"} {
		g.jobs.Define(jobs.Spec{Kind: kind, Exclusive: true, Run: g.fleetRunner(kind)})
	}
}

// remoteJob tracks one node's half of a fleet job.
type remoteJob struct {
	node string
	id   int64
	last jobs.Snapshot
	done bool
	// fails counts consecutive failed polls; the node is given up on
	// after fleetPollGiveUp of them.
	fails int
}

const (
	fleetPollInterval = 50 * time.Millisecond
	fleetPollGiveUp   = 20
)

// fleetRunner returns the Runner for a fleet-wide kind.
func (g *Gateway) fleetRunner(kind string) jobs.Runner {
	return func(ctx context.Context, j *jobs.Job) error {
		return g.runFleet(ctx, j, kind)
	}
}

// runFleet starts the kind on every alive node, then polls each remote
// job and folds the per-node progress counters (summed) plus "nodes",
// "started" and "nodes_done" into the gateway job. Aborting the
// gateway job aborts every remote job still running.
func (g *Gateway) runFleet(ctx context.Context, j *jobs.Job, kind string) error {
	nodes := g.aliveNodes()
	if len(nodes) == 0 {
		return errors.New("cluster: no alive node to run " + kind)
	}
	j.Set("nodes", int64(len(nodes)))
	args := j.Snapshot().Args

	g.scatters.Add(1)
	res := scatter(ctx, g, nodes, func(ctx context.Context, c *server.Client) (server.JobInfo, error) {
		hctx, cancel := context.WithTimeout(ctx, g.hop)
		defer cancel()
		return c.StartJobCtx(hctx, kind, args)
	})
	var remotes []*remoteJob
	var failures []string
	for _, nr := range res {
		if nr.err != nil {
			failures = append(failures, fmt.Sprintf("start %s: %v", nr.node, nr.err))
			continue
		}
		remotes = append(remotes, &remoteJob{node: nr.node, id: nr.val.ID, last: nr.val})
	}
	j.Set("started", int64(len(remotes)))
	if len(remotes) == 0 {
		return fmt.Errorf("cluster: %s started on no node: %s", kind, strings.Join(failures, "; "))
	}

	fold := func() {
		sums := map[string]int64{}
		ndone := 0
		for _, r := range remotes {
			for k, v := range r.last.Progress {
				sums[k] += v
			}
			if r.last.Status.Terminal() {
				ndone++
			}
		}
		for k, v := range sums {
			j.Set(k, v)
		}
		j.Set("nodes_done", int64(ndone))
	}

	// abortRemotes uses fresh hop-bounded contexts: the job ctx that
	// triggered the abort is already dead.
	abortRemotes := func() {
		for _, r := range remotes {
			if r.done {
				continue
			}
			if c := g.reg.Client(r.node); c != nil {
				hctx, cancel := context.WithTimeout(context.Background(), g.hop)
				_, _ = c.AbortJobCtx(hctx, r.id)
				cancel()
			}
		}
	}

	tick := time.NewTicker(fleetPollInterval)
	defer tick.Stop()
	for {
		pending := 0
		for _, r := range remotes {
			if r.done {
				continue
			}
			c := g.reg.Client(r.node)
			if c == nil {
				r.done = true
				failures = append(failures, fmt.Sprintf("%s: left the cluster mid-job", r.node))
				continue
			}
			hctx, cancel := context.WithTimeout(ctx, g.hop)
			snap, err := c.JobCtx(hctx, r.id)
			cancel()
			g.observe(r.node, err)
			if err != nil {
				if r.fails++; r.fails >= fleetPollGiveUp {
					r.done = true
					failures = append(failures, fmt.Sprintf("%s: lost job %d: %v", r.node, r.id, err))
				} else {
					pending++
				}
				continue
			}
			r.fails = 0
			r.last = snap
			if snap.Status.Terminal() {
				r.done = true
				if snap.Status == jobs.StatusFailed {
					failures = append(failures, fmt.Sprintf("%s: %s", r.node, snap.Error))
				}
			} else {
				pending++
			}
		}
		fold()
		if pending == 0 {
			break
		}
		select {
		case <-ctx.Done():
			abortRemotes()
			return ctx.Err()
		case <-tick.C:
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("cluster: %s: %s", kind, strings.Join(failures, "; "))
	}
	return nil
}

// runReconcile diffs the gateway task table against every reachable
// node's task listing. Gateway mappings whose node no longer knows the
// task (node restart) are dropped; node tasks the gateway does not
// know — orphans from timed-out loads or out-of-band API use — are
// adopted into the table (mode=adopt, the default) or unloaded off the
// node (mode=cancel). Unreachable nodes are skipped: their mappings
// and tasks are reconciled once they answer again.
func (g *Gateway) runReconcile(ctx context.Context, j *jobs.Job) error {
	mode := j.Arg("mode")
	if mode == "" {
		mode = "adopt"
	}
	if mode != "adopt" && mode != "cancel" {
		return fmt.Errorf("reconcile: bad mode %q (want adopt or cancel)", mode)
	}

	g.scatters.Add(1)
	res := scatter(ctx, g, g.aliveNodes(), func(ctx context.Context, c *server.Client) ([]server.TaskInfo, error) {
		hctx, cancel := context.WithTimeout(ctx, g.hop)
		defer cancel()
		return c.TasksCtx(hctx)
	})
	listed := make(map[string]map[int64]server.TaskInfo) // reachable nodes only
	for _, nr := range res {
		if nr.err != nil {
			j.Add("nodes_skipped", 1)
			continue
		}
		m := make(map[int64]server.TaskInfo, len(nr.val))
		for _, ti := range nr.val {
			m[ti.ID] = ti
		}
		listed[nr.node] = m
	}

	// Pass 1: drop mappings the owning node disowned, and index the
	// survivors so pass 2 can spot node tasks missing from the table.
	var dropped int64
	known := make(map[string]map[int64]bool)
	g.mu.Lock()
	for id, t := range g.tasks {
		if m, reachable := listed[t.node]; reachable {
			if _, alive := m[t.remote]; !alive {
				delete(g.tasks, id)
				dropped++
				continue
			}
		}
		if known[t.node] == nil {
			known[t.node] = make(map[int64]bool)
		}
		known[t.node][t.remote] = true
	}
	g.mu.Unlock()
	j.Set("dropped", dropped)

	// Pass 2: orphaned node tasks.
	for node, m := range listed {
		for rid, ti := range m {
			if known[node][rid] {
				continue
			}
			if ctx.Err() != nil {
				return ctx.Err()
			}
			switch mode {
			case "adopt":
				// Re-check under the lock: a concurrent load or an
				// earlier reconcile may have mapped the task since the
				// scatter.
				adopted := false
				g.mu.Lock()
				dup := false
				for _, t := range g.tasks {
					if t.node == node && t.remote == rid {
						dup = true
						break
					}
				}
				if !dup {
					id := g.nextID
					g.nextID++
					g.tasks[id] = &gwTask{id: id, node: node, remote: rid, digest: ti.Digest}
					adopted = true
				}
				g.mu.Unlock()
				if adopted {
					j.Add("adopted", 1)
				}
			case "cancel":
				c := g.reg.Client(node)
				if c == nil {
					j.Add("cancel_errors", 1)
					continue
				}
				hctx, cancel := context.WithTimeout(ctx, g.hop)
				err := c.UnloadCtx(hctx, rid)
				cancel()
				g.observe(node, err)
				if err != nil && server.StatusCode(err) != http.StatusNotFound {
					j.Add("cancel_errors", 1)
					continue
				}
				j.Add("cancelled", 1)
			}
		}
	}
	return nil
}

// ── HTTP surface ───────────────────────────────────────────────────

func (g *Gateway) handleStartJob(w http.ResponseWriter, r *http.Request) {
	var req server.StartJobRequest
	if !g.decodeBody(w, r, &req) {
		return
	}
	j, err := g.jobs.Start(req.Kind, req.Args)
	if err != nil {
		server.WriteJobStartError(w, err, g.jobs.Kinds())
		return
	}
	writeJSON(w, http.StatusAccepted, j.Snapshot())
}

// handleListJobs merges the gateway's own jobs (Node="gateway") with
// every alive node's listing (Node=the node URL), so one GET shows the
// whole fleet's background activity.
func (g *Gateway) handleListJobs(w http.ResponseWriter, r *http.Request) {
	out := g.jobs.List()
	for i := range out {
		out[i].Node = "gateway"
	}
	g.scatters.Add(1)
	res := scatter(r.Context(), g, g.aliveNodes(), func(ctx context.Context, c *server.Client) ([]server.JobInfo, error) {
		return c.JobsCtx(ctx)
	})
	for _, nr := range res {
		if nr.err != nil {
			continue
		}
		for _, s := range nr.val {
			s.Node = nr.node
			out = append(out, s)
		}
	}
	writeJSON(w, http.StatusOK, out)
}

// jobFromPath resolves {id} against the gateway's own table.
func (g *Gateway) jobFromPath(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad job id %q", r.PathValue("id"))
		return nil, false
	}
	j, ok := g.jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "job %d not found", id)
		return nil, false
	}
	return j, true
}

func (g *Gateway) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := g.jobFromPath(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

// handleAbortJob signals the abort and returns the job's snapshot
// immediately — a fleet job's runner aborts its remote halves while
// winding down; poll GET /jobs/{id} for the terminal state.
func (g *Gateway) handleAbortJob(w http.ResponseWriter, r *http.Request) {
	j, ok := g.jobFromPath(w, r)
	if !ok {
		return
	}
	g.jobs.Abort(j.ID())
	writeJSON(w, http.StatusOK, j.Snapshot())
}
