package cluster

import (
	"time"

	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// newGatewayMetrics builds the gateway's Prometheus registry. Every
// exported value reads the same process-lifetime cumulative counters
// GET /stats reports, so rate() over a scrape series is meaningful.
// Called once from New; registration anywhere else is a wiring bug
// (and flagged by the metricreg analyzer).
func newGatewayMetrics(g *Gateway) *metrics.Registry {
	reg := metrics.NewRegistry()

	g.opLat = reg.HistogramVec("vbs_gateway_op_duration_seconds",
		"End-to-end gateway latency per operation, including node hops.",
		nil, "op")
	// Instantiate the known op labels so the family is scrapeable
	// from boot, before any traffic arrives.
	for _, op := range []string{"load", "vbs_get", "batch"} {
		g.opLat.With(op)
	}

	// Traffic counters.
	reg.CounterFunc("vbs_gateway_proxied_total",
		"Requests proxied to a node.",
		func() float64 { return float64(g.proxied.Load()) })
	reg.CounterFunc("vbs_gateway_replicated_total",
		"Successful write-through and repair replica copies.",
		func() float64 { return float64(g.replicated.Load()) })
	reg.CounterFunc("vbs_gateway_replication_failures_total",
		"Failed replica copies (healed later by read-repair).",
		func() float64 { return float64(g.replicationFails.Load()) })
	reg.CounterFunc("vbs_gateway_failovers_total",
		"Requests served by a non-primary owner.",
		func() float64 { return float64(g.failovers.Load()) })
	reg.CounterFunc("vbs_gateway_read_repairs_total",
		"Degraded replica sets healed after a read.",
		func() float64 { return float64(g.readRepairs.Load()) })
	reg.CounterFunc("vbs_gateway_repair_checks_total",
		"Asynchronous owner-verification sweeps run.",
		func() float64 { return float64(g.repairChecks.Load()) })
	reg.CounterFunc("vbs_gateway_scatter_fallbacks_total",
		"Reads that missed every owner and scattered fleet-wide.",
		func() float64 { return float64(g.scatterFallbacks.Load()) })
	reg.CounterFunc("vbs_gateway_scatters_total",
		"Fleet-wide scatter-gather fan-outs.",
		func() float64 { return float64(g.scatters.Load()) })
	reg.CounterFunc("vbs_gateway_retries_total",
		"Extra per-hop attempts spent on transport-failure retries.",
		func() float64 { return float64(g.retries.Load() + g.reg.Retries()) })
	reg.CounterFunc("vbs_gateway_tombstone_sweeps_total",
		"Deletes spread fleet-wide after a 410 surfaced mid-repair.",
		func() float64 { return float64(g.tombstoneSweeps.Load()) })

	// Membership / topology gauges.
	reg.GaugeFunc("vbs_cluster_nodes",
		"Cluster members in the registry (any health state).",
		func() float64 { return float64(len(g.reg.Names())) })
	reg.GaugeFunc("vbs_cluster_alive_nodes",
		"Cluster members currently reachable.",
		func() float64 { return float64(len(g.aliveNodes())) })
	reg.GaugeFunc("vbs_cluster_replicas",
		"Configured replication factor.",
		func() float64 { return float64(g.replicas) })
	reg.GaugeFunc("vbs_cluster_membership_version",
		"Runtime membership changes (add, drain, remove) since boot.",
		func() float64 { return float64(g.mshipVer.Load()) })
	reg.GaugeFunc("vbs_gateway_tasks",
		"Tasks loaded through this gateway.",
		func() float64 {
			g.mu.Lock()
			defer g.mu.Unlock()
			return float64(len(g.tasks))
		})
	reg.GaugeFunc("vbs_gateway_uptime_seconds",
		"Seconds since the gateway booted.",
		func() float64 { return time.Since(g.start).Seconds() })

	// Rebalancer: cumulative work counters (never reset by a pass or a
	// job restart) plus the last pass duration.
	rb := g.reb
	reg.CounterFunc("vbs_rebalance_passes_total",
		"Completed rebalance passes.",
		func() float64 { return float64(rb.passes.Load()) })
	reg.CounterFunc("vbs_rebalance_aborted_total",
		"Rebalance passes cut short by a membership change.",
		func() float64 { return float64(rb.aborted.Load()) })
	reg.CounterFunc("vbs_rebalance_blobs_examined_total",
		"Blobs examined against the ring.",
		func() float64 { return float64(rb.examined.Load()) })
	reg.CounterFunc("vbs_rebalance_copies_total",
		"Under-replicated blobs copied to an owner.",
		func() float64 { return float64(rb.copies.Load()) })
	reg.CounterFunc("vbs_rebalance_trims_total",
		"Surplus replicas trimmed off non-owners.",
		func() float64 { return float64(rb.trims.Load()) })
	reg.CounterFunc("vbs_rebalance_tombstones_propagated_total",
		"Delete tombstones spread to holders.",
		func() float64 { return float64(rb.tombs.Load()) })
	reg.CounterFunc("vbs_rebalance_skipped_total",
		"Blobs left alone (referenced, sourceless, or delete raced).",
		func() float64 { return float64(rb.skipped.Load()) })
	reg.CounterFunc("vbs_rebalance_errors_total",
		"Rebalance operations that failed (retried next pass).",
		func() float64 { return float64(rb.errs.Load()) })
	reg.GaugeFunc("vbs_rebalance_last_pass_ms",
		"Duration of the last completed rebalance pass.",
		func() float64 {
			rb.mu.Lock()
			defer rb.mu.Unlock()
			return float64(rb.lastPassMS)
		})

	g.transport = transport.NewMetrics(reg)

	jobs.RegisterMetrics(reg, g.jobs)
	return reg
}
