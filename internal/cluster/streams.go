package cluster

import (
	"context"
	"encoding/json"
	"errors"
	"log"
	"net"
	"sync"

	"repro/internal/repo"
	"repro/internal/server"
	"repro/internal/transport"
)

// streamPool lazily maintains one persistent framed stream per node —
// the gateway's data plane. Streams open on first use, reconnect with
// backoff on their own, and close when the node leaves the cluster or
// the gateway stops.
type streamPool struct {
	enabled bool
	metrics *transport.Metrics

	mu      sync.Mutex
	streams map[string]*transport.Stream
	closed  bool
}

func newStreamPool(enabled bool, m *transport.Metrics) *streamPool {
	return &streamPool{enabled: enabled, metrics: m, streams: make(map[string]*transport.Stream)}
}

// get returns the node's stream, opening it on first use (the dial
// itself runs in the background). Nil when streams are disabled or
// the pool is closed.
func (p *streamPool) get(node string) *transport.Stream {
	if p == nil || !p.enabled {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.closed {
		return nil
	}
	if st, ok := p.streams[node]; ok {
		return st
	}
	st := transport.Open(func(ctx context.Context) (net.Conn, error) {
		return transport.Dial(ctx, node)
	}, transport.Config{Compress: true, Metrics: p.metrics, Logf: log.Printf})
	p.streams[node] = st
	return st
}

// ready returns the node's stream only once its connection is live.
// Callers fall back to per-request HTTP while it is cold or down, so a
// node that cannot speak the protocol (older build, -streams=false)
// never strands work on a stream that cannot deliver it; get() has
// still warmed the stream so it is ready next time.
func (p *streamPool) ready(node string) *transport.Stream {
	st := p.get(node)
	if st == nil || !st.Connected() {
		return nil
	}
	return st
}

// drop closes and forgets the node's stream (node left the cluster).
func (p *streamPool) drop(node string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	st := p.streams[node]
	delete(p.streams, node)
	p.mu.Unlock()
	if st != nil {
		st.Close()
	}
}

// closeAll shuts the pool down for gateway stop.
func (p *streamPool) closeAll() {
	if p == nil {
		return
	}
	p.mu.Lock()
	sts := make([]*transport.Stream, 0, len(p.streams))
	for _, st := range p.streams {
		sts = append(sts, st)
	}
	clear(p.streams)
	p.closed = true
	p.mu.Unlock()
	for _, st := range sts {
		st.Close()
	}
}

// objPutMsg encodes a blob put for the stream: the container ships
// raw (it is already LZSS-compressed end to end), addressed by its
// content digest which the node re-verifies on arrival.
func objPutMsg(data []byte, force bool) []byte {
	return transport.EncodeObjPut([32]byte(repo.DigestOf(data)), force, data)
}

// putBlobNode copies a blob to one node synchronously — one RPC over
// its stream when live, else HTTP with transport retries. Repair and
// rebalance copies come through here because they need a definite
// outcome (a 410 turns the copy into delete propagation). The put is
// idempotent, so a stream disconnect mid-call safely retries over
// HTTP.
func (g *Gateway) putBlobNode(ctx context.Context, node string, data []byte, force bool) (server.PutVBSResponse, error) {
	var out server.PutVBSResponse
	if st := g.streams.ready(node); st != nil {
		hctx, cancel := context.WithTimeout(ctx, g.hop)
		resp, err := st.Call(hctx, objPutMsg(data, force), true)
		cancel()
		if err == nil {
			derr := server.DecodeStreamResult(resp, &out)
			g.observe(node, derr)
			return out, derr
		}
	}
	c := g.reg.Client(node)
	if c == nil {
		return out, errNotMember
	}
	err := g.retryTransport(ctx, node, func(ctx context.Context) error {
		var perr error
		if force {
			out, perr = c.PutVBSForce(ctx, data)
		} else {
			out, perr = c.PutVBS(ctx, data)
		}
		return perr
	})
	return out, err
}

// nodeBatch runs one sub-batch on a node — one RPC over its stream
// when live, else one HTTP POST. A call that reached the wire without
// a response (disconnect, or the hop deadline expiring mid-call) is
// surfaced, never replayed over HTTP: the node may have executed the
// batch, and loads are not idempotent.
func (g *Gateway) nodeBatch(ctx context.Context, node string, req server.BatchRequest) (server.BatchResponse, error) {
	var out server.BatchResponse
	g.proxied.Add(1)
	if st := g.streams.ready(node); st != nil {
		body, err := json.Marshal(req)
		if err != nil {
			return out, err
		}
		hctx, cancel := context.WithTimeout(ctx, g.hop)
		resp, cerr := st.Call(hctx, transport.EncodeMsg(transport.MsgBatch, body), false)
		cancel()
		if cerr == nil {
			derr := server.DecodeStreamResult(resp, &out)
			g.observe(node, derr)
			return out, derr
		}
		g.observe(node, cerr)
		if errors.Is(cerr, transport.ErrDisconnected) {
			// Written with no response: outcome unknown, retry unsafe.
			return out, cerr
		}
		// The request was never written (still queued at ctx expiry,
		// pool closing, stream racing shut): HTTP is safe.
	}
	c := g.reg.Client(node)
	if c == nil {
		return out, errNotMember
	}
	hctx, cancel := context.WithTimeout(ctx, g.hop)
	defer cancel()
	out, err := c.BatchCtx(hctx, req)
	g.observe(node, err)
	return out, err
}
