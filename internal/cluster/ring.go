// Package cluster turns N independent vbsd daemons into one sharded
// serving cluster behind a thin gateway that speaks the same
// HTTP/JSON API as a single daemon (cmd/vbsgw; the unchanged
// server.Client works against it).
//
// Blobs are routed by their content address over a deterministic
// consistent-hash ring (virtual nodes): every digest maps to a
// primary node plus R−1 replicas, membership changes remap only
// ~1/N of the key space, and the mapping is a pure function of the
// node names — two gateways (or one gateway across restarts) agree
// without coordination.
//
// A registry probes every node's /healthz and tracks alive → suspect
// → down transitions; reads fail over across the replica set (and
// fall back to a full scatter for blobs imported out-of-band), writes
// replicate through to R nodes, and replica misses are repaired on
// read. Fleet-wide endpoints (GET /vbs, /tasks, /fabrics, /stats)
// scatter-gather and merge, with a cluster block added to /stats.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"sort"

	"repro/internal/repo"
)

// Ring is a deterministic consistent-hash ring with virtual nodes.
// It is immutable after construction: membership changes build a new
// Ring (see Gateway). The zero value is not usable; use NewRing.
//
// Determinism matters twice: a digest must route to the same node
// from any gateway process (no coordination, no persisted state), and
// across restarts (so blobs written yesterday are found today).
// Everything is therefore derived from SHA-256 of the node names —
// never from map iteration order or process-local state.
type Ring struct {
	vnodes int
	nodes  []string // sorted unique node names
	points []point  // sorted by (hash, node)
}

// point is one virtual node: a position on the [0, 2^64) circle owned
// by nodes[node].
type point struct {
	hash uint64
	node int32
}

// DefaultVNodes is the virtual-node count per physical node: enough
// that single-node membership changes remap close to the ideal 1/N of
// keys (the ring property test pins ≤ 1.5/N at this setting).
const DefaultVNodes = 128

// NewRing builds a ring over the given node names (base URLs).
// Duplicates are dropped; input order is irrelevant. vnodes <= 0
// selects DefaultVNodes.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	uniq := make([]string, 0, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if !seen[n] {
			seen[n] = true
			uniq = append(uniq, n)
		}
	}
	sort.Strings(uniq)
	r := &Ring{
		vnodes: vnodes,
		nodes:  uniq,
		points: make([]point, 0, len(uniq)*vnodes),
	}
	var buf [8]byte
	for i, n := range uniq {
		h := sha256.New()
		for v := 0; v < vnodes; v++ {
			h.Reset()
			h.Write([]byte(n))
			binary.BigEndian.PutUint64(buf[:], uint64(v))
			h.Write(buf[:])
			sum := h.Sum(nil)
			r.points = append(r.points, point{
				hash: binary.BigEndian.Uint64(sum),
				node: int32(i),
			})
		}
	}
	// Tie-break equal hashes by node index (itself derived from the
	// sorted names) so even a 2^-64 collision cannot make two rings
	// built from the same membership disagree.
	sort.Slice(r.points, func(a, b int) bool {
		if r.points[a].hash != r.points[b].hash {
			return r.points[a].hash < r.points[b].hash
		}
		return r.points[a].node < r.points[b].node
	})
	return r
}

// Nodes returns the ring membership in sorted order. The slice is
// shared; callers must not mutate it.
func (r *Ring) Nodes() []string { return r.nodes }

// Has reports whether a node is on the ring.
func (r *Ring) Has(name string) bool {
	i := sort.SearchStrings(r.nodes, name)
	return i < len(r.nodes) && r.nodes[i] == name
}

// WithNode returns a new ring with one node added, leaving the
// receiver untouched (copy-on-write: runtime membership changes swap
// ring pointers, they never mutate a ring a request may be routing
// on). The existing nodes' virtual-node hashes are reused — only the
// new node's vnodes are hashed — and the result is bit-identical to
// NewRing over the grown membership, so every gateway that hears of
// the change independently converges to the same Version.
func (r *Ring) WithNode(name string) *Ring {
	if r.Has(name) {
		return r
	}
	at := sort.SearchStrings(r.nodes, name)
	nodes := make([]string, 0, len(r.nodes)+1)
	nodes = append(nodes, r.nodes[:at]...)
	nodes = append(nodes, name)
	nodes = append(nodes, r.nodes[at:]...)
	nr := &Ring{
		vnodes: r.vnodes,
		nodes:  nodes,
		points: make([]point, 0, len(nodes)*r.vnodes),
	}
	// Old points survive with shifted indices; only `name` is hashed.
	for _, p := range r.points {
		if p.node >= int32(at) {
			p.node++
		}
		nr.points = append(nr.points, p)
	}
	h := sha256.New()
	var buf [8]byte
	for v := 0; v < r.vnodes; v++ {
		h.Reset()
		h.Write([]byte(name))
		binary.BigEndian.PutUint64(buf[:], uint64(v))
		h.Write(buf[:])
		sum := h.Sum(nil)
		nr.points = append(nr.points, point{
			hash: binary.BigEndian.Uint64(sum),
			node: int32(at),
		})
	}
	sort.Slice(nr.points, func(a, b int) bool {
		if nr.points[a].hash != nr.points[b].hash {
			return nr.points[a].hash < nr.points[b].hash
		}
		return nr.points[a].node < nr.points[b].node
	})
	return nr
}

// WithoutNode returns a new ring with one node removed (receiver
// untouched; see WithNode). Removing the last node yields an empty
// ring, on which every Lookup returns nil.
func (r *Ring) WithoutNode(name string) *Ring {
	if !r.Has(name) {
		return r
	}
	at := sort.SearchStrings(r.nodes, name)
	nodes := make([]string, 0, len(r.nodes)-1)
	nodes = append(nodes, r.nodes[:at]...)
	nodes = append(nodes, r.nodes[at+1:]...)
	nr := &Ring{
		vnodes: r.vnodes,
		nodes:  nodes,
		points: make([]point, 0, len(nodes)*r.vnodes),
	}
	// Dropping points preserves their sorted order; no re-sort needed.
	for _, p := range r.points {
		switch {
		case p.node == int32(at):
			continue
		case p.node > int32(at):
			p.node--
		}
		nr.points = append(nr.points, p)
	}
	return nr
}

// Len returns the number of physical nodes.
func (r *Ring) Len() int { return len(r.nodes) }

// Version is a digest of the membership (names + vnode count): two
// rings with equal Version route identically. It is reported in the
// cluster stats block so operators can confirm gateways agree.
func (r *Ring) Version() uint64 {
	h := sha256.New()
	var buf [8]byte
	binary.BigEndian.PutUint64(buf[:], uint64(r.vnodes))
	h.Write(buf[:])
	for _, n := range r.nodes {
		binary.BigEndian.PutUint64(buf[:], uint64(len(n)))
		h.Write(buf[:])
		h.Write([]byte(n))
	}
	return binary.BigEndian.Uint64(h.Sum(nil))
}

// keyPoint places a digest on the circle. The digest is already
// SHA-256 of the blob, so its first eight bytes are uniform — no
// re-hash needed.
func keyPoint(d repo.Digest) uint64 {
	return binary.BigEndian.Uint64(d[:8])
}

// Lookup returns the first n distinct nodes clockwise from the
// digest's point: the primary followed by its replicas. It returns
// fewer than n when the ring holds fewer physical nodes, and nil on
// an empty ring. The result is freshly allocated.
func (r *Ring) Lookup(d repo.Digest, n int) []string {
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	key := keyPoint(d)
	start := sort.Search(len(r.points), func(i int) bool {
		return r.points[i].hash >= key
	})
	out := make([]string, 0, n)
	taken := make(map[int32]bool, n)
	for i := 0; len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !taken[p.node] {
			taken[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}

// Owner returns the primary node for a digest ("" on an empty ring).
func (r *Ring) Owner(d repo.Digest) string {
	own := r.Lookup(d, 1)
	if len(own) == 0 {
		return ""
	}
	return own[0]
}
