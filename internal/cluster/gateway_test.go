package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/cluster"
	"repro/internal/repo"
	"repro/internal/server"
)

// TestGatewayLoadReplicatesAndServesThroughFailover is the acceptance
// scenario: tasks loaded through the gateway with -replicas 2 land on
// two nodes, and after killing any single node every digest is still
// retrievable byte-identical through the gateway — with the
// *unchanged* server.Client.
func TestGatewayLoadReplicatesAndServesThroughFailover(t *testing.T) {
	cl, gw, nodes := newCluster(t, 3, 1, cluster.Options{Replicas: 2})

	containers := map[string][]byte{}
	for seed := int64(1); seed <= 4; seed++ {
		data := makeVBS(t, seed, 6)
		res, err := cl.LoadCtx(t.Context(), data, nil, nil, nil)
		if err != nil {
			t.Fatalf("load seed %d: %v", seed, err)
		}
		if res.Digest == "" {
			t.Fatalf("load seed %d returned no digest", seed)
		}
		containers[res.Digest] = data
	}

	// Write-through replication: every digest on exactly 2 nodes.
	for digest := range containers {
		if holders := nodesHolding(t, nodes, digest); len(holders) != 2 {
			t.Fatalf("digest %s on %d node(s) %v, want 2", digest[:12], len(holders), holders)
		}
	}

	// Byte-identical serving before any failure.
	for digest, want := range containers {
		got, err := cl.GetVBSCtx(t.Context(), digest)
		if err != nil {
			t.Fatalf("get %s: %v", digest[:12], err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("digest %s served differently", digest[:12])
		}
	}

	// Kill one node; every digest must still serve byte-identical.
	nodes[1].kill()
	for digest, want := range containers {
		got, err := cl.GetVBSCtx(t.Context(), digest)
		if err != nil {
			t.Fatalf("get %s after kill: %v", digest[:12], err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("digest %s served differently after kill", digest[:12])
		}
	}

	// The cluster stats block reflects the topology and traffic.
	var st cluster.StatsResponse
	raw, err := getJSON(cl, "/stats", &st)
	if err != nil {
		t.Fatalf("stats: %v (%s)", err, raw)
	}
	if len(st.Cluster.Nodes) != 3 {
		t.Fatalf("cluster stats list %d nodes", len(st.Cluster.Nodes))
	}
	if st.Cluster.Replicas != 2 || st.Cluster.RingVersion == "" {
		t.Errorf("cluster block = %+v", st.Cluster)
	}
	if st.Cluster.Proxied == 0 || st.Cluster.Replicated == 0 {
		t.Errorf("counters not advancing: %+v", st.Cluster)
	}

	// A digest that was primaried on the killed node requires at
	// least one failover by now; loads on live nodes must keep
	// working too.
	if _, err := cl.LoadCtx(t.Context(), makeVBS(t, 9, 6), nil, nil, nil); err != nil {
		t.Fatalf("load after kill: %v", err)
	}
	_ = gw
}

// getJSON fetches a gateway endpoint into out directly (the plain
// client API cannot see cluster-only fields).
func getJSON(cl *server.Client, path string, out any) (string, error) {
	resp, err := http.Get(cl.Base() + path)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		return "", err
	}
	return string(raw), json.Unmarshal(raw, out)
}

// TestGatewayTaskLifecycle: list/relocate/unload proxy to the owning
// node and present fleet-global identifiers.
func TestGatewayTaskLifecycle(t *testing.T) {
	cl, _, nodes := newCluster(t, 3, 2, cluster.Options{Replicas: 2})

	data := makeVBS(t, 11, 6)
	res, err := cl.LoadCtx(t.Context(), data, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	tasks, err := cl.TasksCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 1 || tasks[0].ID != res.ID {
		t.Fatalf("tasks = %+v", tasks)
	}
	if tasks[0].Node == "" {
		t.Error("merged task listing missing node name")
	}
	if tasks[0].Fabric != res.Fabric {
		t.Errorf("listing fabric %d, load reported %d", tasks[0].Fabric, res.Fabric)
	}

	moved, err := cl.RelocateCtx(t.Context(), res.ID, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if moved.X != 8 || moved.Y != 8 || moved.ID != res.ID {
		t.Errorf("relocated = %+v", moved)
	}

	// The merged fabric listing covers the whole fleet with distinct
	// global indices and node attribution.
	fabrics, err := cl.FabricsCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(fabrics) != 6 {
		t.Fatalf("merged fabric listing has %d entries, want 6", len(fabrics))
	}
	seen := map[int]bool{}
	for _, f := range fabrics {
		if seen[f.Index] {
			t.Fatalf("duplicate global fabric index %d", f.Index)
		}
		seen[f.Index] = true
		if f.Node == "" {
			t.Fatal("fabric listing missing node attribution")
		}
	}

	// Compaction routes by global index.
	if _, err := cl.CompactCtx(t.Context(), fabrics[len(fabrics)-1].Index); err != nil {
		t.Fatalf("compact global fabric: %v", err)
	}

	if err := cl.UnloadCtx(t.Context(), res.ID); err != nil {
		t.Fatal(err)
	}
	if err := cl.UnloadCtx(t.Context(), res.ID); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("double unload error = %v", err)
	}
	for _, n := range nodes {
		remote, err := n.client.TasksCtx(t.Context())
		if err != nil {
			t.Fatal(err)
		}
		if len(remote) != 0 {
			t.Fatalf("node %s still holds %d task(s) after gateway unload", n.url, len(remote))
		}
	}
}

// TestGatewayPinnedFabric: pinning a fleet-global fabric index routes
// the load to that fabric's node.
func TestGatewayPinnedFabric(t *testing.T) {
	cl, _, nodes := newCluster(t, 3, 1, cluster.Options{Replicas: 1})

	// Global index 2 is node 2's only fabric (registry order).
	pin := 2
	res, err := cl.LoadCtx(t.Context(), makeVBS(t, 21, 6), &pin, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fabric != pin {
		t.Errorf("pinned load reported fabric %d, want %d", res.Fabric, pin)
	}
	remote, err := nodes[2].client.TasksCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(remote) != 1 {
		t.Fatalf("pinned node holds %d task(s), want 1", len(remote))
	}

	if _, err := cl.LoadCtx(t.Context(), makeVBS(t, 21, 6), &[]int{99}[0], nil, nil); err == nil ||
		!strings.Contains(err.Error(), "400") {
		t.Errorf("out-of-range global fabric error = %v", err)
	}
}

// TestGatewayReadRepair: a blob living only on a non-owner node (an
// out-of-band import) is found by the scatter fallback and healed
// onto its ring owners.
func TestGatewayReadRepair(t *testing.T) {
	cl, gw, nodes := newCluster(t, 3, 1, cluster.Options{Replicas: 2})

	data := makeVBS(t, 31, 6)
	d := repo.DigestOf(data)
	owners := gw.Ring().Lookup(d, 2)

	// Pick a node outside the replica set and seed the blob there.
	var outsider *testNode
	for _, n := range nodes {
		if n.url != owners[0] && n.url != owners[1] {
			outsider = n
			break
		}
	}
	if outsider == nil {
		t.Fatal("no node outside a 2-of-3 replica set?")
	}
	if _, err := outsider.client.PutVBS(context.Background(), data); err != nil {
		t.Fatal(err)
	}

	got, err := cl.GetVBSCtx(t.Context(), d.String())
	if err != nil {
		t.Fatalf("get via scatter fallback: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("scatter fallback served different bytes")
	}

	// Read-repair runs off the reply path; poll until it lands on
	// the owners.
	deadline := time.Now().Add(5 * time.Second)
	for {
		holdSet := map[string]bool{}
		for _, h := range nodesHolding(t, nodes, d.String()) {
			holdSet[h] = true
		}
		healed := true
		for _, o := range owners {
			healed = healed && holdSet[o]
		}
		if healed {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("owners %v not healed by read-repair (holders %v)",
				owners, nodesHolding(t, nodes, d.String()))
		}
		time.Sleep(5 * time.Millisecond)
	}

	var st cluster.StatsResponse
	if _, err := getJSON(cl, "/stats", &st); err != nil {
		t.Fatal(err)
	}
	if st.Cluster.ScatterFallbacks == 0 || st.Cluster.ReadRepairs == 0 {
		t.Errorf("repair counters = %+v", st.Cluster)
	}
}

// TestGatewayListVBSMergesReplicas: the merged blob listing reports
// one row per digest with a replica count.
func TestGatewayListVBSMergesReplicas(t *testing.T) {
	cl, _, _ := newCluster(t, 3, 1, cluster.Options{Replicas: 2})

	data := makeVBS(t, 41, 6)
	res, err := cl.LoadCtx(t.Context(), data, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Loading the identical container again deduplicates fleet-wide.
	if _, err := cl.LoadCtx(t.Context(), data, nil, nil, nil); err != nil {
		t.Fatal(err)
	}

	blobs, err := cl.ListVBSCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 1 {
		t.Fatalf("merged listing has %d rows, want 1", len(blobs))
	}
	if blobs[0].Digest != res.Digest || blobs[0].Replicas != 2 || blobs[0].Tasks != 2 {
		t.Errorf("merged blob = %+v", blobs[0])
	}

	// Deleting while referenced is vetoed — and the veto must not
	// cost replicas: a parallel fan-out would delete the copy on the
	// task-free replica node before the owner's 409 lands, silently
	// degrading the blob to a single copy (caught driving vbsgw by
	// hand: the next node kill then 502'd a digest that "failed" to
	// delete).
	if err := cl.DeleteVBSCtx(t.Context(), res.Digest); err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("delete while referenced = %v, want 409", err)
	}
	blobs, err = cl.ListVBSCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(blobs) != 1 || blobs[0].Replicas != 2 {
		t.Fatalf("vetoed delete changed the listing: %+v", blobs)
	}
	tasks, err := cl.TasksCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range tasks {
		if err := cl.UnloadCtx(t.Context(), task.ID); err != nil {
			t.Fatal(err)
		}
	}
	if err := cl.DeleteVBSCtx(t.Context(), res.Digest); err != nil {
		t.Fatalf("delete after unload: %v", err)
	}
	if _, err := cl.GetVBSCtx(t.Context(), res.Digest); err == nil || !strings.Contains(err.Error(), "404") {
		t.Errorf("get after delete = %v, want 404", err)
	}
}

// TestGatewayConcurrentLoads exercises the routing and replication
// paths under the race detector.
func TestGatewayConcurrentLoads(t *testing.T) {
	cl, _, _ := newCluster(t, 3, 2, cluster.Options{Replicas: 2})

	const goroutines = 8
	containers := make([][]byte, goroutines)
	for i := range containers {
		containers[i] = makeVBS(t, int64(100+i%4), 5)
	}
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			res, err := cl.LoadCtx(t.Context(), containers[i], nil, nil, nil)
			if err != nil {
				errs <- err
				return
			}
			if _, err := cl.GetVBSCtx(t.Context(), res.Digest); err != nil {
				errs <- err
				return
			}
			if err := cl.UnloadCtx(t.Context(), res.ID); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	tasks, err := cl.TasksCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 0 {
		t.Errorf("%d task(s) left after concurrent load/unload", len(tasks))
	}
}
