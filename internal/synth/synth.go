// Package synth turns generic netlists into packed designs for the
// K-LUT architecture: it decomposes wide LUTs into K-feasible trees
// (the technology-mapping stage of the VTR front end) and packs LUTs,
// latches and pads into the one-LUT-one-FF logic blocks of the paper's
// architecture.
package synth

import (
	"fmt"

	"repro/internal/bits"
	"repro/internal/netlist"
)

// MapToK returns a functionally equivalent circuit in which every LUT
// has at most k inputs, decomposing wider LUTs by Shannon expansion on
// their highest input variable. Pads and latches pass through
// unchanged.
func MapToK(c *netlist.Circuit, k int) (*netlist.Circuit, error) {
	if k < 2 {
		return nil, fmt.Errorf("synth: cannot map to K=%d (need K >= 2)", k)
	}
	out := netlist.NewCircuit(c.Name)
	fresh := 0
	for _, cell := range c.Cells {
		switch cell.Kind {
		case netlist.CellInput:
			out.AddInput(c.Nets[cell.Output].Name)
		case netlist.CellOutput:
			out.AddOutput(c.Nets[cell.Inputs[0]].Name)
		case netlist.CellLatch:
			out.AddLatch(c.Nets[cell.Inputs[0]].Name, c.Nets[cell.Output].Name)
		case netlist.CellLUT:
			ins := make([]string, len(cell.Inputs))
			for i, in := range cell.Inputs {
				ins[i] = c.Nets[in].Name
			}
			if err := emitLUT(out, c.Nets[cell.Output].Name, ins, cell.Truth, k, &fresh); err != nil {
				return nil, err
			}
		}
	}
	return out, nil
}

// emitLUT adds a LUT computing truth over ins to out, recursively
// Shannon-expanding while len(ins) > k.
func emitLUT(out *netlist.Circuit, name string, ins []string, truth *bits.Vec, k int, fresh *int) error {
	n := len(ins)
	if n <= k {
		_, err := out.AddLUT(name, ins, truth)
		return err
	}
	// Cofactor on the last variable.
	lo, hi := bits.NewVec(1<<uint(n-1)), bits.NewVec(1<<uint(n-1))
	for i := 0; i < 1<<uint(n-1); i++ {
		lo.Set(i, truth.Get(i))
		hi.Set(i, truth.Get(i|1<<uint(n-1)))
	}
	loName := fmt.Sprintf("%s$m%d", name, *fresh)
	*fresh++
	hiName := fmt.Sprintf("%s$m%d", name, *fresh)
	*fresh++
	sub := append([]string(nil), ins[:n-1]...)
	if err := emitLUT(out, loName, sub, lo, k, fresh); err != nil {
		return err
	}
	if err := emitLUT(out, hiName, sub, hi, k, fresh); err != nil {
		return err
	}
	// 2:1 mux on the expanded variable: inputs (lo, hi, sel).
	mux := bits.NewVec(8)
	for i := 0; i < 8; i++ {
		sel, hiV, loV := i>>2&1 == 1, i>>1&1 == 1, i&1 == 1
		if (sel && hiV) || (!sel && loV) {
			mux.Set(i, true)
		}
	}
	_, err := out.AddLUT(name, []string{loName, hiName, ins[n-1]}, mux)
	return err
}

// ExpandTruth widens an n-variable truth table to k variables; the
// added high-order variables are don't-cares.
func ExpandTruth(truth *bits.Vec, k int) *bits.Vec {
	n := 0
	for 1<<uint(n) < truth.Len() {
		n++
	}
	if 1<<uint(n) != truth.Len() {
		panic(fmt.Sprintf("synth: truth table of %d bits is not a power of two", truth.Len()))
	}
	out := bits.NewVec(1 << uint(k))
	mask := truth.Len() - 1
	for i := 0; i < out.Len(); i++ {
		out.Set(i, truth.Get(i&mask))
	}
	return out
}

// identityTruth returns the K-variable truth table of f(x) = x0.
func identityTruth(k int) *bits.Vec {
	v := bits.NewVec(1 << uint(k))
	for i := 0; i < v.Len(); i++ {
		v.Set(i, i&1 == 1)
	}
	return v
}

// Pack converts a K-feasible circuit into a packed design: each LUT
// becomes a logic block; a latch fed exclusively by one LUT is absorbed
// into that LUT's block as its flip-flop (the VPR packing rule for
// single-LUT clusters); remaining latches become registered
// pass-through blocks. It fails if any LUT has more than k inputs.
func Pack(c *netlist.Circuit, k int) (*netlist.Design, error) {
	if err := c.Validate(); err != nil {
		return nil, fmt.Errorf("synth: pack input: %w", err)
	}
	d := &netlist.Design{Name: c.Name, K: k}

	// absorbs[lut] is the latch packed into that LUT's block, when the
	// LUT's output feeds exactly that latch and nothing else.
	absorbs := make(map[netlist.CellID]netlist.CellID)
	for id, cell := range c.Cells {
		if cell.Kind != netlist.CellLatch {
			continue
		}
		dNet := cell.Inputs[0]
		drv := c.Nets[dNet].Driver
		if drv != netlist.NoCell &&
			c.Cells[drv].Kind == netlist.CellLUT &&
			len(c.Nets[dNet].Sinks) == 1 {
			if _, taken := absorbs[drv]; !taken {
				absorbs[drv] = netlist.CellID(id)
			}
		}
	}

	// netOf maps a circuit net to the design net carrying its value.
	netOf := make(map[netlist.NetID]netlist.NetID)
	// Deferred input hookups: block inputs are connected after all
	// driver blocks exist, since LUTs may read nets defined later.
	type hookup struct {
		block netlist.BlockID
		pin   int
		src   netlist.NetID // circuit net
	}
	var hookups []hookup

	for id, cell := range c.Cells {
		cid := netlist.CellID(id)
		switch cell.Kind {
		case netlist.CellInput:
			_, n := d.AddInputPad(c.Nets[cell.Output].Name)
			netOf[cell.Output] = n
		case netlist.CellLUT:
			if len(cell.Inputs) > k {
				return nil, fmt.Errorf("synth: LUT %q has %d inputs > K=%d (run MapToK first)",
					cell.Name, len(cell.Inputs), k)
			}
			name := c.Nets[cell.Output].Name
			registered := false
			outNet := cell.Output
			if latch, ok := absorbs[cid]; ok {
				registered = true
				outNet = c.Cells[latch].Output
				name = c.Nets[outNet].Name
			}
			ins := make([]netlist.NetID, len(cell.Inputs))
			for i := range ins {
				ins[i] = netlist.NoNet
			}
			bid, n := d.AddLogicBlock(name, ins, ExpandTruth(cell.Truth, k), registered)
			netOf[outNet] = n
			for i, src := range cell.Inputs {
				hookups = append(hookups, hookup{bid, i, src})
			}
		case netlist.CellLatch:
			if latch, ok := absorbs[c.Nets[cell.Inputs[0]].Driver]; ok && latch == cid {
				continue // absorbed into its driver LUT
			}
			// Registered pass-through block (identity LUT + FF).
			name := c.Nets[cell.Output].Name
			bid, n := d.AddLogicBlock(name, []netlist.NetID{netlist.NoNet}, identityTruth(k), true)
			netOf[cell.Output] = n
			hookups = append(hookups, hookup{bid, 0, cell.Inputs[0]})
		case netlist.CellOutput:
			// Handled after all drivers exist.
		}
	}
	for id, cell := range c.Cells {
		if cell.Kind != netlist.CellOutput {
			continue
		}
		src, ok := netOf[cell.Inputs[0]]
		if !ok {
			return nil, fmt.Errorf("synth: output %q reads unmapped net", c.Cells[id].Name)
		}
		d.AddOutputPad(c.Nets[cell.Inputs[0]].Name, src)
	}

	for _, h := range hookups {
		src, ok := netOf[h.src]
		if !ok {
			return nil, fmt.Errorf("synth: block input reads unmapped net %q", c.Nets[h.src].Name)
		}
		d.Blocks[h.block].Inputs[h.pin] = src
		d.Nets[src].Sinks = append(d.Nets[src].Sinks, netlist.BlockPin{Block: h.block, Input: h.pin})
	}

	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("synth: packed design invalid: %w", err)
	}
	return d, nil
}

// Synthesize is the full front end: map to K-feasible LUTs, then pack.
func Synthesize(c *netlist.Circuit, k int) (*netlist.Design, error) {
	mapped, err := MapToK(c, k)
	if err != nil {
		return nil, err
	}
	return Pack(mapped, k)
}
