package synth

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/bits"
	"repro/internal/netlist"
)

// randomCircuit builds a random sequential circuit with LUTs up to
// maxIn inputs.
func randomCircuit(rng *rand.Rand, nLUT, maxIn int) *netlist.Circuit {
	c := netlist.NewCircuit("rnd")
	var nets []string
	for i := 0; i < 6; i++ {
		n := fmt.Sprintf("pi%d", i)
		c.AddInput(n)
		nets = append(nets, n)
	}
	for i := 0; i < nLUT; i++ {
		nin := rng.Intn(maxIn) + 1
		ins := make([]string, nin)
		for j := range ins {
			ins[j] = nets[rng.Intn(len(nets))]
		}
		truth := bits.NewVec(1 << uint(nin))
		for b := 0; b < truth.Len(); b++ {
			truth.Set(b, rng.Intn(2) == 0)
		}
		out := fmt.Sprintf("n%d", i)
		if _, err := c.AddLUT(out, ins, truth); err != nil {
			panic(err)
		}
		nets = append(nets, out)
		// Occasionally register the value through a latch.
		if rng.Intn(3) == 0 {
			q := fmt.Sprintf("q%d", i)
			c.AddLatch(out, q)
			nets = append(nets, q)
		}
	}
	for i := 0; i < 4; i++ {
		c.AddOutput(nets[len(nets)-1-i])
	}
	return c
}

// stepBoth drives two simulators with the same random inputs and
// reports the first output mismatch.
func assertEquivalent(t *testing.T, rng *rand.Rand, a, b interface {
	Step(map[string]bool) map[string]bool
}, inputNames []string, steps int) {
	t.Helper()
	for s := 0; s < steps; s++ {
		in := make(map[string]bool, len(inputNames))
		for _, n := range inputNames {
			in[n] = rng.Intn(2) == 0
		}
		oa, ob := a.Step(in), b.Step(in)
		if len(oa) != len(ob) {
			t.Fatalf("step %d: output count %d != %d", s, len(oa), len(ob))
		}
		for k, v := range oa {
			if ob[k] != v {
				t.Fatalf("step %d: output %q = %v, want %v", s, k, ob[k], v)
			}
		}
	}
}

func TestMapToKPreservesFunction(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := randomCircuit(rng, 20, 9) // LUTs up to 9 inputs
		mapped, err := MapToK(c, 4)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := mapped.Validate(); err != nil {
			t.Fatalf("seed %d: mapped invalid: %v", seed, err)
		}
		for _, cell := range mapped.Cells {
			if cell.Kind == netlist.CellLUT && len(cell.Inputs) > 4 {
				t.Fatalf("seed %d: LUT with %d inputs survived", seed, len(cell.Inputs))
			}
		}
		s1, err := netlist.NewSimulator(c)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := netlist.NewSimulator(mapped)
		if err != nil {
			t.Fatal(err)
		}
		assertEquivalent(t, rng, s1, s2, s1.InputNames(), 40)
	}
}

func TestMapToKRejectsTinyK(t *testing.T) {
	if _, err := MapToK(netlist.NewCircuit("x"), 1); err == nil {
		t.Error("K=1 should be rejected")
	}
}

func TestPackPreservesFunction(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed + 100))
		c := randomCircuit(rng, 25, 6)
		d, err := Synthesize(c, 6)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s1, err := netlist.NewSimulator(c)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := netlist.NewDesignSimulator(d)
		if err != nil {
			t.Fatal(err)
		}
		assertEquivalent(t, rng, s1, s2, s1.InputNames(), 40)
	}
}

func TestPackMergesExclusiveLatch(t *testing.T) {
	c := netlist.NewCircuit("m")
	c.AddInput("a")
	c.AddInput("b")
	and2 := bits.NewVec(4)
	and2.Set(3, true)
	if _, err := c.AddLUT("x", []string{"a", "b"}, and2); err != nil {
		t.Fatal(err)
	}
	c.AddLatch("x", "q")
	c.AddOutput("q")
	d, err := Pack(c, 6)
	if err != nil {
		t.Fatal(err)
	}
	// 2 input pads + 1 merged LB + 1 output pad.
	if got := d.NumBlocks(); got != 4 {
		t.Fatalf("blocks = %d, want 4 (latch should merge)", got)
	}
	if got := d.NumLogicBlocks(); got != 1 {
		t.Fatalf("logic blocks = %d, want 1", got)
	}
	var lb *netlist.Block
	for i := range d.Blocks {
		if d.Blocks[i].Kind == netlist.LogicBlock {
			lb = &d.Blocks[i]
		}
	}
	if !lb.Registered {
		t.Error("merged block should be registered")
	}
	if lb.Name != "q" {
		t.Errorf("merged block name = %q, want q", lb.Name)
	}
}

func TestPackKeepsSharedLatchSeparate(t *testing.T) {
	// Net x feeds both a latch and an output pad, so the latch cannot
	// be absorbed: the combinational value must stay visible.
	c := netlist.NewCircuit("s")
	c.AddInput("a")
	id := bits.NewVec(2)
	id.Set(1, true)
	if _, err := c.AddLUT("x", []string{"a"}, id); err != nil {
		t.Fatal(err)
	}
	c.AddLatch("x", "q")
	c.AddOutput("x")
	c.AddOutput("q")
	d, err := Pack(c, 6)
	if err != nil {
		t.Fatal(err)
	}
	if got := d.NumLogicBlocks(); got != 2 {
		t.Fatalf("logic blocks = %d, want 2 (LUT + pass-through FF)", got)
	}
	// Behaviour check: q must be x delayed by one cycle.
	sim, err := netlist.NewDesignSimulator(d)
	if err != nil {
		t.Fatal(err)
	}
	seq := []bool{true, false, true, true, false}
	prev := false
	for i, v := range seq {
		out := sim.Step(map[string]bool{"a": v})
		if out["x"] != v {
			t.Errorf("step %d: x = %v, want %v", i, out["x"], v)
		}
		if out["q"] != prev {
			t.Errorf("step %d: q = %v, want %v", i, out["q"], prev)
		}
		prev = v
	}
}

func TestPackRejectsWideLUT(t *testing.T) {
	c := netlist.NewCircuit("w")
	ins := make([]string, 7)
	for i := range ins {
		ins[i] = fmt.Sprintf("i%d", i)
		c.AddInput(ins[i])
	}
	if _, err := c.AddLUT("x", ins, bits.NewVec(128)); err != nil {
		t.Fatal(err)
	}
	c.AddOutput("x")
	if _, err := Pack(c, 6); err == nil {
		t.Error("7-input LUT should be rejected at K=6")
	}
	if _, err := Synthesize(c, 6); err != nil {
		t.Errorf("Synthesize should decompose it: %v", err)
	}
}

func TestExpandTruth(t *testing.T) {
	and2 := bits.NewVec(4)
	and2.Set(3, true)
	e := ExpandTruth(and2, 4)
	if e.Len() != 16 {
		t.Fatalf("len = %d", e.Len())
	}
	for i := 0; i < 16; i++ {
		want := i&3 == 3
		if e.Get(i) != want {
			t.Errorf("expanded[%d] = %v, want %v", i, e.Get(i), want)
		}
	}
}

func TestExpandTruthRejectsBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	ExpandTruth(bits.NewVec(3), 4)
}

func TestSynthesizeCounters(t *testing.T) {
	// A 3-bit counter: q_i toggles when all lower bits are 1.
	c := netlist.NewCircuit("ctr")
	xor2 := bits.NewVec(4)
	xor2.Set(1, true)
	xor2.Set(2, true)
	and2 := bits.NewVec(4)
	and2.Set(3, true)
	one := bits.NewVec(2)
	one.Set(0, true)
	one.Set(1, true)

	if _, err := c.AddLUT("d0", []string{"q0"}, mustNot(t)); err != nil {
		t.Fatal(err)
	}
	c.AddLatch("d0", "q0")
	if _, err := c.AddLUT("d1", []string{"q1", "q0"}, xor2); err != nil {
		t.Fatal(err)
	}
	c.AddLatch("d1", "q1")
	if _, err := c.AddLUT("c01", []string{"q0", "q1"}, and2); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AddLUT("d2", []string{"q2", "c01"}, xor2); err != nil {
		t.Fatal(err)
	}
	c.AddLatch("d2", "q2")
	c.AddOutput("q0")
	c.AddOutput("q1")
	c.AddOutput("q2")

	d, err := Synthesize(c, 6)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := netlist.NewDesignSimulator(d)
	if err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 16; cycle++ {
		out := sim.Step(nil)
		want := cycle % 8
		got := 0
		if out["q0"] {
			got |= 1
		}
		if out["q1"] {
			got |= 2
		}
		if out["q2"] {
			got |= 4
		}
		if got != want {
			t.Fatalf("cycle %d: counter = %d, want %d", cycle, got, want)
		}
	}
}

func mustNot(t *testing.T) *bits.Vec {
	t.Helper()
	v := bits.NewVec(2)
	v.Set(0, true)
	return v
}
