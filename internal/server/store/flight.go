package store

import (
	"fmt"
	"sync"
)

// Flight collapses concurrent computations for the same digest: while
// one caller runs fn, later callers for the same key block and share
// its result instead of duplicating the work. It is the classic
// singleflight pattern, specialized to digest keys so a burst of
// clients loading the same task costs one de-virtualization.
type Flight[V any] struct {
	mu    sync.Mutex
	calls map[Digest]*call[V]
}

type call[V any] struct {
	done chan struct{}
	val  V
	err  error
}

// NewFlight returns an empty group.
func NewFlight[V any]() *Flight[V] {
	return &Flight[V]{calls: make(map[Digest]*call[V])}
}

// Do runs fn once per in-flight digest, returning the shared result
// and whether this caller piggybacked on another's call.
func (f *Flight[V]) Do(d Digest, fn func() (V, error)) (v V, err error, shared bool) {
	f.mu.Lock()
	if c, ok := f.calls[d]; ok {
		f.mu.Unlock()
		<-c.done
		return c.val, c.err, true
	}
	c := &call[V]{done: make(chan struct{})}
	f.calls[d] = c
	f.mu.Unlock()

	// Clean up even if fn panics: a wedged entry would block every
	// later caller for this digest forever. The panic itself still
	// propagates to the leader; waiters get an error instead of a
	// zero value.
	panicked := true
	defer func() {
		if panicked {
			c.err = fmt.Errorf("store: in-flight call for %s panicked", d.Short())
		}
		f.mu.Lock()
		delete(f.calls, d)
		f.mu.Unlock()
		close(c.done)
	}()
	c.val, c.err = fn()
	panicked = false
	return c.val, c.err, false
}
