// Package store is the storage layer of the vbsd runtime daemon: a
// content-addressed Virtual Bit-Stream store, a size-bounded LRU cache
// for decoded (de-virtualized) bitstreams, and a small singleflight
// group that collapses concurrent decodes of the same task.
//
// Content addressing keys every VBS by the SHA-256 of its container
// bytes. Encoding is deterministic, so identical tasks submitted by
// different clients collapse to one stored VBS, one decode, and one
// cache entry — the property that makes repeated loads O(write).
package store

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"sync"

	"repro/internal/core"
)

// Digest is the SHA-256 content address of a VBS container.
type Digest [sha256.Size]byte

// DigestOf returns the content address of raw container bytes.
func DigestOf(data []byte) Digest { return sha256.Sum256(data) }

// String returns the full lowercase hex form.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// Short returns a 12-hex-digit prefix for logs and task listings.
func (d Digest) Short() string { return d.String()[:12] }

// ParseDigest reads the hex form produced by String.
func ParseDigest(s string) (Digest, error) {
	var d Digest
	b, err := hex.DecodeString(s)
	if err != nil || len(b) != sha256.Size {
		return d, fmt.Errorf("store: bad digest %q", s)
	}
	copy(d[:], b)
	return d, nil
}

// Entry is one stored Virtual Bit-Stream.
type Entry struct {
	// Digest is the content address of Data.
	Digest Digest
	// VBS is the parsed, validated container. It is immutable: loads
	// and decodes only read it.
	VBS *core.VBS
	// Data is the container as submitted.
	Data []byte
}

// SizeBytes returns the container size.
func (e *Entry) SizeBytes() int { return len(e.Data) }

// Store is an in-memory content-addressed VBS store, safe for
// concurrent use. When bounded, least-recently-used entries are
// evicted by container bytes; eviction only costs future
// deduplication — already-loaded tasks keep their own references.
type Store struct {
	mu       sync.Mutex
	capBytes int
	entries  map[Digest]*list.Element
	order    *list.List // front = most recently used; holds *Entry
	bytes    int
}

// New returns an unbounded store.
func New() *Store { return NewBounded(0) }

// NewBounded returns a store evicting least-recently-used entries
// once stored container bytes exceed capBytes (<= 0 = unbounded).
func NewBounded(capBytes int) *Store {
	return &Store{
		capBytes: capBytes,
		entries:  make(map[Digest]*list.Element),
		order:    list.New(),
	}
}

// Put parses and admits a VBS container, returning its entry and
// whether it was already stored. A malformed container is rejected
// without being stored.
func (s *Store) Put(data []byte) (ent *Entry, existed bool, err error) {
	d := DigestOf(data)
	s.mu.Lock()
	if el, ok := s.entries[d]; ok {
		s.order.MoveToFront(el)
		s.mu.Unlock()
		return el.Value.(*Entry), true, nil
	}
	s.mu.Unlock()
	v, err := core.Parse(data)
	if err != nil {
		return nil, false, err
	}
	// Warm the de-virtualization graphs off the load critical path.
	if err := v.Warm(); err != nil {
		return nil, false, err
	}
	ent = &Entry{Digest: d, VBS: v, Data: append([]byte(nil), data...)}
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[d]; ok {
		s.order.MoveToFront(el)
		return el.Value.(*Entry), true, nil
	}
	s.entries[d] = s.order.PushFront(ent)
	s.bytes += len(ent.Data)
	for s.capBytes > 0 && s.bytes > s.capBytes && s.order.Len() > 1 {
		el := s.order.Back()
		old := el.Value.(*Entry)
		s.order.Remove(el)
		delete(s.entries, old.Digest)
		s.bytes -= len(old.Data)
	}
	return ent, false, nil
}

// Get returns a stored entry by digest, marking it recently used.
func (s *Store) Get(d Digest) (*Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[d]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*Entry), true
}

// Len returns the number of distinct stored VBS.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes returns the total stored container bytes.
func (s *Store) Bytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// MeanCompressionRatio averages VBS-size/raw-size over the stored
// tasks (the paper's Figure 4 metric; smaller is better). It returns
// 0 for an empty store.
func (s *Store) MeanCompressionRatio() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.entries) == 0 {
		return 0
	}
	sum := 0.0
	for el := s.order.Front(); el != nil; el = el.Next() {
		sum += el.Value.(*Entry).VBS.CompressionRatio()
	}
	return sum / float64(len(s.entries))
}
