// Package store is the storage layer of the vbsd runtime daemon: a
// content-addressed Virtual Bit-Stream store with an optional
// persistent disk tier, a size-bounded LRU cache for decoded
// (de-virtualized) bitstreams, and a small singleflight group that
// collapses concurrent decodes of the same task.
//
// Content addressing keys every VBS by the SHA-256 of its container
// bytes. Encoding is deterministic, so identical tasks submitted by
// different clients collapse to one stored VBS, one decode, and one
// cache entry — the property that makes repeated loads O(write).
//
// With a disk tier attached (NewTiered), the store becomes a
// two-level hierarchy: admissions are written through to the
// crash-safe internal/repo blob store, RAM eviction merely demotes
// (the disk copy remains), and Get misses fall through to disk,
// re-parse, and promote back into RAM under a singleflight guard so
// a thundering herd for one digest costs one disk read.
package store

import (
	"bytes"
	"container/list"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/repo"
)

// Digest is the SHA-256 content address of a VBS container. It is an
// alias of repo.Digest: the persistence tier and the RAM tier key
// blobs identically.
type Digest = repo.Digest

// DigestOf returns the content address of raw container bytes.
func DigestOf(data []byte) Digest { return repo.DigestOf(data) }

// ParseDigest reads the hex form produced by Digest.String.
func ParseDigest(s string) (Digest, error) { return repo.ParseDigest(s) }

// ErrNotFound reports a digest held by neither tier.
var ErrNotFound = errors.New("store: not found")

// ErrDisk wraps disk-tier I/O failures surfaced by Put: the container
// was valid but could not be persisted. Callers translating to HTTP
// must report these as server-side (5xx), not client, errors — a
// cluster gateway fails loads over to another replica on 5xx but
// treats other Put failures as deterministic 400s.
var ErrDisk = errors.New("store: disk tier")

// Entry is one stored Virtual Bit-Stream.
type Entry struct {
	// Digest is the content address of Data.
	Digest Digest
	// VBS is the parsed, validated container. It is immutable: loads
	// and decodes only read it.
	VBS *core.VBS
	// Data is the container as submitted.
	Data []byte
}

// SizeBytes returns the container size.
func (e *Entry) SizeBytes() int { return len(e.Data) }

// TierStats counts traffic between the RAM and disk tiers.
type TierStats struct {
	// Demotions counts RAM evictions that left the blob disk-only.
	Demotions uint64 `json:"demotions"`
	// Promotions counts Get misses served by re-reading, re-parsing
	// and re-admitting a blob from disk.
	Promotions uint64 `json:"promotions"`
}

// BlobStat describes one blob in List, with its tier residency.
type BlobStat struct {
	Digest Digest
	Bytes  int64
	RAM    bool
	Disk   bool
}

// Store is a content-addressed VBS store, safe for concurrent use.
// The RAM tier is an LRU bounded by container bytes; when a disk tier
// is attached, eviction demotes instead of deleting and misses fall
// through to disk.
type Store struct {
	mu       sync.Mutex
	capBytes int
	entries  map[Digest]*list.Element
	order    *list.List // front = most recently used; holds *Entry
	bytes    int
	tier     TierStats

	disk    *repo.Repo      // optional persistence tier
	promote *Flight[*Entry] // collapses concurrent disk promotions
}

// New returns an unbounded RAM-only store.
func New() *Store { return NewTiered(0, nil) }

// NewBounded returns a RAM-only store evicting least-recently-used
// entries once stored container bytes exceed capBytes (<= 0 =
// unbounded). Without a disk tier, eviction deletes.
func NewBounded(capBytes int) *Store { return NewTiered(capBytes, nil) }

// NewTiered returns a store with an optional persistent tier beneath
// the RAM LRU. disk may be nil (RAM-only).
func NewTiered(capBytes int, disk *repo.Repo) *Store {
	return &Store{
		capBytes: capBytes,
		entries:  make(map[Digest]*list.Element),
		order:    list.New(),
		disk:     disk,
		promote:  NewFlight[*Entry](),
	}
}

// Disk returns the attached persistence tier (nil when RAM-only).
func (s *Store) Disk() *repo.Repo { return s.disk }

// Put parses and admits a VBS container, returning its entry and
// whether it was already stored in RAM. A malformed container is
// rejected without being stored. With a disk tier, the blob is
// written through to disk before the entry becomes visible, so a
// crash after Put returns cannot lose it.
func (s *Store) Put(data []byte) (ent *Entry, existed bool, err error) {
	d := DigestOf(data)
	s.mu.Lock()
	if el, ok := s.entries[d]; ok {
		s.order.MoveToFront(el)
		s.mu.Unlock()
		return el.Value.(*Entry), true, nil
	}
	s.mu.Unlock()
	v, err := core.Parse(data)
	if err != nil {
		return nil, false, err
	}
	// Warm the de-virtualization graphs off the load critical path.
	if err := v.Warm(); err != nil {
		return nil, false, err
	}
	ent = &Entry{Digest: d, VBS: v, Data: append([]byte(nil), data...)}
	// A blob can be held by disk alone (RAM eviction, boot recovery):
	// the disk tier's dedup verdict counts toward "existed" too, or a
	// re-put after demotion would misreport a fresh admission.
	diskExisted := false
	if s.disk != nil {
		de, err := s.disk.PutDigest(d, ent.Data)
		if err != nil {
			// A tombstone refusal is a policy verdict, not an I/O
			// failure: it must stay distinguishable from ErrDisk so HTTP
			// callers answer 410 Gone rather than 500 (which a gateway
			// would treat as "try another replica").
			if errors.Is(err, repo.ErrTombstoned) {
				return nil, false, err
			}
			return nil, false, fmt.Errorf("%w: %w", ErrDisk, err)
		}
		diskExisted = de
	}
	ent, ramExisted, err := s.admit(ent)
	return ent, ramExisted || diskExisted, err
}

// admit inserts a parsed entry into the RAM tier, running eviction.
func (s *Store) admit(ent *Entry) (*Entry, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if el, ok := s.entries[ent.Digest]; ok {
		s.order.MoveToFront(el)
		return el.Value.(*Entry), true, nil
	}
	s.entries[ent.Digest] = s.order.PushFront(ent)
	s.bytes += len(ent.Data)
	for s.capBytes > 0 && s.bytes > s.capBytes && s.order.Len() > 1 {
		el := s.order.Back()
		old := el.Value.(*Entry)
		s.order.Remove(el)
		delete(s.entries, old.Digest)
		s.bytes -= len(old.Data)
		if s.disk != nil {
			// Write-through at Put time means the blob is already on
			// disk: eviction is a demotion, not a loss.
			s.tier.Demotions++
		}
	}
	return ent, false, nil
}

// getRAM returns a RAM-resident entry, marking it recently used.
func (s *Store) getRAM(d Digest) (*Entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	el, ok := s.entries[d]
	if !ok {
		return nil, false
	}
	s.order.MoveToFront(el)
	return el.Value.(*Entry), true
}

// Get returns a stored entry by digest, marking it recently used. A
// RAM miss falls through to the disk tier: the blob is read once
// (concurrent misses for the same digest share one disk read),
// re-parsed, and promoted back into RAM. Disk errors degrade to a
// miss here; use Fetch when the cause matters.
func (s *Store) Get(d Digest) (*Entry, bool) {
	ent, err := s.Fetch(d)
	return ent, err == nil
}

// Fetch is Get with errors: ErrNotFound when neither tier holds the
// digest, otherwise the disk read/parse failure.
func (s *Store) Fetch(d Digest) (*Entry, error) {
	if ent, ok := s.getRAM(d); ok {
		return ent, nil
	}
	if s.disk == nil {
		return nil, ErrNotFound
	}
	ent, err, _ := s.promote.Do(d, func() (*Entry, error) {
		// Re-check RAM inside the flight: a caller that lost the race
		// with a finished promotion must not read the disk again.
		if ent, ok := s.getRAM(d); ok {
			return ent, nil
		}
		data, err := s.disk.Get(d)
		if err != nil {
			if errors.Is(err, repo.ErrNotFound) {
				return nil, ErrNotFound
			}
			return nil, err
		}
		v, err := core.Parse(data)
		if err != nil {
			return nil, fmt.Errorf("store: promote %s: %w", d.Short(), err)
		}
		if err := v.Warm(); err != nil {
			return nil, fmt.Errorf("store: promote %s: %w", d.Short(), err)
		}
		ent := &Entry{Digest: d, VBS: v, Data: data}
		ent, _, _ = s.admit(ent)
		s.mu.Lock()
		s.tier.Promotions++
		s.mu.Unlock()
		return ent, nil
	})
	return ent, err
}

// GetData returns a blob's raw container bytes from whichever tier
// holds it, without parsing or promoting — the cheap path for raw
// blob downloads.
func (s *Store) GetData(d Digest) ([]byte, error) {
	if ent, ok := s.getRAM(d); ok {
		return ent.Data, nil
	}
	if s.disk == nil {
		return nil, ErrNotFound
	}
	data, err := s.disk.Get(d)
	if errors.Is(err, repo.ErrNotFound) {
		return nil, ErrNotFound
	}
	return data, err
}

// Has reports whether any tier holds the digest.
func (s *Store) Has(d Digest) bool {
	s.mu.Lock()
	_, ram := s.entries[d]
	s.mu.Unlock()
	if ram {
		return true
	}
	return s.disk != nil && s.disk.Has(d)
}

// Delete removes a digest from both tiers. It returns ErrNotFound
// when neither held it; reference checking (live tasks) is the
// caller's job.
func (s *Store) Delete(d Digest) error {
	found := false
	s.mu.Lock()
	if el, ok := s.entries[d]; ok {
		old := el.Value.(*Entry)
		s.order.Remove(el)
		delete(s.entries, d)
		s.bytes -= len(old.Data)
		found = true
	}
	s.mu.Unlock()
	if s.disk != nil {
		switch err := s.disk.Delete(d); {
		case err == nil:
			found = true
		case !errors.Is(err, repo.ErrNotFound):
			return err
		}
	}
	if !found {
		return ErrNotFound
	}
	return nil
}

// Tombstoned reports whether an unexpired delete tombstone blocks the
// digest (always false without a disk tier).
func (s *Store) Tombstoned(d Digest) bool {
	return s.disk != nil && s.disk.HasTombstone(d)
}

// Tombstone records a delete tombstone in the disk tier so automated
// re-replication cannot resurrect the digest until the TTL passes.
// Without a disk tier there is nothing durable to refuse with, so it
// is a no-op.
func (s *Store) Tombstone(d Digest, ttl time.Duration) error {
	if s.disk == nil {
		return nil
	}
	return s.disk.Tombstone(d, ttl)
}

// ClearTombstone lifts a delete tombstone (explicit user intent).
func (s *Store) ClearTombstone(d Digest) error {
	if s.disk == nil {
		return nil
	}
	return s.disk.ClearTombstone(d)
}

// Tombstones lists live tombstones from the disk tier.
func (s *Store) Tombstones() []repo.TombstoneInfo {
	if s.disk == nil {
		return nil
	}
	return s.disk.Tombstones()
}

// ExpireTombstones reclaims expired tombstone records.
func (s *Store) ExpireTombstones() (int, error) {
	if s.disk == nil {
		return 0, nil
	}
	return s.disk.ExpireTombstones()
}

// List merges both tiers into one blob listing sorted by digest.
func (s *Store) List() []BlobStat {
	byDigest := map[Digest]*BlobStat{}
	if s.disk != nil {
		for _, b := range s.disk.List() {
			byDigest[b.Digest] = &BlobStat{Digest: b.Digest, Bytes: b.Bytes, Disk: true}
		}
	}
	s.mu.Lock()
	for d, el := range s.entries {
		if b, ok := byDigest[d]; ok {
			b.RAM = true
		} else {
			byDigest[d] = &BlobStat{Digest: d, Bytes: int64(el.Value.(*Entry).SizeBytes()), RAM: true}
		}
	}
	s.mu.Unlock()
	out := make([]BlobStat, 0, len(byDigest))
	for _, b := range byDigest {
		out = append(out, *b)
	}
	// Byte order equals hex order, so compare raw digests.
	sort.Slice(out, func(a, b int) bool {
		return bytes.Compare(out[a].Digest[:], out[b].Digest[:]) < 0
	})
	return out
}

// Flush writes every RAM-resident blob missing from the disk tier
// through to it — a graceful-shutdown belt over the write-through
// braces (a no-op unless a disk write was impossible at Put time).
func (s *Store) Flush() error {
	if s.disk == nil {
		return nil
	}
	s.mu.Lock()
	ents := make([]*Entry, 0, s.order.Len())
	for el := s.order.Front(); el != nil; el = el.Next() {
		ents = append(ents, el.Value.(*Entry))
	}
	s.mu.Unlock()
	var firstErr error
	for _, ent := range ents {
		if s.disk.Has(ent.Digest) {
			continue
		}
		if _, err := s.disk.PutDigest(ent.Digest, ent.Data); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// TierStats returns RAM/disk traffic counters.
func (s *Store) TierStats() TierStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.tier
}

// Len returns the number of distinct RAM-resident VBS.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Bytes returns the total RAM-resident container bytes.
func (s *Store) Bytes() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.bytes
}

// MeanCompressionRatio averages VBS-size/raw-size over the
// RAM-resident tasks (the paper's Figure 4 metric; smaller is
// better). It returns 0 for an empty store.
func (s *Store) MeanCompressionRatio() float64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(s.entries) == 0 {
		return 0
	}
	sum := 0.0
	for el := s.order.Front(); el != nil; el = el.Next() {
		sum += el.Value.(*Entry).VBS.CompressionRatio()
	}
	return sum / float64(len(s.entries))
}
