package store

import (
	"container/list"
	"sync"
)

// Cache is a strict-LRU cache keyed by content digest, bounded by a
// caller-defined cost (entries, bits, bytes — the cost function is the
// caller's). It is safe for concurrent use. The zero capacity means
// unbounded.
type Cache[V any] struct {
	mu       sync.Mutex
	capacity int64
	cost     func(V) int64
	used     int64
	order    *list.List // front = most recent
	items    map[Digest]*list.Element

	hits, misses, evictions uint64
}

type cacheItem[V any] struct {
	key  Digest
	val  V
	cost int64
}

// NewCache returns an LRU bounded at capacity total cost. costFn
// prices one value; nil prices every value at 1 (capacity counts
// entries). capacity <= 0 means unbounded.
func NewCache[V any](capacity int64, costFn func(V) int64) *Cache[V] {
	if costFn == nil {
		costFn = func(V) int64 { return 1 }
	}
	return &Cache[V]{
		capacity: capacity,
		cost:     costFn,
		order:    list.New(),
		items:    make(map[Digest]*list.Element),
	}
}

// Get returns the cached value for d, marking it most recently used.
func (c *Cache[V]) Get(d Digest) (V, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[d]
	if !ok {
		c.misses++
		var zero V
		return zero, false
	}
	c.hits++
	c.order.MoveToFront(el)
	return el.Value.(*cacheItem[V]).val, true
}

// Put inserts or refreshes a value, evicting least-recently-used
// entries until the cache fits its capacity. A single value larger
// than the whole capacity is not admitted.
func (c *Cache[V]) Put(d Digest, v V) {
	cost := c.cost(v)
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[d]; ok {
		it := el.Value.(*cacheItem[V])
		c.used += cost - it.cost
		it.val, it.cost = v, cost
		c.order.MoveToFront(el)
	} else {
		if c.capacity > 0 && cost > c.capacity {
			return
		}
		c.items[d] = c.order.PushFront(&cacheItem[V]{key: d, val: v, cost: cost})
		c.used += cost
	}
	for c.capacity > 0 && c.used > c.capacity {
		c.evictOldest()
	}
}

func (c *Cache[V]) evictOldest() {
	el := c.order.Back()
	if el == nil {
		return
	}
	it := el.Value.(*cacheItem[V])
	c.order.Remove(el)
	delete(c.items, it.key)
	c.used -= it.cost
	c.evictions++
}

// Len returns the number of cached entries.
func (c *Cache[V]) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.items)
}

// CacheStats is a point-in-time snapshot of cache behaviour.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	Used      int64  `json:"used"`
	Capacity  int64  `json:"capacity"`
}

// Stats returns current counters.
func (c *Cache[V]) Stats() CacheStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	return CacheStats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Entries:   len(c.items),
		Used:      c.used,
		Capacity:  c.capacity,
	}
}
