package store

import (
	"bytes"
	"errors"
	"sync"
	"testing"

	"repro/internal/repo"
)

func newDisk(t *testing.T) *repo.Repo {
	t.Helper()
	r, err := repo.Open(t.TempDir(), repo.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestTieredPutWritesThrough(t *testing.T) {
	disk := newDisk(t)
	s := NewTiered(0, disk)
	data := testVBS(t, 2)
	ent, _, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if !disk.Has(ent.Digest) {
		t.Fatal("Put did not write through to disk")
	}
	got, err := disk.Get(ent.Digest)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("disk copy differs: %v", err)
	}
}

// TestTieredPutExistedCountsDiskResidency: re-putting a blob the
// store only holds on disk (after RAM eviction, or a restart's
// recovery scan) must report existed=true — POST /vbs and the
// cluster gateway's replication accounting rely on the dedup verdict.
func TestTieredPutExistedCountsDiskResidency(t *testing.T) {
	disk := newDisk(t)
	a := testVBS(t, 2)
	s := NewTiered(len(a)+1, disk)
	if _, existed, err := s.Put(a); err != nil || existed {
		t.Fatalf("first put: existed=%v, err=%v", existed, err)
	}
	// Evict a from RAM; the disk copy remains.
	entA := DigestOf(a)
	if _, _, err := s.Put(testVBS(t, 3)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.getRAM(entA); ok {
		t.Fatal("first entry still RAM-resident; eviction did not trigger")
	}
	if _, existed, err := s.Put(a); err != nil || !existed {
		t.Fatalf("re-put of disk-resident blob: existed=%v, err=%v", existed, err)
	}

	// A fresh store over the same repository (a restarted daemon)
	// must also recognize the blob.
	s2 := NewTiered(0, disk)
	if _, existed, err := s2.Put(a); err != nil || !existed {
		t.Fatalf("re-put after restart: existed=%v, err=%v", existed, err)
	}
}

// TestTieredEvictionLosesNoBlob is the acceptance-criteria check:
// with a disk tier, RAM eviction demotes, and a later Get returns
// bytes identical to the original upload via disk fall-through.
func TestTieredEvictionLosesNoBlob(t *testing.T) {
	disk := newDisk(t)
	a := testVBS(t, 2)
	// Bound the RAM tier to one container so the second Put evicts the
	// first.
	s := NewTiered(len(a)+1, disk)
	entA, _, err := s.Put(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put(testVBS(t, 3)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.getRAM(entA.Digest); ok {
		t.Fatal("first entry still RAM-resident; eviction did not trigger")
	}
	if ts := s.TierStats(); ts.Demotions != 1 {
		t.Fatalf("demotions = %d, want 1", ts.Demotions)
	}
	ent, ok := s.Get(entA.Digest)
	if !ok {
		t.Fatal("evicted blob lost despite disk tier")
	}
	if !bytes.Equal(ent.Data, a) {
		t.Fatal("disk fall-through returned different bytes")
	}
	if ts := s.TierStats(); ts.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1", ts.Promotions)
	}
	// Promoted back into RAM: the next Get is a RAM hit, no disk read.
	reads := disk.Stats().Reads
	if _, ok := s.Get(entA.Digest); !ok {
		t.Fatal("promoted blob missing")
	}
	if got := disk.Stats().Reads; got != reads {
		t.Fatalf("RAM hit after promotion still read disk (%d -> %d)", reads, got)
	}
}

func TestUntieredEvictionStillDeletes(t *testing.T) {
	a := testVBS(t, 2)
	s := NewBounded(len(a) + 1)
	entA, _, err := s.Put(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put(testVBS(t, 3)); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(entA.Digest); ok {
		t.Fatal("RAM-only store resurrected an evicted entry")
	}
	if ts := s.TierStats(); ts.Demotions != 0 {
		t.Fatalf("RAM-only store counted %d demotions", ts.Demotions)
	}
}

// TestSingleflightPromotion is the satellite requirement: two
// goroutines missing RAM for the same digest must cause exactly one
// disk read.
func TestSingleflightPromotion(t *testing.T) {
	disk := newDisk(t)
	a := testVBS(t, 2)
	s := NewTiered(len(a)+1, disk)
	entA, _, err := s.Put(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put(testVBS(t, 3)); err != nil { // evict a
		t.Fatal(err)
	}
	if _, ok := s.getRAM(entA.Digest); ok {
		t.Fatal("setup: blob still in RAM")
	}
	base := disk.Stats().Reads

	const gophers = 8
	start := make(chan struct{})
	var wg sync.WaitGroup
	ents := make([]*Entry, gophers)
	for g := 0; g < gophers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			ent, ok := s.Get(entA.Digest)
			if !ok {
				t.Errorf("goroutine %d: miss on tiered Get", g)
				return
			}
			ents[g] = ent
		}(g)
	}
	close(start)
	wg.Wait()
	if got := disk.Stats().Reads - base; got != 1 {
		t.Fatalf("concurrent promotion cost %d disk reads, want exactly 1", got)
	}
	for g, ent := range ents {
		if ent == nil || !bytes.Equal(ent.Data, a) {
			t.Fatalf("goroutine %d got wrong bytes", g)
		}
	}
	if ts := s.TierStats(); ts.Promotions != 1 {
		t.Fatalf("promotions = %d, want 1", ts.Promotions)
	}
}

// TestTieredConcurrentChurn hammers Put/Get across a store whose RAM
// tier only holds a fraction of the working set, so promotions and
// demotions race with admissions (run under -race in CI).
func TestTieredConcurrentChurn(t *testing.T) {
	disk := newDisk(t)
	blobs := make([][]byte, 6)
	var digests []Digest
	for i := range blobs {
		blobs[i] = testVBS(t, 2+i)
		digests = append(digests, DigestOf(blobs[i]))
	}
	s := NewTiered(2*len(blobs[0]), disk)
	for _, b := range blobs {
		if _, _, err := s.Put(b); err != nil {
			t.Fatal(err)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				k := (w + i) % len(blobs)
				switch i % 3 {
				case 0:
					if _, _, err := s.Put(blobs[k]); err != nil {
						t.Errorf("Put: %v", err)
						return
					}
				default:
					ent, ok := s.Get(digests[k])
					if !ok {
						t.Errorf("Get %s: miss", digests[k].Short())
						return
					}
					if !bytes.Equal(ent.Data, blobs[k]) {
						t.Errorf("Get %s: wrong bytes", digests[k].Short())
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	if disk.Len() != len(blobs) {
		t.Fatalf("disk holds %d blobs, want %d", disk.Len(), len(blobs))
	}
}

func TestStoreDelete(t *testing.T) {
	disk := newDisk(t)
	s := NewTiered(0, disk)
	data := testVBS(t, 2)
	ent, _, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(ent.Digest); err != nil {
		t.Fatal(err)
	}
	if s.Has(ent.Digest) || disk.Has(ent.Digest) {
		t.Fatal("blob survived Delete in some tier")
	}
	if err := s.Delete(ent.Digest); !errors.Is(err, ErrNotFound) {
		t.Fatalf("double delete: %v", err)
	}
}

func TestStoreListMergesTiers(t *testing.T) {
	disk := newDisk(t)
	a := testVBS(t, 2)
	s := NewTiered(len(a)+1, disk)
	entA, _, _ := s.Put(a)
	entB, _, _ := s.Put(testVBS(t, 3)) // evicts a to disk-only
	l := s.List()
	if len(l) != 2 {
		t.Fatalf("List: %d entries, want 2", len(l))
	}
	for _, b := range l {
		switch b.Digest {
		case entA.Digest:
			if b.RAM || !b.Disk {
				t.Fatalf("evicted blob residency: %+v", b)
			}
		case entB.Digest:
			if !b.RAM || !b.Disk {
				t.Fatalf("resident blob residency: %+v", b)
			}
		default:
			t.Fatalf("unknown digest %s", b.Digest.Short())
		}
	}
	// RAM-only store lists its entries too.
	s2 := New()
	ent, _, _ := s2.Put(a)
	l2 := s2.List()
	if len(l2) != 1 || l2[0].Digest != ent.Digest || !l2[0].RAM || l2[0].Disk {
		t.Fatalf("RAM-only List: %+v", l2)
	}
}

func TestFetchDistinguishesNotFound(t *testing.T) {
	s := New()
	if _, err := s.Fetch(DigestOf([]byte("x"))); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
	disk := newDisk(t)
	s2 := NewTiered(0, disk)
	if _, err := s2.Fetch(DigestOf([]byte("x"))); !errors.Is(err, ErrNotFound) {
		t.Fatalf("tiered miss: want ErrNotFound, got %v", err)
	}
}

func TestGetDataServesBothTiers(t *testing.T) {
	disk := newDisk(t)
	a := testVBS(t, 2)
	s := NewTiered(len(a)+1, disk)
	entA, _, _ := s.Put(a)
	b := testVBS(t, 3)
	entB, _, _ := s.Put(b) // evicts a
	reads := disk.Stats().Reads
	if got, err := s.GetData(entB.Digest); err != nil || !bytes.Equal(got, b) {
		t.Fatalf("RAM GetData: %v", err)
	}
	if disk.Stats().Reads != reads {
		t.Fatal("RAM-resident GetData touched disk")
	}
	if got, err := s.GetData(entA.Digest); err != nil || !bytes.Equal(got, a) {
		t.Fatalf("disk GetData: %v", err)
	}
	// GetData must not promote: the blob stays disk-only.
	if _, ok := s.getRAM(entA.Digest); ok {
		t.Fatal("GetData promoted the blob")
	}
}

func TestFlushPersistsRAMOnlyBlobs(t *testing.T) {
	disk := newDisk(t)
	s := NewTiered(0, disk)
	data := testVBS(t, 2)
	ent, _, err := s.Put(data)
	if err != nil {
		t.Fatal(err)
	}
	// Simulate a blob that never reached disk (write-through normally
	// prevents this) by deleting the disk copy out from under the
	// store.
	if err := disk.Delete(ent.Digest); err != nil {
		t.Fatal(err)
	}
	if err := s.Flush(); err != nil {
		t.Fatal(err)
	}
	if got, err := disk.Get(ent.Digest); err != nil || !bytes.Equal(got, data) {
		t.Fatalf("Flush did not persist the blob: %v", err)
	}
}

// TestTieredPutDiskFaultIsErrDisk: an injected repo write fault must
// surface as ErrDisk — the signal the HTTP layer maps to 500 and a
// cluster gateway fails over on — and clear once the fault is gone.
func TestTieredPutDiskFaultIsErrDisk(t *testing.T) {
	disk := newDisk(t)
	s := NewTiered(0, disk)
	disk.SetFaults(repo.Faults{FailPuts: true})

	data := testVBS(t, 2)
	_, _, err := s.Put(data)
	if !errors.Is(err, ErrDisk) {
		t.Fatalf("Put with FailPuts: err=%v, want ErrDisk", err)
	}
	if !errors.Is(err, repo.ErrInjected) {
		t.Fatalf("Put error should wrap the injected cause: %v", err)
	}
	if st := disk.Stats(); st.WriteErrors != 1 {
		t.Fatalf("disk stats: %+v, want WriteErrors=1", st)
	}

	disk.SetFaults(repo.Faults{})
	ent, _, err := s.Put(data)
	if err != nil {
		t.Fatalf("Put after clearing faults: %v", err)
	}
	if !disk.Has(ent.Digest) {
		t.Fatal("blob did not reach disk after faults cleared")
	}
}
