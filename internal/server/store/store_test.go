package store

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
)

// testVBS returns the encoded container of a minimal valid VBS.
func testVBS(t testing.TB, taskW int) []byte {
	t.Helper()
	v := &core.VBS{P: arch.Default(), Cluster: 1, TaskW: taskW, TaskH: 2}
	data, err := v.Encode()
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestStorePut(t *testing.T) {
	s := New()
	data := testVBS(t, 2)
	ent, existed, err := s.Put(data)
	if err != nil || existed {
		t.Fatalf("first Put: existed=%v err=%v", existed, err)
	}
	if ent.Digest != DigestOf(data) {
		t.Error("digest mismatch")
	}
	if ent.SizeBytes() != len(data) {
		t.Error("size mismatch")
	}
	// Same bytes: deduplicated.
	ent2, existed, err := s.Put(append([]byte(nil), data...))
	if err != nil || !existed {
		t.Fatalf("second Put: existed=%v err=%v", existed, err)
	}
	if ent2 != ent {
		t.Error("duplicate Put returned a different entry")
	}
	// Different task: new entry.
	if _, existed, err = s.Put(testVBS(t, 3)); err != nil || existed {
		t.Fatalf("third Put: existed=%v err=%v", existed, err)
	}
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
	if s.Bytes() <= 0 {
		t.Errorf("Bytes = %d", s.Bytes())
	}
	if r := s.MeanCompressionRatio(); r <= 0 {
		t.Errorf("MeanCompressionRatio = %v", r)
	}
	if _, ok := s.Get(ent.Digest); !ok {
		t.Error("Get missed stored entry")
	}
}

func TestStoreRejectsMalformed(t *testing.T) {
	s := New()
	if _, _, err := s.Put([]byte("not a vbs")); err == nil {
		t.Error("malformed container admitted")
	}
	if s.Len() != 0 {
		t.Error("malformed container stored")
	}
}

func TestDigestRoundTrip(t *testing.T) {
	d := DigestOf([]byte("x"))
	got, err := ParseDigest(d.String())
	if err != nil || got != d {
		t.Fatalf("round trip: %v %v", got, err)
	}
	if len(d.Short()) != 12 {
		t.Errorf("Short = %q", d.Short())
	}
	if _, err := ParseDigest("zz"); err == nil {
		t.Error("bad hex parsed")
	}
}

func TestCacheLRU(t *testing.T) {
	// Each value costs its own int; capacity 10.
	c := NewCache[int](10, func(v int) int64 { return int64(v) })
	d := func(i byte) Digest { return DigestOf([]byte{i}) }
	c.Put(d(1), 4)
	c.Put(d(2), 4)
	if v, ok := c.Get(d(1)); !ok || v != 4 {
		t.Fatal("miss on resident entry")
	}
	// Inserting 4 more evicts the LRU entry — d(2), since d(1) was
	// just touched.
	c.Put(d(3), 4)
	if _, ok := c.Get(d(2)); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := c.Get(d(1)); !ok {
		t.Error("recently used entry evicted")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Used != 8 {
		t.Errorf("stats = %+v", st)
	}
	// Oversized value: not admitted.
	c.Put(d(9), 11)
	if _, ok := c.Get(d(9)); ok {
		t.Error("oversized value admitted")
	}
	// Refresh changes cost in place.
	c.Put(d(1), 6)
	if c.Stats().Used != 10 {
		t.Errorf("Used after refresh = %d", c.Stats().Used)
	}
}

func TestCacheUnbounded(t *testing.T) {
	c := NewCache[string](0, nil)
	for i := 0; i < 100; i++ {
		c.Put(DigestOf([]byte{byte(i)}), "v")
	}
	if c.Len() != 100 || c.Stats().Evictions != 0 {
		t.Errorf("unbounded cache evicted: len=%d", c.Len())
	}
}

func TestCacheConcurrent(t *testing.T) {
	c := NewCache[int](64, nil)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := DigestOf([]byte{byte(i % 97)})
				if i%3 == 0 {
					c.Put(k, g)
				} else {
					c.Get(k)
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestFlightCollapses(t *testing.T) {
	f := NewFlight[int]()
	var calls atomic.Int32
	release := make(chan struct{})
	d := DigestOf([]byte("k"))

	const waiters = 8
	var wg sync.WaitGroup
	results := make([]int, waiters)
	sharedCount := atomic.Int32{}
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			v, err, shared := f.Do(d, func() (int, error) {
				calls.Add(1)
				<-release
				return 42, nil
			})
			if err != nil {
				t.Error(err)
			}
			results[i] = v
			if shared {
				sharedCount.Add(1)
			}
		}(i)
	}
	// Let every goroutine reach Do before releasing the leader. There
	// is no hard guarantee all 8 joined the same call, but all must
	// see the same value and the function must not run 8 times.
	close(release)
	wg.Wait()
	for i, v := range results {
		if v != 42 {
			t.Errorf("waiter %d got %d", i, v)
		}
	}
	if calls.Load() == 0 || calls.Load() > waiters {
		t.Errorf("fn ran %d times", calls.Load())
	}
	// After completion the key is clear: a fresh Do runs again.
	_, _, shared := f.Do(d, func() (int, error) { return 1, nil })
	if shared {
		t.Error("completed flight still shared")
	}
}

func TestStoreBoundedEviction(t *testing.T) {
	a, b, c := testVBS(t, 2), testVBS(t, 3), testVBS(t, 4)
	cap := len(a) + len(b)
	s := NewBounded(cap)
	entA, _, err := s.Put(a)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := s.Put(b); err != nil {
		t.Fatal(err)
	}
	// Touch a so b is the LRU, then overflow with c.
	if _, ok := s.Get(entA.Digest); !ok {
		t.Fatal("a missing")
	}
	if _, _, err := s.Put(c); err != nil {
		t.Fatal(err)
	}
	if _, ok := s.Get(DigestOf(b)); ok {
		t.Error("LRU entry survived eviction")
	}
	if _, ok := s.Get(entA.Digest); !ok {
		t.Error("recently used entry evicted")
	}
	if s.Bytes() > cap {
		t.Errorf("Bytes = %d over cap %d", s.Bytes(), cap)
	}
	// Re-Put of an evicted container re-admits it.
	if _, existed, err := s.Put(b); err != nil || existed {
		t.Errorf("re-Put after eviction: existed=%v err=%v", existed, err)
	}
}

func TestFlightPanicDoesNotWedge(t *testing.T) {
	f := NewFlight[int]()
	d := DigestOf([]byte("p"))
	func() {
		defer func() { _ = recover() }()
		_, _, _ = f.Do(d, func() (int, error) { panic("boom") })
	}()
	// The digest must be usable again, not blocked forever.
	done := make(chan struct{})
	go func() {
		v, err, _ := f.Do(d, func() (int, error) { return 7, nil })
		if v != 7 || err != nil {
			t.Errorf("post-panic Do = %d, %v", v, err)
		}
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("flight wedged after panic")
	}
}
