package server_test

import (
	"context"
	"strings"
	"testing"

	"repro/internal/server"
)

// TestChaosFaultsEndpoint exercises the HTTP fault seam end-to-end:
// arming FailPuts turns POST /vbs into the 500 "cannot persist vbs"
// path (the signal a cluster gateway fails over on), clearing it
// restores service, and the stats block reports the write error.
func TestChaosFaultsEndpoint(t *testing.T) {
	ctx := context.Background()
	cl, _ := newTestDaemon(t, 1, 16, server.Options{
		DataDir:     t.TempDir(),
		EnableChaos: true,
	})
	data, err := makeVBS(47, 10, 4, 8, 1).Encode()
	if err != nil {
		t.Fatal(err)
	}

	if err := cl.SetFaults(ctx, server.ChaosFaults{FailPuts: true}); err != nil {
		t.Fatalf("SetFaults: %v", err)
	}
	_, err = cl.PutVBS(ctx, data)
	if err == nil {
		t.Fatal("PutVBS succeeded with FailPuts armed")
	}
	if server.StatusCode(err) != 500 || !strings.Contains(server.ErrorMessage(err), "cannot persist") {
		t.Fatalf("PutVBS error = %v, want 500 cannot persist", err)
	}

	if err := cl.SetFaults(ctx, server.ChaosFaults{}); err != nil {
		t.Fatalf("clear SetFaults: %v", err)
	}
	put, err := cl.PutVBS(ctx, data)
	if err != nil {
		t.Fatalf("PutVBS after clearing: %v", err)
	}
	if ok, err := cl.HasVBS(ctx, put.Digest); err != nil || !ok {
		t.Fatalf("HasVBS(%s) = %v, %v, want true", put.Digest, ok, err)
	}
	if ok, err := cl.HasVBS(ctx, strings.Repeat("ab", 32)); err != nil || ok {
		t.Fatalf("HasVBS(absent) = %v, %v, want false, nil", ok, err)
	}

	st, err := cl.StatsCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if st.Repo.WriteErrors != 1 {
		t.Fatalf("stats repo block: %+v, want WriteErrors=1", st.Repo)
	}
}

// TestChaosFaultsDisabled: without EnableChaos the endpoints must not
// exist, and without a data dir they must refuse with 409.
func TestChaosFaultsDisabled(t *testing.T) {
	ctx := context.Background()
	cl, _ := newTestDaemon(t, 1, 16, server.Options{DataDir: t.TempDir()})
	err := cl.SetFaults(ctx, server.ChaosFaults{FailPuts: true})
	if server.StatusCode(err) != 404 {
		t.Fatalf("SetFaults without EnableChaos: %v, want 404", err)
	}

	cl2, _ := newTestDaemon(t, 1, 16, server.Options{EnableChaos: true})
	err = cl2.SetFaults(ctx, server.ChaosFaults{FailPuts: true})
	if server.StatusCode(err) != 409 {
		t.Fatalf("SetFaults without data dir: %v, want 409", err)
	}
}
