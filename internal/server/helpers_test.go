package server_test

import (
	"math/rand"
	"net/http/httptest"
	"testing"

	"repro/internal/arch"
	"repro/internal/bits"
	"repro/internal/controller"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/rrg"
	"repro/internal/server"
)

// makeVBS compiles a small random task to a VBS container. It panics
// on error so the runnable Example can share it.
func makeVBS(seed int64, nLB, size, w, cluster int) *core.VBS {
	rng := rand.New(rand.NewSource(seed))
	d := &netlist.Design{Name: "task", K: 6}
	var nets []netlist.NetID
	for i := 0; i < 4; i++ {
		_, n := d.AddInputPad("pi")
		nets = append(nets, n)
	}
	for i := 0; i < nLB; i++ {
		nin := rng.Intn(4) + 1
		ins := make([]netlist.NetID, nin)
		for j := range ins {
			ins[j] = nets[rng.Intn(len(nets))]
		}
		truth := bits.NewVec(64)
		for b := 0; b < 64; b++ {
			truth.Set(b, rng.Intn(2) == 0)
		}
		_, n := d.AddLogicBlock("lb", ins, truth, false)
		nets = append(nets, n)
	}
	for i := 0; i < 4; i++ {
		d.AddOutputPad("po", nets[len(nets)-1-i])
	}
	pl, err := place.Place(d, arch.GridForSize(size), place.Options{Seed: seed, InnerNum: 1, FastExit: true})
	if err != nil {
		panic(err)
	}
	gr, err := rrg.Build(arch.Params{W: w, K: 6}, pl.Grid)
	if err != nil {
		panic(err)
	}
	res, err := route.Route(d, pl, gr, route.Options{})
	if err != nil {
		panic(err)
	}
	v, _, err := core.Encode(d, pl, res, core.EncodeOptions{Cluster: cluster})
	if err != nil {
		panic(err)
	}
	return v
}

// newPool builds n blank W=8 fabrics of the given grid side wrapped in
// controllers.
func newPool(n, side int) []*controller.Controller {
	ctrls := make([]*controller.Controller, n)
	for i := range ctrls {
		f, err := fabric.New(arch.Params{W: 8, K: 6}, arch.Grid{Width: side, Height: side})
		if err != nil {
			panic(err)
		}
		ctrls[i] = controller.New(f, 2)
	}
	return ctrls
}

// newTestDaemon starts an httptest daemon over a fresh pool and
// returns a client for it.
func newTestDaemon(t *testing.T, fabrics, side int, opts server.Options) (*server.Client, *server.Server) {
	t.Helper()
	srv, err := server.New(newPool(fabrics, side), opts)
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	return server.NewClient(hs.URL, hs.Client()), srv
}
