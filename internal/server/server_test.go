package server_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/controller"
	"repro/internal/fabric"
	"repro/internal/server"
)

func TestLoadUnloadRelocate(t *testing.T) {
	cl, _ := newTestDaemon(t, 2, 16, server.Options{})
	v := makeVBS(1, 12, 4, 8, 1)
	data, err := v.Encode()
	if err != nil {
		t.Fatal(err)
	}

	res, err := cl.LoadCtx(t.Context(), data, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Error("first load reported cached")
	}
	if res.TaskW != v.TaskW || res.TaskH != v.TaskH {
		t.Errorf("task dims %dx%d", res.TaskW, res.TaskH)
	}
	if res.CompressionRatio <= 0 || res.CompressionRatio >= 1.5 {
		t.Errorf("compression ratio %v", res.CompressionRatio)
	}

	tasks, err := cl.TasksCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 1 || tasks[0].ID != res.ID {
		t.Fatalf("tasks = %+v", tasks)
	}

	// Relocate within the fabric.
	moved, err := cl.RelocateCtx(t.Context(), res.ID, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if moved.X != 8 || moved.Y != 8 {
		t.Errorf("relocated to (%d,%d)", moved.X, moved.Y)
	}

	if err := cl.UnloadCtx(t.Context(), res.ID); err != nil {
		t.Fatal(err)
	}
	if err := cl.UnloadCtx(t.Context(), res.ID); err == nil {
		t.Error("double unload accepted")
	} else if !strings.Contains(err.Error(), "404") {
		t.Errorf("double unload error = %v", err)
	}

	st, err := cl.StatsCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 0 || st.Loads != 1 || st.Unloads != 1 || st.Relocations != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestRepeatedLoadHitsCache is the acceptance scenario: a second load
// of the same container must come from the decoded-bitstream cache,
// observable through /stats.
func TestRepeatedLoadHitsCache(t *testing.T) {
	cl, _ := newTestDaemon(t, 2, 16, server.Options{})
	data, err := makeVBS(2, 12, 4, 8, 1).Encode()
	if err != nil {
		t.Fatal(err)
	}

	first, err := cl.LoadCtx(t.Context(), data, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cl.LoadCtx(t.Context(), data, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first load cached")
	}
	if !second.Cached {
		t.Error("second load missed the decoded-bitstream cache")
	}
	if first.Digest != second.Digest {
		t.Error("content addressing returned different digests")
	}

	st, err := cl.StatsCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if st.Decodes != 1 {
		t.Errorf("decodes = %d, want 1 (second load must skip decode)", st.Decodes)
	}
	if st.Cache.Hits < 1 || st.Cache.Misses != 1 {
		t.Errorf("cache hits=%d misses=%d", st.Cache.Hits, st.Cache.Misses)
	}
	if st.Store.Entries != 1 {
		t.Errorf("store entries = %d, want 1 (identical containers deduplicate)", st.Store.Entries)
	}
	if st.LoadLatency.Count != 2 || st.LoadLatency.MaxMS < st.LoadLatency.MeanMS {
		t.Errorf("latency stats = %+v", st.LoadLatency)
	}
}

// TestConcurrentClients hammers the daemon from many goroutines over
// two fabrics; run with -race. Every client loads, relocates and
// unloads repeatedly; at the end the pool must be empty and the
// counters consistent.
func TestConcurrentClients(t *testing.T) {
	cl, _ := newTestDaemon(t, 2, 24, server.Options{})
	// Three distinct tasks shared by eight clients: plenty of cache
	// hits and digest collisions by design.
	containers := make([][]byte, 3)
	for i := range containers {
		data, err := makeVBS(int64(10+i), 8, 4, 8, 1).Encode()
		if err != nil {
			t.Fatal(err)
		}
		containers[i] = data
	}

	const clients = 8
	const iters = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients*iters)
	wg.Add(clients)
	for g := 0; g < clients; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				res, err := cl.LoadCtx(t.Context(), containers[(g+i)%len(containers)], nil, nil, nil)
				if err != nil {
					// The pool can be momentarily full; that is a
					// well-formed 409, not a failure.
					if strings.Contains(err.Error(), "409") {
						continue
					}
					errs <- fmt.Errorf("client %d load: %w", g, err)
					return
				}
				if i%2 == 0 {
					// Best-effort relocation; contention may refuse it.
					_, _ = cl.RelocateCtx(t.Context(), res.ID, (g*3)%16, (i*5)%16)
				}
				if err := cl.UnloadCtx(t.Context(), res.ID); err != nil {
					errs <- fmt.Errorf("client %d unload: %w", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st, err := cl.StatsCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 0 {
		t.Errorf("tasks = %d after all unloads", st.Tasks)
	}
	if st.Loads != st.Unloads {
		t.Errorf("loads %d != unloads %d", st.Loads, st.Unloads)
	}
	if st.Store.Entries != len(containers) {
		t.Errorf("store entries = %d", st.Store.Entries)
	}
	// Decodes must not exceed distinct containers: everything else is
	// cache or singleflight.
	if st.Decodes > uint64(len(containers)) {
		t.Errorf("decodes = %d, want <= %d", st.Decodes, len(containers))
	}
	for _, f := range st.Fabrics {
		if f.FreeMacros != f.TotalMacros {
			t.Errorf("fabric %d not empty: %d/%d free", f.Index, f.FreeMacros, f.TotalMacros)
		}
	}
}

func TestFabricPinningAndPlacement(t *testing.T) {
	cl, _ := newTestDaemon(t, 2, 16, server.Options{})
	data, err := makeVBS(3, 10, 4, 8, 1).Encode()
	if err != nil {
		t.Fatal(err)
	}
	one := 1
	x, y := 4, 4
	res, err := cl.LoadCtx(t.Context(), data, &one, &x, &y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fabric != 1 || res.X != 4 || res.Y != 4 {
		t.Errorf("placed at fabric %d (%d,%d)", res.Fabric, res.X, res.Y)
	}
	fabs, err := cl.FabricsCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(fabs) != 2 {
		t.Fatalf("fabrics = %d", len(fabs))
	}
	if fabs[1].Occupancy <= 0 || fabs[0].Occupancy != 0 {
		t.Errorf("occupancy = %v / %v", fabs[0].Occupancy, fabs[1].Occupancy)
	}
	// The same position on the same fabric is now taken.
	if _, err := cl.LoadCtx(t.Context(), data, &one, &x, &y); err == nil {
		t.Error("overlapping pinned load accepted")
	}
	// Auto-placement must prefer the emptier fabric 0.
	auto, err := cl.LoadCtx(t.Context(), data, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Fabric != 0 {
		t.Errorf("auto placement chose fabric %d, want the emptier 0", auto.Fabric)
	}
}

func TestBadRequests(t *testing.T) {
	cl, _ := newTestDaemon(t, 1, 16, server.Options{})
	check := func(err error, code string, what string) {
		t.Helper()
		if err == nil {
			t.Errorf("%s accepted", what)
		} else if !strings.Contains(err.Error(), code) {
			t.Errorf("%s: error %v, want %s", what, err, code)
		}
	}
	_, err := cl.LoadCtx(t.Context(), []byte("garbage container"), nil, nil, nil)
	check(err, "400", "malformed container")
	check(func() error { _, err := cl.LoadCtx(t.Context(), nil, nil, nil, nil); return err }(),
		"400", "empty container")

	badFabric := 7
	data, errEnc := makeVBS(4, 8, 4, 8, 1).Encode()
	if errEnc != nil {
		t.Fatal(errEnc)
	}
	_, err = cl.LoadCtx(t.Context(), data, &badFabric, nil, nil)
	check(err, "400", "out-of-range fabric")

	_, err = cl.RelocateCtx(t.Context(), 99, 0, 0)
	check(err, "404", "relocating unknown task")

	x := 3
	_, err = cl.LoadCtx(t.Context(), data, nil, &x, nil)
	check(err, "400", "x without y")
}

// TestMaxBodyBytes: JSON bodies beyond Options.MaxBodyBytes must be
// rejected with 413 before being buffered — the seed accepted
// unbounded POST /tasks bodies.
func TestMaxBodyBytes(t *testing.T) {
	cl, _ := newTestDaemon(t, 1, 16, server.Options{MaxBodyBytes: 1024})

	_, err := cl.LoadCtx(t.Context(), make([]byte, 4096), nil, nil, nil)
	if err == nil {
		t.Fatal("oversized body accepted")
	}
	if !strings.Contains(err.Error(), "413") {
		t.Fatalf("oversized body error = %v, want 413", err)
	}

	// A body under the bound still works end to end.
	data, err := makeVBS(5, 8, 4, 8, 1).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if len(data) >= 768 { // base64 inflates by 4/3 toward the 1024 cap
		t.Fatalf("test container unexpectedly large: %d bytes", len(data))
	}
	if _, err := cl.LoadCtx(t.Context(), data, nil, nil, nil); err != nil {
		t.Fatalf("in-bound load: %v", err)
	}
}

// TestPutVBSAdmitsWithoutPlacement: POST /vbs stores a blob without
// consuming any fabric area, deduplicates, and serves it back
// byte-identical — the gateway's replication primitive.
func TestPutVBSAdmitsWithoutPlacement(t *testing.T) {
	cl, _ := newTestDaemon(t, 1, 16, server.Options{})
	data, err := makeVBS(6, 10, 4, 8, 1).Encode()
	if err != nil {
		t.Fatal(err)
	}

	ctx := context.Background()
	res, err := cl.PutVBS(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	if res.Existed || res.Bytes != len(data) {
		t.Errorf("first put = %+v", res)
	}
	if again, err := cl.PutVBS(ctx, data); err != nil || !again.Existed {
		t.Errorf("second put = %+v, %v", again, err)
	}

	tasks, err := cl.TasksCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 0 {
		t.Errorf("put placed %d task(s)", len(tasks))
	}
	got, err := cl.GetVBSCtx(t.Context(), res.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("stored blob differs from submitted bytes")
	}

	if _, err := cl.PutVBS(ctx, []byte("garbage")); err == nil ||
		!strings.Contains(err.Error(), "400") {
		t.Errorf("malformed put error = %v, want 400", err)
	}
}

// TestUnloadControllerFailure: a controller-refused unload must be
// surfaced as an error, and afterwards the API task list must still
// match fabric occupancy exactly — the seed deleted the entry before
// asking the controller, so an error orphaned whatever the task still
// owned; conversely the entry must not be resurrected once the region
// is genuinely free, or the phantom could never be deleted again.
func TestUnloadControllerFailure(t *testing.T) {
	ctrls := newPool(1, 16)
	srv, err := server.New(ctrls, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	cl := server.NewClient(hs.URL, hs.Client())

	data, err := makeVBS(1, 12, 4, 8, 1).Encode()
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.LoadCtx(t.Context(), data, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Sabotage: unload the fabric-level task behind the daemon's back,
	// so the daemon's own unload will fail at the controller.
	fid := ctrls[res.Fabric].Fabric().OwnerAt(res.X, res.Y)
	if err := ctrls[res.Fabric].Unload(fid); err != nil {
		t.Fatal(err)
	}
	if err := cl.UnloadCtx(t.Context(), res.ID); err == nil {
		t.Fatal("unload reported success despite controller failure")
	} else if !strings.Contains(err.Error(), "500") {
		t.Fatalf("unload error = %v, want 500", err)
	}
	// The controller no longer held the task, so its region is free:
	// the entry must be gone (not resurrected into an undeletable
	// phantom) and the list must again match fabric occupancy.
	tasks, err := cl.TasksCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 0 {
		t.Fatalf("tasks after failed unload of a freed region = %+v, want none", tasks)
	}
	if used := ctrls[res.Fabric].Fabric().UsedMacros(); used != 0 {
		t.Fatalf("fabric owns %d macros with no task listed", used)
	}
	if err := cl.UnloadCtx(t.Context(), res.ID); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("second unload error = %v, want 404", err)
	}
}

// TestRelocateRequiresCoordinates: an empty or partial body must be a
// 400, not a silent move to (0,0).
func TestRelocateRequiresCoordinates(t *testing.T) {
	cl, _ := newTestDaemon(t, 1, 16, server.Options{})
	data, err := makeVBS(1, 12, 4, 8, 1).Encode()
	if err != nil {
		t.Fatal(err)
	}
	x, y := 8, 8
	res, err := cl.LoadCtx(t.Context(), data, nil, &x, &y)
	if err != nil {
		t.Fatal(err)
	}
	for _, body := range []string{`{}`, `{"x": 0}`, `{"y": 0}`} {
		resp, err := http.Post(cl.Base()+fmt.Sprintf("/tasks/%d/relocate", res.ID),
			"application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("body %s: status %d, want 400", body, resp.StatusCode)
		}
	}
	// The task must not have moved.
	tasks, err := cl.TasksCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if tasks[0].X != 8 || tasks[0].Y != 8 {
		t.Errorf("task moved to (%d,%d) by rejected requests", tasks[0].X, tasks[0].Y)
	}
	// A complete body still works, including an explicit (0,0).
	if _, err := cl.RelocateCtx(t.Context(), res.ID, 0, 0); err != nil {
		t.Fatalf("explicit relocate to origin: %v", err)
	}
}

// fragmentedDaemon builds a single 28x6 fabric holding three 6x6 tasks
// with sub-task-width gaps between them: total free space fits another
// 6x6 task but no contiguous slot does, so only compaction can admit
// it.
func fragmentedDaemon(t *testing.T) (*server.Client, *server.Server, []byte) {
	t.Helper()
	f, err := fabric.New(arch.Params{W: 8, K: 6}, arch.Grid{Width: 28, Height: 6})
	if err != nil {
		t.Fatal(err)
	}
	srv, err := server.New([]*controller.Controller{controller.New(f, 2)}, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	cl := server.NewClient(hs.URL, hs.Client())

	y := 0
	for i, x := range []int{0, 9, 18} {
		data, err := makeVBS(int64(i+1), 12, 4, 8, 1).Encode()
		if err != nil {
			t.Fatal(err)
		}
		x := x
		if _, err := cl.LoadCtx(t.Context(), data, nil, &x, &y); err != nil {
			t.Fatalf("blocker at x=%d: %v", x, err)
		}
	}
	data, err := makeVBS(9, 12, 4, 8, 1).Encode()
	if err != nil {
		t.Fatal(err)
	}
	return cl, srv, data
}

// TestAutoCompactionRetry: a load that no fabric admits must trigger
// compaction and succeed on the retry, with the stats counters
// recording it.
func TestAutoCompactionRetry(t *testing.T) {
	cl, _, data := fragmentedDaemon(t)
	res, err := cl.LoadCtx(t.Context(), data, nil, nil, nil)
	if err != nil {
		t.Fatalf("load on fragmented fabric: %v", err)
	}
	if !res.Compacted {
		t.Error("load did not report the compaction retry")
	}
	st, err := cl.StatsCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if st.Placement.Compactions != 1 {
		t.Errorf("Compactions = %d, want 1", st.Placement.Compactions)
	}
	if st.Placement.TasksMoved == 0 {
		t.Error("TasksMoved = 0 after a compaction that made room")
	}
	if st.Placement.RetrySuccesses != 1 {
		t.Errorf("RetrySuccesses = %d, want 1", st.Placement.RetrySuccesses)
	}
	if st.Tasks != 4 {
		t.Errorf("Tasks = %d, want 4", st.Tasks)
	}
}

// TestExplicitCompact: POST /fabrics/{i}/compact defragments on
// demand; out-of-range indices are 404.
func TestExplicitCompact(t *testing.T) {
	cl, _, data := fragmentedDaemon(t)
	res, err := cl.CompactCtx(t.Context(), 0)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fabric != 0 || res.Moved == 0 {
		t.Errorf("Compact = %+v, want fabric 0 with tasks moved", res)
	}
	// After explicit compaction the fragmented load fits first try.
	load, err := cl.LoadCtx(t.Context(), data, nil, nil, nil)
	if err != nil {
		t.Fatalf("load after explicit compact: %v", err)
	}
	if load.Compacted {
		t.Error("load needed a second compaction after an explicit one")
	}
	if _, err := cl.CompactCtx(t.Context(), 7); err == nil {
		t.Error("out-of-range fabric index accepted")
	} else if !strings.Contains(err.Error(), "404") {
		t.Errorf("out-of-range compact error = %v, want 404", err)
	}
	st, err := cl.StatsCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if st.Placement.Compactions != 1 || st.Placement.RetrySuccesses != 0 {
		t.Errorf("placement stats = %+v", st.Placement)
	}
}

// TestPolicySelection: the policy request field steers placement and
// unknown names are rejected; the server-wide default is reported in
// /stats.
func TestPolicySelection(t *testing.T) {
	cl, _ := newTestDaemon(t, 2, 16, server.Options{Policy: "first-fit"})
	st, err := cl.StatsCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if st.Placement.Policy != "first-fit" {
		t.Errorf("default policy = %q", st.Placement.Policy)
	}
	data, err := makeVBS(1, 12, 4, 8, 1).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.LoadWithCtx(t.Context(), data, server.LoadRequest{Policy: "no-such-policy"}); err == nil {
		t.Error("unknown policy accepted")
	} else if !strings.Contains(err.Error(), "400") {
		t.Errorf("unknown policy error = %v, want 400", err)
	}
	// best-fit on an empty pool packs into a corner of fabric 0.
	res, err := cl.LoadWithCtx(t.Context(), data, server.LoadRequest{Policy: "best-fit"})
	if err != nil {
		t.Fatal(err)
	}
	if res.X != 0 || res.Y != 0 {
		t.Errorf("best-fit first task at (%d,%d), want the corner", res.X, res.Y)
	}
	// Unknown server-wide policy is a construction error.
	if _, err := server.New(newPool(1, 8), server.Options{Policy: "bogus"}); err == nil {
		t.Error("server accepted unknown default policy")
	}
}

// TestConcurrentDeleteRelocateLoad hammers one task id with DELETE and
// relocate storms while fresh loads of the same container race them;
// run under -race. Afterwards fabric occupancy must exactly match the
// listed tasks (no orphaned regions) and the deleted task must stay
// deleted (no resurrection).
func TestConcurrentDeleteRelocateLoad(t *testing.T) {
	ctrls := newPool(2, 16)
	srv, err := server.New(ctrls, server.Options{})
	if err != nil {
		t.Fatal(err)
	}
	hs := httptest.NewServer(srv.Handler())
	t.Cleanup(hs.Close)
	cl := server.NewClient(hs.URL, hs.Client())

	data, err := makeVBS(1, 12, 4, 8, 1).Encode()
	if err != nil {
		t.Fatal(err)
	}
	victim, err := cl.LoadCtx(t.Context(), data, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	const workers, iters = 3, 6
	var wg sync.WaitGroup
	for g := 0; g < workers; g++ {
		wg.Add(3)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_ = cl.UnloadCtx(t.Context(), victim.ID) // first wins, the rest must 404
			}
		}()
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_, _ = cl.RelocateCtx(t.Context(), victim.ID, (g*iters+i)%10, (g*iters+i)%10)
			}
		}(g)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				_, _ = cl.LoadCtx(t.Context(), data, nil, nil, nil) // may 409 when full
			}
		}()
	}
	wg.Wait()

	tasks, err := cl.TasksCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	areaOn := make(map[int]int)
	for _, ti := range tasks {
		if ti.ID == victim.ID {
			t.Errorf("deleted task %d resurrected", victim.ID)
		}
		areaOn[ti.Fabric] += ti.TaskW * ti.TaskH
	}
	for fi, c := range ctrls {
		if used := c.Fabric().UsedMacros(); used != areaOn[fi] {
			t.Errorf("fabric %d: %d macros owned, tasks account for %d (orphaned occupancy)",
				fi, used, areaOn[fi])
		}
	}
	// Full teardown: nothing may linger.
	for _, ti := range tasks {
		if err := cl.UnloadCtx(t.Context(), ti.ID); err != nil {
			t.Fatalf("cleanup unload %d: %v", ti.ID, err)
		}
	}
	for fi, c := range ctrls {
		if used := c.Fabric().UsedMacros(); used != 0 {
			t.Errorf("fabric %d: %d macros owned after full teardown", fi, used)
		}
	}
	if rest, _ := cl.TasksCtx(t.Context()); len(rest) != 0 {
		t.Errorf("tasks after teardown: %+v", rest)
	}
}

// TestNoCompactionOnStructuralFailure: a load that can never succeed
// (architecture mismatch) must not trigger the auto-compaction retry
// and physically shuffle tasks on a healthy fabric.
func TestNoCompactionOnStructuralFailure(t *testing.T) {
	cl, _ := newTestDaemon(t, 1, 16, server.Options{}) // pool is W=8
	good, err := makeVBS(1, 12, 4, 8, 1).Encode()
	if err != nil {
		t.Fatal(err)
	}
	res, err := cl.LoadCtx(t.Context(), good, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Same grid, wrong channel width: decodes fine, can never place.
	wrong, err := makeVBS(2, 12, 4, 10, 1).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.LoadCtx(t.Context(), wrong, nil, nil, nil); err == nil {
		t.Fatal("architecture-mismatched load accepted")
	} else if !strings.Contains(err.Error(), "409") {
		t.Fatalf("mismatch error = %v, want 409", err)
	}
	st, err := cl.StatsCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if st.Placement.Compactions != 0 || st.Placement.TasksMoved != 0 {
		t.Errorf("structural failure triggered compaction: %+v", st.Placement)
	}
	// The loaded task was not shuffled.
	tasks, err := cl.TasksCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 1 || tasks[0].X != res.X || tasks[0].Y != res.Y {
		t.Errorf("tasks after refused load = %+v", tasks)
	}
}
