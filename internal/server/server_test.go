package server_test

import (
	"fmt"
	"strings"
	"sync"
	"testing"

	"repro/internal/server"
)

func TestLoadUnloadRelocate(t *testing.T) {
	cl, _ := newTestDaemon(t, 2, 16, server.Options{})
	v := makeVBS(1, 12, 4, 8, 1)
	data, err := v.Encode()
	if err != nil {
		t.Fatal(err)
	}

	res, err := cl.Load(data, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Cached {
		t.Error("first load reported cached")
	}
	if res.TaskW != v.TaskW || res.TaskH != v.TaskH {
		t.Errorf("task dims %dx%d", res.TaskW, res.TaskH)
	}
	if res.CompressionRatio <= 0 || res.CompressionRatio >= 1.5 {
		t.Errorf("compression ratio %v", res.CompressionRatio)
	}

	tasks, err := cl.Tasks()
	if err != nil {
		t.Fatal(err)
	}
	if len(tasks) != 1 || tasks[0].ID != res.ID {
		t.Fatalf("tasks = %+v", tasks)
	}

	// Relocate within the fabric.
	moved, err := cl.Relocate(res.ID, 8, 8)
	if err != nil {
		t.Fatal(err)
	}
	if moved.X != 8 || moved.Y != 8 {
		t.Errorf("relocated to (%d,%d)", moved.X, moved.Y)
	}

	if err := cl.Unload(res.ID); err != nil {
		t.Fatal(err)
	}
	if err := cl.Unload(res.ID); err == nil {
		t.Error("double unload accepted")
	} else if !strings.Contains(err.Error(), "404") {
		t.Errorf("double unload error = %v", err)
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 0 || st.Loads != 1 || st.Unloads != 1 || st.Relocations != 1 {
		t.Errorf("stats = %+v", st)
	}
}

// TestRepeatedLoadHitsCache is the acceptance scenario: a second load
// of the same container must come from the decoded-bitstream cache,
// observable through /stats.
func TestRepeatedLoadHitsCache(t *testing.T) {
	cl, _ := newTestDaemon(t, 2, 16, server.Options{})
	data, err := makeVBS(2, 12, 4, 8, 1).Encode()
	if err != nil {
		t.Fatal(err)
	}

	first, err := cl.Load(data, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	second, err := cl.Load(data, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Error("first load cached")
	}
	if !second.Cached {
		t.Error("second load missed the decoded-bitstream cache")
	}
	if first.Digest != second.Digest {
		t.Error("content addressing returned different digests")
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Decodes != 1 {
		t.Errorf("decodes = %d, want 1 (second load must skip decode)", st.Decodes)
	}
	if st.Cache.Hits < 1 || st.Cache.Misses != 1 {
		t.Errorf("cache hits=%d misses=%d", st.Cache.Hits, st.Cache.Misses)
	}
	if st.Store.Entries != 1 {
		t.Errorf("store entries = %d, want 1 (identical containers deduplicate)", st.Store.Entries)
	}
	if st.LoadLatency.Count != 2 || st.LoadLatency.MaxMS < st.LoadLatency.MeanMS {
		t.Errorf("latency stats = %+v", st.LoadLatency)
	}
}

// TestConcurrentClients hammers the daemon from many goroutines over
// two fabrics; run with -race. Every client loads, relocates and
// unloads repeatedly; at the end the pool must be empty and the
// counters consistent.
func TestConcurrentClients(t *testing.T) {
	cl, _ := newTestDaemon(t, 2, 24, server.Options{})
	// Three distinct tasks shared by eight clients: plenty of cache
	// hits and digest collisions by design.
	containers := make([][]byte, 3)
	for i := range containers {
		data, err := makeVBS(int64(10+i), 8, 4, 8, 1).Encode()
		if err != nil {
			t.Fatal(err)
		}
		containers[i] = data
	}

	const clients = 8
	const iters = 6
	var wg sync.WaitGroup
	errs := make(chan error, clients*iters)
	wg.Add(clients)
	for g := 0; g < clients; g++ {
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				res, err := cl.Load(containers[(g+i)%len(containers)], nil, nil, nil)
				if err != nil {
					// The pool can be momentarily full; that is a
					// well-formed 409, not a failure.
					if strings.Contains(err.Error(), "409") {
						continue
					}
					errs <- fmt.Errorf("client %d load: %w", g, err)
					return
				}
				if i%2 == 0 {
					// Best-effort relocation; contention may refuse it.
					_, _ = cl.Relocate(res.ID, (g*3)%16, (i*5)%16)
				}
				if err := cl.Unload(res.ID); err != nil {
					errs <- fmt.Errorf("client %d unload: %w", g, err)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	st, err := cl.Stats()
	if err != nil {
		t.Fatal(err)
	}
	if st.Tasks != 0 {
		t.Errorf("tasks = %d after all unloads", st.Tasks)
	}
	if st.Loads != st.Unloads {
		t.Errorf("loads %d != unloads %d", st.Loads, st.Unloads)
	}
	if st.Store.Entries != len(containers) {
		t.Errorf("store entries = %d", st.Store.Entries)
	}
	// Decodes must not exceed distinct containers: everything else is
	// cache or singleflight.
	if st.Decodes > uint64(len(containers)) {
		t.Errorf("decodes = %d, want <= %d", st.Decodes, len(containers))
	}
	for _, f := range st.Fabrics {
		if f.FreeMacros != f.TotalMacros {
			t.Errorf("fabric %d not empty: %d/%d free", f.Index, f.FreeMacros, f.TotalMacros)
		}
	}
}

func TestFabricPinningAndPlacement(t *testing.T) {
	cl, _ := newTestDaemon(t, 2, 16, server.Options{})
	data, err := makeVBS(3, 10, 4, 8, 1).Encode()
	if err != nil {
		t.Fatal(err)
	}
	one := 1
	x, y := 4, 4
	res, err := cl.Load(data, &one, &x, &y)
	if err != nil {
		t.Fatal(err)
	}
	if res.Fabric != 1 || res.X != 4 || res.Y != 4 {
		t.Errorf("placed at fabric %d (%d,%d)", res.Fabric, res.X, res.Y)
	}
	fabs, err := cl.Fabrics()
	if err != nil {
		t.Fatal(err)
	}
	if len(fabs) != 2 {
		t.Fatalf("fabrics = %d", len(fabs))
	}
	if fabs[1].Occupancy <= 0 || fabs[0].Occupancy != 0 {
		t.Errorf("occupancy = %v / %v", fabs[0].Occupancy, fabs[1].Occupancy)
	}
	// The same position on the same fabric is now taken.
	if _, err := cl.Load(data, &one, &x, &y); err == nil {
		t.Error("overlapping pinned load accepted")
	}
	// Auto-placement must prefer the emptier fabric 0.
	auto, err := cl.Load(data, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Fabric != 0 {
		t.Errorf("auto placement chose fabric %d, want the emptier 0", auto.Fabric)
	}
}

func TestBadRequests(t *testing.T) {
	cl, _ := newTestDaemon(t, 1, 16, server.Options{})
	check := func(err error, code string, what string) {
		t.Helper()
		if err == nil {
			t.Errorf("%s accepted", what)
		} else if !strings.Contains(err.Error(), code) {
			t.Errorf("%s: error %v, want %s", what, err, code)
		}
	}
	_, err := cl.Load([]byte("garbage container"), nil, nil, nil)
	check(err, "400", "malformed container")
	check(func() error { _, err := cl.Load(nil, nil, nil, nil); return err }(),
		"400", "empty container")

	badFabric := 7
	data, errEnc := makeVBS(4, 8, 4, 8, 1).Encode()
	if errEnc != nil {
		t.Fatal(errEnc)
	}
	_, err = cl.Load(data, &badFabric, nil, nil)
	check(err, "400", "out-of-range fabric")

	_, err = cl.Relocate(99, 0, 0)
	check(err, "404", "relocating unknown task")

	x := 3
	_, err = cl.Load(data, nil, &x, nil)
	check(err, "400", "x without y")
}
