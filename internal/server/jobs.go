package server

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"

	"repro/internal/jobs"
)

// defineJobs registers the node's background job kinds. Called once
// from New, before the metrics registry snapshots the kind list.
func (s *Server) defineJobs() {
	s.jobs.Define(jobs.Spec{Kind: "tombstone-sweep", Run: func(ctx context.Context, j *jobs.Job) error {
		n, err := s.store.ExpireTombstones()
		j.Set("swept", int64(n))
		return err
	}})
	// Scrub re-reads every disk blob (abortable between blobs), then
	// purges the quarantine/temp holding areas. Exclusive: two scrubs
	// would double every disk read for no extra coverage.
	s.jobs.Define(jobs.Spec{Kind: "scrub", Exclusive: true, Run: s.runScrub})
	// Warm streams stored blobs through the decode path so a restarted
	// daemon serves its first loads at cache-hit latency.
	s.jobs.Define(jobs.Spec{Kind: "warm", Exclusive: true, Run: s.runWarm})
}

func (s *Server) runScrub(ctx context.Context, j *jobs.Job) error {
	disk := s.store.Disk()
	if disk == nil {
		return errors.New("scrub needs a disk tier (run vbsd with -data-dir)")
	}
	rep, err := disk.VerifyCtx(ctx)
	j.Set("checked", int64(rep.Checked))
	j.Set("verified_bytes", rep.Bytes)
	j.Set("corrupt", int64(len(rep.Corrupt)))
	if err != nil {
		return err
	}
	gc, err := disk.GC()
	if err != nil {
		return err
	}
	j.Set("quarantine_removed", int64(gc.QuarantineRemoved))
	j.Set("temp_removed", int64(gc.TempRemoved))
	j.Set("bytes_reclaimed", gc.BytesReclaimed)
	return nil
}

func (s *Server) runWarm(ctx context.Context, j *jobs.Job) error {
	max := 0
	if v := j.Arg("max"); v != "" {
		m, err := strconv.Atoi(v)
		if err != nil {
			return fmt.Errorf("bad max argument %q: %w", v, err)
		}
		max = m
	}
	_, err := s.warmDecoded(ctx, max, j.Add)
	return err
}

// Jobs exposes the node's job table — vbsd uses it for periodic
// housekeeping and graceful shutdown.
func (s *Server) Jobs() *jobs.Table { return s.jobs }

// ── HTTP surface ───────────────────────────────────────────────────

// WriteJobStartError maps a Table.Start refusal onto the API: unknown
// kind is the caller's mistake (400, listing the valid kinds),
// an exclusive collision is a conflict (409). Shared with the cluster
// gateway so both surfaces refuse identically.
func WriteJobStartError(w http.ResponseWriter, err error, kinds []string) {
	switch {
	case errors.Is(err, jobs.ErrUnknownKind):
		writeError(w, http.StatusBadRequest, "%v (kinds: %s)", err, strings.Join(kinds, ", "))
	case errors.Is(err, jobs.ErrExclusive):
		writeError(w, http.StatusConflict, "%v", err)
	default:
		writeError(w, http.StatusInternalServerError, "%v", err)
	}
}

func (s *Server) handleStartJob(w http.ResponseWriter, r *http.Request) {
	var req StartJobRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	j, err := s.jobs.Start(req.Kind, req.Args)
	if err != nil {
		WriteJobStartError(w, err, s.jobs.Kinds())
		return
	}
	writeJSON(w, http.StatusAccepted, j.Snapshot())
}

func (s *Server) handleListJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.jobs.List())
}

// jobFromPath resolves {id} or replies 404/400.
func (s *Server) jobFromPath(w http.ResponseWriter, r *http.Request) (*jobs.Job, bool) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad job id %q", r.PathValue("id"))
		return nil, false
	}
	j, ok := s.jobs.Get(id)
	if !ok {
		writeError(w, http.StatusNotFound, "job %d not found", id)
		return nil, false
	}
	return j, true
}

func (s *Server) handleGetJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, j.Snapshot())
}

// handleAbortJob signals the abort and returns the job's snapshot
// immediately — the runner winds down asynchronously; poll
// GET /jobs/{id} for the terminal state.
func (s *Server) handleAbortJob(w http.ResponseWriter, r *http.Request) {
	j, ok := s.jobFromPath(w, r)
	if !ok {
		return
	}
	s.jobs.Abort(j.ID())
	writeJSON(w, http.StatusOK, j.Snapshot())
}
