package server

import (
	"encoding/base64"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/server/store"
)

// MaxBatchOps bounds one POST /tasks:batch request. The cap exists so
// a single batch cannot monopolize the daemon for unbounded time; the
// body-size limit already bounds total payload bytes. The gateway
// enforces the same cap up front, so a sub-batch it fans out never
// trips a node-side rejection that would fail sibling ops wholesale.
const MaxBatchOps = 1024

// handleBatch executes many task operations in one round trip —
// the amortized form of POST /tasks for scenario loads, and the
// target the gateway fans sub-batches at over streams.
func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	defer s.observe("batch", time.Now())
	var req BatchRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	resp, status, err := s.execBatch(req)
	if err != nil {
		writeError(w, status, "%v", err)
		return
	}
	writeJSON(w, http.StatusOK, resp)
}

// execBatch runs a batch sequentially, one result per op in order.
// Entry failures land in their result; only a malformed batch as a
// whole returns an error.
func (s *Server) execBatch(req BatchRequest) (BatchResponse, int, error) {
	if len(req.Ops) == 0 {
		return BatchResponse{}, http.StatusBadRequest, errors.New("empty batch")
	}
	if len(req.Ops) > MaxBatchOps {
		return BatchResponse{}, http.StatusBadRequest,
			fmt.Errorf("batch of %d ops exceeds limit %d", len(req.Ops), MaxBatchOps)
	}
	s.transport.ObserveBatch(len(req.Ops))
	out := BatchResponse{Results: make([]BatchResult, len(req.Ops))}
	for i, op := range req.Ops {
		out.Results[i] = s.execOne(op)
	}
	return out, 0, nil
}

// execOne dispatches a single batch entry through the same helpers
// the per-request handlers use, so statuses and error messages match
// the unbatched API exactly. Each op lands on the op-latency
// histogram under its own name — batching changes the transport, not
// the accounting.
func (s *Server) execOne(op BatchOp) BatchResult {
	kind := op.Op
	if kind == "" && op.VBS != "" {
		kind = "load"
	}
	begin := time.Now()
	switch kind {
	case "load":
		defer s.observe("load", begin)
		data, err := base64.StdEncoding.DecodeString(op.VBS)
		if err != nil {
			return BatchResult{Status: http.StatusBadRequest, Error: fmt.Sprintf("bad vbs base64: %v", err)}
		}
		lr, status, lerr := s.loadOne(begin, data, LoadRequest{
			Fabric: op.Fabric, X: op.X, Y: op.Y, Policy: op.Policy,
		})
		if lerr != nil {
			return BatchResult{Status: status, Error: lerr.Error()}
		}
		return BatchResult{Status: http.StatusCreated, Load: &lr}
	case "get":
		defer s.observe("vbs_get", begin)
		d, err := store.ParseDigest(op.Digest)
		if err != nil {
			return BatchResult{Status: http.StatusBadRequest, Error: err.Error()}
		}
		data, status, gerr := s.getVBSData(d)
		if gerr != nil {
			return BatchResult{Status: status, Error: gerr.Error()}
		}
		return BatchResult{Status: http.StatusOK, VBS: base64.StdEncoding.EncodeToString(data)}
	case "unload":
		defer s.observe("unload", begin)
		if status, uerr := s.unloadTask(op.ID); uerr != nil {
			return BatchResult{Status: status, Error: uerr.Error()}
		}
		return BatchResult{Status: http.StatusNoContent}
	default:
		return BatchResult{Status: http.StatusBadRequest, Error: fmt.Sprintf("unknown batch op %q", op.Op)}
	}
}
