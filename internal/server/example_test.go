package server_test

import (
	"context"
	"fmt"
	"net/http/httptest"

	"repro/internal/server"
)

// Example_clientServer shows the end-to-end vbsd path: compile a task
// to a Virtual Bit-Stream, start a daemon over a two-fabric pool, load
// the task twice — the second load is served from the decoded-
// bitstream cache — relocate it, and read the daemon's counters.
func Example_clientServer() {
	srv, err := server.New(newPool(2, 16), server.Options{})
	if err != nil {
		panic(err)
	}
	hs := httptest.NewServer(srv.Handler())
	defer hs.Close()
	cl := server.NewClient(hs.URL, hs.Client())
	ctx := context.Background()

	container, err := makeVBS(7, 10, 4, 8, 1).Encode()
	if err != nil {
		panic(err)
	}

	first, err := cl.LoadCtx(ctx, container, nil, nil, nil)
	if err != nil {
		panic(err)
	}
	second, err := cl.LoadCtx(ctx, container, nil, nil, nil)
	if err != nil {
		panic(err)
	}
	fmt.Printf("first load cached: %v\n", first.Cached)
	fmt.Printf("second load cached: %v\n", second.Cached)

	if _, err := cl.RelocateCtx(ctx, second.ID, 9, 9); err != nil {
		panic(err)
	}

	st, err := cl.StatsCtx(ctx)
	if err != nil {
		panic(err)
	}
	fmt.Printf("decodes: %d\n", st.Decodes)
	fmt.Printf("tasks loaded: %d on %d fabrics\n", st.Tasks, len(st.Fabrics))
	// Output:
	// first load cached: false
	// second load cached: true
	// decodes: 1
	// tasks loaded: 2 on 2 fabrics
}
