// Package server implements vbsd, the run-time configuration
// management daemon: an HTTP/JSON front end over a pool of simulated
// fabrics, each driven by the Section II-C reconfiguration controller.
//
// The daemon turns the paper's single-caller runtime manager into a
// service. Clients POST Virtual Bit-Stream containers; the daemon
// stores them content-addressed (identical tasks deduplicate), decodes
// them once through the parallel de-virtualization workers, keeps
// decoded bitstreams in a size-bounded LRU so repeated loads skip the
// decode entirely, and serializes mutations per fabric so any number
// of concurrent clients can load, unload and relocate safely.
//
// Placement is delegated to the internal/sched policy layer: the
// configured policy ranks the fabric pool and picks slots through the
// controller's dry-run admission check, a load request may override
// the policy per call, and when no fabric admits a task the daemon
// compacts the most promising fabric and retries the placement once.
//
// # API
//
//	POST   /tasks                {"vbs": base64, "fabric"?, "x"?, "y"?, "policy"?}
//	GET    /tasks                list loaded tasks
//	DELETE /tasks/{id}           unload
//	POST   /tasks/{id}/relocate  {"x":, "y":}
//	POST   /fabrics/{i}/compact  defragment one fabric
//	GET    /fabrics              pool occupancy
//	GET    /vbs                  list stored blobs (both tiers)
//	GET    /vbs/{digest}         raw container download
//	DELETE /vbs/{digest}         drop a blob (409 while tasks reference it)
//	GET    /stats                counters, cache, repo and latency figures
//	GET    /healthz              liveness probe
//
// With Options.DataDir set, the store gains a persistent
// content-addressed disk tier (internal/repo): admissions are written
// through, RAM eviction demotes instead of deleting, misses fall
// through to disk, and a boot recovery scan re-indexes surviving
// blobs so a restarted daemon serves them without re-upload.
package server

import (
	"context"
	"encoding/base64"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/controller"
	"repro/internal/fabric"
	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/repo"
	"repro/internal/sched"
	"repro/internal/server/store"
	"repro/internal/transport"
)

// Options tunes a Server.
type Options struct {
	// CacheBits bounds the decoded-bitstream LRU by total raw bits
	// (0 = unbounded; a decoded task costs TaskW*TaskH*NRaw-ish bits).
	CacheBits int64
	// StoreBytes bounds the content-addressed VBS store by container
	// bytes, evicting least-recently-used entries (0 = unbounded).
	// Eviction only costs deduplication of future loads.
	StoreBytes int
	// DecodeWorkers sets the de-virtualization worker count per decode
	// (0 = GOMAXPROCS).
	DecodeWorkers int
	// Policy names the default placement policy (see sched.Names);
	// empty selects sched.Default (emptiest-fabric).
	Policy string
	// DataDir roots the persistent blob tier (internal/repo). Empty
	// keeps the store RAM-only: eviction deletes, restart loses
	// everything. With a data dir, admissions are written through to
	// disk, eviction demotes, misses fall through, and a boot recovery
	// scan re-indexes (and quarantines) existing blobs.
	DataDir string
	// MaxBodyBytes bounds every JSON request body; an oversized body
	// is rejected with 413 before being buffered in full. 0 selects
	// DefaultMaxBodyBytes; negative disables the limit.
	MaxBodyBytes int64
	// EnableChaos registers the /chaos/faults endpoints, which arm the
	// disk tier's fault-injection seam over HTTP. For chaos testing
	// only — never enable on a production daemon.
	EnableChaos bool
	// TombstoneTTL is how long DELETE /vbs tombstones block automated
	// re-admission of a deleted digest (0 = repo.DefaultTombstoneTTL).
	// Only meaningful with a data dir: tombstones live in the disk
	// tier.
	TombstoneTTL time.Duration
	// DisableStreams leaves the GET /stream upgrade endpoint off the
	// mux, forcing intra-cluster peers back onto per-request HTTP.
	DisableStreams bool
}

// DefaultMaxBodyBytes is the request-body bound applied when
// Options.MaxBodyBytes is zero: generous against any real VBS
// container (base64 inflates by 4/3), small against a memory DoS.
const DefaultMaxBodyBytes = 64 << 20

// Server manages a pool of fabrics behind the HTTP API. Create one
// with New and expose Handler on an http.Server.
type Server struct {
	ctrls   []*controller.Controller
	store   *store.Store
	cache   *store.Cache[*controller.Decoded]
	flight  *store.Flight[*controller.Decoded]
	workers int
	policy  sched.Policy
	maxBody int64
	chaos   bool
	streams bool
	tombTTL time.Duration
	start   time.Time

	mu     sync.Mutex
	tasks  map[int64]*task
	nextID int64
	// pending counts loads that have admitted a digest to the store
	// but not yet registered (or abandoned) their task, so
	// DELETE /vbs/{digest} cannot remove a blob out from under a load
	// in flight.
	pending map[store.Digest]int

	decodes      atomic.Uint64
	loadCount    atomic.Uint64
	loadNanos    atomic.Int64
	loadMax      atomic.Int64
	compactions  atomic.Uint64
	compactMoved atomic.Uint64
	retryLoads   atomic.Uint64

	jobs      *jobs.Table
	metrics   *metrics.Registry
	opLat     *metrics.HistogramVec
	decodeLat *metrics.Histogram
	transport *transport.Metrics
}

// task maps a server task id to its fabric-level identity.
type task struct {
	id     int64
	fabric int
	fid    fabric.TaskID
	digest store.Digest
}

// New returns a daemon over the given fabric pool. At least one
// controller is required; all fabrics may differ in size but share
// the pool.
func New(ctrls []*controller.Controller, opts Options) (*Server, error) {
	if len(ctrls) == 0 {
		return nil, fmt.Errorf("server: empty fabric pool")
	}
	pol, err := sched.New(opts.Policy)
	if err != nil {
		return nil, err
	}
	var disk *repo.Repo
	if opts.DataDir != "" {
		if disk, err = repo.Open(opts.DataDir, repo.Options{}); err != nil {
			return nil, err
		}
	}
	maxBody := opts.MaxBodyBytes
	if maxBody == 0 {
		maxBody = DefaultMaxBodyBytes
	}
	s := &Server{
		ctrls: ctrls,
		store: store.NewTiered(opts.StoreBytes, disk),
		cache: store.NewCache[*controller.Decoded](opts.CacheBits,
			func(d *controller.Decoded) int64 { return int64(d.SizeBits()) }),
		flight:  store.NewFlight[*controller.Decoded](),
		workers: opts.DecodeWorkers,
		policy:  pol,
		maxBody: maxBody,
		chaos:   opts.EnableChaos,
		streams: !opts.DisableStreams,
		tombTTL: opts.TombstoneTTL,
		start:   time.Now(),
		tasks:   make(map[int64]*task),
		pending: make(map[store.Digest]int),
		jobs:    jobs.NewTable(),
	}
	s.defineJobs()
	s.metrics = newServerMetrics(s)
	return s, nil
}

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /tasks", s.handleLoad)
	mux.HandleFunc("POST /tasks:batch", s.handleBatch)
	mux.HandleFunc("GET /tasks", s.handleListTasks)
	mux.HandleFunc("DELETE /tasks/{id}", s.handleUnload)
	mux.HandleFunc("POST /tasks/{id}/relocate", s.handleRelocate)
	mux.HandleFunc("POST /fabrics/{i}/compact", s.handleCompact)
	mux.HandleFunc("GET /fabrics", s.handleFabrics)
	mux.HandleFunc("POST /vbs", s.handlePutVBS)
	mux.HandleFunc("GET /vbs", s.handleListVBS)
	mux.HandleFunc("GET /vbs/{digest}", s.handleGetVBS)
	mux.HandleFunc("DELETE /vbs/{digest}", s.handleDeleteVBS)
	mux.HandleFunc("GET /tombstones", s.handleTombstones)
	mux.HandleFunc("POST /jobs", s.handleStartJob)
	mux.HandleFunc("GET /jobs", s.handleListJobs)
	mux.HandleFunc("GET /jobs/{id}", s.handleGetJob)
	mux.HandleFunc("DELETE /jobs/{id}", s.handleAbortJob)
	mux.Handle("GET /metrics", s.metrics)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	if s.streams {
		mux.HandleFunc("GET "+transport.DefaultPath, s.handleStream)
	}
	if s.chaos {
		mux.HandleFunc("POST /chaos/faults", s.handleSetFaults)
		mux.HandleFunc("GET /chaos/faults", s.handleGetFaults)
	}
	return mux
}

// handleSetFaults arms (or clears, with all-false) the disk tier's
// fault-injection seam. Registered only with Options.EnableChaos.
func (s *Server) handleSetFaults(w http.ResponseWriter, r *http.Request) {
	disk := s.store.Disk()
	if disk == nil {
		writeError(w, http.StatusConflict, "no disk tier: faults need -data-dir")
		return
	}
	var f ChaosFaults
	if !s.decodeBody(w, r, &f) {
		return
	}
	disk.SetFaults(repo.Faults(f))
	writeJSON(w, http.StatusOK, f)
}

func (s *Server) handleGetFaults(w http.ResponseWriter, r *http.Request) {
	disk := s.store.Disk()
	if disk == nil {
		writeError(w, http.StatusConflict, "no disk tier: faults need -data-dir")
		return
	}
	writeJSON(w, http.StatusOK, ChaosFaults(disk.Faults()))
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// decodeBody reads a JSON request body under the server's size bound.
func (s *Server) decodeBody(w http.ResponseWriter, r *http.Request, v any) bool {
	return DecodeJSONBody(w, r, s.maxBody, v)
}

// DecodeJSONBody reads a JSON request body bounded by maxBytes
// (<= 0 = unbounded), replying 413 on overflow and 400 on malformed
// JSON. It returns false when a reply was already written. Shared by
// the daemon and the cluster gateway so both surfaces reject
// oversized bodies identically.
func DecodeJSONBody(w http.ResponseWriter, r *http.Request, maxBytes int64, v any) bool {
	body := r.Body
	if maxBytes > 0 {
		body = http.MaxBytesReader(w, r.Body, maxBytes)
	}
	if err := json.NewDecoder(body).Decode(v); err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			writeError(w, http.StatusRequestEntityTooLarge,
				"request body exceeds %d bytes", tooBig.Limit)
			return false
		}
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return false
	}
	return true
}

// writePutError reports a store.Put failure: disk-tier I/O failures
// are the server's fault — 500, worded as such, and a cluster
// gateway fails the load over to another node — while a tombstone
// refusal is 410 Gone (the digest was deleted; automated copiers must
// not resurrect it) and everything else is a malformed container,
// 400.
// putError maps a store admission failure to an HTTP status and
// message — shared by the JSON handlers and the stream/batch paths so
// every transport speaks the same error vocabulary.
func putError(err error) (int, string) {
	if errors.Is(err, repo.ErrTombstoned) {
		return http.StatusGone, fmt.Sprintf("vbs deleted: %v", err)
	}
	if errors.Is(err, store.ErrDisk) {
		return http.StatusInternalServerError, fmt.Sprintf("cannot persist vbs: %v", err)
	}
	return http.StatusBadRequest, fmt.Sprintf("bad vbs container: %v", err)
}

func writePutError(w http.ResponseWriter, err error) {
	status, msg := putError(err)
	writeError(w, status, "%s", msg)
}

// observe records one operation's latency on the op histogram —
// deferred at the top of each hot handler so errors are measured too.
func (s *Server) observe(op string, begin time.Time) {
	s.opLat.With(op).Observe(time.Since(begin).Seconds())
}

// getOrDecode returns the decoded form of a stored VBS, consulting the
// LRU first and collapsing concurrent decodes of the same digest.
func (s *Server) getOrDecode(ent *store.Entry) (dec *controller.Decoded, cached bool, err error) {
	if d, ok := s.cache.Get(ent.Digest); ok {
		return d, true, nil
	}
	d, err, shared := s.flight.Do(ent.Digest, func() (*controller.Decoded, error) {
		begin := time.Now()
		d, err := controller.DecodeVBS(ent.VBS, s.workers)
		if err != nil {
			return nil, err
		}
		s.decodeLat.Observe(time.Since(begin).Seconds())
		s.decodes.Add(1)
		s.cache.Put(ent.Digest, d)
		return d, nil
	})
	if err != nil {
		return nil, false, err
	}
	// A piggybacked caller shared another request's decode: from this
	// request's point of view that is a cache hit in all but name.
	return d, shared, nil
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	begin := time.Now()
	defer s.observe("load", begin)
	var req LoadRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	data, err := base64.StdEncoding.DecodeString(req.VBS)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad vbs base64: %v", err)
		return
	}
	resp, status, lerr := s.loadOne(begin, data, req)
	if lerr != nil {
		writeError(w, status, "%v", lerr)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

// loadOne runs one load end to end — admission, decode, placement,
// registration — and returns the response or an HTTP status plus
// error. begin is when the request entered the daemon so LoadMS spans
// the whole service time; batch ops pass their own per-op clock.
func (s *Server) loadOne(begin time.Time, data []byte, req LoadRequest) (LoadResponse, int, error) {
	var zero LoadResponse
	if (req.X == nil) != (req.Y == nil) {
		return zero, http.StatusBadRequest, errors.New("x and y must be given together")
	}
	// From before admission until the task is registered (or this
	// load gives up), hold a pending reference so a concurrent
	// DELETE /vbs cannot drop the blob in the gap. The ref must be
	// taken before Put: taken after, a delete sneaking between
	// admission and the increment would see zero references, remove
	// the blob, and leave this load registering a task whose digest
	// is no longer stored.
	digest := store.DigestOf(data)
	s.mu.Lock()
	s.pending[digest]++
	s.mu.Unlock()
	defer func() {
		s.mu.Lock()
		if s.pending[digest]--; s.pending[digest] <= 0 {
			delete(s.pending, digest)
		}
		s.mu.Unlock()
	}()
	// A load is explicit user intent to run these bytes: it overrides
	// any delete tombstone left by an earlier DELETE /vbs.
	if err := s.store.ClearTombstone(digest); err != nil {
		return zero, http.StatusInternalServerError, fmt.Errorf("cannot clear tombstone: %w", err)
	}
	ent, _, err := s.store.Put(data)
	if err != nil {
		status, msg := putError(err)
		return zero, status, errors.New(msg)
	}
	dec, cached, err := s.getOrDecode(ent)
	if err != nil {
		return zero, http.StatusUnprocessableEntity, fmt.Errorf("decode failed: %w", err)
	}

	pol := s.policy
	if req.Policy != "" {
		if pol, err = sched.New(req.Policy); err != nil {
			return zero, http.StatusBadRequest, err
		}
	}
	sreq := sched.Request{W: ent.VBS.TaskW, H: ent.VBS.TaskH}
	candidates, err := s.candidateFabrics(req.Fabric, pol, sreq)
	if err != nil {
		return zero, http.StatusBadRequest, err
	}
	// noSlot collects, in policy-preference order, the fabrics whose
	// failure was lack of a conflict-free slot — the only failure mode
	// compaction can fix. Structural refusals (architecture mismatch)
	// would fail identically on a defragmented fabric and must neither
	// trigger a retry nor steer it at the wrong fabric.
	var noSlot []int
	tryPlace := func() (*controller.Task, int, error) {
		noSlot = noSlot[:0] // each pass reports its own failures
		var lastErr error
		for _, fi := range candidates {
			c := s.ctrls[fi]
			var t *controller.Task
			var err error
			if req.X != nil {
				t, err = c.LoadDecodedAt(dec, *req.X, *req.Y)
			} else {
				t, err = c.LoadDecodedPolicy(dec, pol)
			}
			if err == nil {
				return t, fi, nil
			}
			if errors.Is(err, controller.ErrNoSlot) {
				noSlot = append(noSlot, fi)
			}
			lastErr = err
		}
		return nil, 0, lastErr
	}
	placed, onIndex, lastErr := tryPlace()
	compacted := false
	if placed == nil && req.X == nil {
		// Auto-compaction retry: defragment the most promising fabric
		// (first capacity-failed fabric in policy order with enough
		// total free space) and give the placement one more chance.
		// Pinned positions are exempt — compaction could relocate other
		// tasks into the requested slot.
		if fi, ok := s.compactTarget(noSlot, sreq); ok {
			moved, cerr := s.ctrls[fi].Compact()
			s.compactions.Add(1)
			s.compactMoved.Add(uint64(moved))
			if cerr != nil {
				return zero, http.StatusInternalServerError, fmt.Errorf("compaction failed: %w", cerr)
			}
			if placed, onIndex, lastErr = tryPlace(); placed != nil {
				compacted = true
				s.retryLoads.Add(1)
			}
		}
	}
	if placed == nil {
		return zero, http.StatusConflict, fmt.Errorf("no fabric accepted the task: %w", lastErr)
	}

	s.mu.Lock()
	id := s.nextID
	s.nextID++
	s.tasks[id] = &task{id: id, fabric: onIndex, fid: placed.ID, digest: ent.Digest}
	s.mu.Unlock()

	elapsed := time.Since(begin)
	s.loadCount.Add(1)
	s.loadNanos.Add(int64(elapsed))
	for {
		cur := s.loadMax.Load()
		if int64(elapsed) <= cur || s.loadMax.CompareAndSwap(cur, int64(elapsed)) {
			break
		}
	}

	return LoadResponse{
		ID:               id,
		Fabric:           onIndex,
		X:                placed.X,
		Y:                placed.Y,
		Digest:           ent.Digest.String(),
		TaskW:            ent.VBS.TaskW,
		TaskH:            ent.VBS.TaskH,
		Cached:           cached,
		CompressionRatio: ent.VBS.CompressionRatio(),
		LoadMS:           float64(elapsed) / float64(time.Millisecond),
		Compacted:        compacted,
	}, 0, nil
}

// candidateFabrics returns fabric indices in placement-preference
// order: the pinned fabric alone, or the pool ranked by the policy.
func (s *Server) candidateFabrics(pinned *int, pol sched.Policy, req sched.Request) ([]int, error) {
	if pinned != nil {
		if *pinned < 0 || *pinned >= len(s.ctrls) {
			return nil, fmt.Errorf("fabric %d out of range [0,%d)", *pinned, len(s.ctrls))
		}
		return []int{*pinned}, nil
	}
	stats := make([]sched.FabricStat, len(s.ctrls))
	for i, c := range s.ctrls {
		g := c.Fabric().Grid()
		stats[i] = sched.FabricStat{
			Index:      i,
			Width:      g.Width,
			Height:     g.Height,
			FreeMacros: c.Stats().FreeMacros,
		}
	}
	return pol.RankFabrics(stats, req), nil
}

// compactTarget picks the fabric to defragment for a failed placement:
// the first capacity-failed candidate (in policy-preference order)
// whose total free space could hold the task, so compaction at least
// has a chance of coalescing a large-enough region.
func (s *Server) compactTarget(noSlot []int, req sched.Request) (int, bool) {
	for _, fi := range noSlot {
		g := s.ctrls[fi].Fabric().Grid()
		if g.Width < req.W || g.Height < req.H {
			continue
		}
		if s.ctrls[fi].Stats().FreeMacros >= req.Area() {
			return fi, true
		}
	}
	return 0, false
}

// taskFromPath resolves {id} or replies 404/400.
func (s *Server) taskFromPath(w http.ResponseWriter, r *http.Request) (*task, bool) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad task id %q", r.PathValue("id"))
		return nil, false
	}
	s.mu.Lock()
	t, ok := s.tasks[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "task %d not loaded", id)
		return nil, false
	}
	return t, true
}

func (s *Server) handleUnload(w http.ResponseWriter, r *http.Request) {
	defer s.observe("unload", time.Now())
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad task id %q", r.PathValue("id"))
		return
	}
	if status, uerr := s.unloadTask(id); uerr != nil {
		writeError(w, status, "%v", uerr)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// unloadTask removes one task, returning a non-zero HTTP status plus
// error on failure. Lookup and delete run under one lock so two
// concurrent unloads of the same id cannot both reach the controller.
func (s *Server) unloadTask(id int64) (int, error) {
	s.mu.Lock()
	t, live := s.tasks[id]
	if !live {
		s.mu.Unlock()
		return http.StatusNotFound, fmt.Errorf("task %d not loaded", id)
	}
	delete(s.tasks, id)
	s.mu.Unlock()
	if err := s.ctrls[t.fabric].Unload(t.fid); err != nil {
		// Resurrect the API entry only while the controller still holds
		// the task: then its fabric region is still occupied and must
		// not become invisible (and unreclaimable) over HTTP. If the
		// controller does not know the task (the fid is already gone),
		// the region is free and the entry must stay deleted, or every
		// future DELETE would 500 on an undeletable phantom.
		if _, held := s.ctrls[t.fabric].Task(t.fid); held {
			s.mu.Lock()
			s.tasks[t.id] = t
			s.mu.Unlock()
		}
		return http.StatusInternalServerError, err
	}
	return 0, nil
}

func (s *Server) handleRelocate(w http.ResponseWriter, r *http.Request) {
	defer s.observe("relocate", time.Now())
	t, ok := s.taskFromPath(w, r)
	if !ok {
		return
	}
	var req RelocateRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	// Both coordinates are required: a partial or empty body must not
	// silently relocate the task to (0,0).
	if req.X == nil || req.Y == nil {
		writeError(w, http.StatusBadRequest, "x and y are required")
		return
	}
	if err := s.ctrls[t.fabric].Relocate(t.fid, *req.X, *req.Y); err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	ct, _ := s.ctrls[t.fabric].Task(t.fid)
	info := TaskInfo{ID: t.id, Fabric: t.fabric, Digest: t.digest.String()}
	if ct != nil {
		info.X, info.Y = ct.X, ct.Y
		info.TaskW, info.TaskH = ct.VBS.TaskW, ct.VBS.TaskH
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleListTasks(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ts := make([]*task, 0, len(s.tasks))
	for _, t := range s.tasks {
		ts = append(ts, t)
	}
	s.mu.Unlock()
	sort.Slice(ts, func(a, b int) bool { return ts[a].id < ts[b].id })
	out := make([]TaskInfo, 0, len(ts))
	for _, t := range ts {
		info := TaskInfo{ID: t.id, Fabric: t.fabric, Digest: t.digest.String()}
		if ct, ok := s.ctrls[t.fabric].Task(t.fid); ok {
			info.X, info.Y = ct.X, ct.Y
			info.TaskW, info.TaskH = ct.VBS.TaskW, ct.VBS.TaskH
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) fabricInfos() []FabricInfo {
	out := make([]FabricInfo, len(s.ctrls))
	for i, c := range s.ctrls {
		g := c.Fabric().Grid()
		p := c.Fabric().Params()
		out[i] = FabricInfo{
			Index:  i,
			Width:  g.Width,
			Height: g.Height,
			W:      p.W,
			K:      p.K,
			Stats:  c.Stats(),
		}
	}
	return out
}

func (s *Server) handleFabrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.fabricInfos())
}

// handleCompact defragments one fabric on demand — the explicit form
// of the auto-compaction retry.
func (s *Server) handleCompact(w http.ResponseWriter, r *http.Request) {
	i, err := strconv.Atoi(r.PathValue("i"))
	if err != nil || i < 0 || i >= len(s.ctrls) {
		writeError(w, http.StatusNotFound, "fabric %q not in pool", r.PathValue("i"))
		return
	}
	moved, cerr := s.ctrls[i].Compact()
	s.compactions.Add(1)
	s.compactMoved.Add(uint64(moved))
	if cerr != nil {
		// A propagated restore failure means a task lost its fabric
		// region mid-compaction: surface it loudly.
		writeError(w, http.StatusInternalServerError, "%v", cerr)
		return
	}
	writeJSON(w, http.StatusOK, CompactResponse{Fabric: i, Moved: moved})
}

// digestRefs counts live tasks per referenced digest.
func (s *Server) digestRefs() map[store.Digest]int {
	refs := make(map[store.Digest]int)
	s.mu.Lock()
	for _, t := range s.tasks {
		refs[t.digest]++
	}
	s.mu.Unlock()
	return refs
}

// handlePutVBS admits a container into the store without placing a
// task — the replication path of the cluster gateway, and a cheap way
// to pre-seed a daemon. The blob lands in both tiers exactly like a
// load-time admission (write-through with a data dir).
func (s *Server) handlePutVBS(w http.ResponseWriter, r *http.Request) {
	defer s.observe("vbs_put", time.Now())
	var req PutVBSRequest
	if !s.decodeBody(w, r, &req) {
		return
	}
	data, err := base64.StdEncoding.DecodeString(req.VBS)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad vbs base64: %v", err)
		return
	}
	resp, status, perr := s.putBlob(data, req.Force)
	if perr != nil {
		writeError(w, status, "%v", perr)
		return
	}
	writeJSON(w, http.StatusCreated, resp)
}

// putBlob admits a container without placing a task — the node half of
// replication, shared by POST /vbs, the stream ObjPut handlers and
// batch ops.
func (s *Server) putBlob(data []byte, force bool) (PutVBSResponse, int, error) {
	var zero PutVBSResponse
	if force {
		// Explicit user intent ("store this again") lifts a delete
		// tombstone; automated copiers (read-repair, rebalance) omit
		// Force and get refused with 410 instead.
		if err := s.store.ClearTombstone(store.DigestOf(data)); err != nil {
			return zero, http.StatusInternalServerError, fmt.Errorf("cannot clear tombstone: %w", err)
		}
	}
	ent, existed, err := s.store.Put(data)
	if err != nil {
		status, msg := putError(err)
		return zero, status, errors.New(msg)
	}
	return PutVBSResponse{
		Digest:  ent.Digest.String(),
		Bytes:   ent.SizeBytes(),
		Existed: existed,
	}, 0, nil
}

// handleListVBS lists every stored blob across both tiers.
func (s *Server) handleListVBS(w http.ResponseWriter, r *http.Request) {
	refs := s.digestRefs()
	blobs := s.store.List()
	out := make([]VBSInfo, 0, len(blobs))
	for _, b := range blobs {
		out = append(out, VBSInfo{
			Digest: b.Digest.String(),
			Bytes:  b.Bytes,
			RAM:    b.RAM,
			Disk:   b.Disk,
			Tasks:  refs[b.Digest],
		})
	}
	writeJSON(w, http.StatusOK, out)
}

// digestFromPath resolves {digest} or replies 400.
func digestFromPath(w http.ResponseWriter, r *http.Request) (store.Digest, bool) {
	d, err := store.ParseDigest(r.PathValue("digest"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return d, false
	}
	return d, true
}

// handleGetVBS serves a stored container verbatim — the raw-blob
// download path, straight from whichever tier holds the digest.
func (s *Server) handleGetVBS(w http.ResponseWriter, r *http.Request) {
	defer s.observe("vbs_get", time.Now())
	d, ok := digestFromPath(w, r)
	if !ok {
		return
	}
	data, status, gerr := s.getVBSData(d)
	if gerr != nil {
		writeError(w, status, "%v", gerr)
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("Content-Length", strconv.Itoa(len(data)))
	_, _ = w.Write(data)
}

// getVBSData fetches a stored container, returning a non-zero HTTP
// status plus error on failure.
func (s *Server) getVBSData(d store.Digest) ([]byte, int, error) {
	data, err := s.store.GetData(d)
	switch {
	case errors.Is(err, store.ErrNotFound):
		if s.store.Tombstoned(d) {
			// Deleted, and the delete is still being remembered: 410
			// tells gateways "stay dead" where 404 would mean "repair
			// me from another replica".
			return nil, http.StatusGone, fmt.Errorf("vbs %s deleted", d.Short())
		}
		return nil, http.StatusNotFound, fmt.Errorf("vbs %s not stored", d.Short())
	case err != nil:
		// Disk-tier verification failure: the blob was quarantined and
		// must not be served.
		return nil, http.StatusInternalServerError, err
	}
	return data, 0, nil
}

// handleDeleteVBS removes a blob from both tiers, refusing while any
// live task still references it (its decode came from these bytes;
// losing them would orphan re-decode and audit paths). The reference
// check and the delete run under one lock so a load registering
// between them cannot be orphaned; loads that have admitted the
// digest but not yet registered count via s.pending.
//
// By default the delete also records a tombstone — before removing
// the bytes, so no repair can slip a copy back in between the two —
// and it does so even when the blob is absent: a gateway fans deletes
// out to every node precisely so that an in-flight rebalance copy
// landing afterwards is refused. ?trim=1 skips the tombstone: a
// physical trim of a surplus replica (the rebalancer's move
// primitive), not a logical delete of the digest.
func (s *Server) handleDeleteVBS(w http.ResponseWriter, r *http.Request) {
	defer s.observe("vbs_delete", time.Now())
	d, ok := digestFromPath(w, r)
	if !ok {
		return
	}
	trim := r.URL.Query().Get("trim") != ""
	s.mu.Lock()
	refs := s.pending[d]
	for _, t := range s.tasks {
		if t.digest == d {
			refs++
		}
	}
	if refs > 0 {
		s.mu.Unlock()
		writeError(w, http.StatusConflict, "vbs %s referenced by %d live task(s)", d.Short(), refs)
		return
	}
	// Deleting under s.mu stalls task registration for the duration of
	// one disk unlink — acceptable for a rare admin operation, and the
	// price of making "referenced" and "deleted" mutually exclusive.
	var err error
	if !trim {
		err = s.store.Tombstone(d, s.tombTTL)
	}
	if err == nil {
		err = s.store.Delete(d)
	}
	s.mu.Unlock()
	switch {
	case errors.Is(err, store.ErrNotFound):
		writeError(w, http.StatusNotFound, "vbs %s not stored", d.Short())
		return
	case err != nil:
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

// handleTombstones lists the node's live delete tombstones — the
// rebalancer reads them to propagate deletes fleet-wide.
func (s *Server) handleTombstones(w http.ResponseWriter, r *http.Request) {
	ts := s.store.Tombstones()
	out := make([]TombstoneInfo, 0, len(ts))
	for _, t := range ts {
		out = append(out, TombstoneInfo{Digest: t.Digest.String(), Expires: t.Expires})
	}
	writeJSON(w, http.StatusOK, out)
}

// SweepTombstones reclaims expired delete tombstones — vbsd's
// housekeeping ticker calls it so records do not pile up forever.
func (s *Server) SweepTombstones() (int, error) { return s.store.ExpireTombstones() }

// Flush writes any RAM-only blobs through to the disk tier — called
// by vbsd on graceful shutdown (a safety net over the write-through
// admission path; usually a no-op).
func (s *Server) Flush() error { return s.store.Flush() }

// RecoveryReport returns the disk tier's boot recovery scan (zero
// without a data dir).
func (s *Server) RecoveryReport() repo.ScanReport {
	if disk := s.store.Disk(); disk != nil {
		return disk.ScanReport()
	}
	return repo.ScanReport{}
}

// WarmDecoded streams up to max blobs (0 = all) from the store —
// promoting disk-resident ones — and decodes them into the
// decoded-bitstream cache, so a restarted daemon serves its first
// loads at cache-hit latency. It returns how many blobs were warmed.
func (s *Server) WarmDecoded(max int) (int, error) {
	return s.warmDecoded(context.Background(), max, nil)
}

// warmDecoded is WarmDecoded bounded by ctx (checked between blobs —
// the warm job runs it under an abortable job context). note, when
// non-nil, receives per-blob progress ("warmed", 1).
func (s *Server) warmDecoded(ctx context.Context, max int, note func(string, int64)) (int, error) {
	warmed := 0
	for _, b := range s.store.List() {
		if err := ctx.Err(); err != nil {
			return warmed, err
		}
		if max > 0 && warmed >= max {
			break
		}
		ent, err := s.store.Fetch(b.Digest)
		if err != nil {
			return warmed, err
		}
		if _, _, err := s.getOrDecode(ent); err != nil {
			return warmed, err
		}
		warmed++
		if note != nil {
			note("warmed", 1)
		}
	}
	return warmed, nil
}

// Stats assembles the daemon-wide snapshot served at /stats.
func (s *Server) Stats() StatsResponse {
	s.mu.Lock()
	nTasks := len(s.tasks)
	s.mu.Unlock()
	cs := s.cache.Stats()
	var loads, unloads, relocs uint64
	for _, c := range s.ctrls {
		st := c.Stats()
		loads += st.Loads
		unloads += st.Unloads
		relocs += st.Relocations
	}
	lat := LatencyStats{Count: s.loadCount.Load()}
	if lat.Count > 0 {
		lat.MeanMS = float64(s.loadNanos.Load()) / float64(lat.Count) / float64(time.Millisecond)
		lat.MaxMS = float64(s.loadMax.Load()) / float64(time.Millisecond)
	}
	tiers := s.store.TierStats()
	ri := RepoInfo{Demotions: tiers.Demotions, Promotions: tiers.Promotions}
	if disk := s.store.Disk(); disk != nil {
		ds := disk.Stats()
		ri.Enabled = true
		ri.Blobs = ds.Blobs
		ri.Bytes = ds.Bytes
		ri.Recovered = ds.Recovered
		ri.Quarantined = ds.Quarantined
		ri.Reads = ds.Reads
		ri.Writes = ds.Writes
		ri.WriteErrors = ds.WriteErrors
		ri.ReadErrors = ds.ReadErrors
		ri.Tombstones = ds.Tombstones
	}
	return StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Tasks:         nTasks,
		Loads:         loads,
		Unloads:       unloads,
		Relocations:   relocs,
		Decodes:       s.decodes.Load(),
		LoadLatency:   lat,
		Placement: PlacementInfo{
			Policy:         s.policy.Name(),
			Compactions:    s.compactions.Load(),
			TasksMoved:     s.compactMoved.Load(),
			RetrySuccesses: s.retryLoads.Load(),
		},
		Cache: CacheInfo{
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Evictions: cs.Evictions,
			Entries:   cs.Entries,
			UsedBits:  cs.Used,
			CapBits:   cs.Capacity,
		},
		Store: StoreInfo{
			Entries:              s.store.Len(),
			Bytes:                s.store.Bytes(),
			MeanCompressionRatio: s.store.MeanCompressionRatio(),
		},
		Repo:    ri,
		Fabrics: s.fabricInfos(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
