// Package server implements vbsd, the run-time configuration
// management daemon: an HTTP/JSON front end over a pool of simulated
// fabrics, each driven by the Section II-C reconfiguration controller.
//
// The daemon turns the paper's single-caller runtime manager into a
// service. Clients POST Virtual Bit-Stream containers; the daemon
// stores them content-addressed (identical tasks deduplicate), decodes
// them once through the parallel de-virtualization workers, keeps
// decoded bitstreams in a size-bounded LRU so repeated loads skip the
// decode entirely, and serializes mutations per fabric so any number
// of concurrent clients can load, unload and relocate safely.
//
// # API
//
//	POST   /tasks                {"vbs": base64, "fabric"?, "x"?, "y"?}
//	GET    /tasks                list loaded tasks
//	DELETE /tasks/{id}           unload
//	POST   /tasks/{id}/relocate  {"x":, "y":}
//	GET    /fabrics              pool occupancy
//	GET    /stats                counters, cache and latency figures
//	GET    /healthz              liveness probe
package server

import (
	"encoding/base64"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/controller"
	"repro/internal/fabric"
	"repro/internal/server/store"
)

// Options tunes a Server.
type Options struct {
	// CacheBits bounds the decoded-bitstream LRU by total raw bits
	// (0 = unbounded; a decoded task costs TaskW*TaskH*NRaw-ish bits).
	CacheBits int64
	// StoreBytes bounds the content-addressed VBS store by container
	// bytes, evicting least-recently-used entries (0 = unbounded).
	// Eviction only costs deduplication of future loads.
	StoreBytes int
	// DecodeWorkers sets the de-virtualization worker count per decode
	// (0 = GOMAXPROCS).
	DecodeWorkers int
}

// Server manages a pool of fabrics behind the HTTP API. Create one
// with New and expose Handler on an http.Server.
type Server struct {
	ctrls   []*controller.Controller
	store   *store.Store
	cache   *store.Cache[*controller.Decoded]
	flight  *store.Flight[*controller.Decoded]
	workers int
	start   time.Time

	mu     sync.Mutex
	tasks  map[int64]*task
	nextID int64

	decodes   atomic.Uint64
	loadCount atomic.Uint64
	loadNanos atomic.Int64
	loadMax   atomic.Int64
}

// task maps a server task id to its fabric-level identity.
type task struct {
	id     int64
	fabric int
	fid    fabric.TaskID
	digest store.Digest
}

// New returns a daemon over the given fabric pool. At least one
// controller is required; all fabrics may differ in size but share
// the pool.
func New(ctrls []*controller.Controller, opts Options) (*Server, error) {
	if len(ctrls) == 0 {
		return nil, fmt.Errorf("server: empty fabric pool")
	}
	return &Server{
		ctrls: ctrls,
		store: store.NewBounded(opts.StoreBytes),
		cache: store.NewCache[*controller.Decoded](opts.CacheBits,
			func(d *controller.Decoded) int64 { return int64(d.SizeBits()) }),
		flight:  store.NewFlight[*controller.Decoded](),
		workers: opts.DecodeWorkers,
		start:   time.Now(),
		tasks:   make(map[int64]*task),
	}, nil
}

// Handler returns the daemon's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /tasks", s.handleLoad)
	mux.HandleFunc("GET /tasks", s.handleListTasks)
	mux.HandleFunc("DELETE /tasks/{id}", s.handleUnload)
	mux.HandleFunc("POST /tasks/{id}/relocate", s.handleRelocate)
	mux.HandleFunc("GET /fabrics", s.handleFabrics)
	mux.HandleFunc("GET /stats", s.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
	})
	return mux
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, errorResponse{Error: fmt.Sprintf(format, args...)})
}

// getOrDecode returns the decoded form of a stored VBS, consulting the
// LRU first and collapsing concurrent decodes of the same digest.
func (s *Server) getOrDecode(ent *store.Entry) (dec *controller.Decoded, cached bool, err error) {
	if d, ok := s.cache.Get(ent.Digest); ok {
		return d, true, nil
	}
	d, err, shared := s.flight.Do(ent.Digest, func() (*controller.Decoded, error) {
		d, err := controller.DecodeVBS(ent.VBS, s.workers)
		if err != nil {
			return nil, err
		}
		s.decodes.Add(1)
		s.cache.Put(ent.Digest, d)
		return d, nil
	})
	if err != nil {
		return nil, false, err
	}
	// A piggybacked caller shared another request's decode: from this
	// request's point of view that is a cache hit in all but name.
	return d, shared, nil
}

func (s *Server) handleLoad(w http.ResponseWriter, r *http.Request) {
	begin := time.Now()
	var req LoadRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if (req.X == nil) != (req.Y == nil) {
		writeError(w, http.StatusBadRequest, "x and y must be given together")
		return
	}
	data, err := base64.StdEncoding.DecodeString(req.VBS)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad vbs base64: %v", err)
		return
	}
	ent, _, err := s.store.Put(data)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad vbs container: %v", err)
		return
	}
	dec, cached, err := s.getOrDecode(ent)
	if err != nil {
		writeError(w, http.StatusUnprocessableEntity, "decode failed: %v", err)
		return
	}

	candidates, err := s.candidateFabrics(req.Fabric)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	var (
		placed  *controller.Task
		onIndex int
		lastErr error
	)
	for _, fi := range candidates {
		c := s.ctrls[fi]
		var t *controller.Task
		if req.X != nil {
			t, err = c.LoadDecodedAt(dec, *req.X, *req.Y)
		} else {
			t, err = c.LoadDecoded(dec)
		}
		if err == nil {
			placed, onIndex = t, fi
			break
		}
		lastErr = err
	}
	if placed == nil {
		writeError(w, http.StatusConflict, "no fabric accepted the task: %v", lastErr)
		return
	}

	s.mu.Lock()
	id := s.nextID
	s.nextID++
	s.tasks[id] = &task{id: id, fabric: onIndex, fid: placed.ID, digest: ent.Digest}
	s.mu.Unlock()

	elapsed := time.Since(begin)
	s.loadCount.Add(1)
	s.loadNanos.Add(int64(elapsed))
	for {
		cur := s.loadMax.Load()
		if int64(elapsed) <= cur || s.loadMax.CompareAndSwap(cur, int64(elapsed)) {
			break
		}
	}

	writeJSON(w, http.StatusCreated, LoadResponse{
		ID:               id,
		Fabric:           onIndex,
		X:                placed.X,
		Y:                placed.Y,
		Digest:           ent.Digest.String(),
		TaskW:            ent.VBS.TaskW,
		TaskH:            ent.VBS.TaskH,
		Cached:           cached,
		CompressionRatio: ent.VBS.CompressionRatio(),
		LoadMS:           float64(elapsed) / float64(time.Millisecond),
	})
}

// candidateFabrics returns fabric indices in placement-preference
// order: the pinned fabric alone, or every fabric sorted emptiest
// first so the pool stays balanced.
func (s *Server) candidateFabrics(pinned *int) ([]int, error) {
	if pinned != nil {
		if *pinned < 0 || *pinned >= len(s.ctrls) {
			return nil, fmt.Errorf("fabric %d out of range [0,%d)", *pinned, len(s.ctrls))
		}
		return []int{*pinned}, nil
	}
	type cand struct{ idx, free int }
	cands := make([]cand, len(s.ctrls))
	for i, c := range s.ctrls {
		cands[i] = cand{i, c.Stats().FreeMacros}
	}
	sort.SliceStable(cands, func(a, b int) bool { return cands[a].free > cands[b].free })
	out := make([]int, len(cands))
	for i, c := range cands {
		out[i] = c.idx
	}
	return out, nil
}

// taskFromPath resolves {id} or replies 404/400.
func (s *Server) taskFromPath(w http.ResponseWriter, r *http.Request) (*task, bool) {
	id, err := strconv.ParseInt(r.PathValue("id"), 10, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad task id %q", r.PathValue("id"))
		return nil, false
	}
	s.mu.Lock()
	t, ok := s.tasks[id]
	s.mu.Unlock()
	if !ok {
		writeError(w, http.StatusNotFound, "task %d not loaded", id)
		return nil, false
	}
	return t, true
}

func (s *Server) handleUnload(w http.ResponseWriter, r *http.Request) {
	t, ok := s.taskFromPath(w, r)
	if !ok {
		return
	}
	s.mu.Lock()
	// Re-check under the lock so two concurrent DELETEs of the same id
	// cannot both reach the controller.
	if _, live := s.tasks[t.id]; !live {
		s.mu.Unlock()
		writeError(w, http.StatusNotFound, "task %d not loaded", t.id)
		return
	}
	delete(s.tasks, t.id)
	s.mu.Unlock()
	if err := s.ctrls[t.fabric].Unload(t.fid); err != nil {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	w.WriteHeader(http.StatusNoContent)
}

func (s *Server) handleRelocate(w http.ResponseWriter, r *http.Request) {
	t, ok := s.taskFromPath(w, r)
	if !ok {
		return
	}
	var req RelocateRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		writeError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if err := s.ctrls[t.fabric].Relocate(t.fid, req.X, req.Y); err != nil {
		writeError(w, http.StatusConflict, "%v", err)
		return
	}
	ct, _ := s.ctrls[t.fabric].Task(t.fid)
	info := TaskInfo{ID: t.id, Fabric: t.fabric, Digest: t.digest.String()}
	if ct != nil {
		info.X, info.Y = ct.X, ct.Y
		info.TaskW, info.TaskH = ct.VBS.TaskW, ct.VBS.TaskH
	}
	writeJSON(w, http.StatusOK, info)
}

func (s *Server) handleListTasks(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	ts := make([]*task, 0, len(s.tasks))
	for _, t := range s.tasks {
		ts = append(ts, t)
	}
	s.mu.Unlock()
	sort.Slice(ts, func(a, b int) bool { return ts[a].id < ts[b].id })
	out := make([]TaskInfo, 0, len(ts))
	for _, t := range ts {
		info := TaskInfo{ID: t.id, Fabric: t.fabric, Digest: t.digest.String()}
		if ct, ok := s.ctrls[t.fabric].Task(t.fid); ok {
			info.X, info.Y = ct.X, ct.Y
			info.TaskW, info.TaskH = ct.VBS.TaskW, ct.VBS.TaskH
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) fabricInfos() []FabricInfo {
	out := make([]FabricInfo, len(s.ctrls))
	for i, c := range s.ctrls {
		g := c.Fabric().Grid()
		p := c.Fabric().Params()
		out[i] = FabricInfo{
			Index:  i,
			Width:  g.Width,
			Height: g.Height,
			W:      p.W,
			K:      p.K,
			Stats:  c.Stats(),
		}
	}
	return out
}

func (s *Server) handleFabrics(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.fabricInfos())
}

// Stats assembles the daemon-wide snapshot served at /stats.
func (s *Server) Stats() StatsResponse {
	s.mu.Lock()
	nTasks := len(s.tasks)
	s.mu.Unlock()
	cs := s.cache.Stats()
	var loads, unloads, relocs uint64
	for _, c := range s.ctrls {
		st := c.Stats()
		loads += st.Loads
		unloads += st.Unloads
		relocs += st.Relocations
	}
	lat := LatencyStats{Count: s.loadCount.Load()}
	if lat.Count > 0 {
		lat.MeanMS = float64(s.loadNanos.Load()) / float64(lat.Count) / float64(time.Millisecond)
		lat.MaxMS = float64(s.loadMax.Load()) / float64(time.Millisecond)
	}
	return StatsResponse{
		UptimeSeconds: time.Since(s.start).Seconds(),
		Tasks:         nTasks,
		Loads:         loads,
		Unloads:       unloads,
		Relocations:   relocs,
		Decodes:       s.decodes.Load(),
		LoadLatency:   lat,
		Cache: CacheInfo{
			Hits:      cs.Hits,
			Misses:    cs.Misses,
			Evictions: cs.Evictions,
			Entries:   cs.Entries,
			UsedBits:  cs.Used,
			CapBits:   cs.Capacity,
		},
		Store: StoreInfo{
			Entries:              s.store.Len(),
			Bytes:                s.store.Bytes(),
			MeanCompressionRatio: s.store.MeanCompressionRatio(),
		},
		Fabrics: s.fabricInfos(),
	}
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
