package server

import (
	"bytes"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/core"
)

// Client is a thin Go client for the vbsd HTTP API.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient targets a daemon at base (e.g. "http://localhost:8931").
// httpClient may be nil for http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: base, hc: httpClient}
}

// Base returns the daemon base URL the client targets.
func (c *Client) Base() string { return c.base }

// apiError is a non-2xx reply surfaced to the caller.
type apiError struct {
	Status  int
	Message string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("server: %d: %s", e.Status, e.Message)
}

func (c *Client) do(method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var er errorResponse
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error != "" {
			msg = er.Error
		}
		return &apiError{Status: resp.StatusCode, Message: msg}
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// Load submits a VBS container for placement. fabric/x/y follow
// LoadRequest semantics (nil = daemon's choice).
func (c *Client) Load(container []byte, fabric, x, y *int) (LoadResponse, error) {
	return c.LoadWith(container, LoadRequest{Fabric: fabric, X: x, Y: y})
}

// LoadWith submits a VBS container with full LoadRequest control
// (fabric/position pinning, per-request placement policy). The VBS
// field of req is filled from container.
func (c *Client) LoadWith(container []byte, req LoadRequest) (LoadResponse, error) {
	req.VBS = base64.StdEncoding.EncodeToString(container)
	var out LoadResponse
	err := c.do(http.MethodPost, "/tasks", req, &out)
	return out, err
}

// LoadVBS encodes and submits a parsed VBS.
func (c *Client) LoadVBS(v *core.VBS) (LoadResponse, error) {
	data, err := v.Encode()
	if err != nil {
		return LoadResponse{}, err
	}
	return c.Load(data, nil, nil, nil)
}

// Unload removes a loaded task.
func (c *Client) Unload(id int64) error {
	return c.do(http.MethodDelete, fmt.Sprintf("/tasks/%d", id), nil, nil)
}

// Relocate moves a loaded task on its fabric.
func (c *Client) Relocate(id int64, x, y int) (TaskInfo, error) {
	var out TaskInfo
	err := c.do(http.MethodPost, fmt.Sprintf("/tasks/%d/relocate", id),
		RelocateRequest{X: &x, Y: &y}, &out)
	return out, err
}

// Compact defragments one fabric, returning how many tasks moved.
func (c *Client) Compact(fabric int) (CompactResponse, error) {
	var out CompactResponse
	err := c.do(http.MethodPost, fmt.Sprintf("/fabrics/%d/compact", fabric), nil, &out)
	return out, err
}

// Tasks lists loaded tasks.
func (c *Client) Tasks() ([]TaskInfo, error) {
	var out []TaskInfo
	err := c.do(http.MethodGet, "/tasks", nil, &out)
	return out, err
}

// Fabrics describes the daemon's fabric pool.
func (c *Client) Fabrics() ([]FabricInfo, error) {
	var out []FabricInfo
	err := c.do(http.MethodGet, "/fabrics", nil, &out)
	return out, err
}

// Stats fetches the daemon-wide counters.
func (c *Client) Stats() (StatsResponse, error) {
	var out StatsResponse
	err := c.do(http.MethodGet, "/stats", nil, &out)
	return out, err
}

// ListVBS lists every stored blob across the RAM and disk tiers.
func (c *Client) ListVBS() ([]VBSInfo, error) {
	var out []VBSInfo
	err := c.do(http.MethodGet, "/vbs", nil, &out)
	return out, err
}

// GetVBS downloads a stored container verbatim by hex digest.
func (c *Client) GetVBS(digest string) ([]byte, error) {
	resp, err := c.hc.Get(c.base + "/vbs/" + digest)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		var er errorResponse
		msg := resp.Status
		if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error != "" {
			msg = er.Error
		}
		return nil, &apiError{Status: resp.StatusCode, Message: msg}
	}
	return io.ReadAll(resp.Body)
}

// DeleteVBS drops a stored blob from both tiers. The daemon refuses
// (409) while any live task references the digest.
func (c *Client) DeleteVBS(digest string) error {
	return c.do(http.MethodDelete, "/vbs/"+digest, nil, nil)
}
