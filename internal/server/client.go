package server

import (
	"bytes"
	"context"
	"encoding/base64"
	"encoding/json"
	"fmt"
	"io"
	"net/http"

	"repro/internal/core"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// Client is a thin Go client for the vbsd HTTP API. Every method has
// a *Ctx variant taking a context.Context for per-call timeouts and
// cancellation (the cluster gateway uses them to bound each hop); the
// plain methods are background-context wrappers.
type Client struct {
	base string
	hc   *http.Client
}

// NewClient targets a daemon at base (e.g. "http://localhost:8931").
// httpClient may be nil for http.DefaultClient.
func NewClient(base string, httpClient *http.Client) *Client {
	if httpClient == nil {
		httpClient = http.DefaultClient
	}
	return &Client{base: base, hc: httpClient}
}

// Base returns the daemon base URL the client targets.
func (c *Client) Base() string { return c.base }

// apiError is a non-2xx reply surfaced to the caller.
type apiError struct {
	Status  int
	Message string
}

func (e *apiError) Error() string {
	return fmt.Sprintf("server: %d: %s", e.Status, e.Message)
}

// StatusCode returns the HTTP status of a server reply error, or 0
// when err is not one (transport failures, cancellations).
func StatusCode(err error) int {
	if e, ok := err.(*apiError); ok {
		return e.Status
	}
	return 0
}

// ErrorMessage returns the server-sent message of a reply error
// without the client's "server: <code>: " framing, and err.Error()
// for every other error — what a proxy should relay upstream.
func ErrorMessage(err error) string {
	if e, ok := err.(*apiError); ok {
		return e.Message
	}
	return err.Error()
}

func (c *Client) do(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		b, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(b)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.base+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return readAPIError(resp)
	}
	if out != nil {
		return json.NewDecoder(resp.Body).Decode(out)
	}
	return nil
}

// readAPIError drains a non-2xx reply into an *apiError.
func readAPIError(resp *http.Response) error {
	var er errorResponse
	msg := resp.Status
	if json.NewDecoder(resp.Body).Decode(&er) == nil && er.Error != "" {
		msg = er.Error
	}
	return &apiError{Status: resp.StatusCode, Message: msg}
}

// DecodeStreamResult maps a transport result envelope onto the same
// error surface as HTTP replies: a 2xx decodes the body into out,
// anything else becomes the error StatusCode and ErrorMessage see —
// stream callers and HTTP callers share one error vocabulary.
func DecodeStreamResult(resp []byte, out any) error {
	status, body, err := transport.DecodeResult(resp)
	if err != nil {
		return err
	}
	if status >= 300 {
		var er errorResponse
		msg := http.StatusText(status)
		if json.Unmarshal(body, &er) == nil && er.Error != "" {
			msg = er.Error
		}
		return &apiError{Status: status, Message: msg}
	}
	if out != nil {
		return json.Unmarshal(body, out)
	}
	return nil
}

// Load submits a VBS container for placement. fabric/x/y follow
// LoadRequest semantics (nil = daemon's choice).
func (c *Client) Load(container []byte, fabric, x, y *int) (LoadResponse, error) {
	return c.LoadCtx(context.Background(), container, fabric, x, y)
}

// LoadCtx is Load bounded by ctx.
func (c *Client) LoadCtx(ctx context.Context, container []byte, fabric, x, y *int) (LoadResponse, error) {
	return c.LoadWithCtx(ctx, container, LoadRequest{Fabric: fabric, X: x, Y: y})
}

// LoadWith submits a VBS container with full LoadRequest control
// (fabric/position pinning, per-request placement policy). The VBS
// field of req is filled from container.
func (c *Client) LoadWith(container []byte, req LoadRequest) (LoadResponse, error) {
	return c.LoadWithCtx(context.Background(), container, req)
}

// LoadWithCtx is LoadWith bounded by ctx.
func (c *Client) LoadWithCtx(ctx context.Context, container []byte, req LoadRequest) (LoadResponse, error) {
	req.VBS = base64.StdEncoding.EncodeToString(container)
	var out LoadResponse
	err := c.do(ctx, http.MethodPost, "/tasks", req, &out)
	return out, err
}

// LoadVBS encodes and submits a parsed VBS.
func (c *Client) LoadVBS(v *core.VBS) (LoadResponse, error) {
	return c.LoadVBSCtx(context.Background(), v)
}

// LoadVBSCtx is LoadVBS bounded by ctx.
func (c *Client) LoadVBSCtx(ctx context.Context, v *core.VBS) (LoadResponse, error) {
	data, err := v.Encode()
	if err != nil {
		return LoadResponse{}, err
	}
	return c.LoadCtx(ctx, data, nil, nil, nil)
}

// Unload removes a loaded task.
func (c *Client) Unload(id int64) error {
	return c.UnloadCtx(context.Background(), id)
}

// UnloadCtx is Unload bounded by ctx.
func (c *Client) UnloadCtx(ctx context.Context, id int64) error {
	return c.do(ctx, http.MethodDelete, fmt.Sprintf("/tasks/%d", id), nil, nil)
}

// Relocate moves a loaded task on its fabric.
func (c *Client) Relocate(id int64, x, y int) (TaskInfo, error) {
	return c.RelocateCtx(context.Background(), id, x, y)
}

// RelocateCtx is Relocate bounded by ctx.
func (c *Client) RelocateCtx(ctx context.Context, id int64, x, y int) (TaskInfo, error) {
	var out TaskInfo
	err := c.do(ctx, http.MethodPost, fmt.Sprintf("/tasks/%d/relocate", id),
		RelocateRequest{X: &x, Y: &y}, &out)
	return out, err
}

// Compact defragments one fabric, returning how many tasks moved.
func (c *Client) Compact(fabric int) (CompactResponse, error) {
	return c.CompactCtx(context.Background(), fabric)
}

// CompactCtx is Compact bounded by ctx.
func (c *Client) CompactCtx(ctx context.Context, fabric int) (CompactResponse, error) {
	var out CompactResponse
	err := c.do(ctx, http.MethodPost, fmt.Sprintf("/fabrics/%d/compact", fabric), nil, &out)
	return out, err
}

// Tasks lists loaded tasks.
func (c *Client) Tasks() ([]TaskInfo, error) {
	return c.TasksCtx(context.Background())
}

// TasksCtx is Tasks bounded by ctx.
func (c *Client) TasksCtx(ctx context.Context) ([]TaskInfo, error) {
	var out []TaskInfo
	err := c.do(ctx, http.MethodGet, "/tasks", nil, &out)
	return out, err
}

// Fabrics describes the daemon's fabric pool.
func (c *Client) Fabrics() ([]FabricInfo, error) {
	return c.FabricsCtx(context.Background())
}

// FabricsCtx is Fabrics bounded by ctx.
func (c *Client) FabricsCtx(ctx context.Context) ([]FabricInfo, error) {
	var out []FabricInfo
	err := c.do(ctx, http.MethodGet, "/fabrics", nil, &out)
	return out, err
}

// Stats fetches the daemon-wide counters.
func (c *Client) Stats() (StatsResponse, error) {
	return c.StatsCtx(context.Background())
}

// StatsCtx is Stats bounded by ctx.
func (c *Client) StatsCtx(ctx context.Context) (StatsResponse, error) {
	var out StatsResponse
	err := c.do(ctx, http.MethodGet, "/stats", nil, &out)
	return out, err
}

// Health probes GET /healthz, returning nil when the daemon answers
// 200 within the context deadline.
func (c *Client) Health(ctx context.Context) error {
	return c.do(ctx, http.MethodGet, "/healthz", nil, nil)
}

// PutVBS admits a container into the daemon's store without placing a
// task (POST /vbs) — the gateway's replication primitive. A delete
// tombstone refuses the put with 410 Gone; see PutVBSForce.
func (c *Client) PutVBS(ctx context.Context, container []byte) (PutVBSResponse, error) {
	return c.putVBS(ctx, container, false)
}

// PutVBSForce is PutVBS with the tombstone override: an explicit user
// write that lifts any delete tombstone before admitting.
func (c *Client) PutVBSForce(ctx context.Context, container []byte) (PutVBSResponse, error) {
	return c.putVBS(ctx, container, true)
}

func (c *Client) putVBS(ctx context.Context, container []byte, force bool) (PutVBSResponse, error) {
	var out PutVBSResponse
	err := c.do(ctx, http.MethodPost, "/vbs",
		PutVBSRequest{VBS: base64.StdEncoding.EncodeToString(container), Force: force}, &out)
	return out, err
}

// BatchCtx submits a mixed batch of task operations in one round trip
// (POST /tasks:batch). Per-op outcomes come back in request order;
// the call errs only when the batch as a whole is refused.
func (c *Client) BatchCtx(ctx context.Context, req BatchRequest) (BatchResponse, error) {
	var out BatchResponse
	err := c.do(ctx, http.MethodPost, "/tasks:batch", req, &out)
	return out, err
}

// BatchLoadOp builds a "load" batch entry from raw container bytes.
func BatchLoadOp(container []byte) BatchOp {
	return BatchOp{Op: "load", VBS: base64.StdEncoding.EncodeToString(container)}
}

// BatchError lifts a non-2xx per-op batch result into the same
// *apiError the unbatched call would have returned, so StatusCode and
// ErrorMessage work identically on both paths. Nil for 2xx.
func BatchError(r BatchResult) error {
	if r.Status >= 200 && r.Status < 300 {
		return nil
	}
	msg := r.Error
	if msg == "" {
		msg = http.StatusText(r.Status)
	}
	return &apiError{Status: r.Status, Message: msg}
}

// ListVBS lists every stored blob across the RAM and disk tiers.
func (c *Client) ListVBS() ([]VBSInfo, error) {
	return c.ListVBSCtx(context.Background())
}

// ListVBSCtx is ListVBS bounded by ctx.
func (c *Client) ListVBSCtx(ctx context.Context) ([]VBSInfo, error) {
	var out []VBSInfo
	err := c.do(ctx, http.MethodGet, "/vbs", nil, &out)
	return out, err
}

// GetVBS downloads a stored container verbatim by hex digest.
func (c *Client) GetVBS(digest string) ([]byte, error) {
	return c.GetVBSCtx(context.Background(), digest)
}

// GetVBSCtx is GetVBS bounded by ctx.
func (c *Client) GetVBSCtx(ctx context.Context, digest string) ([]byte, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/vbs/"+digest, nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return nil, readAPIError(resp)
	}
	return io.ReadAll(resp.Body)
}

// HasVBS reports whether the node holds a blob, via a HEAD that moves
// no payload (Go's ServeMux "GET /vbs/{digest}" pattern also matches
// HEAD). Used by the gateway's read-repair owner verification.
func (c *Client) HasVBS(ctx context.Context, digest string) (bool, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodHead, c.base+"/vbs/"+digest, nil)
	if err != nil {
		return false, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	switch {
	case resp.StatusCode == http.StatusNotFound:
		return false, nil
	case resp.StatusCode >= 300:
		return false, readAPIError(resp)
	}
	return true, nil
}

// SetFaults arms (or, with the zero value, clears) the node's disk
// fault-injection seam. The node must run with chaos endpoints
// enabled (vbsd -chaos) and a data dir.
func (c *Client) SetFaults(ctx context.Context, f ChaosFaults) error {
	return c.do(ctx, http.MethodPost, "/chaos/faults", f, nil)
}

// DeleteVBS drops a stored blob from both tiers and records a delete
// tombstone so automated re-replication cannot resurrect it. The
// daemon refuses (409) while any live task references the digest.
func (c *Client) DeleteVBS(digest string) error {
	return c.DeleteVBSCtx(context.Background(), digest)
}

// DeleteVBSCtx is DeleteVBS bounded by ctx.
func (c *Client) DeleteVBSCtx(ctx context.Context, digest string) error {
	return c.do(ctx, http.MethodDelete, "/vbs/"+digest, nil, nil)
}

// TrimVBS physically removes a blob without tombstoning — the
// rebalancer's primitive for dropping a surplus replica whose digest
// must stay storable elsewhere. Refused (409) while tasks reference
// the digest.
func (c *Client) TrimVBS(ctx context.Context, digest string) error {
	return c.do(ctx, http.MethodDelete, "/vbs/"+digest+"?trim=1", nil, nil)
}

// Tombstones lists the node's live delete tombstones.
func (c *Client) Tombstones(ctx context.Context) ([]TombstoneInfo, error) {
	var out []TombstoneInfo
	err := c.do(ctx, http.MethodGet, "/tombstones", nil, &out)
	return out, err
}

// StartJobCtx launches a background job (POST /jobs) and returns its
// initial snapshot. An unknown kind is a 400, an exclusive collision
// a 409 (inspect with StatusCode).
func (c *Client) StartJobCtx(ctx context.Context, kind string, args map[string]string) (JobInfo, error) {
	var out JobInfo
	err := c.do(ctx, http.MethodPost, "/jobs", StartJobRequest{Kind: kind, Args: args}, &out)
	return out, err
}

// JobsCtx lists every running and recently finished job.
func (c *Client) JobsCtx(ctx context.Context) ([]JobInfo, error) {
	var out []JobInfo
	err := c.do(ctx, http.MethodGet, "/jobs", nil, &out)
	return out, err
}

// JobCtx fetches one job's snapshot by id.
func (c *Client) JobCtx(ctx context.Context, id int64) (JobInfo, error) {
	var out JobInfo
	err := c.do(ctx, http.MethodGet, fmt.Sprintf("/jobs/%d", id), nil, &out)
	return out, err
}

// AbortJobCtx signals a job to stop (DELETE /jobs/{id}); the runner
// winds down asynchronously — poll JobCtx for the terminal state.
func (c *Client) AbortJobCtx(ctx context.Context, id int64) (JobInfo, error) {
	var out JobInfo
	err := c.do(ctx, http.MethodDelete, fmt.Sprintf("/jobs/%d", id), nil, &out)
	return out, err
}

// MetricsCtx scrapes GET /metrics and parses the Prometheus text
// exposition into samples.
func (c *Client) MetricsCtx(ctx context.Context) ([]metrics.Sample, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		return nil, readAPIError(resp)
	}
	return metrics.Parse(resp.Body)
}
