package server

import (
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"time"

	"repro/internal/server/store"
	"repro/internal/transport"
)

// handleStream upgrades GET /stream into a persistent framed
// connection — the gateway's data plane into this node. Data frames
// carry pipelined replication puts; RPCs carry pings, synchronous
// copies and batches.
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	conn, err := transport.Upgrade(w, r)
	if err != nil {
		return // Upgrade already answered over HTTP
	}
	defer conn.Close()
	err = transport.Serve(conn, transport.Handlers{
		Data: s.streamData,
		Call: s.streamCall,
	}, transport.Config{
		Compress: true,
		Metrics:  s.transport,
		Logf:     log.Printf,
	})
	if err != nil {
		log.Printf("stream from %s: %v", conn.RemoteAddr(), err)
	}
}

// streamData handles a fire-and-forget replication put. The content
// address is re-verified against the bytes that actually arrived: the
// frame CRC guards the wire, this guards everything between decode
// and the store — a mismatched blob is never admitted, so it can
// never be served.
func (s *Server) streamData(msg []byte) error {
	if transport.MsgKind(msg) != transport.MsgObjPut {
		return fmt.Errorf("unexpected data message kind %d", transport.MsgKind(msg))
	}
	digest, force, blob, err := transport.DecodeObjPut(msg)
	if err != nil {
		return err
	}
	if store.Digest(digest) != store.DigestOf(blob) {
		return fmt.Errorf("objput digest mismatch for %d blob bytes", len(blob))
	}
	// Same op label as POST /vbs: a replica copy is the same work
	// whether it arrived over HTTP or a stream frame.
	defer s.observe("vbs_put", time.Now())
	_, _, perr := s.putBlob(blob, force)
	return perr
}

// streamCall dispatches stream RPCs. Results carry HTTP status codes
// so both transports share one error vocabulary end to end.
func (s *Server) streamCall(msg []byte) ([]byte, bool) {
	switch transport.MsgKind(msg) {
	case transport.MsgPing:
		return transport.EncodeResult(http.StatusOK, nil), false
	case transport.MsgObjPut:
		digest, force, blob, err := transport.DecodeObjPut(msg)
		if err != nil {
			return streamErr(http.StatusBadRequest, err.Error()), false
		}
		if store.Digest(digest) != store.DigestOf(blob) {
			return streamErr(http.StatusBadRequest,
				fmt.Sprintf("objput digest mismatch for %d blob bytes", len(blob))), false
		}
		defer s.observe("vbs_put", time.Now())
		resp, status, perr := s.putBlob(blob, force)
		if perr != nil {
			return streamErr(status, perr.Error()), false
		}
		body, _ := json.Marshal(resp)
		return transport.EncodeResult(http.StatusCreated, body), false
	case transport.MsgBatch:
		var req BatchRequest
		if err := json.Unmarshal(transport.MsgBody(msg), &req); err != nil {
			return streamErr(http.StatusBadRequest, fmt.Sprintf("bad batch body: %v", err)), false
		}
		resp, status, err := s.execBatch(req)
		if err != nil {
			return streamErr(status, err.Error()), false
		}
		body, _ := json.Marshal(resp)
		return transport.EncodeResult(http.StatusOK, body), false
	default:
		return streamErr(http.StatusBadRequest,
			fmt.Sprintf("unknown stream message kind %d", transport.MsgKind(msg))), false
	}
}

// streamErr encodes an error result whose body mirrors the HTTP error
// JSON, so DecodeStreamResult reconstructs the same client error
// either way.
func streamErr(status int, msg string) []byte {
	body, _ := json.Marshal(errorResponse{Error: msg})
	return transport.EncodeResult(status, body)
}
