package server_test

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/server"
)

// TestRestartRoundTrip is the headline durability check: blobs loaded
// into a daemon with a data dir survive an abrupt restart (no
// shutdown hook runs — write-through makes Put durable), are listed,
// digest-verified, and served from disk without re-upload.
func TestRestartRoundTrip(t *testing.T) {
	dataDir := t.TempDir()
	cl, _ := newTestDaemon(t, 1, 16, server.Options{DataDir: dataDir})
	data, err := makeVBS(31, 10, 4, 8, 1).Encode()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cl.LoadCtx(t.Context(), data, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}

	// "Restart": a second daemon over the same directory. The first is
	// simply abandoned, exactly like a SIGKILL — nothing flushed.
	cl2, srv2 := newTestDaemon(t, 1, 16, server.Options{DataDir: dataDir})
	if rep := srv2.RecoveryReport(); rep.Recovered != 1 || rep.Quarantined != 0 {
		t.Fatalf("recovery scan: %+v", rep)
	}
	blobs, err := cl2.ListVBSCtx(t.Context())
	if err != nil || len(blobs) != 1 {
		t.Fatalf("ListVBS after restart: %v blobs, %v", len(blobs), err)
	}
	if blobs[0].Digest != resp.Digest || !blobs[0].Disk {
		t.Fatalf("listed blob: %+v", blobs[0])
	}
	got, err := cl2.GetVBSCtx(t.Context(), resp.Digest)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("blob served after restart differs from the upload")
	}
	// Content addressing makes the check self-certifying.
	if sum := hex.EncodeToString(func() []byte { h := sha256.Sum256(got); return h[:] }()); sum != resp.Digest {
		t.Fatalf("served bytes hash to %s, digest says %s", sum, resp.Digest)
	}
	// And the decoded load path works from the disk tier too: loading
	// the same container again deduplicates against the recovered blob.
	if _, err := cl2.LoadCtx(t.Context(), data, nil, nil, nil); err != nil {
		t.Fatalf("load after restart: %v", err)
	}
	st, err := cl2.StatsCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if !st.Repo.Enabled || st.Repo.Blobs != 1 || st.Repo.Recovered != 1 {
		t.Fatalf("repo stats after restart: %+v", st.Repo)
	}
}

// TestCorruptBlobQuarantinedAtScan flips bits in a stored blob and
// asserts the restarted daemon quarantines it, reports it in /stats,
// and never serves it.
func TestCorruptBlobQuarantinedAtScan(t *testing.T) {
	dataDir := t.TempDir()
	cl, _ := newTestDaemon(t, 1, 16, server.Options{DataDir: dataDir})
	data, err := makeVBS(32, 10, 4, 8, 1).Encode()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cl.LoadCtx(t.Context(), data, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	var blobPath string
	err = filepath.WalkDir(dataDir, func(path string, d os.DirEntry, err error) error {
		if err == nil && !d.IsDir() && strings.HasSuffix(path, ".vbs") {
			blobPath = path
		}
		return err
	})
	if err != nil || blobPath == "" {
		t.Fatalf("blob file not found under %s: %v", dataDir, err)
	}
	raw, err := os.ReadFile(blobPath)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0xff
	if err := os.WriteFile(blobPath, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	cl2, srv2 := newTestDaemon(t, 1, 16, server.Options{DataDir: dataDir})
	if rep := srv2.RecoveryReport(); rep.Quarantined != 1 || rep.Recovered != 0 {
		t.Fatalf("recovery scan: %+v", rep)
	}
	if _, err := cl2.GetVBSCtx(t.Context(), resp.Digest); err == nil {
		t.Fatal("corrupt blob was served")
	}
	st, err := cl2.StatsCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if st.Repo.Quarantined != 1 || st.Repo.Blobs != 0 {
		t.Fatalf("repo stats: %+v", st.Repo)
	}
	if _, err := os.Stat(filepath.Join(dataDir, "quarantine", filepath.Base(blobPath))); err != nil {
		t.Fatalf("blob not moved to quarantine: %v", err)
	}
}

// TestEvictionFallsBackToDisk bounds the RAM store to one container
// and proves the acceptance criterion: eviction with a data dir loses
// no blob, and the fall-through returns identical bytes.
func TestEvictionFallsBackToDisk(t *testing.T) {
	a, err := makeVBS(33, 10, 4, 8, 1).Encode()
	if err != nil {
		t.Fatal(err)
	}
	b, err := makeVBS(34, 10, 4, 8, 1).Encode()
	if err != nil {
		t.Fatal(err)
	}
	cl, _ := newTestDaemon(t, 1, 24, server.Options{
		DataDir:    t.TempDir(),
		StoreBytes: len(a) + 1, // RAM holds one container at a time
	})
	ra, err := cl.LoadCtx(t.Context(), a, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.LoadCtx(t.Context(), b, nil, nil, nil); err != nil { // evicts a from RAM
		t.Fatal(err)
	}
	st, err := cl.StatsCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if st.Repo.Demotions == 0 {
		t.Fatalf("expected a demotion, stats: %+v", st.Repo)
	}
	got, err := cl.GetVBSCtx(t.Context(), ra.Digest)
	if err != nil || !bytes.Equal(got, a) {
		t.Fatalf("evicted blob not identical from disk: %v", err)
	}
	// Loading the evicted task again goes through the promotion path,
	// not a 4xx.
	if _, err := cl.LoadCtx(t.Context(), a, nil, nil, nil); err != nil {
		t.Fatalf("re-load of evicted blob: %v", err)
	}
}

func TestDeleteVBSRefusedWhileReferenced(t *testing.T) {
	cl, _ := newTestDaemon(t, 1, 16, server.Options{DataDir: t.TempDir()})
	data, err := makeVBS(35, 10, 4, 8, 1).Encode()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cl.LoadCtx(t.Context(), data, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	err = cl.DeleteVBSCtx(t.Context(), resp.Digest)
	if err == nil || !strings.Contains(err.Error(), "409") {
		t.Fatalf("DeleteVBS with live task: %v", err)
	}
	if err := cl.UnloadCtx(t.Context(), resp.ID); err != nil {
		t.Fatal(err)
	}
	if err := cl.DeleteVBSCtx(t.Context(), resp.Digest); err != nil {
		t.Fatalf("DeleteVBS after unload: %v", err)
	}
	if _, err := cl.GetVBSCtx(t.Context(), resp.Digest); err == nil {
		t.Fatal("blob served after delete")
	}
	if err := cl.DeleteVBSCtx(t.Context(), resp.Digest); err == nil || !strings.Contains(err.Error(), "404") {
		t.Fatalf("double DeleteVBS: %v", err)
	}
}

func TestVBSEndpointsWithoutDataDir(t *testing.T) {
	cl, _ := newTestDaemon(t, 1, 16, server.Options{})
	data, err := makeVBS(36, 10, 4, 8, 1).Encode()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := cl.LoadCtx(t.Context(), data, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	blobs, err := cl.ListVBSCtx(t.Context())
	if err != nil || len(blobs) != 1 || !blobs[0].RAM || blobs[0].Disk {
		t.Fatalf("RAM-only ListVBS: %+v, %v", blobs, err)
	}
	if blobs[0].Tasks != 1 {
		t.Fatalf("reference count: %+v", blobs[0])
	}
	got, err := cl.GetVBSCtx(t.Context(), resp.Digest)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("RAM-only GetVBS: %v", err)
	}
	st, err := cl.StatsCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	if st.Repo.Enabled {
		t.Fatalf("repo reported enabled without a data dir: %+v", st.Repo)
	}
	if err := cl.DeleteVBSCtx(t.Context(), "zz-not-a-digest"); err == nil || !strings.Contains(err.Error(), "400") {
		t.Fatalf("bad digest: %v", err)
	}
}

// TestWarmDecodedStreamsFromDisk restarts a daemon over a populated
// data dir and asserts WarmDecoded pre-fills the decoded cache: the
// first load afterwards is a cache hit.
func TestWarmDecodedStreamsFromDisk(t *testing.T) {
	dataDir := t.TempDir()
	cl, _ := newTestDaemon(t, 1, 16, server.Options{DataDir: dataDir})
	data, err := makeVBS(37, 10, 4, 8, 1).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cl.LoadCtx(t.Context(), data, nil, nil, nil); err != nil {
		t.Fatal(err)
	}

	cl2, srv2 := newTestDaemon(t, 1, 16, server.Options{DataDir: dataDir})
	n, err := srv2.WarmDecoded(0)
	if err != nil || n != 1 {
		t.Fatalf("WarmDecoded: n=%d err=%v", n, err)
	}
	resp, err := cl2.LoadCtx(t.Context(), data, nil, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !resp.Cached {
		t.Fatal("first load after warm-up missed the decoded cache")
	}
	st, err := cl2.StatsCtx(t.Context())
	if err != nil {
		t.Fatal(err)
	}
	// Satellite check: the decoded-cache counters are visible in
	// /stats and reflect the traffic — one miss from the warm-up
	// decode, at least one hit from the load that followed.
	if st.Cache.Entries != 1 || st.Cache.Hits == 0 || st.Cache.Misses == 0 {
		t.Fatalf("cache stats not exposed or wrong: %+v", st.Cache)
	}
}
