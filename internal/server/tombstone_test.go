package server_test

import (
	"net/http"
	"testing"

	"repro/internal/repo"
	"repro/internal/server"
)

// TestTombstoneHTTPSemantics pins the node-side delete-tombstone
// contract the cluster layer builds on: DELETE tombstones, a plain
// re-put is refused with 410 Gone, GET/HEAD answer 410 (not 404, which
// would invite read-repair), force lifts the tombstone, and ?trim=1
// deletes without leaving one.
func TestTombstoneHTTPSemantics(t *testing.T) {
	c, _ := newTestDaemon(t, 1, 16, server.Options{DataDir: t.TempDir()})
	ctx := t.Context()
	data, err := makeVBS(1, 6, 4, 8, 1).Encode()
	if err != nil {
		t.Fatal(err)
	}

	put, err := c.PutVBS(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteVBSCtx(ctx, put.Digest); err != nil {
		t.Fatalf("DeleteVBS: %v", err)
	}

	// Automated re-replication must be refused while the tombstone
	// lives.
	if _, err := c.PutVBS(ctx, data); server.StatusCode(err) != http.StatusGone {
		t.Fatalf("re-put of deleted digest: err = %v, want 410", err)
	}
	if _, err := c.GetVBSCtx(ctx, put.Digest); server.StatusCode(err) != http.StatusGone {
		t.Fatalf("GET of deleted digest: err = %v, want 410", err)
	}
	if _, err := c.HasVBS(ctx, put.Digest); server.StatusCode(err) != http.StatusGone {
		t.Fatalf("HEAD of deleted digest: err = %v, want 410", err)
	}
	ts, err := c.Tombstones(ctx)
	if err != nil || len(ts) != 1 || ts[0].Digest != put.Digest {
		t.Fatalf("Tombstones = %+v, %v; want one entry for %s", ts, err, put.Digest[:12])
	}
	st, err := c.StatsCtx(ctx)
	if err != nil || st.Repo.Tombstones != 1 {
		t.Fatalf("stats repo.tombstones = %d, %v; want 1", st.Repo.Tombstones, err)
	}

	// Deleting an absent digest still records a tombstone: a gateway
	// fans deletes out to non-holders so in-flight rebalance copies
	// land refused.
	other, err := makeVBS(2, 6, 4, 8, 1).Encode()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteVBSCtx(ctx, repo.DigestOf(other).String()); server.StatusCode(err) != http.StatusNotFound {
		t.Fatalf("DELETE of absent digest: err = %v, want 404", err)
	}
	if _, err := c.PutVBS(ctx, other); server.StatusCode(err) != http.StatusGone {
		t.Fatalf("put after absent-delete: err = %v, want 410", err)
	}

	// An explicit user write lifts the tombstone.
	if _, err := c.PutVBSForce(ctx, data); err != nil {
		t.Fatalf("forced re-put: %v", err)
	}
	if got, err := c.GetVBSCtx(ctx, put.Digest); err != nil || len(got) != len(data) {
		t.Fatalf("GET after forced re-put: %d bytes, %v", len(got), err)
	}

	// ?trim=1 is a physical trim: the digest stays storable.
	if err := c.TrimVBS(ctx, put.Digest); err != nil {
		t.Fatalf("TrimVBS: %v", err)
	}
	if _, err := c.GetVBSCtx(ctx, put.Digest); server.StatusCode(err) != http.StatusNotFound {
		t.Fatalf("GET after trim: err = %v, want 404", err)
	}
	if _, err := c.PutVBS(ctx, data); err != nil {
		t.Fatalf("re-put after trim: %v", err)
	}
}

// TestLoadClearsTombstone pins that POST /tasks — explicit user
// intent to run these bytes — overrides an earlier delete.
func TestLoadClearsTombstone(t *testing.T) {
	c, _ := newTestDaemon(t, 1, 16, server.Options{DataDir: t.TempDir()})
	ctx := t.Context()
	data, err := makeVBS(3, 6, 4, 8, 1).Encode()
	if err != nil {
		t.Fatal(err)
	}
	put, err := c.PutVBS(ctx, data)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteVBSCtx(ctx, put.Digest); err != nil {
		t.Fatal(err)
	}
	res, err := c.LoadCtx(ctx, data, nil, nil, nil)
	if err != nil {
		t.Fatalf("load of tombstoned digest: %v", err)
	}
	if res.Digest != put.Digest {
		t.Fatalf("load digest %s, want %s", res.Digest, put.Digest)
	}
	if ts, _ := c.Tombstones(ctx); len(ts) != 0 {
		t.Fatalf("tombstone survived a load: %+v", ts)
	}
}
