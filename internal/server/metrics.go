package server

import (
	"strconv"
	"time"

	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/transport"
)

// newServerMetrics builds the node's Prometheus registry (served at
// GET /metrics) and stores the hot-path instruments on the server.
// Counters bridge the pre-existing atomics and subsystem stats — all
// cumulative since boot, nothing resets on read — while levels are
// gauges refreshed at scrape time.
func newServerMetrics(s *Server) *metrics.Registry {
	reg := metrics.NewRegistry()

	s.opLat = reg.HistogramVec("vbs_server_op_duration_seconds",
		"Latency of daemon operations by op (load includes store admission, decode and placement).",
		nil, "op")
	// Instantiate the known op labels up front so the family is
	// scrapeable from boot: an idle (or freshly restarted) node must
	// not look like one with a missing histogram.
	for _, op := range []string{"load", "vbs_get", "unload", "vbs_put", "vbs_delete", "relocate", "batch"} {
		s.opLat.With(op)
	}
	s.decodeLat = reg.Histogram("vbs_decode_duration_seconds",
		"Latency of VBS de-virtualization (cache misses only).", nil)

	reg.GaugeFunc("vbs_server_uptime_seconds", "Seconds since the daemon started.",
		func() float64 { return time.Since(s.start).Seconds() })
	reg.GaugeFunc("vbs_server_tasks", "Tasks currently loaded on this node.",
		func() float64 {
			s.mu.Lock()
			defer s.mu.Unlock()
			return float64(len(s.tasks))
		})

	reg.CounterFunc("vbs_decode_total", "VBS containers de-virtualized since boot.",
		func() float64 { return float64(s.decodes.Load()) })
	reg.CounterFunc("vbs_compactions_total", "Fabric compaction runs (explicit and auto-retry).",
		func() float64 { return float64(s.compactions.Load()) })
	reg.CounterFunc("vbs_compaction_moved_total", "Tasks relocated by compactions.",
		func() float64 { return float64(s.compactMoved.Load()) })
	reg.CounterFunc("vbs_load_retries_total", "Loads that succeeded only after the auto-compaction retry.",
		func() float64 { return float64(s.retryLoads.Load()) })

	reg.CounterFunc("vbs_cache_hits_total", "Decoded-bitstream cache hits.",
		func() float64 { return float64(s.cache.Stats().Hits) })
	reg.CounterFunc("vbs_cache_misses_total", "Decoded-bitstream cache misses.",
		func() float64 { return float64(s.cache.Stats().Misses) })
	reg.CounterFunc("vbs_cache_evictions_total", "Decoded-bitstream cache evictions.",
		func() float64 { return float64(s.cache.Stats().Evictions) })
	reg.GaugeFunc("vbs_cache_entries", "Decoded bitstreams resident in the cache.",
		func() float64 { return float64(s.cache.Stats().Entries) })
	reg.GaugeFunc("vbs_cache_used_bits", "Raw bits held by the decoded cache.",
		func() float64 { return float64(s.cache.Stats().Used) })
	reg.GaugeFunc("vbs_cache_capacity_bits", "Decoded cache capacity in bits (0 = unbounded).",
		func() float64 { return float64(s.cache.Stats().Capacity) })

	reg.GaugeFunc("vbs_store_entries", "VBS blobs resident in the RAM tier.",
		func() float64 { return float64(s.store.Len()) })
	reg.GaugeFunc("vbs_store_bytes", "Container bytes resident in the RAM tier.",
		func() float64 { return float64(s.store.Bytes()) })
	reg.CounterFunc("vbs_store_demotions_total", "RAM evictions that left a blob disk-only.",
		func() float64 { return float64(s.store.TierStats().Demotions) })
	reg.CounterFunc("vbs_store_promotions_total", "RAM misses served by re-reading from disk.",
		func() float64 { return float64(s.store.TierStats().Promotions) })

	if disk := s.store.Disk(); disk != nil {
		reg.GaugeFunc("vbs_repo_blobs", "Blobs indexed in the persistent tier.",
			func() float64 { return float64(disk.Stats().Blobs) })
		reg.GaugeFunc("vbs_repo_bytes", "Payload bytes indexed in the persistent tier.",
			func() float64 { return float64(disk.Stats().Bytes) })
		reg.GaugeFunc("vbs_repo_tombstones", "Live delete tombstones blocking re-admission.",
			func() float64 { return float64(disk.Stats().Tombstones) })
		reg.CounterFunc("vbs_repo_reads_total", "Blob payloads served from disk.",
			func() float64 { return float64(disk.Stats().Reads) })
		reg.CounterFunc("vbs_repo_writes_total", "Blob payloads persisted to disk.",
			func() float64 { return float64(disk.Stats().Writes) })
		reg.CounterFunc("vbs_repo_read_errors_total", "Failed non-corrupt disk reads.",
			func() float64 { return float64(disk.Stats().ReadErrors) })
		reg.CounterFunc("vbs_repo_write_errors_total", "Failed disk writes.",
			func() float64 { return float64(disk.Stats().WriteErrors) })
		reg.CounterFunc("vbs_repo_quarantined_total", "Corrupt blobs quarantined (boot scan plus read-time).",
			func() float64 { return float64(disk.Stats().Quarantined) })
	}

	fabFree := reg.GaugeVec("vbs_fabric_free_macros",
		"Free macro-cells per fabric.", "fabric")
	fabTasks := reg.GaugeVec("vbs_fabric_tasks",
		"Tasks resident per fabric.", "fabric")
	reg.OnCollect(func() {
		for i, c := range s.ctrls {
			st := c.Stats()
			fabFree.With(strconv.Itoa(i)).Set(float64(st.FreeMacros))
			fabTasks.With(strconv.Itoa(i)).Set(float64(st.Tasks))
		}
	})

	s.transport = transport.NewMetrics(reg)

	jobs.RegisterMetrics(reg, s.jobs)
	return reg
}
