package server_test

import (
	"context"
	"encoding/json"
	"net"
	"net/http"
	"testing"
	"time"

	"repro/internal/server"
	"repro/internal/server/store"
	"repro/internal/transport"
)

// TestBatchMixedOps drives POST /tasks:batch end to end: loads, a
// get, an unload and a bad entry in one round trip, with per-op
// statuses matching what the unbatched endpoints would have said.
func TestBatchMixedOps(t *testing.T) {
	c, _ := newTestDaemon(t, 1, 30, server.Options{})
	data, err := makeVBS(1, 8, 8, 8, 2).Encode()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	resp, err := c.BatchCtx(ctx, server.BatchRequest{Ops: []server.BatchOp{
		server.BatchLoadOp(data),
		server.BatchLoadOp(data),
	}})
	if err != nil {
		t.Fatal(err)
	}
	if len(resp.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(resp.Results))
	}
	for i, r := range resp.Results {
		if r.Status != http.StatusCreated || r.Load == nil {
			t.Fatalf("load %d: status %d error %q", i, r.Status, r.Error)
		}
	}
	if !resp.Results[1].Load.Cached {
		t.Fatal("second load of the same digest should hit the decode cache")
	}
	digest := resp.Results[0].Load.Digest
	id := resp.Results[0].Load.ID

	resp, err = c.BatchCtx(ctx, server.BatchRequest{Ops: []server.BatchOp{
		{Op: "get", Digest: digest},
		{Op: "unload", ID: id},
		{Op: "unload", ID: 99999},
		{Op: "frobnicate"},
	}})
	if err != nil {
		t.Fatal(err)
	}
	want := []int{http.StatusOK, http.StatusNoContent, http.StatusNotFound, http.StatusBadRequest}
	for i, r := range resp.Results {
		if r.Status != want[i] {
			t.Fatalf("op %d: status %d (error %q), want %d", i, r.Status, r.Error, want[i])
		}
	}
	if resp.Results[0].VBS == "" {
		t.Fatal("get returned no container")
	}

	// A batch that is malformed as a whole is refused outright.
	if _, err := c.BatchCtx(ctx, server.BatchRequest{}); server.StatusCode(err) != http.StatusBadRequest {
		t.Fatalf("empty batch: got %v, want 400", err)
	}
}

// TestStreamObjPut exercises the node's stream endpoint the way the
// gateway uses it: async replication puts with digest re-verification,
// synchronous puts with HTTP-status results, and a batch RPC.
func TestStreamObjPut(t *testing.T) {
	c, _ := newTestDaemon(t, 1, 30, server.Options{})
	data, err := makeVBS(2, 8, 8, 8, 2).Encode()
	if err != nil {
		t.Fatal(err)
	}
	digest := store.DigestOf(data)

	st := transport.Open(func(ctx context.Context) (net.Conn, error) {
		return transport.Dial(ctx, c.Base())
	}, transport.Config{Compress: true})
	defer st.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	// Async data-frame put: the pipelined replication path.
	acked := make(chan error, 1)
	msg := transport.EncodeObjPut([32]byte(digest), true, data)
	if err := st.Send(ctx, msg, true, func(err error) { acked <- err }); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-acked:
		if err != nil {
			t.Fatalf("objput not acked: %v", err)
		}
	case <-ctx.Done():
		t.Fatal("objput never acked")
	}
	waitBlob(t, c, digest.String())

	// A corrupted payload must be refused: flip the digest so the
	// content address no longer matches the bytes.
	var bad [32]byte = [32]byte(digest)
	bad[0] ^= 0xff
	wrong := store.Digest(bad)
	if err := st.Send(ctx, transport.EncodeObjPut(bad, true, data), true, nil); err != nil {
		t.Fatal(err)
	}

	// Synchronous put RPC: the read-repair / rebalance copy path.
	resp, err := st.Call(ctx, msg, true)
	if err != nil {
		t.Fatal(err)
	}
	var put server.PutVBSResponse
	if err := server.DecodeStreamResult(resp, &put); err != nil {
		t.Fatal(err)
	}
	if put.Digest != digest.String() || !put.Existed {
		t.Fatalf("sync objput: %+v", put)
	}

	// Batch RPC over the stream.
	breq, _ := json.Marshal(server.BatchRequest{Ops: []server.BatchOp{server.BatchLoadOp(data)}})
	resp, err = st.Call(ctx, transport.EncodeMsg(transport.MsgBatch, breq), false)
	if err != nil {
		t.Fatal(err)
	}
	var batch server.BatchResponse
	if err := server.DecodeStreamResult(resp, &batch); err != nil {
		t.Fatal(err)
	}
	if len(batch.Results) != 1 || batch.Results[0].Status != http.StatusCreated {
		t.Fatalf("stream batch: %+v", batch)
	}

	// The mismatched put from above must never have been admitted.
	if _, err := c.GetVBSCtx(context.Background(), wrong.String()); server.StatusCode(err) != http.StatusNotFound {
		t.Fatalf("corrupt objput visible: %v", err)
	}
}

// TestStreamTombstone pins the status mapping: a non-forced stream
// put against a tombstoned digest comes back 410 Gone, exactly like
// its HTTP counterpart.
func TestStreamTombstone(t *testing.T) {
	dir := t.TempDir()
	c, _ := newTestDaemon(t, 1, 30, server.Options{DataDir: dir})
	data, err := makeVBS(3, 8, 8, 8, 2).Encode()
	if err != nil {
		t.Fatal(err)
	}
	digest := store.DigestOf(data)
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if _, err := c.PutVBS(ctx, data); err != nil {
		t.Fatal(err)
	}
	if err := c.DeleteVBSCtx(ctx, digest.String()); err != nil {
		t.Fatal(err)
	}

	st := transport.Open(func(ctx context.Context) (net.Conn, error) {
		return transport.Dial(ctx, c.Base())
	}, transport.Config{})
	defer st.Close()

	resp, err := st.Call(ctx, transport.EncodeObjPut([32]byte(digest), false, data), true)
	if err != nil {
		t.Fatal(err)
	}
	if derr := server.DecodeStreamResult(resp, nil); server.StatusCode(derr) != http.StatusGone {
		t.Fatalf("tombstoned stream put: got %v, want 410", derr)
	}
	// Forced put lifts the tombstone — explicit user intent.
	resp, err = st.Call(ctx, transport.EncodeObjPut([32]byte(digest), true, data), true)
	if err != nil {
		t.Fatal(err)
	}
	if derr := server.DecodeStreamResult(resp, nil); derr != nil {
		t.Fatalf("forced stream put: %v", derr)
	}
}

// waitBlob polls until the daemon serves the digest.
func waitBlob(t *testing.T, c *server.Client, digest string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		if _, err := c.GetVBSCtx(context.Background(), digest); err == nil {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("blob %s never appeared", digest)
		}
		time.Sleep(10 * time.Millisecond)
	}
}
