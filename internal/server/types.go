package server

import "repro/internal/controller"

// LoadRequest is the body of POST /tasks.
type LoadRequest struct {
	// VBS is the base64 (standard encoding) VBS container.
	VBS string `json:"vbs"`
	// Fabric optionally pins the task to one fabric index; nil lets
	// the daemon pick the emptiest fabric that fits.
	Fabric *int `json:"fabric,omitempty"`
	// X, Y optionally pin the task position (both or neither).
	X *int `json:"x,omitempty"`
	Y *int `json:"y,omitempty"`
}

// LoadResponse describes a placed task.
type LoadResponse struct {
	ID     int64  `json:"id"`
	Fabric int    `json:"fabric"`
	X      int    `json:"x"`
	Y      int    `json:"y"`
	Digest string `json:"digest"`
	TaskW  int    `json:"task_w"`
	TaskH  int    `json:"task_h"`
	// Cached reports whether the decoded bitstream came from the LRU
	// cache (true) or was de-virtualized for this request (false).
	Cached bool `json:"cached"`
	// CompressionRatio is VBS size over raw size (smaller is better).
	CompressionRatio float64 `json:"compression_ratio"`
	// LoadMS is the server-side latency of this load in milliseconds.
	LoadMS float64 `json:"load_ms"`
}

// RelocateRequest is the body of POST /tasks/{id}/relocate.
type RelocateRequest struct {
	X int `json:"x"`
	Y int `json:"y"`
}

// TaskInfo describes one loaded task in GET /tasks.
type TaskInfo struct {
	ID     int64  `json:"id"`
	Fabric int    `json:"fabric"`
	X      int    `json:"x"`
	Y      int    `json:"y"`
	TaskW  int    `json:"task_w"`
	TaskH  int    `json:"task_h"`
	Digest string `json:"digest"`
}

// FabricInfo describes one fabric in GET /fabrics.
type FabricInfo struct {
	Index  int `json:"index"`
	Width  int `json:"width"`
	Height int `json:"height"`
	W      int `json:"channel_width"`
	K      int `json:"lut_size"`
	controller.Stats
}

// LatencyStats summarizes server-side load latency.
type LatencyStats struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// CacheInfo mirrors store.CacheStats on the wire.
type CacheInfo struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	UsedBits  int64  `json:"used_bits"`
	CapBits   int64  `json:"cap_bits"`
}

// StoreInfo describes the content-addressed store in GET /stats.
type StoreInfo struct {
	Entries              int     `json:"entries"`
	Bytes                int     `json:"bytes"`
	MeanCompressionRatio float64 `json:"mean_compression_ratio"`
}

// StatsResponse is the body of GET /stats.
type StatsResponse struct {
	UptimeSeconds float64      `json:"uptime_seconds"`
	Tasks         int          `json:"tasks"`
	Loads         uint64       `json:"loads"`
	Unloads       uint64       `json:"unloads"`
	Relocations   uint64       `json:"relocations"`
	Decodes       uint64       `json:"decodes"`
	LoadLatency   LatencyStats `json:"load_latency"`
	Cache         CacheInfo    `json:"cache"`
	Store         StoreInfo    `json:"store"`
	Fabrics       []FabricInfo `json:"fabrics"`
}

// errorResponse is the body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}
