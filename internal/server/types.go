package server

import (
	"repro/internal/controller"
	"repro/internal/jobs"
)

// StartJobRequest is the body of POST /jobs on both vbsd and vbsgw.
type StartJobRequest struct {
	// Kind names a defined job kind (GET /jobs on a 400 reply lists
	// the valid ones).
	Kind string `json:"kind"`
	// Args are kind-specific string arguments (e.g. "max" for warm).
	Args map[string]string `json:"args,omitempty"`
}

// JobInfo is the wire view of one background job — jobs.Snapshot
// aliased into the API package so clients need not import the engine.
type JobInfo = jobs.Snapshot

// LoadRequest is the body of POST /tasks.
type LoadRequest struct {
	// VBS is the base64 (standard encoding) VBS container.
	VBS string `json:"vbs"`
	// Fabric optionally pins the task to one fabric index; nil lets
	// the placement policy rank the pool.
	Fabric *int `json:"fabric,omitempty"`
	// X, Y optionally pin the task position (both or neither).
	X *int `json:"x,omitempty"`
	Y *int `json:"y,omitempty"`
	// Policy optionally overrides the server's placement policy for
	// this load ("first-fit", "best-fit", "emptiest"); empty uses the
	// server default.
	Policy string `json:"policy,omitempty"`
}

// LoadResponse describes a placed task.
type LoadResponse struct {
	ID     int64  `json:"id"`
	Fabric int    `json:"fabric"`
	X      int    `json:"x"`
	Y      int    `json:"y"`
	Digest string `json:"digest"`
	TaskW  int    `json:"task_w"`
	TaskH  int    `json:"task_h"`
	// Cached reports whether the decoded bitstream came from the LRU
	// cache (true) or was de-virtualized for this request (false).
	Cached bool `json:"cached"`
	// CompressionRatio is VBS size over raw size (smaller is better).
	CompressionRatio float64 `json:"compression_ratio"`
	// LoadMS is the server-side latency of this load in milliseconds.
	LoadMS float64 `json:"load_ms"`
	// Compacted reports that the load only succeeded after the
	// auto-compaction retry defragmented a fabric.
	Compacted bool `json:"compacted,omitempty"`
}

// BatchOp is one operation inside POST /tasks:batch. Exactly one op
// kind applies per entry; unknown kinds fail that entry, not the
// batch.
type BatchOp struct {
	// Op selects the operation: "load", "get" or "unload". Empty with
	// a VBS payload defaults to "load".
	Op string `json:"op,omitempty"`
	// Load fields — same semantics as LoadRequest.
	VBS    string `json:"vbs,omitempty"`
	Fabric *int   `json:"fabric,omitempty"`
	X      *int   `json:"x,omitempty"`
	Y      *int   `json:"y,omitempty"`
	Policy string `json:"policy,omitempty"`
	// Digest selects the blob for "get" (hex).
	Digest string `json:"digest,omitempty"`
	// ID selects the task for "unload".
	ID int64 `json:"id,omitempty"`
}

// BatchRequest is the body of POST /tasks:batch: many task operations
// in one round trip. Ops execute sequentially in order; each entry
// succeeds or fails on its own.
type BatchRequest struct {
	Ops []BatchOp `json:"ops"`
}

// BatchResult is the outcome of one batch op, in request order.
// Status carries the HTTP code the op would have produced as its own
// request; Error is set on non-2xx.
type BatchResult struct {
	Status int    `json:"status"`
	Error  string `json:"error,omitempty"`
	// Load is the placement result of a successful "load".
	Load *LoadResponse `json:"load,omitempty"`
	// VBS is the base64 container of a successful "get".
	VBS string `json:"vbs,omitempty"`
}

// BatchResponse is the body of a 200 from POST /tasks:batch.
type BatchResponse struct {
	Results []BatchResult `json:"results"`
}

// RelocateRequest is the body of POST /tasks/{id}/relocate. X and Y
// are pointers so a missing coordinate is distinguishable from an
// explicit 0: both are required, and the daemon rejects a partial or
// empty body instead of silently moving the task to the origin.
type RelocateRequest struct {
	X *int `json:"x"`
	Y *int `json:"y"`
}

// CompactResponse is the body of POST /fabrics/{i}/compact.
type CompactResponse struct {
	Fabric int `json:"fabric"`
	// Moved is the number of tasks relocated toward the origin.
	Moved int `json:"moved"`
}

// PutVBSRequest is the body of POST /vbs: blob admission without
// placement. The cluster gateway uses it to replicate containers to
// nodes that do not host the task.
type PutVBSRequest struct {
	// VBS is the base64 (standard encoding) VBS container.
	VBS string `json:"vbs"`
	// Force lifts a delete tombstone before admitting: set on explicit
	// user writes. Automated copies (read-repair, rebalance) leave it
	// false and are refused with 410 Gone while the tombstone lives.
	Force bool `json:"force,omitempty"`
}

// PutVBSResponse describes an admitted blob.
type PutVBSResponse struct {
	Digest string `json:"digest"`
	Bytes  int    `json:"bytes"`
	// Existed reports that the store already held the digest (the put
	// deduplicated instead of admitting new bytes).
	Existed bool `json:"existed"`
}

// TaskInfo describes one loaded task in GET /tasks.
type TaskInfo struct {
	ID     int64  `json:"id"`
	Fabric int    `json:"fabric"`
	X      int    `json:"x"`
	Y      int    `json:"y"`
	TaskW  int    `json:"task_w"`
	TaskH  int    `json:"task_h"`
	Digest string `json:"digest"`
	// Node names the vbsd node hosting the task. A single daemon
	// leaves it empty; the cluster gateway fills it when merging
	// scatter-gathered listings.
	Node string `json:"node,omitempty"`
}

// FabricInfo describes one fabric in GET /fabrics.
type FabricInfo struct {
	Index  int `json:"index"`
	Width  int `json:"width"`
	Height int `json:"height"`
	W      int `json:"channel_width"`
	K      int `json:"lut_size"`
	// Node names the vbsd node owning the fabric (cluster gateway
	// only; empty on a single daemon). In a merged listing Index is
	// the fleet-global fabric index.
	Node string `json:"node,omitempty"`
	controller.Stats
}

// LatencyStats summarizes server-side load latency.
type LatencyStats struct {
	Count  uint64  `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	MaxMS  float64 `json:"max_ms"`
}

// CacheInfo mirrors store.CacheStats on the wire.
type CacheInfo struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Evictions uint64 `json:"evictions"`
	Entries   int    `json:"entries"`
	UsedBits  int64  `json:"used_bits"`
	CapBits   int64  `json:"cap_bits"`
}

// StoreInfo describes the content-addressed store in GET /stats.
type StoreInfo struct {
	Entries              int     `json:"entries"`
	Bytes                int     `json:"bytes"`
	MeanCompressionRatio float64 `json:"mean_compression_ratio"`
}

// RepoInfo describes the persistent blob tier in GET /stats. All
// fields but Enabled are zero when the daemon runs without -data-dir.
type RepoInfo struct {
	// Enabled reports whether a disk tier is attached.
	Enabled bool `json:"enabled"`
	// Blobs / Bytes describe the on-disk index.
	Blobs int   `json:"blobs"`
	Bytes int64 `json:"bytes"`
	// Demotions counts RAM evictions that left a blob disk-only;
	// Promotions counts RAM misses served by re-reading from disk.
	Demotions  uint64 `json:"demotions"`
	Promotions uint64 `json:"promotions"`
	// Recovered / Quarantined report the boot recovery scan plus any
	// read-time verification failures since.
	Recovered   int `json:"recovered"`
	Quarantined int `json:"quarantined"`
	// Reads / Writes count blob payloads served from and persisted to
	// disk since boot.
	Reads  uint64 `json:"reads"`
	Writes uint64 `json:"writes"`
	// WriteErrors / ReadErrors count failed disk puts and failed
	// non-corrupt disk gets (corrupt reads count under Quarantined).
	WriteErrors uint64 `json:"write_errors"`
	ReadErrors  uint64 `json:"read_errors"`
	// Tombstones counts live delete tombstones blocking re-admission.
	Tombstones int `json:"tombstones"`
}

// TombstoneInfo describes one live delete tombstone in
// GET /tombstones.
type TombstoneInfo struct {
	Digest string `json:"digest"`
	// Expires is the unix time (seconds) the tombstone stops blocking.
	Expires int64 `json:"expires"`
}

// ChaosFaults mirrors repo.Faults on the wire for the /chaos/faults
// endpoints (registered only with Options.EnableChaos). Field-for-
// field identical so handlers can convert between them directly.
type ChaosFaults struct {
	FailPuts     bool `json:"fail_puts"`
	FailReads    bool `json:"fail_reads"`
	CorruptReads bool `json:"corrupt_reads"`
	ShortReads   bool `json:"short_reads"`
}

// VBSInfo describes one stored blob in GET /vbs.
type VBSInfo struct {
	Digest string `json:"digest"`
	Bytes  int64  `json:"bytes"`
	// RAM / Disk report tier residency (both may be true).
	RAM  bool `json:"ram"`
	Disk bool `json:"disk"`
	// Tasks counts live tasks currently referencing the blob; a blob
	// with Tasks > 0 refuses DELETE /vbs/{digest}.
	Tasks int `json:"tasks"`
	// Replicas counts cluster nodes holding the blob (cluster gateway
	// only; zero on a single daemon).
	Replicas int `json:"replicas,omitempty"`
}

// PlacementInfo summarizes the placement engine in GET /stats.
type PlacementInfo struct {
	// Policy is the server's default placement policy.
	Policy string `json:"policy"`
	// Compactions counts Compact runs (explicit and auto-retry).
	Compactions uint64 `json:"compactions"`
	// TasksMoved counts tasks relocated by those compactions.
	TasksMoved uint64 `json:"tasks_moved"`
	// RetrySuccesses counts loads that only succeeded after the
	// auto-compaction retry.
	RetrySuccesses uint64 `json:"retry_successes"`
}

// StatsResponse is the body of GET /stats.
type StatsResponse struct {
	UptimeSeconds float64       `json:"uptime_seconds"`
	Tasks         int           `json:"tasks"`
	Loads         uint64        `json:"loads"`
	Unloads       uint64        `json:"unloads"`
	Relocations   uint64        `json:"relocations"`
	Decodes       uint64        `json:"decodes"`
	LoadLatency   LatencyStats  `json:"load_latency"`
	Placement     PlacementInfo `json:"placement"`
	Cache         CacheInfo     `json:"cache"`
	Store         StoreInfo     `json:"store"`
	Repo          RepoInfo      `json:"repo"`
	Fabrics       []FabricInfo  `json:"fabrics"`
}

// errorResponse is the body of every non-2xx reply.
type errorResponse struct {
	Error string `json:"error"`
}
