package server_test

import (
	"context"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/metrics"
	"repro/internal/server"
)

// waitTerminal polls GET /jobs/{id} until the job leaves running.
func waitTerminal(t *testing.T, c *server.Client, id int64) server.JobInfo {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		j, err := c.JobCtx(context.Background(), id)
		if err != nil {
			t.Fatal(err)
		}
		if j.Status.Terminal() {
			return j
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("job %d did not reach a terminal status", id)
	return server.JobInfo{}
}

func TestJobsHTTPSurface(t *testing.T) {
	dir := t.TempDir()
	c, _ := newTestDaemon(t, 1, 16, server.Options{DataDir: dir})
	ctx := context.Background()

	// Seed a blob so warm and scrub have something to chew on.
	v := makeVBS(1, 10, 4, 8, 1)
	data, err := v.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.PutVBS(ctx, data); err != nil {
		t.Fatal(err)
	}

	// Unknown kind: 400 with the defined kinds in the message.
	if _, err := c.StartJobCtx(ctx, "nope", nil); server.StatusCode(err) != 400 {
		t.Fatalf("unknown kind err = %v, want 400", err)
	}

	j, err := c.StartJobCtx(ctx, "warm", nil)
	if err != nil {
		t.Fatal(err)
	}
	if j.Status != jobs.StatusRunning && !j.Status.Terminal() {
		t.Fatalf("start snapshot status = %q", j.Status)
	}
	done := waitTerminal(t, c, j.ID)
	if done.Status != jobs.StatusDone || done.Progress["warmed"] != 1 {
		t.Fatalf("warm job = %+v, want done with warmed=1", done)
	}

	scrub, err := c.StartJobCtx(ctx, "scrub", nil)
	if err != nil {
		t.Fatal(err)
	}
	sdone := waitTerminal(t, c, scrub.ID)
	if sdone.Status != jobs.StatusDone || sdone.Progress["checked"] != 1 {
		t.Fatalf("scrub job = %+v, want done with checked=1", sdone)
	}

	ls, err := c.JobsCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if len(ls) != 2 {
		t.Fatalf("GET /jobs listed %d jobs, want 2", len(ls))
	}

	// Abort of a finished job is a no-op 200; unknown id is 404.
	if _, err := c.AbortJobCtx(ctx, scrub.ID); err != nil {
		t.Fatal(err)
	}
	if _, err := c.AbortJobCtx(ctx, 99999); server.StatusCode(err) != 404 {
		t.Fatalf("abort of unknown id err = %v, want 404", err)
	}
}

func TestJobsScrubWithoutDiskFails(t *testing.T) {
	c, _ := newTestDaemon(t, 1, 16, server.Options{})
	j, err := c.StartJobCtx(context.Background(), "scrub", nil)
	if err != nil {
		t.Fatal(err)
	}
	done := waitTerminal(t, c, j.ID)
	if done.Status != jobs.StatusFailed || done.Error == "" {
		t.Fatalf("scrub without disk = %+v, want failed with an error", done)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	c, _ := newTestDaemon(t, 2, 16, server.Options{})
	ctx := context.Background()

	v := makeVBS(2, 10, 4, 8, 1)
	if _, err := c.LoadVBSCtx(ctx, v); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadVBSCtx(ctx, v); err != nil { // second load: cache hit
		t.Fatal(err)
	}

	samples, err := c.MetricsCtx(ctx)
	if err != nil {
		t.Fatal(err)
	}
	find := func(name string, labels map[string]string) float64 {
		t.Helper()
		v, ok := metrics.Find(samples, name, labels)
		if !ok {
			t.Fatalf("metric %s%v not exported", name, labels)
		}
		return v
	}
	if got := find("vbs_server_op_duration_seconds_count", map[string]string{"op": "load"}); got != 2 {
		t.Errorf("load op count = %v, want 2", got)
	}
	bks := metrics.Buckets(samples, "vbs_server_op_duration_seconds", map[string]string{"op": "load"})
	if len(bks) != len(metrics.DefLatencyBuckets)+1 {
		t.Errorf("load histogram has %d buckets, want %d", len(bks), len(metrics.DefLatencyBuckets)+1)
	}
	if got := find("vbs_decode_total", nil); got != 1 {
		t.Errorf("decode total = %v, want 1 (second load cached)", got)
	}
	if got := find("vbs_cache_hits_total", nil); got != 1 {
		t.Errorf("cache hits = %v, want 1", got)
	}
	if got := find("vbs_server_tasks", nil); got != 2 {
		t.Errorf("tasks gauge = %v, want 2", got)
	}
	if got := find("vbs_fabric_tasks", map[string]string{"fabric": "0"}); got < 1 {
		t.Errorf("fabric 0 tasks = %v, want >= 1", got)
	}
	// Defined-but-idle job kinds export a zero running series.
	if got := find("vbs_jobs_running", map[string]string{"kind": "scrub"}); got != 0 {
		t.Errorf("scrub running gauge = %v, want 0", got)
	}
}
