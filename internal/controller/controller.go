// Package controller implements the run-time reconfiguration manager
// of Section II-C: it accepts Virtual Bit-Streams, de-virtualizes them
// — in parallel, macro by macro, as the paper's architecture sketch
// shows — places them on the fabric at load time, and supports
// unloading and on-the-fly relocation (Section V).
//
// De-virtualization is split from placement so callers can cache its
// result: DecodeVBS produces a Decoded, a position-independent bundle
// of region configurations that can be written to any free slot of any
// compatible fabric, any number of times. The vbsd daemon's LRU cache
// of Decoded values is what lets repeated loads of the same task skip
// the decode entirely.
//
// All exported Controller methods are safe for concurrent use; a
// single mutex serializes fabric mutations, which is the per-fabric
// request serialization the runtime daemon relies on.
package controller

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/fabric"
	"repro/internal/sched"
)

// ErrRestoreFailed is the double fault of the Section V migration
// path: a relocation was refused and the task could not be rewritten
// at its old position either. The task is still tracked but owns no
// fabric region; the fabric needs operator attention.
var ErrRestoreFailed = errors.New("relocation failed and restore impossible")

// ErrNoSlot reports that no conflict-free position currently exists
// for the task on this fabric — the capacity failure that compaction
// (unlike, say, an architecture mismatch) has a chance of fixing.
var ErrNoSlot = errors.New("no conflict-free slot")

// Decoded is a de-virtualized Virtual Bit-Stream: the per-entry member
// configurations produced by the parallel decoder, still abstracted
// from any fabric position. A Decoded is immutable after creation and
// may be shared freely — loading only reads it — so it is the unit the
// daemon's decoded-bitstream cache stores.
type Decoded struct {
	// VBS is the source container.
	VBS *core.VBS
	// cfgs is indexed like VBS.Entries; each element holds the
	// region's member configurations in row-major member order.
	cfgs [][]*arch.MacroConfig

	// grid memoizes the task-relative macro view of cfgs for dry-run
	// admission; built on first use, safe under concurrent sharing.
	gridOnce sync.Once
	grid     []*arch.MacroConfig
}

// ConfigAt returns the decoded configuration of task-relative macro
// (dx, dy), or nil outside the task footprint (or for a macro no entry
// configures). The returned config must not be mutated.
func (d *Decoded) ConfigAt(dx, dy int) *arch.MacroConfig {
	v := d.VBS
	if dx < 0 || dy < 0 || dx >= v.TaskW || dy >= v.TaskH {
		return nil
	}
	d.gridOnce.Do(d.buildGrid)
	return d.grid[dy*v.TaskW+dx]
}

// buildGrid flattens the per-entry member configs into one
// task-footprint grid, merging (OR) if entries ever overlap a macro —
// the same composition writeDecoded applies to the fabric.
func (d *Decoded) buildGrid() {
	v := d.VBS
	g := make([]*arch.MacroConfig, v.TaskW*v.TaskH)
	for i := range v.Entries {
		e := &v.Entries[i]
		cw, _ := v.RegionDims(e.X, e.Y)
		for m, cfg := range d.cfgs[i] {
			dx := e.X*v.Cluster + m%cw
			dy := e.Y*v.Cluster + m/cw
			idx := dy*v.TaskW + dx
			if g[idx] == nil {
				g[idx] = cfg
			} else {
				merged := g[idx].Clone()
				merged.Vec().Or(cfg.Vec())
				g[idx] = merged
			}
		}
	}
	d.grid = g
}

// SizeBits returns the footprint of the decoded configurations (the
// raw bits a load writes), used for cache accounting.
func (d *Decoded) SizeBits() int {
	n := 0
	for _, regs := range d.cfgs {
		for range regs {
			n += d.VBS.P.NRaw()
		}
	}
	return n
}

// DecodeVBS de-virtualizes every entry of the VBS concurrently with
// the given worker count (0 selects GOMAXPROCS), through
// core.VBS.EachEntryParallel — the same fan-out the in-place decoders
// use. Each worker draws region routers from the shape-keyed pool and
// copies the decoded member configurations out before releasing the
// router (the Configs ownership contract), so the Decoded it builds
// owns its bits outright and may be cached and shared freely. The
// result is deterministic regardless of worker count. DecodeVBS needs
// no fabric: it is the cache-friendly entry point shared by every
// controller.
func DecodeVBS(v *core.VBS, workers int) (*Decoded, error) {
	if err := v.Validate(); err != nil {
		return nil, err
	}
	cfgs := make([][]*arch.MacroConfig, len(v.Entries))
	err := v.EachEntryParallel(workers, func(i int) error {
		out, err := v.DecodeEntry(i)
		if err != nil {
			return fmt.Errorf("controller: entry %d: %w", i, err)
		}
		cfgs[i] = out
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &Decoded{VBS: v, cfgs: cfgs}, nil
}

// Controller manages tasks on one fabric. All exported methods are
// safe for concurrent use.
type Controller struct {
	mu      sync.Mutex
	fab     *fabric.Fabric
	workers int
	tasks   map[fabric.TaskID]*Task
	nextID  fabric.TaskID

	loads       atomic.Uint64
	unloads     atomic.Uint64
	relocations atomic.Uint64
	decodes     atomic.Uint64
	decodeNanos atomic.Int64
}

// Task records a loaded hardware task.
type Task struct {
	ID   fabric.TaskID
	VBS  *core.VBS
	X, Y int

	// dec keeps the decoded configurations so relocation never
	// re-decodes (the paper's on-the-fly migration path, made O(write)).
	dec *Decoded
}

// Stats is a snapshot of one controller's counters and occupancy.
type Stats struct {
	// Tasks is the number of loaded tasks.
	Tasks int `json:"tasks"`
	// FreeMacros and TotalMacros describe fabric occupancy; Occupancy
	// is the owned fraction in [0, 1].
	FreeMacros  int     `json:"free_macros"`
	TotalMacros int     `json:"total_macros"`
	Occupancy   float64 `json:"occupancy"`
	// Loads, Unloads, Relocations count successful operations.
	Loads       uint64 `json:"loads"`
	Unloads     uint64 `json:"unloads"`
	Relocations uint64 `json:"relocations"`
	// Decodes counts full VBS de-virtualizations performed by this
	// controller (cache hits upstream never reach this counter).
	Decodes uint64 `json:"decodes"`
	// DecodeTime is the cumulative wall time spent decoding.
	DecodeTime time.Duration `json:"decode_ns"`
}

// New returns a controller decoding with the given worker count
// (0 selects GOMAXPROCS).
func New(f *fabric.Fabric, workers int) *Controller {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Controller{fab: f, workers: workers, tasks: make(map[fabric.TaskID]*Task)}
}

// Fabric returns the managed fabric. Callers touching the fabric
// directly while the controller is in concurrent use must provide
// their own synchronization.
func (c *Controller) Fabric() *fabric.Fabric { return c.fab }

// Tasks returns the number of loaded tasks.
func (c *Controller) Tasks() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.tasks)
}

// Task returns a loaded task by id.
func (c *Controller) Task(id fabric.TaskID) (*Task, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	t, ok := c.tasks[id]
	return t, ok
}

// Stats returns a consistent snapshot of counters and occupancy.
func (c *Controller) Stats() Stats {
	c.mu.Lock()
	tasks := len(c.tasks)
	used := c.fab.UsedMacros()
	occ := c.fab.Occupancy()
	total := c.fab.Grid().NumMacros()
	c.mu.Unlock()
	return Stats{
		Tasks:       tasks,
		FreeMacros:  total - used,
		TotalMacros: total,
		Occupancy:   occ,
		Loads:       c.loads.Load(),
		Unloads:     c.unloads.Load(),
		Relocations: c.relocations.Load(),
		Decodes:     c.decodes.Load(),
		DecodeTime:  time.Duration(c.decodeNanos.Load()),
	}
}

// Decode de-virtualizes a VBS with this controller's worker pool,
// updating the decode counters. The result is fabric-independent.
func (c *Controller) Decode(v *core.VBS) (*Decoded, error) {
	start := time.Now()
	d, err := DecodeVBS(v, c.workers)
	if err != nil {
		return nil, err
	}
	c.decodes.Add(1)
	c.decodeNanos.Add(int64(time.Since(start)))
	return d, nil
}

// Load decodes the task and places it at the first position where it
// fits without seam conflicts, returning its id and position.
func (c *Controller) Load(v *core.VBS) (*Task, error) {
	d, err := c.Decode(v)
	if err != nil {
		return nil, err
	}
	return c.LoadDecoded(d)
}

// LoadAt decodes the task and places it at an explicit position.
func (c *Controller) LoadAt(v *core.VBS, x0, y0 int) (*Task, error) {
	d, err := c.Decode(v)
	if err != nil {
		return nil, err
	}
	return c.LoadDecodedAt(d, x0, y0)
}

// LoadDecoded places an already-decoded task at the first conflict-free
// position. This is the cache-hit load path: no de-virtualization runs.
func (c *Controller) LoadDecoded(d *Decoded) (*Task, error) {
	return c.LoadDecodedPolicy(d, sched.FirstFit())
}

// LoadDecodedPolicy places an already-decoded task at the position the
// policy selects. Candidate positions are evaluated with the dry-run
// admission check (overlap + seam analysis against the candidate
// decode), so a rejected position never touches the fabric; only the
// one committed slot is written, and it is still verified
// write-then-check like every load.
func (c *Controller) LoadDecodedPolicy(d *Decoded, p sched.Policy) (*Task, error) {
	if err := c.checkArch(d.VBS); err != nil {
		return nil, err
	}
	if p == nil {
		p = sched.FirstFit()
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	v := d.VBS
	x, y, ok := p.PickSlot(&slotView{c: c, d: d, as: c.nextID})
	if !ok {
		return nil, fmt.Errorf("controller: %w for %dx%d task", ErrNoSlot, v.TaskW, v.TaskH)
	}
	return c.loadDecodedAtLocked(d, x, y)
}

// CanPlace is the dry-run admission check: it reports whether the
// decoded task could be committed at (x0, y0) — region inside the
// fabric, no overlap with other tasks, no seam conflicts with the
// candidate decode — without mutating the fabric configuration.
func (c *Controller) CanPlace(d *Decoded, x0, y0 int) error {
	if err := c.checkArch(d.VBS); err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.canPlaceLocked(d, x0, y0, c.nextID)
}

// canPlaceLocked evaluates admission at (x0, y0) for the task id `as`
// (the relocating task's id, or the prospective id of a new load).
// Callers hold c.mu.
func (c *Controller) canPlaceLocked(d *Decoded, x0, y0 int, as fabric.TaskID) error {
	v := d.VBS
	if err := c.fab.CheckRect(x0, y0, v.TaskW, v.TaskH, as); err != nil {
		return err
	}
	if conflicts := c.fab.CandidateSeamConflicts(as, x0, y0, v.TaskW, v.TaskH, d.ConfigAt); len(conflicts) > 0 {
		return fmt.Errorf("controller: seam conflicts at (%d,%d): %s", x0, y0, conflicts[0])
	}
	return nil
}

// fitsLocked is canPlaceLocked as an allocation-free predicate: the
// form placement scans use when probing hundreds of positions, where
// building rejection messages would dominate. Callers hold c.mu.
func (c *Controller) fitsLocked(d *Decoded, x0, y0 int, as fabric.TaskID) bool {
	v := d.VBS
	return c.fab.FitsRect(x0, y0, v.TaskW, v.TaskH, as) &&
		!c.fab.HasCandidateSeamConflict(as, x0, y0, v.TaskW, v.TaskH, d.ConfigAt)
}

// slotView adapts a locked controller and a candidate decode to the
// sched.Slots interface. Policies run under c.mu and must not reenter
// the controller.
type slotView struct {
	c  *Controller
	d  *Decoded
	as fabric.TaskID
}

func (s *slotView) Dims() (int, int) {
	g := s.c.fab.Grid()
	return g.Width, g.Height
}

func (s *slotView) Task() (int, int) { return s.d.VBS.TaskW, s.d.VBS.TaskH }

func (s *slotView) Free(x, y int) bool {
	if !s.c.fab.Grid().Contains(x, y) {
		return false
	}
	o := s.c.fab.OwnerAt(x, y)
	return o == fabric.NoTask || o == s.as
}

func (s *slotView) CanPlace(x, y int) bool {
	return s.c.fitsLocked(s.d, x, y, s.as)
}

// LoadDecodedAt places an already-decoded task at an explicit position.
func (c *Controller) LoadDecodedAt(d *Decoded, x0, y0 int) (*Task, error) {
	if err := c.checkArch(d.VBS); err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.loadDecodedAtLocked(d, x0, y0)
}

func (c *Controller) checkArch(v *core.VBS) error {
	if v.P != c.fab.Params() {
		return fmt.Errorf("controller: task architecture %v, fabric %v", v.P, c.fab.Params())
	}
	return nil
}

func (c *Controller) loadDecodedAtLocked(d *Decoded, x0, y0 int) (*Task, error) {
	v := d.VBS
	id := c.nextID
	if err := c.fab.Allocate(id, x0, y0, v.TaskW, v.TaskH); err != nil {
		return nil, err
	}
	c.writeDecoded(d, x0, y0)
	if conflicts := c.fab.SeamConflicts(x0, y0, v.TaskW, v.TaskH); len(conflicts) > 0 {
		c.fab.Release(id)
		return nil, fmt.Errorf("controller: seam conflicts at (%d,%d): %s", x0, y0, conflicts[0])
	}
	c.nextID++
	t := &Task{ID: id, VBS: v, X: x0, Y: y0, dec: d}
	c.tasks[id] = t
	c.loads.Add(1)
	return t, nil
}

// Unload removes a task and clears its fabric region.
func (c *Controller) Unload(id fabric.TaskID) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, ok := c.tasks[id]; !ok {
		return fmt.Errorf("controller: task %d not loaded", id)
	}
	c.fab.Release(id)
	delete(c.tasks, id)
	c.unloads.Add(1)
	return nil
}

// Relocate moves a loaded task to a new position — the on-the-fly
// migration path of Section V. The task's cached decode is rewritten
// at the new position, so no de-virtualization runs. The old region is
// released first, so a task may relocate into overlapping free space.
func (c *Controller) Relocate(id fabric.TaskID, x0, y0 int) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.relocateLocked(id, x0, y0)
}

func (c *Controller) relocateLocked(id fabric.TaskID, x0, y0 int) error {
	t, ok := c.tasks[id]
	if !ok {
		return fmt.Errorf("controller: task %d not loaded", id)
	}
	oldX, oldY := t.X, t.Y
	restore := func(err error) error {
		// Restore at the old position; the cached decode makes this
		// loss-free.
		if err2 := c.fab.Allocate(id, oldX, oldY, t.VBS.TaskW, t.VBS.TaskH); err2 != nil {
			return fmt.Errorf("controller: %w: %w / %w", ErrRestoreFailed, err, err2)
		}
		c.writeDecoded(t.dec, oldX, oldY)
		return err
	}
	c.fab.Release(id)
	if err := c.fab.Allocate(id, x0, y0, t.VBS.TaskW, t.VBS.TaskH); err != nil {
		return restore(err)
	}
	c.writeDecoded(t.dec, x0, y0)
	// The load path refuses seam-conflicting placements; relocation
	// must apply the same analysis or a move could electrically
	// corrupt an abutting task.
	if conflicts := c.fab.SeamConflicts(x0, y0, t.VBS.TaskW, t.VBS.TaskH); len(conflicts) > 0 {
		c.fab.Release(id)
		return restore(fmt.Errorf("controller: seam conflicts at (%d,%d): %s", x0, y0, conflicts[0]))
	}
	t.X, t.Y = x0, y0
	c.relocations.Add(1)
	return nil
}

// Compact defragments the fabric: tasks are relocated one by one to
// the first-fit position scanning from the origin, coalescing free
// space. Because every task keeps its position-free decode, this is a
// pure runtime operation — the paper's motivating scenario for
// relocation. Candidate positions are pre-filtered with the dry-run
// overlap query (self-overlap allowed), so occupied slots cost no
// fabric writes; each surviving candidate commits through the
// write-then-verify relocation path, which also performs the seam
// analysis. Seam deliberately stays on the commit side here — unlike
// the load scan — because compaction is off the hot load path and a
// refused commit is the one place the restore double fault can
// actually arise and be exercised; a full dry-run would make that
// failure mode unreachable. It returns the number of tasks moved. A
// relocation that is refused and cannot be restored (the
// ErrRestoreFailed double fault) aborts compaction and is returned:
// the affected task is still tracked but owns no fabric region.
func (c *Controller) Compact() (moved int, err error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	// Deterministic order: by current position, row-major.
	ids := make([]fabric.TaskID, 0, len(c.tasks))
	for id := range c.tasks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		ta, tb := c.tasks[ids[a]], c.tasks[ids[b]]
		if ta.Y != tb.Y {
			return ta.Y < tb.Y
		}
		if ta.X != tb.X {
			return ta.X < tb.X
		}
		return ids[a] < ids[b]
	})
	g := c.fab.Grid()
	for _, id := range ids {
		t := c.tasks[id]
	scan:
		for y := 0; y <= t.Y; y++ {
			maxX := g.Width - t.VBS.TaskW
			if y == t.Y {
				maxX = t.X - 1
			}
			for x := 0; x <= maxX; x++ {
				if !c.fab.FitsRect(x, y, t.VBS.TaskW, t.VBS.TaskH, id) {
					continue
				}
				switch err := c.relocateLocked(id, x, y); {
				case err == nil:
					moved++
					break scan
				case errors.Is(err, ErrRestoreFailed):
					return moved, err
				}
			}
		}
	}
	return moved, nil
}

// writeDecoded writes a position-free decode into the fabric
// configuration at (x0, y0). It only reads the Decoded, so one Decoded
// may serve many concurrent loads across fabrics. Callers hold c.mu.
func (c *Controller) writeDecoded(d *Decoded, x0, y0 int) {
	v := d.VBS
	raw := c.fab.Config()
	for i := range v.Entries {
		e := &v.Entries[i]
		cw, _ := v.RegionDims(e.X, e.Y)
		baseX := x0 + e.X*v.Cluster
		baseY := y0 + e.Y*v.Cluster
		for m, cfg := range d.cfgs[i] {
			mi, mj := m%cw, m/cw
			raw.At(baseX+mi, baseY+mj).Vec().Or(cfg.Vec())
		}
	}
}

// DecodeParallel de-virtualizes every entry of the VBS concurrently
// and returns the raw per-entry configurations, indexed like
// v.Entries.
//
// Deprecated: use Decode (or the package-level DecodeVBS) which wraps
// the result in a reusable Decoded.
func (c *Controller) DecodeParallel(v *core.VBS) ([][]*arch.MacroConfig, error) {
	d, err := c.Decode(v)
	if err != nil {
		return nil, err
	}
	return d.cfgs, nil
}
