// Package controller implements the run-time reconfiguration manager
// of Section II-C: it accepts Virtual Bit-Streams, de-virtualizes them
// — in parallel, macro by macro, as the paper's architecture sketch
// shows — places them on the fabric at load time, and supports
// unloading and on-the-fly relocation (Section V).
package controller

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/fabric"
)

// Controller manages tasks on one fabric.
type Controller struct {
	fab     *fabric.Fabric
	workers int
	tasks   map[fabric.TaskID]*Task
	nextID  fabric.TaskID
}

// Task records a loaded hardware task.
type Task struct {
	ID   fabric.TaskID
	VBS  *core.VBS
	X, Y int
}

// New returns a controller decoding with the given worker count
// (0 selects GOMAXPROCS).
func New(f *fabric.Fabric, workers int) *Controller {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Controller{fab: f, workers: workers, tasks: make(map[fabric.TaskID]*Task)}
}

// Fabric returns the managed fabric.
func (c *Controller) Fabric() *fabric.Fabric { return c.fab }

// Tasks returns the number of loaded tasks.
func (c *Controller) Tasks() int { return len(c.tasks) }

// Task returns a loaded task by id.
func (c *Controller) Task(id fabric.TaskID) (*Task, bool) {
	t, ok := c.tasks[id]
	return t, ok
}

// Load places the task at the first position where it fits without
// seam conflicts and returns its id and position.
func (c *Controller) Load(v *core.VBS) (*Task, error) {
	if err := v.Validate(); err != nil {
		return nil, err
	}
	if v.P != c.fab.Params() {
		return nil, fmt.Errorf("controller: task architecture %v, fabric %v", v.P, c.fab.Params())
	}
	// Try successive free slots; a slot may be rejected by seam
	// analysis when an abutting task drives the same boundary wires.
	g := c.fab.Grid()
	for y := 0; y+v.TaskH <= g.Height; y++ {
		for x := 0; x+v.TaskW <= g.Width; x++ {
			if c.fab.OwnerAt(x, y) != fabric.NoTask {
				continue
			}
			t, err := c.LoadAt(v, x, y)
			if err == nil {
				return t, nil
			}
		}
	}
	return nil, fmt.Errorf("controller: no conflict-free slot for %dx%d task", v.TaskW, v.TaskH)
}

// LoadAt places the task at an explicit position.
func (c *Controller) LoadAt(v *core.VBS, x0, y0 int) (*Task, error) {
	if v.P != c.fab.Params() {
		return nil, fmt.Errorf("controller: task architecture %v, fabric %v", v.P, c.fab.Params())
	}
	id := c.nextID
	if err := c.fab.Allocate(id, x0, y0, v.TaskW, v.TaskH); err != nil {
		return nil, err
	}
	if err := c.writeTask(v, x0, y0); err != nil {
		c.fab.Release(id)
		return nil, err
	}
	if conflicts := c.fab.SeamConflicts(x0, y0, v.TaskW, v.TaskH); len(conflicts) > 0 {
		c.fab.Release(id)
		return nil, fmt.Errorf("controller: seam conflicts at (%d,%d): %s", x0, y0, conflicts[0])
	}
	c.nextID++
	t := &Task{ID: id, VBS: v, X: x0, Y: y0}
	c.tasks[id] = t
	return t, nil
}

// Unload removes a task and clears its fabric region.
func (c *Controller) Unload(id fabric.TaskID) error {
	if _, ok := c.tasks[id]; !ok {
		return fmt.Errorf("controller: task %d not loaded", id)
	}
	c.fab.Release(id)
	delete(c.tasks, id)
	return nil
}

// Relocate moves a loaded task to a new position by re-decoding its
// VBS there — the on-the-fly migration path of Section V. The old
// region is released first, so a task may relocate into overlapping
// free space.
func (c *Controller) Relocate(id fabric.TaskID, x0, y0 int) error {
	t, ok := c.tasks[id]
	if !ok {
		return fmt.Errorf("controller: task %d not loaded", id)
	}
	oldX, oldY := t.X, t.Y
	c.fab.Release(id)
	if err := c.fab.Allocate(id, x0, y0, t.VBS.TaskW, t.VBS.TaskH); err != nil {
		// Restore at the old position; the VBS makes this loss-free.
		if err2 := c.fab.Allocate(id, oldX, oldY, t.VBS.TaskW, t.VBS.TaskH); err2 != nil {
			return fmt.Errorf("controller: relocation failed and restore impossible: %v / %v", err, err2)
		}
		if err2 := c.writeTask(t.VBS, oldX, oldY); err2 != nil {
			return fmt.Errorf("controller: restore decode failed: %v", err2)
		}
		return err
	}
	if err := c.writeTask(t.VBS, x0, y0); err != nil {
		return err
	}
	t.X, t.Y = x0, y0
	return nil
}

// Compact defragments the fabric: tasks are relocated one by one to
// the first-fit position scanning from the origin, coalescing free
// space. Because every task is loaded from a position-free VBS, this
// is a pure runtime operation — the paper's motivating scenario for
// relocation. It returns the number of tasks moved.
func (c *Controller) Compact() (moved int, err error) {
	// Deterministic order: by current position, row-major.
	ids := make([]fabric.TaskID, 0, len(c.tasks))
	for id := range c.tasks {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(a, b int) bool {
		ta, tb := c.tasks[ids[a]], c.tasks[ids[b]]
		if ta.Y != tb.Y {
			return ta.Y < tb.Y
		}
		if ta.X != tb.X {
			return ta.X < tb.X
		}
		return ids[a] < ids[b]
	})
	g := c.fab.Grid()
	for _, id := range ids {
		t := c.tasks[id]
	scan:
		for y := 0; y <= t.Y; y++ {
			maxX := g.Width - t.VBS.TaskW
			if y == t.Y {
				maxX = t.X - 1
			}
			for x := 0; x <= maxX; x++ {
				if x == t.X && y == t.Y {
					continue
				}
				if err := c.Relocate(id, x, y); err == nil {
					moved++
					break scan
				}
			}
		}
	}
	return moved, nil
}

// writeTask de-virtualizes the VBS into the fabric configuration at
// (x0, y0), decoding entries in parallel across the worker pool.
func (c *Controller) writeTask(v *core.VBS, x0, y0 int) error {
	cfgs, err := c.DecodeParallel(v)
	if err != nil {
		return err
	}
	raw := c.fab.Config()
	for i := range v.Entries {
		e := &v.Entries[i]
		cw, _ := v.RegionDims(e.X, e.Y)
		baseX := x0 + e.X*v.Cluster
		baseY := y0 + e.Y*v.Cluster
		for m, cfg := range cfgs[i] {
			mi, mj := m%cw, m/cw
			raw.At(baseX+mi, baseY+mj).Vec().Or(cfg.Vec())
		}
	}
	return nil
}

// DecodeParallel de-virtualizes every entry of the VBS concurrently:
// each region decodes independently (the property Section II-C calls
// out), so the work distributes over the controller's workers. The
// result is indexed like v.Entries; it is deterministic regardless of
// worker count.
func (c *Controller) DecodeParallel(v *core.VBS) ([][]*arch.MacroConfig, error) {
	n := len(v.Entries)
	out := make([][]*arch.MacroConfig, n)
	if n == 0 {
		return out, nil
	}
	workers := c.workers
	if workers > n {
		workers = n
	}
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int, n)
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for i := range next {
				cfgs, err := v.DecodeEntry(i)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("controller: entry %d: %w", i, err)
					}
					mu.Unlock()
					continue
				}
				out[i] = cfgs
			}
		}()
	}
	wg.Wait()
	if firstErr != nil {
		return nil, firstErr
	}
	return out, nil
}
