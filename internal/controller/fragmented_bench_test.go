package controller

import (
	"fmt"
	"testing"

	"repro/internal/arch"
	"repro/internal/core"
	"repro/internal/devirt"
	"repro/internal/fabric"
)

// feedthroughTask hand-builds a w×h-macro VBS in which every macro
// routes its west boundary wire to its east boundary wire. Two such
// tasks abutting horizontally contend for every shared channel wire,
// so a free slot between two of them passes the overlap check but
// fails seam analysis — the expensive rejection mode of placement.
func feedthroughTask(b testing.TB, w, h int) *core.VBS {
	b.Helper()
	p := arch.Params{W: 8, K: 6}
	r := devirt.Region{P: p, Nominal: 1, CW: 1, CH: 1}
	v := &core.VBS{P: p, Cluster: 1, TaskW: w, TaskH: h}
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			v.Entries = append(v.Entries, core.Entry{
				X: x, Y: y,
				Conns: []core.Conn{{In: r.CodeWest(0, 0), Out: r.CodeEast(0, 0)}},
			})
		}
	}
	if err := v.Validate(); err != nil {
		b.Fatal(err)
	}
	return v
}

// fragmentedController builds the placement worst case on a side×side
// fabric: k-wide columns of feed-through blockers with k-wide free
// strips between them. Every free strip admits the k×k candidate
// geometrically but fails seam analysis against the blockers on both
// sides; only the strip tail at the bottom-right (where one blocker is
// omitted) accepts it. A placement scan therefore rejects dozens of
// full-size candidate slots — each costing a full write/erase in the
// seed's probing — before succeeding.
func fragmentedController(b *testing.B, side, k int) (*Controller, *Decoded) {
	b.Helper()
	v := feedthroughTask(b, k, k)
	d, err := DecodeVBS(v, 1)
	if err != nil {
		b.Fatal(err)
	}
	f, err := fabric.New(arch.Params{W: 8, K: 6}, arch.Grid{Width: side, Height: side})
	if err != nil {
		b.Fatal(err)
	}
	c := New(f, 1)
	lastX := (side - k) / (2 * k) * (2 * k)
	lastY := (side - k) / k * k
	for x := 0; x+k <= side; x += 2 * k {
		for y := 0; y+k <= side; y += k {
			if x == lastX && y == lastY {
				continue // omit the last blocker: the landing zone
			}
			if _, err := c.LoadDecodedAt(d, x, y); err != nil {
				b.Fatalf("blocker at (%d,%d): %v", x, y, err)
			}
		}
	}
	return c, d
}

// loadWriteScan reproduces the seed's placement loop: every candidate
// slot is probed by fully committing the decode (allocate, write, seam
// analysis) and erasing it again on failure.
func loadWriteScan(c *Controller, d *Decoded) (*Task, error) {
	g := c.Fabric().Grid()
	v := d.VBS
	for y := 0; y+v.TaskH <= g.Height; y++ {
		for x := 0; x+v.TaskW <= g.Width; x++ {
			if c.Fabric().OwnerAt(x, y) != fabric.NoTask {
				continue
			}
			if t, err := c.LoadDecodedAt(d, x, y); err == nil {
				return t, nil
			}
		}
	}
	return nil, fmt.Errorf("no slot")
}

// BenchmarkFragmentedLoad compares placement on a fragmented fabric:
// dryrun is the current LoadDecoded (dry-run admission, one committed
// write), writescan is the seed's write/erase probing. Run with
// -benchtime=1x in CI as a smoke test; run normally to compare.
func BenchmarkFragmentedLoad(b *testing.B) {
	const (
		side = 24
		k    = 4
	)
	run := func(load func(*Controller, *Decoded) (*Task, error)) func(*testing.B) {
		return func(b *testing.B) {
			c, d := fragmentedController(b, side, k)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				t, err := load(c, d)
				if err != nil {
					b.Fatal(err)
				}
				if err := c.Unload(t.ID); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	b.Run("dryrun", run((*Controller).LoadDecoded))
	b.Run("writescan", run(loadWriteScan))
}
