package controller

import (
	"errors"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/arch"
	"repro/internal/bits"
	"repro/internal/core"
	"repro/internal/devirt"
	"repro/internal/fabric"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/rrg"
	"repro/internal/sched"
)

// makeTask compiles a small random task to a VBS.
func makeTask(t testing.TB, seed int64, nLB, size, w, cluster int) *core.VBS {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	d := &netlist.Design{Name: "task", K: 6}
	var nets []netlist.NetID
	for i := 0; i < 4; i++ {
		_, n := d.AddInputPad("pi")
		nets = append(nets, n)
	}
	for i := 0; i < nLB; i++ {
		nin := rng.Intn(4) + 1
		ins := make([]netlist.NetID, nin)
		for j := range ins {
			ins[j] = nets[rng.Intn(len(nets))]
		}
		truth := bits.NewVec(64)
		for b := 0; b < 64; b++ {
			truth.Set(b, rng.Intn(2) == 0)
		}
		_, n := d.AddLogicBlock("lb", ins, truth, false)
		nets = append(nets, n)
	}
	for i := 0; i < 4; i++ {
		d.AddOutputPad("po", nets[len(nets)-1-i])
	}
	pl, err := place.Place(d, arch.GridForSize(size), place.Options{Seed: seed, InnerNum: 1, FastExit: true})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := rrg.Build(arch.Params{W: w, K: 6}, pl.Grid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := route.Route(d, pl, gr, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	v, _, err := core.Encode(d, pl, res, core.EncodeOptions{Cluster: cluster})
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func newController(t testing.TB, gridW, gridH, w, workers int) *Controller {
	t.Helper()
	f, err := fabric.New(arch.Params{W: w, K: 6}, arch.Grid{Width: gridW, Height: gridH})
	if err != nil {
		t.Fatal(err)
	}
	return New(f, workers)
}

func TestLoadUnload(t *testing.T) {
	v := makeTask(t, 1, 12, 4, 8, 1)
	c := newController(t, 16, 16, 8, 2)
	task, err := c.Load(v)
	if err != nil {
		t.Fatal(err)
	}
	if c.Tasks() != 1 {
		t.Errorf("Tasks = %d", c.Tasks())
	}
	if _, ok := c.Task(task.ID); !ok {
		t.Error("task not retrievable")
	}
	// Fabric region owned and configured.
	if c.Fabric().OwnerAt(task.X, task.Y) != task.ID {
		t.Error("fabric not owned")
	}
	used := 0
	for x := 0; x < v.TaskW; x++ {
		for y := 0; y < v.TaskH; y++ {
			used += c.Fabric().Config().At(task.X+x, task.Y+y).Vec().OnesCount()
		}
	}
	if used == 0 {
		t.Error("no configuration written")
	}
	if err := c.Unload(task.ID); err != nil {
		t.Fatal(err)
	}
	if c.Tasks() != 0 || c.Fabric().FreeMacros() != 16*16 {
		t.Error("unload incomplete")
	}
	if err := c.Unload(task.ID); err == nil {
		t.Error("double unload accepted")
	}
}

// TestMultiTask loads several tasks and checks disjoint placement.
func TestMultiTask(t *testing.T) {
	c := newController(t, 20, 20, 8, 2)
	var tasks []*Task
	for seed := int64(1); seed <= 3; seed++ {
		v := makeTask(t, seed, 10, 4, 8, 1)
		task, err := c.Load(v)
		if err != nil {
			t.Fatalf("task %d: %v", seed, err)
		}
		tasks = append(tasks, task)
	}
	if c.Tasks() != 3 {
		t.Fatalf("Tasks = %d", c.Tasks())
	}
	for i, a := range tasks {
		for _, b := range tasks[i+1:] {
			if a.X < b.X+b.VBS.TaskW && b.X < a.X+a.VBS.TaskW &&
				a.Y < b.Y+b.VBS.TaskH && b.Y < a.Y+a.VBS.TaskH {
				t.Errorf("tasks %d and %d overlap", a.ID, b.ID)
			}
		}
	}
}

// TestParallelDecodeMatchesSequential: the controller's parallel
// decode must equal the reference decoder bit for bit, at any worker
// count.
func TestParallelDecodeMatchesSequential(t *testing.T) {
	v := makeTask(t, 4, 16, 5, 8, 2)
	ref, err := v.Decode()
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 2, 7} {
		c := newController(t, v.TaskW, v.TaskH, 8, workers)
		task, err := c.LoadAt(v, 0, 0)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		for x := 0; x < v.TaskW; x++ {
			for y := 0; y < v.TaskH; y++ {
				if !c.Fabric().Config().At(x, y).Vec().Equal(ref.At(x, y).Vec()) {
					t.Fatalf("workers=%d: macro (%d,%d) differs from reference", workers, x, y)
				}
			}
		}
		if err := c.Unload(task.ID); err != nil {
			t.Fatal(err)
		}
	}
}

// TestRelocate moves a task and verifies the configuration is a
// translation of the original.
func TestRelocate(t *testing.T) {
	v := makeTask(t, 5, 12, 4, 8, 1)
	c := newController(t, 20, 20, 8, 2)
	task, err := c.LoadAt(v, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	before := make([]*bits.Vec, 0, v.TaskW*v.TaskH)
	for y := 0; y < v.TaskH; y++ {
		for x := 0; x < v.TaskW; x++ {
			before = append(before, c.Fabric().Config().At(x, y).Vec().Clone())
		}
	}
	if err := c.Relocate(task.ID, 9, 7); err != nil {
		t.Fatal(err)
	}
	if task.X != 9 || task.Y != 7 {
		t.Errorf("task position (%d,%d)", task.X, task.Y)
	}
	k := 0
	for y := 0; y < v.TaskH; y++ {
		for x := 0; x < v.TaskW; x++ {
			got := c.Fabric().Config().At(9+x, 7+y).Vec()
			if !got.Equal(before[k]) {
				t.Fatalf("macro (%d,%d) not a translation", x, y)
			}
			k++
		}
	}
	// Old region cleared.
	if c.Fabric().Config().At(0, 0).Vec().OnesCount() != 0 {
		t.Error("old region not cleared")
	}
	if c.Fabric().OwnerAt(0, 0) != fabric.NoTask {
		t.Error("old region still owned")
	}
}

func TestRelocateFailureRestores(t *testing.T) {
	v := makeTask(t, 6, 10, 4, 8, 1)
	c := newController(t, 14, 14, 8, 2)
	task, err := c.LoadAt(v, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	blocker := makeTask(t, 7, 8, 4, 8, 1)
	if _, err := c.LoadAt(blocker, 7, 7); err != nil {
		t.Fatal(err)
	}
	// Target overlaps the blocker: relocation must fail and restore.
	if err := c.Relocate(task.ID, 6, 6); err == nil {
		t.Fatal("relocation into occupied space accepted")
	}
	if task.X != 0 || task.Y != 0 {
		t.Errorf("task moved to (%d,%d) despite failure", task.X, task.Y)
	}
	if c.Fabric().OwnerAt(0, 0) != task.ID {
		t.Error("task region not restored")
	}
	used := 0
	for x := 0; x < v.TaskW; x++ {
		for y := 0; y < v.TaskH; y++ {
			used += c.Fabric().Config().At(x, y).Vec().OnesCount()
		}
	}
	if used == 0 {
		t.Error("configuration not restored after failed relocation")
	}
}

func TestLoadRejectsWrongArch(t *testing.T) {
	v := makeTask(t, 8, 8, 4, 8, 1)
	c := newController(t, 16, 16, 9, 2) // W=9 fabric, task compiled for W=8
	if _, err := c.Load(v); err == nil {
		t.Error("architecture mismatch accepted")
	}
}

func TestLoadFullFabric(t *testing.T) {
	v := makeTask(t, 9, 8, 4, 8, 1)
	c := newController(t, v.TaskW, v.TaskH, 8, 1)
	if _, err := c.Load(v); err != nil {
		t.Fatalf("exact-fit load: %v", err)
	}
	v2 := makeTask(t, 10, 8, 4, 8, 1)
	if _, err := c.Load(v2); err == nil {
		t.Error("second task on full fabric accepted")
	}
}

func BenchmarkParallelDecode(b *testing.B) {
	v := makeTask(b, 11, 30, 7, 8, 2)
	c := newController(b, v.TaskW, v.TaskH, 8, 4)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Decode(v); err != nil {
			b.Fatal(err)
		}
	}
}

// TestLoadDecodedSkipsDecode: the cache-hit path must not touch the
// decode counters, and a shared Decoded must load on several fabrics.
func TestLoadDecodedSkipsDecode(t *testing.T) {
	v := makeTask(t, 12, 10, 4, 8, 1)
	d, err := DecodeVBS(v, 2)
	if err != nil {
		t.Fatal(err)
	}
	if d.SizeBits() == 0 {
		t.Error("SizeBits = 0")
	}
	ref, err := v.Decode()
	if err != nil {
		t.Fatal(err)
	}
	for fi := 0; fi < 2; fi++ {
		c := newController(t, 16, 16, 8, 2)
		task, err := c.LoadDecodedAt(d, 1, 2)
		if err != nil {
			t.Fatal(err)
		}
		for x := 0; x < v.TaskW; x++ {
			for y := 0; y < v.TaskH; y++ {
				if !c.Fabric().Config().At(1+x, 2+y).Vec().Equal(ref.At(x, y).Vec()) {
					t.Fatalf("fabric %d: macro (%d,%d) differs from reference", fi, x, y)
				}
			}
		}
		st := c.Stats()
		if st.Decodes != 0 {
			t.Errorf("fabric %d: Decodes = %d after decoded load", fi, st.Decodes)
		}
		if st.Loads != 1 || st.Tasks != 1 {
			t.Errorf("fabric %d: Loads = %d, Tasks = %d", fi, st.Loads, st.Tasks)
		}
		_ = task
	}
}

// TestRelocateReusesDecode: relocation must not re-decode.
func TestRelocateReusesDecode(t *testing.T) {
	v := makeTask(t, 13, 10, 4, 8, 1)
	c := newController(t, 20, 20, 8, 2)
	task, err := c.LoadAt(v, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if got := c.Stats().Decodes; got != 1 {
		t.Fatalf("Decodes = %d after load", got)
	}
	if err := c.Relocate(task.ID, 8, 8); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Decodes != 1 {
		t.Errorf("Decodes = %d after relocation, want 1", st.Decodes)
	}
	if st.Relocations != 1 {
		t.Errorf("Relocations = %d", st.Relocations)
	}
}

// TestConcurrentOps hammers one controller from many goroutines; run
// with -race. Each goroutine loads, relocates and unloads its own
// pre-decoded task.
func TestConcurrentOps(t *testing.T) {
	const clients = 8
	decs := make([]*Decoded, clients)
	for i := range decs {
		v := makeTask(t, int64(40+i%3), 8, 4, 8, 1)
		d, err := DecodeVBS(v, 2)
		if err != nil {
			t.Fatal(err)
		}
		decs[i] = d
	}
	c := newController(t, 32, 32, 8, 2)
	var wg sync.WaitGroup
	wg.Add(clients)
	for i := 0; i < clients; i++ {
		go func(d *Decoded) {
			defer wg.Done()
			for iter := 0; iter < 5; iter++ {
				task, err := c.LoadDecoded(d)
				if err != nil {
					continue // fabric momentarily full
				}
				_, _ = c.Compact()
				_ = c.Unload(task.ID)
			}
		}(decs[i])
	}
	wg.Wait()
	if c.Tasks() != 0 {
		t.Errorf("Tasks = %d after all unloads", c.Tasks())
	}
	if free := c.Fabric().FreeMacros(); free != 32*32 {
		t.Errorf("FreeMacros = %d", free)
	}
}

// TestCompact: after unloading a task in the middle, Compact must pull
// the remaining tasks toward the origin, coalescing free space.
func TestCompact(t *testing.T) {
	c := newController(t, 24, 24, 8, 2)
	var ids []fabric.TaskID
	for seed := int64(20); seed < 23; seed++ {
		v := makeTask(t, seed, 8, 4, 8, 1)
		task, err := c.Load(v)
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, task.ID)
	}
	// Free the first slot; the others should slide into it.
	first, _ := c.Task(ids[0])
	w := first.VBS.TaskW
	if err := c.Unload(ids[0]); err != nil {
		t.Fatal(err)
	}
	moved, err := c.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("Compact moved nothing despite a freed slot")
	}
	second, _ := c.Task(ids[1])
	if second.X != 0 || second.Y != 0 {
		t.Errorf("task %d at (%d,%d), want origin", ids[1], second.X, second.Y)
	}
	// All tasks still loaded and regions owned consistently.
	if c.Tasks() != 2 {
		t.Errorf("Tasks = %d", c.Tasks())
	}
	_ = w
}

// TestCompactIdempotent: a second Compact on an already-compacted
// fabric moves nothing.
func TestCompactIdempotent(t *testing.T) {
	c := newController(t, 20, 20, 8, 1)
	for seed := int64(30); seed < 32; seed++ {
		if _, err := c.Load(makeTask(t, seed, 6, 4, 8, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := c.Compact(); err != nil {
		t.Fatal(err)
	}
	moved, err := c.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if moved != 0 {
		t.Errorf("second Compact moved %d tasks", moved)
	}
}

// seamTask hand-builds a 1x1-macro VBS whose single connection routes
// a west boundary wire to an east boundary wire, so two adjacent
// copies contend for the shared channel wire between them.
func seamTask(t testing.TB) *core.VBS {
	t.Helper()
	p := arch.Params{W: 8, K: 6}
	r := devirt.Region{P: p, Nominal: 1, CW: 1, CH: 1}
	v := &core.VBS{
		P: p, Cluster: 1, TaskW: 1, TaskH: 1,
		Entries: []core.Entry{{
			Conns: []core.Conn{{In: r.CodeWest(0, 0), Out: r.CodeEast(0, 0)}},
		}},
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestRelocateRejectsSeamConflict: relocation must apply the same
// seam analysis as loading, and restore the task when it fails.
func TestRelocateRejectsSeamConflict(t *testing.T) {
	v := seamTask(t)
	f, err := fabric.New(arch.Params{W: 8, K: 6}, arch.Grid{Width: 6, Height: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := New(f, 1)
	a, err := c.LoadAt(v, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.LoadAt(v, 3, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Loading directly adjacent is refused by the load path...
	if _, err := c.LoadAt(v, 1, 0); err == nil {
		t.Fatal("adjacent conflicting load accepted")
	}
	// ...so relocation there must be refused too, with B restored.
	if err := c.Relocate(b.ID, 1, 0); err == nil {
		t.Fatal("relocation into seam conflict accepted")
	}
	if b.X != 3 || b.Y != 0 {
		t.Errorf("task moved to (%d,%d) despite seam conflict", b.X, b.Y)
	}
	if c.Fabric().OwnerAt(3, 0) != b.ID {
		t.Error("task region not restored")
	}
	if c.Fabric().Config().At(3, 0).Vec().OnesCount() == 0 {
		t.Error("configuration not restored after refused relocation")
	}
	if got := c.Stats().Relocations; got != 0 {
		t.Errorf("Relocations = %d after refused move", got)
	}
	// A harmless move still works.
	if err := c.Relocate(b.ID, 5, 0); err != nil {
		t.Fatalf("conflict-free relocation refused: %v", err)
	}
	_ = a
}

// quietTask hand-builds a 1x1-macro VBS with no connections: it can
// abut anything without seam conflicts, isolating placement geometry.
func quietTask(t testing.TB) *core.VBS {
	t.Helper()
	v := &core.VBS{
		P: arch.Params{W: 8, K: 6}, Cluster: 1, TaskW: 1, TaskH: 1,
		Entries: []core.Entry{{}},
	}
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	return v
}

// TestCanPlaceDoesNotMutate: probing every position of a populated
// fabric must leave ownership and configuration untouched.
func TestCanPlaceDoesNotMutate(t *testing.T) {
	v := seamTask(t)
	f, err := fabric.New(arch.Params{W: 8, K: 6}, arch.Grid{Width: 6, Height: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := New(f, 1)
	if _, err := c.LoadAt(v, 0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadAt(v, 3, 0); err != nil {
		t.Fatal(err)
	}
	d, err := DecodeVBS(v, 1)
	if err != nil {
		t.Fatal(err)
	}
	owners := make([]fabric.TaskID, 6)
	configs := make([]*bits.Vec, 6)
	for x := 0; x < 6; x++ {
		owners[x] = f.OwnerAt(x, 0)
		configs[x] = f.Config().At(x, 0).Vec().Clone()
	}
	for x := 0; x < 6; x++ {
		_ = c.CanPlace(d, x, 0)
	}
	for x := 0; x < 6; x++ {
		if f.OwnerAt(x, 0) != owners[x] {
			t.Errorf("CanPlace mutated owner of (%d,0)", x)
		}
		if !f.Config().At(x, 0).Vec().Equal(configs[x]) {
			t.Errorf("CanPlace mutated configuration of (%d,0)", x)
		}
	}
}

// TestCanPlaceMatchesCommit: the dry-run verdict must agree with the
// write-then-verify load at every position.
func TestCanPlaceMatchesCommit(t *testing.T) {
	v := seamTask(t)
	d, err := DecodeVBS(v, 1)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *Controller {
		f, err := fabric.New(arch.Params{W: 8, K: 6}, arch.Grid{Width: 6, Height: 1})
		if err != nil {
			t.Fatal(err)
		}
		c := New(f, 1)
		if _, err := c.LoadAt(v, 0, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := c.LoadAt(v, 3, 0); err != nil {
			t.Fatal(err)
		}
		return c
	}
	dry := mk()
	for x := 0; x < 6; x++ {
		want := func() bool {
			live := mk()
			_, err := live.LoadDecodedAt(d, x, 0)
			return err == nil
		}()
		if got := dry.CanPlace(d, x, 0) == nil; got != want {
			t.Errorf("x=%d: CanPlace = %v, commit = %v", x, got, want)
		}
	}
}

// TestLoadDecodedPolicyBestFit: best-fit must pick the snug slot
// first-fit would skip.
func TestLoadDecodedPolicyBestFit(t *testing.T) {
	v := quietTask(t)
	d, err := DecodeVBS(v, 1)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() *Controller {
		f, err := fabric.New(arch.Params{W: 8, K: 6}, arch.Grid{Width: 4, Height: 1})
		if err != nil {
			t.Fatal(err)
		}
		c := New(f, 1)
		if _, err := c.LoadAt(v, 2, 0); err != nil {
			t.Fatal(err)
		}
		return c
	}
	ff, err := mk().LoadDecodedPolicy(d, sched.FirstFit())
	if err != nil {
		t.Fatal(err)
	}
	if ff.X != 0 {
		t.Errorf("first-fit placed at x=%d, want 0", ff.X)
	}
	bf, err := mk().LoadDecodedPolicy(d, sched.BestFit())
	if err != nil {
		t.Fatal(err)
	}
	// (3,0) is walled by the task at (2,0) and the fabric edge: gap 0.
	if bf.X != 3 {
		t.Errorf("best-fit placed at x=%d, want 3", bf.X)
	}
}

// TestCompactPropagatesRestoreFailure: when a refused relocation
// cannot restore the task (its old region was corrupted away), Compact
// must surface the double fault instead of discarding it.
func TestCompactPropagatesRestoreFailure(t *testing.T) {
	v := seamTask(t)
	f, err := fabric.New(arch.Params{W: 8, K: 6}, arch.Grid{Width: 6, Height: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := New(f, 1)
	a, err := c.LoadAt(v, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.LoadAt(v, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the fabric behind the controller's back: steal B's
	// region, so the restore after a refused move has nowhere to go.
	f.Release(b.ID)
	if err := f.Allocate(99, 2, 0, 1, 1); err != nil {
		t.Fatal(err)
	}
	// Compact tries to slide B to (1,0); the seam conflict with A
	// refuses the move and the restore to the stolen (2,0) fails.
	moved, err := c.Compact()
	if err == nil {
		t.Fatal("Compact swallowed the restore failure")
	}
	if !errors.Is(err, ErrRestoreFailed) {
		t.Errorf("Compact error = %v, want ErrRestoreFailed", err)
	}
	if moved != 0 {
		t.Errorf("moved = %d", moved)
	}
	// The documented degraded state: B is still tracked but regionless.
	if _, ok := c.Task(b.ID); !ok {
		t.Error("task dropped from tracking")
	}
	_ = a
}
