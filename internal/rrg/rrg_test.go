package rrg

import (
	"testing"

	"repro/internal/arch"
)

func small(t *testing.T) *Graph {
	t.Helper()
	gr, err := Build(arch.PaperExample(), arch.Grid{Width: 4, Height: 3})
	if err != nil {
		t.Fatal(err)
	}
	return gr
}

func TestBuildRejectsBadInput(t *testing.T) {
	if _, err := Build(arch.Params{}, arch.Grid{Width: 2, Height: 2}); err == nil {
		t.Error("bad params should fail")
	}
	if _, err := Build(arch.PaperExample(), arch.Grid{}); err == nil {
		t.Error("bad grid should fail")
	}
}

func TestNodeCount(t *testing.T) {
	gr := small(t)
	want := 4 * 3 * (2*5 + 7)
	if gr.NumNodes() != want {
		t.Errorf("NumNodes = %d, want %d", gr.NumNodes(), want)
	}
}

func TestNodeInfoRoundTrip(t *testing.T) {
	gr := small(t)
	for x := 0; x < 4; x++ {
		for y := 0; y < 3; y++ {
			for tr := 0; tr < 5; tr++ {
				n := gr.NodeHW(x, y, tr)
				nx, ny, k, i := gr.NodeInfo(n)
				if nx != x || ny != y || k != NodeHWire || i != tr {
					t.Fatalf("HW(%d,%d,%d) -> (%d,%d,%v,%d)", x, y, tr, nx, ny, k, i)
				}
				n = gr.NodeVW(x, y, tr)
				if nx, ny, k, i = gr.NodeInfo(n); nx != x || ny != y || k != NodeVWire || i != tr {
					t.Fatalf("VW round trip failed")
				}
			}
			for p := 0; p < 7; p++ {
				n := gr.NodePin(x, y, p)
				nx, ny, k, i := gr.NodeInfo(n)
				if nx != x || ny != y || k != NodePinWire || i != p {
					t.Fatalf("Pin round trip failed")
				}
			}
		}
	}
}

// TestEdgeCount checks the exact edge count: each macro contributes its
// switch list minus switches referencing off-fabric neighbour wires.
func TestEdgeCount(t *testing.T) {
	p := arch.PaperExample()
	g := arch.Grid{Width: 4, Height: 3}
	gr, err := Build(p, g)
	if err != nil {
		t.Fatal(err)
	}
	// Full macro: 6W sb pairs + L*W junctions.
	full := 6*p.W + p.L()*p.W
	// A west-edge macro loses the 3 pairs touching InW per track; a
	// south-edge macro loses the 3 pairs touching InS; the corner loses
	// 5 of 6 pairs (only HW-VW remains).
	want := 0
	for x := 0; x < g.Width; x++ {
		for y := 0; y < g.Height; y++ {
			e := full
			switch {
			case x == 0 && y == 0:
				e -= 5 * p.W
			case x == 0 || y == 0:
				e -= 3 * p.W
			}
			want += e
		}
	}
	if gr.NumEdges() != want {
		t.Errorf("NumEdges = %d, want %d", gr.NumEdges(), want)
	}
}

// TestWireSharing verifies that the InW conductor of macro (x, y) is
// the HW node of macro (x-1, y): a switch-box edge from (x,y) must
// connect the neighbour's wire.
func TestWireSharing(t *testing.T) {
	gr := small(t)
	p := gr.P
	// In macro (1,1), the SB pair (InW(2), VW(2)) connects node
	// HW(0,1,2) with node VW(1,1,2), owned by macro (1,1).
	a := gr.NodeHW(0, 1, 2)
	b := gr.NodeVW(1, 1, 2)
	macroIdx := int32(gr.G.Index(1, 1))
	found := false
	for _, e := range gr.Adj(a) {
		if e.To == b && e.Macro == macroIdx {
			sw := p.Switches()[e.Switch]
			// The switch's local conductors must be InW(2) and VW(2).
			k1, i1 := p.CondInfo(sw.A)
			k2, i2 := p.CondInfo(sw.B)
			if (k1 == arch.KindInW && i1 == 2 && k2 == arch.KindVW && i2 == 2) ||
				(k2 == arch.KindInW && i2 == 2 && k1 == arch.KindVW && i1 == 2) {
				found = true
			}
		}
	}
	if !found {
		t.Error("expected SB edge between neighbour HW and own VW not found")
	}
}

// TestAdjacencySymmetric checks both directed halves exist with the
// same switch annotation.
func TestAdjacencySymmetric(t *testing.T) {
	gr := small(t)
	for n := 0; n < gr.NumNodes(); n++ {
		for _, e := range gr.Adj(NodeID(n)) {
			back := false
			for _, r := range gr.Adj(e.To) {
				if r.To == NodeID(n) && r.Macro == e.Macro && r.Switch == e.Switch {
					back = true
					break
				}
			}
			if !back {
				t.Fatalf("edge %s -> %s has no reverse", gr.NodeName(NodeID(n)), gr.NodeName(e.To))
			}
		}
	}
}

// TestPinReachability: from any pin wire one can reach a neighbouring
// macro's pin wire through the graph (basic connectivity sanity).
func TestPinReachability(t *testing.T) {
	gr := small(t)
	src := gr.NodePin(1, 1, 0)
	dst := gr.NodePin(2, 1, 1)
	visited := make([]bool, gr.NumNodes())
	queue := []NodeID{src}
	visited[src] = true
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		if n == dst {
			return
		}
		for _, e := range gr.Adj(n) {
			if !visited[e.To] {
				visited[e.To] = true
				queue = append(queue, e.To)
			}
		}
	}
	t.Error("pin (1,1)#0 cannot reach pin (2,1)#1")
}

func TestLocalCond(t *testing.T) {
	gr := small(t)
	p := gr.P
	// HW(1,1,3) inside its own macro is CondHW(3).
	n := gr.NodeHW(1, 1, 3)
	if c, ok := gr.LocalCond(n, 1, 1); !ok || c != p.CondHW(3) {
		t.Errorf("own macro: got %v,%v", c, ok)
	}
	// Inside (2,1) it is InW(3).
	if c, ok := gr.LocalCond(n, 2, 1); !ok || c != p.CondInW(3) {
		t.Errorf("east neighbour: got %v,%v", c, ok)
	}
	// It does not touch (3,1).
	if _, ok := gr.LocalCond(n, 3, 1); ok {
		t.Error("wire should not touch (3,1)")
	}
	// VW(1,1,2) is InS(2) inside (1,2).
	v := gr.NodeVW(1, 1, 2)
	if c, ok := gr.LocalCond(v, 1, 2); !ok || c != p.CondInS(2) {
		t.Errorf("north neighbour: got %v,%v", c, ok)
	}
	// Pin wires touch only their own macro.
	pw := gr.NodePin(2, 2, 4)
	if c, ok := gr.LocalCond(pw, 2, 2); !ok || c != p.CondPin(4) {
		t.Errorf("pin: got %v,%v", c, ok)
	}
	if _, ok := gr.LocalCond(pw, 1, 2); ok {
		t.Error("pin should not touch neighbour")
	}
}

func TestMacrosTouching(t *testing.T) {
	gr := small(t)
	g := gr.G
	// Interior horizontal wire touches its macro and the east one.
	ms := gr.MacrosTouching(gr.NodeHW(1, 1, 0))
	if len(ms) != 2 || ms[0] != g.Index(1, 1) || ms[1] != g.Index(2, 1) {
		t.Errorf("HW touching = %v", ms)
	}
	// East-edge horizontal wire touches only its macro.
	ms = gr.MacrosTouching(gr.NodeHW(3, 1, 0))
	if len(ms) != 1 || ms[0] != g.Index(3, 1) {
		t.Errorf("edge HW touching = %v", ms)
	}
	// Pin wire touches one macro.
	ms = gr.MacrosTouching(gr.NodePin(2, 1, 3))
	if len(ms) != 1 {
		t.Errorf("pin touching = %v", ms)
	}
	// Vertical wire touches its macro and the north one.
	ms = gr.MacrosTouching(gr.NodeVW(1, 1, 2))
	if len(ms) != 2 || ms[1] != g.Index(1, 2) {
		t.Errorf("VW touching = %v", ms)
	}
}

func TestNodeNameAndKindString(t *testing.T) {
	gr := small(t)
	if got := gr.NodeName(gr.NodeHW(1, 2, 3)); got != "hw(1,2)#3" {
		t.Errorf("NodeName = %q", got)
	}
	if gr.NodeName(NoNode) != "none" {
		t.Error("NodeName(NoNode)")
	}
	if NodeHWire.String() != "hw" || NodeVWire.String() != "vw" || NodePinWire.String() != "pin" {
		t.Error("NodeKind strings")
	}
}

func BenchmarkBuildMedium(b *testing.B) {
	p := arch.Default()
	g := arch.GridForSize(20)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		gr, err := Build(p, g)
		if err != nil {
			b.Fatal(err)
		}
		_ = gr.NumEdges()
	}
}
