// Package rrg builds the global routing-resource graph of a fabric:
// one node per physical conductor (horizontal wire, vertical wire or
// logic-block pin wire), one undirected edge per programmable switch.
// Every edge records which macro owns the switch and its index in that
// macro's canonical switch enumeration, so a routed tree maps directly
// onto raw configuration bits.
//
// Conductors are shared between adjacent macros: the InW(t) conductor
// of macro (x,y) is the HW(t) conductor of macro (x-1,y), so globally
// each macro contributes only its own HW, VW and pin wires. Macros on
// the west or south fabric edge have switch-box switches referring to
// nonexistent neighbour wires; those switches have no edge and their
// configuration bits stay zero (dead bits), keeping Nraw uniform across
// the grid as in the paper.
package rrg

import (
	"fmt"

	"repro/internal/arch"
)

// NodeID identifies a conductor in the graph.
type NodeID int32

// NoNode marks an absent node.
const NoNode NodeID = -1

// Edge is one directed half of a programmable switch.
type Edge struct {
	// To is the conductor on the far side.
	To NodeID
	// Macro is the grid index (arch.Grid.Index) of the macro owning the
	// switch.
	Macro int32
	// Switch indexes arch.Params.Switches() of the owning macro.
	Switch int32
}

// Graph is the routing-resource graph of a W-track fabric.
type Graph struct {
	P arch.Params
	G arch.Grid

	perMacro int // nodes contributed per macro: 2W + L
	offsets  []int32
	edges    []Edge
}

// Build constructs the graph for the given architecture and grid.
func Build(p arch.Params, g arch.Grid) (*Graph, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	gr := &Graph{P: p, G: g, perMacro: 2*p.W + p.L()}
	n := gr.NumNodes()

	// Two passes: count degrees, then fill CSR.
	deg := make([]int32, n)
	sws := p.Switches()
	forEachEdge := func(emit func(a, b NodeID, macro, sw int32)) {
		for y := 0; y < g.Height; y++ {
			for x := 0; x < g.Width; x++ {
				m := int32(g.Index(x, y))
				for si, sw := range sws {
					a := gr.GlobalNode(x, y, sw.A)
					b := gr.GlobalNode(x, y, sw.B)
					if a == NoNode || b == NoNode {
						continue
					}
					emit(a, b, m, int32(si))
				}
			}
		}
	}
	forEachEdge(func(a, b NodeID, _, _ int32) {
		deg[a]++
		deg[b]++
	})
	gr.offsets = make([]int32, n+1)
	for i := 0; i < n; i++ {
		gr.offsets[i+1] = gr.offsets[i] + deg[i]
	}
	gr.edges = make([]Edge, gr.offsets[n])
	fill := make([]int32, n)
	forEachEdge(func(a, b NodeID, macro, sw int32) {
		gr.edges[gr.offsets[a]+fill[a]] = Edge{To: b, Macro: macro, Switch: sw}
		fill[a]++
		gr.edges[gr.offsets[b]+fill[b]] = Edge{To: a, Macro: macro, Switch: sw}
		fill[b]++
	})
	return gr, nil
}

// NumNodes returns the node count: grid macros × (2W + L).
func (gr *Graph) NumNodes() int { return gr.G.NumMacros() * gr.perMacro }

// NumEdges returns the number of undirected switch edges.
func (gr *Graph) NumEdges() int { return len(gr.edges) / 2 }

// NodeHW returns the node of horizontal wire t of macro (x, y).
func (gr *Graph) NodeHW(x, y, t int) NodeID {
	return NodeID(gr.G.Index(x, y)*gr.perMacro + t)
}

// NodeVW returns the node of vertical wire t of macro (x, y).
func (gr *Graph) NodeVW(x, y, t int) NodeID {
	return NodeID(gr.G.Index(x, y)*gr.perMacro + gr.P.W + t)
}

// NodePin returns the node of pin wire p of macro (x, y).
func (gr *Graph) NodePin(x, y, pin int) NodeID {
	return NodeID(gr.G.Index(x, y)*gr.perMacro + 2*gr.P.W + pin)
}

// Adj returns the adjacency list of node n. The slice aliases internal
// storage and must not be modified.
func (gr *Graph) Adj(n NodeID) []Edge {
	return gr.edges[gr.offsets[n]:gr.offsets[n+1]]
}

// NodeKind classifies a global node.
type NodeKind int

// Global node kinds.
const (
	NodeHWire NodeKind = iota
	NodeVWire
	NodePinWire
)

func (k NodeKind) String() string {
	switch k {
	case NodeHWire:
		return "hw"
	case NodeVWire:
		return "vw"
	case NodePinWire:
		return "pin"
	default:
		return fmt.Sprintf("NodeKind(%d)", int(k))
	}
}

// NodeInfo decomposes a node into its owning macro coordinates, kind
// and index (track or pin number).
func (gr *Graph) NodeInfo(n NodeID) (x, y int, kind NodeKind, idx int) {
	m := int(n) / gr.perMacro
	local := int(n) % gr.perMacro
	x, y = gr.G.Coords(m)
	switch {
	case local < gr.P.W:
		return x, y, NodeHWire, local
	case local < 2*gr.P.W:
		return x, y, NodeVWire, local - gr.P.W
	default:
		return x, y, NodePinWire, local - 2*gr.P.W
	}
}

// NodeName renders a node for diagnostics, e.g. "hw(3,4)#2".
func (gr *Graph) NodeName(n NodeID) string {
	if n == NoNode {
		return "none"
	}
	x, y, k, i := gr.NodeInfo(n)
	return fmt.Sprintf("%s(%d,%d)#%d", k, x, y, i)
}

// GlobalNode resolves a local conductor of macro (x, y) to its global
// node: InW and InS map onto the west/south neighbour's wires. It
// returns NoNode for neighbour wires that fall off the fabric edge.
func (gr *Graph) GlobalNode(x, y int, c arch.Cond) NodeID {
	kind, idx := gr.P.CondInfo(c)
	switch kind {
	case arch.KindHW:
		return gr.NodeHW(x, y, idx)
	case arch.KindVW:
		return gr.NodeVW(x, y, idx)
	case arch.KindInW:
		if x == 0 {
			return NoNode
		}
		return gr.NodeHW(x-1, y, idx)
	case arch.KindInS:
		if y == 0 {
			return NoNode
		}
		return gr.NodeVW(x, y-1, idx)
	default:
		return gr.NodePin(x, y, idx)
	}
}

// LocalCond returns the conductor that global node n presents inside
// macro (x, y), or (CondNone, false) if n does not touch that macro.
// A horizontal wire of macro (x-1, y) appears as InW inside (x, y); a
// vertical wire of (x, y-1) appears as InS.
func (gr *Graph) LocalCond(n NodeID, x, y int) (arch.Cond, bool) {
	nx, ny, kind, idx := gr.NodeInfo(n)
	switch kind {
	case NodeHWire:
		if nx == x && ny == y {
			return gr.P.CondHW(idx), true
		}
		if nx == x-1 && ny == y {
			return gr.P.CondInW(idx), true
		}
	case NodeVWire:
		if nx == x && ny == y {
			return gr.P.CondVW(idx), true
		}
		if nx == x && ny == y-1 {
			return gr.P.CondInS(idx), true
		}
	case NodePinWire:
		if nx == x && ny == y {
			return gr.P.CondPin(idx), true
		}
	}
	return arch.CondNone, false
}

// MacrosTouching lists the grid indices of the macros a node's
// conductor extends into (one for pin wires, up to two for channel
// wires).
func (gr *Graph) MacrosTouching(n NodeID) []int {
	x, y, kind, _ := gr.NodeInfo(n)
	own := gr.G.Index(x, y)
	switch kind {
	case NodeHWire:
		if x+1 < gr.G.Width {
			return []int{own, gr.G.Index(x+1, y)}
		}
	case NodeVWire:
		if y+1 < gr.G.Height {
			return []int{own, gr.G.Index(x, y+1)}
		}
	}
	return []int{own}
}
