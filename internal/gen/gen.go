// Package gen synthesizes random-but-realistic packed circuits. The
// paper evaluates on the 20 largest MCNC benchmarks, which are not
// redistributable here; gen produces deterministic synthetic twins
// with controlled logic-block count, I/O count, fan-in, register
// fraction and wiring locality (a Rent's-rule-style recency bias), so
// that routed channel occupancy — the quantity VBS compression depends
// on — falls in the same regime. Package mcnc holds the per-benchmark
// calibrations.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/bits"
	"repro/internal/netlist"
)

// Params controls circuit synthesis. All fields must be set (no
// defaults) so profiles are explicit about their workload.
type Params struct {
	// Name labels the design.
	Name string
	// Seed makes generation deterministic.
	Seed int64
	// LBs is the number of logic blocks.
	LBs int
	// Inputs and Outputs are the primary I/O pad counts.
	Inputs, Outputs int
	// K is the LUT size.
	K int
	// AvgFanin is the mean number of used LUT inputs (1..K).
	AvgFanin float64
	// Locality is the probability that a LUT input comes from the
	// recent-net window rather than anywhere in the circuit; higher
	// values give more routable, lower-Rent circuits.
	Locality float64
	// Window is the recency window size in nets.
	Window int
	// RegFrac is the fraction of logic blocks with registered outputs.
	RegFrac float64
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.LBs < 1 {
		return fmt.Errorf("gen: LBs=%d", p.LBs)
	}
	if p.Inputs < 1 || p.Outputs < 1 {
		return fmt.Errorf("gen: need at least one input and one output")
	}
	if p.K < 2 || p.K > 16 {
		return fmt.Errorf("gen: K=%d", p.K)
	}
	if p.AvgFanin < 1 || p.AvgFanin > float64(p.K) {
		return fmt.Errorf("gen: AvgFanin=%.2f outside [1,%d]", p.AvgFanin, p.K)
	}
	if p.Locality < 0 || p.Locality > 1 {
		return fmt.Errorf("gen: Locality=%.2f", p.Locality)
	}
	if p.Window < 1 {
		return fmt.Errorf("gen: Window=%d", p.Window)
	}
	if p.RegFrac < 0 || p.RegFrac > 1 {
		return fmt.Errorf("gen: RegFrac=%.2f", p.RegFrac)
	}
	return nil
}

// Generate builds the synthetic design. The same Params always yield
// the same design.
func Generate(p Params) (*netlist.Design, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(p.Seed))
	d := &netlist.Design{Name: p.Name, K: p.K}

	nets := make([]netlist.NetID, 0, p.Inputs+p.LBs)
	for i := 0; i < p.Inputs; i++ {
		_, n := d.AddInputPad(fmt.Sprintf("pi%d", i))
		nets = append(nets, n)
	}

	// pickSource selects a driver net with recency bias.
	pickSource := func() netlist.NetID {
		if rng.Float64() < p.Locality && len(nets) > 1 {
			w := p.Window
			if w > len(nets) {
				w = len(nets)
			}
			// Geometric preference for the freshest nets within the
			// window, giving the short-fanout-dominated distribution of
			// real circuits.
			off := 0
			for off < w-1 && rng.Float64() < 0.55 {
				off++
			}
			return nets[len(nets)-1-off]
		}
		return nets[rng.Intn(len(nets))]
	}

	for i := 0; i < p.LBs; i++ {
		nin := faninSample(rng, p.AvgFanin, p.K)
		ins := make([]netlist.NetID, 0, nin)
		for j := 0; j < nin; j++ {
			src := pickSource()
			dup := false
			for _, e := range ins {
				if e == src {
					dup = true
					break
				}
			}
			if dup {
				j--
				if len(nets) <= nin { // tiny circuits: allow fewer inputs
					break
				}
				continue
			}
			ins = append(ins, src)
		}
		truth := bits.NewVec(1 << uint(p.K))
		for b := 0; b < truth.Len(); b++ {
			truth.Set(b, rng.Intn(2) == 0)
		}
		_, n := d.AddLogicBlock(fmt.Sprintf("lb%d", i), ins, truth, rng.Float64() < p.RegFrac)
		nets = append(nets, n)
	}

	// Outputs sample from the most recent nets so the output cone is
	// non-trivial.
	for i := 0; i < p.Outputs; i++ {
		pick := nets[len(nets)-1-rng.Intn(minInt(len(nets), 4*p.Outputs))]
		d.AddOutputPad(fmt.Sprintf("po%d", i), pick)
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("gen: produced invalid design: %w", err)
	}
	return d, nil
}

// faninSample draws a LUT input count with the given mean: the
// bulk of blocks use round(mean)±1 inputs, clamped to [1, k].
func faninSample(rng *rand.Rand, mean float64, k int) int {
	base := int(mean)
	frac := mean - float64(base)
	n := base
	if rng.Float64() < frac {
		n++
	}
	// Spread: ±1 with probability 0.25 each.
	switch r := rng.Float64(); {
	case r < 0.25:
		n--
	case r > 0.75:
		n++
	}
	if n < 1 {
		n = 1
	}
	if n > k {
		n = k
	}
	return n
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}
