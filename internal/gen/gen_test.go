package gen

import (
	"testing"

	"repro/internal/netlist"
)

func base() Params {
	return Params{
		Name: "t", Seed: 1, LBs: 200, Inputs: 12, Outputs: 10, K: 6,
		AvgFanin: 4.0, Locality: 0.85, Window: 64, RegFrac: 0.2,
	}
}

func TestGenerateValidDesign(t *testing.T) {
	d, err := Generate(base())
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Validate(); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.LogicBlocks != 200 || s.InputPads != 12 || s.OutputPads != 10 {
		t.Errorf("counts: %+v", s)
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(base())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(base())
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Blocks) != len(b.Blocks) || len(a.Nets) != len(b.Nets) {
		t.Fatal("sizes differ")
	}
	for i := range a.Blocks {
		if len(a.Blocks[i].Inputs) != len(b.Blocks[i].Inputs) {
			t.Fatalf("block %d fanin differs", i)
		}
		for j := range a.Blocks[i].Inputs {
			if a.Blocks[i].Inputs[j] != b.Blocks[i].Inputs[j] {
				t.Fatalf("block %d input %d differs", i, j)
			}
		}
		if a.Blocks[i].Kind == netlist.LogicBlock && !a.Blocks[i].Truth.Equal(b.Blocks[i].Truth) {
			t.Fatalf("block %d truth differs", i)
		}
	}
}

func TestGenerateSeedsDiffer(t *testing.T) {
	p := base()
	a, _ := Generate(p)
	p.Seed = 2
	b, _ := Generate(p)
	same := true
	for i := range a.Blocks {
		if a.Blocks[i].Kind != netlist.LogicBlock {
			continue
		}
		if len(a.Blocks[i].Inputs) != len(b.Blocks[i].Inputs) {
			same = false
			break
		}
		for j := range a.Blocks[i].Inputs {
			if a.Blocks[i].Inputs[j] != b.Blocks[i].Inputs[j] {
				same = false
			}
		}
	}
	if same {
		t.Error("different seeds produced identical connectivity")
	}
}

func TestGenerateFaninNearMean(t *testing.T) {
	p := base()
	p.LBs = 2000
	d, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	total, n := 0, 0
	for _, b := range d.Blocks {
		if b.Kind == netlist.LogicBlock {
			total += len(b.Inputs)
			n++
		}
	}
	mean := float64(total) / float64(n)
	if mean < 3.4 || mean > 4.6 {
		t.Errorf("mean fanin %.2f, want near 4.0", mean)
	}
}

func TestGenerateRegFrac(t *testing.T) {
	p := base()
	p.LBs = 2000
	p.RegFrac = 0.3
	d, err := Generate(p)
	if err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	frac := float64(s.Registered) / float64(s.LogicBlocks)
	if frac < 0.24 || frac > 0.36 {
		t.Errorf("registered fraction %.2f, want near 0.30", frac)
	}
}

func TestGenerateLocalityShortensNets(t *testing.T) {
	// Higher locality must raise the fraction of low-fanout nets being
	// consumed close to their producers; proxy: average index distance
	// between producer and consumer block.
	dist := func(locality float64) float64 {
		p := base()
		p.LBs = 1500
		p.Locality = locality
		d, err := Generate(p)
		if err != nil {
			t.Fatal(err)
		}
		total, n := 0, 0
		for bi, b := range d.Blocks {
			if b.Kind != netlist.LogicBlock {
				continue
			}
			for _, in := range b.Inputs {
				if in == netlist.NoNet {
					continue
				}
				drv := int(d.Nets[in].Driver)
				if drv < bi {
					total += bi - drv
					n++
				}
			}
		}
		return float64(total) / float64(n)
	}
	local, global := dist(0.95), dist(0.1)
	if local >= global {
		t.Errorf("locality 0.95 gives distance %.1f >= locality 0.1 distance %.1f", local, global)
	}
}

func TestGenerateNoDuplicateInputs(t *testing.T) {
	d, err := Generate(base())
	if err != nil {
		t.Fatal(err)
	}
	for bi, b := range d.Blocks {
		seen := map[netlist.NetID]bool{}
		for _, in := range b.Inputs {
			if in == netlist.NoNet {
				continue
			}
			if seen[in] {
				t.Fatalf("block %d has duplicate input net %d", bi, in)
			}
			seen[in] = true
		}
	}
}

func TestValidateRejectsBadParams(t *testing.T) {
	cases := []func(*Params){
		func(p *Params) { p.LBs = 0 },
		func(p *Params) { p.Inputs = 0 },
		func(p *Params) { p.Outputs = 0 },
		func(p *Params) { p.K = 1 },
		func(p *Params) { p.AvgFanin = 0.5 },
		func(p *Params) { p.AvgFanin = 9 },
		func(p *Params) { p.Locality = 1.5 },
		func(p *Params) { p.Window = 0 },
		func(p *Params) { p.RegFrac = -0.1 },
	}
	for i, corrupt := range cases {
		p := base()
		corrupt(&p)
		if _, err := Generate(p); err == nil {
			t.Errorf("case %d: bad params accepted", i)
		}
	}
}
