// Package loadgen compiles small random designs into VBS containers
// matched to a target fabric's parameters. It is the task factory
// shared by the vbsload benchmark driver and the chaos workload: both
// need a stream of distinct, valid containers that pay the real
// place/route/encode path without dominating the run.
package loadgen

import (
	"math/rand"

	"repro/internal/arch"
	"repro/internal/bits"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/rrg"
)

// GenTask compiles a small random design (8 logic blocks on a 4x4
// grid) to a VBS container for a fabric with channel width w and LUT
// size k. The same seed always yields the same container.
func GenTask(seed int64, w, k int) ([]byte, error) {
	rng := rand.New(rand.NewSource(seed))
	d := &netlist.Design{Name: "loadgen", K: k}
	var nets []netlist.NetID
	for i := 0; i < 4; i++ {
		_, n := d.AddInputPad("pi")
		nets = append(nets, n)
	}
	for i := 0; i < 8; i++ {
		nin := rng.Intn(3) + 1
		ins := make([]netlist.NetID, nin)
		for j := range ins {
			ins[j] = nets[rng.Intn(len(nets))]
		}
		truth := bits.NewVec(1 << k)
		for b := 0; b < 1<<k; b++ {
			truth.Set(b, rng.Intn(2) == 0)
		}
		_, n := d.AddLogicBlock("lb", ins, truth, false)
		nets = append(nets, n)
	}
	for i := 0; i < 4; i++ {
		d.AddOutputPad("po", nets[len(nets)-1-i])
	}
	pl, err := place.Place(d, arch.GridForSize(4), place.Options{Seed: seed, InnerNum: 1, FastExit: true})
	if err != nil {
		return nil, err
	}
	gr, err := rrg.Build(arch.Params{W: w, K: k}, pl.Grid)
	if err != nil {
		return nil, err
	}
	res, err := route.Route(d, pl, gr, route.Options{})
	if err != nil {
		return nil, err
	}
	v, _, err := core.Encode(d, pl, res, core.EncodeOptions{Cluster: 1})
	if err != nil {
		return nil, err
	}
	return v.Encode()
}
