package loadgen

import (
	"bytes"
	"testing"

	"repro/internal/core"
)

func TestGenTaskDeterministicAndDecodable(t *testing.T) {
	a, err := GenTask(7, 12, 6)
	if err != nil {
		t.Fatalf("GenTask: %v", err)
	}
	b, err := GenTask(7, 12, 6)
	if err != nil {
		t.Fatalf("GenTask (repeat): %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different containers")
	}
	c, err := GenTask(8, 12, 6)
	if err != nil {
		t.Fatalf("GenTask (seed 8): %v", err)
	}
	if bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical containers")
	}
	v, err := core.Parse(a)
	if err != nil {
		t.Fatalf("generated container does not parse: %v", err)
	}
	if _, err := v.Decode(); err != nil {
		t.Fatalf("generated container does not decode: %v", err)
	}
}
