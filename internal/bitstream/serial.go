package bitstream

import (
	"encoding/binary"
	"fmt"

	"repro/internal/arch"
	"repro/internal/bits"
)

// Raw bitstream container format:
//
//	magic   "RBS1"        4 bytes
//	W, K    uint16 each   architecture parameters
//	width   uint16        grid width in macros
//	height  uint16        grid height in macros
//	payload width*height*Nraw bits, macros in row-major order, each
//	        macro's bits in canonical layout, MSB-first, zero-padded to
//	        a byte boundary at the end.
const rawMagic = "RBS1"

// Encode serializes the raw bitstream.
func (r *Raw) Encode() []byte {
	header := make([]byte, 12)
	copy(header, rawMagic)
	binary.BigEndian.PutUint16(header[4:], uint16(r.P.W))
	binary.BigEndian.PutUint16(header[6:], uint16(r.P.K))
	binary.BigEndian.PutUint16(header[8:], uint16(r.G.Width))
	binary.BigEndian.PutUint16(header[10:], uint16(r.G.Height))

	w := bits.NewWriter(r.SizeBits())
	for i := range r.Configs {
		w.WriteVec(r.Configs[i].Vec())
	}
	w.Align()
	return append(header, w.Bytes()...)
}

// Decode parses a container produced by Encode.
func Decode(data []byte) (*Raw, error) {
	if len(data) < 12 || string(data[:4]) != rawMagic {
		return nil, fmt.Errorf("bitstream: bad magic")
	}
	p := arch.Params{
		W: int(binary.BigEndian.Uint16(data[4:])),
		K: int(binary.BigEndian.Uint16(data[6:])),
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("bitstream: %w", err)
	}
	g := arch.Grid{
		Width:  int(binary.BigEndian.Uint16(data[8:])),
		Height: int(binary.BigEndian.Uint16(data[10:])),
	}
	if err := g.Validate(); err != nil {
		return nil, fmt.Errorf("bitstream: %w", err)
	}
	need := g.NumMacros() * p.NRaw()
	r := bits.NewReader(data[12:])
	if r.Remaining() < need {
		return nil, fmt.Errorf("bitstream: payload has %d bits, need %d", r.Remaining(), need)
	}
	// Encode zero-pads the payload to the next byte boundary, so up to
	// 7 trailing bits are legitimate. Anything more is garbage — and a
	// container with garbage must not round-trip as valid, or strict
	// parsing and the blob repository's CRC would disagree about which
	// bytes constitute the configuration.
	if extra := r.Remaining() - need; extra >= 8 {
		return nil, fmt.Errorf("bitstream: %d trailing byte(s) after %d-bit payload", extra/8, need)
	}
	raw := &Raw{P: p, G: g, Configs: make([]*arch.MacroConfig, g.NumMacros())}
	for i := range raw.Configs {
		v, err := r.ReadVec(p.NRaw())
		if err != nil {
			return nil, fmt.Errorf("bitstream: macro %d: %w", i, err)
		}
		cfg, err := arch.MacroConfigFromVec(p, v)
		if err != nil {
			return nil, err
		}
		raw.Configs[i] = cfg
	}
	return raw, nil
}
