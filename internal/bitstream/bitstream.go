// Package bitstream generates and verifies raw configuration
// bit-streams: the uncompressed per-macro switch and logic bits that a
// conventional FPGA configuration port would consume, and the baseline
// the paper's Virtual Bit-Stream is compared against (the "BS" series
// of Figure 4). A task's raw bit-stream covers its full w×h macro
// bounding box at Nraw bits per macro, whether or not a macro is used.
package bitstream

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/bits"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/rrg"
	"repro/internal/unionfind"
)

// Raw is the full raw configuration of a rectangular fabric region.
type Raw struct {
	P arch.Params
	G arch.Grid
	// Configs holds one macro configuration per grid cell, indexed by
	// G.Index.
	Configs []*arch.MacroConfig
}

// New returns an all-zero (blank fabric) raw bitstream.
func New(p arch.Params, g arch.Grid) *Raw {
	r := &Raw{P: p, G: g, Configs: make([]*arch.MacroConfig, g.NumMacros())}
	for i := range r.Configs {
		r.Configs[i] = arch.NewMacroConfig(p)
	}
	return r
}

// SizeBits returns the raw bit-stream size: w*h*Nraw, the paper's raw
// accounting.
func (r *Raw) SizeBits() int { return r.G.NumMacros() * r.P.NRaw() }

// At returns the configuration of macro (x, y).
func (r *Raw) At(x, y int) *arch.MacroConfig { return r.Configs[r.G.Index(x, y)] }

// Clone returns a deep copy.
func (r *Raw) Clone() *Raw {
	c := &Raw{P: r.P, G: r.G, Configs: make([]*arch.MacroConfig, len(r.Configs))}
	for i, m := range r.Configs {
		c.Configs[i] = m.Clone()
	}
	return c
}

// Equal reports whether two raw bitstreams are bit-identical.
func (r *Raw) Equal(o *Raw) bool {
	if r.P != o.P || r.G != o.G {
		return false
	}
	for i := range r.Configs {
		if !r.Configs[i].Vec().Equal(o.Configs[i].Vec()) {
			return false
		}
	}
	return true
}

// LogicVec packs a block's configuration into the NLB logic bits: the
// LUT truth table followed by the flip-flop enable bit. Pads configure
// as all-zero logic (their behaviour is fixed by position).
func LogicVec(p arch.Params, b *netlist.Block) *bits.Vec {
	v := bits.NewVec(p.NLB())
	if b.Kind == netlist.LogicBlock {
		for i := 0; i < b.Truth.Len() && i < 1<<uint(p.K); i++ {
			v.Set(i, b.Truth.Get(i))
		}
		v.Set(p.NLB()-1, b.Registered)
	}
	return v
}

// Generate produces the raw bit-stream of a placed-and-routed design:
// logic data from block truth tables, switch bits from the routing
// trees.
func Generate(d *netlist.Design, pl *place.Placement, res *route.Result) (*Raw, error) {
	if err := res.Validate(d); err != nil {
		return nil, fmt.Errorf("bitstream: %w", err)
	}
	p := res.Graph.P
	raw := New(p, pl.Grid)
	for bi := range d.Blocks {
		loc := pl.Loc[bi]
		raw.At(loc.X, loc.Y).SetLogic(LogicVec(p, &d.Blocks[bi]))
	}
	for ni := range res.Routes {
		for _, e := range res.Routes[ni].Edges {
			raw.Configs[e.Macro].SetSwitch(int(e.Switch), true)
		}
	}
	return raw, nil
}

// Connectivity computes the electrical partition of all global
// conductors induced by the configuration's on switches, using the
// node indexing of gr (which must match the bitstream's architecture
// and grid).
func Connectivity(r *Raw, gr *rrg.Graph) (*unionfind.UF, error) {
	if gr.P != r.P || gr.G != r.G {
		return nil, fmt.Errorf("bitstream: graph %v/%v does not match bitstream %v/%v",
			gr.P, gr.G, r.P, r.G)
	}
	uf := unionfind.New(gr.NumNodes())
	sws := r.P.Switches()
	for y := 0; y < r.G.Height; y++ {
		for x := 0; x < r.G.Width; x++ {
			cfg := r.At(x, y)
			for si := range sws {
				if !cfg.SwitchOn(si) {
					continue
				}
				a := gr.GlobalNode(x, y, sws[si].A)
				b := gr.GlobalNode(x, y, sws[si].B)
				if a == rrg.NoNode || b == rrg.NoNode {
					// A switch to an off-fabric wire is a dead bit; it
					// connects nothing.
					continue
				}
				uf.Union(int(a), int(b))
			}
		}
	}
	return uf, nil
}

// Verify checks that the configuration implements the design's
// netlist connectivity under the given placement: for every net, the
// driver's output pin and all sink pins lie in one electrical
// component, and no two distinct nets share a component (no shorts).
func Verify(r *Raw, d *netlist.Design, pl *place.Placement, gr *rrg.Graph) error {
	uf, err := Connectivity(r, gr)
	if err != nil {
		return err
	}
	componentNet := make(map[int]netlist.NetID)
	for ni := range d.Nets {
		net := &d.Nets[ni]
		src := int(gr.NodePin(pl.Loc[net.Driver].X, pl.Loc[net.Driver].Y, 0))
		root := uf.Find(src)
		if prev, taken := componentNet[root]; taken && prev != netlist.NetID(ni) {
			return fmt.Errorf("bitstream: nets %q and %q are shorted",
				d.Nets[prev].Name, net.Name)
		}
		componentNet[root] = netlist.NetID(ni)
		for _, s := range net.Sinks {
			phys := s.Input + 1
			if d.Blocks[s.Block].Kind == netlist.OutputPad {
				phys = 1
			}
			sn := int(gr.NodePin(pl.Loc[s.Block].X, pl.Loc[s.Block].Y, phys))
			if uf.Find(sn) != root {
				return fmt.Errorf("bitstream: net %q does not reach sink pin %d of block %q",
					net.Name, s.Input, d.Blocks[s.Block].Name)
			}
		}
	}
	// Logic data must match block truth tables.
	for bi := range d.Blocks {
		loc := pl.Loc[bi]
		want := LogicVec(r.P, &d.Blocks[bi])
		if !r.At(loc.X, loc.Y).Logic().Equal(want) {
			return fmt.Errorf("bitstream: logic data of block %q at (%d,%d) is wrong",
				d.Blocks[bi].Name, loc.X, loc.Y)
		}
	}
	return nil
}
