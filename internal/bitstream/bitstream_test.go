package bitstream

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/bits"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/rrg"
)

func testDesign(seed int64, nLB, nIn, nOut, k int) *netlist.Design {
	rng := rand.New(rand.NewSource(seed))
	d := &netlist.Design{Name: "t", K: k}
	var nets []netlist.NetID
	for i := 0; i < nIn; i++ {
		_, n := d.AddInputPad("pi")
		nets = append(nets, n)
	}
	for i := 0; i < nLB; i++ {
		nin := rng.Intn(k-1) + 1
		ins := make([]netlist.NetID, nin)
		for j := range ins {
			ins[j] = nets[rng.Intn(len(nets))]
		}
		truth := bits.NewVec(1 << uint(k))
		for b := 0; b < truth.Len(); b++ {
			truth.Set(b, rng.Intn(2) == 0)
		}
		_, n := d.AddLogicBlock("lb", ins, truth, rng.Intn(2) == 0)
		nets = append(nets, n)
	}
	for i := 0; i < nOut; i++ {
		d.AddOutputPad("po", nets[len(nets)-1-i])
	}
	return d
}

type flow struct {
	d   *netlist.Design
	pl  *place.Placement
	gr  *rrg.Graph
	res *route.Result
	raw *Raw
}

func runFlow(t testing.TB, seed int64, nLB, size, w, k int) *flow {
	t.Helper()
	d := testDesign(seed, nLB, 5, 5, k)
	pl, err := place.Place(d, arch.GridForSize(size), place.Options{Seed: seed, InnerNum: 1, FastExit: true})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := rrg.Build(arch.Params{W: w, K: k}, pl.Grid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := route.Route(d, pl, gr, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := Generate(d, pl, res)
	if err != nil {
		t.Fatal(err)
	}
	return &flow{d: d, pl: pl, gr: gr, res: res, raw: raw}
}

func TestGenerateAndVerify(t *testing.T) {
	f := runFlow(t, 1, 25, 6, 8, 6)
	if err := Verify(f.raw, f.d, f.pl, f.gr); err != nil {
		t.Fatal(err)
	}
}

func TestSizeBitsMatchesEq1(t *testing.T) {
	f := runFlow(t, 2, 10, 4, 8, 6)
	p := arch.Params{W: 8, K: 6}
	want := f.pl.Grid.NumMacros() * p.NRaw()
	if f.raw.SizeBits() != want {
		t.Errorf("SizeBits = %d, want %d", f.raw.SizeBits(), want)
	}
}

func TestVerifyDetectsBrokenRoute(t *testing.T) {
	f := runFlow(t, 3, 20, 5, 8, 6)
	// Turn off one switch of a routed net.
	var victim route.TreeEdge
	found := false
	for ni := range f.res.Routes {
		if len(f.res.Routes[ni].Edges) > 0 {
			victim = f.res.Routes[ni].Edges[0]
			found = true
			break
		}
	}
	if !found {
		t.Skip("no routed edges")
	}
	f.raw.Configs[victim.Macro].SetSwitch(int(victim.Switch), false)
	if err := Verify(f.raw, f.d, f.pl, f.gr); err == nil {
		t.Error("broken route not detected")
	}
}

func TestVerifyDetectsShort(t *testing.T) {
	f := runFlow(t, 4, 20, 5, 8, 6)
	// Short two different nets' sources together via switches at the
	// source macros: find two LB outputs and crank switches joining
	// their pin wires to wires until components merge. Simplest robust
	// short: turn on every switch everywhere.
	for _, cfg := range f.raw.Configs {
		for si := 0; si < f.raw.P.NumSwitches(); si++ {
			cfg.SetSwitch(si, true)
		}
	}
	if err := Verify(f.raw, f.d, f.pl, f.gr); err == nil {
		t.Error("total short not detected")
	}
}

func TestVerifyDetectsWrongLogic(t *testing.T) {
	f := runFlow(t, 5, 15, 5, 8, 6)
	// Flip a LUT bit of some logic block.
	for bi := range f.d.Blocks {
		if f.d.Blocks[bi].Kind != netlist.LogicBlock {
			continue
		}
		loc := f.pl.Loc[bi]
		v := f.raw.At(loc.X, loc.Y).Vec()
		v.Set(0, !v.Get(0))
		break
	}
	if err := Verify(f.raw, f.d, f.pl, f.gr); err == nil {
		t.Error("logic corruption not detected")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	f := runFlow(t, 6, 20, 5, 8, 6)
	data := f.raw.Encode()
	back, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if !back.Equal(f.raw) {
		t.Error("decode(encode(raw)) != raw")
	}
	// Size: header + ceil(bits/8).
	want := 12 + (f.raw.SizeBits()+7)/8
	if len(data) != want {
		t.Errorf("encoded %d bytes, want %d", len(data), want)
	}
}

func TestDecodeErrors(t *testing.T) {
	f := runFlow(t, 7, 6, 4, 6, 4)
	good := f.raw.Encode()
	cases := []struct {
		name string
		data []byte
	}{
		{"empty", nil},
		{"bad magic", append([]byte("XXXX"), good[4:]...)},
		{"truncated header", good[:8]},
		{"truncated payload", good[:len(good)-4]},
		{"zero width params", func() []byte {
			b := append([]byte(nil), good...)
			b[4], b[5] = 0, 0
			return b
		}()},
		{"one trailing garbage byte", append(append([]byte(nil), good...), 0x00)},
		{"trailing garbage run", append(append([]byte(nil), good...), 0xde, 0xad, 0xbe, 0xef)},
	}
	for _, c := range cases {
		if _, err := Decode(c.data); err == nil {
			t.Errorf("%s: expected error", c.name)
		}
	}
}

// TestDecodeToleratesAlignmentPadding pins the boundary of the
// trailing-garbage check: the up-to-7 zero pad bits Encode emits are
// legal, one full extra byte is not (see TestDecodeErrors).
func TestDecodeToleratesAlignmentPadding(t *testing.T) {
	f := runFlow(t, 7, 6, 4, 6, 4)
	data := f.raw.Encode()
	if padBits := len(data[12:])*8 - f.raw.SizeBits(); padBits == 0 {
		t.Skipf("payload is byte-aligned; padding tolerance not exercised")
	}
	if _, err := Decode(data); err != nil {
		t.Fatalf("aligned container rejected: %v", err)
	}
}

func TestCloneAndEqual(t *testing.T) {
	f := runFlow(t, 8, 10, 4, 6, 4)
	c := f.raw.Clone()
	if !c.Equal(f.raw) {
		t.Fatal("clone not equal")
	}
	c.Configs[0].Vec().Set(0, !c.Configs[0].Vec().Get(0))
	if c.Equal(f.raw) {
		t.Error("Equal missed a difference")
	}
	other := New(arch.Params{W: 7, K: 4}, f.raw.G)
	if other.Equal(f.raw) {
		t.Error("Equal must compare params")
	}
}

func TestConnectivityRejectsMismatchedGraph(t *testing.T) {
	f := runFlow(t, 9, 10, 4, 6, 4)
	wrong, err := rrg.Build(arch.Params{W: 7, K: 4}, f.raw.G)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Connectivity(f.raw, wrong); err == nil {
		t.Error("mismatched graph accepted")
	}
}

func TestLogicVecPads(t *testing.T) {
	p := arch.PaperExample()
	inPad := netlist.Block{Kind: netlist.InputPad}
	v := LogicVec(p, &inPad)
	if v.OnesCount() != 0 {
		t.Error("pad logic should be all zero")
	}
	truth := bits.NewVec(64)
	truth.Set(5, true)
	lb := netlist.Block{Kind: netlist.LogicBlock, Truth: truth, Registered: true}
	v = LogicVec(p, &lb)
	if !v.Get(5) || !v.Get(p.NLB()-1) {
		t.Error("logic vec missing truth or FF bit")
	}
	if v.OnesCount() != 2 {
		t.Errorf("logic vec has %d ones", v.OnesCount())
	}
}

func BenchmarkGenerate(b *testing.B) {
	f := runFlow(b, 10, 30, 6, 8, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Generate(f.d, f.pl, f.res); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkVerify(b *testing.B) {
	f := runFlow(b, 11, 30, 6, 8, 6)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Verify(f.raw, f.d, f.pl, f.gr); err != nil {
			b.Fatal(err)
		}
	}
}
