package netlist

import (
	"math/rand"
	"testing"

	"repro/internal/bits"
)

func truthConst(n int, on bool) *bits.Vec {
	v := bits.NewVec(1 << uint(n))
	if on {
		for i := 0; i < v.Len(); i++ {
			v.Set(i, true)
		}
	}
	return v
}

func truthAND(n int) *bits.Vec {
	v := bits.NewVec(1 << uint(n))
	v.Set(v.Len()-1, true)
	return v
}

func buildSmallCircuit(t *testing.T) *Circuit {
	t.Helper()
	c := NewCircuit("small")
	c.AddInput("a")
	c.AddInput("b")
	if _, err := c.AddLUT("x", []string{"a", "b"}, truthAND(2)); err != nil {
		t.Fatal(err)
	}
	c.AddLatch("x", "q")
	c.AddOutput("q")
	return c
}

func TestCircuitBuildAndValidate(t *testing.T) {
	c := buildSmallCircuit(t)
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := c.CountKind(CellInput); got != 2 {
		t.Errorf("inputs = %d, want 2", got)
	}
	if got := c.CountKind(CellLUT); got != 1 {
		t.Errorf("LUTs = %d, want 1", got)
	}
	if got := c.CountKind(CellLatch); got != 1 {
		t.Errorf("latches = %d, want 1", got)
	}
	if got := c.CountKind(CellOutput); got != 1 {
		t.Errorf("outputs = %d, want 1", got)
	}
	// Net "x" must be driven by the LUT and sunk by the latch.
	x := c.FindNet("x")
	if x == NoNet {
		t.Fatal("net x missing")
	}
	if c.Cells[c.Nets[x].Driver].Kind != CellLUT {
		t.Error("net x driver is not the LUT")
	}
	if len(c.Nets[x].Sinks) != 1 || c.Cells[c.Nets[x].Sinks[0].Cell].Kind != CellLatch {
		t.Error("net x sink is not the latch")
	}
}

func TestValidateDetectsUndrivenNet(t *testing.T) {
	c := NewCircuit("bad")
	c.AddOutput("floating")
	if err := c.Validate(); err == nil {
		t.Error("undriven net should fail validation")
	}
}

func TestAddLUTBadTruth(t *testing.T) {
	c := NewCircuit("bad")
	c.AddInput("a")
	if _, err := c.AddLUT("x", []string{"a"}, bits.NewVec(3)); err == nil {
		t.Error("mis-sized truth table should be rejected")
	}
	if _, err := c.AddLUT("x", []string{"a"}, nil); err == nil {
		t.Error("nil truth table should be rejected")
	}
}

func TestFindNet(t *testing.T) {
	c := NewCircuit("f")
	c.AddInput("a")
	if c.FindNet("a") == NoNet {
		t.Error("net a should exist")
	}
	if c.FindNet("zzz") != NoNet {
		t.Error("missing net should return NoNet")
	}
}

func buildSmallDesign(t *testing.T) *Design {
	t.Helper()
	k := 4
	d := &Design{Name: "d", K: k}
	_, aNet := d.AddInputPad("a")
	_, xNet := d.AddLogicBlock("x", []NetID{aNet}, truthConst(k, true), true)
	d.AddOutputPad("out", xNet)
	return d
}

func TestDesignValidate(t *testing.T) {
	d := buildSmallDesign(t)
	if err := d.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if d.NumLogicBlocks() != 1 {
		t.Errorf("NumLogicBlocks = %d", d.NumLogicBlocks())
	}
	if d.NumBlocks() != 3 {
		t.Errorf("NumBlocks = %d", d.NumBlocks())
	}
}

func TestDesignValidateCatchesCorruption(t *testing.T) {
	cases := []func(*Design){
		func(d *Design) { d.K = 0 },
		func(d *Design) { d.Blocks[1].Inputs = make([]NetID, d.K+1) },
		func(d *Design) { d.Blocks[1].Truth = bits.NewVec(2) },
		func(d *Design) { d.Blocks[1].Output = NoNet },
		func(d *Design) { d.Nets[0].Driver = NoBlock },
		func(d *Design) { d.Nets[0].Sinks[0].Input = 3 },
		func(d *Design) { d.Blocks[0].Output = 1 },
		func(d *Design) { d.Blocks[2].Inputs = nil },
		func(d *Design) { d.Blocks[0].Inputs = []NetID{0} },
	}
	for i, corrupt := range cases {
		d := buildSmallDesign(t)
		corrupt(d)
		if err := d.Validate(); err == nil {
			t.Errorf("corruption %d not detected", i)
		}
	}
}

func TestDesignStats(t *testing.T) {
	d := buildSmallDesign(t)
	s := d.Stats()
	if s.Blocks != 3 || s.LogicBlocks != 1 || s.InputPads != 1 || s.OutputPads != 1 {
		t.Errorf("stats blocks: %+v", s)
	}
	if s.Registered != 1 {
		t.Errorf("registered = %d", s.Registered)
	}
	if s.Nets != 2 || s.TotalSinks != 2 || s.MaxFanout != 1 {
		t.Errorf("stats nets: %+v", s)
	}
	if s.AvgFanout != 1.0 {
		t.Errorf("AvgFanout = %f", s.AvgFanout)
	}
}

func TestFanoutHistogram(t *testing.T) {
	d := buildSmallDesign(t)
	h := d.FanoutHistogram()
	if len(h) != 1 || h[0].Fanout != 1 || h[0].Count != 2 {
		t.Errorf("histogram = %v", h)
	}
}

func TestBlockKindString(t *testing.T) {
	if LogicBlock.String() != "lb" || InputPad.String() != "inpad" || OutputPad.String() != "outpad" {
		t.Error("BlockKind strings wrong")
	}
	if CellLUT.String() != "lut" || CellLatch.String() != "latch" ||
		CellInput.String() != "input" || CellOutput.String() != "output" {
		t.Error("CellKind strings wrong")
	}
}

// randomDesign builds a random but structurally valid packed design.
func randomDesign(rng *rand.Rand, nLB, nIn, nOut, k int) *Design {
	d := &Design{Name: "rand", K: k}
	for i := 0; i < nIn; i++ {
		d.AddInputPad("in" + string(rune('a'+i%26)))
	}
	for i := 0; i < nLB; i++ {
		nin := rng.Intn(k) + 1
		ins := make([]NetID, nin)
		for j := range ins {
			ins[j] = NetID(rng.Intn(len(d.Nets))) // any earlier net
		}
		d.AddLogicBlock("lb", ins, truthConst(k, rng.Intn(2) == 0), rng.Intn(2) == 0)
	}
	for i := 0; i < nOut; i++ {
		d.AddOutputPad("o", NetID(rng.Intn(len(d.Nets))))
	}
	return d
}

// Property: every randomly generated design passes validation and its
// stats are self-consistent.
func TestRandomDesignsValidate(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		d := randomDesign(rng, 30+rng.Intn(50), 5, 5, 4)
		if err := d.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		s := d.Stats()
		if s.Blocks != s.LogicBlocks+s.InputPads+s.OutputPads {
			t.Fatalf("seed %d: block counts inconsistent", seed)
		}
		total := 0
		for _, h := range d.FanoutHistogram() {
			total += h.Count
		}
		if total != s.Nets {
			t.Fatalf("seed %d: histogram covers %d nets, want %d", seed, total, s.Nets)
		}
	}
}
