// Package netlist represents logic circuits at two levels: the generic
// cell level produced by synthesis front-ends (LUTs of any arity,
// latches, primary I/Os — the BLIF subset VTR consumes), and the packed
// design level (one K-LUT + optional flip-flop per logic block) that the
// placer, router and bitstream generator operate on.
package netlist

import (
	"fmt"
	"sort"

	"repro/internal/bits"
)

// CellID indexes a Circuit's cell table.
type CellID int

// NetID indexes a Circuit's or Design's net table.
type NetID int

// NoCell marks an absent cell reference.
const NoCell CellID = -1

// NoNet marks an absent net reference.
const NoNet NetID = -1

// CellKind classifies generic cells.
type CellKind int

// Generic cell kinds.
const (
	CellInput  CellKind = iota // primary input pad
	CellOutput                 // primary output pad
	CellLUT                    // combinational lookup table
	CellLatch                  // D flip-flop
)

func (k CellKind) String() string {
	switch k {
	case CellInput:
		return "input"
	case CellOutput:
		return "output"
	case CellLUT:
		return "lut"
	case CellLatch:
		return "latch"
	default:
		return fmt.Sprintf("CellKind(%d)", int(k))
	}
}

// Cell is one generic netlist element.
type Cell struct {
	Name   string
	Kind   CellKind
	Inputs []NetID // LUT fanins / latch D / output-pad source
	Output NetID   // driven net (NoNet for output pads)
	// Truth holds the LUT function over len(Inputs) variables
	// (2^len(Inputs) bits, input combination i at bit i, input 0 the
	// least-significant selector). Nil for non-LUT cells.
	Truth *bits.Vec
}

// Net is a signal with one driver and a set of sink pins.
type Net struct {
	Name   string
	Driver CellID
	Sinks  []CellPin
}

// CellPin identifies one input pin of a cell.
type CellPin struct {
	Cell  CellID
	Input int // index into Cell.Inputs
}

// Circuit is a generic (pre-packing) netlist.
type Circuit struct {
	Name  string
	Cells []Cell
	Nets  []Net

	netByName map[string]NetID
}

// NewCircuit returns an empty circuit with the given model name.
func NewCircuit(name string) *Circuit {
	return &Circuit{Name: name, netByName: make(map[string]NetID)}
}

// NetByName returns the net with the given name, creating it (with no
// driver) if absent.
func (c *Circuit) NetByName(name string) NetID {
	if c.netByName == nil {
		c.netByName = make(map[string]NetID)
		for i, n := range c.Nets {
			c.netByName[n.Name] = NetID(i)
		}
	}
	if id, ok := c.netByName[name]; ok {
		return id
	}
	id := NetID(len(c.Nets))
	c.Nets = append(c.Nets, Net{Name: name, Driver: NoCell})
	c.netByName[name] = id
	return id
}

// FindNet returns the net named name, or NoNet.
func (c *Circuit) FindNet(name string) NetID {
	if c.netByName == nil {
		c.NetByName("") // force index build
	}
	if id, ok := c.netByName[name]; ok {
		return id
	}
	return NoNet
}

func (c *Circuit) addCell(cell Cell) CellID {
	id := CellID(len(c.Cells))
	c.Cells = append(c.Cells, cell)
	if cell.Output != NoNet {
		c.Nets[cell.Output].Driver = id
	}
	for i, in := range cell.Inputs {
		c.Nets[in].Sinks = append(c.Nets[in].Sinks, CellPin{Cell: id, Input: i})
	}
	return id
}

// AddInput adds a primary input pad driving the named net.
func (c *Circuit) AddInput(net string) CellID {
	return c.addCell(Cell{Name: net, Kind: CellInput, Output: c.NetByName(net)})
}

// AddOutput adds a primary output pad sinking the named net.
func (c *Circuit) AddOutput(net string) CellID {
	return c.addCell(Cell{
		Name: net, Kind: CellOutput,
		Inputs: []NetID{c.NetByName(net)}, Output: NoNet,
	})
}

// AddLUT adds a LUT cell computing truth over the named input nets,
// driving the named output net. truth must have 2^len(inputs) bits.
func (c *Circuit) AddLUT(output string, inputs []string, truth *bits.Vec) (CellID, error) {
	if truth == nil || truth.Len() != 1<<uint(len(inputs)) {
		return NoCell, fmt.Errorf("netlist: LUT %q: truth table must have %d bits", output, 1<<uint(len(inputs)))
	}
	ins := make([]NetID, len(inputs))
	for i, name := range inputs {
		ins[i] = c.NetByName(name)
	}
	return c.addCell(Cell{
		Name: output, Kind: CellLUT,
		Inputs: ins, Output: c.NetByName(output), Truth: truth,
	}), nil
}

// AddLatch adds a D flip-flop from net d to net q.
func (c *Circuit) AddLatch(d, q string) CellID {
	return c.addCell(Cell{
		Name: q, Kind: CellLatch,
		Inputs: []NetID{c.NetByName(d)}, Output: c.NetByName(q),
	})
}

// Validate checks structural sanity: every net has exactly one driver,
// every sink reference is consistent, LUT truth tables are sized, and
// no cell reads an undriven net.
func (c *Circuit) Validate() error {
	for i, n := range c.Nets {
		if n.Driver == NoCell {
			return fmt.Errorf("netlist: net %q (%d) has no driver", n.Name, i)
		}
		if int(n.Driver) >= len(c.Cells) {
			return fmt.Errorf("netlist: net %q driver out of range", n.Name)
		}
		if c.Cells[n.Driver].Output != NetID(i) {
			return fmt.Errorf("netlist: net %q driver mismatch", n.Name)
		}
		for _, s := range n.Sinks {
			if int(s.Cell) >= len(c.Cells) || s.Input >= len(c.Cells[s.Cell].Inputs) {
				return fmt.Errorf("netlist: net %q sink out of range", n.Name)
			}
			if c.Cells[s.Cell].Inputs[s.Input] != NetID(i) {
				return fmt.Errorf("netlist: net %q sink back-reference mismatch", n.Name)
			}
		}
	}
	for i, cell := range c.Cells {
		if cell.Kind == CellLUT {
			if cell.Truth == nil || cell.Truth.Len() != 1<<uint(len(cell.Inputs)) {
				return fmt.Errorf("netlist: cell %d (%q) has malformed truth table", i, cell.Name)
			}
		}
		if cell.Kind == CellLatch && len(cell.Inputs) != 1 {
			return fmt.Errorf("netlist: latch %q must have one input", cell.Name)
		}
	}
	return nil
}

// CountKind returns the number of cells of kind k.
func (c *Circuit) CountKind(k CellKind) int {
	n := 0
	for _, cell := range c.Cells {
		if cell.Kind == k {
			n++
		}
	}
	return n
}

// BlockKind classifies packed design blocks.
type BlockKind int

// Packed block kinds.
const (
	LogicBlock BlockKind = iota // K-LUT + optional FF
	InputPad
	OutputPad
)

func (k BlockKind) String() string {
	switch k {
	case LogicBlock:
		return "lb"
	case InputPad:
		return "inpad"
	case OutputPad:
		return "outpad"
	default:
		return fmt.Sprintf("BlockKind(%d)", int(k))
	}
}

// BlockID indexes a Design's block table.
type BlockID int

// NoBlock marks an absent block reference.
const NoBlock BlockID = -1

// Block is one packed element: a logic block (K-LUT + FF) or an I/O pad.
type Block struct {
	Name string
	Kind BlockKind
	// Inputs are the nets feeding LUT inputs 0..len-1 (or, for an
	// output pad, the single sunk net). Entries may be NoNet for
	// unused LUT inputs.
	Inputs []NetID
	// Output is the net driven by the block (NoNet for output pads).
	Output NetID
	// Truth is the LUT function over K variables (2^K bits); nil for
	// pads.
	Truth *bits.Vec
	// Registered reports whether the block output passes through the
	// flip-flop.
	Registered bool
}

// DesignNet is a packed-level net: one driver block, sinks on specific
// block input pins.
type DesignNet struct {
	Name   string
	Driver BlockID
	Sinks  []BlockPin
}

// BlockPin identifies one LUT input (or pad input) of a block.
type BlockPin struct {
	Block BlockID
	Input int
}

// Design is a packed netlist ready for placement and routing on a
// K-LUT architecture.
type Design struct {
	Name   string
	K      int
	Blocks []Block
	Nets   []DesignNet
}

// NumBlocks returns the total block count.
func (d *Design) NumBlocks() int { return len(d.Blocks) }

// AddNet appends a new undriven net and returns its id.
func (d *Design) AddNet(name string) NetID {
	id := NetID(len(d.Nets))
	d.Nets = append(d.Nets, DesignNet{Name: name, Driver: NoBlock})
	return id
}

// AddInputPad appends an input pad driving a fresh net named name and
// returns the block and net ids.
func (d *Design) AddInputPad(name string) (BlockID, NetID) {
	net := d.AddNet(name)
	id := BlockID(len(d.Blocks))
	d.Blocks = append(d.Blocks, Block{Name: name, Kind: InputPad, Output: net})
	d.Nets[net].Driver = id
	return id, net
}

// AddLogicBlock appends a logic block computing truth (2^K bits) over
// the given input nets, driving a fresh net named name. Inputs may
// contain NoNet entries for unused LUT pins.
func (d *Design) AddLogicBlock(name string, inputs []NetID, truth *bits.Vec, registered bool) (BlockID, NetID) {
	net := d.AddNet(name)
	id := BlockID(len(d.Blocks))
	b := Block{
		Name: name, Kind: LogicBlock,
		Inputs: append([]NetID(nil), inputs...), Output: net,
		Truth: truth, Registered: registered,
	}
	d.Blocks = append(d.Blocks, b)
	d.Nets[net].Driver = id
	for pin, in := range b.Inputs {
		if in != NoNet {
			d.Nets[in].Sinks = append(d.Nets[in].Sinks, BlockPin{Block: id, Input: pin})
		}
	}
	return id, net
}

// AddOutputPad appends an output pad sinking net src.
func (d *Design) AddOutputPad(name string, src NetID) BlockID {
	id := BlockID(len(d.Blocks))
	d.Blocks = append(d.Blocks, Block{
		Name: name, Kind: OutputPad, Inputs: []NetID{src}, Output: NoNet,
	})
	d.Nets[src].Sinks = append(d.Nets[src].Sinks, BlockPin{Block: id, Input: 0})
	return id
}

// CountKind returns the number of blocks of kind k.
func (d *Design) CountKind(k BlockKind) int {
	n := 0
	for _, b := range d.Blocks {
		if b.Kind == k {
			n++
		}
	}
	return n
}

// NumLogicBlocks returns the logic-block count (the "LBs" column of
// Table II).
func (d *Design) NumLogicBlocks() int { return d.CountKind(LogicBlock) }

// Validate checks the packed design's structural invariants.
func (d *Design) Validate() error {
	if d.K < 1 {
		return fmt.Errorf("netlist: design %q has K=%d", d.Name, d.K)
	}
	for i, b := range d.Blocks {
		switch b.Kind {
		case LogicBlock:
			if len(b.Inputs) > d.K {
				return fmt.Errorf("netlist: block %q has %d inputs, K=%d", b.Name, len(b.Inputs), d.K)
			}
			if b.Output == NoNet {
				return fmt.Errorf("netlist: logic block %q drives no net", b.Name)
			}
			if b.Truth == nil || b.Truth.Len() != 1<<uint(d.K) {
				return fmt.Errorf("netlist: block %q truth table malformed", b.Name)
			}
		case InputPad:
			if len(b.Inputs) != 0 || b.Output == NoNet {
				return fmt.Errorf("netlist: input pad %q malformed", b.Name)
			}
		case OutputPad:
			if len(b.Inputs) != 1 || b.Output != NoNet {
				return fmt.Errorf("netlist: output pad %q malformed", b.Name)
			}
		}
		for _, in := range b.Inputs {
			if in == NoNet {
				continue
			}
			if int(in) >= len(d.Nets) {
				return fmt.Errorf("netlist: block %d input net out of range", i)
			}
		}
	}
	for i, n := range d.Nets {
		if n.Driver == NoBlock || int(n.Driver) >= len(d.Blocks) {
			return fmt.Errorf("netlist: net %q (%d) driver invalid", n.Name, i)
		}
		if d.Blocks[n.Driver].Output != NetID(i) {
			return fmt.Errorf("netlist: net %q driver back-reference mismatch", n.Name)
		}
		for _, s := range n.Sinks {
			if int(s.Block) >= len(d.Blocks) {
				return fmt.Errorf("netlist: net %q sink block out of range", n.Name)
			}
			b := d.Blocks[s.Block]
			if s.Input >= len(b.Inputs) || b.Inputs[s.Input] != NetID(i) {
				return fmt.Errorf("netlist: net %q sink pin mismatch at block %q", n.Name, b.Name)
			}
		}
	}
	return nil
}

// Stats summarizes a packed design.
type Stats struct {
	Blocks, LogicBlocks, InputPads, OutputPads int
	Nets                                       int
	Registered                                 int
	TotalSinks                                 int
	MaxFanout                                  int
	AvgFanout                                  float64
}

// Stats computes summary statistics.
func (d *Design) Stats() Stats {
	s := Stats{Blocks: len(d.Blocks), Nets: len(d.Nets)}
	for _, b := range d.Blocks {
		switch b.Kind {
		case LogicBlock:
			s.LogicBlocks++
			if b.Registered {
				s.Registered++
			}
		case InputPad:
			s.InputPads++
		case OutputPad:
			s.OutputPads++
		}
	}
	for _, n := range d.Nets {
		s.TotalSinks += len(n.Sinks)
		if len(n.Sinks) > s.MaxFanout {
			s.MaxFanout = len(n.Sinks)
		}
	}
	if s.Nets > 0 {
		s.AvgFanout = float64(s.TotalSinks) / float64(s.Nets)
	}
	return s
}

// FanoutHistogram returns sorted (fanout, count) pairs across all nets.
func (d *Design) FanoutHistogram() []struct{ Fanout, Count int } {
	m := make(map[int]int)
	for _, n := range d.Nets {
		m[len(n.Sinks)]++
	}
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	out := make([]struct{ Fanout, Count int }, len(keys))
	for i, k := range keys {
		out[i] = struct{ Fanout, Count int }{k, m[k]}
	}
	return out
}
