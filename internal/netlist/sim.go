package netlist

import (
	"fmt"
	"sort"
)

// Simulator evaluates a Circuit cycle by cycle: combinational logic
// settles each cycle, then latches capture on the (implicit) clock
// edge. It is used to check functional equivalence across synthesis
// and packing transformations.
type Simulator struct {
	c     *Circuit
	order []CellID // topological order of LUT cells
	state map[NetID]bool
	ff    map[CellID]bool // latch state
}

// NewSimulator prepares a simulator; it fails if the combinational part
// of the circuit contains a cycle.
func NewSimulator(c *Circuit) (*Simulator, error) {
	order, err := topoOrderLUTs(c)
	if err != nil {
		return nil, err
	}
	return &Simulator{
		c:     c,
		order: order,
		state: make(map[NetID]bool),
		ff:    make(map[CellID]bool),
	}, nil
}

// topoOrderLUTs orders LUT cells so every LUT appears after the drivers
// of its input nets (latch and input-pad outputs are sequential
// boundaries and need no ordering).
func topoOrderLUTs(c *Circuit) ([]CellID, error) {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	mark := make([]int, len(c.Cells))
	var order []CellID
	var visit func(id CellID) error
	visit = func(id CellID) error {
		switch mark[id] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("netlist: combinational cycle through cell %q", c.Cells[id].Name)
		}
		mark[id] = visiting
		for _, in := range c.Cells[id].Inputs {
			drv := c.Nets[in].Driver
			if drv != NoCell && c.Cells[drv].Kind == CellLUT {
				if err := visit(drv); err != nil {
					return err
				}
			}
		}
		mark[id] = done
		order = append(order, id)
		return nil
	}
	for id := range c.Cells {
		if c.Cells[id].Kind == CellLUT {
			if err := visit(CellID(id)); err != nil {
				return nil, err
			}
		}
	}
	return order, nil
}

// Step applies one clock cycle: primary inputs take the given values,
// combinational logic settles, outputs are sampled, then latches
// capture. Unlisted inputs default to false.
func (s *Simulator) Step(inputs map[string]bool) map[string]bool {
	c := s.c
	// Drive primary inputs and latch outputs.
	for id, cell := range c.Cells {
		switch cell.Kind {
		case CellInput:
			s.state[cell.Output] = inputs[c.Nets[cell.Output].Name]
		case CellLatch:
			s.state[cell.Output] = s.ff[CellID(id)]
		}
	}
	// Settle combinational logic in topological order.
	for _, id := range s.order {
		cell := c.Cells[id]
		combo := 0
		for i, in := range cell.Inputs {
			if s.state[in] {
				combo |= 1 << uint(i)
			}
		}
		s.state[cell.Output] = cell.Truth.Get(combo)
	}
	// Sample primary outputs.
	out := make(map[string]bool)
	for _, cell := range c.Cells {
		if cell.Kind == CellOutput {
			out[c.Nets[cell.Inputs[0]].Name] = s.state[cell.Inputs[0]]
		}
	}
	// Clock edge: latches capture their D inputs.
	for id, cell := range c.Cells {
		if cell.Kind == CellLatch {
			s.ff[CellID(id)] = s.state[cell.Inputs[0]]
		}
	}
	return out
}

// InputNames returns the primary input names in sorted order.
func (s *Simulator) InputNames() []string { return padNames(s.c, CellInput) }

// OutputNames returns the primary output names in sorted order.
func (s *Simulator) OutputNames() []string { return padNames(s.c, CellOutput) }

func padNames(c *Circuit, k CellKind) []string {
	var names []string
	for _, cell := range c.Cells {
		switch {
		case k == CellInput && cell.Kind == CellInput:
			names = append(names, c.Nets[cell.Output].Name)
		case k == CellOutput && cell.Kind == CellOutput:
			names = append(names, c.Nets[cell.Inputs[0]].Name)
		}
	}
	sort.Strings(names)
	return names
}

// DesignSimulator evaluates a packed Design with the same clocking
// semantics as Simulator, so the two can be compared step by step.
type DesignSimulator struct {
	d     *Design
	order []BlockID
	state map[NetID]bool
	ff    map[BlockID]bool
}

// NewDesignSimulator prepares a packed-design simulator; it fails on
// combinational cycles (paths through unregistered logic blocks).
func NewDesignSimulator(d *Design) (*DesignSimulator, error) {
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	mark := make([]int, len(d.Blocks))
	var order []BlockID
	var visit func(id BlockID) error
	visit = func(id BlockID) error {
		switch mark[id] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("netlist: combinational cycle through block %q", d.Blocks[id].Name)
		}
		mark[id] = visiting
		for _, in := range d.Blocks[id].Inputs {
			if in == NoNet {
				continue
			}
			drv := d.Nets[in].Driver
			if drv != NoBlock && d.Blocks[drv].Kind == LogicBlock && !d.Blocks[drv].Registered {
				if err := visit(drv); err != nil {
					return err
				}
			}
		}
		mark[id] = done
		order = append(order, id)
		return nil
	}
	for id := range d.Blocks {
		if d.Blocks[id].Kind == LogicBlock && !d.Blocks[id].Registered {
			if err := visit(BlockID(id)); err != nil {
				return nil, err
			}
		}
	}
	// Registered blocks settle combinationally too (their LUT output is
	// captured at the clock edge); evaluate them after the pure
	// combinational cone.
	for id := range d.Blocks {
		if d.Blocks[id].Kind == LogicBlock && d.Blocks[id].Registered {
			order = append(order, BlockID(id))
		}
	}
	return &DesignSimulator{
		d:     d,
		order: order,
		state: make(map[NetID]bool),
		ff:    make(map[BlockID]bool),
	}, nil
}

// Step applies one clock cycle and returns the primary output values.
func (s *DesignSimulator) Step(inputs map[string]bool) map[string]bool {
	d := s.d
	for id, b := range d.Blocks {
		switch b.Kind {
		case InputPad:
			s.state[b.Output] = inputs[b.Name]
		case LogicBlock:
			if b.Registered {
				s.state[b.Output] = s.ff[BlockID(id)]
			}
		}
	}
	lutOut := make(map[BlockID]bool)
	for _, id := range s.order {
		b := d.Blocks[id]
		combo := 0
		for i, in := range b.Inputs {
			if in != NoNet && s.state[in] {
				combo |= 1 << uint(i)
			}
		}
		v := b.Truth.Get(combo)
		lutOut[id] = v
		if !b.Registered {
			s.state[b.Output] = v
		}
	}
	out := make(map[string]bool)
	for _, b := range d.Blocks {
		if b.Kind == OutputPad {
			out[b.Name] = s.state[b.Inputs[0]]
		}
	}
	for id, b := range d.Blocks {
		if b.Kind == LogicBlock && b.Registered {
			s.ff[BlockID(id)] = lutOut[BlockID(id)]
		}
	}
	return out
}
