package netlist

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/bits"
)

const sampleBLIF = `
# A tiny sequential circuit.
.model counter
.inputs a b \
        c
.outputs q y
.names a b c x   # 3-input majority
11- 1
1-1 1
-11 1
.latch x q re clk 0
.names q c y
01 1
10 1
.end
`

func TestParseBLIFBasics(t *testing.T) {
	c, err := ParseBLIF(strings.NewReader(sampleBLIF))
	if err != nil {
		t.Fatal(err)
	}
	if c.Name != "counter" {
		t.Errorf("model name = %q", c.Name)
	}
	if err := c.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if got := c.CountKind(CellInput); got != 3 {
		t.Errorf("inputs = %d, want 3 (continuation line)", got)
	}
	if got := c.CountKind(CellOutput); got != 2 {
		t.Errorf("outputs = %d, want 2", got)
	}
	if got := c.CountKind(CellLUT); got != 2 {
		t.Errorf("LUTs = %d, want 2", got)
	}
	if got := c.CountKind(CellLatch); got != 1 {
		t.Errorf("latches = %d, want 1", got)
	}
}

func TestParseBLIFMajorityTruth(t *testing.T) {
	c, err := ParseBLIF(strings.NewReader(sampleBLIF))
	if err != nil {
		t.Fatal(err)
	}
	var maj *Cell
	for i := range c.Cells {
		if c.Cells[i].Kind == CellLUT && c.Nets[c.Cells[i].Output].Name == "x" {
			maj = &c.Cells[i]
		}
	}
	if maj == nil {
		t.Fatal("LUT x not found")
	}
	// Majority of 3: on iff at least two inputs set. Input 0 is the
	// least-significant selector bit.
	for combo := 0; combo < 8; combo++ {
		pop := combo&1 + combo>>1&1 + combo>>2&1
		want := pop >= 2
		if got := maj.Truth.Get(combo); got != want {
			t.Errorf("majority(%03b) = %v, want %v", combo, got, want)
		}
	}
}

func TestParseBLIFOffSetCover(t *testing.T) {
	src := `
.model offset
.inputs a b
.outputs z
.names a b z
11 0
.end
`
	c, err := ParseBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	lut := c.Cells[c.Nets[c.FindNet("z")].Driver]
	// Off-set cover {11}: z = NAND(a, b).
	want := []bool{true, true, true, false}
	for i, w := range want {
		if lut.Truth.Get(i) != w {
			t.Errorf("NAND(%02b) = %v, want %v", i, lut.Truth.Get(i), w)
		}
	}
}

func TestParseBLIFConstants(t *testing.T) {
	src := `
.model consts
.outputs one zero
.names one
1
.names zero
.end
`
	c, err := ParseBLIF(strings.NewReader(src))
	if err != nil {
		t.Fatal(err)
	}
	one := c.Cells[c.Nets[c.FindNet("one")].Driver]
	if one.Truth.Len() != 1 || !one.Truth.Get(0) {
		t.Error("constant one mis-parsed")
	}
	zero := c.Cells[c.Nets[c.FindNet("zero")].Driver]
	if zero.Truth.Len() != 1 || zero.Truth.Get(0) {
		t.Error("constant zero mis-parsed")
	}
}

func TestParseBLIFErrors(t *testing.T) {
	cases := []struct{ name, src string }{
		{"mixed cover", ".model m\n.inputs a\n.outputs z\n.names a z\n1 1\n0 0\n.end"},
		{"bad output col", ".model m\n.inputs a\n.outputs z\n.names a z\n1 2\n.end"},
		{"bad input col", ".model m\n.inputs a\n.outputs z\n.names a z\nx 1\n.end"},
		{"wrong width", ".model m\n.inputs a b\n.outputs z\n.names a b z\n1 1\n.end"},
		{"unknown directive", ".model m\n.gate and2 A=a B=b O=z\n.end"},
		{"names no signal", ".model m\n.names\n.end"},
		{"latch short", ".model m\n.latch x\n.end"},
		{"two models", ".model m\n.model n\n.end"},
		{"dangling continuation", ".model m\n.inputs a \\"},
		{"stray line", ".model m\nfoo bar\n.end"},
	}
	for _, c := range cases {
		if _, err := ParseBLIF(strings.NewReader(c.src)); err == nil {
			t.Errorf("%s: expected parse error", c.name)
		}
	}
}

func TestWriteBLIFRoundTrip(t *testing.T) {
	orig, err := ParseBLIF(strings.NewReader(sampleBLIF))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteBLIF(&buf, orig); err != nil {
		t.Fatal(err)
	}
	back, err := ParseBLIF(&buf)
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}
	if back.Name != orig.Name {
		t.Errorf("name %q != %q", back.Name, orig.Name)
	}
	for _, k := range []CellKind{CellInput, CellOutput, CellLUT, CellLatch} {
		if back.CountKind(k) != orig.CountKind(k) {
			t.Errorf("%v count %d != %d", k, back.CountKind(k), orig.CountKind(k))
		}
	}
	// Truth tables must survive the round trip net-by-net.
	for i := range orig.Cells {
		if orig.Cells[i].Kind != CellLUT {
			continue
		}
		name := orig.Nets[orig.Cells[i].Output].Name
		bnet := back.FindNet(name)
		if bnet == NoNet {
			t.Fatalf("net %q lost", name)
		}
		bc := back.Cells[back.Nets[bnet].Driver]
		if !bc.Truth.Equal(orig.Cells[i].Truth) {
			t.Errorf("truth table of %q changed: %s -> %s", name, orig.Cells[i].Truth, bc.Truth)
		}
	}
}

// Property: random LUT circuits survive write/parse with identical
// structure and truth tables.
func TestRandomBLIFRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 15; seed++ {
		rng := rand.New(rand.NewSource(seed))
		c := NewCircuit("rt")
		names := []string{}
		for i := 0; i < 4; i++ {
			n := "pi" + string(rune('a'+i))
			c.AddInput(n)
			names = append(names, n)
		}
		for i := 0; i < 12; i++ {
			nin := rng.Intn(3) + 1
			ins := make([]string, nin)
			for j := range ins {
				ins[j] = names[rng.Intn(len(names))]
			}
			truth := bits.NewVec(1 << uint(nin))
			for b := 0; b < truth.Len(); b++ {
				truth.Set(b, rng.Intn(2) == 0)
			}
			out := "n" + string(rune('0'+i%10)) + string(rune('a'+i/10))
			if _, err := c.AddLUT(out, ins, truth); err != nil {
				t.Fatal(err)
			}
			names = append(names, out)
		}
		c.AddOutput(names[len(names)-1])
		var buf bytes.Buffer
		if err := WriteBLIF(&buf, c); err != nil {
			t.Fatal(err)
		}
		back, err := ParseBLIF(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if back.CountKind(CellLUT) != c.CountKind(CellLUT) {
			t.Fatalf("seed %d: LUT count changed", seed)
		}
		for i := range c.Cells {
			if c.Cells[i].Kind != CellLUT {
				continue
			}
			name := c.Nets[c.Cells[i].Output].Name
			bc := back.Cells[back.Nets[back.FindNet(name)].Driver]
			if !bc.Truth.Equal(c.Cells[i].Truth) {
				t.Fatalf("seed %d: truth of %q changed", seed, name)
			}
		}
	}
}
