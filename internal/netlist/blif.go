package netlist

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/bits"
)

// ParseBLIF reads the BLIF subset emitted by academic synthesis flows
// (the format VTR consumes): .model/.inputs/.outputs/.names/.latch/.end,
// with '#' comments, '\' line continuations, and single-output cover
// lines. Both on-set ('1' output column) and off-set ('0') covers are
// accepted, but not mixed within one .names block.
func ParseBLIF(r io.Reader) (*Circuit, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<22)

	var logical []string // logical lines after continuation folding
	var pending strings.Builder
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if strings.HasSuffix(line, "\\") {
			pending.WriteString(strings.TrimSuffix(line, "\\"))
			pending.WriteByte(' ')
			continue
		}
		pending.WriteString(line)
		logical = append(logical, pending.String())
		pending.Reset()
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("blif: read: %w", err)
	}
	if pending.Len() > 0 {
		return nil, fmt.Errorf("blif: dangling line continuation at end of input")
	}

	c := NewCircuit("top")
	sawModel := false
	i := 0
	for i < len(logical) {
		fields := strings.Fields(logical[i])
		i++
		switch fields[0] {
		case ".model":
			if sawModel {
				return nil, fmt.Errorf("blif: multiple .model directives (hierarchy unsupported)")
			}
			sawModel = true
			if len(fields) > 1 {
				c.Name = fields[1]
			}
		case ".inputs":
			for _, name := range fields[1:] {
				c.AddInput(name)
			}
		case ".outputs":
			for _, name := range fields[1:] {
				c.AddOutput(name)
			}
		case ".names":
			if len(fields) < 2 {
				return nil, fmt.Errorf("blif: .names with no signals")
			}
			inputs := fields[1 : len(fields)-1]
			output := fields[len(fields)-1]
			var cover []string
			for i < len(logical) && !strings.HasPrefix(logical[i], ".") {
				cover = append(cover, logical[i])
				i++
			}
			truth, err := coverToTruth(inputs, cover)
			if err != nil {
				return nil, fmt.Errorf("blif: .names %s: %w", output, err)
			}
			if _, err := c.AddLUT(output, inputs, truth); err != nil {
				return nil, err
			}
		case ".latch":
			if len(fields) < 3 {
				return nil, fmt.Errorf("blif: .latch needs input and output")
			}
			c.AddLatch(fields[1], fields[2])
		case ".end":
			return c, nil
		default:
			if strings.HasPrefix(fields[0], ".") {
				return nil, fmt.Errorf("blif: unsupported directive %q", fields[0])
			}
			return nil, fmt.Errorf("blif: unexpected line %q", logical[i-1])
		}
	}
	return c, nil
}

// coverToTruth evaluates a single-output cover into a full truth table
// over len(inputs) variables.
func coverToTruth(inputs []string, cover []string) (*bits.Vec, error) {
	n := len(inputs)
	if n > 20 {
		return nil, fmt.Errorf("%d inputs exceeds cover evaluation limit", n)
	}
	truth := bits.NewVec(1 << uint(n))
	if len(cover) == 0 {
		return truth, nil // constant 0
	}

	type cube struct{ care, val uint32 }
	var cubes []cube
	polarity := byte(0)
	for _, line := range cover {
		fields := strings.Fields(line)
		var inPart, outPart string
		switch {
		case n == 0 && len(fields) == 1:
			inPart, outPart = "", fields[0]
		case len(fields) == 2:
			inPart, outPart = fields[0], fields[1]
		default:
			return nil, fmt.Errorf("malformed cover line %q", line)
		}
		if len(inPart) != n {
			return nil, fmt.Errorf("cover line %q has %d input columns, want %d", line, len(inPart), n)
		}
		if len(outPart) != 1 || (outPart[0] != '0' && outPart[0] != '1') {
			return nil, fmt.Errorf("cover line %q has bad output column", line)
		}
		if polarity == 0 {
			polarity = outPart[0]
		} else if polarity != outPart[0] {
			return nil, fmt.Errorf("mixed on-set and off-set cover")
		}
		var cb cube
		for j := 0; j < n; j++ {
			switch inPart[j] {
			case '1':
				cb.care |= 1 << uint(j)
				cb.val |= 1 << uint(j)
			case '0':
				cb.care |= 1 << uint(j)
			case '-':
			default:
				return nil, fmt.Errorf("cover line %q has bad input column %c", line, inPart[j])
			}
		}
		cubes = append(cubes, cb)
	}

	for combo := 0; combo < 1<<uint(n); combo++ {
		matched := false
		for _, cb := range cubes {
			if uint32(combo)&cb.care == cb.val {
				matched = true
				break
			}
		}
		on := matched == (polarity == '1')
		truth.Set(combo, on)
	}
	return truth, nil
}

// WriteBLIF emits the circuit in the same BLIF subset ParseBLIF reads.
// LUT covers are written as one on-set line per minterm, which is
// verbose but canonical and round-trips exactly.
func WriteBLIF(w io.Writer, c *Circuit) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, ".model %s\n", c.Name)

	var ins, outs []string
	for _, cell := range c.Cells {
		switch cell.Kind {
		case CellInput:
			ins = append(ins, c.Nets[cell.Output].Name)
		case CellOutput:
			outs = append(outs, c.Nets[cell.Inputs[0]].Name)
		}
	}
	writeList := func(directive string, names []string) {
		fmt.Fprint(bw, directive)
		for _, n := range names {
			fmt.Fprintf(bw, " %s", n)
		}
		fmt.Fprintln(bw)
	}
	writeList(".inputs", ins)
	writeList(".outputs", outs)

	for _, cell := range c.Cells {
		switch cell.Kind {
		case CellLUT:
			fmt.Fprint(bw, ".names")
			for _, in := range cell.Inputs {
				fmt.Fprintf(bw, " %s", c.Nets[in].Name)
			}
			fmt.Fprintf(bw, " %s\n", c.Nets[cell.Output].Name)
			n := len(cell.Inputs)
			for combo := 0; combo < cell.Truth.Len(); combo++ {
				if !cell.Truth.Get(combo) {
					continue
				}
				if n == 0 {
					fmt.Fprintln(bw, "1")
					continue
				}
				row := make([]byte, n)
				for j := 0; j < n; j++ {
					if combo>>uint(j)&1 == 1 {
						row[j] = '1'
					} else {
						row[j] = '0'
					}
				}
				fmt.Fprintf(bw, "%s 1\n", row)
			}
		case CellLatch:
			fmt.Fprintf(bw, ".latch %s %s re clk 0\n",
				c.Nets[cell.Inputs[0]].Name, c.Nets[cell.Output].Name)
		}
	}
	fmt.Fprintln(bw, ".end")
	return bw.Flush()
}
