package chaos

import (
	"context"
	"fmt"
	"sort"
	"time"

	"repro/internal/loadgen"
	"repro/internal/server"
)

// Recipe is one named fault scenario. Run injects faults while the
// workload is live; the engine judges the aftermath with the standard
// conditions afterwards, so a recipe only returns an error when the
// *harness* failed (a node that refuses to restart, no blob to
// corrupt) — invariant violations are the conditions' verdict.
type Recipe struct {
	Name        string
	Description string
	// ErrorBudget is the default client error-rate budget; kill-style
	// recipes tolerate more than pure I/O ones.
	ErrorBudget float64
	Run         func(ctx context.Context, e *Env) error
}

var recipes = map[string]Recipe{}

func register(r Recipe) { recipes[r.Name] = r }

// Lookup finds a recipe by name.
func Lookup(name string) (Recipe, bool) {
	r, ok := recipes[name]
	return r, ok
}

// Names lists the registered recipes, sorted.
func Names() []string {
	out := make([]string, 0, len(recipes))
	for n := range recipes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

func init() {
	register(Recipe{
		Name:        "nodekill",
		Description: "SIGKILL one node under traffic; expect failover, then read-repair back to R replicas after restart",
		ErrorBudget: 0.25,
		Run:         runNodeKill,
	})
	register(Recipe{
		Name:        "diskfull",
		Description: "inject disk write failures on one node; expect gateway failover (5xx-driven), not client 400s",
		ErrorBudget: 0.10,
		Run:         runDiskFull,
	})
	register(Recipe{
		Name:        "corruptblob",
		Description: "flip bytes in an on-disk blob, restart the node; expect quarantine plus re-repair, never a corrupt serve",
		ErrorBudget: 0.25,
		Run:         runCorruptBlob,
	})
	register(Recipe{
		Name:        "churn",
		Description: "repeated kill/restart cycles across nodes under sustained traffic",
		ErrorBudget: 0.30,
		Run:         runChurn,
	})
	register(Recipe{
		Name:        "nodeadd",
		Description: "SIGKILL + forget one node, join a fresh empty one under traffic; expect rebalance back to R and a mid-rebalance delete to stay dead",
		ErrorBudget: 0.25,
		Run:         runNodeAdd,
	})
	register(Recipe{
		Name:        "drain",
		Description: "gracefully drain and remove one node under traffic; expect zero client errors and an emptied node",
		ErrorBudget: 0, // a graceful decommission must be invisible to clients
		Run:         runDrain,
	})
}

// victim picks the node carrying the most acked blobs (so the fault
// actually bites), falling back to the last node.
func victim(ctx context.Context, e *Env) Node {
	best := e.Fleet.Nodes[len(e.Fleet.Nodes)-1]
	bestBlobs := -1
	for _, n := range e.Fleet.Nodes {
		if !n.Alive() {
			continue
		}
		blobs, err := n.Client().ListVBSCtx(ctx)
		if err != nil {
			continue
		}
		if len(blobs) > bestBlobs {
			best, bestBlobs = n, len(blobs)
		}
	}
	return best
}

func runNodeKill(ctx context.Context, e *Env) error {
	// A *re*connect is only well-defined for a stream that connected
	// before the kill, so wait (bounded) until the gateway's stream
	// pool covers the whole fleet — replication traffic warms it
	// within the first few loads.
	streamsWarm := waitStreamsOpen(ctx, e, len(e.Fleet.Nodes))
	v := victim(ctx, e)
	if err := e.KillNode(v); err != nil {
		return err
	}
	// Traffic runs against the degraded fleet: reads must fail over,
	// loads must land on surviving owners.
	Sleep(ctx, e.Cfg.FaultPhase)
	if err := e.RestartNode(v); err != nil {
		return err
	}
	// Post-restart traffic drives the reads whose repair sweeps heal
	// any replica the dead node missed.
	Sleep(ctx, e.Cfg.FaultPhase/2)
	if streamsWarm {
		// The kill cut the victim's replication stream mid-flight; the
		// pool must heal it by reconnecting, never by serving junk.
		e.AddCondition(streamsHealed)
	} else {
		e.recordFault("streams never warmed pre-kill; skipping the streams-healed condition")
	}
	return nil
}

// waitStreamsOpen polls the gateway until its stream pool holds at
// least n live streams, giving up after the fault phase. Returns
// whether the pool warmed in time.
func waitStreamsOpen(ctx context.Context, e *Env, n int) bool {
	deadline := time.Now().Add(e.Cfg.FaultPhase)
	for {
		mctx, cancel := context.WithTimeout(ctx, 5*time.Second)
		samples, err := e.Fleet.Client.MetricsCtx(mctx)
		cancel()
		if err == nil && sampleValue(samples, "vbs_transport_streams_open") >= float64(n) {
			return true
		}
		if ctx.Err() != nil || time.Now().After(deadline) {
			return false
		}
		Sleep(ctx, 100*time.Millisecond)
	}
}

func runDiskFull(ctx context.Context, e *Env) error {
	v := victim(ctx, e)
	if err := e.ArmFaults(ctx, v, server.ChaosFaults{FailPuts: true}); err != nil {
		return err
	}
	// Every load routed to the victim now dies with 500 "cannot
	// persist vbs" (store.ErrDisk) — the gateway must fail the task
	// over to another owner, not bounce a 4xx to the client.
	Sleep(ctx, e.Cfg.FaultPhase)
	if err := e.ClearFaults(ctx, v); err != nil {
		return err
	}
	Sleep(ctx, e.Cfg.FaultPhase/2)
	return nil
}

func runCorruptBlob(ctx context.Context, e *Env) error {
	// Pick an acked digest that sits on some node's disk.
	var target Node
	var digest string
	deadline := time.Now().Add(e.Cfg.FaultPhase)
	for target == nil {
		acked := e.Work.Acked()
		for _, n := range e.Fleet.Nodes {
			blobs, err := n.Client().ListVBSCtx(ctx)
			if err != nil {
				continue
			}
			for _, b := range blobs {
				if _, ok := acked[b.Digest]; ok && b.Disk {
					target, digest = n, b.Digest
					break
				}
			}
			if target != nil {
				break
			}
		}
		if target == nil {
			if time.Now().After(deadline) || ctx.Err() != nil {
				return fmt.Errorf("no acked on-disk blob to corrupt")
			}
			Sleep(ctx, 100*time.Millisecond)
		}
	}
	if err := e.CorruptBlob(target, digest); err != nil {
		return err
	}
	// The node's RAM tier may still hold the healthy copy, so the rot
	// is only observable after a restart: kill -9, restart, and let
	// the boot recovery scan quarantine the bad file. Gateway reads
	// must keep serving the digest byte-identical from the other
	// replica throughout, and read-repair must restore R afterwards.
	if err := e.KillNode(target); err != nil {
		return err
	}
	Sleep(ctx, e.Cfg.FaultPhase/2)
	if err := e.RestartNode(target); err != nil {
		return err
	}
	Sleep(ctx, e.Cfg.FaultPhase/2)
	// Harness sanity: the scan must have quarantined the corrupt file.
	cctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	st, err := target.Client().StatsCtx(cctx)
	cancel()
	if err != nil {
		return fmt.Errorf("stats of %s after restart: %w", target.Name(), err)
	}
	if st.Repo.Quarantined == 0 {
		return fmt.Errorf("%s quarantined nothing after corrupting %.12s", target.Name(), digest)
	}
	e.recordFault("%s quarantined %d blob(s) at boot", target.Name(), st.Repo.Quarantined)
	return nil
}

// runNodeAdd is the elastic-membership scenario the cluster must
// survive: lose a node permanently (kill + forget), join a fresh
// empty replacement under live traffic, and delete a blob while the
// rebalancer is mid-flight. Conditions then demand replica sets back
// at R with every ring owner actually holding its digests, and the
// deleted blob dead everywhere — the tombstone must outrun the
// movers.
func runNodeAdd(ctx context.Context, e *Env) error {
	// A doomed blob written through the gateway, outside the
	// workload's acked set so the retrievability condition skips it.
	doomedRaw, err := loadgen.GenTask(e.Cfg.Seed+9991, NodeW, NodeK)
	if err != nil {
		return fmt.Errorf("doomed blob generation: %w", err)
	}
	pctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	put, err := e.Fleet.Client.PutVBS(pctx, doomedRaw)
	cancel()
	if err != nil {
		return fmt.Errorf("put doomed blob: %w", err)
	}
	e.recordFault("put doomed blob %.12s", put.Digest)

	// Lose the busiest node for good.
	v := victim(ctx, e)
	if err := e.KillNode(v); err != nil {
		return err
	}
	if err := e.RemoveMember(ctx, v); err != nil {
		return err
	}
	// Scale back out with an empty node; the rebalancer must populate
	// it while the workload keeps hitting the gateway.
	if _, err := e.AddFreshNode(ctx); err != nil {
		return err
	}
	Sleep(ctx, e.Cfg.FaultPhase/2)
	if err := e.DeleteBlob(ctx, put.Digest); err != nil {
		return fmt.Errorf("mid-rebalance delete: %w", err)
	}
	Sleep(ctx, e.Cfg.FaultPhase/2)

	e.AddCondition(deletedBlobStaysDead(put.Digest))
	e.AddCondition(ownersHoldReplicas)
	return nil
}

// runDrain decommissions the busiest node gracefully: drain it off
// the ring, retire its tasks through the gateway (live references
// veto blob trims), wait for the rebalancer to empty it, then forget
// it. The error budget is zero — clients must never notice.
func runDrain(ctx context.Context, e *Env) error {
	v := victim(ctx, e)
	if err := e.DrainMember(ctx, v); err != nil {
		return err
	}
	deadline := time.Now().Add(e.Cfg.Converge)
	for {
		if ctx.Err() != nil {
			return ctx.Err()
		}
		// Unload every gateway task hosted on the victim; the workload
		// records its own later unloads of these ids as stale, not
		// errors. Re-listing each round catches loads that routed on a
		// pre-drain ring snapshot.
		tctx, tcancel := context.WithTimeout(ctx, 10*time.Second)
		tasks, err := e.Fleet.Client.TasksCtx(tctx)
		tcancel()
		if err != nil {
			return fmt.Errorf("gateway tasks: %w", err)
		}
		for _, ti := range tasks {
			if ti.Node != v.URL() {
				continue
			}
			uctx, ucancel := context.WithTimeout(ctx, 10*time.Second)
			err := e.Fleet.Client.UnloadCtx(uctx, ti.ID)
			ucancel()
			if err != nil && server.StatusCode(err) != 404 {
				return fmt.Errorf("unload task %d off %s: %w", ti.ID, v.Name(), err)
			}
		}
		bctx, bcancel := context.WithTimeout(ctx, 10*time.Second)
		blobs, err := v.Client().ListVBSCtx(bctx)
		bcancel()
		if err != nil {
			return fmt.Errorf("%s vbs listing: %w", v.Name(), err)
		}
		if len(blobs) == 0 {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("%s still holds %d blob(s) after %s of draining", v.Name(), len(blobs), e.Cfg.Converge)
		}
		e.Fleet.Gateway.Rebalancer().Kick()
		Sleep(ctx, 200*time.Millisecond)
	}
	e.recordFault("%s drained empty", v.Name())
	if err := e.RemoveMember(ctx, v); err != nil {
		return err
	}
	// Keep traffic running on the shrunken fleet for a while.
	Sleep(ctx, e.Cfg.FaultPhase/2)
	e.AddCondition(ownersHoldReplicas)
	return nil
}

func runChurn(ctx context.Context, e *Env) error {
	cycles := 4
	if e.Cfg.Short {
		cycles = 2
	}
	for i := 0; i < cycles && ctx.Err() == nil; i++ {
		n := e.Fleet.Nodes[i%len(e.Fleet.Nodes)]
		if err := e.KillNode(n); err != nil {
			return err
		}
		Sleep(ctx, e.Cfg.FaultPhase/2)
		if err := e.RestartNode(n); err != nil {
			return err
		}
		Sleep(ctx, e.Cfg.FaultPhase/2)
	}
	return nil
}
