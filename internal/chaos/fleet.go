package chaos

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"sync"
	"time"

	"repro/internal/arch"
	"repro/internal/cluster"
	"repro/internal/controller"
	"repro/internal/fabric"
	"repro/internal/server"
)

// Fabric parameters every chaos node runs with. Small and uniform:
// the harness tests the management plane, not the fabrics.
const (
	nodeFabrics = 1
	nodeSide    = 16
	NodeW       = 8
	NodeK       = 6
)

// Node is one vbsd under chaos control: the kill/restart primitives
// need a process-shaped handle, whether the daemon runs in this
// process (tests, -local) or as a real subprocess (CI, soaks).
type Node interface {
	// Name is a short stable label ("node0").
	Name() string
	// URL is the node's base URL, stable across restarts.
	URL() string
	// Client speaks directly to the node (not through the gateway).
	Client() *server.Client
	// DataDir is the node's blob repository root on disk.
	DataDir() string
	// Alive reports whether the node is currently running.
	Alive() bool
	// Kill stops the node abruptly — no shutdown hook runs, exactly
	// like SIGKILL. Idempotent.
	Kill() error
	// Restart brings a killed node back on the same address and data
	// dir, so recovery-scan semantics match a real daemon restart. It
	// waits until the node answers /healthz.
	Restart() error
}

// Fleet is the system under test: N nodes behind an in-process
// cluster gateway.
type Fleet struct {
	Nodes    []Node
	Gateway  *cluster.Gateway
	Replicas int
	// URL is the gateway's base URL; Client speaks to it; Admin drives
	// the membership and rebalance endpoints.
	URL    string
	Client *server.Client
	Admin  *cluster.Admin

	gwServer *http.Server
	gwErr    chan error

	// spawn builds one more node of the fleet's kind (in-process or
	// subprocess) for the elastic-membership recipes.
	spawn func(ctx context.Context, name string) (Node, error)
}

// SpawnNode starts one additional node of the fleet's kind (fresh
// data dir, next free name) and appends it to Nodes. It does NOT join
// the node to the gateway — that is the admin step under test. Call
// only from the recipe goroutine: Nodes is not locked.
func (f *Fleet) SpawnNode(ctx context.Context) (Node, error) {
	if f.spawn == nil {
		return nil, fmt.Errorf("chaos: fleet cannot spawn nodes")
	}
	n, err := f.spawn(ctx, fmt.Sprintf("node%d", len(f.Nodes)))
	if err != nil {
		return nil, err
	}
	f.Nodes = append(f.Nodes, n)
	return n, nil
}

// Close tears the whole fleet down: gateway first (draining repairs),
// then every node.
func (f *Fleet) Close() {
	if f.gwServer != nil {
		_ = f.gwServer.Close()
	}
	if f.Gateway != nil {
		f.Gateway.Stop()
	}
	for _, n := range f.Nodes {
		_ = n.Kill()
	}
}

// AliveNodes counts nodes currently running.
func (f *Fleet) AliveNodes() int {
	alive := 0
	for _, n := range f.Nodes {
		if n.Alive() {
			alive++
		}
	}
	return alive
}

// startGateway mounts an in-process cluster gateway over the node
// URLs on a fresh loopback listener.
func (f *Fleet) startGateway(ctx context.Context, probe time.Duration) error {
	urls := make([]string, len(f.Nodes))
	for i, n := range f.Nodes {
		urls[i] = n.URL()
	}
	gw, err := cluster.New(urls, cluster.Options{
		Replicas:      f.Replicas,
		ProbeInterval: probe,
		ProbeTimeout:  2 * probe,
		HopTimeout:    10 * time.Second,
		// Membership recipes wait on rebalance convergence, so pass
		// frequently; every membership change also kicks a pass.
		RebalanceInterval: 700 * time.Millisecond,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	gw.Start(ctx)
	f.Gateway = gw
	f.URL = "http://" + ln.Addr().String()
	f.Client = server.NewClient(f.URL, nil)
	f.Admin = cluster.NewAdmin(f.URL, nil)
	f.gwServer = &http.Server{Handler: gw.Handler()}
	f.gwErr = make(chan error, 1)
	go func() { f.gwErr <- f.gwServer.Serve(ln) }()
	return waitHealthy(ctx, f.Client, 10*time.Second)
}

// waitHealthy polls /healthz until it answers or the deadline lapses.
func waitHealthy(ctx context.Context, cl *server.Client, timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		cctx, cancel := context.WithTimeout(ctx, time.Second)
		err := cl.Health(cctx)
		cancel()
		if err == nil {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("chaos: %s not healthy after %s: %w", cl.Base(), timeout, err)
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(50 * time.Millisecond):
		}
	}
}

// ── in-process nodes ───────────────────────────────────────────────

// localNode runs a server.Server on a pinned loopback address inside
// this process. Kill closes the HTTP server (in-flight connections
// die, nothing is flushed — the daemon's write-through durability is
// exactly what makes that survivable); Restart builds a fresh server
// over the same data dir, so loaded tasks are lost and the recovery
// scan re-indexes blobs, matching a real kill -9.
type localNode struct {
	name    string
	addr    string
	dataDir string
	client  *server.Client

	mu    sync.Mutex
	hs    *http.Server
	alive bool
	// Hijacked stream connections. http.Server.Close does not touch
	// them (they left its accounting at upgrade time), so a faithful
	// kill -9 must sever them by hand or the "dead" node would keep
	// serving its transport streams. Entries leave when the conn
	// closes (trackedConn) so streams that end naturally during a long
	// soak do not accumulate.
	hijacked map[net.Conn]struct{}
}

// trackedListener wraps every accepted conn so closing it — whether
// by the stream server after a natural disconnect or by Kill — drops
// it from the node's hijacked map. ConnState and the handler's Hijack
// both see the wrapper (http.Server passes the accepted conn through),
// so the map key and the conn the transport closes are the same value.
type trackedListener struct {
	net.Listener
	node *localNode
}

func (l trackedListener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return &trackedConn{Conn: c, node: l.node}, nil
}

type trackedConn struct {
	net.Conn
	node *localNode
}

func (c *trackedConn) Close() error {
	c.node.mu.Lock()
	delete(c.node.hijacked, c)
	c.node.mu.Unlock()
	return c.Conn.Close()
}

func newLocalNode(ctx context.Context, name, dataDir string) (*localNode, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	n := &localNode{
		name:    name,
		addr:    ln.Addr().String(),
		dataDir: dataDir,
	}
	n.client = server.NewClient(n.URL(), nil)
	if err := n.start(ln); err != nil {
		ln.Close()
		return nil, err
	}
	return n, waitHealthy(ctx, n.client, 10*time.Second)
}

func (n *localNode) start(ln net.Listener) error {
	ctrls := make([]*controller.Controller, nodeFabrics)
	for i := range ctrls {
		f, err := fabric.New(arch.Params{W: NodeW, K: NodeK}, arch.Grid{Width: nodeSide, Height: nodeSide})
		if err != nil {
			return err
		}
		ctrls[i] = controller.New(f, 2)
	}
	srv, err := server.New(ctrls, server.Options{
		DataDir:     n.dataDir,
		EnableChaos: true,
	})
	if err != nil {
		return err
	}
	hs := &http.Server{
		Handler: srv.Handler(),
		ConnState: func(c net.Conn, st http.ConnState) {
			if st != http.StateHijacked {
				return
			}
			n.mu.Lock()
			if n.hijacked == nil {
				n.hijacked = make(map[net.Conn]struct{})
			}
			n.hijacked[c] = struct{}{}
			n.mu.Unlock()
		},
	}
	go func() { _ = hs.Serve(trackedListener{Listener: ln, node: n}) }()
	n.mu.Lock()
	n.hs, n.alive = hs, true
	n.mu.Unlock()
	return nil
}

func (n *localNode) Name() string           { return n.name }
func (n *localNode) URL() string            { return "http://" + n.addr }
func (n *localNode) Client() *server.Client { return n.client }
func (n *localNode) DataDir() string        { return n.dataDir }

func (n *localNode) Alive() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.alive
}

func (n *localNode) Kill() error {
	n.mu.Lock()
	hs := n.hs
	conns := n.hijacked
	n.hs, n.alive, n.hijacked = nil, false, nil
	n.mu.Unlock()
	for c := range conns {
		c.Close()
	}
	if hs != nil {
		return hs.Close()
	}
	return nil
}

func (n *localNode) Restart() error {
	if n.Alive() {
		return nil
	}
	// The old listener is closed; the pinned port is free again. A
	// brief retry absorbs the TIME_WAIT-ish window.
	var ln net.Listener
	var err error
	for i := 0; i < 50; i++ {
		if ln, err = net.Listen("tcp", n.addr); err == nil {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err != nil {
		return fmt.Errorf("chaos: rebind %s: %w", n.addr, err)
	}
	if err := n.start(ln); err != nil {
		ln.Close()
		return err
	}
	return waitHealthy(context.Background(), n.client, 10*time.Second)
}

// NewLocalFleet builds an all-in-process fleet: n nodes with data
// dirs under workDir, behind a gateway with the given replica count.
func NewLocalFleet(ctx context.Context, workDir string, n, replicas int, probe time.Duration) (*Fleet, error) {
	f := &Fleet{Replicas: replicas}
	f.spawn = func(ctx context.Context, name string) (Node, error) {
		return newLocalNode(ctx, name, filepath.Join(workDir, "data-"+name))
	}
	for i := 0; i < n; i++ {
		node, err := newLocalNode(ctx, fmt.Sprintf("node%d", i), filepath.Join(workDir, fmt.Sprintf("data%d", i)))
		if err != nil {
			f.Close()
			return nil, err
		}
		f.Nodes = append(f.Nodes, node)
	}
	if err := f.startGateway(ctx, probe); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}

// ── subprocess nodes ───────────────────────────────────────────────

// procNode runs a real vbsd binary. Kill delivers SIGKILL.
type procNode struct {
	name    string
	addr    string
	dataDir string
	vbsd    string
	logPath string
	client  *server.Client

	mu  sync.Mutex
	cmd *exec.Cmd
}

func newProcNode(ctx context.Context, vbsd, name, dataDir, logPath string) (*procNode, error) {
	// Reserve a loopback port by binding and releasing it; the daemon
	// rebinds it immediately after.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	addr := ln.Addr().String()
	ln.Close()
	n := &procNode{
		name:    name,
		addr:    addr,
		dataDir: dataDir,
		vbsd:    vbsd,
		logPath: logPath,
	}
	n.client = server.NewClient(n.URL(), nil)
	if err := n.spawn(ctx); err != nil {
		return nil, err
	}
	return n, nil
}

func (n *procNode) spawn(ctx context.Context) error {
	logf, err := os.OpenFile(n.logPath, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	cmd := exec.Command(n.vbsd,
		"-addr", n.addr,
		"-fabrics", fmt.Sprint(nodeFabrics),
		"-size", fmt.Sprintf("%dx%d", nodeSide, nodeSide),
		"-w", fmt.Sprint(NodeW),
		"-k", fmt.Sprint(NodeK),
		"-data-dir", n.dataDir,
		"-chaos",
	)
	cmd.Stdout, cmd.Stderr = logf, logf
	if err := cmd.Start(); err != nil {
		logf.Close()
		return err
	}
	logf.Close() // the child holds its own descriptor
	n.mu.Lock()
	n.cmd = cmd
	n.mu.Unlock()
	if err := waitHealthy(ctx, n.client, 15*time.Second); err != nil {
		_ = n.Kill()
		return err
	}
	return nil
}

func (n *procNode) Name() string           { return n.name }
func (n *procNode) URL() string            { return "http://" + n.addr }
func (n *procNode) Client() *server.Client { return n.client }
func (n *procNode) DataDir() string        { return n.dataDir }

func (n *procNode) Alive() bool {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.cmd != nil
}

func (n *procNode) Kill() error {
	n.mu.Lock()
	cmd := n.cmd
	n.cmd = nil
	n.mu.Unlock()
	if cmd == nil || cmd.Process == nil {
		return nil
	}
	_ = cmd.Process.Kill()
	_ = cmd.Wait()
	return nil
}

func (n *procNode) Restart() error {
	if n.Alive() {
		return nil
	}
	return n.spawn(context.Background())
}

// NewProcFleet builds a fleet of vbsd subprocesses (binary at
// vbsdPath) with data dirs and logs under workDir, behind an
// in-process gateway.
func NewProcFleet(ctx context.Context, vbsdPath, workDir string, n, replicas int, probe time.Duration) (*Fleet, error) {
	f := &Fleet{Replicas: replicas}
	f.spawn = func(ctx context.Context, name string) (Node, error) {
		return newProcNode(ctx, vbsdPath, name,
			filepath.Join(workDir, "data-"+name),
			filepath.Join(workDir, name+".log"))
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("node%d", i)
		node, err := newProcNode(ctx, vbsdPath, name,
			filepath.Join(workDir, "data"+fmt.Sprint(i)),
			filepath.Join(workDir, name+".log"))
		if err != nil {
			f.Close()
			return nil, err
		}
		f.Nodes = append(f.Nodes, node)
	}
	if err := f.startGateway(ctx, probe); err != nil {
		f.Close()
		return nil, err
	}
	return f, nil
}
