package chaos

// Invariant conditions: what must hold once the dust settles. The
// engine polls each condition until it passes or the convergence
// deadline lapses — convergence (read-repair, health probing) is
// asynchronous, so a single snapshot would race it.

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"time"

	"repro/internal/metrics"
	"repro/internal/repo"
	"repro/internal/server"
)

// Condition is one named invariant check over a settled fleet. Check
// returns nil when the invariant holds right now.
type Condition struct {
	Name  string
	Check func(ctx context.Context, e *Env) error
}

// ConditionResult is one condition's outcome in the report.
type ConditionResult struct {
	Name   string  `json:"name"`
	Passed bool    `json:"passed"`
	Error  string  `json:"error,omitempty"`
	WaitS  float64 `json:"wait_s"`
}

// StandardConditions returns the invariant set every recipe must
// leave intact, in checking order: retrieval first (its reads also
// trigger the repair sweeps replica convergence needs).
func StandardConditions() []Condition {
	return []Condition{
		{"blobs-retrievable", checkBlobsRetrievable},
		{"replicas-converge", checkReplicasConverge},
		{"no-orphaned-occupancy", checkNoOrphanedOccupancy},
		{"no-task-resurrection", checkNoTaskResurrection},
		{"metrics-scrapeable", checkMetricsScrapeable},
		{"error-budget", checkErrorBudget},
	}
}

// checkBlobsRetrievable: every digest the gateway ever acked is
// retrievable through the gateway, byte-identical to what was acked.
func checkBlobsRetrievable(ctx context.Context, e *Env) error {
	acked := e.Work.Acked()
	digests := make([]string, 0, len(acked))
	for d := range acked {
		digests = append(digests, d)
	}
	sort.Strings(digests)
	for _, d := range digests {
		data, err := e.Fleet.Client.GetVBSCtx(ctx, d)
		if err != nil {
			return fmt.Errorf("acked digest %.12s not retrievable: %w", d, err)
		}
		if repo.DigestOf(data).String() != d {
			return fmt.Errorf("acked digest %.12s served corrupt bytes", d)
		}
	}
	return nil
}

// checkReplicasConverge: every acked digest sits on min(R, alive)
// nodes. Reads the gateway's merged /vbs listing, whose Replicas
// field counts holders; issues a gateway read for any degraded digest
// so the next poll finds the repair sweep done.
func checkReplicasConverge(ctx context.Context, e *Env) error {
	want := e.Fleet.Replicas
	if alive := e.Fleet.AliveNodes(); alive < want {
		want = alive
	}
	listing, err := e.Fleet.Client.ListVBSCtx(ctx)
	if err != nil {
		return fmt.Errorf("merged vbs listing: %w", err)
	}
	replicas := make(map[string]int, len(listing))
	for _, b := range listing {
		replicas[b.Digest] = b.Replicas
	}
	for d := range e.Work.Acked() {
		if got := replicas[d]; got < want {
			// Nudge: a gateway read schedules the owner-verification
			// sweep that heals the set.
			_, _ = e.Fleet.Client.GetVBSCtx(ctx, d)
			return fmt.Errorf("digest %.12s on %d node(s), want %d", d, got, want)
		}
	}
	return nil
}

// checkNoOrphanedOccupancy: on every alive node, the fabric
// controllers' live-task count matches the task listing — no region
// stays occupied by a task the API no longer knows.
func checkNoOrphanedOccupancy(ctx context.Context, e *Env) error {
	for _, n := range e.Fleet.Nodes {
		if !n.Alive() {
			continue
		}
		fabrics, err := n.Client().FabricsCtx(ctx)
		if err != nil {
			return fmt.Errorf("%s fabrics: %w", n.Name(), err)
		}
		occupied := 0
		for _, f := range fabrics {
			occupied += f.Tasks
		}
		tasks, err := n.Client().TasksCtx(ctx)
		if err != nil {
			return fmt.Errorf("%s tasks: %w", n.Name(), err)
		}
		if occupied != len(tasks) {
			return fmt.Errorf("%s: %d task(s) occupying fabrics, %d listed", n.Name(), occupied, len(tasks))
		}
	}
	return nil
}

// checkNoTaskResurrection: no task whose unload the gateway acked is
// listed again.
func checkNoTaskResurrection(ctx context.Context, e *Env) error {
	tasks, err := e.Fleet.Client.TasksCtx(ctx)
	if err != nil {
		return fmt.Errorf("gateway tasks: %w", err)
	}
	live := make(map[int64]bool, len(tasks))
	for _, t := range tasks {
		live[t.ID] = true
	}
	for _, id := range e.Work.UnloadedTasks() {
		if live[id] {
			return fmt.Errorf("task %d resurrected after acked unload", id)
		}
	}
	return nil
}

// checkMetricsScrapeable: the gateway and at least one alive node
// serve a parseable Prometheus exposition carrying the metric
// families operators alert on. A daemon that survived the fault but
// dropped its scrape endpoint (or a registration bug that emptied a
// family) is an observability outage even when the data plane heals.
func checkMetricsScrapeable(ctx context.Context, e *Env) error {
	gw, err := e.Fleet.Client.MetricsCtx(ctx)
	if err != nil {
		return fmt.Errorf("gateway /metrics: %w", err)
	}
	for _, fam := range []string{
		"vbs_gateway_op_duration_seconds",
		"vbs_cluster_nodes",
		"vbs_cluster_alive_nodes",
		"vbs_rebalance_passes_total",
		"vbs_jobs_running",
		"vbs_transport_streams_open",
		"vbs_transport_frames_sent_total",
	} {
		if !hasFamily(gw, fam) {
			return fmt.Errorf("gateway /metrics missing family %s", fam)
		}
	}
	scraped := false
	for _, n := range e.Fleet.Nodes {
		if !n.Alive() {
			continue
		}
		node, err := n.Client().MetricsCtx(ctx)
		if err != nil {
			return fmt.Errorf("%s /metrics: %w", n.Name(), err)
		}
		for _, fam := range []string{
			"vbs_server_op_duration_seconds",
			"vbs_cache_hits_total",
			"vbs_jobs_running",
			"vbs_transport_streams_open",
			"vbs_transport_frames_received_total",
		} {
			if !hasFamily(node, fam) {
				return fmt.Errorf("%s /metrics missing family %s", n.Name(), fam)
			}
		}
		scraped = true
		break
	}
	if !scraped {
		return fmt.Errorf("no alive node to scrape")
	}
	return nil
}

// hasFamily reports whether any sample belongs to the named family,
// counting a histogram's expanded _bucket/_sum/_count series.
func hasFamily(samples []metrics.Sample, name string) bool {
	for _, s := range samples {
		if s.Name == name {
			return true
		}
		if strings.HasPrefix(s.Name, name) {
			switch strings.TrimPrefix(s.Name, name) {
			case "_bucket", "_sum", "_count":
				return true
			}
		}
	}
	return false
}

// deletedBlobStaysDead builds the recipe condition for a blob deleted
// mid-rebalance: the gateway must answer 404/410, and no alive node
// may hold a copy — a mover resurrecting it means the tombstone was
// ignored.
func deletedBlobStaysDead(digest string) Condition {
	return Condition{
		Name: "deleted-blob-stays-dead",
		Check: func(ctx context.Context, e *Env) error {
			if _, err := e.Fleet.Client.GetVBSCtx(ctx, digest); err == nil {
				return fmt.Errorf("deleted blob %.12s still served by the gateway", digest)
			} else if sc := server.StatusCode(err); sc != 404 && sc != 410 {
				return fmt.Errorf("deleted blob %.12s: unexpected gateway reply: %w", digest, err)
			}
			for _, n := range e.Fleet.Nodes {
				if !n.Alive() {
					continue
				}
				blobs, err := n.Client().ListVBSCtx(ctx)
				if err != nil {
					return fmt.Errorf("%s vbs listing: %w", n.Name(), err)
				}
				for _, b := range blobs {
					if b.Digest == digest {
						return fmt.Errorf("deleted blob %.12s resurfaced on %s", digest, n.Name())
					}
				}
			}
			return nil
		},
	}
}

// ownersHoldReplicas: every alive ring owner of every acked digest
// actually holds a copy. Stronger than replicas-converge after a
// membership change — the count can be satisfied by stale holders
// while a freshly joined node still owns digests it never received.
// Surplus copies on non-owners are allowed: live task references
// legitimately veto their trim.
var ownersHoldReplicas = Condition{
	Name: "owners-hold-replicas",
	Check: func(ctx context.Context, e *Env) error {
		ring := e.Fleet.Gateway.Ring()
		byURL := make(map[string]Node, len(e.Fleet.Nodes))
		holders := make(map[string]map[string]bool, len(e.Fleet.Nodes))
		for _, n := range e.Fleet.Nodes {
			byURL[n.URL()] = n
			if !n.Alive() {
				continue
			}
			blobs, err := n.Client().ListVBSCtx(ctx)
			if err != nil {
				return fmt.Errorf("%s vbs listing: %w", n.Name(), err)
			}
			set := make(map[string]bool, len(blobs))
			for _, b := range blobs {
				set[b.Digest] = true
			}
			holders[n.URL()] = set
		}
		for ds := range e.Work.Acked() {
			d, err := repo.ParseDigest(ds)
			if err != nil {
				return err
			}
			for _, owner := range ring.Lookup(d, e.Fleet.Replicas) {
				n := byURL[owner]
				if n == nil || !n.Alive() {
					continue
				}
				if !holders[owner][ds] {
					return fmt.Errorf("owner %s of %.12s does not hold it yet", n.Name(), ds)
				}
			}
		}
		return nil
	},
}

// sampleValue returns the value of a single unlabeled sample (0 when
// absent).
func sampleValue(samples []metrics.Sample, name string) float64 {
	for _, s := range samples {
		if s.Name == name {
			return s.Value
		}
	}
	return 0
}

// streamsHealed: after a kill-and-restart the gateway's persistent
// data-plane streams recovered on their own. The streams-open gauge
// proves the pool is live again, and the reconnect counter proves the
// recovery went through the stream's redial path — the killed node's
// stream was cut mid-flight and came back, with nothing replayed
// corruptly (corrupt serves are independently fatal in
// checkErrorBudget).
var streamsHealed = Condition{
	Name: "streams-healed",
	Check: func(ctx context.Context, e *Env) error {
		samples, err := e.Fleet.Client.MetricsCtx(ctx)
		if err != nil {
			return fmt.Errorf("gateway /metrics: %w", err)
		}
		if open := sampleValue(samples, "vbs_transport_streams_open"); open < 1 {
			return fmt.Errorf("no live gateway stream (open=%g)", open)
		}
		if rec := sampleValue(samples, "vbs_transport_reconnects_total"); rec < 1 {
			return fmt.Errorf("no stream reconnect recorded — the killed node's stream never re-dialed")
		}
		return nil
	},
}

// checkErrorBudget: the client-visible error rate stayed inside the
// recipe's budget, and no read ever returned corrupt bytes.
func checkErrorBudget(ctx context.Context, e *Env) error {
	s := e.Work.Stats()
	if s.CorruptServes > 0 {
		return fmt.Errorf("%d corrupt serve(s) — never acceptable", s.CorruptServes)
	}
	if s.Ops == 0 {
		return fmt.Errorf("workload completed no operation")
	}
	if s.ErrorRate > e.Cfg.ErrorBudget {
		return fmt.Errorf("error rate %.3f (%d/%d ops, last: %s) exceeds budget %.3f",
			s.ErrorRate, s.Errors, s.Ops, s.LastError, e.Cfg.ErrorBudget)
	}
	return nil
}

// pollCondition re-evaluates a condition until it passes or the
// deadline lapses, returning the result and the time it took.
func pollCondition(ctx context.Context, e *Env, c Condition, deadline time.Duration) ConditionResult {
	start := time.Now()
	var last error
	for {
		cctx, cancel := context.WithTimeout(ctx, 15*time.Second)
		last = c.Check(cctx, e)
		cancel()
		if last == nil {
			return ConditionResult{Name: c.Name, Passed: true, WaitS: time.Since(start).Seconds()}
		}
		if time.Since(start) > deadline || ctx.Err() != nil {
			return ConditionResult{Name: c.Name, Passed: false, Error: last.Error(), WaitS: time.Since(start).Seconds()}
		}
		select {
		case <-ctx.Done():
		case <-time.After(200 * time.Millisecond):
		}
	}
}
