package chaos

import (
	"context"
	"math/rand"
	"sync"
	"time"

	"repro/internal/repo"
	"repro/internal/server"
)

// WorkloadStats is the client-side scoreboard of one chaos run.
type WorkloadStats struct {
	Ops    int `json:"ops"`
	Errors int `json:"errors"`
	// Stale counts unloads answered 404 — the task died with its node
	// (a killed daemon loses fabric state by design), which is not a
	// client-visible failure.
	Stale int `json:"stale"`
	// Backpressure counts loads refused 409 because no fabric had a
	// free slot. Small fleets saturate quickly under a load-heavy mix;
	// a full cluster answering 409 is behaving, not failing.
	Backpressure int `json:"backpressure"`
	// CorruptServes counts gateway reads whose bytes did not hash to
	// the requested digest. The invariant is zero, always.
	CorruptServes int     `json:"corrupt_serves"`
	ErrorRate     float64 `json:"error_rate"`
	AckedDigests  int     `json:"acked_digests"`
	UnloadedTasks int     `json:"unloaded_tasks"`
	LastError     string  `json:"last_error,omitempty"`
}

// Workload drives a continuous load/get/unload mix at the gateway
// while a recipe injects faults, and tracks what the cluster acked —
// the ground truth the invariant conditions check against.
type Workload struct {
	cl         *server.Client
	containers [][]byte
	digests    []string

	cancel context.CancelFunc
	wg     sync.WaitGroup

	mu       sync.Mutex
	acked    map[string][]byte // digest -> container, acked by the gateway
	loaded   []int64           // gateway task ids eligible for unload
	unloaded map[int64]bool    // task ids whose unload was acked
	stats    WorkloadStats
}

// NewWorkload wraps a gateway client and the task containers to mix.
func NewWorkload(cl *server.Client, containers [][]byte) *Workload {
	w := &Workload{
		cl:         cl,
		containers: containers,
		acked:      make(map[string][]byte),
		unloaded:   make(map[int64]bool),
	}
	for _, c := range containers {
		w.digests = append(w.digests, repo.DigestOf(c).String())
	}
	return w
}

// Start launches the worker goroutines. Stop (or ctx cancellation)
// ends them.
func (w *Workload) Start(ctx context.Context, workers int, seed int64) {
	ctx, w.cancel = context.WithCancel(ctx)
	for i := 0; i < workers; i++ {
		w.wg.Add(1)
		go func(i int) {
			defer w.wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(i)*7919))
			for ctx.Err() == nil {
				w.doOne(ctx, rng)
				select {
				case <-ctx.Done():
				case <-time.After(time.Duration(5+rng.Intn(10)) * time.Millisecond):
				}
			}
		}(i)
	}
}

// Stop ends the workers and waits for in-flight ops to finish.
func (w *Workload) Stop() {
	if w.cancel != nil {
		w.cancel()
	}
	w.wg.Wait()
}

// Stats snapshots the scoreboard.
func (w *Workload) Stats() WorkloadStats {
	w.mu.Lock()
	defer w.mu.Unlock()
	s := w.stats
	s.AckedDigests = len(w.acked)
	s.UnloadedTasks = len(w.unloaded)
	if s.Ops > 0 {
		s.ErrorRate = float64(s.Errors) / float64(s.Ops)
	}
	return s
}

// Acked returns a copy of every digest the gateway acked, with the
// container bytes it acked them for.
func (w *Workload) Acked() map[string][]byte {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make(map[string][]byte, len(w.acked))
	for d, c := range w.acked {
		out[d] = c
	}
	return out
}

// UnloadedTasks returns every gateway task id whose unload was acked.
func (w *Workload) UnloadedTasks() []int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	out := make([]int64, 0, len(w.unloaded))
	for id := range w.unloaded {
		out = append(out, id)
	}
	return out
}

// aborted reports whether an op's transport failure was caused by the
// workload's own shutdown: the run context is canceled and the error
// carries no server status. Such ops are discarded — the client hung
// up, the cluster did not fail — which is what lets a graceful
// recipe hold a zero error budget.
func aborted(ctx context.Context, err error) bool {
	return err != nil && ctx.Err() != nil && server.StatusCode(err) == 0
}

func (w *Workload) record(err error) {
	w.mu.Lock()
	defer w.mu.Unlock()
	w.stats.Ops++
	if err != nil {
		w.stats.Errors++
		w.stats.LastError = err.Error()
	}
}

func (w *Workload) doOne(ctx context.Context, rng *rand.Rand) {
	octx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	// Fixed 40:40:20 load:get:unload mix, degrading get/unload to
	// load while their prerequisites don't exist yet — and degrading
	// load to unload once many tasks are outstanding, so a small
	// fleet's fabrics don't sit saturated for the whole run.
	n := rng.Intn(100)
	w.mu.Lock()
	op := "load"
	switch {
	case n >= 80 && len(w.loaded) > 0:
		op = "unload"
	case n >= 40 && len(w.acked) > 0:
		op = "get"
	case len(w.loaded) >= 8:
		op = "unload"
	}
	var id int64
	var digest string
	switch op {
	case "unload":
		i := rng.Intn(len(w.loaded))
		id = w.loaded[i]
		w.loaded[i] = w.loaded[len(w.loaded)-1]
		w.loaded = w.loaded[:len(w.loaded)-1]
	case "get":
		i := rng.Intn(len(w.digests))
		// Prefer digests the gateway acked; fall back on any.
		for off := 0; off < len(w.digests); off++ {
			d := w.digests[(i+off)%len(w.digests)]
			if _, ok := w.acked[d]; ok {
				digest = d
				break
			}
		}
	}
	w.mu.Unlock()

	switch op {
	case "load":
		i := rng.Intn(len(w.containers))
		data := w.containers[i]
		res, err := w.cl.LoadWithCtx(octx, data, server.LoadRequest{})
		if aborted(ctx, err) {
			return
		}
		if err != nil && server.StatusCode(err) == 409 {
			w.mu.Lock()
			w.stats.Ops++
			w.stats.Backpressure++
			w.mu.Unlock()
			return
		}
		w.record(err)
		if err == nil {
			w.mu.Lock()
			w.acked[res.Digest] = data
			w.loaded = append(w.loaded, res.ID)
			w.mu.Unlock()
		}
	case "get":
		data, err := w.cl.GetVBSCtx(octx, digest)
		if aborted(ctx, err) {
			return
		}
		if err == nil && repo.DigestOf(data).String() != digest {
			w.mu.Lock()
			w.stats.CorruptServes++
			w.mu.Unlock()
		}
		w.record(err)
	case "unload":
		err := w.cl.UnloadCtx(octx, id)
		switch {
		case aborted(ctx, err):
			// The task may survive the aborted call: put it back so a
			// later unload retires it.
			w.mu.Lock()
			w.loaded = append(w.loaded, id)
			w.mu.Unlock()
		case err == nil:
			w.record(nil)
			w.mu.Lock()
			w.unloaded[id] = true
			w.mu.Unlock()
		case server.StatusCode(err) == 404:
			// The task died with its node: stale, not an error. The
			// gateway dropped the mapping, so the id must stay gone.
			w.mu.Lock()
			w.stats.Ops++
			w.stats.Stale++
			w.unloaded[id] = true
			w.mu.Unlock()
		default:
			w.record(err)
			// The task may still exist (transport failure mid-flight):
			// put it back so a later unload retires it.
			w.mu.Lock()
			w.loaded = append(w.loaded, id)
			w.mu.Unlock()
		}
	}
}
