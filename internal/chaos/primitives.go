package chaos

// Fault primitives: the verbs recipes compose. Each primitive does
// one raw injection and records itself in the run report; recipes own
// sequencing and timing, conditions own judging the aftermath.

import (
	"context"
	"fmt"
	"os"
	"time"

	"repro/internal/repo"
	"repro/internal/server"
)

// KillNode stops a node abruptly (SIGKILL semantics).
func (e *Env) KillNode(n Node) error {
	e.recordFault("kill %s", n.Name())
	return n.Kill()
}

// RestartNode brings a killed node back on its old address and data
// dir and waits for it to answer /healthz.
func (e *Env) RestartNode(n Node) error {
	e.recordFault("restart %s", n.Name())
	return n.Restart()
}

// ArmFaults sets a node's repo fault seam over HTTP (the node runs
// with chaos endpoints enabled).
func (e *Env) ArmFaults(ctx context.Context, n Node, f server.ChaosFaults) error {
	e.recordFault("faults %s %+v", n.Name(), f)
	cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	return n.Client().SetFaults(cctx, f)
}

// ClearFaults disarms a node's repo fault seam.
func (e *Env) ClearFaults(ctx context.Context, n Node) error {
	e.recordFault("faults %s cleared", n.Name())
	cctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	return n.Client().SetFaults(cctx, server.ChaosFaults{})
}

// AddFreshNode spawns one more node of the fleet's kind and joins it
// to the gateway through the membership API — an elastic scale-out,
// exactly what `vbsgw node add` does.
func (e *Env) AddFreshNode(ctx context.Context) (Node, error) {
	n, err := e.Fleet.SpawnNode(ctx)
	if err != nil {
		return nil, err
	}
	cctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	if _, err := e.Fleet.Admin.AddNode(cctx, n.URL()); err != nil {
		return nil, fmt.Errorf("chaos: join %s: %w", n.Name(), err)
	}
	e.recordFault("spawn + join %s (%s)", n.Name(), n.URL())
	return n, nil
}

// DrainMember starts a graceful decommission of a node: off the ring
// for new writes, still serving while the rebalancer empties it.
func (e *Env) DrainMember(ctx context.Context, n Node) error {
	e.recordFault("drain %s", n.Name())
	cctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	_, err := e.Fleet.Admin.DrainNode(cctx, n.URL())
	return err
}

// RemoveMember forgets a node at the gateway. The process keeps
// running (or stays dead) — only the membership changes.
func (e *Env) RemoveMember(ctx context.Context, n Node) error {
	e.recordFault("remove %s from membership", n.Name())
	cctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	_, err := e.Fleet.Admin.RemoveNode(cctx, n.URL())
	return err
}

// DeleteBlob deletes a digest through the gateway — fan-out delete
// plus tombstones on every member, so nothing resurrects it.
func (e *Env) DeleteBlob(ctx context.Context, digest string) error {
	e.recordFault("delete blob %.12s via gateway", digest)
	cctx, cancel := context.WithTimeout(ctx, 10*time.Second)
	defer cancel()
	return e.Fleet.Client.DeleteVBSCtx(cctx, digest)
}

// CorruptBlob flips a byte in the payload tail of a digest's on-disk
// blob file under a node's data dir — real bit rot, not the injection
// seam. The node's RAM tier may keep serving the healthy copy until
// it restarts; the boot recovery scan is what must quarantine.
func (e *Env) CorruptBlob(n Node, digest string) error {
	d, err := repo.ParseDigest(digest)
	if err != nil {
		return err
	}
	path := repo.BlobPath(n.DataDir(), d)
	raw, err := os.ReadFile(path)
	if err != nil {
		return fmt.Errorf("chaos: corrupt %s on %s: %w", d.Short(), n.Name(), err)
	}
	raw[len(raw)-1] ^= 0xff
	if err := os.WriteFile(path, raw, 0o644); err != nil {
		return fmt.Errorf("chaos: corrupt %s on %s: %w", d.Short(), n.Name(), err)
	}
	e.recordFault("corrupt blob %s on %s", d.Short(), n.Name())
	return nil
}
