// Package chaos is the soak/chaos harness for the vbsd/vbsgw stack:
// named fault recipes run against a live fleet while a continuous
// mixed workload drives traffic, then fleet-wide invariant conditions
// must converge. The split follows aistore's soaktest model:
//
//   - primitives (primitives.go) inject raw faults — process kill and
//     restart, repo I/O error injection, on-disk blob corruption;
//   - recipes (recipes.go) sequence primitives into named scenarios
//     (nodekill, diskfull, corruptblob, churn);
//   - conditions (conditions.go) judge the aftermath — every acked
//     blob retrievable byte-identical, replica counts back at R, no
//     orphaned fabric occupancy, no task resurrection, /metrics
//     scrapeable with the required families, error budget held.
//
// The workload (workload.go) tracks what the cluster acknowledged,
// which is the ground truth conditions check against. cmd/vbschaos is
// the CLI; the package tests run every recipe in-process.
package chaos

import (
	"context"
	"fmt"
	"sync"
	"time"

	"repro/internal/loadgen"
)

// Config tunes one chaos run.
type Config struct {
	// Short selects the CI-sized run: shorter traffic phases, fewer
	// cycles, tighter convergence deadline.
	Short bool
	// Workers is the workload's concurrent client count (0 = 4).
	Workers int
	// Tasks is the number of distinct containers to mix (0 = 4).
	Tasks int
	// Seed drives container generation and op mixing.
	Seed int64
	// ErrorBudget is the highest acceptable client error rate; 0
	// selects the recipe's default.
	ErrorBudget float64
	// Warmup / FaultPhase are the traffic windows before and during
	// fault injection; Converge bounds post-recipe invariant polling.
	// Zero values select Short-dependent defaults.
	Warmup     time.Duration
	FaultPhase time.Duration
	Converge   time.Duration
	// Log receives progress lines (nil = discard).
	Log func(format string, args ...any)
}

// withDefaults fills zero fields from the short/full profiles and the
// recipe's error budget.
func (c Config) withDefaults(budget float64) Config {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Tasks == 0 {
		c.Tasks = 4
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.ErrorBudget == 0 {
		c.ErrorBudget = budget
	}
	if c.Warmup == 0 {
		if c.Short {
			c.Warmup = 800 * time.Millisecond
		} else {
			c.Warmup = 3 * time.Second
		}
	}
	if c.FaultPhase == 0 {
		if c.Short {
			c.FaultPhase = 1500 * time.Millisecond
		} else {
			c.FaultPhase = 8 * time.Second
		}
	}
	if c.Converge == 0 {
		if c.Short {
			c.Converge = 30 * time.Second
		} else {
			c.Converge = 60 * time.Second
		}
	}
	if c.Log == nil {
		c.Log = func(string, ...any) {}
	}
	return c
}

// Report is the per-recipe JSON document a run emits.
type Report struct {
	Recipe   string  `json:"recipe"`
	Short    bool    `json:"short"`
	Nodes    int     `json:"nodes"`
	Replicas int     `json:"replicas"`
	WallS    float64 `json:"wall_s"`
	// FaultsInjected logs every primitive action in order.
	FaultsInjected []string          `json:"faults_injected"`
	Workload       WorkloadStats     `json:"workload"`
	ErrorBudget    float64           `json:"error_budget"`
	Conditions     []ConditionResult `json:"conditions"`
	Passed         bool              `json:"passed"`
}

// Env is what recipes and conditions see: the fleet under test, the
// live workload, the run config, and the report being built.
type Env struct {
	Fleet  *Fleet
	Work   *Workload
	Cfg    Config
	Report *Report

	mu    sync.Mutex
	extra []Condition
}

func (e *Env) recordFault(format string, args ...any) {
	line := fmt.Sprintf(format, args...)
	e.Cfg.Log("chaos: fault: %s", line)
	e.mu.Lock()
	e.Report.FaultsInjected = append(e.Report.FaultsInjected, line)
	e.mu.Unlock()
}

// AddCondition registers a recipe-specific invariant checked after
// the standard set — e.g. "the blob I deleted mid-rebalance stays
// dead". Conditions added during the recipe run with the same
// convergence polling as the standard ones.
func (e *Env) AddCondition(c Condition) {
	e.mu.Lock()
	e.extra = append(e.extra, c)
	e.mu.Unlock()
}

func (e *Env) conditions() []Condition {
	e.mu.Lock()
	defer e.mu.Unlock()
	return append(StandardConditions(), e.extra...)
}

// Sleep waits for d or until ctx is done.
func Sleep(ctx context.Context, d time.Duration) {
	select {
	case <-ctx.Done():
	case <-time.After(d):
	}
}

// Run executes one named recipe against the fleet: start the
// workload, warm up, let the recipe inject its faults under traffic,
// stop the workload, then poll every standard condition to
// convergence. The returned error covers harness failures; invariant
// violations land in the report with Passed=false.
func Run(ctx context.Context, f *Fleet, name string, cfg Config) (*Report, error) {
	rec, ok := Lookup(name)
	if !ok {
		return nil, fmt.Errorf("chaos: unknown recipe %q (have %v)", name, Names())
	}
	cfg = cfg.withDefaults(rec.ErrorBudget)
	start := time.Now()

	report := &Report{
		Recipe:         rec.Name,
		Short:          cfg.Short,
		Nodes:          len(f.Nodes),
		Replicas:       f.Replicas,
		ErrorBudget:    cfg.ErrorBudget,
		FaultsInjected: []string{},
	}

	cfg.Log("chaos: generating %d container(s)", cfg.Tasks)
	containers := make([][]byte, cfg.Tasks)
	for i := range containers {
		var err error
		if containers[i], err = loadgen.GenTask(cfg.Seed+int64(i), NodeW, NodeK); err != nil {
			return nil, fmt.Errorf("chaos: task generation: %w", err)
		}
	}

	env := &Env{
		Fleet:  f,
		Work:   NewWorkload(f.Client, containers),
		Cfg:    cfg,
		Report: report,
	}

	cfg.Log("chaos: recipe %s: workload up (%d workers), warmup %s", rec.Name, cfg.Workers, cfg.Warmup)
	env.Work.Start(ctx, cfg.Workers, cfg.Seed)
	Sleep(ctx, cfg.Warmup)

	recipeErr := rec.Run(ctx, env)

	cfg.Log("chaos: recipe %s: stopping workload", rec.Name)
	env.Work.Stop()
	report.Workload = env.Work.Stats()

	conds := env.conditions()
	cfg.Log("chaos: checking %d condition(s), converge budget %s", len(conds), cfg.Converge)
	allPassed := true
	for _, c := range conds {
		res := pollCondition(ctx, env, c, cfg.Converge)
		report.Conditions = append(report.Conditions, res)
		if res.Passed {
			cfg.Log("chaos: condition %-22s ok (%.1fs)", c.Name, res.WaitS)
		} else {
			cfg.Log("chaos: condition %-22s FAILED: %s", c.Name, res.Error)
			allPassed = false
		}
	}
	report.Workload = env.Work.Stats() // conditions don't add ops, but keep the freshest view
	report.WallS = time.Since(start).Seconds()
	report.Passed = allPassed && recipeErr == nil
	if recipeErr != nil {
		return report, fmt.Errorf("chaos: recipe %s: %w", rec.Name, recipeErr)
	}
	return report, nil
}
