package chaos

import (
	"context"
	"encoding/json"
	"testing"
	"time"
)

// testConfig is the fastest run that still exercises every phase.
func testConfig(t *testing.T) Config {
	return Config{
		Short:      true,
		Workers:    3,
		Tasks:      3,
		Seed:       1,
		Warmup:     300 * time.Millisecond,
		FaultPhase: 600 * time.Millisecond,
		Converge:   25 * time.Second,
		Log:        t.Logf,
	}
}

func newTestFleet(t *testing.T) *Fleet {
	t.Helper()
	f, err := NewLocalFleet(t.Context(), t.TempDir(), 3, 2, 100*time.Millisecond)
	if err != nil {
		t.Fatalf("NewLocalFleet: %v", err)
	}
	t.Cleanup(f.Close)
	return f
}

// runRecipe runs one recipe against a fresh 3-node fleet and fails on
// any harness error or invariant violation.
func runRecipe(t *testing.T, name string) *Report {
	t.Helper()
	f := newTestFleet(t)
	rep, err := Run(context.Background(), f, name, testConfig(t))
	if err != nil {
		t.Fatalf("recipe %s: %v", name, err)
	}
	if !rep.Passed {
		raw, _ := json.MarshalIndent(rep, "", "  ")
		t.Fatalf("recipe %s: invariant violation:\n%s", name, raw)
	}
	if len(rep.FaultsInjected) == 0 {
		t.Fatalf("recipe %s injected no fault", name)
	}
	if rep.Workload.Ops == 0 || rep.Workload.AckedDigests == 0 {
		t.Fatalf("recipe %s: workload did nothing: %+v", name, rep.Workload)
	}
	for _, c := range rep.Conditions {
		if !c.Passed {
			t.Fatalf("recipe %s: condition %s failed: %s", name, c.Name, c.Error)
		}
	}
	return rep
}

func TestRecipeNodeKill(t *testing.T)    { runRecipe(t, "nodekill") }
func TestRecipeDiskFull(t *testing.T)    { runRecipe(t, "diskfull") }
func TestRecipeCorruptBlob(t *testing.T) { runRecipe(t, "corruptblob") }
func TestRecipeChurn(t *testing.T)       { runRecipe(t, "churn") }
func TestRecipeDrain(t *testing.T)       { runRecipe(t, "drain") }

// TestRecipeNodeAdd is the acceptance scenario for elastic
// membership: SIGKILL one node and join a fresh one under live load —
// replica counts must converge back to R, with zero invariant
// violations and a blob deleted mid-rebalance staying dead.
func TestRecipeNodeAdd(t *testing.T) {
	rep := runRecipe(t, "nodeadd")
	for _, want := range []string{"deleted-blob-stays-dead", "owners-hold-replicas"} {
		found := false
		for _, c := range rep.Conditions {
			if c.Name == want {
				found = true
			}
		}
		if !found {
			t.Fatalf("recipe nodeadd did not register condition %s: %+v", want, rep.Conditions)
		}
	}
}

func TestRecipeRegistry(t *testing.T) {
	want := []string{"churn", "corruptblob", "diskfull", "drain", "nodeadd", "nodekill"}
	got := Names()
	if len(got) != len(want) {
		t.Fatalf("Names() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Names() = %v, want %v", got, want)
		}
	}
	if _, ok := Lookup("nodekill"); !ok {
		t.Fatal("nodekill not registered")
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("bogus recipe resolved")
	}
}

func TestRunUnknownRecipe(t *testing.T) {
	f := newTestFleet(t)
	if _, err := Run(context.Background(), f, "nope", testConfig(t)); err == nil {
		t.Fatal("unknown recipe did not error")
	}
}

// TestLocalNodeKillRestart pins the node-handle contract the recipes
// build on: a killed node refuses connections, a restarted one serves
// again on the same address with its blobs recovered from disk.
func TestLocalNodeKillRestart(t *testing.T) {
	f := newTestFleet(t)
	n := f.Nodes[0]
	ctx := context.Background()

	if err := n.Client().Health(ctx); err != nil {
		t.Fatalf("healthy node: %v", err)
	}
	if err := n.Kill(); err != nil {
		t.Fatalf("Kill: %v", err)
	}
	if n.Alive() {
		t.Fatal("killed node reports alive")
	}
	if err := n.Client().Health(ctx); err == nil {
		t.Fatal("killed node still answers")
	}
	url := n.URL()
	if err := n.Restart(); err != nil {
		t.Fatalf("Restart: %v", err)
	}
	if n.URL() != url {
		t.Fatalf("restart changed URL: %s -> %s", url, n.URL())
	}
	if err := n.Client().Health(ctx); err != nil {
		t.Fatalf("restarted node: %v", err)
	}
}
