// Package compress implements an LZSS codec over raw bitstreams: the
// baseline family of configuration-compression techniques the paper's
// related work builds on (Li & Hauck's Virtex configuration
// compression and Pan et al.'s inter-bitstream compression both start
// from LZSS). The VBS experiments compare against it to show how much
// of the redundancy a dictionary coder captures versus the
// architecture-aware virtual coding.
package compress

import (
	"encoding/binary"
	"fmt"
)

// LZSS parameters: a 4 KiB window with 3..18-byte matches, the classic
// configuration used by Storer & Szymanski-derived coders.
const (
	windowBits = 12
	windowSize = 1 << windowBits
	lengthBits = 4
	minMatch   = 3
	maxMatch   = minMatch + (1 << lengthBits) - 1
)

// CompressLZSS encodes data as a flag-bit stream of literals and
// (offset, length) back-references. The output begins with the input
// length as a uvarint so Decompress can size its buffer.
func CompressLZSS(data []byte) []byte {
	out := binary.AppendUvarint(nil, uint64(len(data)))
	if len(data) == 0 {
		return out
	}

	// Hash chains over 3-byte prefixes.
	const hashSize = 1 << 14
	head := make([]int32, hashSize)
	prev := make([]int32, len(data))
	for i := range head {
		head[i] = -1
	}
	hash := func(i int) uint32 {
		v := uint32(data[i]) | uint32(data[i+1])<<8 | uint32(data[i+2])<<16
		return (v * 2654435761) >> (32 - 14)
	}

	var flags byte
	var nflags int
	var flagPos int
	out = append(out, 0) // first flag byte placeholder
	flagPos = len(out) - 1

	emitFlag := func(isRef bool) {
		if nflags == 8 {
			// Flush the full group and start a new flag byte; the new
			// placeholder must precede this token's payload.
			out[flagPos] = flags
			flags, nflags = 0, 0
			out = append(out, 0)
			flagPos = len(out) - 1
		}
		if isRef {
			flags |= 1 << uint(nflags)
		}
		nflags++
	}

	insert := func(i int) {
		if i+minMatch <= len(data) {
			h := hash(i)
			prev[i] = head[h]
			head[h] = int32(i)
		}
	}

	i := 0
	for i < len(data) {
		bestLen, bestOff := 0, 0
		if i+minMatch <= len(data) {
			limit := i - windowSize
			if limit < 0 {
				limit = 0
			}
			cand := head[hash(i)]
			for tries := 0; cand >= int32(limit) && tries < 32; tries++ {
				j := int(cand)
				maxL := len(data) - i
				if maxL > maxMatch {
					maxL = maxMatch
				}
				l := 0
				for l < maxL && data[j+l] == data[i+l] {
					l++
				}
				if l > bestLen {
					bestLen, bestOff = l, i-j
				}
				cand = prev[j]
			}
		}
		if bestLen >= minMatch {
			emitFlag(true)
			// 12-bit offset-1, 4-bit length-minMatch packed into 2 bytes.
			token := uint16(bestOff-1)<<lengthBits | uint16(bestLen-minMatch)
			out = append(out, byte(token>>8), byte(token))
			for k := 0; k < bestLen; k++ {
				insert(i + k)
			}
			i += bestLen
		} else {
			emitFlag(false)
			out = append(out, data[i])
			insert(i)
			i++
		}
	}
	out[flagPos] = flags
	return out
}

// DecompressLZSS inverts CompressLZSS.
func DecompressLZSS(data []byte) ([]byte, error) {
	size, n := binary.Uvarint(data)
	if n <= 0 {
		return nil, fmt.Errorf("compress: truncated header")
	}
	if size > 1<<31 {
		return nil, fmt.Errorf("compress: implausible size %d", size)
	}
	out := make([]byte, 0, size)
	pos := n
	var flags byte
	var nflags int
	for uint64(len(out)) < size {
		if nflags == 0 {
			if pos >= len(data) {
				return nil, fmt.Errorf("compress: truncated flags")
			}
			flags = data[pos]
			pos++
			nflags = 8
		}
		isRef := flags&1 == 1
		flags >>= 1
		nflags--
		if isRef {
			if pos+1 >= len(data) {
				return nil, fmt.Errorf("compress: truncated reference")
			}
			token := uint16(data[pos])<<8 | uint16(data[pos+1])
			pos += 2
			off := int(token>>lengthBits) + 1
			length := int(token&(1<<lengthBits-1)) + minMatch
			if off > len(out) {
				return nil, fmt.Errorf("compress: reference %d before start", off)
			}
			for k := 0; k < length; k++ {
				out = append(out, out[len(out)-off])
			}
		} else {
			if pos >= len(data) {
				return nil, fmt.Errorf("compress: truncated literal")
			}
			out = append(out, data[pos])
			pos++
		}
	}
	if uint64(len(out)) != size {
		return nil, fmt.Errorf("compress: decoded %d bytes, want %d", len(out), size)
	}
	return out[:size], nil
}

// Ratio returns compressed size over original size for the given
// payload (1.0 means no compression).
func Ratio(data []byte) float64 {
	if len(data) == 0 {
		return 1
	}
	return float64(len(CompressLZSS(data))) / float64(len(data))
}
