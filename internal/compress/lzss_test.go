package compress

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"
)

func roundTrip(t *testing.T, data []byte) []byte {
	t.Helper()
	c := CompressLZSS(data)
	d, err := DecompressLZSS(c)
	if err != nil {
		t.Fatalf("decompress: %v", err)
	}
	if !bytes.Equal(d, data) {
		t.Fatalf("round trip mismatch: %d bytes in, %d out", len(data), len(d))
	}
	return c
}

func TestEmpty(t *testing.T) {
	c := roundTrip(t, nil)
	if len(c) != 1 {
		t.Errorf("empty input compresses to %d bytes", len(c))
	}
}

func TestLiteralOnly(t *testing.T) {
	roundTrip(t, []byte{1})
	roundTrip(t, []byte{1, 2})
	roundTrip(t, []byte("ab"))
}

func TestRepetitiveCompresses(t *testing.T) {
	data := bytes.Repeat([]byte{0x00}, 4096)
	c := roundTrip(t, data)
	if len(c) >= len(data)/4 {
		t.Errorf("zeros: %d -> %d, expected strong compression", len(data), len(c))
	}
	data2 := bytes.Repeat([]byte("abcdef"), 700)
	c2 := roundTrip(t, data2)
	if len(c2) >= len(data2)/4 {
		t.Errorf("pattern: %d -> %d", len(data2), len(c2))
	}
}

func TestRandomIncompressible(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	data := make([]byte, 8192)
	rng.Read(data)
	c := roundTrip(t, data)
	// Random data should grow only by the flag overhead (~12.5%).
	if len(c) > len(data)+len(data)/7+16 {
		t.Errorf("random data expanded too much: %d -> %d", len(data), len(c))
	}
}

func TestLongMatchAcrossWindow(t *testing.T) {
	// A match candidate farther than the window must not be used.
	var data []byte
	data = append(data, bytes.Repeat([]byte("xyz~"), 16)...) // pattern early
	data = append(data, make([]byte, windowSize+100)...)     // push out of window
	data = append(data, bytes.Repeat([]byte("xyz~"), 16)...) // pattern again
	roundTrip(t, data)
}

func TestOverlappingMatch(t *testing.T) {
	// RLE-style overlapping references (offset < length).
	data := append([]byte{7}, bytes.Repeat([]byte{7}, 100)...)
	roundTrip(t, data)
}

func TestDecompressErrors(t *testing.T) {
	good := CompressLZSS([]byte("hello hello hello hello"))
	cases := [][]byte{
		nil,
		good[:1],
		good[:len(good)-1],
	}
	for i, c := range cases {
		if _, err := DecompressLZSS(c); err == nil {
			t.Errorf("case %d: truncated input accepted", i)
		}
	}
	// Back-reference before start of output.
	bad := []byte{4, 0x01, 0x0f, 0xff}
	if _, err := DecompressLZSS(bad); err == nil {
		t.Error("invalid back-reference accepted")
	}
}

func TestRatio(t *testing.T) {
	if Ratio(nil) != 1 {
		t.Error("empty ratio should be 1")
	}
	zeros := Ratio(bytes.Repeat([]byte{0}, 4096))
	if zeros >= 0.25 {
		t.Errorf("zeros ratio %.3f too high", zeros)
	}
	rng := rand.New(rand.NewSource(2))
	rnd := make([]byte, 4096)
	rng.Read(rnd)
	if Ratio(rnd) <= 1.0 {
		t.Error("random data should expand slightly")
	}
}

// Property: compress/decompress is the identity for arbitrary inputs.
func TestQuickRoundTrip(t *testing.T) {
	f := func(data []byte) bool {
		c := CompressLZSS(data)
		d, err := DecompressLZSS(c)
		return err == nil && bytes.Equal(d, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// Property: structured data (few distinct bytes, runs) always shrinks.
func TestQuickStructuredShrinks(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		data := make([]byte, 2048)
		b := byte(0)
		for i := range data {
			if rng.Intn(8) == 0 {
				b = byte(rng.Intn(4))
			}
			data[i] = b
		}
		return len(CompressLZSS(data)) < len(data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkCompress(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	data := make([]byte, 1<<16)
	v := byte(0)
	for i := range data {
		if rng.Intn(16) == 0 {
			v = byte(rng.Intn(8))
		}
		data[i] = v
	}
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CompressLZSS(data)
	}
}

func BenchmarkDecompress(b *testing.B) {
	data := bytes.Repeat([]byte("configuration bitstream "), 3000)
	c := CompressLZSS(data)
	b.SetBytes(int64(len(data)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := DecompressLZSS(c); err != nil {
			b.Fatal(err)
		}
	}
}
