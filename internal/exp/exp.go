// Package exp is the experiment harness: it reruns the paper's
// evaluation (Section IV) end to end — synthetic MCNC twins through
// placement, routing, raw bitstream generation, VBS encoding at every
// cluster size, and the LZSS baseline — and renders the rows and
// series of Table II, Figure 4 and Figure 5, plus the decode-cost and
// ablation studies.
package exp

import (
	"fmt"
	"io"
	"math"
	"sort"
	"time"

	"repro/internal/arch"
	"repro/internal/bitstream"
	"repro/internal/compress"
	"repro/internal/core"
	"repro/internal/gen"
	"repro/internal/mcnc"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/report"
	"repro/internal/route"
	"repro/internal/rrg"
	"repro/internal/timing"
)

// Config selects what to run and at what effort.
type Config struct {
	// K is the LUT size (default 6, the paper's architecture).
	K int
	// NormW is the normalized channel width for the compression
	// studies (default 20, Section IV).
	NormW int
	// Scale divides benchmark sizes for quick runs (1 = full Table II
	// sizes; 4 reduces LB counts 16x). Default 4.
	Scale int
	// Clusters lists the cluster sizes for Figure 5 (default 1..6).
	Clusters []int
	// Benchmarks filters by name (default: all 20).
	Benchmarks []string
	// MeasureMCW runs the minimum-channel-width binary search
	// (Table II); otherwise MCW is reported as unmeasured.
	MeasureMCW bool
	// Ablations re-encodes with encoder features disabled.
	Ablations bool
	// PlaceInner is the annealer effort (default 1; VPR uses 10).
	PlaceInner float64
	// Seed offsets the per-benchmark generation seed (default 0).
	Seed int64
	// Progress receives log lines when non-nil.
	Progress io.Writer
}

func (c Config) withDefaults() Config {
	if c.K == 0 {
		c.K = 6
	}
	if c.NormW == 0 {
		c.NormW = 20
	}
	if c.Scale == 0 {
		c.Scale = 4
	}
	if len(c.Clusters) == 0 {
		c.Clusters = []int{1, 2, 3, 4, 5, 6}
	}
	if c.PlaceInner == 0 {
		c.PlaceInner = 1
	}
	return c
}

func (c Config) logf(format string, args ...interface{}) {
	if c.Progress != nil {
		fmt.Fprintf(c.Progress, format+"\n", args...)
	}
}

// VBSResult is one (benchmark, cluster size) measurement.
type VBSResult struct {
	Cluster    int
	SizeBits   int
	Ratio      float64 // VBS bits / raw bits
	Stats      core.EncodeStats
	EncodeTime time.Duration
	DecodeTime time.Duration
}

// AblationResult compares encoder variants on one benchmark.
type AblationResult struct {
	Variant  string
	SizeBits int
	Ratio    float64
	Raws     int
	Err      string
}

// BenchResult is everything measured for one benchmark.
type BenchResult struct {
	Profile     mcnc.Profile
	LBs         int
	Nets        int
	GridSide    int
	MCWMeasured int // 0 when not measured
	RouteIters  int
	// CritPath is the unit-delay critical path of the routed design.
	CritPath  int
	RawBits   int
	LZSSBits  int // LZSS-compressed raw container size in bits
	VBS       []VBSResult
	Ablations []AblationResult
}

// Results holds a full harness run.
type Results struct {
	Cfg        Config
	Benchmarks []BenchResult
}

// Run executes the configured experiments.
func Run(cfg Config) (*Results, error) {
	cfg = cfg.withDefaults()
	out := &Results{Cfg: cfg}
	profiles := mcnc.Profiles
	if len(cfg.Benchmarks) > 0 {
		profiles = nil
		for _, name := range cfg.Benchmarks {
			p, err := mcnc.ByName(name)
			if err != nil {
				return nil, err
			}
			profiles = append(profiles, p)
		}
	}
	for _, prof := range profiles {
		br, err := runBenchmark(cfg, prof)
		if err != nil {
			return nil, fmt.Errorf("exp: %s: %w", prof.Name, err)
		}
		out.Benchmarks = append(out.Benchmarks, *br)
	}
	return out, nil
}

func runBenchmark(cfg Config, prof mcnc.Profile) (*BenchResult, error) {
	scaled := prof.Scale(cfg.Scale)
	gp := scaled.GenParams(cfg.K)
	gp.Seed += cfg.Seed
	d, err := gen.Generate(gp)
	if err != nil {
		return nil, err
	}
	cfg.logf("%-12s generating: %d LBs, grid %d", prof.Name, d.NumLogicBlocks(), scaled.Size)

	start := time.Now()
	pl, err := place.Place(d, scaled.Grid(), place.Options{
		Seed: gp.Seed, InnerNum: cfg.PlaceInner,
	})
	if err != nil {
		return nil, err
	}
	cfg.logf("%-12s placed in %v (cost %.0f)", prof.Name, time.Since(start).Round(time.Millisecond), place.Cost(d, pl))

	br := &BenchResult{
		Profile:  prof,
		LBs:      d.NumLogicBlocks(),
		Nets:     len(d.Nets),
		GridSide: scaled.Size,
	}

	if cfg.MeasureMCW {
		start = time.Now()
		mcw, _, err := route.FindMCW(d, pl, cfg.K, route.Options{})
		if err != nil {
			return nil, fmt.Errorf("MCW search: %w", err)
		}
		br.MCWMeasured = mcw
		cfg.logf("%-12s MCW %d in %v (paper: %d)", prof.Name, mcw, time.Since(start).Round(time.Millisecond), prof.MCW)
	}

	// Normalized-width routing for the compression studies.
	start = time.Now()
	gr, err := rrg.Build(arch.Params{W: cfg.NormW, K: cfg.K}, pl.Grid)
	if err != nil {
		return nil, err
	}
	res, err := route.Route(d, pl, gr, route.Options{})
	if err != nil {
		return nil, fmt.Errorf("route at W=%d: %w", cfg.NormW, err)
	}
	cfg.logf("%-12s routed W=%d in %v (%d iters)", prof.Name, cfg.NormW, time.Since(start).Round(time.Millisecond), res.Iterations)
	br.RouteIters = res.Iterations
	if ta, err := timing.Analyze(d, res, timing.Delays{}); err == nil {
		br.CritPath = ta.CriticalPath
	}

	// Raw baseline and LZSS reference.
	raw, err := bitstream.Generate(d, pl, res)
	if err != nil {
		return nil, err
	}
	br.RawBits = raw.SizeBits()
	br.LZSSBits = 8 * len(compress.CompressLZSS(raw.Encode()))

	for _, c := range cfg.Clusters {
		start = time.Now()
		v, stats, err := core.Encode(d, pl, res, core.EncodeOptions{Cluster: c})
		if err != nil {
			return nil, fmt.Errorf("encode c=%d: %w", c, err)
		}
		encodeTime := time.Since(start)
		start = time.Now()
		if _, err := v.Decode(); err != nil {
			return nil, fmt.Errorf("decode c=%d: %w", c, err)
		}
		decodeTime := time.Since(start)
		br.VBS = append(br.VBS, VBSResult{
			Cluster:    c,
			SizeBits:   v.Size(),
			Ratio:      v.CompressionRatio(),
			Stats:      *stats,
			EncodeTime: encodeTime,
			DecodeTime: decodeTime,
		})
		cfg.logf("%-12s c=%d: %s (%.1f%% of raw; fallbacks %d = route %d + dead %d + conflict %d + count %d)",
			prof.Name, c, report.Bits(v.Size()), 100*v.CompressionRatio(), stats.RawRegions,
			stats.RouteFallbacks, stats.DeadEdgeFallbacks, stats.ConflictFallbacks, stats.CountFallbacks)
	}

	if cfg.Ablations {
		br.Ablations = runAblations(d, pl, res)
	}
	return br, nil
}

func runAblations(d *netlist.Design, pl *place.Placement, res *route.Result) []AblationResult {
	variants := []struct {
		name string
		opt  core.EncodeOptions
	}{
		{"default", core.EncodeOptions{Cluster: 1}},
		{"no-reorder", core.EncodeOptions{Cluster: 1, DisableReorder: true}},
		{"no-skip", core.EncodeOptions{Cluster: 1, KeepEmptyRegions: true}},
		{"no-fallback", core.EncodeOptions{Cluster: 1, DisableFallback: true}},
		{"c2-no-reorder", core.EncodeOptions{Cluster: 2, DisableReorder: true}},
		{"c2-default", core.EncodeOptions{Cluster: 2}},
	}
	var out []AblationResult
	for _, va := range variants {
		v, stats, err := core.Encode(d, pl, res, va.opt)
		if err != nil {
			out = append(out, AblationResult{Variant: va.name, Err: err.Error()})
			continue
		}
		out = append(out, AblationResult{
			Variant:  va.name,
			SizeBits: v.Size(),
			Ratio:    v.CompressionRatio(),
			Raws:     stats.RawRegions,
		})
	}
	return out
}

// Table2 renders the benchmark set table (paper Table II) with the
// measured minimum channel widths alongside the published ones.
func (r *Results) Table2() *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Table II: benchmark set (scale 1/%d)", r.Cfg.Scale),
		Headers: []string{"Name", "Size", "MCW(paper)", "MCW(ours)", "LBs(paper)", "LBs(ours)", "Nets", "CritPath"},
	}
	for _, b := range r.Benchmarks {
		mcw := "-"
		if b.MCWMeasured > 0 {
			mcw = fmt.Sprintf("%d", b.MCWMeasured)
		}
		t.AddRow(b.Profile.Name, b.GridSide, b.Profile.MCW, mcw, b.Profile.LBs, b.LBs, b.Nets, b.CritPath)
	}
	return t
}

// Fig4 renders the raw-vs-VBS size comparison (paper Figure 4) at the
// finest cluster size, with the LZSS baseline as an extra column.
func (r *Results) Fig4() *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Figure 4: raw BS vs VBS size, W=%d, cluster=1", r.Cfg.NormW),
		Headers: []string{"Name", "BS(bits)", "VBS(bits)", "VBS/BS", "LZSS/BS", "RawFallbacks"},
	}
	var sumRatio float64
	n := 0
	for _, b := range r.Benchmarks {
		v := b.vbsAt(1)
		if v == nil {
			continue
		}
		t.AddRow(b.Profile.Name, b.RawBits, v.SizeBits,
			report.Percent(v.Ratio),
			report.Percent(float64(b.LZSSBits)/float64(b.RawBits)),
			v.Stats.RawRegions)
		sumRatio += v.Ratio
		n++
	}
	if n > 0 {
		t.AddRow("AVERAGE", "", "", report.Percent(sumRatio/float64(n)), "", "")
	}
	return t
}

// Fig5 renders the cluster-size study (paper Figure 5): geometric mean
// VBS size with min/max across benchmarks, and the average
// compression ratio, per cluster size.
func (r *Results) Fig5() *report.Table {
	t := &report.Table{
		Title:   fmt.Sprintf("Figure 5: effect of macro cluster size, W=%d", r.Cfg.NormW),
		Headers: []string{"Cluster", "GeomeanVBS(bits)", "MinVBS", "MaxVBS", "AvgRatio", "AvgDecode"},
	}
	for _, c := range r.Cfg.Clusters {
		var logSum float64
		var minV, maxV int
		var sumRatio float64
		var sumDecode time.Duration
		n := 0
		for _, b := range r.Benchmarks {
			v := b.vbsAt(c)
			if v == nil {
				continue
			}
			logSum += math.Log(float64(v.SizeBits))
			if n == 0 || v.SizeBits < minV {
				minV = v.SizeBits
			}
			if v.SizeBits > maxV {
				maxV = v.SizeBits
			}
			sumRatio += v.Ratio
			sumDecode += v.DecodeTime
			n++
		}
		if n == 0 {
			continue
		}
		t.AddRow(c,
			int(math.Exp(logSum/float64(n))),
			minV, maxV,
			report.Percent(sumRatio/float64(n)),
			(sumDecode / time.Duration(n)).Round(time.Microsecond).String())
	}
	return t
}

// DecodeTable renders per-benchmark decode cost against cluster size
// (the "increased computing needs at runtime" of Section IV-B).
func (r *Results) DecodeTable() *report.Table {
	t := &report.Table{
		Title:   "Decode cost vs cluster size",
		Headers: append([]string{"Name"}, clusterHeaders(r.Cfg.Clusters)...),
	}
	for _, b := range r.Benchmarks {
		row := []interface{}{b.Profile.Name}
		for _, c := range r.Cfg.Clusters {
			v := b.vbsAt(c)
			if v == nil {
				row = append(row, "-")
			} else {
				row = append(row, v.DecodeTime.Round(time.Microsecond).String())
			}
		}
		t.AddRow(row...)
	}
	return t
}

// FallbackTable reports the feedback loop's behaviour per benchmark
// and cluster: raw fallback counts out of used regions.
func (r *Results) FallbackTable() *report.Table {
	t := &report.Table{
		Title:   "Feedback loop: raw fallbacks / used regions",
		Headers: append([]string{"Name"}, clusterHeaders(r.Cfg.Clusters)...),
	}
	for _, b := range r.Benchmarks {
		row := []interface{}{b.Profile.Name}
		for _, c := range r.Cfg.Clusters {
			v := b.vbsAt(c)
			if v == nil {
				row = append(row, "-")
			} else {
				row = append(row, fmt.Sprintf("%d/%d", v.Stats.RawRegions, v.Stats.UsedRegions))
			}
		}
		t.AddRow(row...)
	}
	return t
}

// AblationTable renders the encoder-variant study.
func (r *Results) AblationTable() *report.Table {
	t := &report.Table{
		Title:   "Ablations: encoder variants (cluster 1 unless noted)",
		Headers: []string{"Name", "Variant", "VBS(bits)", "Ratio", "RawFallbacks", "Error"},
	}
	for _, b := range r.Benchmarks {
		for _, a := range b.Ablations {
			if a.Err != "" {
				t.AddRow(b.Profile.Name, a.Variant, "-", "-", "-", truncate(a.Err, 48))
				continue
			}
			t.AddRow(b.Profile.Name, a.Variant, a.SizeBits, report.Percent(a.Ratio), a.Raws, "")
		}
	}
	return t
}

// RenderAll writes every applicable table.
func (r *Results) RenderAll(w io.Writer) {
	if r.Cfg.MeasureMCW {
		r.Table2().Render(w)
		fmt.Fprintln(w)
	}
	r.Fig4().Render(w)
	fmt.Fprintln(w)
	r.Fig5().Render(w)
	fmt.Fprintln(w)
	r.DecodeTable().Render(w)
	fmt.Fprintln(w)
	r.FallbackTable().Render(w)
	if r.Cfg.Ablations {
		fmt.Fprintln(w)
		r.AblationTable().Render(w)
	}
}

func (b *BenchResult) vbsAt(cluster int) *VBSResult {
	for i := range b.VBS {
		if b.VBS[i].Cluster == cluster {
			return &b.VBS[i]
		}
	}
	return nil
}

func clusterHeaders(cs []int) []string {
	out := make([]string, len(cs))
	sorted := append([]int(nil), cs...)
	sort.Ints(sorted)
	for i, c := range sorted {
		out[i] = fmt.Sprintf("c=%d", c)
	}
	return out
}

func truncate(s string, n int) string {
	if len(s) <= n {
		return s
	}
	return s[:n-3] + "..."
}
