package exp

import (
	"strings"
	"testing"
)

// smallRun executes the harness on two small benchmarks at heavy
// downscale, exercising the full pipeline.
func smallRun(t *testing.T, mcw, ablations bool) *Results {
	t.Helper()
	r, err := Run(Config{
		Scale:      6,
		Clusters:   []int{1, 2, 3},
		Benchmarks: []string{"ex5p", "alu4"},
		MeasureMCW: mcw,
		Ablations:  ablations,
	})
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestRunPipeline(t *testing.T) {
	r := smallRun(t, true, true)
	if len(r.Benchmarks) != 2 {
		t.Fatalf("%d benchmarks", len(r.Benchmarks))
	}
	for _, b := range r.Benchmarks {
		if b.RawBits <= 0 || b.LZSSBits <= 0 {
			t.Errorf("%s: sizes not measured", b.Profile.Name)
		}
		if b.MCWMeasured < 2 || b.MCWMeasured > 30 {
			t.Errorf("%s: MCW %d implausible", b.Profile.Name, b.MCWMeasured)
		}
		if len(b.VBS) != 3 {
			t.Fatalf("%s: %d cluster results", b.Profile.Name, len(b.VBS))
		}
		for _, v := range b.VBS {
			if v.SizeBits <= 0 || v.Ratio <= 0 || v.Ratio >= 1 {
				t.Errorf("%s c=%d: size %d ratio %.3f", b.Profile.Name, v.Cluster, v.SizeBits, v.Ratio)
			}
			if v.DecodeTime <= 0 || v.EncodeTime <= 0 {
				t.Errorf("%s c=%d: times not measured", b.Profile.Name, v.Cluster)
			}
		}
		if len(b.Ablations) == 0 {
			t.Errorf("%s: no ablations", b.Profile.Name)
		}
	}
}

func TestTablesRender(t *testing.T) {
	r := smallRun(t, true, true)
	var sb strings.Builder
	r.RenderAll(&sb)
	out := sb.String()
	for _, want := range []string{
		"Table II", "Figure 4", "Figure 5", "Decode cost",
		"Feedback loop", "Ablations",
		"ex5p", "alu4", "AVERAGE", "no-reorder",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
}

func TestUnknownBenchmark(t *testing.T) {
	if _, err := Run(Config{Benchmarks: []string{"nope"}}); err == nil {
		t.Error("unknown benchmark accepted")
	}
}

func TestFig5GeomeanWithinMinMax(t *testing.T) {
	r := smallRun(t, false, false)
	for _, c := range r.Cfg.Clusters {
		var minV, maxV int
		n := 0
		for _, b := range r.Benchmarks {
			v := b.vbsAt(c)
			if v == nil {
				continue
			}
			if n == 0 || v.SizeBits < minV {
				minV = v.SizeBits
			}
			if v.SizeBits > maxV {
				maxV = v.SizeBits
			}
			n++
		}
		if n == 0 {
			t.Fatalf("cluster %d has no data", c)
		}
		if minV > maxV {
			t.Errorf("cluster %d: min %d > max %d", c, minV, maxV)
		}
	}
}

func TestVbsAtMissing(t *testing.T) {
	b := BenchResult{}
	if b.vbsAt(1) != nil {
		t.Error("missing cluster should be nil")
	}
}
