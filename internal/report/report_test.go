package report

import (
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		Title:   "Demo",
		Headers: []string{"Name", "Value"},
	}
	tab.AddRow("alpha", 42)
	tab.AddRow("b", 3.14159)
	var sb strings.Builder
	tab.Render(&sb)
	out := sb.String()
	for _, want := range []string{"Demo", "Name", "alpha", "42", "3.142"} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 6 { // title, underline, header, separator, 2 rows
		t.Errorf("got %d lines:\n%s", len(lines), out)
	}
	// Columns aligned: header and first row start of second column match.
	hIdx := strings.Index(lines[2], "Value")
	rIdx := strings.Index(lines[4], "42")
	if hIdx != rIdx {
		t.Errorf("column misaligned: %d vs %d\n%s", hIdx, rIdx, out)
	}
}

func TestTableNoTitle(t *testing.T) {
	tab := &Table{Headers: []string{"A"}}
	tab.AddRow("x")
	var sb strings.Builder
	tab.Render(&sb)
	if strings.Contains(sb.String(), "=") {
		t.Error("untitled table rendered a title underline")
	}
}

func TestBits(t *testing.T) {
	cases := []struct {
		n    int
		want string
	}{
		{100, "100b"},
		{2048, "2.0Kb"},
		{3 << 20, "3.00Mb"},
	}
	for _, c := range cases {
		if got := Bits(c.n); got != c.want {
			t.Errorf("Bits(%d) = %q, want %q", c.n, got, c.want)
		}
	}
}

func TestPercent(t *testing.T) {
	if got := Percent(0.412); got != "41.2%" {
		t.Errorf("Percent = %q", got)
	}
}
