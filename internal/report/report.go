// Package report renders plain-text tables and series for the
// experiment harness, mirroring the rows and series of the paper's
// tables and figures.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Table is a simple column-aligned text table.
type Table struct {
	Title   string
	Headers []string
	Rows    [][]string
}

// AddRow appends a row; values are formatted with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		switch v := c.(type) {
		case float64:
			row[i] = fmt.Sprintf("%.3f", v)
		case string:
			row[i] = v
		default:
			row[i] = fmt.Sprintf("%v", v)
		}
	}
	t.Rows = append(t.Rows, row)
}

// Render writes the table to w.
func (t *Table) Render(w io.Writer) {
	if t.Title != "" {
		fmt.Fprintf(w, "%s\n", t.Title)
		fmt.Fprintf(w, "%s\n", strings.Repeat("=", len(t.Title)))
	}
	widths := make([]int, len(t.Headers))
	for i, h := range t.Headers {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		fmt.Fprintf(w, "%s\n", strings.TrimRight(strings.Join(parts, "  "), " "))
	}
	line(t.Headers)
	sep := make([]string, len(t.Headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Bytes formats a bit count in human units (bits, Kb, Mb) the way the
// paper's log-scale figures label sizes.
func Bits(n int) string {
	switch {
	case n >= 1<<20:
		return fmt.Sprintf("%.2fMb", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.1fKb", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%db", n)
	}
}

// Percent renders a 0..1 ratio as a percentage.
func Percent(r float64) string { return fmt.Sprintf("%.1f%%", 100*r) }
