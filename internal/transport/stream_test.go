package transport

import (
	"context"
	"encoding/binary"
	"errors"
	"net"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// echoServer accepts stream connections on a raw TCP listener and
// serves them with the given handlers until closed.
type echoServer struct {
	ln net.Listener
	wg sync.WaitGroup

	mu    sync.Mutex
	conns []net.Conn
}

func newEchoServer(t *testing.T, h Handlers, cfg Config) *echoServer {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s := &echoServer{ln: ln}
	s.wg.Add(1)
	go func() {
		defer s.wg.Done()
		for {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			s.mu.Lock()
			s.conns = append(s.conns, conn)
			s.mu.Unlock()
			s.wg.Add(1)
			go func() {
				defer s.wg.Done()
				_ = Serve(conn, h, cfg)
				conn.Close()
			}()
		}
	}()
	t.Cleanup(s.close)
	return s
}

func (s *echoServer) addr() string { return s.ln.Addr().String() }

// dropConns severs every live connection without stopping the
// listener — the mid-stream kill.
func (s *echoServer) dropConns() {
	s.mu.Lock()
	conns := s.conns
	s.conns = nil
	s.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}

func (s *echoServer) close() {
	s.ln.Close()
	s.dropConns()
	s.wg.Wait()
}

func tcpDialer(addr string) Dialer {
	return func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}
}

func testConfig() Config {
	return Config{
		Window:      8,
		Compress:    true,
		DialTimeout: 2 * time.Second,
		BackoffBase: 5 * time.Millisecond,
		BackoffMax:  50 * time.Millisecond,
	}
}

// TestStreamSendAck proves the data path end to end: every sent
// message arrives intact and every done callback fires on ack.
func TestStreamSendAck(t *testing.T) {
	var mu sync.Mutex
	got := map[string]int{}
	srv := newEchoServer(t, Handlers{
		Data: func(msg []byte) error {
			mu.Lock()
			got[string(msg)]++
			mu.Unlock()
			return nil
		},
	}, testConfig())

	st := Open(tcpDialer(srv.addr()), testConfig())
	defer st.Close()

	const n = 100
	var acked atomic.Int64
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	for i := 0; i < n; i++ {
		msg := []byte{byte(i), byte(i >> 8), 'm'}
		if err := st.Send(ctx, msg, i%2 == 0, func(err error) {
			if err == nil {
				acked.Add(1)
			}
		}); err != nil {
			t.Fatalf("send %d: %v", i, err)
		}
	}
	waitFor(t, 5*time.Second, func() bool { return acked.Load() == n })
	mu.Lock()
	defer mu.Unlock()
	if len(got) != n {
		t.Fatalf("receiver saw %d distinct messages, want %d", len(got), n)
	}
}

// TestStreamCall proves RPC multiplexing: concurrent calls get their
// own responses back.
func TestStreamCall(t *testing.T) {
	srv := newEchoServer(t, Handlers{
		Call: func(msg []byte) ([]byte, bool) {
			// Echo the payload back inside a result envelope.
			return EncodeResult(200, msg), false
		},
	}, testConfig())

	st := Open(tcpDialer(srv.addr()), testConfig())
	defer st.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	var wg sync.WaitGroup
	errs := make(chan error, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			msg := make([]byte, 8)
			binary.BigEndian.PutUint64(msg, uint64(i))
			resp, err := st.Call(ctx, msg, false)
			if err != nil {
				errs <- err
				return
			}
			status, body, err := DecodeResult(resp)
			if err != nil || status != 200 || binary.BigEndian.Uint64(body) != uint64(i) {
				errs <- errors.New("response mismatch")
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestStreamReconnectResends is the healing property the chaos
// nodekill recipe depends on: sever the connection mid-stream and
// every unacked data frame must be retransmitted and acked after the
// automatic reconnect.
func TestStreamReconnectResends(t *testing.T) {
	var mu sync.Mutex
	seen := map[string]bool{}
	srv := newEchoServer(t, Handlers{
		Data: func(msg []byte) error {
			mu.Lock()
			seen[string(msg)] = true
			mu.Unlock()
			return nil
		},
	}, testConfig())

	m := &Metrics{}
	cfg := testConfig()
	cfg.Metrics = m
	st := Open(tcpDialer(srv.addr()), cfg)
	defer st.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	var acked atomic.Int64
	send := func(tag byte, n int) {
		for i := 0; i < n; i++ {
			msg := []byte{tag, byte(i), byte(i >> 8)}
			if err := st.Send(ctx, msg, false, func(err error) {
				if err == nil {
					acked.Add(1)
				}
			}); err != nil {
				t.Fatalf("send: %v", err)
			}
		}
	}

	send('a', 20)
	waitFor(t, 5*time.Second, func() bool { return acked.Load() >= 10 })
	srv.dropConns() // mid-stream kill
	send('b', 20)   // enqueued while down or reconnecting
	waitFor(t, 10*time.Second, func() bool { return acked.Load() == 40 })

	mu.Lock()
	total := len(seen)
	mu.Unlock()
	if total != 40 {
		t.Fatalf("receiver saw %d distinct messages, want 40", total)
	}
	if m.reconnects.Load() == 0 {
		t.Fatal("no reconnect recorded after severed connection")
	}
}

// TestStreamCallDisconnected pins the non-idempotence contract: an
// RPC in flight across a disconnect fails with ErrDisconnected
// instead of silently replaying.
func TestStreamCallDisconnected(t *testing.T) {
	block := make(chan struct{})
	var once sync.Once
	srv := newEchoServer(t, Handlers{
		Call: func(msg []byte) ([]byte, bool) {
			once.Do(func() { <-block })
			return EncodeResult(200, nil), false
		},
	}, testConfig())
	defer close(block)

	st := Open(tcpDialer(srv.addr()), testConfig())
	defer st.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	done := make(chan error, 1)
	go func() {
		_, err := st.Call(ctx, []byte{MsgPing}, false)
		done <- err
	}()
	// Wait until the request reaches the (blocked) handler, then cut.
	time.Sleep(100 * time.Millisecond)
	srv.dropConns()
	select {
	case err := <-done:
		if !errors.Is(err, ErrDisconnected) {
			t.Fatalf("got %v, want ErrDisconnected", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("call did not fail after disconnect")
	}
}

// TestStreamCallExpiredInFlight pins the other half of the
// non-idempotence contract: when the caller's ctx expires after the
// request reached the wire but before a response, the error must mark
// the outcome unknown (ErrDisconnected) so callers with an HTTP
// fallback do not replay the request — on top of the ctx error itself.
func TestStreamCallExpiredInFlight(t *testing.T) {
	block := make(chan struct{})
	defer close(block)
	srv := newEchoServer(t, Handlers{
		Call: func(msg []byte) ([]byte, bool) {
			<-block // hold the RPC open past the caller's deadline
			return EncodeResult(200, nil), false
		},
	}, testConfig())

	st := Open(tcpDialer(srv.addr()), testConfig())
	defer st.Close()

	// Make sure the connection is up so the request is actually written.
	waitFor(t, 5*time.Second, st.Connected)

	ctx, cancel := context.WithTimeout(context.Background(), 150*time.Millisecond)
	defer cancel()
	_, err := st.Call(ctx, []byte{MsgPing}, false)
	if !errors.Is(err, ErrDisconnected) {
		t.Fatalf("got %v, want ErrDisconnected for an in-flight expiry", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want the ctx error preserved", err)
	}
}

// TestStreamCallExpiredQueued is the safe counterpart: a call whose
// ctx expires while it still sits in the queue (the stream never
// connected) was never written, so the error must NOT carry
// ErrDisconnected — a fallback retry is allowed.
func TestStreamCallExpiredQueued(t *testing.T) {
	// A dialer that never connects keeps everything queued.
	st := Open(func(ctx context.Context) (net.Conn, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}, testConfig())
	defer st.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	_, err := st.Call(ctx, []byte{MsgPing}, false)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("got %v, want DeadlineExceeded", err)
	}
	if errors.Is(err, ErrDisconnected) {
		t.Fatalf("queued call marked in-flight: %v", err)
	}
}

// TestStreamCloseFailsPending ensures Close resolves everything.
func TestStreamCloseFailsPending(t *testing.T) {
	// A dialer that never connects: everything stays queued.
	st := Open(func(ctx context.Context) (net.Conn, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}, testConfig())

	ctx := context.Background()
	var failed atomic.Int64
	for i := 0; i < 5; i++ {
		if err := st.Send(ctx, []byte{byte(i)}, false, func(err error) {
			if err != nil {
				failed.Add(1)
			}
		}); err != nil {
			t.Fatal(err)
		}
	}
	callErr := make(chan error, 1)
	go func() {
		_, err := st.Call(ctx, []byte{MsgPing}, false)
		callErr <- err
	}()
	time.Sleep(50 * time.Millisecond)
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	waitFor(t, 5*time.Second, func() bool { return failed.Load() == 5 })
	select {
	case err := <-callErr:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("call got %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("pending call not failed by Close")
	}
	if err := st.Send(ctx, []byte("late"), false, nil); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close: got %v, want ErrClosed", err)
	}
}

// TestUpgradeHandshake drives Dial against a real HTTP server that
// hijacks into Serve — the exact path the daemons use.
func TestUpgradeHandshake(t *testing.T) {
	var pings atomic.Int64
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+DefaultPath, func(w http.ResponseWriter, r *http.Request) {
		conn, err := Upgrade(w, r)
		if err != nil {
			return
		}
		defer conn.Close()
		_ = Serve(conn, Handlers{
			Call: func(msg []byte) ([]byte, bool) {
				if MsgKind(msg) == MsgPing {
					pings.Add(1)
					return EncodeResult(200, nil), false
				}
				return EncodeResult(http.StatusBadRequest, nil), false
			},
		}, testConfig())
	})
	hs := httptest.NewServer(mux)
	defer hs.Close()

	st := Open(func(ctx context.Context) (net.Conn, error) {
		return Dial(ctx, hs.URL)
	}, testConfig())
	defer st.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := st.Ping(ctx); err != nil {
		t.Fatalf("ping over upgraded stream: %v", err)
	}
	if pings.Load() != 1 {
		t.Fatalf("server saw %d pings, want 1", pings.Load())
	}

	// A plain GET without the Upgrade header must be refused cleanly.
	resp, err := http.Get(hs.URL + DefaultPath)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusUpgradeRequired {
		t.Fatalf("plain GET got %d, want 426", resp.StatusCode)
	}
}

func waitFor(t *testing.T, timeout time.Duration, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatal("condition not met in time")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
