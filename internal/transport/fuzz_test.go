package transport

import (
	"bytes"
	"testing"
)

// FuzzReadFrame feeds the decoder arbitrary bytes: truncations, bad
// magic, bad CRCs, hostile lengths and corrupt flate streams must all
// come back as errors, never panics, and a frame that does decode
// must re-encode to something that decodes identically.
func FuzzReadFrame(f *testing.F) {
	seeds := []Frame{
		{Type: FrameData, Seq: 1, Payload: []byte("hello")},
		{Type: FrameData, Flags: FlagRaw, Seq: 2, Payload: bytes.Repeat([]byte("vbs"), 100)},
		{Type: FrameAck, Seq: 99},
		{Type: FrameReq, Seq: 7, Payload: EncodeMsg(MsgBatch, []byte(`{"ops":[]}`))},
		{Type: FrameResp, Seq: 7, Payload: EncodeResult(200, []byte("{}"))},
	}
	for _, s := range seeds {
		for _, compress := range []bool{false, true} {
			var buf bytes.Buffer
			if _, _, err := WriteFrame(&buf, s, compress); err != nil {
				f.Fatal(err)
			}
			f.Add(buf.Bytes())
		}
	}
	// Hostile shapes: truncated header, bad magic, huge claimed length.
	f.Add([]byte{0x56, 0x42, 0x53})
	f.Add([]byte("GET / HTTP/1.1\r\n\r\n"))
	f.Add(append([]byte{0x56, 0x42, 0x53, 0x46, 1, 1, 0, 0}, bytes.Repeat([]byte{0xff}, 16)...))

	const fuzzMax = 1 << 20
	f.Fuzz(func(t *testing.T, data []byte) {
		got, n, err := ReadFrame(bytes.NewReader(data), fuzzMax)
		if err != nil {
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		// A decoded frame must survive a re-encode round trip.
		var buf bytes.Buffer
		if _, _, werr := WriteFrame(&buf, got, false); werr != nil {
			t.Fatalf("re-encode of decoded frame: %v", werr)
		}
		again, _, rerr := ReadFrame(&buf, fuzzMax)
		if rerr != nil {
			t.Fatalf("re-decode: %v", rerr)
		}
		if again.Type != got.Type || again.Seq != got.Seq || !bytes.Equal(again.Payload, got.Payload) {
			t.Fatal("re-encode round trip drifted")
		}
	})
}

// FuzzDecodeEnvelopes throws arbitrary bytes at the message-layer
// decoders.
func FuzzDecodeEnvelopes(f *testing.F) {
	var d [DigestLen]byte
	f.Add(EncodeObjPut(d, true, []byte("blob")))
	f.Add(EncodeResult(410, []byte("gone")))
	f.Add([]byte{})
	f.Add([]byte{MsgObjPut})
	f.Fuzz(func(t *testing.T, data []byte) {
		_, _, _, _ = DecodeObjPut(data)
		_, _, _ = DecodeResult(data)
		_ = MsgKind(data)
		_ = MsgBody(data)
	})
}
