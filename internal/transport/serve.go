package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/url"
	"strings"
	"sync/atomic"
	"time"
)

// UpgradeProto names the protocol in the HTTP Upgrade handshake. The
// stream endpoint rides the daemons' existing listeners: a client
// GETs /stream with "Upgrade: vbs-stream/1", the server hijacks the
// connection, answers 101, and both sides switch to the frame codec —
// no second port, no new address flags.
const UpgradeProto = "vbs-stream/1"

// DefaultPath is where the daemons mount the upgrade endpoint.
const DefaultPath = "/stream"

// Handlers processes decoded messages on the receiving end of a
// stream.
type Handlers struct {
	// Data handles a fire-and-forget data message. The frame is acked
	// whether or not Data errs — data messages are idempotent,
	// convergence-repaired operations (blob puts), so an error is
	// counted and logged, not retransmitted forever.
	Data func(msg []byte) error
	// Call handles an RPC message and returns the response payload
	// (conventionally an EncodeResult envelope) plus whether it is
	// already-compressed (raw).
	Call func(msg []byte) (resp []byte, raw bool)
}

// Serve runs the receiving end of one upgraded connection until it
// fails or the peer disconnects (which returns nil). Data frames are
// processed in arrival order and acknowledged cumulatively; RPCs run
// concurrently, their responses multiplexed by sequence number.
func Serve(conn net.Conn, h Handlers, cfg Config) error {
	cfg = cfg.withDefaults()
	cfg.Metrics.streamUp()
	defer cfg.Metrics.streamDown()

	done := make(chan struct{})
	defer close(done)
	resps := make(chan Frame, cfg.Window)
	var ackSeq atomic.Uint64
	ackKick := make(chan struct{}, 1)

	// Writer goroutine: acks coalesce (one cumulative ack per kick,
	// always the latest sequence), responses flow through resps, and
	// the buffered writer flushes only when both go idle — the
	// receive-side half of batching.
	writerDone := make(chan struct{})
	go func() {
		defer close(writerDone)
		bw := bufio.NewWriterSize(conn, 64<<10)
		write := func(f Frame, raw bool) bool {
			if raw {
				f.Flags |= FlagRaw
			}
			n, compressed, err := WriteFrame(bw, f, cfg.Compress)
			if err != nil {
				return false
			}
			cfg.Metrics.sent(n, compressed)
			return true
		}
		for {
			select {
			case f := <-resps:
				if !write(f, f.Flags&FlagRaw != 0) {
					return
				}
			case <-ackKick:
				if !write(Frame{Type: FrameAck, Seq: ackSeq.Load()}, false) {
					return
				}
			case <-done:
				return
			}
			if len(resps) == 0 && len(ackKick) == 0 {
				if bw.Flush() != nil {
					return
				}
			}
		}
	}()

	br := bufio.NewReaderSize(conn, 64<<10)
	var maxData uint64
	for {
		f, n, err := ReadFrame(br, cfg.MaxPayload)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			cfg.Metrics.recvError()
			return err
		}
		cfg.Metrics.received(n)
		switch f.Type {
		case FrameData:
			if h.Data != nil {
				if derr := h.Data(f.Payload); derr != nil {
					cfg.Metrics.recvError()
					cfg.Logf("transport: data frame seq %d: %v", f.Seq, derr)
				}
			}
			// Cumulative ack: after a reconnect the sender replays from
			// its lowest unacked frame, so sequences can arrive below
			// the high-water mark — ack the max ever processed.
			if f.Seq > maxData {
				maxData = f.Seq
			}
			ackSeq.Store(maxData)
			select {
			case ackKick <- struct{}{}:
			default:
			}
		case FrameReq:
			go func(f Frame) {
				var resp []byte
				var raw bool
				if h.Call != nil {
					resp, raw = h.Call(f.Payload)
				} else {
					resp = EncodeResult(http.StatusNotImplemented, nil)
				}
				out := Frame{Type: FrameResp, Seq: f.Seq, Payload: resp}
				if raw {
					out.Flags = FlagRaw
				}
				select {
				case resps <- out:
				case <-done:
				}
			}(f)
		}
	}
}

// Upgrade completes the server half of the handshake: it validates
// the Upgrade header, hijacks the HTTP connection, writes the 101,
// and returns the raw connection ready for Serve. On error the HTTP
// response has already been written.
func Upgrade(w http.ResponseWriter, r *http.Request) (net.Conn, error) {
	if !strings.EqualFold(r.Header.Get("Upgrade"), UpgradeProto) {
		http.Error(w, "vbs-stream upgrade required", http.StatusUpgradeRequired)
		return nil, fmt.Errorf("transport: missing Upgrade: %s", UpgradeProto)
	}
	hj, ok := w.(http.Hijacker)
	if !ok {
		http.Error(w, "connection cannot be hijacked", http.StatusInternalServerError)
		return nil, errors.New("transport: response writer is not a hijacker")
	}
	conn, rw, err := hj.Hijack()
	if err != nil {
		http.Error(w, "hijack failed", http.StatusInternalServerError)
		return nil, err
	}
	if _, err := conn.Write([]byte("HTTP/1.1 101 Switching Protocols\r\nUpgrade: " +
		UpgradeProto + "\r\nConnection: Upgrade\r\n\r\n")); err != nil {
		conn.Close()
		return nil, err
	}
	// Bytes the client pipelined behind its handshake may already sit
	// in the server's read buffer; keep them.
	if rw.Reader.Buffered() > 0 {
		return &bufferedConn{Conn: conn, r: rw.Reader}, nil
	}
	return conn, nil
}

// Dial connects to a daemon's upgrade endpoint and completes the
// client half of the handshake, returning the raw framed connection.
func Dial(ctx context.Context, baseURL string) (net.Conn, error) {
	u, err := url.Parse(baseURL)
	if err != nil {
		return nil, fmt.Errorf("transport: dial %s: %w", baseURL, err)
	}
	if u.Scheme != "http" {
		return nil, fmt.Errorf("transport: dial %s: only http base URLs upgrade to streams", baseURL)
	}
	host := u.Host
	if u.Port() == "" {
		host = net.JoinHostPort(u.Hostname(), "80")
	}
	var d net.Dialer
	conn, err := d.DialContext(ctx, "tcp", host)
	if err != nil {
		return nil, err
	}
	if dl, ok := ctx.Deadline(); ok {
		_ = conn.SetDeadline(dl)
	}
	req := "GET " + DefaultPath + " HTTP/1.1\r\nHost: " + host +
		"\r\nConnection: Upgrade\r\nUpgrade: " + UpgradeProto + "\r\n\r\n"
	if _, err := conn.Write([]byte(req)); err != nil {
		conn.Close()
		return nil, err
	}
	br := bufio.NewReader(conn)
	resp, err := http.ReadResponse(br, nil)
	if err != nil {
		conn.Close()
		return nil, fmt.Errorf("transport: upgrade handshake: %w", err)
	}
	if resp.StatusCode != http.StatusSwitchingProtocols {
		resp.Body.Close()
		conn.Close()
		return nil, fmt.Errorf("transport: upgrade refused: %s", resp.Status)
	}
	_ = conn.SetDeadline(time.Time{})
	if br.Buffered() > 0 {
		return &bufferedConn{Conn: conn, r: br}, nil
	}
	return conn, nil
}

// bufferedConn drains a bufio.Reader's leftover bytes before reading
// from the underlying connection.
type bufferedConn struct {
	net.Conn
	r *bufio.Reader
}

func (c *bufferedConn) Read(p []byte) (int, error) { return c.r.Read(p) }
