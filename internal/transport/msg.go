package transport

import (
	"encoding/binary"
	"fmt"
)

// Message kinds — the first payload byte of every data and req frame.
// The frame codec is oblivious to them; they are the application
// envelope the daemons speak over a stream.
const (
	// MsgObjPut carries a content-addressed blob to store (data frame
	// for pipelined replication; req frame when the sender needs the
	// outcome, e.g. repair and rebalance copies).
	MsgObjPut byte = 0x01
	// MsgPing is an empty health-check RPC.
	MsgPing byte = 0x02
	// MsgBatch is a JSON server.BatchRequest RPC; the resp body is a
	// JSON server.BatchResponse.
	MsgBatch byte = 0x03
)

// DigestLen is the content digest length (SHA-256).
const DigestLen = 32

// MsgKind returns a message's kind byte (0 for an empty message).
func MsgKind(p []byte) byte {
	if len(p) == 0 {
		return 0
	}
	return p[0]
}

// objPut layout: kind(1) | force(1) | digest(32) | blob bytes.
const objPutHeader = 2 + DigestLen

// EncodeObjPut builds a MsgObjPut message. force carries the same
// semantics as PutVBSRequest.Force: lift a delete tombstone (gateway
// write-through replication) versus be refused by one (automated
// repair copies).
func EncodeObjPut(digest [DigestLen]byte, force bool, blob []byte) []byte {
	out := make([]byte, objPutHeader+len(blob))
	out[0] = MsgObjPut
	if force {
		out[1] = 1
	}
	copy(out[2:], digest[:])
	copy(out[objPutHeader:], blob)
	return out
}

// DecodeObjPut splits a MsgObjPut message. The blob slice aliases p.
func DecodeObjPut(p []byte) (digest [DigestLen]byte, force bool, blob []byte, err error) {
	if len(p) < objPutHeader || p[0] != MsgObjPut {
		return digest, false, nil, fmt.Errorf("%w: objput envelope", ErrBadFrame)
	}
	force = p[1] != 0
	copy(digest[:], p[2:objPutHeader])
	return digest, force, p[objPutHeader:], nil
}

// EncodeMsg prefixes body with a kind byte — the envelope for JSON
// RPCs like MsgBatch.
func EncodeMsg(kind byte, body []byte) []byte {
	out := make([]byte, 1+len(body))
	out[0] = kind
	copy(out[1:], body)
	return out
}

// MsgBody returns the message body after the kind byte.
func MsgBody(p []byte) []byte {
	if len(p) == 0 {
		return nil
	}
	return p[1:]
}

// Resp envelope: status(2, HTTP semantics) | body. Carrying HTTP
// status codes lets stream results flow through the same error
// mapping (410 tombstoned, 409 busy, 5xx failover) as the REST path.
const respHeader = 2

// EncodeResult builds an RPC response payload.
func EncodeResult(status int, body []byte) []byte {
	out := make([]byte, respHeader+len(body))
	binary.BigEndian.PutUint16(out[0:2], uint16(status))
	copy(out[respHeader:], body)
	return out
}

// DecodeResult splits an RPC response payload. The body aliases p.
func DecodeResult(p []byte) (status int, body []byte, err error) {
	if len(p) < respHeader {
		return 0, nil, fmt.Errorf("%w: result envelope", ErrBadFrame)
	}
	return int(binary.BigEndian.Uint16(p[0:2])), p[respHeader:], nil
}
