package transport

import (
	"sync/atomic"

	"repro/internal/metrics"
)

// Metrics aggregates transport activity for one daemon. Observation
// sites update plain atomics (every method is safe on a nil receiver,
// so tests can run bare streams); NewMetrics bridges them into a
// metrics.Registry as the vbs_transport_* families both daemons
// expose.
type Metrics struct {
	streamsOpen atomic.Int64
	dialFails   atomic.Uint64
	reconnects  atomic.Uint64

	framesSent atomic.Uint64
	framesRecv atomic.Uint64
	bytesSent  atomic.Uint64
	bytesRecv  atomic.Uint64

	// Payload accounting by encoding: flate counts post-compression
	// wire bytes, raw counts verbatim passthrough (already-compressed
	// VBS payloads and frames below the compression floor).
	flateSent atomic.Uint64
	rawSent   atomic.Uint64

	recvErrors atomic.Uint64

	batchTasks *metrics.Histogram
}

// NewMetrics registers the vbs_transport_* families on reg and
// returns the Metrics instance feeding them. Must be called from a
// constructor (registration panics on duplicates).
func NewMetrics(reg *metrics.Registry) *Metrics {
	m := &Metrics{}
	reg.GaugeFunc("vbs_transport_streams_open",
		"Transport streams currently connected (sending and receiving ends).",
		func() float64 { return float64(m.streamsOpen.Load()) })
	reg.CounterFunc("vbs_transport_dial_failures_total",
		"Failed stream dial attempts.",
		func() float64 { return float64(m.dialFails.Load()) })
	reg.CounterFunc("vbs_transport_reconnects_total",
		"Stream reconnects after a broken connection.",
		func() float64 { return float64(m.reconnects.Load()) })
	reg.CounterFunc("vbs_transport_frames_sent_total",
		"Frames written to transport streams.",
		func() float64 { return float64(m.framesSent.Load()) })
	reg.CounterFunc("vbs_transport_frames_received_total",
		"Frames read from transport streams.",
		func() float64 { return float64(m.framesRecv.Load()) })
	reg.CounterFunc("vbs_transport_bytes_sent_total",
		"Wire bytes written to transport streams, headers included.",
		func() float64 { return float64(m.bytesSent.Load()) })
	reg.CounterFunc("vbs_transport_bytes_received_total",
		"Wire bytes read from transport streams, headers included.",
		func() float64 { return float64(m.bytesRecv.Load()) })
	reg.CounterFunc("vbs_transport_sent_compressed_bytes_total",
		"Payload bytes shipped flate-compressed (post-compression size).",
		func() float64 { return float64(m.flateSent.Load()) })
	reg.CounterFunc("vbs_transport_sent_raw_bytes_total",
		"Payload bytes shipped verbatim (already-compressed VBS and small frames).",
		func() float64 { return float64(m.rawSent.Load()) })
	reg.CounterFunc("vbs_transport_recv_errors_total",
		"Receive-side failures: decode errors and data-message handler errors.",
		func() float64 { return float64(m.recvErrors.Load()) })
	m.batchTasks = reg.Histogram("vbs_transport_batch_tasks",
		"Tasks per POST /tasks:batch request.",
		[]float64{1, 2, 4, 8, 16, 32, 64, 128, 256})
	return m
}

func (m *Metrics) streamUp() {
	if m != nil {
		m.streamsOpen.Add(1)
	}
}

func (m *Metrics) streamDown() {
	if m != nil {
		m.streamsOpen.Add(-1)
	}
}

func (m *Metrics) dialFail() {
	if m != nil {
		m.dialFails.Add(1)
	}
}

func (m *Metrics) reconnect() {
	if m != nil {
		m.reconnects.Add(1)
	}
}

// sent records one written frame of n wire bytes total; the payload
// portion (n minus the header) left with (compressed=true) or without
// flate, so the flate counter reflects post-compression size.
func (m *Metrics) sent(n int, compressed bool) {
	if m == nil {
		return
	}
	m.framesSent.Add(1)
	m.bytesSent.Add(uint64(n))
	payload := n - HeaderSize
	if payload < 0 {
		payload = 0
	}
	if compressed {
		m.flateSent.Add(uint64(payload))
	} else {
		m.rawSent.Add(uint64(payload))
	}
}

func (m *Metrics) received(n int) {
	if m == nil {
		return
	}
	m.framesRecv.Add(1)
	m.bytesRecv.Add(uint64(n))
}

func (m *Metrics) recvError() {
	if m != nil {
		m.recvErrors.Add(1)
	}
}

// ObserveBatch records a batch request's task count — fed by the
// daemons' /tasks:batch handlers (HTTP and stream alike).
func (m *Metrics) ObserveBatch(tasks int) {
	if m == nil || m.batchTasks == nil {
		return
	}
	m.batchTasks.Observe(float64(tasks))
}
