// Package transport is the intra-cluster streaming data plane: a
// length-prefixed frame codec over long-lived TCP connections,
// upgraded out of the daemons' existing HTTP listeners. The gateway
// keeps one persistent stream per node and moves blob replication,
// repair copies and batched task loads over it instead of paying one
// HTTP round trip per operation (aistore's transport package is the
// model: streams with send-side batching and optional compression).
//
// The wire unit is a frame:
//
//	offset  size  field
//	0       4     magic 0x56425346 ("VBSF")
//	4       1     version (1)
//	5       1     type (data | ack | req | resp)
//	6       1     flags (flate-compressed, raw-passthrough)
//	7       1     reserved (0)
//	8       8     sequence number
//	16      4     payload length on the wire
//	20      4     CRC32C (Castagnoli) of the wire payload
//	24      ...   payload
//
// Data frames are fire-and-forget messages acknowledged cumulatively
// by ack frames (the receiver acks the highest data sequence it has
// processed; the sender holds unacked frames for retransmission after
// a reconnect). Req frames are RPCs answered by a resp frame carrying
// the same sequence number. Payloads may be flate-compressed per
// frame; VBS containers are already LZSS-compressed, so blob-carrying
// messages set FlagRaw and ship verbatim — compressed end to end, the
// paper's design point carried across the wire.
package transport

import (
	"bytes"
	"compress/flate"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"sync"
)

// Magic opens every frame: "VBSF" big-endian.
const Magic uint32 = 0x56425346

// Version is the frame-format version this codec speaks.
const Version byte = 1

// HeaderSize is the fixed frame header length in bytes.
const HeaderSize = 24

// DefaultMaxPayload bounds a frame's decoded payload (matches the
// daemons' 64 MiB HTTP body bound, with headroom for batch envelopes).
const DefaultMaxPayload = 96 << 20

// Frame flags.
const (
	// FlagFlate marks the wire payload as flate-compressed; the codec
	// sets and clears it transparently.
	FlagFlate byte = 1 << 0
	// FlagRaw marks a payload that is already compressed upstream
	// (LZSS'd VBS containers): the codec ships it verbatim and never
	// re-compresses it.
	FlagRaw byte = 1 << 1
)

// Frame types.
const (
	// FrameData is a fire-and-forget message, cumulatively acked.
	FrameData byte = 1
	// FrameAck acknowledges every data frame with Seq <= its Seq.
	FrameAck byte = 2
	// FrameReq is an RPC request; a FrameResp with the same Seq
	// answers it.
	FrameReq byte = 3
	// FrameResp answers a FrameReq.
	FrameResp byte = 4
)

// Codec error sentinels; a decoder fed garbage returns one of these
// (wrapped), never panics.
var (
	ErrBadMagic   = errors.New("transport: bad frame magic")
	ErrBadVersion = errors.New("transport: unsupported frame version")
	ErrChecksum   = errors.New("transport: frame payload checksum mismatch")
	ErrOversize   = errors.New("transport: frame payload exceeds limit")
	ErrBadFrame   = errors.New("transport: malformed frame")
)

// castagnoli is the CRC32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// flateMin is the smallest payload worth attempting to compress:
// below it the flate header overhead wins.
const flateMin = 128

var flateWriters = sync.Pool{
	New: func() any {
		w, _ := flate.NewWriter(io.Discard, flate.BestSpeed)
		return w
	},
}

// Frame is one decoded protocol unit. After ReadFrame, Payload holds
// the decoded (decompressed) bytes and FlagFlate is cleared; FlagRaw
// survives the round trip.
type Frame struct {
	Type    byte
	Flags   byte
	Seq     uint64
	Payload []byte
}

// WriteFrame encodes f onto w, optionally flate-compressing the
// payload (skipped for FlagRaw payloads and when compression does not
// shrink). It returns the number of wire bytes written and whether
// the payload left compressed.
func WriteFrame(w io.Writer, f Frame, compress bool) (int, bool, error) {
	wire := f.Payload
	flags := f.Flags &^ FlagFlate
	if compress && flags&FlagRaw == 0 && len(f.Payload) >= flateMin {
		if c, ok := deflate(f.Payload); ok {
			wire = c
			flags |= FlagFlate
		}
	}
	var hdr [HeaderSize]byte
	binary.BigEndian.PutUint32(hdr[0:4], Magic)
	hdr[4] = Version
	hdr[5] = f.Type
	hdr[6] = flags
	hdr[7] = 0
	binary.BigEndian.PutUint64(hdr[8:16], f.Seq)
	binary.BigEndian.PutUint32(hdr[16:20], uint32(len(wire)))
	binary.BigEndian.PutUint32(hdr[20:24], crc32.Checksum(wire, castagnoli))
	compressed := flags&FlagFlate != 0
	if _, err := w.Write(hdr[:]); err != nil {
		return 0, compressed, err
	}
	n, err := w.Write(wire)
	return HeaderSize + n, compressed, err
}

// deflate compresses p with flate at BestSpeed, reporting whether the
// result is actually smaller.
func deflate(p []byte) ([]byte, bool) {
	var buf bytes.Buffer
	buf.Grow(len(p) / 2)
	fw := flateWriters.Get().(*flate.Writer)
	fw.Reset(&buf)
	_, err := fw.Write(p)
	if cerr := fw.Close(); err == nil {
		err = cerr
	}
	flateWriters.Put(fw)
	if err != nil || buf.Len() >= len(p) {
		return nil, false
	}
	return buf.Bytes(), true
}

// ReadFrame decodes one frame from r, rejecting payloads larger than
// maxPayload (0 selects DefaultMaxPayload) before buffering them and
// verifying the CRC before decompressing. The returned count is wire
// bytes consumed. Any malformed input yields an error, never a panic.
func ReadFrame(r io.Reader, maxPayload int) (Frame, int, error) {
	if maxPayload <= 0 {
		maxPayload = DefaultMaxPayload
	}
	var hdr [HeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return Frame{}, 0, err
	}
	if m := binary.BigEndian.Uint32(hdr[0:4]); m != Magic {
		return Frame{}, HeaderSize, fmt.Errorf("%w: 0x%08x", ErrBadMagic, m)
	}
	if hdr[4] != Version {
		return Frame{}, HeaderSize, fmt.Errorf("%w: %d", ErrBadVersion, hdr[4])
	}
	f := Frame{Type: hdr[5], Flags: hdr[6], Seq: binary.BigEndian.Uint64(hdr[8:16])}
	length := binary.BigEndian.Uint32(hdr[16:20])
	if length > uint32(maxPayload) {
		return Frame{}, HeaderSize, fmt.Errorf("%w: %d > %d", ErrOversize, length, maxPayload)
	}
	wire := make([]byte, length)
	if _, err := io.ReadFull(r, wire); err != nil {
		// Truncated mid-payload: report how much was consumed.
		return Frame{}, HeaderSize, fmt.Errorf("%w: short payload: %w", ErrBadFrame, err)
	}
	n := HeaderSize + int(length)
	if got := crc32.Checksum(wire, castagnoli); got != binary.BigEndian.Uint32(hdr[20:24]) {
		return Frame{}, n, fmt.Errorf("%w: seq %d", ErrChecksum, f.Seq)
	}
	if f.Flags&FlagFlate != 0 {
		dec, err := inflate(wire, maxPayload)
		if err != nil {
			return Frame{}, n, fmt.Errorf("%w: inflate: %w", ErrBadFrame, err)
		}
		f.Flags &^= FlagFlate
		f.Payload = dec
		return f, n, nil
	}
	f.Payload = wire
	return f, n, nil
}

// inflate decompresses a flate payload, bounding the decoded size so
// a hostile frame cannot balloon memory.
func inflate(p []byte, max int) ([]byte, error) {
	fr := flate.NewReader(bytes.NewReader(p))
	defer fr.Close()
	var buf bytes.Buffer
	n, err := io.Copy(&buf, io.LimitReader(fr, int64(max)+1))
	if err != nil {
		return nil, err
	}
	if n > int64(max) {
		return nil, fmt.Errorf("decoded payload exceeds %d bytes", max)
	}
	return buf.Bytes(), nil
}
