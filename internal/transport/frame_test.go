package transport

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io"
	"math/rand"
	"testing"
)

// TestFrameRoundTrip drives every flag/type/compression combination
// over payloads from empty to max, asserting byte-exact decode.
func TestFrameRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	const maxPayload = 1 << 20
	payloads := [][]byte{
		nil,
		{},
		[]byte("x"),
		bytes.Repeat([]byte("abc"), 64),     // compressible, above flateMin
		make([]byte, flateMin-1),            // below the compression floor
		randBytes(rng, 4096),                // incompressible
		bytes.Repeat([]byte{0}, maxPayload), // max-size, highly compressible
		randBytes(rng, maxPayload),          // max-size, incompressible
		append(randBytes(rng, 100), make([]byte, 900)...), // mixed
	}
	types := []byte{FrameData, FrameAck, FrameReq, FrameResp}
	for _, typ := range types {
		for _, raw := range []bool{false, true} {
			for _, compress := range []bool{false, true} {
				for pi, payload := range payloads {
					var flags byte
					if raw {
						flags = FlagRaw
					}
					in := Frame{Type: typ, Flags: flags, Seq: rng.Uint64(), Payload: payload}
					var buf bytes.Buffer
					n, compressed, err := WriteFrame(&buf, in, compress)
					if err != nil {
						t.Fatalf("type %d raw %v compress %v payload %d: write: %v", typ, raw, compress, pi, err)
					}
					if n != buf.Len() {
						t.Fatalf("write reported %d bytes, buffered %d", n, buf.Len())
					}
					if compressed && raw {
						t.Fatalf("raw payload left compressed")
					}
					out, rn, err := ReadFrame(&buf, maxPayload)
					if err != nil {
						t.Fatalf("type %d raw %v compress %v payload %d: read: %v", typ, raw, compress, pi, err)
					}
					if rn != n {
						t.Fatalf("read consumed %d bytes, wrote %d", rn, n)
					}
					if out.Type != in.Type || out.Seq != in.Seq {
						t.Fatalf("header mismatch: got %+v want %+v", out, in)
					}
					if out.Flags&FlagFlate != 0 {
						t.Fatalf("FlagFlate leaked through decode")
					}
					if (out.Flags&FlagRaw != 0) != raw {
						t.Fatalf("FlagRaw did not round-trip")
					}
					if !bytes.Equal(out.Payload, payload) {
						t.Fatalf("payload mismatch: got %d bytes want %d", len(out.Payload), len(payload))
					}
				}
			}
		}
	}
}

// TestFrameCompressionShrinks pins the point of the flate flag: a
// compressible payload ships smaller, a raw-flagged one verbatim.
func TestFrameCompressionShrinks(t *testing.T) {
	payload := bytes.Repeat([]byte("virtual bitstream "), 1024)
	var plain, packed bytes.Buffer
	pn, _, err := WriteFrame(&plain, Frame{Type: FrameData, Payload: payload}, false)
	if err != nil {
		t.Fatal(err)
	}
	cn, compressed, err := WriteFrame(&packed, Frame{Type: FrameData, Payload: payload}, true)
	if err != nil {
		t.Fatal(err)
	}
	if !compressed || cn >= pn {
		t.Fatalf("compression did not shrink: plain %d, compressed %d (flag %v)", pn, cn, compressed)
	}
	raw := bytes.Buffer{}
	rn, compressedRaw, err := WriteFrame(&raw, Frame{Type: FrameData, Flags: FlagRaw, Payload: payload}, true)
	if err != nil {
		t.Fatal(err)
	}
	if compressedRaw || rn != pn {
		t.Fatalf("raw payload was recompressed: %d bytes, flag %v", rn, compressedRaw)
	}
}

func TestReadFrameRejects(t *testing.T) {
	good := encodeFrame(t, Frame{Type: FrameData, Seq: 3, Payload: []byte("hello world, this is a frame")})

	t.Run("bad magic", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[0] ^= 0xff
		_, _, err := ReadFrame(bytes.NewReader(b), 0)
		if !errors.Is(err, ErrBadMagic) {
			t.Fatalf("got %v, want ErrBadMagic", err)
		}
	})
	t.Run("bad version", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[4] = Version + 1
		_, _, err := ReadFrame(bytes.NewReader(b), 0)
		if !errors.Is(err, ErrBadVersion) {
			t.Fatalf("got %v, want ErrBadVersion", err)
		}
	})
	t.Run("payload corruption", func(t *testing.T) {
		b := append([]byte(nil), good...)
		b[len(b)-1] ^= 0x01
		_, _, err := ReadFrame(bytes.NewReader(b), 0)
		if !errors.Is(err, ErrChecksum) {
			t.Fatalf("got %v, want ErrChecksum", err)
		}
	})
	t.Run("oversize", func(t *testing.T) {
		_, _, err := ReadFrame(bytes.NewReader(good), 4)
		if !errors.Is(err, ErrOversize) {
			t.Fatalf("got %v, want ErrOversize", err)
		}
	})
	t.Run("truncated header", func(t *testing.T) {
		_, _, err := ReadFrame(bytes.NewReader(good[:HeaderSize-3]), 0)
		if err == nil {
			t.Fatal("truncated header decoded")
		}
	})
	t.Run("truncated payload", func(t *testing.T) {
		_, _, err := ReadFrame(bytes.NewReader(good[:len(good)-5]), 0)
		if !errors.Is(err, ErrBadFrame) {
			t.Fatalf("got %v, want ErrBadFrame", err)
		}
	})
	t.Run("corrupt flate stream with valid crc", func(t *testing.T) {
		// Garbage that claims to be compressed but passes the CRC: the
		// checksum covers the wire bytes, so the inflate must fail
		// cleanly, not panic.
		wire := []byte("definitely not a flate stream")
		var hdr [HeaderSize]byte
		binary.BigEndian.PutUint32(hdr[0:4], Magic)
		hdr[4] = Version
		hdr[5] = FrameData
		hdr[6] = FlagFlate
		binary.BigEndian.PutUint32(hdr[16:20], uint32(len(wire)))
		binary.BigEndian.PutUint32(hdr[20:24], crc32.Checksum(wire, castagnoli))
		_, _, err := ReadFrame(bytes.NewReader(append(hdr[:], wire...)), 0)
		if !errors.Is(err, ErrBadFrame) {
			t.Fatalf("got %v, want ErrBadFrame", err)
		}
	})
}

// TestFrameStreamSequence decodes several concatenated frames from one
// reader — the on-wire shape a stream actually produces.
func TestFrameStreamSequence(t *testing.T) {
	var buf bytes.Buffer
	var want []Frame
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 20; i++ {
		f := Frame{Type: FrameData, Seq: uint64(i + 1), Payload: randBytes(rng, rng.Intn(2048))}
		if i%3 == 0 {
			f.Flags = FlagRaw
		}
		want = append(want, f)
		if _, _, err := WriteFrame(&buf, f, i%2 == 0); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range want {
		got, _, err := ReadFrame(&buf, 0)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if got.Seq != w.Seq || !bytes.Equal(got.Payload, w.Payload) {
			t.Fatalf("frame %d did not round-trip", i)
		}
	}
	if _, _, err := ReadFrame(&buf, 0); err != io.EOF {
		t.Fatalf("trailing read: got %v, want EOF", err)
	}
}

func TestObjPutRoundTrip(t *testing.T) {
	var d [DigestLen]byte
	for i := range d {
		d[i] = byte(i * 7)
	}
	blob := []byte("lzss'd container bytes")
	for _, force := range []bool{false, true} {
		msg := EncodeObjPut(d, force, blob)
		if MsgKind(msg) != MsgObjPut {
			t.Fatalf("kind = %d", MsgKind(msg))
		}
		gd, gf, gb, err := DecodeObjPut(msg)
		if err != nil {
			t.Fatal(err)
		}
		if gd != d || gf != force || !bytes.Equal(gb, blob) {
			t.Fatalf("objput did not round-trip (force=%v)", force)
		}
	}
	if _, _, _, err := DecodeObjPut([]byte{MsgObjPut, 0}); err == nil {
		t.Fatal("short objput decoded")
	}
	if _, _, _, err := DecodeObjPut(EncodeMsg(MsgBatch, []byte("{}"))); err == nil {
		t.Fatal("wrong-kind objput decoded")
	}
}

func TestResultRoundTrip(t *testing.T) {
	for _, status := range []int{200, 201, 409, 410, 500} {
		body := []byte(`{"ok":true}`)
		status2, got, err := DecodeResult(EncodeResult(status, body))
		if err != nil {
			t.Fatal(err)
		}
		if status2 != status || !bytes.Equal(got, body) {
			t.Fatalf("result did not round-trip for %d", status)
		}
	}
	if _, _, err := DecodeResult([]byte{9}); err == nil {
		t.Fatal("short result decoded")
	}
}

func encodeFrame(t *testing.T, f Frame) []byte {
	t.Helper()
	var buf bytes.Buffer
	if _, _, err := WriteFrame(&buf, f, false); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func randBytes(rng *rand.Rand, n int) []byte {
	b := make([]byte, n)
	rng.Read(b)
	return b
}
