package transport

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"
)

// Stream errors.
var (
	// ErrClosed reports an operation on a closed stream.
	ErrClosed = errors.New("transport: stream closed")
	// ErrDisconnected fails an RPC whose outcome is unknown: the
	// request was written (or handed to the writer) but no response
	// arrived — the connection broke, or the caller's ctx expired with
	// the call on the wire. The receiver may or may not have processed
	// it, so neither the stream nor its caller may blindly retransmit
	// a non-idempotent request. Check with errors.Is: the ctx-expiry
	// case wraps both this and the ctx error.
	ErrDisconnected = errors.New("transport: call in flight with no response")
)

// Config tunes a stream endpoint (either side).
type Config struct {
	// Window bounds in-flight work: unacked data frames plus
	// outstanding RPCs (0 = 64). The enqueue queue holds up to twice
	// the window before Send/Call block.
	Window int
	// MaxPayload bounds one frame's decoded payload
	// (0 = DefaultMaxPayload).
	MaxPayload int
	// Compress enables per-frame flate for payloads not marked raw.
	Compress bool
	// DialTimeout bounds one dial attempt (0 = 5s).
	DialTimeout time.Duration
	// BackoffBase/BackoffMax shape the reconnect backoff
	// (0 = 50ms / 3s).
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Metrics receives transport counters (nil = none).
	Metrics *Metrics
	// Logf receives connection lifecycle lines (nil = discard).
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.Window <= 0 {
		c.Window = 64
	}
	if c.MaxPayload <= 0 {
		c.MaxPayload = DefaultMaxPayload
	}
	if c.DialTimeout <= 0 {
		c.DialTimeout = 5 * time.Second
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 50 * time.Millisecond
	}
	if c.BackoffMax <= 0 {
		c.BackoffMax = 3 * time.Second
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// Dialer opens one connection to the stream's peer.
type Dialer func(ctx context.Context) (net.Conn, error)

// pending is one enqueued frame awaiting write, ack, or response.
type pending struct {
	typ   byte
	flags byte
	seq   uint64
	msg   []byte
	done  func(error)    // data frames: fires on ack (nil) or stream close
	resp  chan rpcResult // req frames: receives the response exactly once
}

type rpcResult struct {
	payload []byte
	err     error
}

// Stream is the sending end of a persistent connection: callers
// enqueue messages, a writer goroutine batches them onto the wire
// (flushing when the queue idles), data frames are held until the
// receiver's cumulative ack and retransmitted after a reconnect
// (content-addressed puts are idempotent, so replays are safe), and
// RPCs in flight across a disconnect fail with ErrDisconnected rather
// than replaying.
type Stream struct {
	dial   Dialer
	cfg    Config
	ctx    context.Context
	cancel context.CancelFunc

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*pending          // enqueued, not yet written on the live conn
	unacked map[uint64]*pending // data frames written, awaiting cumulative ack
	calls   map[uint64]*pending // req frames written, awaiting their resp
	dataSeq uint64
	reqSeq  uint64
	closed  bool
	broken  bool     // the live conn failed; writer must stop
	conn    net.Conn // live conn, for Close to unblock the reader

	loopDone chan struct{}
}

// Open starts a stream over dial. The first connection is established
// in the background; Send and Call may be used immediately.
func Open(dial Dialer, cfg Config) *Stream {
	ctx, cancel := context.WithCancel(context.Background())
	s := &Stream{
		dial:     dial,
		cfg:      cfg.withDefaults(),
		ctx:      ctx,
		cancel:   cancel,
		unacked:  make(map[uint64]*pending),
		calls:    make(map[uint64]*pending),
		loopDone: make(chan struct{}),
	}
	s.cond = sync.NewCond(&s.mu)
	go s.loop()
	return s
}

// Send enqueues a fire-and-forget data message. raw marks an
// already-compressed payload (shipped verbatim). done, when non-nil,
// fires exactly once: with nil when the receiver acks the frame, or
// with an error when the stream closes first. Send blocks only when
// the queue is full, honoring ctx.
func (s *Stream) Send(ctx context.Context, msg []byte, raw bool, done func(error)) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if err := s.waitSpaceLocked(ctx); err != nil {
		return err
	}
	s.dataSeq++
	p := &pending{typ: FrameData, seq: s.dataSeq, msg: msg, done: done}
	if raw {
		p.flags = FlagRaw
	}
	s.queue = append(s.queue, p)
	s.cond.Broadcast()
	return nil
}

// Call performs one RPC over the stream, honoring ctx. Concurrent
// calls multiplex; responses match by sequence number.
func (s *Stream) Call(ctx context.Context, msg []byte, raw bool) ([]byte, error) {
	s.mu.Lock()
	if err := s.waitSpaceLocked(ctx); err != nil {
		s.mu.Unlock()
		return nil, err
	}
	s.reqSeq++
	p := &pending{typ: FrameReq, seq: s.reqSeq, msg: msg, resp: make(chan rpcResult, 1)}
	if raw {
		p.flags = FlagRaw
	}
	s.queue = append(s.queue, p)
	s.cond.Broadcast()
	s.mu.Unlock()

	select {
	case r := <-p.resp:
		return r.payload, r.err
	case <-ctx.Done():
		// Abandon the call: drop it wherever it sits so a late response
		// is discarded and the window slot frees. Where it sat decides
		// what the caller may do next — still queued means the request
		// never reached the wire and a fallback retry is safe; gone
		// from the queue means the writer took it (it is on the wire or
		// about to be) and the peer may still execute it.
		s.mu.Lock()
		written := true
		for i, q := range s.queue {
			if q == p {
				s.queue = append(s.queue[:i], s.queue[i+1:]...)
				written = false
				break
			}
		}
		delete(s.calls, p.seq)
		s.cond.Broadcast()
		s.mu.Unlock()
		if !written {
			return nil, ctx.Err()
		}
		// A response (or disconnect error) may have raced the expiry
		// onto p.resp after we dropped the call — prefer the real
		// outcome over guessing.
		select {
		case r := <-p.resp:
			return r.payload, r.err
		default:
		}
		return nil, fmt.Errorf("%w: %w", ErrDisconnected, ctx.Err())
	}
}

// waitSpaceLocked blocks until the enqueue queue has room, the ctx is
// done, or the stream closes.
func (s *Stream) waitSpaceLocked(ctx context.Context) error {
	stop := context.AfterFunc(ctx, func() {
		s.mu.Lock()
		s.cond.Broadcast()
		s.mu.Unlock()
	})
	defer stop()
	for {
		if s.closed {
			return ErrClosed
		}
		if err := ctx.Err(); err != nil {
			return err
		}
		if len(s.queue) < 2*s.cfg.Window {
			return nil
		}
		s.cond.Wait()
	}
}

// Ping round-trips an empty RPC — the cheapest way to prove the
// stream is live end to end.
func (s *Stream) Ping(ctx context.Context) error {
	resp, err := s.Call(ctx, []byte{MsgPing}, false)
	if err != nil {
		return err
	}
	status, _, err := DecodeResult(resp)
	if err != nil {
		return err
	}
	if status != 200 {
		return errors.New("transport: ping rejected")
	}
	return nil
}

// Connected reports whether the stream currently holds a live
// connection. Callers with a synchronous fallback path (the gateway's
// HTTP scatter) consult it so work is never stranded on a stream whose
// peer is cold, down, or does not speak the protocol at all.
func (s *Stream) Connected() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.conn != nil && !s.broken && !s.closed
}

// Close shuts the stream down: the connection drops, queued and
// unacked data frames fail their done callbacks with ErrClosed, and
// in-flight RPCs return ErrClosed.
func (s *Stream) Close() error {
	s.mu.Lock()
	s.closed = true
	conn := s.conn
	s.conn = nil
	s.cond.Broadcast()
	s.mu.Unlock()
	s.cancel()
	if conn != nil {
		conn.Close()
	}
	<-s.loopDone
	return nil
}

// loop owns the connection lifecycle: dial with backoff, run the
// connection until it breaks, requeue what must survive, repeat.
func (s *Stream) loop() {
	defer close(s.loopDone)
	defer s.failAll(ErrClosed)
	backoff := s.cfg.BackoffBase
	connected := false
	for {
		if s.isClosed() {
			return
		}
		dctx, cancel := context.WithTimeout(s.ctx, s.cfg.DialTimeout)
		conn, err := s.dial(dctx)
		cancel()
		if err != nil {
			s.cfg.Metrics.dialFail()
			if !s.sleep(backoff) {
				return
			}
			backoff = min(2*backoff, s.cfg.BackoffMax)
			continue
		}
		if connected {
			s.cfg.Metrics.reconnect()
			s.cfg.Logf("transport: reconnected to %s", conn.RemoteAddr())
		}
		connected = true
		backoff = s.cfg.BackoffBase

		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conn = conn
		s.broken = false
		s.mu.Unlock()

		s.cfg.Metrics.streamUp()
		s.runConn(conn)
		s.cfg.Metrics.streamDown()
		conn.Close()

		s.mu.Lock()
		s.conn = nil
		closed := s.closed
		// Fail RPCs written but unanswered: replaying them is unsafe.
		var failed []*pending
		for seq, p := range s.calls {
			delete(s.calls, seq)
			failed = append(failed, p)
		}
		// Requeue unacked data frames ahead of the queue, in sequence
		// order: the receiver processes duplicates idempotently, so
		// retransmission is the durability path after a reconnect.
		if len(s.unacked) > 0 {
			resend := make([]*pending, 0, len(s.unacked))
			for _, p := range s.unacked {
				resend = append(resend, p)
			}
			sort.Slice(resend, func(a, b int) bool { return resend[a].seq < resend[b].seq })
			clear(s.unacked)
			s.queue = append(resend, s.queue...)
		}
		s.cond.Broadcast()
		s.mu.Unlock()
		for _, p := range failed {
			p.resp <- rpcResult{err: ErrDisconnected}
		}
		if closed {
			return
		}
	}
}

// runConn drives one live connection: a reader goroutine consumes
// acks and responses while this goroutine writes frames, flushing the
// buffered writer whenever the queue idles (send-side batching).
func (s *Stream) runConn(conn net.Conn) {
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		s.readLoop(conn)
	}()

	bw := bufio.NewWriterSize(conn, 64<<10)
	needFlush := false
	for {
		p, ok := s.nextFrame(needFlush)
		if !ok {
			break
		}
		if p == nil {
			if err := bw.Flush(); err != nil {
				s.markBroken()
				break
			}
			needFlush = false
			continue
		}
		n, compressed, err := WriteFrame(bw, Frame{Type: p.typ, Flags: p.flags, Seq: p.seq, Payload: p.msg}, s.cfg.Compress)
		if err != nil {
			s.markBroken()
			break
		}
		s.cfg.Metrics.sent(n, compressed)
		needFlush = true
	}
	if bw.Buffered() > 0 {
		_ = bw.Flush()
	}
	// Unblock the reader and wait for it: the conn is single-owner
	// again when runConn returns.
	conn.Close()
	<-readerDone
}

// nextFrame blocks until a frame is writable (queue non-empty and
// window open), returning (nil, true) when the caller should flush
// instead (wantFlush set and nothing ready), and (nil, false) when
// the connection or stream is done.
func (s *Stream) nextFrame(wantFlush bool) (*pending, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.closed || s.broken {
			return nil, false
		}
		if len(s.queue) > 0 && len(s.unacked)+len(s.calls) < s.cfg.Window {
			p := s.queue[0]
			s.queue = s.queue[1:]
			switch p.typ {
			case FrameData:
				s.unacked[p.seq] = p
			case FrameReq:
				s.calls[p.seq] = p
			}
			s.cond.Broadcast() // queue space freed
			return p, true
		}
		if wantFlush {
			return nil, true
		}
		s.cond.Wait()
	}
}

// readLoop consumes ack and resp frames until the connection fails.
func (s *Stream) readLoop(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 64<<10)
	for {
		f, n, err := ReadFrame(br, s.cfg.MaxPayload)
		if err != nil {
			s.markBroken()
			return
		}
		s.cfg.Metrics.received(n)
		switch f.Type {
		case FrameAck:
			var acked []*pending
			s.mu.Lock()
			for seq, p := range s.unacked {
				if seq <= f.Seq {
					delete(s.unacked, seq)
					if p.done != nil {
						acked = append(acked, p)
					}
				}
			}
			s.cond.Broadcast() // window slots freed
			s.mu.Unlock()
			for _, p := range acked {
				p.done(nil)
			}
		case FrameResp:
			s.mu.Lock()
			p := s.calls[f.Seq]
			delete(s.calls, f.Seq)
			s.cond.Broadcast()
			s.mu.Unlock()
			if p != nil {
				p.resp <- rpcResult{payload: f.Payload}
			}
		}
	}
}

func (s *Stream) markBroken() {
	s.mu.Lock()
	s.broken = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

func (s *Stream) isClosed() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.closed
}

// sleep waits d or until the stream closes, reporting whether to keep
// going.
func (s *Stream) sleep(d time.Duration) bool {
	select {
	case <-s.ctx.Done():
		return false
	case <-time.After(d):
		return true
	}
}

// failAll resolves every pending frame with err — the stream is gone.
func (s *Stream) failAll(err error) {
	s.mu.Lock()
	var data []*pending
	var calls []*pending
	for _, p := range s.queue {
		switch p.typ {
		case FrameData:
			data = append(data, p)
		case FrameReq:
			calls = append(calls, p)
		}
	}
	s.queue = nil
	for seq, p := range s.unacked {
		delete(s.unacked, seq)
		data = append(data, p)
	}
	for seq, p := range s.calls {
		delete(s.calls, seq)
		calls = append(calls, p)
	}
	s.cond.Broadcast()
	s.mu.Unlock()
	for _, p := range data {
		if p.done != nil {
			p.done(err)
		}
	}
	for _, p := range calls {
		p.resp <- rpcResult{err: err}
	}
}
