// Package fabricsim evaluates a configured fabric at the gate level:
// it reads a raw configuration (however it was produced — directly
// from the router or through a Virtual Bit-Stream), reconstructs the
// electrical nets from the switch states, and simulates the LUTs and
// flip-flops cycle by cycle. It is the strongest end-to-end oracle in
// the repository: a task is correct iff the simulated fabric behaves
// exactly like the packed netlist it was compiled from.
package fabricsim

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/bitstream"
	"repro/internal/rrg"
	"repro/internal/unionfind"
)

// Pad binds an external signal name to the fabric macro holding its
// I/O pad.
type Pad struct {
	Name string
	X, Y int
}

// Simulator evaluates one configured fabric.
type Simulator struct {
	p   arch.Params
	g   arch.Grid
	gr  *rrg.Graph
	uf  *unionfind.UF
	ins []Pad
	out []Pad

	luts  []lutInst
	order []int // evaluation order (combinational topological)

	// value[root] is the current signal on an electrical component.
	value map[int]bool
	ff    []bool // per LUT state
}

// lutInst is one logic block instance read out of the configuration.
type lutInst struct {
	x, y       int
	truth      []bool // 2^K bits
	registered bool
	inComp     []int // component root per LUT input (-1 unconnected)
	outComp    int
}

// New builds a simulator from a configuration. The caller names the
// input and output pads (the configuration itself stores pad
// behaviour implicitly by position). Every macro whose logic bits are
// non-zero — and every macro listed as a pad — participates.
func New(raw *bitstream.Raw, inputs, outputs []Pad) (*Simulator, error) {
	gr, err := rrg.Build(raw.P, raw.G)
	if err != nil {
		return nil, err
	}
	uf, err := bitstream.Connectivity(raw, gr)
	if err != nil {
		return nil, err
	}
	s := &Simulator{
		p: raw.P, g: raw.G, gr: gr, uf: uf,
		ins: inputs, out: outputs,
		value: make(map[int]bool),
	}
	for _, pad := range append(append([]Pad{}, inputs...), outputs...) {
		if !raw.G.Contains(pad.X, pad.Y) {
			return nil, fmt.Errorf("fabricsim: pad %q at (%d,%d) off fabric", pad.Name, pad.X, pad.Y)
		}
	}

	// Instantiate every macro with non-zero logic as a LUT.
	k := raw.P.K
	nlb := raw.P.NLB()
	padAt := make(map[[2]int]bool)
	for _, pad := range append(append([]Pad{}, inputs...), outputs...) {
		padAt[[2]int{pad.X, pad.Y}] = true
	}
	for y := 0; y < raw.G.Height; y++ {
		for x := 0; x < raw.G.Width; x++ {
			cfg := raw.At(x, y)
			logic := cfg.Logic()
			if logic.OnesCount() == 0 || padAt[[2]int{x, y}] {
				continue
			}
			inst := lutInst{
				x: x, y: y,
				truth:      make([]bool, 1<<uint(k)),
				registered: logic.Get(nlb - 1),
				inComp:     make([]int, k),
				outComp:    s.comp(gr.NodePin(x, y, raw.P.OutputPin())),
			}
			for i := 0; i < 1<<uint(k); i++ {
				inst.truth[i] = logic.Get(i)
			}
			for i := 0; i < k; i++ {
				pin := gr.NodePin(x, y, raw.P.InputPin(i))
				root := s.comp(pin)
				if uf.SetSize(int(pin)) == 1 {
					root = -1 // unconnected input reads as 0
				}
				inst.inComp[i] = root
			}
			s.luts = append(s.luts, inst)
		}
	}
	s.ff = make([]bool, len(s.luts))
	if err := s.buildOrder(); err != nil {
		return nil, err
	}
	return s, nil
}

func (s *Simulator) comp(n rrg.NodeID) int { return s.uf.Find(int(n)) }

// buildOrder topologically sorts the unregistered LUTs along
// combinational dependencies.
func (s *Simulator) buildOrder() error {
	producer := make(map[int]int) // component -> LUT index (combinational only)
	for i := range s.luts {
		if !s.luts[i].registered {
			producer[s.luts[i].outComp] = i
		}
	}
	const (
		unvisited = 0
		visiting  = 1
		done      = 2
	)
	mark := make([]int, len(s.luts))
	var visit func(int) error
	visit = func(i int) error {
		switch mark[i] {
		case done:
			return nil
		case visiting:
			return fmt.Errorf("fabricsim: combinational loop through LUT at (%d,%d)", s.luts[i].x, s.luts[i].y)
		}
		mark[i] = visiting
		for _, c := range s.luts[i].inComp {
			if j, ok := producer[c]; ok && c != -1 {
				if err := visit(j); err != nil {
					return err
				}
			}
		}
		mark[i] = done
		s.order = append(s.order, i)
		return nil
	}
	for i := range s.luts {
		if err := visit(i); err != nil {
			return err
		}
	}
	return nil
}

// NumLUTs returns the number of active logic blocks found in the
// configuration.
func (s *Simulator) NumLUTs() int { return len(s.luts) }

// Step applies one clock cycle: inputs drive their pad components,
// combinational logic settles, outputs are sampled, flip-flops
// capture. Semantics match netlist.DesignSimulator exactly.
func (s *Simulator) Step(inputs map[string]bool) map[string]bool {
	for k := range s.value {
		delete(s.value, k)
	}
	// Drive input pads (pad output pin 0 drives its component).
	for _, pad := range s.ins {
		root := s.comp(s.gr.NodePin(pad.X, pad.Y, s.p.OutputPin()))
		s.value[root] = inputs[pad.Name]
	}
	// Registered LUTs present their state.
	for i := range s.luts {
		if s.luts[i].registered {
			s.value[s.luts[i].outComp] = s.ff[i]
		}
	}
	// Combinational settle; registered LUTs compute next-state last.
	lutOut := make([]bool, len(s.luts))
	for _, i := range s.order {
		inst := &s.luts[i]
		combo := 0
		for bit, c := range inst.inComp {
			if c != -1 && s.value[c] {
				combo |= 1 << uint(bit)
			}
		}
		lutOut[i] = inst.truth[combo]
		if !inst.registered {
			s.value[inst.outComp] = lutOut[i]
		}
	}
	// Sample output pads (pad input pin 1 reads its component).
	out := make(map[string]bool, len(s.out))
	for _, pad := range s.out {
		root := s.comp(s.gr.NodePin(pad.X, pad.Y, s.p.InputPin(0)))
		out[pad.Name] = s.value[root]
	}
	// Clock edge.
	for i := range s.luts {
		if s.luts[i].registered {
			s.ff[i] = lutOut[i]
		}
	}
	return out
}
