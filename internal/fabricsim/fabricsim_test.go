package fabricsim

import (
	"fmt"
	"math/rand"
	"strings"
	"testing"

	"repro/internal/arch"
	"repro/internal/bits"
	"repro/internal/bitstream"
	"repro/internal/core"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/rrg"
	"repro/internal/synth"
)

// compile runs the full flow on a circuit and returns everything
// needed to simulate both the netlist and the fabric.
type compiled struct {
	d   *netlist.Design
	pl  *place.Placement
	gr  *rrg.Graph
	res *route.Result
	raw *bitstream.Raw
}

func compileCircuit(t *testing.T, c *netlist.Circuit, w int, seed int64) *compiled {
	t.Helper()
	d, err := synth.Synthesize(c, 6)
	if err != nil {
		t.Fatal(err)
	}
	size := 1
	for size*size < d.NumLogicBlocks() {
		size++
	}
	pads := d.CountKind(netlist.InputPad) + d.CountKind(netlist.OutputPad)
	for arch.GridForSize(size).NumPerimeter() < pads {
		size++
	}
	pl, err := place.Place(d, arch.GridForSize(size), place.Options{Seed: seed, InnerNum: 1, FastExit: true})
	if err != nil {
		t.Fatal(err)
	}
	gr, err := rrg.Build(arch.Params{W: w, K: 6}, pl.Grid)
	if err != nil {
		t.Fatal(err)
	}
	res, err := route.Route(d, pl, gr, route.Options{})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := bitstream.Generate(d, pl, res)
	if err != nil {
		t.Fatal(err)
	}
	return &compiled{d: d, pl: pl, gr: gr, res: res, raw: raw}
}

// pads extracts the pad name->location bindings from the placement.
func (c *compiled) pads() (ins, outs []Pad) {
	for bi, b := range c.d.Blocks {
		loc := c.pl.Loc[bi]
		switch b.Kind {
		case netlist.InputPad:
			ins = append(ins, Pad{Name: b.Name, X: loc.X, Y: loc.Y})
		case netlist.OutputPad:
			outs = append(outs, Pad{Name: b.Name, X: loc.X, Y: loc.Y})
		}
	}
	return ins, outs
}

// assertFabricMatchesNetlist drives both simulators with the same
// random stimulus and compares outputs every cycle.
func assertFabricMatchesNetlist(t *testing.T, c *compiled, raw *bitstream.Raw, cycles int, seed int64) {
	t.Helper()
	ins, outs := c.pads()
	fsim, err := New(raw, ins, outs)
	if err != nil {
		t.Fatal(err)
	}
	nsim, err := netlist.NewDesignSimulator(c.d)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	for cycle := 0; cycle < cycles; cycle++ {
		stim := make(map[string]bool, len(ins))
		for _, p := range ins {
			stim[p.Name] = rng.Intn(2) == 0
		}
		want := nsim.Step(stim)
		got := fsim.Step(stim)
		for name, w := range want {
			if got[name] != w {
				t.Fatalf("cycle %d: output %q = %v on fabric, netlist says %v", cycle, name, got[name], w)
			}
		}
	}
}

const majorityBLIF = `
.model maj
.inputs a b c
.outputs m n
.names a b c m
11- 1
1-1 1
-11 1
.names a b n
10 1
01 1
.end
`

func TestCombinationalFabricMatchesNetlist(t *testing.T) {
	circ, err := netlist.ParseBLIF(strings.NewReader(majorityBLIF))
	if err != nil {
		t.Fatal(err)
	}
	c := compileCircuit(t, circ, 8, 1)
	assertFabricMatchesNetlist(t, c, c.raw, 32, 1)
}

const lfsrBLIF = `
.model lfsr
.inputs en
.outputs q0 q1 q2 q3
.names en q0 q3 q2 d0
01-- 1
1-01 1
1-10 1
.latch d0 q0 re clk 0
.names en q1 q0 d1
01- 1
1-1 1
.latch d1 q1 re clk 0
.names en q2 q1 d2
01- 1
1-1 1
.latch d2 q2 re clk 0
.names en q3 q2 d3
01- 1
1-1 1
.latch d3 q3 re clk 0
.end
`

func TestSequentialFabricMatchesNetlist(t *testing.T) {
	circ, err := netlist.ParseBLIF(strings.NewReader(lfsrBLIF))
	if err != nil {
		t.Fatal(err)
	}
	c := compileCircuit(t, circ, 8, 2)
	assertFabricMatchesNetlist(t, c, c.raw, 64, 2)
}

// TestVBSDecodedFabricBehaves is the repository's deepest end-to-end
// test: compile, encode to a VBS, decode it back, and demand the
// decoded fabric *behaves* identically to the netlist — for several
// cluster sizes. Connectivity equivalence is checked by the encoder;
// this checks function.
func TestVBSDecodedFabricBehaves(t *testing.T) {
	circ, err := netlist.ParseBLIF(strings.NewReader(lfsrBLIF))
	if err != nil {
		t.Fatal(err)
	}
	c := compileCircuit(t, circ, 8, 3)
	for _, cluster := range []int{1, 2, 3} {
		v, _, err := core.Encode(c.d, c.pl, c.res, core.EncodeOptions{Cluster: cluster})
		if err != nil {
			t.Fatalf("cluster %d: %v", cluster, err)
		}
		decoded, err := v.Decode()
		if err != nil {
			t.Fatalf("cluster %d: %v", cluster, err)
		}
		assertFabricMatchesNetlist(t, c, decoded, 48, int64(10+cluster))
	}
}

// TestRandomCircuitsBehave fuzzes the whole stack with random
// sequential circuits.
func TestRandomCircuitsBehave(t *testing.T) {
	for seed := int64(0); seed < 4; seed++ {
		rng := rand.New(rand.NewSource(seed))
		circ := netlist.NewCircuit("fuzz")
		names := []string{}
		for i := 0; i < 3; i++ {
			n := fmt.Sprintf("pi%d", i)
			circ.AddInput(n)
			names = append(names, n)
		}
		for i := 0; i < 10; i++ {
			nin := rng.Intn(3) + 1
			ins := make([]string, nin)
			for j := range ins {
				ins[j] = names[rng.Intn(len(names))]
			}
			truth := bits.NewVec(1 << uint(nin))
			for b := 0; b < truth.Len(); b++ {
				truth.Set(b, rng.Intn(2) == 0)
			}
			out := fmt.Sprintf("n%d", i)
			if _, err := circ.AddLUT(out, ins, truth); err != nil {
				t.Fatal(err)
			}
			names = append(names, out)
			if rng.Intn(3) == 0 {
				q := fmt.Sprintf("q%d", i)
				circ.AddLatch(out, q)
				names = append(names, q)
			}
		}
		circ.AddOutput(names[len(names)-1])
		circ.AddOutput(names[len(names)-2])
		c := compileCircuit(t, circ, 10, seed)
		assertFabricMatchesNetlist(t, c, c.raw, 24, seed)

		// And through the VBS.
		v, _, err := core.Encode(c.d, c.pl, c.res, core.EncodeOptions{Cluster: 2})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		decoded, err := v.Decode()
		if err != nil {
			t.Fatal(err)
		}
		assertFabricMatchesNetlist(t, c, decoded, 24, seed+100)
	}
}

func TestPadOffFabricRejected(t *testing.T) {
	circ, err := netlist.ParseBLIF(strings.NewReader(majorityBLIF))
	if err != nil {
		t.Fatal(err)
	}
	c := compileCircuit(t, circ, 8, 4)
	_, err = New(c.raw, []Pad{{Name: "x", X: 99, Y: 0}}, nil)
	if err == nil {
		t.Error("off-fabric pad accepted")
	}
}

func TestNumLUTs(t *testing.T) {
	circ, err := netlist.ParseBLIF(strings.NewReader(majorityBLIF))
	if err != nil {
		t.Fatal(err)
	}
	c := compileCircuit(t, circ, 8, 5)
	ins, outs := c.pads()
	s, err := New(c.raw, ins, outs)
	if err != nil {
		t.Fatal(err)
	}
	// The majority circuit packs to 2 logic blocks; random truth
	// tables make all-zero LUTs unlikely but possible, so allow <=.
	if s.NumLUTs() > 2 || s.NumLUTs() == 0 {
		t.Errorf("NumLUTs = %d, want 1..2", s.NumLUTs())
	}
}
