// Package place implements VPR-style simulated-annealing placement
// (Betz & Rose, FPL 1997): bounding-box wirelength cost with the
// canonical crossing-count compensation, an adaptive temperature
// schedule driven by move acceptance rate, and a shrinking move range
// limit. Logic blocks occupy the interior of the grid; I/O pads occupy
// the perimeter ring, one pad per macro.
package place

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/arch"
	"repro/internal/netlist"
)

// Loc is a macro coordinate on the fabric.
type Loc struct{ X, Y int }

// Placement assigns every block of a design to a distinct legal macro.
type Placement struct {
	Grid arch.Grid
	// Loc[b] is the location of block b.
	Loc []Loc
	// occ maps grid index -> block, or netlist.NoBlock.
	occ []netlist.BlockID
}

// At returns the block at (x, y), or netlist.NoBlock.
func (p *Placement) At(x, y int) netlist.BlockID {
	if !p.Grid.Contains(x, y) {
		return netlist.NoBlock
	}
	return p.occ[p.Grid.Index(x, y)]
}

// Validate checks that the placement is legal for the design: every
// block placed exactly once on a cell of the right class, no overlap.
func (p *Placement) Validate(d *netlist.Design) error {
	if len(p.Loc) != len(d.Blocks) {
		return fmt.Errorf("place: %d locations for %d blocks", len(p.Loc), len(d.Blocks))
	}
	seen := make(map[int]netlist.BlockID)
	for b, loc := range p.Loc {
		if !p.Grid.Contains(loc.X, loc.Y) {
			return fmt.Errorf("place: block %d at (%d,%d) off grid", b, loc.X, loc.Y)
		}
		idx := p.Grid.Index(loc.X, loc.Y)
		if prev, dup := seen[idx]; dup {
			return fmt.Errorf("place: blocks %d and %d overlap at (%d,%d)", prev, b, loc.X, loc.Y)
		}
		seen[idx] = netlist.BlockID(b)
		if p.occ[idx] != netlist.BlockID(b) {
			return fmt.Errorf("place: occupancy table inconsistent at (%d,%d)", loc.X, loc.Y)
		}
		isPad := d.Blocks[b].Kind != netlist.LogicBlock
		if isPad != p.Grid.IsPerimeter(loc.X, loc.Y) {
			return fmt.Errorf("place: block %d (%v) at illegal cell (%d,%d)",
				b, d.Blocks[b].Kind, loc.X, loc.Y)
		}
	}
	return nil
}

// Options tunes the annealer.
type Options struct {
	// Seed makes placement deterministic.
	Seed int64
	// InnerNum scales moves per temperature (VPR default 10; use 1 for
	// quick runs). Zero selects the default.
	InnerNum float64
	// FastExit stops the schedule early at a looser exit criterion,
	// trading quality for time. Used by tests and quick benches.
	FastExit bool
}

// crossing is VPR's net-terminal crossing-count compensation table:
// expected wire crossings of a net's bounding box, by terminal count.
var crossing = []float64{
	1.0, 1.0, 1.0, 1.0, 1.0828, 1.1536, 1.2206, 1.2823, 1.3385, 1.3991,
	1.4493, 1.4974, 1.5455, 1.5937, 1.6418, 1.6899, 1.7304, 1.7709,
	1.8114, 1.8519, 1.8924, 1.9288, 1.9652, 2.0015, 2.0379, 2.0743,
	2.1061, 2.1379, 2.1698, 2.2016, 2.2334, 2.2646, 2.2958, 2.3271,
	2.3583, 2.3895, 2.4187, 2.4479, 2.4772, 2.5064, 2.5356, 2.5610,
	2.5864, 2.6117, 2.6371, 2.6625, 2.6887, 2.7148, 2.7410, 2.7671,
	2.7933,
}

func crossingCount(terminals int) float64 {
	if terminals < len(crossing) {
		return crossing[terminals]
	}
	// Linear extrapolation used by VPR beyond 50 terminals.
	return 2.7933 + 0.02616*float64(terminals-50)
}

// bbox is a net's bounding box with terminal counts on each edge, so
// single moves update it incrementally most of the time.
type bbox struct {
	xmin, xmax, ymin, ymax int
}

type placer struct {
	d    *netlist.Design
	g    arch.Grid
	rng  *rand.Rand
	loc  []Loc
	occ  []netlist.BlockID
	bb   []bbox
	cost float64
	// netsOf[b] lists the nets touching block b (deduplicated).
	netsOf [][]netlist.NetID
	// interior and ring enumerate legal cells per block class.
	interior []Loc
	ring     []Loc
}

// Place runs simulated annealing and returns a legal placement.
func Place(d *netlist.Design, g arch.Grid, opt Options) (*Placement, error) {
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := d.Validate(); err != nil {
		return nil, fmt.Errorf("place: %w", err)
	}
	p := &placer{
		d: d, g: g,
		rng: rand.New(rand.NewSource(opt.Seed)),
		loc: make([]Loc, len(d.Blocks)),
		occ: make([]netlist.BlockID, g.NumMacros()),
	}
	for x := 0; x < g.Width; x++ {
		for y := 0; y < g.Height; y++ {
			if g.IsPerimeter(x, y) {
				p.ring = append(p.ring, Loc{x, y})
			} else {
				p.interior = append(p.interior, Loc{x, y})
			}
		}
	}
	nPads := d.CountKind(netlist.InputPad) + d.CountKind(netlist.OutputPad)
	if d.NumLogicBlocks() > len(p.interior) {
		return nil, fmt.Errorf("place: %d logic blocks exceed %d interior cells of %dx%d grid",
			d.NumLogicBlocks(), len(p.interior), g.Width, g.Height)
	}
	if nPads > len(p.ring) {
		return nil, fmt.Errorf("place: %d pads exceed %d perimeter cells", nPads, len(p.ring))
	}

	p.buildNetsOf()
	p.initialPlacement()
	p.recomputeAll()
	p.anneal(opt)

	out := &Placement{Grid: g, Loc: p.loc, occ: p.occ}
	if err := out.Validate(d); err != nil {
		return nil, fmt.Errorf("place: internal: %w", err)
	}
	return out, nil
}

func (p *placer) buildNetsOf() {
	p.netsOf = make([][]netlist.NetID, len(p.d.Blocks))
	seen := make([]netlist.NetID, len(p.d.Blocks))
	for i := range seen {
		seen[i] = netlist.NoNet
	}
	add := func(b netlist.BlockID, n netlist.NetID) {
		if seen[b] == n {
			return // consecutive duplicate (multiple pins on one net)
		}
		for _, e := range p.netsOf[b] {
			if e == n {
				return
			}
		}
		p.netsOf[b] = append(p.netsOf[b], n)
		seen[b] = n
	}
	for ni, net := range p.d.Nets {
		add(net.Driver, netlist.NetID(ni))
		for _, s := range net.Sinks {
			add(s.Block, netlist.NetID(ni))
		}
	}
}

func (p *placer) initialPlacement() {
	for i := range p.occ {
		p.occ[i] = netlist.NoBlock
	}
	ringPerm := p.rng.Perm(len(p.ring))
	intPerm := p.rng.Perm(len(p.interior))
	ri, ii := 0, 0
	for b, blk := range p.d.Blocks {
		var l Loc
		if blk.Kind == netlist.LogicBlock {
			l = p.interior[intPerm[ii]]
			ii++
		} else {
			l = p.ring[ringPerm[ri]]
			ri++
		}
		p.loc[b] = l
		p.occ[p.g.Index(l.X, l.Y)] = netlist.BlockID(b)
	}
}

// netBBox computes a net's bounding box from scratch.
func (p *placer) netBBox(n netlist.NetID) bbox {
	net := &p.d.Nets[n]
	l := p.loc[net.Driver]
	bb := bbox{l.X, l.X, l.Y, l.Y}
	for _, s := range net.Sinks {
		sl := p.loc[s.Block]
		if sl.X < bb.xmin {
			bb.xmin = sl.X
		}
		if sl.X > bb.xmax {
			bb.xmax = sl.X
		}
		if sl.Y < bb.ymin {
			bb.ymin = sl.Y
		}
		if sl.Y > bb.ymax {
			bb.ymax = sl.Y
		}
	}
	return bb
}

func (p *placer) netCost(n netlist.NetID, bb bbox) float64 {
	t := len(p.d.Nets[n].Sinks) + 1
	return crossingCount(t) * float64(bb.xmax-bb.xmin+bb.ymax-bb.ymin)
}

func (p *placer) recomputeAll() {
	p.bb = make([]bbox, len(p.d.Nets))
	p.cost = 0
	for n := range p.d.Nets {
		p.bb[n] = p.netBBox(netlist.NetID(n))
		p.cost += p.netCost(netlist.NetID(n), p.bb[n])
	}
}

// proposeTarget picks a random legal cell for block b within rlim of
// its current location.
func (p *placer) proposeTarget(b netlist.BlockID, rlim int) (Loc, bool) {
	cur := p.loc[b]
	isLB := p.d.Blocks[b].Kind == netlist.LogicBlock
	for try := 0; try < 12; try++ {
		dx := p.rng.Intn(2*rlim+1) - rlim
		dy := p.rng.Intn(2*rlim+1) - rlim
		t := Loc{cur.X + dx, cur.Y + dy}
		if t == cur || !p.g.Contains(t.X, t.Y) {
			continue
		}
		if isLB == p.g.IsPerimeter(t.X, t.Y) {
			continue
		}
		return t, true
	}
	// Fall back to any legal cell of the right class.
	if isLB {
		return p.interior[p.rng.Intn(len(p.interior))], true
	}
	return p.ring[p.rng.Intn(len(p.ring))], true
}

// affectedNets collects the distinct nets touching the moved blocks.
func (p *placer) affectedNets(a netlist.BlockID, b netlist.BlockID, scratch []netlist.NetID) []netlist.NetID {
	scratch = scratch[:0]
	scratch = append(scratch, p.netsOf[a]...)
	if b != netlist.NoBlock {
	outer:
		for _, n := range p.netsOf[b] {
			for _, e := range scratch {
				if e == n {
					continue outer
				}
			}
			scratch = append(scratch, n)
		}
	}
	return scratch
}

// applyMove moves block b to target t, swapping with any occupant, and
// returns the displaced occupant (or NoBlock). Rejected moves are
// reversed with undoMove.
func (p *placer) applyMove(b netlist.BlockID, t Loc) (occupant netlist.BlockID) {
	from := p.loc[b]
	fi, ti := p.g.Index(from.X, from.Y), p.g.Index(t.X, t.Y)
	occupant = p.occ[ti]
	p.loc[b] = t
	p.occ[ti] = b
	if occupant != netlist.NoBlock {
		p.loc[occupant] = from
		p.occ[fi] = occupant
	} else {
		p.occ[fi] = netlist.NoBlock
	}
	return occupant
}

// undoMove reverses applyMove(b, to) given b's original location and
// the displaced occupant it returned.
func (p *placer) undoMove(b netlist.BlockID, from, to Loc, occupant netlist.BlockID) {
	fi, ti := p.g.Index(from.X, from.Y), p.g.Index(to.X, to.Y)
	p.loc[b] = from
	p.occ[fi] = b
	if occupant != netlist.NoBlock {
		p.loc[occupant] = to
		p.occ[ti] = occupant
	} else {
		p.occ[ti] = netlist.NoBlock
	}
}

func (p *placer) anneal(opt Options) {
	n := len(p.d.Blocks)
	if n <= 1 || len(p.d.Nets) == 0 {
		return
	}
	innerNum := opt.InnerNum
	if innerNum <= 0 {
		innerNum = 10
	}
	movesPerT := int(innerNum * math.Pow(float64(n), 4.0/3.0))
	if movesPerT < 50 {
		movesPerT = 50
	}

	// Initial temperature: 20x the standard deviation of cost over n
	// random moves (VPR's recipe).
	t := p.initialTemperature(n)
	rlim := maxInt(p.g.Width, p.g.Height)
	exitT := 0.005 * p.cost / float64(len(p.d.Nets))
	if opt.FastExit {
		exitT *= 20
	}

	scratch := make([]netlist.NetID, 0, 64)
	oldBB := make([]bbox, 0, 64)
	for t > exitT {
		accepted := 0
		for m := 0; m < movesPerT; m++ {
			b := netlist.BlockID(p.rng.Intn(n))
			tgt, ok := p.proposeTarget(b, rlim)
			if !ok {
				continue
			}
			from := p.loc[b]
			occupant := p.applyMove(b, tgt)
			nets := p.affectedNets(b, occupant, scratch)
			oldBB = oldBB[:0]
			delta := 0.0
			for _, nid := range nets {
				oldBB = append(oldBB, p.bb[nid])
				nb := p.netBBox(nid)
				delta += p.netCost(nid, nb) - p.netCost(nid, p.bb[nid])
				p.bb[nid] = nb
			}
			if delta <= 0 || p.rng.Float64() < math.Exp(-delta/t) {
				p.cost += delta
				accepted++
			} else {
				p.undoMove(b, from, tgt, occupant)
				for i, nid := range nets {
					p.bb[nid] = oldBB[i]
				}
			}
		}
		rate := float64(accepted) / float64(movesPerT)
		switch {
		case rate > 0.96:
			t *= 0.5
		case rate > 0.8:
			t *= 0.9
		case rate > 0.15:
			t *= 0.95
		default:
			t *= 0.8
		}
		newRlim := int(float64(rlim) * (1.0 - 0.44 + rate))
		rlim = clampInt(newRlim, 1, maxInt(p.g.Width, p.g.Height))
	}
	// Guard against float drift over millions of incremental updates.
	p.recomputeAll()
}

func (p *placer) initialTemperature(nMoves int) float64 {
	if nMoves < 20 {
		nMoves = 20
	}
	var sum, sumSq float64
	count := 0
	for i := 0; i < nMoves; i++ {
		b := netlist.BlockID(p.rng.Intn(len(p.d.Blocks)))
		tgt, ok := p.proposeTarget(b, maxInt(p.g.Width, p.g.Height))
		if !ok {
			continue
		}
		occupant := p.applyMove(b, tgt)
		nets := p.affectedNets(b, occupant, nil)
		delta := 0.0
		for _, nid := range nets {
			nb := p.netBBox(nid)
			delta += p.netCost(nid, nb) - p.netCost(nid, p.bb[nid])
			p.bb[nid] = nb
		}
		p.cost += delta // keep state consistent; annealing continues from here
		sum += delta
		sumSq += delta * delta
		count++
	}
	if count == 0 {
		return 1
	}
	mean := sum / float64(count)
	variance := sumSq/float64(count) - mean*mean
	if variance < 1e-9 {
		return 1
	}
	return 20 * math.Sqrt(variance)
}

// Cost returns the placement's wirelength cost (bounding box with
// crossing-count compensation), the annealer's objective.
func Cost(d *netlist.Design, pl *Placement) float64 {
	total := 0.0
	for n := range d.Nets {
		net := &d.Nets[n]
		l := pl.Loc[net.Driver]
		bb := bbox{l.X, l.X, l.Y, l.Y}
		for _, s := range net.Sinks {
			sl := pl.Loc[s.Block]
			if sl.X < bb.xmin {
				bb.xmin = sl.X
			}
			if sl.X > bb.xmax {
				bb.xmax = sl.X
			}
			if sl.Y < bb.ymin {
				bb.ymin = sl.Y
			}
			if sl.Y > bb.ymax {
				bb.ymax = sl.Y
			}
		}
		total += crossingCount(len(net.Sinks)+1) * float64(bb.xmax-bb.xmin+bb.ymax-bb.ymin)
	}
	return total
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func clampInt(v, lo, hi int) int {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}
