package place

import (
	"math/rand"
	"testing"

	"repro/internal/arch"
	"repro/internal/bits"
	"repro/internal/netlist"
)

// testDesign builds a random connected design with nLB logic blocks.
func testDesign(seed int64, nLB, nIn, nOut, k int) *netlist.Design {
	rng := rand.New(rand.NewSource(seed))
	d := &netlist.Design{Name: "t", K: k}
	truth := bits.NewVec(1 << uint(k))
	truth.Set(1, true)
	var nets []netlist.NetID
	for i := 0; i < nIn; i++ {
		_, n := d.AddInputPad("pi")
		nets = append(nets, n)
	}
	for i := 0; i < nLB; i++ {
		nin := rng.Intn(k-1) + 1
		ins := make([]netlist.NetID, nin)
		for j := range ins {
			ins[j] = nets[rng.Intn(len(nets))]
		}
		_, n := d.AddLogicBlock("lb", ins, truth, false)
		nets = append(nets, n)
	}
	for i := 0; i < nOut; i++ {
		d.AddOutputPad("po", nets[len(nets)-1-i])
	}
	return d
}

func TestPlaceLegal(t *testing.T) {
	d := testDesign(1, 40, 6, 6, 4)
	g := arch.GridForSize(7) // 7x7 interior = 49 >= 40
	pl, err := Place(d, g, Options{Seed: 42, InnerNum: 1, FastExit: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := pl.Validate(d); err != nil {
		t.Fatal(err)
	}
	// Every logic block interior, every pad on the ring.
	for b, blk := range d.Blocks {
		loc := pl.Loc[b]
		onRing := g.IsPerimeter(loc.X, loc.Y)
		if (blk.Kind == netlist.LogicBlock) == onRing {
			t.Errorf("block %d (%v) at (%d,%d), onRing=%v", b, blk.Kind, loc.X, loc.Y, onRing)
		}
		if pl.At(loc.X, loc.Y) != netlist.BlockID(b) {
			t.Errorf("At(%d,%d) inconsistent", loc.X, loc.Y)
		}
	}
}

func TestPlaceImprovesOverRandom(t *testing.T) {
	d := testDesign(2, 60, 8, 8, 4)
	g := arch.GridForSize(9)
	// Random-only baseline: FastExit with InnerNum tiny still anneals, so
	// instead compare against the mean of several random placements by
	// constructing via a placer with zero annealing (exit immediately).
	pl, err := Place(d, g, Options{Seed: 7, InnerNum: 2})
	if err != nil {
		t.Fatal(err)
	}
	annealed := Cost(d, pl)

	// Average cost of purely random placements.
	var randomSum float64
	const trials = 5
	for s := int64(0); s < trials; s++ {
		p := &placer{d: d, g: g, rng: rand.New(rand.NewSource(100 + s)),
			loc: make([]Loc, len(d.Blocks)), occ: make([]netlist.BlockID, g.NumMacros())}
		for x := 0; x < g.Width; x++ {
			for y := 0; y < g.Height; y++ {
				if g.IsPerimeter(x, y) {
					p.ring = append(p.ring, Loc{x, y})
				} else {
					p.interior = append(p.interior, Loc{x, y})
				}
			}
		}
		p.initialPlacement()
		p.recomputeAll()
		randomSum += p.cost
	}
	randomAvg := randomSum / trials
	if annealed >= randomAvg {
		t.Errorf("annealed cost %.1f not better than random average %.1f", annealed, randomAvg)
	}
	// Annealing should cut wirelength substantially (at least 25%).
	if annealed > 0.75*randomAvg {
		t.Errorf("annealed cost %.1f is a weak improvement over random %.1f", annealed, randomAvg)
	}
}

func TestPlaceDeterministic(t *testing.T) {
	d := testDesign(3, 30, 5, 5, 4)
	g := arch.GridForSize(7)
	a, err := Place(d, g, Options{Seed: 11, InnerNum: 1, FastExit: true})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Place(d, g, Options{Seed: 11, InnerNum: 1, FastExit: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Loc {
		if a.Loc[i] != b.Loc[i] {
			t.Fatalf("block %d placed at %v then %v with same seed", i, a.Loc[i], b.Loc[i])
		}
	}
}

func TestPlaceDifferentSeedsDiffer(t *testing.T) {
	d := testDesign(4, 30, 5, 5, 4)
	g := arch.GridForSize(7)
	a, _ := Place(d, g, Options{Seed: 1, InnerNum: 1, FastExit: true})
	b, _ := Place(d, g, Options{Seed: 2, InnerNum: 1, FastExit: true})
	same := true
	for i := range a.Loc {
		if a.Loc[i] != b.Loc[i] {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical placements (suspicious)")
	}
}

func TestPlaceTooManyBlocks(t *testing.T) {
	d := testDesign(5, 30, 4, 4, 4)
	g := arch.GridForSize(5) // 25 interior < 30 LBs
	if _, err := Place(d, g, Options{Seed: 1}); err == nil {
		t.Error("overfull grid should fail")
	}
}

func TestPlaceTooManyPads(t *testing.T) {
	d := testDesign(6, 4, 30, 30, 4)
	g := arch.GridForSize(3) // ring of 16 < 60 pads
	if _, err := Place(d, g, Options{Seed: 1}); err == nil {
		t.Error("overfull ring should fail")
	}
}

func TestPlaceRejectsInvalidDesign(t *testing.T) {
	d := &netlist.Design{Name: "bad", K: 0}
	if _, err := Place(d, arch.GridForSize(4), Options{}); err == nil {
		t.Error("invalid design should fail")
	}
}

func TestPlaceRejectsInvalidGrid(t *testing.T) {
	d := testDesign(8, 4, 2, 2, 4)
	if _, err := Place(d, arch.Grid{}, Options{}); err == nil {
		t.Error("invalid grid should fail")
	}
}

func TestCrossingCount(t *testing.T) {
	if crossingCount(2) != 1.0 || crossingCount(3) != 1.0 {
		t.Error("small nets should have q=1")
	}
	if crossingCount(4) != 1.0828 {
		t.Errorf("q(4) = %f", crossingCount(4))
	}
	if q := crossingCount(60); q <= 2.7933 {
		t.Errorf("q(60) = %f, want > q(50)", q)
	}
	// Monotone non-decreasing.
	prev := 0.0
	for i := 1; i < 80; i++ {
		q := crossingCount(i)
		if q < prev {
			t.Fatalf("crossingCount not monotone at %d", i)
		}
		prev = q
	}
}

func TestCostMatchesInternal(t *testing.T) {
	d := testDesign(9, 25, 5, 5, 4)
	g := arch.GridForSize(6)
	pl, err := Place(d, g, Options{Seed: 3, InnerNum: 1, FastExit: true})
	if err != nil {
		t.Fatal(err)
	}
	// Cost() recomputed from scratch must be finite and positive for a
	// connected design.
	c := Cost(d, pl)
	if c <= 0 {
		t.Errorf("cost = %f, want > 0", c)
	}
}

func TestPlacementValidateCatchesOverlap(t *testing.T) {
	d := testDesign(10, 4, 2, 2, 4)
	g := arch.GridForSize(4)
	pl, err := Place(d, g, Options{Seed: 3, InnerNum: 1, FastExit: true})
	if err != nil {
		t.Fatal(err)
	}
	pl.Loc[0] = pl.Loc[1] // force overlap
	if err := pl.Validate(d); err == nil {
		t.Error("overlap not detected")
	}
}

func BenchmarkPlaceSmall(b *testing.B) {
	d := testDesign(11, 60, 8, 8, 4)
	g := arch.GridForSize(9)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Place(d, g, Options{Seed: int64(i), InnerNum: 1, FastExit: true}); err != nil {
			b.Fatal(err)
		}
	}
}
