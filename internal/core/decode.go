package core

import (
	"fmt"

	"repro/internal/arch"
	"repro/internal/bitstream"
	"repro/internal/devirt"
)

// Decode de-virtualizes the VBS into a raw bitstream covering the
// task's own w×h grid (the task placed at the origin). It is the
// single-threaded reference decoder; the runtime controller wraps it
// with placement and parallel region decoding.
//
// Decoding is a pure function of the VBS contents: the same
// deterministic region router runs regardless of the final position,
// which is what makes the format relocatable. Wires missing at a
// particular position (fabric edges) are guaranteed unused by the
// encoder's feedback loop.
func (v *VBS) Decode() (*bitstream.Raw, error) {
	g := arch.Grid{Width: v.TaskW, Height: v.TaskH}
	out := bitstream.New(v.P, g)
	if err := v.DecodeInto(out, 0, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeInto de-virtualizes the task into an existing fabric
// configuration with the task's south-west macro at (x0, y0). The
// target must be large enough to hold the task.
func (v *VBS) DecodeInto(target *bitstream.Raw, x0, y0 int) error {
	if err := v.Validate(); err != nil {
		return err
	}
	if target.P != v.P {
		return fmt.Errorf("core: decode onto %v fabric, task compiled for %v", target.P, v.P)
	}
	if x0 < 0 || y0 < 0 || x0+v.TaskW > target.G.Width || y0+v.TaskH > target.G.Height {
		return fmt.Errorf("core: task %dx%d at (%d,%d) exceeds %dx%d fabric",
			v.TaskW, v.TaskH, x0, y0, target.G.Width, target.G.Height)
	}
	for i := range v.Entries {
		if err := v.decodeEntry(&v.Entries[i], target, x0, y0); err != nil {
			return fmt.Errorf("core: entry %d at region (%d,%d): %w",
				i, v.Entries[i].X, v.Entries[i].Y, err)
		}
	}
	return nil
}

// Warm pre-builds the de-virtualization routing graphs for every
// distinct region shape this VBS decodes through (at most four: the
// nominal cluster and its edge truncations). A runtime manager calls
// this when a VBS is admitted to its store so the first load does not
// pay graph construction.
func (v *VBS) Warm() error {
	seen := make(map[devirt.Region]bool)
	for i := range v.Entries {
		e := &v.Entries[i]
		r := v.Region(e.X, e.Y)
		if seen[r] {
			continue
		}
		seen[r] = true
		if err := devirt.Warm(r); err != nil {
			return err
		}
	}
	return nil
}

// DecodeEntry decodes one entry in isolation and returns the
// region's member configurations (row-major, actual members only).
// This is the unit of work the parallel controller distributes.
func (v *VBS) DecodeEntry(i int) ([]*arch.MacroConfig, error) {
	if i < 0 || i >= len(v.Entries) {
		return nil, fmt.Errorf("core: entry %d out of range", i)
	}
	e := &v.Entries[i]
	cw, ch := v.RegionDims(e.X, e.Y)
	cfgs, err := v.regionConfigs(e)
	if err != nil {
		return nil, err
	}
	if len(cfgs) != cw*ch {
		return nil, fmt.Errorf("core: entry %d decoded %d members, want %d", i, len(cfgs), cw*ch)
	}
	return cfgs, nil
}

func (v *VBS) decodeEntry(e *Entry, target *bitstream.Raw, x0, y0 int) error {
	cfgs, err := v.regionConfigs(e)
	if err != nil {
		return err
	}
	cw, ch := v.RegionDims(e.X, e.Y)
	baseX := x0 + e.X*v.Cluster
	baseY := y0 + e.Y*v.Cluster
	for j := 0; j < ch; j++ {
		for i := 0; i < cw; i++ {
			src := cfgs[j*cw+i].Vec()
			dst := target.At(baseX+i, baseY+j).Vec()
			if dst.Len() != src.Len() {
				return fmt.Errorf("core: member config size mismatch")
			}
			dst.Or(src)
		}
	}
	return nil
}

// regionConfigs materializes an entry's member configurations: logic
// data merged with either the de-virtualized routing or the raw
// payload.
func (v *VBS) regionConfigs(e *Entry) ([]*arch.MacroConfig, error) {
	cw, ch := v.RegionDims(e.X, e.Y)
	var cfgs []*arch.MacroConfig
	if e.Raw {
		cfgs = make([]*arch.MacroConfig, cw*ch)
		for m := range cfgs {
			cfgs[m] = arch.NewMacroConfig(v.P)
			cfgs[m].SetRoutingBits(e.RawBits[m])
		}
	} else {
		reg := v.Region(e.X, e.Y)
		rt, err := devirt.NewRouter(reg, false, false)
		if err != nil {
			return nil, err
		}
		// Endpoint reservation: the whole list is known before routing
		// starts, so no connection may route through another's terminal.
		for _, c := range e.Conns {
			if err := rt.Reserve(c.In); err != nil {
				return nil, err
			}
			if err := rt.Reserve(c.Out); err != nil {
				return nil, err
			}
		}
		for k, c := range e.Conns {
			if err := rt.RouteConnection(c.In, c.Out); err != nil {
				return nil, fmt.Errorf("connection %d (%d->%d): %w", k, c.In, c.Out, err)
			}
		}
		cfgs = rt.Configs()
	}
	for _, li := range e.Logic {
		j, i := li.Member/v.Cluster, li.Member%v.Cluster
		if i >= cw || j >= ch {
			return nil, fmt.Errorf("logic member %d outside %dx%d region", li.Member, cw, ch)
		}
		cfgs[j*cw+i].SetLogic(li.Data)
	}
	return cfgs, nil
}
