package core

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/arch"
	"repro/internal/bitstream"
	"repro/internal/devirt"
)

// Decode de-virtualizes the VBS into a raw bitstream covering the
// task's own w×h grid (the task placed at the origin). It is the
// single-threaded reference decoder; the runtime controller wraps it
// with placement and parallel region decoding.
//
// Decoding is a pure function of the VBS contents: the same
// deterministic region router runs regardless of the final position,
// which is what makes the format relocatable. Wires missing at a
// particular position (fabric edges) are guaranteed unused by the
// encoder's feedback loop.
func (v *VBS) Decode() (*bitstream.Raw, error) {
	g := arch.Grid{Width: v.TaskW, Height: v.TaskH}
	out := bitstream.New(v.P, g)
	if err := v.DecodeInto(out, 0, 0); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeInto de-virtualizes the task into an existing fabric
// configuration with the task's south-west macro at (x0, y0). The
// target must be large enough to hold the task. Entries decode
// in-place through pooled region routers: at steady state the only
// writes are word-level ORs into the target's bit vectors and nothing
// is allocated.
func (v *VBS) DecodeInto(target *bitstream.Raw, x0, y0 int) error {
	if err := v.checkTarget(target, x0, y0); err != nil {
		return err
	}
	for i := range v.Entries {
		if err := v.DecodeEntryInto(i, target, x0, y0); err != nil {
			return fmt.Errorf("core: entry %d at region (%d,%d): %w",
				i, v.Entries[i].X, v.Entries[i].Y, err)
		}
	}
	return nil
}

// DecodeParallel is Decode with entries de-virtualized concurrently by
// the given worker count (0 selects GOMAXPROCS). Entries cover
// disjoint macros, so workers write disjoint target vectors; the
// result is bit-identical to Decode regardless of worker count. The
// encoder's feedback verification runs through this path.
func (v *VBS) DecodeParallel(workers int) (*bitstream.Raw, error) {
	g := arch.Grid{Width: v.TaskW, Height: v.TaskH}
	out := bitstream.New(v.P, g)
	if err := v.DecodeIntoParallel(out, 0, 0, workers); err != nil {
		return nil, err
	}
	return out, nil
}

// DecodeIntoParallel is DecodeInto with entries decoded concurrently
// by the given worker count (0 selects GOMAXPROCS).
func (v *VBS) DecodeIntoParallel(target *bitstream.Raw, x0, y0, workers int) error {
	if err := v.checkTarget(target, x0, y0); err != nil {
		return err
	}
	return v.EachEntryParallel(workers, func(i int) error {
		if err := v.DecodeEntryInto(i, target, x0, y0); err != nil {
			return fmt.Errorf("core: entry %d at region (%d,%d): %w",
				i, v.Entries[i].X, v.Entries[i].Y, err)
		}
		return nil
	})
}

// checkTarget validates the VBS and the placement rectangle once per
// whole-task decode.
func (v *VBS) checkTarget(target *bitstream.Raw, x0, y0 int) error {
	if err := v.Validate(); err != nil {
		return err
	}
	if target.P != v.P {
		return fmt.Errorf("core: decode onto %v fabric, task compiled for %v", target.P, v.P)
	}
	if x0 < 0 || y0 < 0 || x0+v.TaskW > target.G.Width || y0+v.TaskH > target.G.Height {
		return fmt.Errorf("core: task %dx%d at (%d,%d) exceeds %dx%d fabric",
			v.TaskW, v.TaskH, x0, y0, target.G.Width, target.G.Height)
	}
	return nil
}

// EachEntryParallel runs fn for every entry index, distributing the
// calls over the given worker count (0 selects GOMAXPROCS). Entries
// decode independently (the property Section II-C calls out), so this
// is the fan-out shared by whole-task parallel decodes here and by the
// runtime controller's Decoded builder. When several entries fail, the
// error of the lowest entry index is returned, so the outcome does not
// depend on scheduling.
func (v *VBS) EachEntryParallel(workers int, fn func(i int) error) error {
	n := len(v.Entries)
	if n == 0 {
		return nil
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > n {
		workers = n
	}
	if workers == 1 {
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next     atomic.Int64
		wg       sync.WaitGroup
		mu       sync.Mutex
		errIdx   = n
		firstErr error
	)
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := fn(i); err != nil {
					mu.Lock()
					if i < errIdx {
						errIdx, firstErr = i, err
					}
					mu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return firstErr
}

// Warm pre-builds the de-virtualization routing graphs for every
// distinct region shape this VBS decodes through (at most four: the
// nominal cluster and its edge truncations). A runtime manager calls
// this when a VBS is admitted to its store so the first load does not
// pay graph construction.
func (v *VBS) Warm() error {
	seen := make(map[devirt.Region]bool)
	for i := range v.Entries {
		e := &v.Entries[i]
		r := v.Region(e.X, e.Y)
		if seen[r] {
			continue
		}
		seen[r] = true
		if err := devirt.Warm(r); err != nil {
			return err
		}
	}
	return nil
}

// DecodeEntryInto de-virtualizes entry i directly into the target
// configuration, with the task's south-west macro at (x0, y0). Routed
// switch words, logic payloads and raw fallback payloads are OR-ed
// word-level into the target macros' bit vectors through a pooled
// region router — no per-entry member configurations are
// materialized. This is the decode hot path: the whole-task decoders
// and the parallel controller both run on it.
//
// The caller is responsible for the placement rectangle being inside
// the target (DecodeInto checks it once for the whole task).
func (v *VBS) DecodeEntryInto(i int, target *bitstream.Raw, x0, y0 int) error {
	if i < 0 || i >= len(v.Entries) {
		return fmt.Errorf("core: entry %d out of range", i)
	}
	if target.P != v.P {
		return fmt.Errorf("core: decode onto %v fabric, task compiled for %v", target.P, v.P)
	}
	e := &v.Entries[i]
	cw, ch := v.RegionDims(e.X, e.Y)
	baseX := x0 + e.X*v.Cluster
	baseY := y0 + e.Y*v.Cluster
	switch {
	case e.Raw:
		if len(e.RawBits) != cw*ch {
			return fmt.Errorf("core: raw payload count %d, want %d", len(e.RawBits), cw*ch)
		}
		nlb := v.P.NLB()
		for m, rb := range e.RawBits {
			target.At(baseX+m%cw, baseY+m/cw).Vec().OrAt(rb, nlb)
		}
	case len(e.Conns) > 0:
		rt, err := devirt.AcquireRouter(v.Region(e.X, e.Y), false, false)
		if err != nil {
			return err
		}
		if err := routeEntry(rt, e); err != nil {
			rt.Release()
			return err
		}
		for m := 0; m < cw*ch; m++ {
			rt.MergeMember(m, target.At(baseX+m%cw, baseY+m/cw).Vec())
		}
		rt.Release()
	}
	for _, li := range e.Logic {
		j, mi := li.Member/v.Cluster, li.Member%v.Cluster
		if mi >= cw || j >= ch {
			return fmt.Errorf("core: logic member %d outside %dx%d region", li.Member, cw, ch)
		}
		target.At(baseX+mi, baseY+j).Vec().OrAt(li.Data, 0)
	}
	return nil
}

// DecodeEntry decodes one entry in isolation and returns the region's
// member configurations (row-major, actual members only), freshly
// allocated — the pooled router's state is copied out before the
// router is released, per the Configs ownership contract. This is the
// materializing variant the controller's position-free Decoded cache
// is built from; the in-place hot path is DecodeEntryInto.
func (v *VBS) DecodeEntry(i int) ([]*arch.MacroConfig, error) {
	if i < 0 || i >= len(v.Entries) {
		return nil, fmt.Errorf("core: entry %d out of range", i)
	}
	e := &v.Entries[i]
	cw, ch := v.RegionDims(e.X, e.Y)
	cfgs := make([]*arch.MacroConfig, cw*ch)
	for m := range cfgs {
		cfgs[m] = arch.NewMacroConfig(v.P)
	}
	switch {
	case e.Raw:
		if len(e.RawBits) != cw*ch {
			return nil, fmt.Errorf("core: entry %d raw payload count %d, want %d", i, len(e.RawBits), cw*ch)
		}
		for m := range cfgs {
			cfgs[m].SetRoutingBits(e.RawBits[m])
		}
	case len(e.Conns) > 0:
		rt, err := devirt.AcquireRouter(v.Region(e.X, e.Y), false, false)
		if err != nil {
			return nil, err
		}
		if err := routeEntry(rt, e); err != nil {
			rt.Release()
			return nil, err
		}
		for m := range cfgs {
			rt.MergeMember(m, cfgs[m].Vec())
		}
		rt.Release()
	}
	for _, li := range e.Logic {
		j, mi := li.Member/v.Cluster, li.Member%v.Cluster
		if mi >= cw || j >= ch {
			return nil, fmt.Errorf("core: logic member %d outside %dx%d region", li.Member, cw, ch)
		}
		cfgs[j*cw+mi].SetLogic(li.Data)
	}
	return cfgs, nil
}

// routeEntry replays entry e's connection list on rt. Endpoint
// reservation first: the whole list is known before routing starts, so
// no connection may route through another's terminal without paying
// the reservation penalty.
func routeEntry(rt *devirt.Router, e *Entry) error {
	for _, c := range e.Conns {
		if err := rt.Reserve(c.In); err != nil {
			return err
		}
		if err := rt.Reserve(c.Out); err != nil {
			return err
		}
	}
	for k, c := range e.Conns {
		if err := rt.RouteConnection(c.In, c.Out); err != nil {
			return fmt.Errorf("connection %d (%d->%d): %w", k, c.In, c.Out, err)
		}
	}
	return nil
}
