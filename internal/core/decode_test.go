package core

import (
	"testing"

	"repro/internal/arch"
	"repro/internal/bitstream"
)

// TestDecodeVariantsBitIdentical: every decode path — sequential
// in-place, parallel at several worker counts, entry-materializing
// (DecodeEntry), and repeated decodes reusing the same pooled routers —
// must produce exactly the same bits, across cluster sizes including
// ones that truncate edge regions. This is the decoder-side equivalence
// property of the zero-allocation hot path.
func TestDecodeVariantsBitIdentical(t *testing.T) {
	f := runFlow(t, 21, 30, 7, 8, 6)
	for _, cluster := range []int{1, 2, 3, 4} {
		v, _, err := Encode(f.d, f.pl, f.res, EncodeOptions{Cluster: cluster})
		if err != nil {
			t.Fatalf("cluster %d: %v", cluster, err)
		}
		ref, err := v.Decode()
		if err != nil {
			t.Fatalf("cluster %d: %v", cluster, err)
		}
		for _, workers := range []int{1, 2, 7} {
			got, err := v.DecodeParallel(workers)
			if err != nil {
				t.Fatalf("cluster %d workers %d: %v", cluster, workers, err)
			}
			if !got.Equal(ref) {
				t.Fatalf("cluster %d: parallel decode (workers=%d) differs", cluster, workers)
			}
		}
		// Repeated decodes exercise pooled-router reuse; results must not
		// drift with reuse.
		for round := 0; round < 3; round++ {
			again, err := v.Decode()
			if err != nil {
				t.Fatalf("cluster %d round %d: %v", cluster, round, err)
			}
			if !again.Equal(ref) {
				t.Fatalf("cluster %d round %d: repeated decode differs", cluster, round)
			}
		}
		// The materializing entry decoder must agree with the in-place
		// one, entry by entry.
		grid := arch.Grid{Width: v.TaskW, Height: v.TaskH}
		fromEntries := bitstream.New(v.P, grid)
		for i := range v.Entries {
			e := &v.Entries[i]
			cfgs, err := v.DecodeEntry(i)
			if err != nil {
				t.Fatalf("cluster %d entry %d: %v", cluster, i, err)
			}
			cw, _ := v.RegionDims(e.X, e.Y)
			for m, cfg := range cfgs {
				fromEntries.At(e.X*v.Cluster+m%cw, e.Y*v.Cluster+m/cw).Vec().Or(cfg.Vec())
			}
		}
		if !fromEntries.Equal(ref) {
			t.Fatalf("cluster %d: DecodeEntry composition differs from DecodeInto", cluster)
		}
	}
}

// TestDecodeIntoSteadyStateAllocs pins the whole-task decode hot path:
// decoding into a pre-allocated target must allocate (almost) nothing
// once routers are pooled and graphs cached. The tolerance covers pool
// evictions under GC pressure; a real regression (per-entry router or
// config materialization) is orders of magnitude above it and fails
// `go test ./...`.
func TestDecodeIntoSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool deliberately drops items under -race")
	}
	f := runFlow(t, 22, 25, 6, 8, 6)
	v, _, err := Encode(f.d, f.pl, f.res, EncodeOptions{Cluster: 2})
	if err != nil {
		t.Fatal(err)
	}
	target := bitstream.New(v.P, arch.Grid{Width: v.TaskW, Height: v.TaskH})
	decode := func() {
		if err := v.DecodeInto(target, 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	decode() // warm pooled routers for every region shape of this VBS
	if avg := testing.AllocsPerRun(50, decode); avg > 4 {
		t.Errorf("steady-state DecodeInto allocates %.2f times per run, want ~0", avg)
	}
}
