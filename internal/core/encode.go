package core

import (
	"fmt"
	"sort"

	"repro/internal/arch"
	"repro/internal/bitstream"
	"repro/internal/devirt"
	"repro/internal/netlist"
	"repro/internal/place"
	"repro/internal/route"
	"repro/internal/rrg"
)

// EncodeOptions tunes vbsgen, the offline VBS generation backend
// (Section III-B).
type EncodeOptions struct {
	// Cluster is the coding granularity c (default 1).
	Cluster int
	// MaxReorder bounds connection-list re-ordering attempts per region
	// before falling back to raw coding (default 128; re-ordering is
	// cheap relative to the raw-payload cost of a fallback).
	MaxReorder int
	// DisableReorder skips the re-ordering step (ablation).
	DisableReorder bool
	// DisableFallback turns raw fallback into a hard error (ablation).
	DisableFallback bool
	// KeepEmptyRegions emits entries for unused regions (ablation of
	// the macro-skipping optimization).
	KeepEmptyRegions bool
	// SkipVerify skips the final decode-and-verify assertion. The
	// encoder's guarantees rest on that check; only benchmarks that
	// time encoding in isolation should set it.
	SkipVerify bool
}

func (o EncodeOptions) withDefaults() EncodeOptions {
	if o.Cluster == 0 {
		o.Cluster = 1
	}
	if o.MaxReorder == 0 {
		o.MaxReorder = 128
	}
	return o
}

// EncodeStats reports what the feedback loop did.
type EncodeStats struct {
	// Regions is the number of region tiles of the task.
	Regions int
	// UsedRegions counts regions with any logic or routing.
	UsedRegions int
	// CodedRegions counts regions coded as connection lists.
	CodedRegions int
	// RawRegions counts raw-coding fallbacks, split by cause.
	RawRegions        int
	CountFallbacks    int // route count exceeded the count field
	RouteFallbacks    int // de-virtualization could not route the list
	DeadEdgeFallbacks int // decode relied on wires missing at the task edge
	ConflictFallbacks int // cross-region conductor collision
	// ReorderedRegions counts regions whose list needed re-ordering.
	ReorderedRegions int
	// Connections is the total coded connection count.
	Connections int
}

type pairInfo struct {
	conn Conn
	net  netlist.NetID
}

// regionState carries one region through the feedback loop.
type regionState struct {
	rx, ry int
	x0, y0 int // macro origin
	reg    devirt.Region
	logic  []LogicItem
	pairs  []pairInfo
	raw    bool
	// decoded claims: parallel slices of claimed global wire nodes and
	// the design net claiming them.
	claimNodes []rrg.NodeID
	claimNets  []netlist.NetID
	reordered  bool
}

// Encode compresses a placed-and-routed design into a Virtual
// Bit-Stream. The offline feedback loop of Section III-B runs the
// online de-virtualization algorithm on every region, re-orders
// connection lists that fail to decode, falls back to raw coding where
// necessary, and finally proves the whole VBS decodes into a
// configuration electrically equivalent to the original routing.
func Encode(d *netlist.Design, pl *place.Placement, res *route.Result, opt EncodeOptions) (*VBS, *EncodeStats, error) {
	opt = opt.withDefaults()
	gr := res.Graph
	v := &VBS{
		P:       gr.P,
		Cluster: opt.Cluster,
		TaskW:   pl.Grid.Width,
		TaskH:   pl.Grid.Height,
	}
	stats := &EncodeStats{}
	wR, hR := v.RegionsW(), v.RegionsH()
	stats.Regions = wR * hR

	// Original raw bitstream: source of truth for fallback payloads and
	// the baseline claims of raw regions.
	rawOrig, err := bitstream.Generate(d, pl, res)
	if err != nil {
		return nil, nil, fmt.Errorf("core: %w", err)
	}

	states := make([]*regionState, wR*hR)
	for ry := 0; ry < hR; ry++ {
		for rx := 0; rx < wR; rx++ {
			states[ry*wR+rx] = &regionState{
				rx: rx, ry: ry,
				x0: rx * opt.Cluster, y0: ry * opt.Cluster,
				reg: v.Region(rx, ry),
			}
		}
	}

	// Logic payloads.
	for bi := range d.Blocks {
		loc := pl.Loc[bi]
		st := states[(loc.Y/opt.Cluster)*wR+loc.X/opt.Cluster]
		member := (loc.Y-st.y0)*opt.Cluster + (loc.X - st.x0)
		st.logic = append(st.logic, LogicItem{
			Member: member,
			Data:   bitstream.LogicVec(v.P, &d.Blocks[bi]),
		})
	}
	for _, st := range states {
		sort.Slice(st.logic, func(a, b int) bool { return st.logic[a].Member < st.logic[b].Member })
	}

	// Connection pairs from the routed trees.
	if err := extractPairs(v, d, pl, res, states); err != nil {
		return nil, nil, err
	}

	// Per-region feedback: decode, re-order, fall back.
	for _, st := range states {
		if len(st.pairs) == 0 {
			continue
		}
		if len(st.pairs) > v.MaxRoutes() {
			if opt.DisableFallback {
				return nil, nil, fmt.Errorf("core: region (%d,%d) needs %d connections, field holds %d",
					st.rx, st.ry, len(st.pairs), v.MaxRoutes())
			}
			st.raw = true
			stats.CountFallbacks++
			continue
		}
		ok, cause := decodeRegionWithReorder(v, gr, st, opt)
		if !ok {
			if opt.DisableFallback {
				return nil, nil, fmt.Errorf("core: region (%d,%d) not decodable: %s", st.rx, st.ry, cause)
			}
			st.raw = true
			switch cause {
			case "route":
				stats.RouteFallbacks++
			case "deadEdge":
				stats.DeadEdgeFallbacks++
			}
		}
	}

	// Cross-region conflict resolution: coded regions whose decoded
	// intermediates collide with another region's wires are demoted.
	for round := 0; round < len(states)+1; round++ {
		conflicted := findConflicts(states, d, res, gr, v)
		if len(conflicted) == 0 {
			break
		}
		if opt.DisableFallback {
			return nil, nil, fmt.Errorf("core: %d regions have cross-region conductor conflicts", len(conflicted))
		}
		for _, st := range conflicted {
			st.raw = true
			st.claimNodes, st.claimNets = nil, nil
			stats.ConflictFallbacks++
		}
	}

	// Assemble entries row-major.
	for _, st := range states {
		used := len(st.logic) > 0 || len(st.pairs) > 0 || st.raw
		if used {
			stats.UsedRegions++
		}
		if !used && !opt.KeepEmptyRegions {
			continue
		}
		e := Entry{X: st.rx, Y: st.ry, Logic: st.logic}
		if st.raw {
			e.Raw = true
			stats.RawRegions++
			cw, ch := v.RegionDims(st.rx, st.ry)
			for j := 0; j < ch; j++ {
				for i := 0; i < cw; i++ {
					e.RawBits = append(e.RawBits, rawOrig.At(st.x0+i, st.y0+j).RoutingBits())
				}
			}
		} else {
			if len(st.pairs) > 0 {
				stats.CodedRegions++
			}
			for _, pi := range st.pairs {
				e.Conns = append(e.Conns, pi.conn)
			}
			stats.Connections += len(e.Conns)
			if st.reordered {
				stats.ReorderedRegions++
			}
		}
		v.Entries = append(v.Entries, e)
	}

	if err := v.Validate(); err != nil {
		return nil, nil, fmt.Errorf("core: produced invalid VBS: %w", err)
	}
	if !opt.SkipVerify {
		// The feedback verification decodes the whole VBS through the
		// same parallel entry-level path the runtime controller uses.
		decoded, err := v.DecodeParallel(0)
		if err != nil {
			return nil, nil, fmt.Errorf("core: feedback decode: %w", err)
		}
		if err := bitstream.Verify(decoded, d, pl, gr); err != nil {
			return nil, nil, fmt.Errorf("core: feedback verification: %w", err)
		}
	}
	return v, stats, nil
}

// EncodeBest encodes at every candidate cluster size and returns the
// smallest VBS (by the Table I bit accounting), with its stats and the
// winning cluster size. The paper leaves cluster selection to the
// designer; this automates it for tools that just want the smallest
// loadable image.
func EncodeBest(d *netlist.Design, pl *place.Placement, res *route.Result,
	opt EncodeOptions, clusters ...int) (*VBS, *EncodeStats, error) {
	if len(clusters) == 0 {
		clusters = []int{1, 2, 3, 4}
	}
	var (
		bestV *VBS
		bestS *EncodeStats
	)
	for _, c := range clusters {
		o := opt
		o.Cluster = c
		v, stats, err := Encode(d, pl, res, o)
		if err != nil {
			return nil, nil, fmt.Errorf("core: cluster %d: %w", c, err)
		}
		if bestV == nil || v.Size() < bestV.Size() {
			bestV, bestS = v, stats
		}
	}
	return bestV, bestS, nil
}

// extractPairs walks every routed net tree and produces, per region,
// the connection list: for each electrically connected component the
// net forms inside the region, one (first terminal, other terminal)
// pair per additional terminal. Terminals are the net's pins in the
// region and the boundary wires the net also uses in an adjacent
// region; interior detail is deliberately dropped — that is the
// virtualization step.
func extractPairs(v *VBS, d *netlist.Design, pl *place.Placement, res *route.Result, states []*regionState) error {
	gr := res.Graph
	c := v.Cluster
	wR := v.RegionsW()
	regionOfMacro := func(m int32) int {
		x, y := pl.Grid.Coords(int(m))
		return (y/c)*wR + x/c
	}

	// Terminal pins: pin nodes that are net sources or sinks.
	termPin := make(map[rrg.NodeID]bool)
	for ni := range res.Routes {
		nr := &res.Routes[ni]
		termPin[nr.Source] = true
		for _, s := range nr.Sinks {
			termPin[s] = true
		}
	}

	for ni := range res.Routes {
		nr := &res.Routes[ni]
		if len(nr.Edges) == 0 {
			continue
		}
		// Group tree edges by region.
		edgesBy := make(map[int][]route.TreeEdge)
		nodeRegions := make(map[rrg.NodeID]map[int]bool)
		noteNode := func(n rrg.NodeID, reg int) {
			m := nodeRegions[n]
			if m == nil {
				m = make(map[int]bool, 2)
				nodeRegions[n] = m
			}
			m[reg] = true
		}
		for _, e := range nr.Edges {
			reg := regionOfMacro(e.Macro)
			edgesBy[reg] = append(edgesBy[reg], e)
			noteNode(e.From, reg)
			noteNode(e.To, reg)
		}

		for reg, edges := range edgesBy {
			st := states[reg]
			// Local union-find over the nodes this region's edges touch.
			idx := make(map[rrg.NodeID]int)
			var nodes []rrg.NodeID
			indexOf := func(n rrg.NodeID) int {
				if i, ok := idx[n]; ok {
					return i
				}
				i := len(nodes)
				idx[n] = i
				nodes = append(nodes, n)
				return i
			}
			parent := make([]int, 0, 2*len(edges))
			var find func(int) int
			find = func(x int) int {
				for parent[x] != x {
					parent[x] = parent[parent[x]]
					x = parent[x]
				}
				return x
			}
			for _, e := range edges {
				a, b := indexOf(e.From), indexOf(e.To)
				for len(parent) < len(nodes) {
					parent = append(parent, len(parent))
				}
				ra, rb := find(a), find(b)
				if ra != rb {
					if ra > rb {
						ra, rb = rb, ra
					}
					parent[rb] = ra
				}
			}
			// Terminals per component.
			byComp := make(map[int][]devirt.IOCode)
			for i, n := range nodes {
				code, isTerm, err := terminalCode(gr, v, st, n, termPin, nodeRegions[n], reg)
				if err != nil {
					return fmt.Errorf("core: net %q: %w", d.Nets[ni].Name, err)
				}
				if !isTerm {
					continue
				}
				root := find(i)
				byComp[root] = append(byComp[root], code)
			}
			roots := make([]int, 0, len(byComp))
			for root := range byComp {
				roots = append(roots, root)
			}
			sort.Ints(roots)
			for _, root := range roots {
				terms := byComp[root]
				if len(terms) < 2 {
					continue // local stub, electrically irrelevant
				}
				sort.Slice(terms, func(a, b int) bool { return terms[a] < terms[b] })
				for _, t := range terms[1:] {
					st.pairs = append(st.pairs, pairInfo{
						conn: Conn{In: terms[0], Out: t},
						net:  netlist.NetID(ni),
					})
				}
			}
		}
	}
	// Deterministic region pair order: most-constrained connections
	// first. A wire-to-wire connection on one track has essentially a
	// single path through the disjoint switch boxes; pin connections
	// can fall back to any free junction. Routing the rigid pairs
	// before the flexible ones sharply reduces de-virtualization
	// failures (and therefore raw fallbacks). Ties break on net and
	// code order so the list is reproducible.
	for _, st := range states {
		cls := make([]int, len(st.pairs))
		for i := range st.pairs {
			cls[i] = pairFlexibility(st.reg, st.pairs[i].conn)
		}
		order := make([]int, len(st.pairs))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(x, y int) bool {
			a, b := order[x], order[y]
			if cls[a] != cls[b] {
				return cls[a] < cls[b]
			}
			if st.pairs[a].net != st.pairs[b].net {
				return st.pairs[a].net < st.pairs[b].net
			}
			if st.pairs[a].conn.In != st.pairs[b].conn.In {
				return st.pairs[a].conn.In < st.pairs[b].conn.In
			}
			return st.pairs[a].conn.Out < st.pairs[b].conn.Out
		})
		sorted := make([]pairInfo, len(st.pairs))
		for i, idx := range order {
			sorted[i] = st.pairs[idx]
		}
		st.pairs = sorted
	}
	return nil
}

// pairFlexibility ranks a connection by how many distinct paths can
// realize it: 0 = wire to wire on one track (rigid), 1 = wire to wire
// across tracks, 2 = wire to pin, 3 = pin to pin (most flexible).
func pairFlexibility(reg devirt.Region, c Conn) int {
	inPin, inTrack, err1 := reg.CodeInfo(c.In)
	outPin, outTrack, err2 := reg.CodeInfo(c.Out)
	if err1 != nil || err2 != nil {
		return 4
	}
	switch {
	case !inPin && !outPin && inTrack == outTrack:
		return 0
	case !inPin && !outPin:
		return 1
	case inPin != outPin:
		return 2
	default:
		return 3
	}
}

// terminalCode decides whether node n is a terminal of the region and
// returns its cluster I/O code. Pins are terminals when they are net
// sources or sinks; wires are terminals when the net uses them from
// more than one region.
func terminalCode(gr *rrg.Graph, v *VBS, st *regionState, n rrg.NodeID,
	termPin map[rrg.NodeID]bool, useRegions map[int]bool, reg int) (devirt.IOCode, bool, error) {

	x, y, kind, idx := gr.NodeInfo(n)
	r := st.reg
	switch kind {
	case rrg.NodePinWire:
		if !termPin[n] {
			return 0, false, nil // route-through pin: interior detail
		}
		return r.CodePin(x-st.x0, y-st.y0, idx), true, nil
	case rrg.NodeHWire:
		if len(useRegions) < 2 {
			return 0, false, nil
		}
		// Used by two regions: this horizontal wire crosses between its
		// own macro's region and the east neighbour's.
		switch {
		case x-st.x0 == r.CW-1 && insideRegion(st, x, y):
			return r.CodeEast(y-st.y0, idx), true, nil
		case x == st.x0-1:
			return r.CodeWest(y-st.y0, idx), true, nil
		}
		return 0, false, fmt.Errorf("h-wire %s is not on region (%d,%d) boundary", gr.NodeName(n), st.rx, st.ry)
	default: // vertical wire
		if len(useRegions) < 2 {
			return 0, false, nil
		}
		switch {
		case y-st.y0 == r.CH-1 && insideRegion(st, x, y):
			return r.CodeNorth(x-st.x0, idx), true, nil
		case y == st.y0-1:
			return r.CodeSouth(x-st.x0, idx), true, nil
		}
		return 0, false, fmt.Errorf("v-wire %s is not on region (%d,%d) boundary", gr.NodeName(n), st.rx, st.ry)
	}
}

func insideRegion(st *regionState, x, y int) bool {
	return x >= st.x0 && x < st.x0+st.reg.CW && y >= st.y0 && y < st.y0+st.reg.CH
}

// decodeRegionWithReorder runs the de-virtualization router on the
// region's pair list, promoting failing pairs to the front of the list
// (the paper's re-ordering step) until the list decodes or the retry
// budget runs out. On success it records the region's claimed wire
// nodes for conflict checking. Returns ok and a failure cause.
func decodeRegionWithReorder(v *VBS, gr *rrg.Graph, st *regionState, opt EncodeOptions) (bool, string) {
	attempts := opt.MaxReorder
	if opt.DisableReorder {
		attempts = 0
	}
	rt, err := devirt.AcquireRouter(st.reg, false, false)
	if err != nil {
		return false, "route"
	}
	defer rt.Release()
	for try := 0; ; try++ {
		rt.Reset()
		// Mirror the decoder exactly: reserve every endpoint first.
		for _, pi := range st.pairs {
			if err := rt.Reserve(pi.conn.In); err != nil {
				return false, "route"
			}
			if err := rt.Reserve(pi.conn.Out); err != nil {
				return false, "route"
			}
		}
		// The online decoder has no net identities, so a pair whose In
		// endpoint was swallowed by another net's path would silently
		// extend the wrong net. The feedback loop tracks which design
		// net owns each local net and treats such hijacks as routing
		// failures, exactly like an unroutable pair.
		localOf := make(map[int]netlist.NetID)
		failed := -1
		for i, pi := range st.pairs {
			before, _ := rt.Owner(pi.conn.In)
			if before >= 0 && localOf[before] != pi.net {
				failed = i
				break
			}
			if err := rt.RouteConnection(pi.conn.In, pi.conn.Out); err != nil {
				failed = i
				break
			}
			after, _ := rt.Owner(pi.conn.In)
			if before < 0 {
				localOf[after] = pi.net
			}
		}
		if failed < 0 {
			dead := collectClaims(v, gr, st, rt, localOf)
			if dead {
				return false, "deadEdge"
			}
			return true, ""
		}
		if try >= attempts || failed == 0 {
			return false, "route"
		}
		// Promote the failing pair to the front so it routes before the
		// connections that starved it of conductors.
		st.reordered = true
		promoted := st.pairs[failed]
		rest := append(append([]pairInfo{}, st.pairs[:failed]...), st.pairs[failed+1:]...)
		st.pairs = append([]pairInfo{promoted}, rest...)
	}
}

// collectClaims maps the router's claimed conductors to global wire
// nodes, tagging each with its design net (via the feedback loop's
// local-net table). It reports whether any claim lies on a wire that
// does not exist at the task origin (dead edge), which forces raw
// fallback to keep decode position-free.
func collectClaims(v *VBS, gr *rrg.Graph, st *regionState, rt *devirt.Router, localOf map[int]netlist.NetID) (dead bool) {
	conds, owners := rt.ClaimedConds()
	st.claimNodes = st.claimNodes[:0]
	st.claimNets = st.claimNets[:0]
	for k, cond := range conds {
		kind, i, j, idx := st.reg.CondPlace(cond)
		var n rrg.NodeID
		switch kind {
		case arch.KindHW:
			n = gr.NodeHW(st.x0+i, st.y0+j, idx)
		case arch.KindVW:
			n = gr.NodeVW(st.x0+i, st.y0+j, idx)
		case arch.KindInW:
			if st.x0 == 0 {
				return true
			}
			n = gr.NodeHW(st.x0-1, st.y0+j, idx)
		case arch.KindInS:
			if st.y0 == 0 {
				return true
			}
			n = gr.NodeVW(st.x0+i, st.y0-1, idx)
		default:
			continue // pins are region-local, no cross-region conflicts
		}
		net, ok := localOf[int(owners[k])]
		if !ok {
			net = netlist.NoNet
		}
		st.claimNodes = append(st.claimNodes, n)
		st.claimNets = append(st.claimNets, net)
	}
	return false
}

// findConflicts returns the coded regions whose decoded wire claims
// collide with another region's claims (decoded or original).
func findConflicts(states []*regionState, d *netlist.Design, res *route.Result, gr *rrg.Graph, v *VBS) []*regionState {
	type holder struct {
		net netlist.NetID
		st  *regionState // nil for raw/original claims
	}
	claims := make(map[rrg.NodeID]holder)
	conflicted := make(map[*regionState]bool)
	record := func(n rrg.NodeID, net netlist.NetID, st *regionState) {
		if prev, ok := claims[n]; ok {
			if prev.net == net {
				return
			}
			if prev.st != nil {
				conflicted[prev.st] = true
			}
			if st != nil {
				conflicted[st] = true
			}
			return
		}
		claims[n] = holder{net: net, st: st}
	}

	// Raw regions (and regions with no coded routing) contribute the
	// original routing's wire usage, which is self-consistent by
	// construction. A wire is attributed to every region whose switches
	// the net uses it through.
	c := v.Cluster
	wR := v.RegionsW()
	for ni := range res.Routes {
		for _, e := range res.Routes[ni].Edges {
			x, y := gr.G.Coords(int(e.Macro))
			st := states[(y/c)*wR+x/c]
			if !st.raw && len(st.pairs) > 0 {
				continue // this region's usage is the decoded one
			}
			for _, n := range [2]rrg.NodeID{e.From, e.To} {
				_, _, kind, _ := gr.NodeInfo(n)
				if kind == rrg.NodePinWire {
					continue
				}
				record(n, netlist.NetID(ni), nil)
			}
		}
	}
	for _, st := range states {
		if st.raw || len(st.pairs) == 0 {
			continue
		}
		for k, n := range st.claimNodes {
			record(n, st.claimNets[k], st)
		}
	}

	out := make([]*regionState, 0, len(conflicted))
	for st := range conflicted {
		out = append(out, st)
	}
	sort.Slice(out, func(a, b int) bool {
		return out[a].ry*wR+out[a].rx < out[b].ry*wR+out[b].rx
	})
	return out
}
